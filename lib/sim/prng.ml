type t = { mutable state : int64 }

let create seed = { state = Int64.of_int (seed lxor 0x5851f42d) }

let of_int64 seed = { state = Int64.logxor seed 0x5851F42D4C957F2DL }

(* splitmix64: tiny, fast, and good enough for workload synthesis. *)
let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let split t =
  let seed = Int64.to_int (next t) land max_int in
  { state = Int64.of_int seed }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let int64 t bound =
  if Int64.compare bound 0L <= 0 then invalid_arg "Prng.int64";
  Int64.rem (Int64.shift_right_logical (next t) 1) bound

let float t =
  let x = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
