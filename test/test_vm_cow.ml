(* VM and copy-on-write tree tests, including a model-based property test
   of COW semantics across fork chains. *)

let with_sys ?(ncells = 2) f =
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = ncells; mem_pages_per_node = 768 }
  in
  let sys = Hive.System.boot ~mcfg ~ncells ~wax:false eng in
  f eng sys

let run_to_completion sys p =
  let ok =
    Hive.System.run_until_processes_done sys ~deadline:300_000_000_000L [ p ]
  in
  Alcotest.(check bool) "finished" true ok;
  Alcotest.(check (option int)) "exit 0" (Some 0) p.Hive.Types.exit_code

let in_proc sys ~on ~name body =
  Hive.Process.spawn sys sys.Hive.Types.cells.(on) ~name body

let test_anon_zero_fill () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            let r = Hive.Syscall.mmap_anon sys p ~npages:4 in
            let v =
              Hive.Syscall.read_word sys p ~vpage:r.Hive.Types.start_page
                ~offset:8
            in
            assert (v = 0L))
      in
      run_to_completion sys p)

let test_word_rw () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            let r = Hive.Syscall.mmap_anon sys p ~npages:2 in
            let vp = r.Hive.Types.start_page in
            Hive.Syscall.write_word sys p ~vpage:vp ~offset:16 123L;
            Hive.Syscall.write_word sys p ~vpage:(vp + 1) ~offset:0 456L;
            assert (Hive.Syscall.read_word sys p ~vpage:vp ~offset:16 = 123L);
            assert (Hive.Syscall.read_word sys p ~vpage:(vp + 1) ~offset:0 = 456L))
      in
      run_to_completion sys p)

let test_fault_out_of_region () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            match Hive.Vm.touch sys p ~vpage:9999 ~write:false with
            | Error Hive.Types.EFAULT -> ()
            | _ -> failwith "expected EFAULT")
      in
      run_to_completion sys p)

let test_write_to_readonly_region () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            let fd =
              Hive.Syscall.creat sys p ~content:(Bytes.make 4096 'r')
                "/tmp/ro.txt"
            in
            Hive.Syscall.close sys p ~fd;
            let fd = Hive.Syscall.openf sys p "/tmp/ro.txt" in
            let r = Hive.Syscall.mmap_file sys p ~fd ~npages:1 ~writable:false in
            match
              Hive.Vm.touch sys p ~vpage:r.Hive.Types.start_page ~write:true
            with
            | Error Hive.Types.EFAULT -> ()
            | _ -> failwith "expected EFAULT on write to read-only region")
      in
      run_to_completion sys p)

let test_grandchild_cow_chain () =
  with_sys (fun _eng sys ->
      (* Three generations: the grandchild must see the value written by
         the grandparent before any fork, through two tree levels. *)
      let seen = ref 0L in
      let p =
        in_proc sys ~on:0 ~name:"gp" (fun sys p ->
            let r = Hive.Syscall.mmap_anon sys p ~npages:2 in
            let vp = r.Hive.Types.start_page in
            Hive.Syscall.write_word sys p ~vpage:vp ~offset:0 77L;
            let child =
              Hive.Syscall.fork sys p ~name:"c" (fun sys c ->
                  let gc =
                    Hive.Syscall.fork sys c ~name:"gc" (fun sys g ->
                        seen := Hive.Syscall.read_word sys g ~vpage:vp ~offset:0)
                  in
                  ignore (Hive.Syscall.wait sys c gc))
            in
            ignore (Hive.Syscall.wait sys p child))
      in
      run_to_completion sys p;
      Alcotest.(check int64) "grandchild saw grandparent's write" 77L !seen)

let test_sibling_isolation () =
  with_sys (fun _eng sys ->
      (* Two children fork from the same parent; each writes its own copy;
         neither sees the other's value. *)
      let a = ref 0L and b = ref 0L in
      let p =
        in_proc sys ~on:0 ~name:"p" (fun sys p ->
            let r = Hive.Syscall.mmap_anon sys p ~npages:1 in
            let vp = r.Hive.Types.start_page in
            Hive.Syscall.write_word sys p ~vpage:vp ~offset:0 1L;
            let c1 =
              Hive.Syscall.fork sys p ~name:"c1" (fun sys c ->
                  Hive.Syscall.write_word sys c ~vpage:vp ~offset:0 100L;
                  Hive.Syscall.compute sys c 5_000_000L;
                  a := Hive.Syscall.read_word sys c ~vpage:vp ~offset:0)
            in
            let c2 =
              Hive.Syscall.fork sys p ~name:"c2" (fun sys c ->
                  Hive.Syscall.write_word sys c ~vpage:vp ~offset:0 200L;
                  Hive.Syscall.compute sys c 5_000_000L;
                  b := Hive.Syscall.read_word sys c ~vpage:vp ~offset:0)
            in
            ignore (Hive.Syscall.wait sys p c1);
            ignore (Hive.Syscall.wait sys p c2))
      in
      run_to_completion sys p;
      Alcotest.(check int64) "c1 kept its copy" 100L !a;
      Alcotest.(check int64) "c2 kept its copy" 200L !b)

let test_parent_write_after_fork_invisible_to_child () =
  with_sys (fun _eng sys ->
      let child_saw = ref 0L in
      let p =
        in_proc sys ~on:0 ~name:"p" (fun sys p ->
            let r = Hive.Syscall.mmap_anon sys p ~npages:1 in
            let vp = r.Hive.Types.start_page in
            Hive.Syscall.write_word sys p ~vpage:vp ~offset:0 5L;
            let gate = Sim.Ivar.create () in
            let child =
              Hive.Syscall.fork sys p ~name:"c" (fun sys c ->
                  ignore (Sim.Ivar.read sys.Hive.Types.eng gate);
                  child_saw := Hive.Syscall.read_word sys c ~vpage:vp ~offset:0)
            in
            (* Parent overwrites after the fork... *)
            Hive.Syscall.write_word sys p ~vpage:vp ~offset:0 6L;
            Sim.Ivar.fill sys.Hive.Types.eng gate ();
            ignore (Hive.Syscall.wait sys p child))
      in
      run_to_completion sys p;
      Alcotest.(check int64) "child sees the pre-fork value" 5L !child_saw)

let test_cow_node_full () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            ignore p;
            let c0 = sys.Hive.Types.cells.(0) in
            let leaf = Hive.Cow.create_root sys c0 ~capacity:4 () in
            for k = 0 to 3 do
              Hive.Cow.record_write sys c0 leaf ~page:k
            done;
            match Hive.Cow.record_write sys c0 leaf ~page:4 with
            | () -> failwith "expected Node_full"
            | exception Hive.Cow.Node_full -> ())
      in
      run_to_completion sys p)

let test_cow_free_clears_tag () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            ignore p;
            let c0 = sys.Hive.Types.cells.(0) in
            let c1 = sys.Hive.Types.cells.(1) in
            let leaf = Hive.Cow.create_root sys c0 () in
            Hive.Cow.free_node sys c0 leaf;
            (* A remote careful walk must now reject the stale pointer. *)
            match Hive.Cow.lookup sys c1 leaf ~page:0 with
            | Hive.Cow.Defended (Hive.Careful_ref.Bad_tag _) -> ()
            | _ -> failwith "expected tag defense after free")
      in
      run_to_completion sys p)

let test_cow_lookup_cross_cell () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            ignore p;
            let c0 = sys.Hive.Types.cells.(0) in
            let c1 = sys.Hive.Types.cells.(1) in
            let root = Hive.Cow.create_root sys c0 () in
            Hive.Cow.record_write sys c0 root ~page:9;
            let _pl, cl =
              Hive.Cow.fork sys ~parent_cell:c0 ~child_cell:c1 root ()
            in
            (* Cell 1 walks from its leaf up to the root on cell 0. *)
            (match Hive.Cow.lookup sys c1 cl ~page:9 with
            | Hive.Cow.Found r -> assert (r.Hive.Types.cow_cell = 0)
            | _ -> failwith "expected Found in remote root");
            match Hive.Cow.lookup sys c1 cl ~page:10 with
            | Hive.Cow.Not_present -> ()
            | _ -> failwith "expected Not_present")
      in
      run_to_completion sys p)

let test_write_word_refault_bounded () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:1 ~name:"t" (fun sys p ->
            (* Import a writable file page from the cell-0 data home. *)
            let path =
              let rec go k =
                let c = Printf.sprintf "/z/refault.%d" k in
                if Hive.Fs.home_of_path sys c = 0 then c else go (k + 1)
              in
              go 0
            in
            let fd =
              Hive.Syscall.creat sys p ~content:(Bytes.make 4096 'r') path
            in
            let r = Hive.Syscall.mmap_file sys p ~fd ~npages:1 ~writable:true in
            let vp = r.Hive.Types.start_page in
            Hive.Syscall.write_word sys p ~vpage:vp ~offset:0 1L;
            (* The home revokes the firewall grant without tearing down the
               import binding (what recovery's mass revocation does): the
               refault hits the local pfdat cache, which still records the
               write grant, and remaps without restoring permission. The
               retry loop must give up with EFAULT instead of recursing
               forever. *)
            let m = Hashtbl.find p.Hive.Types.mappings vp in
            let pfn = m.Hive.Types.map_pf.Hive.Types.pfn in
            let node = Flash.Addr.node_of_pfn sys.Hive.Types.mcfg pfn in
            let fwall = Flash.Machine.firewall sys.Hive.Types.machine in
            Flash.Firewall.revoke_all_remote fwall ~by:node ~pfn;
            (match Hive.Vm.write_word sys p ~vpage:vp ~offset:0 2L with
            | Error Hive.Types.EFAULT -> ()
            | Ok () -> failwith "expected EFAULT"
            | Error _ -> failwith "unexpected errno");
            let c1 = sys.Hive.Types.cells.(1) in
            let retries =
              Sim.Stats.value c1.Hive.Types.counters "vm.refault_retries"
            in
            let bound =
              sys.Hive.Types.params.Hive.Params.max_refault_retries
            in
            if retries <> bound + 1 then
              failwith
                (Printf.sprintf "expected %d refault attempts, saw %d"
                   (bound + 1) retries))
      in
      run_to_completion sys p)

let test_anon_get_careful_failure_reports_hint () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            ignore p;
            let c0 = sys.Hive.Types.cells.(0) in
            let c1 = sys.Hive.Types.cells.(1) in
            (* A remote COW reference whose target is not a COW node: the
               careful tag check must defend, and the failure must be
               reported as a hint against the owner (it may be corrupt),
               not silently swallowed. *)
            let bogus =
              { Hive.Types.cow_cell = 1;
                cow_addr = c1.Hive.Types.kmem.Hive.Types.kmem_base + 8 }
            in
            (match Hive.Vm.anon_get sys c0 bogus ~page:0 ~writable:false with
            | Error Hive.Types.EFAULT -> ()
            | Ok _ -> failwith "expected EFAULT"
            | Error _ -> failwith "unexpected errno");
            assert (
              Sim.Stats.value c0.Hive.Types.counters
                "vm.anon_careful_failures"
              >= 1);
            assert (
              Sim.Stats.value c0.Hive.Types.counters "failure.hints" >= 1);
            assert (List.mem 1 c0.Hive.Types.suspected))
      in
      run_to_completion sys p)

(* Model-based property: a random interleaving of writes/forks/reads on a
   small anon region behaves like a functional environment model. *)
let qcheck_cow_model =
  QCheck.Test.make ~name:"cow: fork/write/read matches functional model"
    ~count:25
    QCheck.(
      list_of_size Gen.(1 -- 12) (pair (int_bound 3) (int_bound 200)))
    (fun script ->
      (* Interpreted as: (page, v) -> parent writes v to page, forks a
         child that reads all pages and checks against the model, then
         continues. *)
      let eng = Sim.Engine.create () in
      let mcfg =
        { Flash.Config.small with Flash.Config.nodes = 2; mem_pages_per_node = 768 }
      in
      let sys = Hive.System.boot ~mcfg ~ncells:2 ~wax:false eng in
      let ok = ref true in
      let p =
        in_proc sys ~on:0 ~name:"model" (fun sys p ->
            let r = Hive.Syscall.mmap_anon sys p ~npages:4 in
            let vp = r.Hive.Types.start_page in
            let model = Array.make 4 0L in
            let target = ref 1 in
            List.iter
              (fun (page, v) ->
                let v = Int64.of_int (v + 1) in
                Hive.Syscall.write_word sys p ~vpage:(vp + page) ~offset:0 v;
                model.(page) <- v;
                let snapshot = Array.copy model in
                (* Alternate children between the two cells. *)
                target := 1 - !target;
                let child =
                  Hive.Syscall.fork sys p ~on_cell:!target ~name:"check"
                    (fun sys c ->
                      Array.iteri
                        (fun i expected ->
                          let got =
                            Hive.Syscall.read_word sys c ~vpage:(vp + i)
                              ~offset:0
                          in
                          if got <> expected then ok := false)
                        snapshot)
                in
                ignore (Hive.Syscall.wait sys p child))
              script)
      in
      ignore
        (Hive.System.run_until_processes_done sys ~deadline:600_000_000_000L
           [ p ]);
      !ok && p.Hive.Types.exit_code = Some 0)

let qcheck_page_alloc_conservation =
  QCheck.Test.make ~name:"page_alloc: borrow/return conserves frames"
    ~count:40
    QCheck.(list_of_size Gen.(1 -- 8) (int_bound 5))
    (fun counts ->
      let eng = Sim.Engine.create () in
      let mcfg =
        { Flash.Config.small with Flash.Config.nodes = 2; mem_pages_per_node = 256 }
      in
      let sys = Hive.System.boot ~mcfg ~ncells:2 ~wax:false eng in
      let c0 = sys.Hive.Types.cells.(0) in
      let c1 = sys.Hive.Types.cells.(1) in
      let total () =
        Hive.Page_alloc.free_count c0
        + Hive.Page_alloc.free_count c1
        + List.length c1.Hive.Types.reserved_loans
      in
      let before = total () in
      let ok = ref true in
      let p =
        in_proc sys ~on:0 ~name:"q" (fun sys p ->
            ignore p;
            List.iter
              (fun n ->
                let got = Hive.Page_alloc.borrow_from sys c0 ~home:1 ~count:(n + 1) in
                List.iter
                  (fun pfn ->
                    match Hashtbl.find_opt c0.Hive.Types.frames pfn with
                    | Some pf -> Hive.Page_alloc.return_frame sys c0 pf
                    | None -> ok := false)
                  got)
              counts)
      in
      ignore
        (Hive.System.run_until_processes_done sys ~deadline:60_000_000_000L
           [ p ]);
      !ok && total () = before && c1.Hive.Types.reserved_loans = [])

let suite =
  [
    Alcotest.test_case "anon pages are zero-filled" `Quick test_anon_zero_fill;
    Alcotest.test_case "word read/write" `Quick test_word_rw;
    Alcotest.test_case "fault outside any region -> EFAULT" `Quick
      test_fault_out_of_region;
    Alcotest.test_case "write fault on read-only region -> EFAULT" `Quick
      test_write_to_readonly_region;
    Alcotest.test_case "grandchild reads through two tree levels" `Quick
      test_grandchild_cow_chain;
    Alcotest.test_case "sibling COW isolation" `Quick test_sibling_isolation;
    Alcotest.test_case "post-fork parent writes invisible to child" `Quick
      test_parent_write_after_fork_invisible_to_child;
    Alcotest.test_case "cow node capacity" `Quick test_cow_node_full;
    Alcotest.test_case "freed cow node fails tag check" `Quick
      test_cow_free_clears_tag;
    Alcotest.test_case "cow lookup across cells" `Quick
      test_cow_lookup_cross_cell;
    Alcotest.test_case "write refault retries are bounded" `Quick
      test_write_word_refault_bounded;
    Alcotest.test_case "careful anon_get failure reports a hint" `Quick
      test_anon_get_careful_failure_reports_hint;
    QCheck_alcotest.to_alcotest qcheck_cow_model;
    QCheck_alcotest.to_alcotest qcheck_page_alloc_conservation;
  ]
