lib/hive/fs.ml: Array Buffer Bytes Flash Hashtbl List Page_alloc Params Pfdat Rpc Share Sim String Types
