(** Non-reentrant mutual exclusion for simulation threads (FIFO-fair). *)

type t

val create : unit -> t

val is_locked : t -> bool

val lock : Engine.t -> t -> unit

val try_lock : t -> bool

val unlock : Engine.t -> t -> unit

(** [with_lock eng m f] runs [f] holding [m]; the lock is released even if
    [f] raises or the thread is killed. *)
val with_lock : Engine.t -> t -> (unit -> 'a) -> 'a
