(* Copy-on-write trees for anonymous memory (Section 5.3).

   Anonymous pages are managed in copy-on-write trees. When a process
   forks, the leaf node is split, with one new leaf for the parent and one
   for the child; pages written after the fork are recorded in the new
   leaves, so only pages allocated before the fork are visible to the
   child. On a fault the process searches up the tree for the copy created
   by the nearest ancestor that wrote the page before forking.

   In Hive parent and child may live on different cells, so tree pointers
   cross cell boundaries. Nodes are serialized into the owning cell's
   kernel memory; remote lookups walk them with the careful reference
   protocol — the lookup never modifies interior nodes, so no wild-write
   vulnerability is created. When the page is found in a remote node, an
   RPC to the owning cell sets up the export/import binding. *)

let cow_tag = 0x434F574E4F444531L (* "COWNODE1" *)

let default_capacity = 448

(* Field indices within the serialized node. *)
let f_node_id = 0

let f_parent_addr = 1

let f_parent_cell = 2

let f_nentries = 3

let f_capacity = 4

let f_entries = 5

exception Node_full

let node_size capacity = 8 * (f_entries + capacity)

(* Domain-local and reset at [System.boot]: node ids are part of the
   serialized tree state, so a campaign's ids must not depend on how many
   campaigns ran earlier in this domain (parallel workers replay
   different subsets of the seed list). *)
let next_node_id_key : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let reset_ids () = Domain.DLS.get next_node_id_key := 0

(* Allocate a fresh tree node in [cell]'s kernel memory. *)
let alloc_node (sys : Types.system) (cell : Types.cell) ~parent ~capacity =
  let next_node_id = Domain.DLS.get next_node_id_key in
  incr next_node_id;
  let id = !next_node_id in
  let addr =
    Kmem.alloc sys cell ~tag:cow_tag ~size:(8 * (f_entries + capacity))
  in
  Kmem.write_field sys cell ~addr ~index:f_node_id (Int64.of_int id);
  (match parent with
  | Some r ->
    Kmem.write_field sys cell ~addr ~index:f_parent_addr
      (Int64.of_int r.Types.cow_addr);
    Kmem.write_field sys cell ~addr ~index:f_parent_cell
      (Int64.of_int r.Types.cow_cell)
  | None ->
    Kmem.write_field sys cell ~addr ~index:f_parent_addr (-1L);
    Kmem.write_field sys cell ~addr ~index:f_parent_cell (-1L));
  Kmem.write_field sys cell ~addr ~index:f_nentries 0L;
  Kmem.write_field sys cell ~addr ~index:f_capacity (Int64.of_int capacity);
  { Types.cow_cell = cell.Types.cell_id; cow_addr = addr }

let create_root (sys : Types.system) (cell : Types.cell)
    ?(capacity = default_capacity) () =
  alloc_node sys cell ~parent:None ~capacity

(* Fork: split the leaf. The old leaf becomes an interior node; the parent
   continues on a fresh leaf on its own cell and the child gets a fresh
   leaf on (possibly) another cell. *)
let fork (sys : Types.system) ~(parent_cell : Types.cell)
    ~(child_cell : Types.cell) (leaf : Types.cow_ref)
    ?(capacity = default_capacity) () =
  let parent_leaf = alloc_node sys parent_cell ~parent:(Some leaf) ~capacity in
  let child_leaf = alloc_node sys child_cell ~parent:(Some leaf) ~capacity in
  (parent_leaf, child_leaf)

let node_id (sys : Types.system) (r : Types.cow_ref) =
  let cell = sys.Types.cells.(r.Types.cow_cell) in
  Int64.to_int (Kmem.read_field sys cell ~addr:r.Types.cow_addr ~index:f_node_id)

(* Record that the process wrote anonymous page [page] at its leaf (always
   local to the process). *)
let record_write (sys : Types.system) (cell : Types.cell)
    (leaf : Types.cow_ref) ~page =
  if leaf.Types.cow_cell <> cell.Types.cell_id then
    invalid_arg "Cow.record_write: leaf must be local";
  let addr = leaf.Types.cow_addr in
  let n = Int64.to_int (Kmem.read_field sys cell ~addr ~index:f_nentries) in
  let cap = Int64.to_int (Kmem.read_field sys cell ~addr ~index:f_capacity) in
  if n >= cap then raise Node_full;
  Kmem.write_field sys cell ~addr ~index:(f_entries + n) (Int64.of_int page);
  Kmem.write_field sys cell ~addr ~index:f_nentries (Int64.of_int (n + 1))

(* Local scan of an owned node: one block read, then in-cache compares. *)
let local_has_page (sys : Types.system) (cell : Types.cell) ~addr ~page =
  let n = Int64.to_int (Kmem.read_field sys cell ~addr ~index:f_nentries) in
  n > 0
  &&
  let entries = Kmem.read_fields sys cell ~addr ~index:f_entries ~count:n in
  Array.exists (fun e -> e = Int64.of_int page) entries

type lookup_result =
  | Found of Types.cow_ref (* the node recording the page *)
  | Not_present
  | Defended of Careful_ref.failure_reason

(* Search up the tree from [leaf] for the nearest ancestor (or the leaf
   itself) recording [page]. Remote nodes are read under the careful
   reference protocol. *)
let lookup (sys : Types.system) (reader : Types.cell) (leaf : Types.cow_ref)
    ~page =
  let max_capacity = 1 lsl 16 in
  let rec walk (r : Types.cow_ref) depth =
    if depth > 64 then Defended Careful_ref.Loop_detected
    else if r.Types.cow_addr < 0 then Not_present
    else if r.Types.cow_cell = reader.Types.cell_id then begin
      (* Local node: plain, trusting reads — a kernel does not defend
         against its own data structures. Corruption here unwinds as a
         kernel bad reference, panicking the cell (contrast with the
         careful remote path below). *)
      let cell = reader in
      let addr = r.Types.cow_addr in
      if
        (try Kmem.read_tag sys cell ~addr <> cow_tag
         with Flash.Memory.Bus_error _ -> true)
      then Panic.kernel_bad_reference sys cell "cow node tag"
      else if local_has_page sys cell ~addr ~page then Found r
      else begin
        let pa =
          Int64.to_int (Kmem.read_field sys cell ~addr ~index:f_parent_addr)
        in
        let pc =
          Int64.to_int (Kmem.read_field sys cell ~addr ~index:f_parent_cell)
        in
        if pa < 0 || pc < 0 then Not_present
        else if pc >= Array.length sys.Types.cells then
          Defended (Careful_ref.Bad_value "parent cell out of range")
        else walk { Types.cow_cell = pc; cow_addr = pa } (depth + 1)
      end
    end
    else begin
      (* Remote node: careful reference protocol. *)
      if not (List.mem r.Types.cow_cell reader.Types.live_set) then
        Defended (Careful_ref.Bus_fault r.Types.cow_addr)
      else
        let res =
          Careful_ref.protect sys reader ~target:r.Types.cow_cell (fun ctx ->
              let addr = r.Types.cow_addr in
              Careful_ref.check_tag ctx ~addr ~expected:cow_tag;
              let n =
                Int64.to_int
                  (Careful_ref.read_field ctx ~addr ~index:f_nentries)
              in
              let cap =
                Int64.to_int
                  (Careful_ref.read_field ctx ~addr ~index:f_capacity)
              in
              if n < 0 || cap <= 0 || cap > max_capacity || n > cap then
                Careful_ref.fail_value "entry count out of range";
              (* Copy the whole entry block to local memory before
                 checking (careful reference protocol, step 3). *)
              let block =
                Careful_ref.read_bytes ctx
                  (addr + Kmem.header_bytes + (8 * f_entries))
                  (8 * n)
              in
              let found = ref false in
              for i = 0 to n - 1 do
                if Bytes.get_int64_le block (8 * i) = Int64.of_int page then
                  found := true
              done;
              let pa =
                Int64.to_int
                  (Careful_ref.read_field ctx ~addr ~index:f_parent_addr)
              in
              let pc =
                Int64.to_int
                  (Careful_ref.read_field ctx ~addr ~index:f_parent_cell)
              in
              (!found, pa, pc))
        in
        match res with
        | Error reason -> Defended reason
        | Ok (true, _, _) -> Found r
        | Ok (false, pa, pc) ->
          if pa < 0 || pc < 0 then Not_present
          else if pc >= Array.length sys.Types.cells then
            Defended (Careful_ref.Bad_value "parent cell out of range")
          else walk { Types.cow_cell = pc; cow_addr = pa } (depth + 1)
    end
  in
  walk leaf 0

let free_node (sys : Types.system) (cell : Types.cell) (r : Types.cow_ref) =
  if r.Types.cow_cell = cell.Types.cell_id then begin
    let cap =
      Int64.to_int
        (Kmem.read_field sys cell ~addr:r.Types.cow_addr ~index:f_capacity)
    in
    Kmem.free sys cell ~addr:r.Types.cow_addr ~size:(8 * (f_entries + cap))
  end
