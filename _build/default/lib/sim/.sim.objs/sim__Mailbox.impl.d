lib/sim/mailbox.ml: Engine List Queue
