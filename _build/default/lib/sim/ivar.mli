(** Write-once synchronization variable ("incremental variable").

    The basic building block for request/reply rendezvous such as RPC
    completion. *)

type 'a t

val create : unit -> 'a t

val is_filled : 'a t -> bool

val peek : 'a t -> 'a option

(** Fill the variable and wake all readers. Raises [Invalid_argument] if
    already filled. *)
val fill : Engine.t -> 'a t -> 'a -> unit

(** Block until filled; [None] on timeout. Returns immediately if already
    filled. *)
val read : ?timeout:int64 -> Engine.t -> 'a t -> 'a option

(** Like {!read} with no timeout. *)
val read_exn : Engine.t -> 'a t -> 'a
