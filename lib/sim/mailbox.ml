(* Waiters are kept in a FIFO [Queue.t] with tombstones: a receiver that
   stops waiting (timeout, kill) marks its own record inactive instead of
   rebuilding the structure, so send and receive are O(1). The old list
   representation appended with [@ [w]] and removed with a [List.filter]
   on [w.thread != me], which was quadratic under load and — worse —
   dropped the *wrong* record when the same thread re-entered [receive]:
   cleanup is now by record identity, and [deliver] checks [active]
   before resuming so a stale record can never steal a message for a
   thread that is meanwhile suspended somewhere else. *)
type 'a waiter = {
  slot : 'a option ref;
  thread : Engine.thread;
  mutable active : bool;
}

type 'a t = {
  queue : 'a Queue.t;
  mutable waiters : 'a waiter Queue.t;
  mutable stale : int; (* inactive records still in [waiters] *)
}

let create () = { queue = Queue.create (); waiters = Queue.create (); stale = 0 }

let length m = Queue.length m.queue

let is_empty m = Queue.is_empty m.queue

(* Deliver to the first waiter that is still waiting; tombstones and
   losers of a wake race (e.g. timed-out receivers whose wakeup is
   already scheduled) are skipped and dropped. *)
let rec deliver eng m x =
  match Queue.take_opt m.waiters with
  | None -> Queue.push x m.queue
  | Some w ->
    if not w.active then begin
      m.stale <- m.stale - 1;
      deliver eng m x
    end
    else begin
      w.active <- false;
      if Engine.try_resume eng w.thread then w.slot := Some x
      else deliver eng m x
    end

let send eng m x = deliver eng m x

let try_receive m = Queue.take_opt m.queue

(* Discard queued messages without waking waiters: used when a failed
   node's hardware queues are reset on restore. *)
let clear m =
  let n = Queue.length m.queue in
  Queue.clear m.queue;
  n

(* Selectively discard queued messages matching [p], preserving the order
   of survivors: used when a healed partition resets only the envelopes
   that originated behind the blackout. *)
let reject m p =
  let keep = Queue.create () in
  let dropped = ref 0 in
  Queue.iter
    (fun x -> if p x then incr dropped else Queue.push x keep)
    m.queue;
  Queue.clear m.queue;
  Queue.transfer keep m.queue;
  !dropped

(* Drop tombstones once they outnumber the live waiters (with a small
   floor), keeping the cost amortized O(1) per abandoned wait. *)
let purge m =
  let keep = Queue.create () in
  Queue.iter (fun w -> if w.active then Queue.push w keep) m.waiters;
  m.waiters <- keep;
  m.stale <- 0

(* Mark our own waiter record dead. Only this record is touched — never
   another record belonging to the same thread from an earlier or later
   [receive] — and [active] tells us whether it is still enqueued
   (everything that removes a record marks it inactive first). *)
let retire m = function
  | Some w when w.active ->
    w.active <- false;
    m.stale <- m.stale + 1;
    if m.stale > 8 && m.stale * 2 > Queue.length m.waiters then purge m
  | _ -> ()

let receive ?timeout eng m =
  match Queue.take_opt m.queue with
  | Some _ as r -> r
  | None ->
    let slot = ref None in
    let mine = ref None in
    (try
       Engine.suspend ~site:"mailbox.receive" (fun thr ->
           let w = { slot; thread = thr; active = true } in
           mine := Some w;
           Queue.push w m.waiters;
           match timeout with
           | None -> ()
           | Some d -> Engine.wake_after eng thr d)
     with e ->
       (* Killed while suspended: unwind must not leave a live record
          behind, or a later send would resume the corpse. *)
       retire m !mine;
       raise e);
    (match !slot with
    | Some _ as r -> r
    | None ->
      retire m !mine;
      None)

let receive_exn eng m =
  match receive eng m with
  | Some x -> x
  | None -> assert false
