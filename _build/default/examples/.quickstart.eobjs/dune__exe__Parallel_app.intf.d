examples/parallel_app.mli:
