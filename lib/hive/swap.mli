(** The swapper: anonymous pages whose backing store is the swap partition
   (Section 5.3 calls anonymous pages "those whose backing store is in the
   swap partition"; Table 3.4 lists "which processes to swap" among the
   Wax-driven policies).

   Each cell owns a swap area on its local disk: the top
   [Config.swap_blocks] blocks, starting at [Config.swap_base] — derived
   from the disk geometry, so file blocks can never overlap the swap area.
   Swapping out an idle anonymous page writes it to a swap block and frees
   the frame; the next fault finds it neither in the page cache nor in the
   COW record path and swaps it back in from that block. Only pages homed
   on this cell (its own anonymous data) are swapped: the firewall rules
   already forbid trusting remote frames for kernel-critical data, and
   remote clients simply re-import after a swap-in. *)

val swap_base : Types.system -> int
val page_size : Types.system -> int
val mem : Types.system -> Flash.Memory.t
val is_swappable : Types.pfdat -> bool
val swap_out_page :
  Types.system -> Types.cell -> Types.pfdat -> bool
val swap_out_idle : Types.system -> Types.cell -> want:int -> int
val swap_in :
  Types.system ->
  Types.cell -> Types.logical_id -> Types.pfdat option
val swap_out_process : Types.system -> Types.process -> int
val swapped_pages : Types.cell -> int
