(* Common workload infrastructure: deterministic input generation, output
   verification against reference contents, and timing.

   Workload outputs are deterministic functions of their inputs so that
   the fault-injection experiments can detect corruption by comparing
   output files against reference copies, exactly as in Section 7.4. *)

type result = {
  name : string;
  elapsed_ns : int64;
  completed : bool;
  procs_total : int;
  procs_killed : int;
}

let ns_to_s ns = Int64.to_float ns /. 1e9

(* Deterministic pseudo-content for a named input file. The result is a
   pure function of [(tag, bytes)] and identical across campaigns, so it
   is memoized — fuzz drivers re-synthesize the same input tree for
   every seed, and the per-byte generator showed up as one of the
   hottest leaves in campaign profiles. The cache is domain-local:
   parallel fuzz workers each build their own, sharing nothing. *)
let synth_cache_key :
    (string * int, Bytes.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let synth_content ~tag ~bytes =
  let cache = Domain.DLS.get synth_cache_key in
  match Hashtbl.find_opt cache (tag, bytes) with
  | Some b -> Bytes.copy b
  | None ->
    let b = Bytes.create bytes in
    let h = ref (Hashtbl.hash tag land 0xffff) in
    for i = 0 to bytes - 1 do
      h := ((!h * 1103515245) + 12345) land 0x3fffffff;
      Bytes.set b i (Char.chr (!h land 0xff))
    done;
    Hashtbl.replace cache (tag, bytes) (Bytes.copy b);
    b

(* The deterministic "compilation" of a source: what a correct run must
   produce. Any wild write to the data en route changes the output. *)
let derive_output ~input ~bytes =
  let b = Bytes.create bytes in
  let n = Bytes.length input in
  let acc = ref 17 in
  for i = 0 to bytes - 1 do
    let src = if n = 0 then 0 else Char.code (Bytes.get input (i mod n)) in
    acc := (!acc + (src * 31) + i) land 0xff;
    Bytes.set b i (Char.chr !acc)
  done;
  b

(* Read a file's current stable content directly (test oracle use only). *)
let stable_content (sys : Hive.Types.system) path =
  let home = Hive.Fs.home_of_path sys path in
  match Hive.Fs.find_local sys.Hive.Types.cells.(home) path with
  | Some f ->
    (* Unsynced growth may exceed the stable contents. *)
    Some
      (Bytes.sub f.Hive.Types.disk_content 0
         (min f.Hive.Types.size (Bytes.length f.Hive.Types.disk_content)))
  | None -> None

(* Read a file's logical content (page cache over disk), as a fresh
   process would see it. *)
let logical_content (sys : Hive.Types.system) path =
  let home_id = Hive.Fs.home_of_path sys path in
  let home = sys.Hive.Types.cells.(home_id) in
  if not (Hive.Types.cell_alive home) then None
  else
    match Hive.Fs.find_local home path with
    | None -> None
    | Some f ->
      let psize = Hive.Types.page_size sys in
      let out = Bytes.create f.Hive.Types.size in
      let npages = (f.Hive.Types.size + psize - 1) / psize in
      for pg = 0 to npages - 1 do
        let off = pg * psize in
        let len = min psize (f.Hive.Types.size - off) in
        (match Hashtbl.find_opt f.Hive.Types.cached_pages pg with
        | Some pf ->
          let addr =
            Flash.Addr.addr_of_pfn sys.Hive.Types.mcfg pf.Hive.Types.pfn
          in
          Bytes.blit
            (Flash.Memory.peek
               (Flash.Machine.memory sys.Hive.Types.machine)
               addr len)
            0 out off len
        | None ->
          if Bytes.length f.Hive.Types.disk_content >= off + len then
            Bytes.blit f.Hive.Types.disk_content off out off len)
      done;
      Some out

type verify_outcome = Match | Data_loss | Corrupt | Missing

(* Compare an output file against its reference.

   [Data_loss] (stale-but-stable data after a preemptive discard, visible
   through a bumped generation) is an allowed consequence of a cell
   failure; [Corrupt] (content that matches neither the reference nor any
   stable prefix) means the wild-write defense failed. *)
let verify_output (sys : Hive.Types.system) ~path ~reference =
  let home_id = Hive.Fs.home_of_path sys path in
  let home = sys.Hive.Types.cells.(home_id) in
  match Hive.Fs.find_local home path with
  | None -> Missing
  | Some f ->
    let content =
      match logical_content sys path with Some c -> c | None -> Bytes.empty
    in
    if Bytes.equal content reference then Match
    else if f.Hive.Types.generation > 0 then Data_loss
    else if
      (* An incomplete write by a killed process leaves a prefix of the
         reference plus zero padding: loss, not corruption. *)
      Bytes.length content <= Bytes.length reference
      && Bytes.for_all (fun c -> c = '\000') content
    then Data_loss
    else begin
      let n = min (Bytes.length content) (Bytes.length reference) in
      let rec prefix_ok i =
        i >= n
        || (Bytes.get content i = Bytes.get reference i
            || Bytes.get content i = '\000')
           && prefix_ok (i + 1)
      in
      if prefix_ok 0 then Data_loss else Corrupt
    end

let verify_outcome_to_string = function
  | Match -> "match"
  | Data_loss -> "data-loss"
  | Corrupt -> "CORRUPT"
  | Missing -> "missing"
