(* Workload correctness: each model completes on the real (default)
   machine and produces exactly its reference outputs; fault-injection
   campaigns contain their faults. These run on the full 4-node machine,
   so they are the slowest tests in the suite. *)

let small_pmake =
  {
    Workloads.Pmake.default with
    Workloads.Pmake.files = 5;
    cpp_ns = 20_000_000L;
    cc1_ns = 60_000_000L;
    as_ns = 20_000_000L;
    link_ns = 20_000_000L;
    anon_pages = 40;
    include_searches = 40;
  }

let small_ocean =
  {
    Workloads.Ocean.default with
    Workloads.Ocean.chunk_pages = 64;
    steps = 3;
    step_compute_ns = 50_000_000L;
    init_compute_ns = 20_000_000L;
  }

let small_ray =
  {
    Workloads.Raytrace.default with
    Workloads.Raytrace.scene_pages = 64;
    tile_pages = 16;
    compute_ns = 200_000_000L;
    build_ns = 20_000_000L;
  }

let boot () =
  let eng = Sim.Engine.create () in
  Hive.System.boot ~ncells:4 ~wax:false eng

let check_all_match name verify =
  List.iter
    (fun (path, v) ->
      Alcotest.(check string)
        (Printf.sprintf "%s output %s" name path)
        "match"
        (Workloads.Workload.verify_outcome_to_string v))
    verify

let test_pmake_completes_and_verifies () =
  let sys = boot () in
  Workloads.Pmake.setup sys small_pmake;
  let result, _ = Workloads.Pmake.run ~cfg:small_pmake sys in
  Alcotest.(check bool) "completed" true result.Workloads.Workload.completed;
  check_all_match "pmake" (Workloads.Pmake.verify ~cfg:small_pmake sys)

let test_ocean_completes_and_verifies () =
  let sys = boot () in
  Workloads.Ocean.setup sys small_ocean;
  let result, _ = Workloads.Ocean.run ~cfg:small_ocean sys in
  Alcotest.(check bool) "completed" true result.Workloads.Workload.completed;
  check_all_match "ocean" (Workloads.Ocean.verify ~cfg:small_ocean sys)

let test_raytrace_completes_and_verifies () =
  let sys = boot () in
  let result, _ = Workloads.Raytrace.run ~cfg:small_ray sys in
  Alcotest.(check bool) "completed" true result.Workloads.Workload.completed;
  check_all_match "raytrace" (Workloads.Raytrace.verify ~cfg:small_ray sys)

let test_pmake_deterministic () =
  (* Two separately-booted systems produce identical outputs and identical
     simulated completion times: the whole stack is deterministic. *)
  let run () =
    let sys = boot () in
    Workloads.Pmake.setup sys small_pmake;
    let result, _ = Workloads.Pmake.run ~cfg:small_pmake sys in
    (result.Workloads.Workload.elapsed_ns,
     Workloads.Workload.stable_content sys "/tmp/chess0.o")
  in
  let t1, o1 = run () in
  let t2, o2 = run () in
  Alcotest.(check int64) "same simulated duration" t1 t2;
  Alcotest.(check bool) "same outputs" true (o1 = o2)

let test_raytrace_detects_scene_corruption () =
  (* If a wild write silently corrupted the scene, the output checksum
     would differ from the reference: verify the oracle notices. *)
  let sys = boot () in
  let eng = sys.Hive.Types.eng in
  (* Corrupt one scene page mid-run by granting ourselves access. *)
  ignore
    (Sim.Engine.spawn eng ~name:"corruptor" (fun () ->
         Sim.Engine.delay 50_000_000L;
         (* Find an anon frame of the driver and scribble on it. *)
         match Hashtbl.fold (fun _ p acc -> p :: acc) sys.Hive.Types.proc_table [] with
         | [] -> ()
         | procs ->
           List.iter
             (fun (p : Hive.Types.process) ->
               Hashtbl.iter
                 (fun _ (m : Hive.Types.mapping) ->
                   match m.Hive.Types.map_lid.Hive.Types.tag with
                   | Hive.Types.Anon_obj _ ->
                     let addr =
                       Flash.Addr.addr_of_pfn sys.Hive.Types.mcfg
                         m.Hive.Types.map_pf.Hive.Types.pfn
                     in
                     Flash.Memory.poke
                       (Flash.Machine.memory sys.Hive.Types.machine)
                       addr (Bytes.make 8 '\xEE')
                   | _ -> ())
                 p.Hive.Types.mappings)
             procs));
  ignore (Workloads.Raytrace.run ~cfg:small_ray sys);
  let any_mismatch =
    List.exists
      (fun (_, v) -> v <> Workloads.Workload.Match)
      (Workloads.Raytrace.verify ~cfg:small_ray sys)
  in
  Alcotest.(check bool) "corruption detected by verifier" true any_mismatch

let test_campaign_node_failure_contained () =
  let o =
    Faultinj.Campaign.run_test ~seed:9 ~workload:Faultinj.Campaign.Use_pmake
      (Faultinj.Campaign.Node_failure { node = 2; at_ns = 100_000_000L })
  in
  Alcotest.(check bool) "passed" true (Faultinj.Campaign.passed o);
  (match o.Faultinj.Campaign.detection_ms with
  | Some d -> Alcotest.(check bool) "detection < 100ms" true (d < 100.)
  | None -> Alcotest.fail "no detection");
  (* The recovery master repairs and reboots the failed cell after
     diagnostics, so all four cells are live again by the end. *)
  Alcotest.(check (list int)) "all cells live after reintegration"
    [ 0; 1; 2; 3 ]
    (List.sort compare o.Faultinj.Campaign.survivors)

let test_campaign_cascade_contained () =
  (* Second node killed while the first failure's recovery round is in
     flight: no deadlock, the survivors finish the restarted round, the
     fault stays contained, and the master reintegrates both victims. *)
  let o =
    Faultinj.Campaign.run_cascade_test ~seed:21 ~first_node:2 ~second_node:1
      ~at_ns:100_000_000L ()
  in
  Alcotest.(check bool) "no deadlock" false o.Faultinj.Campaign.c_deadlocked;
  Alcotest.(check bool) "round restarted" true o.Faultinj.Campaign.c_restarted;
  Alcotest.(check bool) "contained" true o.Faultinj.Campaign.c_contained;
  Alcotest.(check bool) "both victims reintegrated" true
    o.Faultinj.Campaign.c_reintegrated;
  Alcotest.(check bool) "check run passed" true
    o.Faultinj.Campaign.c_check_passed;
  Alcotest.(check bool) "passed overall" true (Faultinj.Campaign.cascade_passed o)

let test_campaign_cow_corruption_contained () =
  let o =
    Faultinj.Campaign.run_test ~seed:11
      ~workload:Faultinj.Campaign.Use_raytrace
      (Faultinj.Campaign.Corrupt_cow
         {
           victim_cell = 1;
           at_ns = 400_000_000L;
           mode = Hive.System.Random_address;
         })
  in
  Alcotest.(check bool) "passed" true (Faultinj.Campaign.passed o);
  Alcotest.(check int) "victim identified" 1 o.Faultinj.Campaign.injected_cell

let test_campaign_map_corruption_contained () =
  let o =
    Faultinj.Campaign.run_test ~seed:13 ~workload:Faultinj.Campaign.Use_pmake
      (Faultinj.Campaign.Corrupt_map
         {
           victim_cell = 2;
           at_ns = 200_000_000L;
           mode = Hive.System.Self_pointer;
         })
  in
  Alcotest.(check bool) "passed" true (Faultinj.Campaign.passed o)

let suite =
  [
    Alcotest.test_case "pmake completes and verifies" `Slow
      test_pmake_completes_and_verifies;
    Alcotest.test_case "ocean completes and verifies" `Slow
      test_ocean_completes_and_verifies;
    Alcotest.test_case "raytrace completes and verifies" `Slow
      test_raytrace_completes_and_verifies;
    Alcotest.test_case "pmake is deterministic" `Slow test_pmake_deterministic;
    Alcotest.test_case "verifier detects real scene corruption" `Slow
      test_raytrace_detects_scene_corruption;
    Alcotest.test_case "campaign: node failure contained" `Slow
      test_campaign_node_failure_contained;
    Alcotest.test_case "campaign: double failure contained" `Slow
      test_campaign_cascade_contained;
    Alcotest.test_case "campaign: COW corruption contained" `Slow
      test_campaign_cow_corruption_contained;
    Alcotest.test_case "campaign: map corruption contained" `Slow
      test_campaign_map_corruption_contained;
  ]
