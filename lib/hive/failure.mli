(** Failure hints (Section 4.3).

   A cell is considered potentially failed when: an RPC to it times out; an
   access to its memory causes a bus error; its published clock word stops
   incrementing; or data read from its memory fails the consistency checks
   of the careful reference protocol. A hint triggers distributed
   agreement immediately; confirmation is required before recovery.

   During an in-flight recovery round, hints against participants that have
   observably stopped escalate into a round restart ({!Recovery.cell_died})
   instead of running agreement. *)

(** Is the suspect's kernel stopped or its hardware failed? Used to decide
    whether a mid-recovery hint is a nested failure. *)
val observably_down : Types.system -> Types.cell_id -> bool

val handle_hint :
  Types.system ->
  Types.cell -> suspect:Types.cell_id -> reason:string -> unit
val install : Types.system -> unit
