lib/flash/cpu.mli: Sim
