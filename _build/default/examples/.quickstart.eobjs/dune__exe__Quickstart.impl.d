examples/quickstart.ml: Array Bytes Flash Hive Int64 Printf Sim
