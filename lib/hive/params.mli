(** Calibrated kernel path costs, in nanoseconds of 200-MHz processor time.

   These are *component* costs taken from the paper's measured breakdowns
   (Table 5.2 and Section 6); end-to-end latencies, ratios and workload
   slowdowns are not hardcoded anywhere — they emerge from composing these
   components with the machine model, and the benches compare the emergent
   numbers against the paper. *)

type t = {
  tick_ns : int64;
  clock_check_cost_ns : int64;
  clock_stall_ticks : int;
  rpc_timeout_ns : int64;
  spin_timeout_ns : int64;
  rpc_max_retries : int;
  rpc_backoff_base_ns : int64;
  rpc_backoff_cap_ns : int64;
  rpc_dup_suppression : bool;
  rpc_epoch_check : bool;
  rpc_deadline_ns : int64;
      (** default end-to-end call budget across retransmits and backoff;
          0 = unlimited *)
  rpc_queue_bound : int;
      (** queued-service backlog depth at which sheddable requests are
          refused with EBUSY *)
  careful_on_ns : int64;
  careful_off_ns : int64;
  careful_check_ns : int64;
  rpc_client_send_ns : int64;
  rpc_client_recv_ns : int64;
  rpc_server_dispatch_ns : int64;
  rpc_server_reply_ns : int64;
  rpc_stub_marshal_ns : int64;
  rpc_alloc_free_ns : int64;
  rpc_queue_handoff_ns : int64;
  rpc_context_switch_ns : int64;
  rpc_server_pool : int;
  fault_local_hit_ns : int64;
  fault_client_fs_ns : int64;
  fault_client_lock_ns : int64;
  fault_client_vm_ns : int64;
  fault_import_ns : int64;
  fault_home_vm_ns : int64;
  fault_export_ns : int64;
  open_local_ns : int64;
  open_remote_extra_ns : int64;
  read_write_page_overhead_ns : int64;
  remote_read_bind_ns : int64;
  fs_block_alloc_ns : int64;
  fork_local_ns : int64;
  fork_remote_extra_ns : int64;
  exec_ns : int64;
  exit_ns : int64;
  context_switch_ns : int64;
  enable_preemptive_discard : bool;
  auto_reintegrate : bool;
  max_refault_retries : int;
  recovery_scan_page_ns : int64;
  recovery_phase_ns : int64;
  agreement_vote_ns : int64;
  agreement_quorum_check : bool;
  enable_salvage : bool;
  salvage_copy_ns : int64;
  wax_period_ns : int64;
  wax_scan_cost_ns : int64;
  wax_pressure_pct : int;
      (** a cell is under memory pressure when its free frames drop below
          this percentage of the frames it owns (floor of 8) *)
  wax_swap_want : int;
      (** frames a swap hint asks a pressured cell to push to swap; the
          cell's own thread validates the hint before acting *)
  wax_pref_len : int;
      (** length of the allocation-preference hint list *)
  clock_hand_low_pct : int;
      (** clock-hand local-pressure watermark, as a percentage of owned
          frames (floor of 8) *)
  enable_import_cache : bool;
  import_cache_pages : int;
  fault_readahead_max : int;
  batch_releases : bool;
}
val default : t

(** The pre-cache sharing protocol (no import cache, single-page fault
    locates, one release RPC per page), for A/B comparison. *)
val legacy_sharing : t -> t
