(** Measurement helpers: scalar summaries, counters and named-counter
    registries, shared by the kernel instrumentation and the benches. *)

(** Running summary of a series of observations. *)
type summary

(** [keep_samples] (default true) retains a bounded reservoir of
    observations so percentiles can be computed; memory stays fixed no
    matter how many samples are added. Disable to skip the reservoir. *)
val summary : ?keep_samples:bool -> unit -> summary

val add : summary -> float -> unit

(** Record a nanosecond duration. *)
val add_ns : summary -> int64 -> unit

val count : summary -> int

val sum : summary -> float

val mean : summary -> float

val min_value : summary -> float

val max_value : summary -> float

(** [percentile s 50.] is the median, estimated from the reservoir.
    Requires [keep_samples]. The sorted view is cached between adds, so
    repeated queries are cheap. *)
val percentile : summary -> float -> float

(** {2 Latency histograms}

    A log-bucket histogram over nanosecond durations: fixed power-of-two
    buckets for a compact exportable shape, plus an embedded reservoir
    summary for accurate percentiles. *)

type histogram

val histogram : unit -> histogram

val hist_add : histogram -> int64 -> unit

val hist_count : histogram -> int

val hist_mean : histogram -> float

val hist_min : histogram -> float

val hist_max : histogram -> float

(** [hist_percentile h 99.] estimates p99 in nanoseconds. *)
val hist_percentile : histogram -> float -> float

(** Non-empty buckets as [(lo_ns, hi_ns, count)], ascending; bucket
    [i > 0] covers durations in [[2^i, 2^(i+1))] ns. *)
val hist_nonempty : histogram -> (int64 * int64 * int) list

type counter

val counter : unit -> counter

val incr : counter -> unit

val incr_by : counter -> int -> unit

val get : counter -> int

val reset : counter -> unit

(** Named counters for kernel event accounting. *)
type registry

val registry : unit -> registry

val find : registry -> string -> counter

val bump : ?by:int -> registry -> string -> unit

val value : registry -> string -> int

val to_list : registry -> (string * int) list
