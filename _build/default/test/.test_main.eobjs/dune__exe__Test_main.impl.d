test/test_main.ml: Alcotest Test_careful Test_flash Test_fs Test_hive Test_recovery Test_rpc Test_sharing Test_sim Test_ssi Test_vm_cow Test_workloads
