(* Observability subsystem tests: event bus spans, ring sink, metrics
   JSON shape, and the recovery phase timeline. *)

let recovery_phases =
  [
    "recovery.hint"; "recovery.agreement"; "recovery.barrier1";
    "recovery.discard"; "recovery.barrier2"; "recovery.resume";
  ]

(* ---------- Event bus and spans ---------- *)

let test_span_nesting () =
  let eng = Sim.Engine.create () in
  let bus = Sim.Event.create eng in
  let r = Sim.Event.ring ~capacity:64 in
  Sim.Event.attach bus (Sim.Event.ring_sink r);
  ignore
    (Sim.Engine.spawn eng ~name:"worker" (fun () ->
         Sim.Event.span bus ~cat:Sim.Event.Workload "outer" (fun () ->
             Sim.Engine.delay 1_000L;
             Sim.Event.span bus ~cat:Sim.Event.Workload "inner" (fun () ->
                 Sim.Engine.delay 2_000L);
             Sim.Engine.delay 3_000L)));
  Sim.Engine.run eng;
  let evs = Sim.Event.ring_contents r in
  let shape =
    List.map
      (fun (e : Sim.Event.t) ->
        ( e.Sim.Event.name,
          (match e.Sim.Event.phase with
          | Sim.Event.Begin -> "B"
          | Sim.Event.End -> "E"
          | Sim.Event.Instant -> "i"
          | Sim.Event.Counter -> "C"),
          e.Sim.Event.ts ))
      evs
  in
  match shape with
  | [ ("outer", "B", t0); ("inner", "B", t1); ("inner", "E", t2);
      ("outer", "E", t3) ] ->
    Alcotest.(check int64) "inner starts after outer" 1_000L
      (Int64.sub t1 t0);
    Alcotest.(check int64) "inner span duration" 2_000L (Int64.sub t2 t1);
    Alcotest.(check int64) "outer span duration" 6_000L (Int64.sub t3 t0)
  | _ ->
    Alcotest.failf "unexpected event sequence: %s"
      (String.concat "; "
         (List.map (fun (n, p, _) -> n ^ "/" ^ p) shape))

let test_span_closes_on_exception () =
  let eng = Sim.Engine.create () in
  let bus = Sim.Event.create eng in
  let r = Sim.Event.ring ~capacity:8 in
  Sim.Event.attach bus (Sim.Event.ring_sink r);
  ignore
    (Sim.Engine.spawn eng (fun () ->
         try
           Sim.Event.span bus ~cat:(Sim.Event.Custom "test") "boom" (fun () ->
               failwith "inside span")
         with Failure _ -> ()));
  Sim.Engine.run eng;
  let phases =
    List.map (fun (e : Sim.Event.t) -> e.Sim.Event.phase)
      (Sim.Event.ring_contents r)
  in
  Alcotest.(check bool) "Begin and End both emitted" true
    (phases = [ Sim.Event.Begin; Sim.Event.End ])

let test_ring_overwrites_oldest () =
  let eng = Sim.Engine.create () in
  let bus = Sim.Event.create eng in
  let r = Sim.Event.ring ~capacity:4 in
  Sim.Event.attach bus (Sim.Event.ring_sink r);
  for i = 1 to 10 do
    Sim.Event.instant bus ~cat:(Sim.Event.Custom "test") (string_of_int i)
  done;
  Alcotest.(check int) "total counts every event" 10 (Sim.Event.ring_total r);
  Alcotest.(check (list string)) "ring keeps the newest"
    [ "7"; "8"; "9"; "10" ]
    (List.map (fun (e : Sim.Event.t) -> e.Sim.Event.name)
       (Sim.Event.ring_contents r))

let test_no_sink_is_free () =
  let eng = Sim.Engine.create () in
  let bus = Sim.Event.create eng in
  Alcotest.(check bool) "disabled without sinks" false
    (Sim.Event.enabled bus);
  (* Must not raise, and spans still return their value. *)
  let v = Sim.Event.span bus ~cat:Sim.Event.Rpc "noop" (fun () -> 41 + 1) in
  Alcotest.(check int) "span returns body value" 42 v

(* ---------- Histograms ---------- *)

let test_histogram_percentiles () =
  let h = Sim.Stats.histogram () in
  (* 1..1000 us, exact percentiles from the reservoir (n < capacity). *)
  for i = 1 to 1000 do
    Sim.Stats.hist_add h (Int64.of_int (i * 1000))
  done;
  Alcotest.(check int) "count" 1000 (Sim.Stats.hist_count h);
  let p50 = Sim.Stats.hist_percentile h 50. in
  let p99 = Sim.Stats.hist_percentile h 99. in
  Alcotest.(check bool) "p50 near median" true
    (p50 >= 490_000. && p50 <= 510_000.);
  Alcotest.(check bool) "p99 near tail" true
    (p99 >= 980_000. && p99 <= 1_000_000.);
  Alcotest.(check bool) "buckets cover all samples" true
    (List.fold_left (fun acc (_, _, n) -> acc + n) 0
       (Sim.Stats.hist_nonempty h)
    = 1000)

let test_reservoir_bounded () =
  let h = Sim.Stats.histogram () in
  for _ = 1 to 100_000 do
    Sim.Stats.hist_add h 5_000L
  done;
  Alcotest.(check int) "count tracks all adds" 100_000
    (Sim.Stats.hist_count h);
  Alcotest.(check (float 1.)) "constant series percentile" 5_000.
    (Sim.Stats.hist_percentile h 95.)

(* ---------- Metrics JSON shape ---------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let boot_sys ?(ncells = 4) () =
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = ncells; mem_pages_per_node = 512 }
  in
  let sys = Hive.System.boot ~mcfg ~ncells ~wax:false eng in
  (eng, sys)

let test_metrics_json_shape () =
  let eng, sys = boot_sys () in
  (* Drive one real RPC so the per-op histograms are non-empty. *)
  ignore
    (Sim.Engine.spawn eng (fun () ->
         ignore
           (Hive.Rpc.call sys ~from:sys.Hive.Types.cells.(0) ~target:1
              ~op:Hive.Agreement.ping_op Hive.Types.P_unit)));
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 1_000_000_000L) eng;
  let json = Hive.Metrics.to_json sys in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("metrics JSON has " ^ needle) true
        (contains ~needle json))
    [
      "\"sim_time_ns\""; "\"rpc\""; "\"client\""; "\"server\"";
      "\"agree.ping\""; "\"count\":1"; "\"p50_ns\""; "\"p95_ns\"";
      "\"p99_ns\""; "\"buckets\""; "\"cells\""; "\"id\":3";
      "\"status\":\"up\""; "\"live_set\""; "\"counters\"";
      "\"system_counters\""; "\"recovery_timeline\"";
    ]

(* ---------- Recovery timeline ---------- *)

let await_recovery sys =
  Hive.System.run_until sys
    ~deadline:(Int64.add (Sim.Engine.now sys.Hive.Types.eng) 3_000_000_000L)
    (fun () ->
      (not sys.Hive.Types.recovery_in_progress)
      && sys.Hive.Types.recovery_events <> [])

(* [phases] must appear in [timeline] in order (other entries may be
   interleaved), with non-decreasing timestamps. *)
let assert_ordered_subsequence timeline phases =
  let rec go entries expect last_ts =
    match expect with
    | [] -> ()
    | phase :: rest -> (
      match entries with
      | [] -> Alcotest.failf "phase %s missing from timeline" phase
      | (p, ts) :: tl when p = phase ->
        Alcotest.(check bool)
          (Printf.sprintf "%s not before its predecessor" phase)
          true
          (Int64.compare ts last_ts >= 0);
        go tl rest ts
      | _ :: tl -> go tl expect last_ts)
  in
  go timeline phases 0L

let test_recovery_timeline_phases () =
  let eng, sys = boot_sys () in
  let r = Sim.Event.ring ~capacity:4096 in
  Sim.Event.attach sys.Hive.Types.events (Sim.Event.ring_sink r);
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 50_000_000L) eng;
  Hive.System.inject_node_failure sys 2;
  Alcotest.(check bool) "recovery completed" true (await_recovery sys);
  (* The structured timeline records all six phases in order. *)
  assert_ordered_subsequence sys.Hive.Types.recovery_timeline recovery_phases;
  (* And the same six phases reached the event bus as Recovery instants. *)
  let recovery_events =
    List.filter_map
      (fun (e : Sim.Event.t) ->
        if e.Sim.Event.cat = Sim.Event.Recovery then
          Some (e.Sim.Event.name, e.Sim.Event.ts)
        else None)
      (Sim.Event.ring_contents r)
  in
  assert_ordered_subsequence recovery_events recovery_phases

let suite =
  [
    Alcotest.test_case "span nesting and timestamps" `Quick test_span_nesting;
    Alcotest.test_case "span closes on exception" `Quick
      test_span_closes_on_exception;
    Alcotest.test_case "ring keeps newest events" `Quick
      test_ring_overwrites_oldest;
    Alcotest.test_case "no sink means no overhead, same results" `Quick
      test_no_sink_is_free;
    Alcotest.test_case "histogram percentiles" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "reservoir stays bounded" `Quick test_reservoir_bounded;
    Alcotest.test_case "metrics JSON shape" `Quick test_metrics_json_shape;
    Alcotest.test_case "recovery timeline has six ordered phases" `Quick
      test_recovery_timeline_phases;
  ]
