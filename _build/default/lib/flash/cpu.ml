exception Halted of int

type t = {
  id : int;
  mutex : Sim.Mutex.t;
  mutable halted : bool;
  mutable stolen_ns : int64; (* cumulative interrupt time on this CPU *)
  mutable busy_ns : int64;
  mutable idle_since : int64;
}

let create id =
  {
    id;
    mutex = Sim.Mutex.create ();
    halted = false;
    stolen_ns = 0L;
    busy_ns = 0L;
    idle_since = 0L;
  }

let id t = t.id

let is_halted t = t.halted

let halt t = t.halted <- true

let restore t = t.halted <- false

let check t = if t.halted then raise (Halted t.id)

(* Interrupt handlers "steal" processor time: whoever currently runs a
   burst sees its burst stretched by the stolen amount. *)
let steal eng t ns =
  check t;
  t.stolen_ns <- Int64.add t.stolen_ns ns;
  t.busy_ns <- Int64.add t.busy_ns ns;
  Sim.Engine.delay ns;
  ignore eng

(* Occupy the CPU for [ns] of computation, queueing FIFO behind other
   occupants and stretching for any interrupt time stolen meanwhile. *)
let use eng t ns =
  check t;
  Sim.Mutex.with_lock eng t.mutex (fun () ->
      check t;
      t.busy_ns <- Int64.add t.busy_ns ns;
      let stolen0 = ref t.stolen_ns in
      let remaining = ref ns in
      while Int64.compare !remaining 0L > 0 do
        Sim.Engine.delay !remaining;
        check t;
        let extra = Int64.sub t.stolen_ns !stolen0 in
        stolen0 := t.stolen_ns;
        remaining := extra
      done)

let busy_ns t = t.busy_ns
