lib/sim/heap.ml: Array
