(* pmake: parallel compilation of 11 files of GnuChess 3.1, four at a time
   (Table 7.1) — the paper's compute-server workload.

   Each compile job execs the shared compiler binary, searches include
   directories, reads its source, and pipelines through preprocessor /
   compiler / assembler stages with intermediate files in /tmp — whose
   data home is cell 0, making one cell the file server for compiler
   temporaries exactly as in Section 4.2 (the cell serving /tmp showed the
   peak count of remotely-writable pages). Outputs are deterministic
   functions of the inputs so fault-injection runs can detect corruption. *)

type cfg = {
  files : int;
  jobs : int; (* concurrent compiles *)
  src_bytes : int;
  hdr_bytes : int;
  cc_bytes : int;
  intermediate_bytes : int;
  obj_bytes : int;
  anon_pages : int; (* compiler heap, touched per job *)
  include_searches : int; (* small name-lookup ops per job *)
  cpp_ns : int64;
  cc1_ns : int64;
  as_ns : int64;
  link_ns : int64;
}

let default =
  {
    files = 11;
    jobs = 4;
    src_bytes = 48 * 1024;
    hdr_bytes = 512 * 1024;
    cc_bytes = 1024 * 1024;
    intermediate_bytes = 96 * 1024;
    obj_bytes = 32 * 1024;
    anon_pages = 220;
    include_searches = 460;
    cpp_ns = 340_000_000L;
    cc1_ns = 880_000_000L;
    as_ns = 330_000_000L;
    link_ns = 400_000_000L;
  }

let src_path i = Printf.sprintf "/src/chess%d.c" i

let obj_path i = Printf.sprintf "/tmp/chess%d.o" i

let cc_path = "/bin/cc"

let hdr_path = "/usr/include/chess.h"

let lib_path = "/usr/lib/libchess.so"

let lib_bytes = 768 * 1024

let inc_path j = Printf.sprintf "/usr/include/sub/dep%d.h" j

let src_content i =
  Workload.synth_content ~tag:(src_path i) ~bytes:default.src_bytes

(* Reference outputs for verification. *)
let expected_obj cfg i =
  Workload.derive_output
    ~input:(Workload.synth_content ~tag:(src_path i) ~bytes:cfg.src_bytes)
    ~bytes:cfg.obj_bytes

let expected_binary cfg =
  let all = Buffer.create (cfg.files * cfg.obj_bytes) in
  for i = 0 to cfg.files - 1 do
    Buffer.add_bytes all (expected_obj cfg i)
  done;
  Workload.derive_output ~input:(Buffer.to_bytes all) ~bytes:(8 * 4096)

let binary_path = "/tmp/gnuchess"

(* Create the input tree: compiler, headers, sources. *)
let setup (sys : Hive.Types.system) cfg =
  let c0 = sys.Hive.Types.cells.(0) in
  let p =
    Hive.Process.spawn sys c0 ~name:"pmake-setup" (fun sys p ->
        let mk path bytes =
          let fd =
            Hive.Syscall.creat sys p
              ~content:(Workload.synth_content ~tag:path ~bytes)
              path
          in
          Hive.Syscall.close sys p ~fd
        in
        mk cc_path cfg.cc_bytes;
        mk hdr_path cfg.hdr_bytes;
        mk lib_path lib_bytes;
        for j = 0 to 19 do
          mk (inc_path j) 2048
        done;
        for i = 0 to cfg.files - 1 do
          mk (src_path i) cfg.src_bytes
        done;
        Hive.Syscall.sync sys p;
        (* Warm the file cache, as the paper does before every run. *)
        let warm path bytes =
          let fd = Hive.Syscall.openf sys p path in
          ignore (Hive.Syscall.read sys p ~fd ~len:bytes);
          Hive.Syscall.close sys p ~fd
        in
        warm cc_path cfg.cc_bytes;
        warm hdr_path cfg.hdr_bytes;
        warm lib_path lib_bytes;
        for i = 0 to cfg.files - 1 do
          warm (src_path i) cfg.src_bytes
        done)
  in
  ignore
    (Hive.System.run_until_processes_done sys ~deadline:120_000_000_000L [ p ])

(* One compile job, running as a forked process (possibly remote). *)
let compile_job cfg i (sys : Hive.Types.system) (p : Hive.Types.process) =
  (* exec the compiler: map and touch its text pages (shared machine-wide). *)
  ignore (Hive.Syscall.exec sys p cc_path);
  (* Include-path search: many small lookups, most of which miss. *)
  for j = 1 to cfg.include_searches do
    let path = inc_path (j mod 20) in
    match Hive.Fs.open_file sys sys.Hive.Types.cells.(p.Hive.Types.proc_cell) ~path with
    | Ok _ -> ()
    | Error _ -> ()
  done;
  (* Map and touch the shared C library (text shared machine-wide). *)
  let lfd = Hive.Syscall.openf sys p lib_path in
  let lreg =
    Hive.Syscall.mmap_file sys p ~fd:lfd
      ~npages:(lib_bytes / Hive.Types.page_size sys)
      ~writable:false
  in
  for k = 0 to lreg.Hive.Types.npages - 1 do
    Hive.Syscall.touch sys p ~vpage:(lreg.Hive.Types.start_page + k)
      ~write:false
  done;
  (* Map and touch the main header. *)
  let hfd = Hive.Syscall.openf sys p hdr_path in
  let hreg =
    Hive.Syscall.mmap_file sys p ~fd:hfd
      ~npages:(cfg.hdr_bytes / Hive.Types.page_size sys)
      ~writable:false
  in
  for k = 0 to hreg.Hive.Types.npages - 1 do
    Hive.Syscall.touch sys p ~vpage:(hreg.Hive.Types.start_page + k)
      ~write:false
  done;
  (* Read the source. *)
  let sfd = Hive.Syscall.openf sys p (src_path i) in
  let src = Hive.Syscall.read sys p ~fd:sfd ~len:cfg.src_bytes in
  Hive.Syscall.close sys p ~fd:sfd;
  (* Compiler heap, allocated incrementally as compilation proceeds (so
     address-map damage is tripped by a later fault, as in a real
     compiler that keeps allocating). *)
  let heap = Hive.Syscall.mmap_anon sys p ~npages:cfg.anon_pages in
  let heap_cursor = ref 0 in
  let grow_heap n =
    let upto = min cfg.anon_pages (!heap_cursor + n) in
    while !heap_cursor < upto do
      Hive.Syscall.touch sys p
        ~vpage:(heap.Hive.Types.start_page + !heap_cursor)
        ~write:true;
      incr heap_cursor
    done
  in
  (* Compute in slices, allocating heap between slices. *)
  let sliced_compute total =
    let slices = 10 in
    let per = Int64.div total (Int64.of_int slices) in
    for _ = 1 to slices do
      Hive.Syscall.compute sys p per;
      grow_heap (cfg.anon_pages / 30)
    done
  in
  grow_heap (cfg.anon_pages / 4);
  (* The output object is created (and kept open for writing) up front,
     like a linker holding its output; its pages stay remotely writable
     for the duration of the job. *)
  let ofd = Hive.Syscall.creat sys p (obj_path i) in
  ignore (Hive.Syscall.write sys p ~fd:ofd (Bytes.make cfg.obj_bytes '\000'));
  (* cpp: source -> /tmp/N.i *)
  sliced_compute cfg.cpp_ns;
  let i_path = Printf.sprintf "/tmp/cc%d.i" i in
  let i_data = Workload.derive_output ~input:src ~bytes:cfg.intermediate_bytes in
  let ifd = Hive.Syscall.creat sys p i_path in
  ignore (Hive.Syscall.write sys p ~fd:ifd i_data);
  Hive.Syscall.seek sys p ~fd:ifd 0;
  let i_back = Hive.Syscall.read sys p ~fd:ifd ~len:cfg.intermediate_bytes in
  (* cc1 keeps the preprocessor output open through its front-end pass. *)
  sliced_compute (Int64.div cfg.cc1_ns 2L);
  Hive.Syscall.close sys p ~fd:ifd;
  sliced_compute (Int64.div cfg.cc1_ns 2L);
  let s_path = Printf.sprintf "/tmp/cc%d.s" i in
  let s_data =
    Workload.derive_output ~input:i_back ~bytes:cfg.intermediate_bytes
  in
  let sfd = Hive.Syscall.creat sys p s_path in
  ignore (Hive.Syscall.write sys p ~fd:sfd s_data);
  Hive.Syscall.close sys p ~fd:sfd;
  (* as: /tmp/N.s -> /tmp/chessN.o; the object is derived from the source
     so corruption anywhere in the pipeline shows up in the output. *)
  sliced_compute cfg.as_ns;
  Hive.Syscall.seek sys p ~fd:ofd 0;
  ignore
    (Hive.Syscall.write sys p ~fd:ofd
       (Workload.derive_output ~input:src ~bytes:cfg.obj_bytes));
  Hive.Syscall.close sys p ~fd:ofd;
  Hive.Syscall.unlink sys p i_path;
  Hive.Syscall.unlink sys p s_path

(* The make driver: schedules [cfg.jobs] compiles at a time round-robin
   over the cells, then links. *)
let driver cfg (sys : Hive.Types.system) (p : Hive.Types.process) =
  let ncells = Array.length sys.Hive.Types.cells in
  let slots = Sim.Semaphore.create cfg.jobs in
  let eng = sys.Hive.Types.eng in
  let children = ref [] in
  for i = 0 to cfg.files - 1 do
    Sim.Semaphore.acquire eng slots;
    let target = i mod ncells in
    match
      Hive.Process.fork sys p ~on_cell:target
        ~name:(Printf.sprintf "cc%d" i)
        (fun sys child ->
          Fun.protect
            ~finally:(fun () -> Sim.Semaphore.release eng slots)
            (fun () -> compile_job cfg i sys child))
    with
    | Ok child -> children := child :: !children
    | Error _ ->
      (* Target cell is down: skip this compile (make reports an error). *)
      Sim.Semaphore.release eng slots
  done;
  List.iter (fun c -> ignore (Hive.Process.wait sys p c)) !children;
  (* Link step: read every object, produce the binary. Like make, give up
     if any compile failed (a cell died): no binary rather than a bad one. *)
  let all = Buffer.create (cfg.files * cfg.obj_bytes) in
  let missing = ref false in
  for i = 0 to cfg.files - 1 do
    match Hive.Fs.open_file sys sys.Hive.Types.cells.(p.Hive.Types.proc_cell)
            ~path:(obj_path i)
    with
    | Ok (vn, _) when (match vn with
        | Hive.Types.Local_vnode f -> f.Hive.Types.size >= cfg.obj_bytes
        | Hive.Types.Shadow_vnode _ -> true) ->
      let fd = Hive.Syscall.openf sys p (obj_path i) in
      Buffer.add_bytes all (Hive.Syscall.read sys p ~fd ~len:cfg.obj_bytes);
      Hive.Syscall.close sys p ~fd
    | Ok _ | Error _ -> missing := true
  done;
  if not !missing then begin
    Hive.Syscall.compute sys p cfg.link_ns;
    let fd = Hive.Syscall.creat sys p binary_path in
    ignore
      (Hive.Syscall.write sys p ~fd
         (Workload.derive_output ~input:(Buffer.to_bytes all)
            ~bytes:(8 * 4096)));
    Hive.Syscall.close sys p ~fd
  end;
  Hive.Syscall.sync sys p

(* Run pmake to completion; returns the result and the driver process. *)
let run ?(cfg = default) (sys : Hive.Types.system) =
  let t0 = Sim.Engine.now sys.Hive.Types.eng in
  let c0 = sys.Hive.Types.cells.(0) in
  let p = Hive.Process.spawn sys c0 ~name:"pmake" (driver cfg) in
  let completed =
    Hive.System.run_until_processes_done sys ~deadline:600_000_000_000L [ p ]
  in
  let elapsed = Int64.sub (Sim.Engine.now sys.Hive.Types.eng) t0 in
  ( {
      Workload.name = "pmake";
      elapsed_ns = elapsed;
      completed = completed && p.Hive.Types.exit_code = Some 0;
      procs_total = cfg.files + 1;
      procs_killed = 0;
    },
    p )

(* Verify every output object against its reference. *)
let verify ?(cfg = default) (sys : Hive.Types.system) =
  let outcomes = ref [] in
  for i = 0 to cfg.files - 1 do
    outcomes :=
      (obj_path i, Workload.verify_output sys ~path:(obj_path i)
                     ~reference:(expected_obj cfg i))
      :: !outcomes
  done;
  outcomes :=
    (binary_path,
     Workload.verify_output sys ~path:binary_path
       ~reference:(expected_binary cfg))
    :: !outcomes;
  List.rev !outcomes
