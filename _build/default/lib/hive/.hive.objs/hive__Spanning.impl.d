lib/hive/spanning.ml: Array Bytes Fs List Printf Process Sim Types Vm
