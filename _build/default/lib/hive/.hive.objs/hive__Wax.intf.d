lib/hive/wax.mli: Flash Types
