type t = { mutable state : int64 }

let create seed = { state = Int64.of_int (seed lxor 0x5851f42d) }

let of_int64 seed = { state = Int64.logxor seed 0x5851F42D4C957F2DL }

(* splitmix64: tiny, fast, and good enough for workload synthesis. *)
let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let split t =
  let seed = Int64.to_int (next t) land max_int in
  { state = Int64.of_int seed }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let int64 t bound =
  if Int64.compare bound 0L <= 0 then invalid_arg "Prng.int64";
  Int64.rem (Int64.shift_right_logical (next t) 1) bound

let float t =
  let x = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* [float t] is in [0, 1), so [1 - u] is in (0, 1] and the log is finite. *)
let exponential t ~mean =
  if mean <= 0. then invalid_arg "Prng.exponential: mean must be positive";
  -.mean *. log (1. -. float t)

(* Knuth's product-of-uniforms method; exp (-lambda) underflows to 0 well
   past 700, and interactive arrival batches are tiny, so the bound is not
   a practical restriction. *)
let poisson t lambda =
  if lambda <= 0. || lambda > 700. then
    invalid_arg "Prng.poisson: lambda must be in (0, 700]";
  let l = Stdlib.exp (-.lambda) in
  let rec go k p =
    let p = p *. float t in
    if p > l then go (k + 1) p else k
  in
  go 0 1.0

(* Zipf popularity over ranks 0..n-1: rank i has weight 1/(i+1)^s. The
   normalized CDF is precomputed once so each draw is one uniform plus a
   binary search. *)
type zipf = { zcdf : float array }

let zipf ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  if s < 0. then invalid_arg "Prng.zipf: s must be non-negative";
  let zcdf = Array.make n 0. in
  let total = ref 0. in
  for i = 0 to n - 1 do
    total := !total +. (1. /. Float.pow (float_of_int (i + 1)) s);
    zcdf.(i) <- !total
  done;
  for i = 0 to n - 1 do
    zcdf.(i) <- zcdf.(i) /. !total
  done;
  { zcdf }

let zipf_draw t z =
  let u = float t in
  let n = Array.length z.zcdf in
  (* First rank whose cumulative weight exceeds u. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.zcdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
