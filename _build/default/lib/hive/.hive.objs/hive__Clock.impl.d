lib/hive/clock.ml: Array Bytes Careful_ref Flash Int64 List Params Printf Sim Types
