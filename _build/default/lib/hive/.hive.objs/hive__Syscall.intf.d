lib/hive/syscall.mli: Bytes Signal Types
