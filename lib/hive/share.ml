(* Logical-level memory sharing primitives (Table 5.1 of the paper).

   export: the data home records that a client cell is accessing one of
   its data pages (pinning it and noting the dependency for recovery), and
   grants firewall write permission to the client's processors if the
   client requested a writable mapping.

   import: the client allocates an extended pfdat bound to the remote
   page and inserts it into its pfdat hash table, after which most of the
   kernel operates on the page as if it were local.

   release: the client frees the extended pfdat and tells the data home,
   which unpins the page (keeping it cached on its own free list for fast
   re-access).

   On top of the three primitives this module implements the import
   cache and batched protocol: a released read-only file import is
   *parked* in a bounded per-cell cache instead of being freed, so the
   next access rebinds it without any RPC. The data home keeps its export
   record for a parked binding — that record is the channel through which
   the binding is invalidated when another cell later imports the page
   writable (share.invalidate callback). Parked bindings are also flushed
   on file generation bump (checked against [import_gen] at re-access)
   and dropped wholesale when the data home dies (recovery flush /
   preemptive discard). Bulk release paths hand their doomed bindings to
   [release_many], which coalesces them into one vectored
   share.release_batch RPC per data home. *)

type Types.payload +=
  | P_release of { lid : Types.logical_id }
  | P_release_batch of { lids : Types.logical_id list }
  | P_invalidate of { lids : Types.logical_id list }
  | P_invalidate_ack of { kept : Types.logical_id list }

let release_op = Rpc.Op.declare "share.release"
let release_batch_op = Rpc.Op.declare ~reply_bytes:16 "share.release_batch"

(* Dropping a parked binding twice is harmless, so replays may skip the
   server reply cache. *)
let invalidate_op = Rpc.Op.declare ~idempotent:true "share.invalidate"

let page_event sys (c : Types.cell) name (pf : Types.pfdat) ~peer =
  if Sim.Event.enabled sys.Types.events then
    Sim.Event.instant sys.Types.events ~cell:c.Types.cell_id
      ~args:
        [ ("pfn", Sim.Event.Int pf.Types.pfn); ("peer", Sim.Event.Int peer) ]
      ~cat:Sim.Event.Page name

(* Data-home side: a client released its binding. Write permission was
   granted "as long as any process on that cell has the page mapped"
   (Section 4.2), so the release also revokes any firewall grant. *)
let unexport (sys : Types.system) (home : Types.cell) ~client ~lid =
  match Pfdat.lookup home lid with
  | Some pf ->
    pf.Types.exported_to <-
      List.filter (fun c -> c <> client) pf.Types.exported_to;
    Wild_write.revoke_client sys home pf ~client
  | None -> ()

(* Does granting [client] a writable export require invalidating other
   cells' (possibly parked) bindings first? Used by locate handlers to
   decide whether they can answer at interrupt level: an invalidation is
   an RPC, so it forces the queued path. *)
let needs_invalidate (pf : Types.pfdat) ~client =
  List.exists (fun c -> c <> client) pf.Types.exported_to

(* Data-home side: tell each client holding an export record for [lids]
   to drop any parked binding. A client keeps bindings that are still
   actively mapped (the hardware keeps those coherent); for the rest the
   export record and any firewall grant are retired here. An unreachable
   client keeps its export record — recovery will reconcile if it is
   actually dead, and a parked binding on a live-but-degraded client
   fails the generation/invalidation checks at re-access time. *)
let invalidate_clients (sys : Types.system) (home : Types.cell) ~clients
    ~lids =
  List.iter
    (fun client ->
      if
        client <> home.Types.cell_id
        && List.mem client home.Types.live_set
      then begin
        Types.bump home "share.invalidates";
        match
          Rpc.call sys ~from:home ~target:client ~op:invalidate_op
            ~arg_bytes:(32 + (24 * List.length lids))
            (P_invalidate { lids })
        with
        | Ok (P_invalidate_ack { kept }) ->
          List.iter
            (fun lid ->
              if not (List.mem lid kept) then
                unexport sys home ~client ~lid)
            lids
        | Ok _ | Error _ -> ()
      end)
    clients

(* Data-home side: record a client's access to a cached page. A writable
   export first invalidates every other client's parked binding — they
   were imported under a promise the page would not change under them. *)
let export (sys : Types.system) (home : Types.cell) (pf : Types.pfdat)
    ~client ~writable =
  (* Record the export before any blocking work: the record is what pins
     the pfdat against the clock hand's reclaim. A locate that paged this
     frame in moments ago would otherwise lose it to a sweep during the
     invalidation RPCs or the bookkeeping delay below, and the reply
     would ship a pfn already back on the free list. *)
  if not (List.mem client pf.Types.exported_to) then
    pf.Types.exported_to <- client :: pf.Types.exported_to;
  (if writable && needs_invalidate pf ~client then
     (* Only file pages are ever parked (see [cacheable]), so anon
        exports never need the callback. *)
     match pf.Types.lid with
     | Some ({ Types.tag = Types.File_obj _; _ } as lid) ->
       invalidate_clients sys home
         ~clients:(List.filter (fun c -> c <> client) pf.Types.exported_to)
         ~lids:[ lid ]
     | Some _ | None -> ());
  Sim.Engine.delay sys.Types.params.Params.fault_export_ns;
  Types.bump home "share.exports";
  page_event sys home "page.export" pf ~peer:client;
  if writable then Wild_write.grant_for_export sys home pf ~client

(* Client-side release/re-import ordering. A release frees the local
   binding *before* its RPC reaches the data home, so another process on
   the same cell could fault the lid back in during that window; the
   stale release would then retire the export record belonging to the
   new binding, silently severing the home's invalidation channel. Each
   in-flight release registers its lid here; [import] stalls on the lid
   until the release lands (either way — a failed release is counted and
   hinted separately). *)
let mark_pending (client : Types.cell) (lid : Types.logical_id) =
  let n =
    Option.value ~default:0
      (Hashtbl.find_opt client.Types.pending_releases lid)
  in
  Hashtbl.replace client.Types.pending_releases lid (n + 1)

let clear_pending (client : Types.cell) (lid : Types.logical_id) =
  match Hashtbl.find_opt client.Types.pending_releases lid with
  | Some n when n > 1 ->
    Hashtbl.replace client.Types.pending_releases lid (n - 1)
  | Some _ -> Hashtbl.remove client.Types.pending_releases lid
  | None -> ()

let await_no_pending (sys : Types.system) (client : Types.cell)
    (lid : Types.logical_id) =
  while Hashtbl.mem client.Types.pending_releases lid do
    Types.bump client "share.release_import_stalls";
    Sim.Engine.delay sys.Types.params.Params.fault_import_ns
  done

(* Client-side mirror of the home's grant bookkeeping. Kept here (rather
   than ad hoc in callers) so every import path — file fault, syscall
   batch, anon/spanning region — records a writable binding the same way:
   the refault path and recovery's dirty scan both read these fields. *)
let note_writable (client : Types.cell) (pf : Types.pfdat) ~writable =
  if writable then begin
    if not (List.mem client.Types.cell_id pf.Types.write_granted_to) then
      pf.Types.write_granted_to <-
        client.Types.cell_id :: pf.Types.write_granted_to;
    pf.Types.dirty <- true
  end

(* Client side: pull a parked binding back into active use. *)
let cache_hit (client : Types.cell) (pf : Types.pfdat) =
  if pf.Types.cached then begin
    pf.Types.cached <- false;
    client.Types.import_cache <-
      List.filter (fun q -> q != pf) client.Types.import_cache;
    Types.bump client "share.cache_hits"
  end

(* Client side: bind a remote page into the local pfdat table.

   CC-NUMA special case (Section 5.5): when the client is the *memory
   home* of a frame it loaned out and the data home placed this page in
   it, the preexisting (loaned) pfdat is reused rather than allocating an
   extended one — the logical-level and physical-level state machines use
   separate fields within the pfdat. *)
let import (sys : Types.system) (client : Types.cell) ~pfn ~data_home ~lid
    ~gen ~writable =
  await_no_pending sys client lid;
  Sim.Engine.delay sys.Types.params.Params.fault_import_ns;
  Types.bump client "share.imports";
  match Pfdat.lookup client lid with
  | Some pf ->
    (* Raced with another local importer, or rebinding a parked page. *)
    cache_hit client pf;
    note_writable client pf ~writable;
    pf
  | None ->
    if Sim.Event.enabled sys.Types.events then
      Sim.Event.instant sys.Types.events ~cell:client.Types.cell_id
        ~args:[ ("pfn", Sim.Event.Int pfn); ("peer", Sim.Event.Int data_home) ]
        ~cat:Sim.Event.Page "page.import";
    let pf =
      match Hashtbl.find_opt client.Types.frames pfn with
      | Some existing when existing.Types.loaned_to <> None ->
        (* Reimporting one of our own loaned frames. *)
        Types.bump client "share.reimports";
        existing
      | Some _ | None ->
        let pf = Pfdat.alloc_extended client ~pfn in
        Hashtbl.replace client.Types.frames pfn pf;
        pf
    in
    pf.Types.imported_from <- Some data_home;
    pf.Types.import_gen <- gen;
    note_writable client pf ~writable;
    Pfdat.insert client lid pf;
    pf

(* A lost release means the data home keeps the export record (and any
   firewall write grant) forever — a real leak, not a transient. Count
   it and report a failure hint so membership can investigate the home. *)
let release_failed (sys : Types.system) (client : Types.cell) ~home =
  Types.bump client "share.release_lost";
  Rpc.report_hint sys client home
    "share.release lost: export record may be leaked"

(* Drop the binding and notify the data home now, bypassing the cache.
   Returns false if the release RPC was lost. *)
let release_now (sys : Types.system) (client : Types.cell)
    (pf : Types.pfdat) ~home ~lid =
  if pf.Types.loaned_to <> None then begin
    (* A reimported loaned frame: drop only the logical-level state. *)
    Pfdat.remove client pf;
    pf.Types.imported_from <- None
  end
  else Pfdat.free_extended client pf;
  Types.bump client "share.releases";
  page_event sys client "page.release" pf ~peer:home;
  if List.mem home client.Types.live_set then begin
    mark_pending client lid;
    Fun.protect
      ~finally:(fun () -> clear_pending client lid)
      (fun () ->
        match
          Rpc.call sys ~from:client ~target:home ~op:release_op
            (P_release { lid })
        with
        | Ok _ -> true
        | Error _ ->
          release_failed sys client ~home;
          false)
  end
  else true

(* Only idle read-only file imports from a live home are parked: anything
   writable must retire its firewall grant, loaned frames belong to the
   physical-level machine, and anon pages are freed on their last unmap. *)
let cacheable (sys : Types.system) (client : Types.cell) (pf : Types.pfdat)
    ~home ~(lid : Types.logical_id) =
  sys.Types.params.Params.enable_import_cache
  && pf.Types.extended
  && pf.Types.loaned_to = None
  && pf.Types.refs = 0
  && (not (List.mem client.Types.cell_id pf.Types.write_granted_to))
  && (match lid.Types.tag with
     | Types.File_obj _ -> true
     | Types.Anon_obj _ -> false)
  && List.mem home client.Types.live_set

(* Park a released binding (MRU-first), evicting past capacity. An
   evicted binding takes the legacy path: free + release RPC. *)
let park (sys : Types.system) (client : Types.cell) (pf : Types.pfdat) =
  pf.Types.cached <- true;
  client.Types.import_cache <- pf :: client.Types.import_cache;
  Types.bump client "share.cache_insertions";
  let cap = sys.Types.params.Params.import_cache_pages in
  (* Parks happen one page at a time, so the cache is almost never over
     capacity: probe allocation-free for an overflow before paying for a
     list rebuild. *)
  let rec nth_tail n l =
    if n <= 0 then l else match l with [] -> [] | _ :: tl -> nth_tail (n - 1) tl
  in
  if nth_tail cap client.Types.import_cache <> [] then begin
    let rec split n = function
      | [] -> ([], [])
      | l when n <= 0 -> ([], l)
      | x :: tl ->
        let keep, drop = split (n - 1) tl in
        (x :: keep, drop)
    in
    let keep, drop = split cap client.Types.import_cache in
    client.Types.import_cache <- keep;
    List.iter
      (fun (q : Types.pfdat) ->
        q.Types.cached <- false;
        Types.bump client "share.cache_evictions";
        match (q.Types.imported_from, q.Types.lid) with
        | Some home, Some lid -> ignore (release_now sys client q ~home ~lid)
        | _ -> Pfdat.free_extended client q)
      drop
  end

(* Client side: drop an imported page binding. Parks it when cacheable;
   otherwise frees it and notifies the data home. Never raises — a lost
   release is counted and hinted in [release_now]. *)
let release (sys : Types.system) (client : Types.cell) (pf : Types.pfdat) =
  if not pf.Types.cached then
    match (pf.Types.imported_from, pf.Types.lid) with
    | Some home, Some lid ->
      if cacheable sys client pf ~home ~lid then park sys client pf
      else ignore (release_now sys client pf ~home ~lid)
    | _ ->
      (* The binding may already have been dropped (e.g. by recovery's
         flush while this thread was mid-fault): releasing is idempotent. *)
      Types.bump client "share.release_races";
      if pf.Types.extended then Pfdat.free_extended client pf

(* Client side: release a batch of bindings, coalescing the home
   notifications into one vectored release_batch RPC per data home.
   Cacheable bindings are parked; loaned frames and dead homes take the
   per-page path. Raises [Syscall_error] at the end if any batch RPC was
   lost (after counting and hinting each lost lid), so bulk callers can
   surface the error without losing the rest of the batch. *)
let release_many (sys : Types.system) (client : Types.cell)
    (pfs : Types.pfdat list) =
  let failed = ref None in
  let batched = ref [] in
  List.iter
    (fun (pf : Types.pfdat) ->
      if not pf.Types.cached then
        match (pf.Types.imported_from, pf.Types.lid) with
        | Some home, Some lid ->
          if cacheable sys client pf ~home ~lid then park sys client pf
          else if
            (not sys.Types.params.Params.batch_releases)
            || pf.Types.loaned_to <> None
            || not (List.mem home client.Types.live_set)
          then begin
            if not (release_now sys client pf ~home ~lid) then
              failed := Some Types.EHOSTDOWN
          end
          else begin
            Pfdat.free_extended client pf;
            Types.bump client "share.releases";
            page_event sys client "page.release" pf ~peer:home;
            mark_pending client lid;
            batched := (home, lid) :: !batched
          end
        | _ ->
          Types.bump client "share.release_races";
          if pf.Types.extended then Pfdat.free_extended client pf)
    pfs;
  let homes = List.sort_uniq compare (List.map fst !batched) in
  Fun.protect
    ~finally:(fun () ->
      (* Unblock stalled re-importers even if this thread is killed
         mid-batch (recovery, signals): every marked lid is cleared
         exactly once. *)
      List.iter (fun (_, lid) -> clear_pending client lid) !batched)
    (fun () ->
      List.iter
        (fun home ->
          let lids =
            List.filter_map
              (fun (h, lid) -> if h = home then Some lid else None)
              !batched
          in
          match
            Rpc.call sys ~from:client ~target:home ~op:release_batch_op
              ~arg_bytes:(32 + (24 * List.length lids))
              (P_release_batch { lids })
          with
          | Ok _ -> ()
          | Error e ->
            List.iter (fun _ -> release_failed sys client ~home) lids;
            failed := Some e)
        homes);
  match !failed with Some e -> raise (Types.Syscall_error e) | None -> ()

(* Drop an import binding without an RPC (used during recovery, when the
   data home is gone or will clean up on its own side of the barrier). *)
let drop_import (client : Types.cell) (pf : Types.pfdat) =
  if pf.Types.loaned_to <> None then begin
    Pfdat.remove client pf;
    pf.Types.imported_from <- None
  end
  else Pfdat.free_extended client pf

let registered = ref false

let register_handlers () =
  if not !registered then begin
    registered := true;
    Rpc.register release_op (fun sys cell ~src arg ->
        match arg with
        | P_release { lid } ->
          unexport sys cell ~client:src ~lid;
          Types.Immediate (Ok Types.P_unit)
        | _ -> Types.Immediate (Error Types.EFAULT));
    (* Queued: unexport may RPC the memory home of a borrowed frame to
       retire its firewall grant, which an interrupt handler cannot do. *)
    Rpc.register release_batch_op (fun sys cell ~src arg ->
        match arg with
        | P_release_batch { lids } ->
          Types.Queued
            (fun () ->
              List.iter (fun lid -> unexport sys cell ~client:src ~lid) lids;
              Ok Types.P_unit)
        | _ -> Types.Immediate (Error Types.EFAULT));
    (* Immediate: only touches the local import cache, never blocks. *)
    Rpc.register invalidate_op (fun _sys cell ~src:_ arg ->
        match arg with
        | P_invalidate { lids } ->
          let kept = ref [] in
          List.iter
            (fun lid ->
              match Pfdat.lookup cell lid with
              | Some pf when pf.Types.cached ->
                Types.bump cell "share.cache_invalidations";
                Pfdat.free_extended cell pf
              | Some _ ->
                (* Still actively mapped here: the hardware keeps the
                   mapping coherent, so the export record must stay. *)
                kept := lid :: !kept
              | None -> ())
            lids;
          Types.Immediate (Ok (P_invalidate_ack { kept = !kept }))
        | _ -> Types.Immediate (Error Types.EFAULT))
  end
