examples/rolling_upgrade.mli:
