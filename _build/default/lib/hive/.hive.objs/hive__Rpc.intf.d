lib/hive/rpc.mli: Flash Hashtbl Types
