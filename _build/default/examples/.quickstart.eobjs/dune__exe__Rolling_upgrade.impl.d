examples/rolling_upgrade.ml: Array Hive Int64 List Printf Sim String
