type message = ..

type kind = Request | Reply

exception Too_large of int

exception Target_failed of int

type envelope = { src_proc : int; size : int; msg : message }

type node_queues = {
  requests : envelope Sim.Mailbox.t;
  replies : envelope Sim.Mailbox.t;
  mutable up : bool;
  mutable epoch : int;
      (* bumped on every failure so in-flight deliveries scheduled before
         the failure can never land in a restored node's fresh queues *)
}

(* A window of interconnect degradation on some set of links: messages from
   [deg_from] to [deg_to] (-1 = any) between [from_ns, until_ns) are
   dropped, duplicated or delayed with the given percent probabilities,
   drawn from the window's own PRNG so arming several windows (or shrinking
   a fuzz plan) never perturbs sibling draws. *)
type degradation = {
  deg_from : int; (* source proc, -1 = any *)
  deg_to : int; (* destination node, -1 = any *)
  from_ns : int64;
  until_ns : int64;
  drop_pct : int;
  dup_pct : int;
  delay_pct : int;
  max_delay_ns : int64; (* extra latency bound for delayed messages *)
}

(* A directed blackout window: every message from [part_from] to [part_to]
   (-1 = any node) whose flight overlaps [from_ns, until_ns) is lost on the
   wire. Unlike a degradation there is no probability — the link is simply
   severed in that direction, which is what lets two halves of the machine
   each believe the other is dead (split brain). Asymmetric reachability is
   a window armed in only one direction. *)
type partition = {
  part_from : int; (* source node, -1 = any *)
  part_to : int; (* destination node, -1 = any *)
  part_from_ns : int64;
  part_until_ns : int64;
}

type t = {
  cfg : Config.t;
  eng : Sim.Engine.t;
  queues : node_queues array;
  sends : Sim.Stats.counter;
  mutable degradations : (degradation * Sim.Prng.t) list;
  mutable partitions : partition list;
  drops : Sim.Stats.counter;
  dups : Sim.Stats.counter;
  delays : Sim.Stats.counter;
  stale_purged : Sim.Stats.counter;
  partition_blocked : Sim.Stats.counter;
}

let max_payload = 128

let create eng cfg =
  {
    cfg;
    eng;
    queues =
      Array.init cfg.Config.nodes (fun _ ->
          {
            requests = Sim.Mailbox.create ();
            replies = Sim.Mailbox.create ();
            up = true;
            epoch = 0;
          });
    sends = Sim.Stats.counter ();
    degradations = [];
    partitions = [];
    drops = Sim.Stats.counter ();
    dups = Sim.Stats.counter ();
    delays = Sim.Stats.counter ();
    stale_purged = Sim.Stats.counter ();
    partition_blocked = Sim.Stats.counter ();
  }

let fail_node t node =
  let q = t.queues.(node) in
  q.up <- false;
  q.epoch <- q.epoch + 1

(* Restoring a node resets its hardware receive queues: envelopes queued
   before the failure belong to the dead incarnation and must not be
   replayed into the rebooted kernel. *)
let restore_node t node =
  let q = t.queues.(node) in
  let purged = Sim.Mailbox.clear q.requests + Sim.Mailbox.clear q.replies in
  Sim.Stats.incr_by t.stale_purged purged;
  q.up <- true

let degrade t ~rng d = t.degradations <- t.degradations @ [ (d, rng) ]

let clear_degradations t = t.degradations <- []

let part_matches p ~from_node ~to_node =
  (p.part_from = -1 || p.part_from = from_node)
  && (p.part_to = -1 || p.part_to = to_node)

(* A message whose flight interval (sent_ns, arrival] touches a blackout
   window on its link is lost on the wire: this kills both messages sent
   during the window and delayed pre-partition envelopes that would
   otherwise land after the blackout started. *)
let crossed_blackout t ~from_node ~to_node ~sent_ns ~arrival_ns =
  List.exists
    (fun p ->
      part_matches p ~from_node ~to_node
      && Int64.compare p.part_from_ns arrival_ns <= 0
      && Int64.compare sent_ns p.part_until_ns < 0)
    t.partitions

let reachable t ~from_node ~to_node =
  let now = Sim.Engine.now t.eng in
  not
    (List.exists
       (fun p ->
         part_matches p ~from_node ~to_node
         && Int64.compare p.part_from_ns now <= 0
         && Int64.compare now p.part_until_ns < 0)
       t.partitions)

(* Heal: when a blackout window expires, the interconnect comes back with
   its receive queues scrubbed of envelopes that originated behind the
   partition — the same stale-incarnation purge [restore_node] performs,
   so a pre-partition envelope parked in a mailbox can never leak across
   the blackout into the healed epoch. *)
let heal_purge t p =
  let purge_node node =
    let q = t.queues.(node) in
    let stale env = p.part_from = -1 || env.src_proc = p.part_from in
    let purged =
      Sim.Mailbox.reject q.requests stale + Sim.Mailbox.reject q.replies stale
    in
    Sim.Stats.incr_by t.stale_purged purged
  in
  if p.part_to = -1 then
    Array.iteri (fun node _ -> purge_node node) t.queues
  else purge_node p.part_to

let partition t p =
  t.partitions <- t.partitions @ [ p ];
  let now = Sim.Engine.now t.eng in
  let delay = Int64.max 0L (Int64.sub p.part_until_ns now) in
  Sim.Engine.schedule t.eng ~after:delay (fun () -> heal_purge t p)

let clear_partitions t = t.partitions <- []

(* The first armed window that covers this (link, time) decides the
   message's fate; expired windows are pruned lazily. *)
let active_degradation t ~from_proc ~to_node =
  let now = Sim.Engine.now t.eng in
  t.degradations <-
    List.filter
      (fun (d, _) -> Int64.compare now d.until_ns < 0)
      t.degradations;
  List.find_opt
    (fun (d, _) ->
      Int64.compare d.from_ns now <= 0
      && (d.deg_from = -1 || d.deg_from = from_proc)
      && (d.deg_to = -1 || d.deg_to = to_node))
    t.degradations

(* Each SIPS delivers one cache line of data (128 bytes) in about the
   latency of a cache miss, with an interrupt raised at the receiver. Data
   beyond a cache line must be sent by reference, so [size] is capped.

   A degradation window can drop the message, deliver it late, or deliver
   it twice — the failure modes of a flaky coherence controller. Delivery
   checks both [up] and the queue epoch captured at send time, so a message
   in flight across a failure/restore never reaches the new incarnation. *)
let send t ~from_proc ~to_node ~kind ~size msg =
  if size > max_payload then raise (Too_large size);
  let q = t.queues.(to_node) in
  if not q.up then raise (Target_failed to_node);
  Sim.Stats.incr t.sends;
  let base_latency = Int64.add t.cfg.Config.ipi_ns t.cfg.Config.sips_extra_ns in
  let env = { src_proc = from_proc; size; msg } in
  let epoch = q.epoch in
  let sent_ns = Sim.Engine.now t.eng in
  let deliver latency =
    Sim.Engine.schedule t.eng ~after:latency (fun () ->
        if
          crossed_blackout t ~from_node:from_proc ~to_node ~sent_ns
            ~arrival_ns:(Sim.Engine.now t.eng)
        then Sim.Stats.incr t.partition_blocked
        else if q.up && q.epoch = epoch then
          Sim.Mailbox.send t.eng
            (match kind with Request -> q.requests | Reply -> q.replies)
            env)
  in
  if not (reachable t ~from_node:from_proc ~to_node) then
    (* Severed link: the message is lost on the wire, silently — the
       sender cannot distinguish a partition from a dead peer. *)
    Sim.Stats.incr t.partition_blocked
  else
    match active_degradation t ~from_proc ~to_node with
    | None -> deliver base_latency
  | Some (d, rng) ->
    if Sim.Prng.int rng 100 < d.drop_pct then Sim.Stats.incr t.drops
    else begin
      let latency =
        if Sim.Prng.int rng 100 < d.delay_pct then begin
          Sim.Stats.incr t.delays;
          Int64.add base_latency
            (Sim.Prng.int64 rng (Int64.max 1L d.max_delay_ns))
        end
        else base_latency
      in
      deliver latency;
      if Sim.Prng.int rng 100 < d.dup_pct then begin
        Sim.Stats.incr t.dups;
        (* The duplicate takes its own (possibly longer) path. *)
        deliver
          (Int64.add latency
             (Sim.Prng.int64 rng (Int64.max 1L d.max_delay_ns)))
      end
    end

(* Blocking receive used by each node's interrupt dispatch thread. *)
let receive ?timeout t ~node ~kind =
  let q = t.queues.(node) in
  Sim.Mailbox.receive ?timeout t.eng
    (match kind with Request -> q.requests | Reply -> q.replies)

let pending t ~node ~kind =
  let q = t.queues.(node) in
  Sim.Mailbox.length (match kind with Request -> q.requests | Reply -> q.replies)

let send_count t = Sim.Stats.get t.sends

let drop_count t = Sim.Stats.get t.drops

let dup_count t = Sim.Stats.get t.dups

let delay_count t = Sim.Stats.get t.delays

let stale_purged_count t = Sim.Stats.get t.stale_purged

let partition_blocked_count t = Sim.Stats.get t.partition_blocked
