(** Logical-level memory sharing primitives (Table 5.1 of the paper).

   export: the data home records that a client cell is accessing one of
   its data pages (pinning it and noting the dependency for recovery), and
   grants firewall write permission to the client's processors if the
   client requested a writable mapping.

   import: the client allocates an extended pfdat bound to the remote
   page and inserts it into its pfdat hash table, after which most of the
   kernel operates on the page as if it were local.

   release: the client frees the extended pfdat and tells the data home,
   which unpins the page (keeping it cached on its own free list for fast
   re-access).

   Released read-only file imports are parked in a bounded per-cell
   import cache (so re-access skips the locate RPC); parked bindings are
   invalidated by the data home's share.invalidate callback when another
   cell imports the page writable, checked against the file generation at
   re-access, and flushed when the home dies. Bulk releases coalesce into
   one vectored share.release_batch RPC per data home. *)

type Types.payload +=
  | P_release of { lid : Types.logical_id }
  | P_release_batch of { lids : Types.logical_id list }
  | P_invalidate of { lids : Types.logical_id list }
  | P_invalidate_ack of { kept : Types.logical_id list }

val release_op : Rpc.Op.t
val release_batch_op : Rpc.Op.t
val invalidate_op : Rpc.Op.t

val unexport :
  Types.system ->
  Types.cell ->
  client:Types.cell_id -> lid:Types.logical_id -> unit

(** Would a writable export to [client] require invalidating another
    cell's binding first (and hence an RPC, forcing the queued path)? *)
val needs_invalidate : Types.pfdat -> client:Types.cell_id -> bool

(** Data-home side: tell each client to drop any parked bindings for
    [lids]; export records are retired for bindings the client dropped.
    May RPC — callers must be able to block. *)
val invalidate_clients :
  Types.system ->
  Types.cell ->
  clients:Types.cell_id list -> lids:Types.logical_id list -> unit

val export :
  Types.system ->
  Types.cell ->
  Types.pfdat -> client:Types.cell_id -> writable:bool -> unit

(** Bind a remote page into the local pfdat table. [gen] is the file
    generation the data home reported alongside the page (pass 0 for
    objects without one); a parked binding is only served again while the
    home's generation still equals it. A writable import records the
    client-side grant bookkeeping ([write_granted_to], dirty marking)
    itself. *)
val import :
  Types.system ->
  Types.cell ->
  pfn:int ->
  data_home:Types.cell_id ->
  lid:Types.logical_id ->
  gen:Types.generation -> writable:bool -> Types.pfdat

(** Pull a parked binding back into active use (bumps share.cache_hits;
    no-op on a binding that is not parked). *)
val cache_hit : Types.cell -> Types.pfdat -> unit

(** Release one binding: parked when cacheable, otherwise freed with a
    release RPC to the data home. Never raises; a lost release bumps
    share.release_lost and reports a failure hint. *)
val release : Types.system -> Types.cell -> Types.pfdat -> unit

(** Release a batch of bindings, coalescing home notifications into one
    vectored share.release_batch RPC per data home. Raises
    [Types.Syscall_error] after processing the whole batch if any batch
    RPC was lost. *)
val release_many : Types.system -> Types.cell -> Types.pfdat list -> unit

val drop_import : Types.cell -> Types.pfdat -> unit
val registered : bool ref
val register_handlers : unit -> unit
