(* System-wide invariant checkers (deterministic simulation testing).

   The fault-containment argument of the paper reduces to a handful of
   global properties: firewall hardware state agrees with the pfdat grant
   bookkeeping and never names a dead cell; COW trees reachable from live
   processes are acyclic and well-formed; page reference counts match the
   mappings that exist; every RPC a client started completes with a reply
   or a dead-peer error; and outside recovery every live cell has its
   user gate open and its recovery flags clear.

   All checks read simulator state directly ([Flash.Memory.peek], pfdat
   tables, hashtables): they charge no simulated time and can run outside
   any simulation thread, so observing the system cannot change it. *)

type violation = { inv : string; detail : string }

let to_string v = Printf.sprintf "[%s] %s" v.inv v.detail

let v inv fmt = Printf.ksprintf (fun detail -> { inv; detail }) fmt

let live_cells (sys : Types.system) =
  Array.to_list sys.Types.cells |> List.filter Types.cell_alive

(* Cells whose processors intersect [vec], excluding [but]. *)
let cells_in_vector (sys : Types.system) vec ~but =
  Array.to_list sys.Types.cells
  |> List.filter_map (fun (c : Types.cell) ->
         if
           c.Types.cell_id <> but
           && Flash.Procset.intersects vec
                (Flash.Firewall.proc_mask c.Types.cell_nodes)
         then Some c.Types.cell_id
         else None)

(* ---------- firewall / pfdat agreement ---------- *)

(* Direction 1 (hardware -> bookkeeping): every page of a live cell whose
   permission vector names a remote processor must be tracked by a pfdat
   whose [write_granted_to] records that remote cell — otherwise a cell
   the kernel never granted anything to can wild-write the page. The
   tracking pfdat is normally the owner's; for a loaned frame it is the
   borrowing data home's (only the data home knows the firewall status).

   Direction 2 (bookkeeping -> hardware): every recorded grant must be
   backed by actual permission bits, or a client holding a writable
   mapping would take surprise bus errors.

   Both directions: grants must never name a dead cell at a quiesce
   point — recovery's preemptive discard is obliged to revoke them. *)
let check_firewall (sys : Types.system) ~cells =
  let fw = Flash.Machine.firewall sys.Types.machine in
  let bad = ref [] in
  let note x = bad := x :: !bad in
  let alive id = Types.cell_alive sys.Types.cells.(id) in
  List.iter
    (fun (c : Types.cell) ->
      let own_mask = Flash.Firewall.proc_mask c.Types.cell_nodes in
      let remote_mask =
        Flash.Procset.diff
          (Flash.Firewall.proc_mask
             (List.init sys.Types.mcfg.Flash.Config.nodes Fun.id))
          own_mask
      in
      List.iter
        (fun node ->
          List.iter
            (fun pfn ->
              let vec = Flash.Firewall.vector fw ~pfn in
              let remotes =
                cells_in_vector sys
                  (Flash.Procset.inter vec remote_mask)
                  ~but:c.Types.cell_id
              in
              let tracker =
                match Hashtbl.find_opt c.Types.frames pfn with
                | Some pf -> (
                  match pf.Types.loaned_to with
                  | Some b when alive b ->
                    Hashtbl.find_opt sys.Types.cells.(b).Types.frames pfn
                  | _ -> Some pf)
                | None -> None
              in
              match tracker with
              | None ->
                note
                  (v "firewall-grant"
                     "cell %d pfn %d: remote write permission %s but no \
                      pfdat tracks the frame"
                     c.Types.cell_id pfn
                     (Flash.Procset.to_string vec))
              | Some pf ->
                List.iter
                  (fun r ->
                    if not (List.mem r pf.Types.write_granted_to) then
                      note
                        (v "firewall-grant"
                           "cell %d pfn %d: hardware grants cell %d write \
                            access but no grant is recorded"
                           c.Types.cell_id pfn r))
                  remotes)
            (Flash.Firewall.pages_writable_by_mask fw ~node ~mask:remote_mask))
        c.Types.cell_nodes;
      (* Direction 2 + dead-cell naming, over this cell's pfdat tables. *)
      Hashtbl.iter
        (fun _pfn (pf : Types.pfdat) ->
          List.iter
            (fun g ->
              if g <> c.Types.cell_id then begin
                if not (alive g) then
                  note
                    (v "firewall-grant"
                       "cell %d pfn %d: write grant names dead cell %d"
                       c.Types.cell_id pf.Types.pfn g);
                let procs = sys.Types.cells.(g).Types.cell_nodes in
                if
                  alive g
                  && not
                       (List.for_all
                          (fun proc ->
                            Flash.Firewall.allowed fw ~pfn:pf.Types.pfn ~proc)
                          procs)
                then
                  note
                    (v "firewall-grant"
                       "cell %d pfn %d: grant to cell %d recorded but \
                        hardware bits are missing"
                       c.Types.cell_id pf.Types.pfn g)
              end)
            pf.Types.write_granted_to;
          List.iter
            (fun e ->
              if not (alive e) then
                note
                  (v "firewall-grant"
                     "cell %d pfn %d: export record names dead cell %d"
                     c.Types.cell_id pf.Types.pfn e))
            pf.Types.exported_to;
          (match pf.Types.imported_from with
          | Some h when not (alive h) ->
            note
              (v "firewall-grant"
                 "cell %d pfn %d: import binding names dead cell %d"
                 c.Types.cell_id pf.Types.pfn h)
          | _ -> ());
          (match pf.Types.loaned_to with
          | Some b when not (alive b) ->
            note
              (v "firewall-grant" "cell %d pfn %d: loan names dead cell %d"
                 c.Types.cell_id pf.Types.pfn b)
          | _ -> ());
          match pf.Types.borrowed_from with
          | Some h when not (alive h) ->
            note
              (v "firewall-grant" "cell %d pfn %d: borrow names dead cell %d"
                 c.Types.cell_id pf.Types.pfn h)
          | _ -> ())
        c.Types.frames)
    cells;
  List.rev !bad

(* ---------- writable mappings backed by permission ---------- *)

let check_mappings (sys : Types.system) ~cells =
  let fw = Flash.Machine.firewall sys.Types.machine in
  let bad = ref [] in
  List.iter
    (fun (c : Types.cell) ->
      List.iter
        (fun (p : Types.process) ->
          Hashtbl.iter
            (fun vpage (m : Types.mapping) ->
              if
                m.Types.map_writable
                && not
                     (Flash.Firewall.allowed fw ~pfn:m.Types.map_pf.Types.pfn
                        ~proc:(Types.boss_proc c))
              then
                bad :=
                  v "mapping-grant"
                    "cell %d pid %d vpage %d: writable mapping of pfn %d \
                     without write permission"
                    c.Types.cell_id p.Types.pid vpage m.Types.map_pf.Types.pfn
                  :: !bad)
            p.Types.mappings)
        c.Types.processes)
    cells;
  List.rev !bad

(* ---------- COW tree shape ---------- *)

(* Walk the parent chain of every anonymous region leaf reachable from a
   live process. The walk is purely physical (peek): tags and field
   values are validated, visited nodes are remembered to detect cycles.
   Nodes owned by an [exempt] cell (a deliberate corruption victim, or a
   cell rebooted with zeroed memory) end the walk silently: damage there
   is the injected fault itself, not a containment failure. *)
let check_cow (sys : Types.system) ~exempt =
  let mem = Flash.Machine.memory sys.Types.machine in
  let ncells = Array.length sys.Types.cells in
  let peek_i64 addr =
    match Flash.Memory.peek mem addr 8 with
    | b -> Some (Bytes.get_int64_le b 0)
    | exception _ -> None
  in
  let field addr index =
    peek_i64 (addr + Kmem.header_bytes + (8 * index))
  in
  let bad = ref [] in
  let walk_from (c : Types.cell) (p : Types.process) (leaf : Types.cow_ref) =
    let visited = Hashtbl.create 16 in
    let rec walk (r : Types.cow_ref) hops =
      let where =
        Printf.sprintf "cell %d pid %d: cow node (%d,%#x)" c.Types.cell_id
          p.Types.pid r.Types.cow_cell r.Types.cow_addr
      in
      if r.Types.cow_cell < 0 || r.Types.cow_cell >= ncells then
        bad := v "cow-shape" "%s: owner cell out of range" where :: !bad
      else if List.mem r.Types.cow_cell exempt then ()
      else if not (Types.cell_alive sys.Types.cells.(r.Types.cow_cell)) then ()
      else if hops > 10_000 then
        bad := v "cow-shape" "%s: parent chain exceeds hop bound" where :: !bad
      else if Hashtbl.mem visited (r.Types.cow_cell, r.Types.cow_addr) then
        bad := v "cow-shape" "%s: cycle in parent chain" where :: !bad
      else begin
        Hashtbl.replace visited (r.Types.cow_cell, r.Types.cow_addr) ();
        match peek_i64 r.Types.cow_addr with
        | None -> bad := v "cow-shape" "%s: unreadable node" where :: !bad
        | Some tag when tag <> Cow.cow_tag ->
          bad := v "cow-shape" "%s: bad tag %Lx" where tag :: !bad
        | Some _ -> (
          match
            ( field r.Types.cow_addr Cow.f_nentries,
              field r.Types.cow_addr Cow.f_capacity,
              field r.Types.cow_addr Cow.f_parent_addr,
              field r.Types.cow_addr Cow.f_parent_cell )
          with
          | Some n, Some cap, Some pa, Some pc ->
            let n = Int64.to_int n and cap = Int64.to_int cap in
            let pa = Int64.to_int pa and pc = Int64.to_int pc in
            if n < 0 || cap <= 0 || cap > 1 lsl 16 || n > cap then
              bad :=
                v "cow-shape" "%s: entry count %d/%d out of range" where n cap
                :: !bad
            else if pa < 0 || pc < 0 then () (* root *)
            else walk { Types.cow_cell = pc; cow_addr = pa } (hops + 1)
          | _ -> bad := v "cow-shape" "%s: unreadable fields" where :: !bad)
      end
    in
    walk leaf 0
  in
  List.iter
    (fun (c : Types.cell) ->
      List.iter
        (fun (p : Types.process) ->
          List.iter
            (fun (r : Types.region) ->
              match r.Types.kind with
              | Types.Anon_region leaf -> walk_from c p leaf
              | Types.File_region _ -> ())
            p.Types.regions)
        c.Types.processes)
    (live_cells sys);
  List.rev !bad

(* ---------- reference counts ---------- *)

(* [pf.refs] must equal the number of process mappings whose [map_pf] is
   (physically) that pfdat. Counting is by identity: extended pfdats for
   the same pfn can come and go, and only pointer equality ties a mapping
   to the generation it mapped. *)
let check_refcounts (_sys : Types.system) ~cells =
  let bad = ref [] in
  List.iter
    (fun (c : Types.cell) ->
      let counts : (Types.pfdat * int ref) list ref = ref [] in
      let count_for pf =
        match List.find_opt (fun (q, _) -> q == pf) !counts with
        | Some (_, r) -> r
        | None ->
          let r = ref 0 in
          counts := (pf, r) :: !counts;
          r
      in
      List.iter
        (fun (p : Types.process) ->
          Hashtbl.iter
            (fun _ (m : Types.mapping) -> incr (count_for m.Types.map_pf))
            p.Types.mappings)
        c.Types.processes;
      let seen : Types.pfdat list ref = ref [] in
      let check pf =
        if not (List.memq pf !seen) then begin
          seen := pf :: !seen;
          let expect =
            match List.find_opt (fun (q, _) -> q == pf) !counts with
            | Some (_, r) -> !r
            | None -> 0
          in
          if pf.Types.refs <> expect then
            bad :=
              v "refcount" "cell %d pfn %d: refs=%d but %d mapping(s) exist"
                c.Types.cell_id pf.Types.pfn pf.Types.refs expect
              :: !bad
        end
      in
      Hashtbl.iter (fun _ pf -> check pf) c.Types.frames;
      Hashtbl.iter (fun _ pf -> check pf) c.Types.page_hash;
      (* Mappings must point at live pfdats, not freed generations. *)
      List.iter (fun (pf, _) -> check pf) !counts)
    cells;
  List.rev !bad

(* ---------- gate / recovery state machine ---------- *)

let check_gate (sys : Types.system) =
  let bad = ref [] in
  let note x = bad := x :: !bad in
  if sys.Types.recovery_round_active then
    note (v "gate-state" "recovery round marked active at quiesce");
  List.iter
    (fun (c : Types.cell) ->
      if not c.Types.user_gate_open then
        note
          (v "gate-state" "cell %d: user gate closed outside recovery"
             c.Types.cell_id);
      if c.Types.in_recovery then
        note
          (v "gate-state" "cell %d: in_recovery set outside recovery"
             c.Types.cell_id);
      if c.Types.recovery_active then
        note
          (v "gate-state" "cell %d: recovery thread marked active at quiesce"
             c.Types.cell_id);
      (* Live-set agreement: every live cell sees exactly the live cells. *)
      Array.iter
        (fun (o : Types.cell) ->
          let should = Types.cell_alive o in
          let does = List.mem o.Types.cell_id c.Types.live_set in
          if should && not does then
            note
              (v "gate-state" "cell %d: live cell %d missing from live set"
                 c.Types.cell_id o.Types.cell_id);
          if (not should) && does then
            note
              (v "gate-state" "cell %d: dead cell %d still in live set"
                 c.Types.cell_id o.Types.cell_id))
        sys.Types.cells)
    (live_cells sys);
  List.rev !bad

(* ---------- RPC no-orphan ---------- *)

let rpc_snapshot (sys : Types.system) =
  Array.to_list sys.Types.cells
  |> List.concat_map (fun (c : Types.cell) ->
         if Types.cell_alive c then
           Hashtbl.fold
             (fun key _ acc -> (c.Types.cell_id, key) :: acc)
             c.Types.pending_calls []
           |> List.sort compare
         else [])

let check_rpc_drained (sys : Types.system) ~snapshot =
  List.filter_map
    (fun (cell_id, key) ->
      let c = sys.Types.cells.(cell_id) in
      if Types.cell_alive c && Hashtbl.mem c.Types.pending_calls key then
        Some
          (v "rpc-orphan"
             "cell %d call %d: still pending after the drain window (no \
              reply, no dead-peer error)"
             cell_id key)
      else None)
    snapshot

(* ---------- at-most-once transport ---------- *)

(* The RPC layer records every actual execution of a non-idempotent op
   body in [sys.rpc_executions], keyed by (server cell, server
   incarnation, call id). At-most-once semantics demand each key was
   executed exactly once per server life: a count above one means a
   retransmitted request slipped past the reply cache and re-ran its op. *)
let check_rpc_at_most_once (sys : Types.system) =
  Hashtbl.fold
    (fun (cell, incarnation, call_id) (op, n) acc ->
      if n > 1 then
        v "rpc-at-most-once"
          "cell %d (incarnation %d): non-idempotent op %s for call %d \
           executed %d times"
          cell incarnation op call_id n
        :: acc
      else acc)
    sys.Types.rpc_executions []
  |> List.sort compare

(* A cell must never act on a message stamped with an epoch other than its
   current incarnation; acceptances are recorded by the RPC layer (only
   reachable when the epoch check is deliberately disabled). *)
let check_rpc_epochs (sys : Types.system) =
  List.rev_map (fun detail -> { inv = "rpc-stale-epoch"; detail })
    sys.Types.rpc_stale_accepts

(* ---------- import cache coherence ---------- *)

(* A parked binding is dormant client state the data home must still be
   able to reason about: it must be an idle read-only extended file
   import, its data home must be alive and still hold the page with a
   matching export record (that record is the invalidation channel), and
   the home's file generation must not have advanced past the one the
   binding was imported under — a binding surviving a home failure or a
   generation bump would serve stale data RPC-free, the exact hazard the
   invalidation rules exist to prevent. Both directions are checked:
   every cache entry is a valid parked binding, and every pfdat marked
   [cached] is actually in its cell's cache list. *)
let check_import_cache (sys : Types.system) ~cells =
  let bad = ref [] in
  let note x = bad := x :: !bad in
  let alive id = Types.cell_alive sys.Types.cells.(id) in
  List.iter
    (fun (c : Types.cell) ->
      let cap = sys.Types.params.Params.import_cache_pages in
      if List.length c.Types.import_cache > cap then
        note
          (v "import-cache" "cell %d: %d parked bindings exceed capacity %d"
             c.Types.cell_id
             (List.length c.Types.import_cache)
             cap);
      List.iter
        (fun (pf : Types.pfdat) ->
          let where =
            Printf.sprintf "cell %d pfn %d" c.Types.cell_id pf.Types.pfn
          in
          if not pf.Types.cached then
            note (v "import-cache" "%s: in cache list but not marked cached" where);
          if pf.Types.refs <> 0 then
            note (v "import-cache" "%s: parked binding has refs=%d" where pf.Types.refs);
          if not pf.Types.extended then
            note (v "import-cache" "%s: parked binding is not extended" where);
          if List.mem c.Types.cell_id pf.Types.write_granted_to then
            note (v "import-cache" "%s: parked binding holds a write grant" where);
          match (pf.Types.imported_from, pf.Types.lid) with
          | Some home, Some lid -> (
            (match lid.Types.tag with
            | Types.File_obj _ -> ()
            | Types.Anon_obj _ ->
              note (v "import-cache" "%s: parked binding is not a file page" where));
            if not (alive home) then
              note
                (v "import-cache"
                   "%s: parked binding survives dead data home %d" where home)
            else begin
              let h = sys.Types.cells.(home) in
              (match Pfdat.lookup h lid with
              | Some hpf ->
                if hpf.Types.pfn <> pf.Types.pfn then
                  note
                    (v "import-cache"
                       "%s: home %d moved the page to pfn %d under a parked \
                        binding"
                       where home hpf.Types.pfn);
                if not (List.mem c.Types.cell_id hpf.Types.exported_to) then
                  note
                    (v "import-cache"
                       "%s: home %d holds no export record (invalidation \
                        channel lost)"
                       where home)
              | None ->
                note
                  (v "import-cache"
                     "%s: home %d no longer caches the page" where home));
              match lid.Types.tag with
              | Types.File_obj fid -> (
                match Hashtbl.find_opt h.Types.files_by_ino fid.Types.ino with
                | Some f when f.Types.generation > pf.Types.import_gen ->
                  note
                    (v "import-cache"
                       "%s: parked binding (gen %d) survives generation bump \
                        to %d"
                       where pf.Types.import_gen f.Types.generation)
                | _ -> ())
              | Types.Anon_obj _ -> ()
            end)
          | _ ->
            note
              (v "import-cache" "%s: parked binding lacks import identity"
                 where))
        c.Types.import_cache;
      (* Reverse direction: a cached flag outside the cache list. *)
      Pfdat.iter_pages c (fun pf ->
          if pf.Types.cached && not (List.memq pf c.Types.import_cache) then
            note
              (v "import-cache"
                 "cell %d pfn %d: marked cached but absent from the cache \
                  list"
                 c.Types.cell_id pf.Types.pfn)))
    cells;
  List.rev !bad

(* ---------- entry point ---------- *)

(* ---------- split-brain oracle ---------- *)

(* Never two concurrent live recovery masters. Overlaps are latched the
   instant a second master begins ([Types.master_begin]), so a transient
   dual-master window is reported even if one side stood down (or died)
   long before the run quiesced. A residual master entry for a live cell
   outside any recovery is also a leak of mastership. *)
let check_single_master (sys : Types.system) =
  let bad = ref [] in
  List.iter
    (fun detail -> bad := { inv = "single-master"; detail } :: !bad)
    sys.Types.master_overlaps;
  if not sys.Types.recovery_in_progress then
    List.iter
      (fun id ->
        if Types.cell_alive sys.Types.cells.(id) then
          bad :=
            v "single-master"
              "cell %d still holds recovery mastership outside any recovery"
              id
            :: !bad)
      sys.Types.masters_active;
  List.rev !bad

(* ---------- salvage coherence ---------- *)

(* A salvaged page is only valid while its data home stays down: nobody
   can write file data whose home is dead, so the local copy cannot go
   stale. The reintegration path must purge every salvaged binding for
   the rebooting home; one surviving it would serve dead data after the
   home's disk-backed generations move on. *)
let check_salvage (sys : Types.system) ~cells =
  let bad = ref [] in
  List.iter
    (fun (c : Types.cell) ->
      Pfdat.iter_pages c (fun pf ->
          match pf.Types.salvaged_from with
          | Some h when Types.cell_alive sys.Types.cells.(h) ->
            bad :=
              v "salvage" "cell %d pfn %d: salvaged from cell %d which is live again"
                c.Types.cell_id pf.Types.pfn h
              :: !bad
          | _ -> ()))
    cells;
  List.rev !bad

let check ?(exempt = []) (sys : Types.system) =
  (* The split-brain latch is checked unconditionally: it records
     violations that already happened, so an in-flight recovery is no
     excuse to look away. *)
  let sb = check_single_master sys in
  if sys.Types.recovery_in_progress then sb
  else begin
    (* Per-cell checks skip the exempt cells: deliberate corruption of a
       cell's own state is the injected fault, not a containment failure;
       what matters is that every *other* cell stays coherent. *)
    let scan =
      live_cells sys
      |> List.filter (fun (c : Types.cell) ->
             not (List.mem c.Types.cell_id exempt))
    in
    check_firewall sys ~cells:scan
    @ check_mappings sys ~cells:scan
    @ check_cow sys ~exempt
    @ check_refcounts sys ~cells:scan
    @ check_gate sys
    @ check_rpc_at_most_once sys
    @ check_rpc_epochs sys
    @ check_import_cache sys ~cells:scan
    @ check_salvage sys ~cells:scan
    @ sb
  end
