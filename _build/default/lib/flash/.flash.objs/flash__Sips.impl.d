lib/flash/sips.ml: Array Config Int64 Sim
