test/test_workloads.ml: Alcotest Bytes Faultinj Flash Hashtbl Hive List Printf Sim Workloads
