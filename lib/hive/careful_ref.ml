(* The careful reference protocol (Section 4.1 of the paper).

   One cell reads another's internal data structures directly when RPCs are
   too slow or an up-to-date view is required. The reading cell must defend
   itself against invalid pointers, linked structures with loops, values
   that change mid-operation, and bus errors from failed nodes:

   1. [careful_on] records which remote cell the kernel intends to access;
      a bus error while reading that cell's memory unwinds to the saved
      context instead of panicking the reading kernel.
   2. Every remote address is checked for alignment and for addressing the
      memory range belonging to the expected cell.
   3. Data values are copied to local memory before sanity checks.
   4. Each remote structure carries a type identifier written by the
      allocator; checking it is the first line of defense against invalid
      pointers.
   5. [careful_off] restores normal panic-on-bus-error behavior. *)

type failure_reason =
  | Bad_pointer of int (* misaligned or outside the expected cell *)
  | Bad_tag of { addr : int; expected : int64; found : int64 }
  | Bus_fault of int
  | Loop_detected
  | Bad_value of string
  | Unreachable of int
      (* the interconnect to the target cell is partitioned: the remote
         read times out rather than bus-faulting — distinguishable from
         dead hardware, which answers with an error, not silence *)

exception Careful_abort of failure_reason

type ctx = {
  sys : Types.system;
  reader : Types.cell;
  target : Types.cell_id;
  mutable hops : int;
}

let reason_to_string = function
  | Bad_pointer a -> Printf.sprintf "bad pointer 0x%x" a
  | Bad_tag { addr; expected; found } ->
    Printf.sprintf "bad tag at 0x%x: expected %Ld, found %Ld" addr expected
      found
  | Bus_fault a -> Printf.sprintf "bus error at 0x%x" a
  | Loop_detected -> "loop detected in linked structure"
  | Bad_value s -> "bad value: " ^ s
  | Unreachable c -> Printf.sprintf "cell %d unreachable (partition)" c

(* Backstop against unbounded traversals of corrupt linked structures;
   per-structure validation (tags, entry-count bounds) is the primary
   defense, so this only has to catch runaway loops. *)
let max_hops = 200_000

let addr_in_cell (sys : Types.system) cell_id addr =
  let cfg = sys.mcfg in
  Flash.Addr.valid cfg addr
  && List.mem
       (Flash.Addr.node_of_addr cfg addr)
       sys.cells.(cell_id).Types.cell_nodes

(* Validate a remote address for an expected structure before use. *)
let check_addr ctx ?(align = 8) addr =
  if (not (Flash.Addr.aligned addr align)) || not (addr_in_cell ctx.sys ctx.target addr)
  then raise (Careful_abort (Bad_pointer addr));
  ctx.hops <- ctx.hops + 1;
  if ctx.hops > max_hops then raise (Careful_abort Loop_detected)

let fail_value msg = raise (Careful_abort (Bad_value msg))

(* Copy a remote value to local memory (step 3): further checks operate on
   the copy, immune to concurrent modification. *)
let read_i64 ctx addr =
  check_addr ctx addr;
  try
    Flash.Memory.read_i64 ctx.sys.Types.eng
      (Flash.Machine.memory ctx.sys.Types.machine)
      ~by:(Types.boss_proc ctx.reader) addr
  with Flash.Memory.Bus_error { addr; _ } -> raise (Careful_abort (Bus_fault addr))

let read_bytes ctx addr len =
  check_addr ctx ~align:1 addr;
  try
    Flash.Memory.read ctx.sys.Types.eng
      (Flash.Machine.memory ctx.sys.Types.machine)
      ~by:(Types.boss_proc ctx.reader) addr len
  with Flash.Memory.Bus_error { addr; _ } -> raise (Careful_abort (Bus_fault addr))

(* Check the structure type identifier written by the kernel allocator. *)
let check_tag ctx ~addr ~expected =
  let found = read_i64 ctx addr in
  if found <> expected then
    raise (Careful_abort (Bad_tag { addr; expected; found }))

(* Read field [index] of the kmem object at [addr] (fields follow the tag
   word). *)
let read_field ctx ~addr ~index = read_i64 ctx (addr + Kmem.header_bytes + (8 * index))

(* [protect sys reader ~target f] wraps [f] in careful_on/careful_off. Any
   defended failure is returned as [Error reason] rather than unwinding
   into (and panicking) the reading kernel. The reading cell's caller is
   responsible for reporting a failure hint if appropriate. *)
(* Remote memory reads ride the same interconnect as messages: a blackout
   window between the reader and the target (in either direction — the
   read request travels one way, the data the other) makes the careful
   section time out, which is a distinct observable from a bus error.
   A bus error is the hardware answering "that memory is gone" (node
   dead); a timeout is silence — the peer may be alive on the far side. *)
let partitioned (sys : Types.system) (reader : Types.cell) ~target =
  let sips = Flash.Machine.sips sys.Types.machine in
  let rb = Types.boss_proc reader in
  let tb = Types.boss_proc sys.Types.cells.(target) in
  (not (Flash.Sips.reachable sips ~from_node:rb ~to_node:tb))
  || not (Flash.Sips.reachable sips ~from_node:tb ~to_node:rb)

let protect (sys : Types.system) (reader : Types.cell) ~target f =
  let p = sys.Types.params in
  Sim.Engine.delay p.Params.careful_on_ns;
  Types.bump reader "careful_ref.enter";
  let ctx = { sys; reader; target; hops = 0 } in
  let result =
    match
      if partitioned sys reader ~target then
        raise (Careful_abort (Unreachable target))
      else f ctx
    with
    | v ->
      Sim.Engine.delay p.Params.careful_check_ns;
      Ok v
    | exception Careful_abort r ->
      Types.bump reader "careful_ref.defended";
      Error r
    | exception Flash.Memory.Bus_error { addr; _ } ->
      (* A bus error anywhere in the careful section is defended. *)
      Types.bump reader "careful_ref.defended";
      Error (Bus_fault addr)
  in
  Sim.Engine.delay p.Params.careful_off_ns;
  result
