(* Spanning tasks (Section 3.2).

   "Hive extends the UNIX process abstraction to span cell boundaries. A
   single parallel process can run threads on multiple cells at the same
   time. Each cell runs a separate local process containing the threads
   that are local to that cell. Shared process state such as the address
   space map is kept consistent among the component processes."

   The paper lists spanning tasks as not yet implemented; this module
   implements them on top of the existing sharing machinery: the task's
   shared segment is an unlinked shared-memory object whose pages live at
   a data home and are exported writable to every component cell (so all
   the wild-write defense applies to it), and the address-space map is
   replicated into each component local process when a thread is added. *)

type t = {
  task_id : int;
  home_cell : Types.cell_id;
  shm_path : string;
  shared_npages : int;
  shared_gen : Types.generation;
  mutable components : Types.process list; (* one local process per thread *)
  mutable next_thread : int;
}

(* Domain-local and reset at [System.boot]: task ids name the backing
   /shm objects, so they must be a function of the campaign alone, not of
   how many campaigns this domain ran before it. *)
let next_task_id_key : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let reset_ids () = Domain.DLS.get next_task_id_key := 0

(* Create a spanning task with a shared writable segment of
   [shared_pages], homed on the creating process's cell. *)
let create (sys : Types.system) (creator : Types.process) ~shared_pages =
  let next_task_id = Domain.DLS.get next_task_id_key in
  incr next_task_id;
  let id = !next_task_id in
  let c = sys.Types.cells.(creator.Types.proc_cell) in
  let psize = Types.page_size sys in
  let shm_path = Printf.sprintf "/shm/task%d.cell%d" id creator.Types.proc_cell in
  (* The backing object must be homed locally; /shm paths hash, so probe
     for a name this cell owns. *)
  let rec pick k =
    let path = Printf.sprintf "%s.%d" shm_path k in
    if Fs.home_of_path sys path = creator.Types.proc_cell then path
    else pick (k + 1)
  in
  let shm_path = pick 0 in
  (match
     Fs.create_file sys c ~path:shm_path
       ~content:(Bytes.make (shared_pages * psize) '\000')
   with
  | Ok _ -> ()
  | Error e -> raise (Types.Syscall_error e));
  {
    task_id = id;
    home_cell = creator.Types.proc_cell;
    shm_path;
    shared_npages = shared_pages;
    shared_gen = 0;
    components = [];
    next_thread = 0;
  }

(* The virtual page where every component maps the shared segment: kept
   identical across components (the consistent address-space map). *)
let shared_base = 1024

(* Map the task's shared segment into a component process. *)
let map_shared (sys : Types.system) (task : t) (p : Types.process) =
  let c = sys.Types.cells.(p.Types.proc_cell) in
  match Fs.open_file sys c ~path:task.shm_path with
  | Error e -> raise (Types.Syscall_error e)
  | Ok (vnode, gen) ->
    let r =
      {
        Types.start_page = shared_base;
        npages = task.shared_npages;
        kind = Types.File_region (vnode, 0);
        reg_writable = true;
        opened_gen = gen;
      }
    in
    p.Types.regions <- r :: p.Types.regions;
    let fid = Types.vnode_fid vnode in
    if fid.Types.home <> p.Types.proc_cell then
      p.Types.uses_cells <-
        (if List.mem fid.Types.home p.Types.uses_cells then
           p.Types.uses_cells
         else fid.Types.home :: p.Types.uses_cells)

(* Start a new thread of the task on [on_cell]: a component local process
   with the shared segment mapped at the same addresses. *)
let add_thread (sys : Types.system) (task : t) ~on_cell ~name body =
  let c = sys.Types.cells.(on_cell) in
  if not (Types.cell_alive c) then raise (Types.Syscall_error Types.EHOSTDOWN);
  task.next_thread <- task.next_thread + 1;
  let p =
    Process.spawn sys c
      ~name:(Printf.sprintf "%s.t%d" name task.next_thread)
      (fun sys p ->
        (* Replicate the shared address-space map before user code runs. *)
        map_shared sys task p;
        body sys p)
  in
  task.components <- p :: task.components;
  Types.bump c "spanning.threads";
  p

(* Word accessors into the shared segment (page, offset-in-page). *)
let read_shared (sys : Types.system) (p : Types.process) ~page ~offset =
  match Vm.read_word sys p ~vpage:(shared_base + page) ~offset with
  | Ok v -> v
  | Error e -> raise (Types.Syscall_error e)

let write_shared (sys : Types.system) (p : Types.process) ~page ~offset v =
  match Vm.write_word sys p ~vpage:(shared_base + page) ~offset v with
  | Ok () -> ()
  | Error e -> raise (Types.Syscall_error e)

(* Wait for every thread; returns per-thread exit codes. The task dies as
   a unit if any component's cell fails (its processes get killed by the
   dependency tracking, like Wax). *)
let join (sys : Types.system) (task : t) =
  List.rev_map
    (fun (p : Types.process) -> Sim.Ivar.read_exn sys.Types.eng p.Types.exit_ivar)
    task.components

(* Tear down: unlink the backing object. *)
let destroy (sys : Types.system) (task : t) =
  let home = sys.Types.cells.(task.home_cell) in
  if Types.cell_alive home then ignore (Fs.unlink sys home task.shm_path)
