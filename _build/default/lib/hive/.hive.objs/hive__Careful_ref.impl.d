lib/hive/careful_ref.ml: Array Flash Kmem List Params Printf Sim Types
