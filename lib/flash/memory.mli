(** The machine's main memory and its fault model.

    Memory contents are real bytes: wild writes genuinely corrupt data and
    the fault-injection experiments compare genuine file contents. Accesses
    charge virtual time per cache line touched, and obey the FLASH memory
    fault model (Section 2 of the paper):

    - accesses to unaffected memory keep working after a fault;
    - accesses to the memory of a failed node raise a bus error rather than
      stalling forever;
    - only processors granted write permission through the firewall can
      modify (or, after a hardware fault, have damaged) a given page. *)

type error_cause = Node_failed | Cutoff | Firewall_denied | Invalid_address

exception Bus_error of { addr : Addr.t; cause : error_cause }

type t

val create : Config.t -> t

val firewall : t -> Firewall.t

val cfg : t -> Config.t

(** {2 Fault model transitions} *)

(** Fail-stop the node's memory: all accesses get bus errors. *)
val fail_node : t -> int -> unit

(** Memory cutoff (Table 8.1): the coherence controller refuses {e remote}
    accesses; used by a cell's panic routine to stop spreading corrupt
    data. *)
val cutoff_node : t -> int -> unit

(** Reintegration after repair: memory zeroed, accessible again. *)
val restore_node : t -> int -> unit

val node_accessible : t -> int -> bool

(** {2 Timed, checked accesses (call from a simulation thread)} *)

(** [read eng t ~by addr len] performs a cached read by processor [by]. *)
val read : Sim.Engine.t -> t -> by:int -> Addr.t -> int -> Bytes.t

(* Cached read of hot local kernel data: L2-hit latency, same fault
   model. *)
val read_cached : Sim.Engine.t -> t -> by:int -> Addr.t -> int -> Bytes.t

val read_u8 : Sim.Engine.t -> t -> by:int -> Addr.t -> int

val read_i64 : Sim.Engine.t -> t -> by:int -> Addr.t -> int64

(* Allocation-free cached read of one kernel word (the hot kmem /
   careful-reference path). *)
val read_cached_i64 : Sim.Engine.t -> t -> by:int -> Addr.t -> int64

(** Writes check the firewall per page and raise
    [Bus_error Firewall_denied] when permission is missing. *)
val write : Sim.Engine.t -> t -> by:int -> Addr.t -> Bytes.t -> unit

val write_u8 : Sim.Engine.t -> t -> by:int -> Addr.t -> int -> unit

val write_i64 : Sim.Engine.t -> t -> by:int -> Addr.t -> int64 -> unit

(** {2 Out-of-band access (no latency, no checks) — tests and tooling} *)

val peek : t -> Addr.t -> int -> Bytes.t

(* Allocation-free word peek. *)
val peek_i64 : t -> Addr.t -> int64

val poke : t -> Addr.t -> Bytes.t -> unit

(** A fault-injected wild write: bypasses the latency model but still honours
    the firewall, exactly like erroneous kernel stores on the real machine. *)
val poke_wild : t -> by:int -> Addr.t -> Bytes.t -> unit

(** (reads, writes, wild_writes) counters. *)
val stats : t -> int * int * int

(** Average latency of remote write misses observed so far — the statistic
    behind the paper's firewall-overhead measurement (Section 4.2). *)
val remote_write_miss_avg_ns : t -> float
