(* Metrics: typed snapshot of the run's instrumentation with a JSON
   round-trip. [capture] freezes the live counters/histograms into a
   plain-data [Snapshot.t]; everything downstream (print_summary, the
   benches, hive_sim --metrics-json, the sweep trajectory) consumes the
   snapshot instead of re-scraping kernel tables. JSON goes through
   [Sim.Json] (the simulator deliberately has no external deps). *)

module J = Sim.Json

let status_to_string = function
  | Types.Cell_up -> "up"
  | Types.Cell_recovering -> "recovering"
  | Types.Cell_down -> "down"

let status_of_string = function
  | "up" -> Some Types.Cell_up
  | "recovering" -> Some Types.Cell_recovering
  | "down" -> Some Types.Cell_down
  | _ -> None

module Snapshot = struct
  type hist = {
    count : int;
    mean_ns : float;
    min_ns : float;
    max_ns : float;
    p50_ns : float;
    p95_ns : float;
    p99_ns : float;
    p999_ns : float;
    buckets : (int64 * int64 * int) list;
  }

  type cell = {
    id : int;
    status : Types.cell_status;
    live_set : int list;
    counters : (string * int) list;
  }

  type sips = {
    sends : int;
    drops : int;
    dups : int;
    delays : int;
    stale_purged : int;
  }

  type t = {
    sim_time_ns : int64;
    rpc_client : (string * hist) list;
    rpc_server : (string * hist) list;
    ops : (string * hist) list;
    cells : cell list;
    system_counters : (string * int) list;
    sips : sips;
    sharing : (string * int) list;
    cache_hit_rate : float option;
    recovery_timeline : (string * int64) list;
  }

  let sharing_total t name =
    Option.value ~default:0 (List.assoc_opt name t.sharing)

  let client_hist t op = List.assoc_opt op t.rpc_client

  let op_hist t name = List.assoc_opt name t.ops

  (* Estimate an arbitrary quantile from the exported log-scale buckets.
     Within the bucket holding the target rank we interpolate linearly;
     the coarse bucket bounds make this an estimate, so the summary
     percentiles (sample-based) are preferred when one of them matches. *)
  let hist_quantile (h : hist) q =
    if h.count = 0 then 0.
    else if q <= 0. then h.min_ns
    else if q >= 100. then h.max_ns
    else begin
      let target = q /. 100. *. float_of_int h.count in
      let rec go seen = function
        | [] -> h.max_ns
        | (lo, hi, n) :: rest ->
          let seen' = seen +. float_of_int n in
          if seen' >= target then
            let frac = (target -. seen) /. float_of_int n in
            let lo = Int64.to_float lo and hi = Int64.to_float hi in
            Float.min h.max_ns (Float.max h.min_ns (lo +. (frac *. (hi -. lo))))
          else go seen' rest
      in
      go 0. h.buckets
    end

  (* ---------- to JSON ---------- *)

  let counters_to_json kvs =
    J.Obj (List.map (fun (k, v) -> (k, J.Int (Int64.of_int v))) kvs)

  let hist_to_json (h : hist) =
    J.Obj
      [
        ("count", J.Int (Int64.of_int h.count));
        ("mean_ns", J.Float h.mean_ns);
        ("min_ns", J.Float h.min_ns);
        ("max_ns", J.Float h.max_ns);
        ("p50_ns", J.Float h.p50_ns);
        ("p95_ns", J.Float h.p95_ns);
        ("p99_ns", J.Float h.p99_ns);
        ("p999_ns", J.Float h.p999_ns);
        ( "buckets",
          J.Arr
            (List.map
               (fun (lo, hi, n) ->
                 J.Arr [ J.Int lo; J.Int hi; J.Int (Int64.of_int n) ])
               h.buckets) );
      ]

  let cell_to_json (c : cell) =
    J.Obj
      [
        ("id", J.Int (Int64.of_int c.id));
        ("status", J.Str (status_to_string c.status));
        ("live_set", J.Arr (List.map (fun i -> J.Int (Int64.of_int i)) c.live_set));
        ("counters", counters_to_json c.counters);
      ]

  let to_json (t : t) =
    let hist_table hs = J.Obj (List.map (fun (k, h) -> (k, hist_to_json h)) hs) in
    J.Obj
      ([
         ("sim_time_ns", J.Int t.sim_time_ns);
         ( "rpc",
           J.Obj
             [
               ("client", hist_table t.rpc_client);
               ("server", hist_table t.rpc_server);
             ] );
         ("ops", hist_table t.ops);
         ("cells", J.Arr (List.map cell_to_json t.cells));
         ("system_counters", counters_to_json t.system_counters);
         ( "sips",
           J.Obj
             [
               ("sends", J.Int (Int64.of_int t.sips.sends));
               ("drops", J.Int (Int64.of_int t.sips.drops));
               ("dups", J.Int (Int64.of_int t.sips.dups));
               ("delays", J.Int (Int64.of_int t.sips.delays));
               ("stale_purged", J.Int (Int64.of_int t.sips.stale_purged));
             ] );
         ("sharing", counters_to_json t.sharing);
       ]
      @ (match t.cache_hit_rate with
        | None -> [] (* no remote lookups: omit rather than emit 0/0 *)
        | Some r -> [ ("cache_hit_rate", J.Float r) ])
      @ [
          ( "recovery_timeline",
            J.Arr
              (List.map
                 (fun (phase, ns) ->
                   J.Obj [ ("phase", J.Str phase); ("ns", J.Int ns) ])
                 t.recovery_timeline) );
        ])

  let to_string t = J.to_string (to_json t)

  (* ---------- from JSON ---------- *)

  let ( let* ) = Result.bind

  let field name conv j =
    match J.member name j with
    | None -> Error (Printf.sprintf "metrics: missing field %S" name)
    | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "metrics: bad field %S" name))

  let map_result f l =
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        let* y = f x in
        Ok (y :: acc))
      (Ok []) l
    |> Result.map List.rev

  let counters_of_json name j =
    match J.to_obj_opt j with
    | None -> Error (Printf.sprintf "metrics: %s is not an object" name)
    | Some fields ->
      map_result
        (fun (k, v) ->
          match J.to_int_opt v with
          | Some n -> Ok (k, n)
          | None -> Error (Printf.sprintf "metrics: counter %S not an int" k))
        fields

  let hist_of_json j =
    let* count = field "count" J.to_int_opt j in
    let* mean_ns = field "mean_ns" J.to_float_opt j in
    let* min_ns = field "min_ns" J.to_float_opt j in
    let* max_ns = field "max_ns" J.to_float_opt j in
    let* p50_ns = field "p50_ns" J.to_float_opt j in
    let* p95_ns = field "p95_ns" J.to_float_opt j in
    let* p99_ns = field "p99_ns" J.to_float_opt j in
    let* p999_ns = field "p999_ns" J.to_float_opt j in
    let* buckets = field "buckets" J.to_list_opt j in
    let* buckets =
      map_result
        (fun b ->
          match J.to_list_opt b with
          | Some [ lo; hi; n ] -> (
            match (J.to_int64_opt lo, J.to_int64_opt hi, J.to_int_opt n) with
            | Some lo, Some hi, Some n -> Ok (lo, hi, n)
            | _ -> Error "metrics: bad bucket entry")
          | _ -> Error "metrics: bad bucket shape")
        buckets
    in
    Ok { count; mean_ns; min_ns; max_ns; p50_ns; p95_ns; p99_ns; p999_ns; buckets }

  let hist_table_of_json name j =
    match J.to_obj_opt j with
    | None -> Error (Printf.sprintf "metrics: %s is not an object" name)
    | Some fields ->
      map_result
        (fun (k, v) ->
          let* h = hist_of_json v in
          Ok (k, h))
        fields

  let cell_of_json j =
    let* id = field "id" J.to_int_opt j in
    let* status = field "status" J.to_string_opt j in
    let* status =
      match status_of_string status with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "metrics: unknown cell status %S" status)
    in
    let* live = field "live_set" J.to_list_opt j in
    let* live_set =
      map_result
        (fun v ->
          match J.to_int_opt v with
          | Some i -> Ok i
          | None -> Error "metrics: bad live_set entry")
        live
    in
    let* counters = field "counters" Option.some j in
    let* counters = counters_of_json "cell counters" counters in
    Ok { id; status; live_set; counters }

  let of_json j =
    let* sim_time_ns = field "sim_time_ns" J.to_int64_opt j in
    let* rpc = field "rpc" Option.some j in
    let* rpc_client = field "client" Option.some rpc in
    let* rpc_client = hist_table_of_json "rpc.client" rpc_client in
    let* rpc_server = field "server" Option.some rpc in
    let* rpc_server = hist_table_of_json "rpc.server" rpc_server in
    let* ops =
      (* absent in snapshots written before op-level instrumentation *)
      match J.member "ops" j with
      | None -> Ok []
      | Some v -> hist_table_of_json "ops" v
    in
    let* cells = field "cells" J.to_list_opt j in
    let* cells = map_result cell_of_json cells in
    let* system_counters = field "system_counters" Option.some j in
    let* system_counters =
      counters_of_json "system_counters" system_counters
    in
    let* sips = field "sips" Option.some j in
    let* sends = field "sends" J.to_int_opt sips in
    let* drops = field "drops" J.to_int_opt sips in
    let* dups = field "dups" J.to_int_opt sips in
    let* delays = field "delays" J.to_int_opt sips in
    let* stale_purged = field "stale_purged" J.to_int_opt sips in
    let* sharing = field "sharing" Option.some j in
    let* sharing = counters_of_json "sharing" sharing in
    let* cache_hit_rate =
      match J.member "cache_hit_rate" j with
      | None -> Ok None
      | Some v -> (
        match J.to_float_opt v with
        | Some f -> Ok (Some f)
        | None -> Error "metrics: bad cache_hit_rate")
    in
    let* timeline = field "recovery_timeline" J.to_list_opt j in
    let* recovery_timeline =
      map_result
        (fun e ->
          let* phase = field "phase" J.to_string_opt e in
          let* ns = field "ns" J.to_int64_opt e in
          Ok (phase, ns))
        timeline
    in
    Ok
      {
        sim_time_ns;
        rpc_client;
        rpc_server;
        ops;
        cells;
        system_counters;
        sips = { sends; drops; dups; delays; stale_purged };
        sharing;
        cache_hit_rate;
        recovery_timeline;
      }

  let of_string s =
    match J.of_string s with
    | Error e -> Error e
    | Ok j -> of_json j
end

(* ---------- capture ---------- *)

let hist_of_stats (h : Sim.Stats.histogram) : Snapshot.hist =
  let n = Sim.Stats.hist_count h in
  if n = 0 then
    {
      count = 0;
      mean_ns = 0.;
      min_ns = 0.;
      max_ns = 0.;
      p50_ns = 0.;
      p95_ns = 0.;
      p99_ns = 0.;
      p999_ns = 0.;
      buckets = [];
    }
  else
    let p q = Sim.Stats.hist_percentile h q in
    {
      count = n;
      mean_ns = Sim.Stats.hist_mean h;
      min_ns = Sim.Stats.hist_min h;
      max_ns = Sim.Stats.hist_max h;
      p50_ns = p 50.;
      p95_ns = p 95.;
      p99_ns = p 99.;
      p999_ns = p 99.9;
      buckets = Sim.Stats.hist_nonempty h;
    }

(* Histogram tables keyed by op name, sorted for stable output. *)
let sorted_hists tbl =
  Hashtbl.fold (fun k v acc -> (k, hist_of_stats v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* System-wide totals for the sharing protocol (summed over cells). *)
let sharing_counters =
  [ "share.imports"; "share.exports"; "share.releases"; "share.reimports";
    "share.cache_hits"; "share.cache_insertions"; "share.cache_evictions";
    "share.cache_invalidations"; "share.invalidates"; "share.release_lost";
    "share.release_races"; "fs.remote_locates"; "fs.readahead_pages";
    "fs.release_errors" ]

let sharing_totals (sys : Types.system) =
  List.map
    (fun name ->
      let total =
        Array.fold_left
          (fun acc (c : Types.cell) ->
            acc + Sim.Stats.value c.Types.counters name)
          0 sys.Types.cells
      in
      (name, total))
    sharing_counters
  |> List.sort compare

(* The derived cache-hit rate: hits / (hits + locate RPCs) — the fraction
   of remote-page lookups that never left the cell. None when the run
   made no remote lookups at all (0/0 is not a rate). *)
let hit_rate_of_totals totals =
  let get n = Option.value ~default:0 (List.assoc_opt n totals) in
  let hits = get "share.cache_hits" in
  let lookups = hits + get "fs.remote_locates" in
  if lookups = 0 then None
  else Some (float_of_int hits /. float_of_int lookups)

let cache_hit_rate (sys : Types.system) =
  hit_rate_of_totals (sharing_totals sys)

let capture (sys : Types.system) : Snapshot.t =
  let sips = Flash.Machine.sips sys.Types.machine in
  let totals = sharing_totals sys in
  {
    sim_time_ns = Sim.Engine.now sys.Types.eng;
    rpc_client = sorted_hists sys.Types.rpc_client_ns;
    rpc_server = sorted_hists sys.Types.rpc_server_ns;
    ops = sorted_hists sys.Types.op_ns;
    cells =
      Array.to_list
        (Array.map
           (fun (c : Types.cell) : Snapshot.cell ->
             {
               id = c.Types.cell_id;
               status = c.Types.cstatus;
               live_set = List.sort compare c.Types.live_set;
               counters = List.sort compare (Sim.Stats.to_list c.Types.counters);
             })
           sys.Types.cells);
    system_counters = List.sort compare (Sim.Stats.to_list sys.Types.sys_counters);
    sips =
      {
        sends = Flash.Sips.send_count sips;
        drops = Flash.Sips.drop_count sips;
        dups = Flash.Sips.dup_count sips;
        delays = Flash.Sips.delay_count sips;
        stale_purged = Flash.Sips.stale_purged_count sips;
      };
    sharing = totals;
    cache_hit_rate = hit_rate_of_totals totals;
    recovery_timeline = sys.Types.recovery_timeline;
  }

let to_json (sys : Types.system) = Snapshot.to_string (capture sys)

let write_file (sys : Types.system) path =
  let oc = open_out path in
  output_string oc (to_json sys);
  output_char oc '\n';
  close_out oc

(* Human-readable end-of-run summary from a frozen snapshot. *)
let print_summary (s : Snapshot.t) =
  if s.Snapshot.rpc_client <> [] then begin
    Printf.printf "RPC client latency (us):\n";
    Printf.printf "  %-26s %8s %8s %8s %8s\n" "op" "count" "p50" "p95" "p99";
    List.iter
      (fun (name, (h : Snapshot.hist)) ->
        Printf.printf "  %-26s %8d %8.1f %8.1f %8.1f\n" name h.count
          (h.p50_ns /. 1e3) (h.p95_ns /. 1e3) (h.p99_ns /. 1e3))
      s.Snapshot.rpc_client
  end;
  if s.Snapshot.ops <> [] then begin
    Printf.printf "end-to-end op latency (us):\n";
    Printf.printf "  %-26s %8s %8s %8s %8s %8s\n" "op|phase" "count" "p50"
      "p95" "p99" "p99.9";
    List.iter
      (fun (name, (h : Snapshot.hist)) ->
        Printf.printf "  %-26s %8d %8.1f %8.1f %8.1f %8.1f\n" name h.count
          (h.p50_ns /. 1e3) (h.p95_ns /. 1e3) (h.p99_ns /. 1e3)
          (h.p999_ns /. 1e3))
      s.Snapshot.ops
  end;
  (let get = Snapshot.sharing_total s in
   if get "share.imports" > 0 then
     Printf.printf
       "sharing: %d imports, %d cache hits (hit rate %.2f), %d locates, %d \
        readahead pages, %d releases, %d invalidations, %d lost releases\n"
       (get "share.imports") (get "share.cache_hits")
       (Option.value ~default:0. s.Snapshot.cache_hit_rate)
       (get "fs.remote_locates") (get "fs.readahead_pages")
       (get "share.releases") (get "share.cache_invalidations")
       (get "share.release_lost"));
  if s.Snapshot.recovery_timeline <> [] then begin
    Printf.printf "recovery timeline:\n";
    List.iter
      (fun (phase, t) ->
        Printf.printf "  %10.3f ms  %s\n" (Int64.to_float t /. 1e6) phase)
      s.Snapshot.recovery_timeline
  end
