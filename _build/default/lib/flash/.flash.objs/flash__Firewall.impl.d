lib/flash/firewall.ml: Addr Array Config Int64 List
