lib/faultinj/campaign.mli: Hive Sim
