(** The shipped scenario set: [null-rpc] / [queued-rpc] (area [rpc]),
    [remote-read] / [pmake-sharing] (area [sharing]), and one scenario per
    workload (area [workloads]). [register] declares them all into the
    {!Scenario} registry; idempotent, call before {!Sweep.run}. *)

val register : unit -> unit
