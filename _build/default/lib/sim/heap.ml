type 'a entry = { time : int64; seq : int; payload : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  if h.size >= cap then begin
    let ncap = max 16 (2 * cap) in
    let nd = Array.make ncap h.data.(0) in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let push h ~time ~seq payload =
  let e = { time; seq; payload } in
  if h.size = 0 && Array.length h.data = 0 then h.data <- Array.make 16 e;
  grow h;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  (* Sift the new entry up to restore the heap invariant. *)
  let rec up i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if before h.data.(i) h.data.(p) then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(p);
        h.data.(p) <- tmp;
        up p
      end
    end
  in
  up (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let m = if l < h.size && before h.data.(l) h.data.(i) then l else i in
        let m = if r < h.size && before h.data.(r) h.data.(m) then r else m in
        if m <> i then begin
          let tmp = h.data.(i) in
          h.data.(i) <- h.data.(m);
          h.data.(m) <- tmp;
          down m
        end
      in
      down 0
    end;
    Some top
  end
