lib/sim/mutex.mli: Engine
