(* Scenario descriptors: see the .mli. The registry mirrors Rpc.Op —
   declare once at module init, look up by name everywhere else. *)

type dims = {
  workload : string;
  cells : int;
  nodes : int;
  ws_pages : int;
  link_ms : int;
  import_cache : bool;
  smp : bool;
  rate : int;
  zipf_pct : int;
  fault_ms : int;
}

let default_dims =
  {
    workload = "-";
    cells = 2;
    nodes = 4;
    ws_pages = 0;
    link_ms = 0;
    import_cache = true;
    smp = false;
    rate = 0;
    zipf_pct = 0;
    fault_ms = 0;
  }

let dims_label d =
  Printf.sprintf "%s cells=%d nodes=%d ws=%d link=%dms cache=%s%s%s%s%s"
    d.workload d.cells d.nodes d.ws_pages d.link_ms
    (if d.import_cache then "on" else "off")
    (if d.smp then " smp" else "")
    (if d.rate > 0 then Printf.sprintf " rate=%d" d.rate else "")
    (if d.zipf_pct > 0 then
       Printf.sprintf " zipf=%.1f" (float_of_int d.zipf_pct /. 100.)
     else "")
    (if d.fault_ms > 0 then Printf.sprintf " fault=%dms" d.fault_ms else "")

type direction = Lower_better | Higher_better | Info

type metric = { m_name : string; m_value : float; m_dir : direction }

let metric ?(dir = Lower_better) m_name m_value =
  { m_name; m_value; m_dir = dir }

type t = {
  sc_name : string;
  sc_area : string;
  sc_doc : string;
  sc_dims : dims list;
  sc_quick : dims list;
  sc_run : dims -> metric list;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let order : string list ref = ref []

let declare ~name ~area ?(doc = "") ~dims ?quick run =
  if Hashtbl.mem registry name then
    invalid_arg ("Scenario.declare: duplicate " ^ name);
  if dims = [] then invalid_arg ("Scenario.declare: empty grid for " ^ name);
  let quick = match quick with Some q -> q | None -> [ List.hd dims ] in
  List.iter
    (fun q ->
      if not (List.mem q dims) then
        invalid_arg
          (Printf.sprintf "Scenario.declare: %s quick point (%s) not in grid"
             name (dims_label q)))
    quick;
  let t =
    { sc_name = name; sc_area = area; sc_doc = doc; sc_dims = dims;
      sc_quick = quick; sc_run = run }
  in
  Hashtbl.replace registry name t;
  order := name :: !order;
  t

let all () =
  List.rev_map (fun name -> Hashtbl.find registry name) !order

let areas () =
  List.sort_uniq compare (List.map (fun t -> t.sc_area) (all ()))

let find name = Hashtbl.find_opt registry name
