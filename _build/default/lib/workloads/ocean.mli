(** ocean: the Splash-2 scientific simulation (130x130 grid, 900-second
   interval), characteristic of supercomputer use (Table 7.1).

   Each worker owns a chunk of the write-shared global data segment,
   placed on its own cell (chunk files homed per cell), and writes
   boundary rows into its neighbours' chunks every step — so on a
   multicell system a large fraction of the data segment is remotely
   writable through the firewall (the paper measured an average of 550
   remotely-writable pages per cell, versus 15 for pmake), and every
   boundary store is a firewall-checked remote write miss. *)

type cfg = {
  workers : int;
  chunk_pages : int;
  boundary_words : int;
  steps : int;
  step_compute_ns : int64;
  init_compute_ns : int64;
}
val default : cfg
val path_homed : Hive.Types.system -> base:string -> target:int -> string
val chunk_path : Hive.Types.system -> int -> string
val out_path : string
val expected_output : cfg -> bytes
val setup : Hive.Types.system -> cfg -> unit
val worker :
  cfg ->
  w:int ->
  barrier:Sim.Barrier.t ->
  sums:int64 array -> Hive.Types.system -> Hive.Types.process -> unit
val driver :
  cfg -> int64 array -> Hive.Types.system -> Hive.Types.process -> unit
val run :
  ?cfg:cfg ->
  Hive.Types.system -> Workload.result * Hive.Types.process
val verify :
  ?cfg:cfg ->
  Hive.Types.system -> (string * Workload.verify_outcome) list
