lib/hive/system.mli: Flash Int64 Params Sim Types
