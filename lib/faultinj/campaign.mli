(** Fault-injection campaigns (Section 7.4).

   Each test boots a four-cell system, runs a workload, injects one fault
   (a fail-stop node failure or a kernel data corruption), and then:

   - measures the latency until the last cell enters recovery;
   - checks that the fault's effects were contained: all other cells
     survive;
   - runs the pmake workload as a system correctness check (it forks
     processes on all surviving cells);
   - compares all output files of the workload run and the check run
     against reference copies to detect data corruption (stale data after
     a preemptive discard is data loss, not corruption).

   The workload/timing combinations follow Table 7.4: node failure during
   process creation (pmake), during copy-on-write search (raytrace), and
   at random times (pmake); corrupt pointer in a process address map
   (pmake) and in the copy-on-write tree (raytrace). *)

type fault =
    Node_failure of { node : int; at_ns : int64; }
  | Corrupt_map of { victim_cell : int; at_ns : int64;
      mode : Hive.System.corruption_mode;
    }
  | Corrupt_cow of { victim_cell : int; at_ns : int64;
      mode : Hive.System.corruption_mode;
    }
type outcome = {
  fault_desc : string;
  injected_cell : int;
  contained : bool;
  detection_ms : float option;
  recovery_ms : float option;
  check_passed : bool;
  corrupt_outputs : string list;
  survivors : int list;
}
type workload_kind = Use_pmake | Use_raytrace
val pick_victim_process :
  Hive.Types.system -> cell_id:int -> Hive.Types.process option
val pick_cow_node :
  Hive.Types.system ->
  cell_id:Hive.Types.cell_id -> Hive.Types.cow_ref option
val inject :
  Hive.Types.system -> Sim.Prng.t -> fault -> Hive.Types.cell_id option
val fault_time : fault -> int64
val describe : fault -> string
val run_test : ?seed:int -> workload:workload_kind -> fault -> outcome
val passed : outcome -> bool
type campaign_row = {
  label : string;
  tests : int;
  all_contained : bool;
  avg_detect_ms : float;
  max_detect_ms : float;
  avg_recovery_ms : float;
  failures : string list;
}
val summarize : string -> outcome list -> campaign_row
val modes : Hive.System.corruption_mode array
val node_failure_during_creation : tests:int -> campaign_row
val node_failure_during_cow : tests:int -> campaign_row
val node_failure_random : tests:int -> campaign_row
val corrupt_map_campaign : tests:int -> campaign_row
val corrupt_cow_campaign : tests:int -> campaign_row

(** Cascading (nested) failures: a second node killed while the first
    failure's recovery round is in flight, between the two global
    barriers. Exercises the abortable-barrier / round-restart machinery
    and the master's automatic reintegration of both victims. *)

type cascade_outcome = {
  c_first_node : int;
  c_second_node : int;
  c_deadlocked : bool;
  c_restarted : bool;
  c_contained : bool;
  c_reintegrated : bool;
  c_check_passed : bool;
  c_detection_ms : float option;
}

val run_cascade_test :
  ?seed:int ->
  first_node:int -> second_node:int -> at_ns:int64 -> unit -> cascade_outcome

(** No deadlock, the round restarted, the fault stayed contained, both
    victims were reintegrated, and the post-episode pmake check passed. *)
val cascade_passed : cascade_outcome -> bool

val cascade_campaign : tests:int -> campaign_row
