(** Latency model of an HP-97560-class disk (one per node), following the
    role of the validated drive model used by SimOS. Accesses serialize on
    the drive; sequential block runs are cheap, random accesses pay average
    seek plus rotation. *)

type t

val block_size : int

val create : Config.t -> int -> t

(** Blocking read of [bytes] starting at [block]. *)
val read : Sim.Engine.t -> t -> block:int -> bytes:int -> unit

(** Blocking write. *)
val write : Sim.Engine.t -> t -> block:int -> bytes:int -> unit

val io_count : t -> int

val bytes_transferred : t -> int
