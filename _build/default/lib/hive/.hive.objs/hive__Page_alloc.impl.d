lib/hive/page_alloc.ml: Array Hashtbl List Pfdat Rpc Types
