(** Shared plumbing for the benchmark sections and sweep scenarios:
    booting a system, timing a simulation-thread body in virtual time,
    the no-op RPC ops, and a warmed data-home file. *)

val section_header : string -> unit

(** Print one indented result line. *)
val row : ('a, unit, string, unit) format4 -> 'a

val compare_row :
  label:string -> paper:string -> measured:string -> unit_:string -> unit

val boot :
  ?ncells:int ->
  ?mcfg:Flash.Config.t ->
  ?wax:bool ->
  unit ->
  Sim.Engine.t * Hive.Types.system

(** Run a simulation-thread body to completion and return simulated ns. *)
val timed_in_thread : Sim.Engine.t -> (unit -> unit) -> int64

(** No-op RPC served at interrupt level / via the queued service. *)
val noop_op : Hive.Rpc.Op.t

val noop_queued_op : Hive.Rpc.Op.t

(** Register the handlers for {!noop_op} and {!noop_queued_op}
    (idempotent). *)
val register_bench_ops : unit -> unit

(** Average client-observed latency of [n] calls of [op], in us. *)
val avg_rpc_us :
  Sim.Engine.t ->
  Hive.Types.system ->
  op:Hive.Rpc.Op.t ->
  arg_bytes:int ->
  n:int ->
  float

(** Create an [npages]-page file homed on cell 0 and warm its page cache
    there; returns the path. *)
val make_warm_file : Hive.Types.system -> npages:int -> string
