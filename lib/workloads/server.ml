(* server: an interactive time-sharing traffic workload — the paper's
   Hive pitch is that a cell failure looks like a partial outage, not a
   crash, to users of the surviving cells. This workload quantifies that:
   open-loop Poisson request arrivals on every cell, Zipf file popularity
   over files spread across data homes, plus fork/exit churn storms, with
   a cell killed mid-traffic.

   Clients give every request an end-to-end deadline budget and spend it
   across redirect legs ({!Hive.Rpc.call} [?deadline_ns]); servers shed
   sheddable requests with EBUSY when their queued-service backlog hits
   [Params.rpc_queue_bound] or while their cell is mid-recovery. Request
   latencies are classified post-hoc into before/during/after-failure
   phases and recorded in [sys.op_ns], so [Metrics.capture] exports
   p50/p95/p99/p99.9 per class and phase. *)

type fault = {
  kill_cell : int; (* cell fail-stopped mid-traffic *)
  at_ms : int; (* injection time, relative to traffic start *)
}

type cfg = {
  duration_ms : int;
  rate_rps : float; (* system-wide arrival rate (open loop) *)
  zipf_s : float; (* file popularity skew; 0 = uniform *)
  nfiles : int;
  file_pages : int;
  read_pages : int; (* pages fetched per read request *)
  service_ns : int64; (* server-side think time per read *)
  churn_pct : int; (* % of arrivals that are churn requests *)
  churn_forks : int; (* fork/exit storm size per churn request *)
  churn_compute_ns : int64;
  deadline_ms : int; (* end-to-end client budget per request *)
  remote_pct : int; (* % of reads sent to a non-home cell first *)
  fault : fault option;
  seed : int64;
}

let default =
  {
    duration_ms = 3_000;
    rate_rps = 80.;
    zipf_s = 1.1;
    nfiles = 64;
    file_pages = 4;
    read_pages = 2;
    service_ns = 200_000L;
    churn_pct = 10;
    churn_forks = 2;
    churn_compute_ns = 2_000_000L;
    deadline_ms = 250;
    remote_pct = 10;
    fault = None;
    seed = 0x5EEDL;
  }

(* What the traffic saw, end to end. [fail_fast_max_ns] is the headline
   containment number: the longest any client waited before learning its
   request could not be served — it must stay within the deadline budget. *)
type stats = {
  arrivals : int;
  skipped : int; (* arrivals on a dead client cell: never issued *)
  reads_served : int; (* clean: no failed leg *)
  reads_redirected : int; (* served after >= 1 failed leg *)
  fail_fast : int; (* errored out with budget left *)
  deadline_exceeded : int;
  client_lost : int; (* issuing cell died before completion *)
  shed_legs : int; (* EBUSY refusals observed client-side *)
  churn_sent : int;
  churn_ok : int;
  fault_at_ns : int64 option;
  recovered_at_ns : int64 option;
  fail_fast_max_ns : int64;
  errors : int; (* unexpected traffic-thread exceptions; 0 when correct *)
}

type Hive.Types.payload +=
    P_srv_read of { path : string; pages : int; service_ns : int64 }
  | P_srv_data of { bytes : int }
  | P_srv_churn of { path : string; forks : int; compute_ns : int64 }

(* Interactive ops are declared sheddable: unlike kernel RPCs, refusing
   one loses no kernel state — the client redirects or gives the user an
   error — so the server may protect itself under overload. *)
let read_op =
  Hive.Rpc.Op.declare ~idempotent:true ~sheddable:true ~arg_bytes:64
    ~reply_bytes:4096 "server.read"

let churn_op =
  Hive.Rpc.Op.declare ~sheddable:true ~arg_bytes:64 ~reply_bytes:16
    "server.churn"

(* Queued bodies run on a cell's RPC pool threads, which are kernel
   threads: an uncaught exception there panics the cell, so everything
   except [Killed] is turned into an errno. *)
let guard (c : Hive.Types.cell) f =
  try f () with
  | Sim.Engine.Killed as k -> raise k
  | Hive.Fs.Stale e -> Error e
  | Hive.Types.Syscall_error e -> Error e
  | _ ->
    Hive.Types.bump c "server.handler_errors";
    Error Hive.Types.EIO

let read_handler sys (c : Hive.Types.cell) ~src:_ payload =
  match payload with
  | P_srv_read { path; pages; service_ns } ->
    Hive.Types.Queued
      (fun () ->
        guard c (fun () ->
            let home = Hive.Fs.home_of_path sys path in
            (* Fast fail: asking this cell to serve data homed on a cell
               it believes dead would just burn the pool thread on a
               doomed import — answer EHOSTDOWN immediately instead. *)
            if
              home <> c.Hive.Types.cell_id
              && not (List.mem home c.Hive.Types.live_set)
            then Error Hive.Types.EHOSTDOWN
            else
              match Hive.Fs.open_file sys c ~path with
              | Error e -> Error e
              | Ok (vn, gen) ->
                let len = pages * Hive.Fs.page_size sys in
                let r =
                  Hive.Fs.read sys c vn ~opened_gen:gen ~pos:0 ~len
                in
                Hive.Fs.release_file_imports sys c vn;
                (match r with
                | Error e -> Error e
                | Ok b ->
                  Sim.Engine.delay service_ns;
                  Hive.Types.bump c "server.reads";
                  Ok (P_srv_data { bytes = Bytes.length b }))))
  | _ -> Hive.Types.Immediate (Error Hive.Types.EBADF)

let churn_handler sys (c : Hive.Types.cell) ~src:_ payload =
  match payload with
  | P_srv_churn { path; forks; compute_ns } ->
    Hive.Types.Queued
      (fun () ->
        guard c (fun () ->
            let r =
              match Hive.Fs.open_file sys c ~path with
              | Error e -> Error e
              | Ok (vn, gen) ->
                let r =
                  Hive.Fs.read sys c vn ~opened_gen:gen ~pos:0
                    ~len:(Hive.Fs.page_size sys)
                in
                Hive.Fs.release_file_imports sys c vn;
                Result.map (fun _ -> ()) r
            in
            (* Fork/exit storm: short-lived processes that compute and
               exit, stressing process create/teardown on the serving
               cell while traffic is in flight. *)
            for k = 1 to forks do
              Hive.Types.bump c "server.churn_forks";
              ignore
                (Hive.Process.spawn sys c
                   ~name:(Printf.sprintf "churn.c%d.%d" c.Hive.Types.cell_id k)
                   (fun sys p -> Hive.Syscall.compute sys p compute_ns))
            done;
            Hive.Types.bump c "server.churns";
            Result.map (fun () -> Hive.Types.P_unit) r))
  | _ -> Hive.Types.Immediate (Error Hive.Types.EBADF)

(* Idempotent: campaign drivers call this once per domain warm-up and
   every [run] calls it again. *)
let register_ops () =
  if not (Hive.Rpc.registered read_op) then
    Hive.Rpc.register read_op read_handler;
  if not (Hive.Rpc.registered churn_op) then
    Hive.Rpc.register churn_op churn_handler

(* ---------- client side ---------- *)

type rec_ = {
  r_arrival : int64;
  r_latency : int64;
  r_klass : string;
  r_err_legs : int;
}

type state = {
  mutable recs : rec_ list; (* reverse arrival-completion order *)
  mutable outstanding : int;
  mutable frontends : int;
  mutable arrivals : int;
  mutable skipped : int;
  mutable shed_legs : int;
  mutable churn_sent : int;
  mutable churn_ok : int;
  mutable client_lost : int;
  mutable errors : int;
  mutable fault_seen : int64 option;
  mutable recovered_at : int64 option;
  t_end : int64;
  paths : string array;
}

let ms_ns m = Int64.mul (Int64.of_int m) 1_000_000L

(* File [i] is probed onto data home [i mod ncells], so Zipf popularity
   weight is spread evenly and killing any one cell takes out ~1/ncells
   of the traffic's data. *)
let setup cfg (sys : Hive.Types.system) =
  let ncells = Array.length sys.Hive.Types.cells in
  let psize = Hive.Fs.page_size sys in
  Array.init cfg.nfiles (fun i ->
      let want = i mod ncells in
      let rec probe s =
        let p = Printf.sprintf "/srv/f%d.%d" i s in
        if Hive.Fs.home_of_path sys p = want then p else probe (s + 1)
      in
      let path = probe 0 in
      let content =
        Workload.synth_content ~tag:path ~bytes:(cfg.file_pages * psize)
      in
      ignore
        (Hive.Fs.create_local sys
           sys.Hive.Types.cells.(Hive.Fs.home_of_path sys path)
           ~path ~content);
      path)

let record st ~arrival ~klass ~err_legs =
  let lat = Int64.sub (Sim.Engine.time ()) arrival in
  st.recs <-
    { r_arrival = arrival; r_latency = lat; r_klass = klass;
      r_err_legs = err_legs }
    :: st.recs

(* Redirect order: the chosen first target, then the data home, then the
   remaining cells ascending. *)
let targets ncells home alt =
  let primary = (home + alt) mod ncells in
  let order = primary :: home :: List.init ncells (fun i -> i) in
  let rec dedup seen = function
    | [] -> []
    | t :: rest ->
      if List.mem t seen then dedup seen rest
      else t :: dedup (t :: seen) rest
  in
  dedup [] order

let do_read st cfg (sys : Hive.Types.system) (client : Hive.Types.cell)
    ~rank ~alt ~arrival =
  let eng = sys.Hive.Types.eng in
  let ncells = Array.length sys.Hive.Types.cells in
  let path = st.paths.(rank) in
  let home = rank mod ncells in
  let tgts = targets ncells home alt in
  let t_deadline = Int64.add arrival (ms_ns cfg.deadline_ms) in
  (* Split the budget across legs so one dead target cannot eat it all:
     a leg gets budget/legs, and whatever a fast leg leaves unspent stays
     available to the later ones. *)
  let leg_budget =
    Int64.div (ms_ns cfg.deadline_ms) (Int64.of_int (List.length tgts))
  in
  let payload =
    P_srv_read { path; pages = cfg.read_pages; service_ns = cfg.service_ns }
  in
  let err_legs = ref 0 in
  let finish klass =
    if client.Hive.Types.cstatus <> Hive.Types.Cell_up then
      st.client_lost <- st.client_lost + 1
    else record st ~arrival ~klass ~err_legs:!err_legs
  in
  let leg tgt =
    let remaining = Int64.sub t_deadline (Sim.Engine.now eng) in
    if Int64.compare remaining 0L <= 0 then `Budget_gone
    else
      let d =
        if Int64.compare remaining leg_budget < 0 then remaining
        else leg_budget
      in
      match
        Hive.Rpc.call sys ~from:client ~target:tgt ~op:read_op ~deadline_ns:d
          payload
      with
      | Ok _ -> `Served
      | Error e ->
        incr err_legs;
        if e = Hive.Types.EBUSY then st.shed_legs <- st.shed_legs + 1;
        `Failed
  in
  let rec pass tgs retried =
    match tgs with
    | [] ->
      if Int64.compare (Sim.Engine.now eng) t_deadline >= 0 then
        finish "server.read_deadline"
      else if not retried then begin
        (* One bounded re-pass: a shed or a lost race may clear within
           the budget; more passes would just be a retry storm. *)
        let remaining = Int64.sub t_deadline (Sim.Engine.now eng) in
        Sim.Engine.delay (Int64.min 5_000_000L (Int64.max 0L remaining));
        pass tgts true
      end
      else finish "server.read_failfast"
    | tgt :: rest -> (
      match leg tgt with
      | `Served ->
        finish (if !err_legs = 0 then "server.read" else "server.read_redirected")
      | `Failed -> pass rest retried
      | `Budget_gone -> finish "server.read_deadline")
  in
  pass tgts false

let do_churn st cfg (sys : Hive.Types.system) (client : Hive.Types.cell)
    ~tgt ~rank ~arrival =
  let payload =
    P_srv_churn
      {
        path = st.paths.(rank);
        forks = cfg.churn_forks;
        compute_ns = cfg.churn_compute_ns;
      }
  in
  match
    Hive.Rpc.call sys ~from:client ~target:tgt ~op:churn_op
      ~deadline_ns:(ms_ns cfg.deadline_ms) payload
  with
  | Ok _ ->
    st.churn_ok <- st.churn_ok + 1;
    record st ~arrival ~klass:"server.churn" ~err_legs:0
  | Error _ -> ()

(* Open-loop Poisson frontend, one per cell. Draws happen here, in one
   deterministic stream per cell; the request itself runs in its own
   throwaway thread so a slow request never delays the next arrival. *)
let frontend st cfg (sys : Hive.Types.system) zipfd (c : Hive.Types.cell) =
  let eng = sys.Hive.Types.eng in
  let ncells = Array.length sys.Hive.Types.cells in
  let rng =
    Sim.Prng.of_int64
      (Int64.logxor cfg.seed
         (Int64.mul (Int64.of_int (c.Hive.Types.cell_id + 1))
            0x9E3779B97F4A7C15L))
  in
  let mean_gap = 1e9 *. float_of_int ncells /. cfg.rate_rps in
  let spawn_traffic name body =
    st.outstanding <- st.outstanding + 1;
    ignore
      (Sim.Engine.spawn ~name eng (fun () ->
           Fun.protect
             ~finally:(fun () -> st.outstanding <- st.outstanding - 1)
             (fun () ->
               try body () with
               | Sim.Engine.Killed as k -> raise k
               | _ -> st.errors <- st.errors + 1)))
  in
  let rec loop i =
    let gap = Int64.of_float (Float.max 1. (Sim.Prng.exponential rng ~mean:mean_gap)) in
    if Int64.compare (Int64.add (Sim.Engine.now eng) gap) st.t_end >= 0 then ()
    else begin
      Sim.Engine.delay gap;
      (if c.Hive.Types.cstatus <> Hive.Types.Cell_up then
         st.skipped <- st.skipped + 1
       else begin
         st.arrivals <- st.arrivals + 1;
         let arrival = Sim.Engine.now eng in
         if Sim.Prng.int rng 100 < cfg.churn_pct then begin
           let tgt =
             if ncells = 1 then 0
             else (c.Hive.Types.cell_id + 1 + Sim.Prng.int rng (ncells - 1))
                  mod ncells
           in
           (* a file homed on the churn target, so its reads stay local *)
           let k = Sim.Prng.int rng cfg.nfiles in
           let rank = (k - (k mod ncells) + tgt) mod cfg.nfiles in
           st.churn_sent <- st.churn_sent + 1;
           spawn_traffic
             (Printf.sprintf "srv.churn.c%d.%d" c.Hive.Types.cell_id i)
             (fun () -> do_churn st cfg sys c ~tgt ~rank ~arrival)
         end
         else begin
           let rank = Sim.Prng.zipf_draw rng zipfd in
           let alt =
             if ncells > 1 && Sim.Prng.int rng 100 < cfg.remote_pct then
               1 + Sim.Prng.int rng (ncells - 1)
             else 0
           in
           spawn_traffic
             (Printf.sprintf "srv.req.c%d.%d" c.Hive.Types.cell_id i)
             (fun () -> do_read st cfg sys c ~rank ~alt ~arrival)
         end
       end);
      loop (i + 1)
    end
  in
  loop 0

(* ---------- phase classification and stats ---------- *)

let phase_of st arrival =
  match st.fault_seen with
  | None -> "before"
  | Some tf ->
    if Int64.compare arrival tf < 0 then "before"
    else (
      match st.recovered_at with
      | Some tr when Int64.compare arrival tr >= 0 -> "after"
      | _ -> "during")

let finalize st (sys : Hive.Types.system) =
  List.iter
    (fun r ->
      let key = r.r_klass ^ "|" ^ phase_of st r.r_arrival in
      Sim.Stats.hist_add
        (Hive.Types.hist_for sys.Hive.Types.op_ns key)
        r.r_latency)
    st.recs

let stats_of st =
  let count klass = List.length (List.filter (fun r -> r.r_klass = klass) st.recs) in
  let fail_fast_max =
    List.fold_left
      (fun acc r ->
        if r.r_klass = "server.read_failfast" then Int64.max acc r.r_latency
        else acc)
      0L st.recs
  in
  {
    arrivals = st.arrivals;
    skipped = st.skipped;
    reads_served = count "server.read";
    reads_redirected = count "server.read_redirected";
    fail_fast = count "server.read_failfast";
    deadline_exceeded = count "server.read_deadline";
    client_lost = st.client_lost;
    shed_legs = st.shed_legs;
    churn_sent = st.churn_sent;
    churn_ok = st.churn_ok;
    fault_at_ns = st.fault_seen;
    recovered_at_ns = st.recovered_at;
    fail_fast_max_ns = fail_fast_max;
    errors = st.errors;
  }

(* ---------- driver ---------- *)

let run ?(cfg = default) (sys : Hive.Types.system) =
  register_ops ();
  let eng = sys.Hive.Types.eng in
  let t0 = Sim.Engine.now eng in
  let paths = setup cfg sys in
  let st =
    {
      recs = [];
      outstanding = 0;
      frontends = 0;
      arrivals = 0;
      skipped = 0;
      shed_legs = 0;
      churn_sent = 0;
      churn_ok = 0;
      client_lost = 0;
      errors = 0;
      fault_seen = None;
      recovered_at = None;
      t_end = Int64.add t0 (ms_ns cfg.duration_ms);
      paths;
    }
  in
  (match cfg.fault with
  | None -> ()
  | Some f ->
    ignore
      (Sim.Engine.spawn ~name:"srv.inject" eng (fun () ->
           try
             Sim.Engine.delay (ms_ns f.at_ms);
             let victim = sys.Hive.Types.cells.(f.kill_cell) in
             if victim.Hive.Types.cstatus = Hive.Types.Cell_up then begin
               st.fault_seen <- Some (Sim.Engine.now eng);
               Hive.System.inject_node_failure sys victim.Hive.Types.boss_node
             end
           with
           | Sim.Engine.Killed as k -> raise k
           | _ -> st.errors <- st.errors + 1));
    (* Recovery monitor: records the first instant the victim is back to
       Cell_up, bounding the "during" phase. 1 ms polling is virtual
       time — deterministic and free of wall-clock. *)
    ignore
      (Sim.Engine.spawn ~name:"srv.monitor" eng (fun () ->
           try
             let victim = sys.Hive.Types.cells.(f.kill_cell) in
             let rec watch () =
               if Int64.compare (Sim.Engine.now eng) st.t_end >= 0 then ()
               else
                 match st.fault_seen with
                 | Some _
                   when victim.Hive.Types.cstatus = Hive.Types.Cell_up ->
                   st.recovered_at <- Some (Sim.Engine.now eng)
                 | _ ->
                   Sim.Engine.delay 1_000_000L;
                   watch ()
             in
             watch ()
           with
           | Sim.Engine.Killed as k -> raise k
           | _ -> ())));
  let zipfd = Sim.Prng.zipf ~n:cfg.nfiles ~s:cfg.zipf_s in
  Array.iter
    (fun (c : Hive.Types.cell) ->
      st.frontends <- st.frontends + 1;
      ignore
        (Sim.Engine.spawn
           ~name:(Printf.sprintf "srv.fe%d" c.Hive.Types.cell_id)
           eng
           (fun () ->
             Fun.protect
               ~finally:(fun () -> st.frontends <- st.frontends - 1)
               (fun () ->
                 try frontend st cfg sys zipfd c with
                 | Sim.Engine.Killed as k -> raise k
                 | _ -> st.errors <- st.errors + 1))))
    sys.Hive.Types.cells;
  let deadline = Int64.add st.t_end 60_000_000_000L in
  let done_ =
    Hive.System.run_until sys ~deadline (fun () ->
        Int64.compare (Sim.Engine.now eng) st.t_end >= 0
        && st.frontends = 0 && st.outstanding = 0)
  in
  finalize st sys;
  let s = stats_of st in
  let procs_total =
    Array.fold_left
      (fun acc (c : Hive.Types.cell) ->
        acc + Sim.Stats.value c.Hive.Types.counters "server.churn_forks")
      0 sys.Hive.Types.cells
  in
  ( {
      Workload.name = "server";
      elapsed_ns = Int64.sub (Sim.Engine.now eng) t0;
      completed = done_ && s.errors = 0;
      procs_total;
      procs_killed = 0;
    },
    s )

let print_stats (s : stats) =
  Printf.printf
    "traffic: %d arrivals (%d skipped), %d served + %d redirected, %d \
     fail-fast (max %.1f ms), %d deadline-exceeded, %d client-lost, %d \
     shed legs, churn %d/%d ok\n"
    s.arrivals s.skipped s.reads_served s.reads_redirected s.fail_fast
    (Int64.to_float s.fail_fast_max_ns /. 1e6)
    s.deadline_exceeded s.client_lost s.shed_legs s.churn_ok s.churn_sent;
  (match (s.fault_at_ns, s.recovered_at_ns) with
  | Some tf, Some tr ->
    Printf.printf "traffic: fault at %.1f ms, victim back up at %.1f ms\n"
      (Int64.to_float tf /. 1e6) (Int64.to_float tr /. 1e6)
  | Some tf, None ->
    Printf.printf "traffic: fault at %.1f ms, victim not back by end\n"
      (Int64.to_float tf /. 1e6)
  | None, _ -> ());
  if s.errors > 0 then
    Printf.printf "traffic: %d unexpected traffic-thread errors\n" s.errors
