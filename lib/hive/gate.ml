(* User-level suspension gate.

   During distributed agreement and recovery, user-level processes are
   suspended while kernel-level threads continue (Section 4.3). Process
   threads pass through the gate at syscall and fault entry points and
   block while it is closed. *)

let gate_event (sys : Types.system) (c : Types.cell) name =
  Sim.Event.instant sys.Types.events ~cell:c.Types.cell_id
    ~cat:Sim.Event.Gate name

let close (sys : Types.system) (c : Types.cell) =
  if c.Types.user_gate_open then gate_event sys c "gate.close";
  c.Types.user_gate_open <- false

(* Waiters are kept newest-first (O(1) prepend in [pass], which runs on
   every syscall while the gate is closed) and reversed here so wake
   order stays arrival order. *)
let open_ (sys : Types.system) (c : Types.cell) =
  if not c.Types.user_gate_open then gate_event sys c "gate.open";
  c.Types.user_gate_open <- true;
  let ws = List.rev c.Types.gate_waiters in
  c.Types.gate_waiters <- [];
  List.iter (fun t -> ignore (Sim.Engine.try_resume sys.Types.eng t)) ws

let pass (c : Types.cell) =
  while not c.Types.user_gate_open do
    Sim.Engine.suspend ~site:"gate.pass" (fun thr ->
        c.Types.gate_waiters <- thr :: c.Types.gate_waiters)
  done

let is_open (c : Types.cell) = c.Types.user_gate_open
