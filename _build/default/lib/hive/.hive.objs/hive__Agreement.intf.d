lib/hive/agreement.mli: Types
