lib/flash/memory.ml: Addr Array Bytes Char Config Firewall Int64 Sim
