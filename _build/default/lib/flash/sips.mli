(** SIPS: the short interprocessor send facility added to the FLASH
    coherence controller for Hive (Section 6 of the paper).

    Each SIPS delivers one cache line of data (128 bytes) in about the
    latency of a remote cache miss, with the reliability and flow control
    of a cache miss, raising an interrupt at the receiver. Separate
    request and reply receive queues per node make deadlock avoidance easy.

    Message payloads are OCaml values under the open type {!message}
    (extended by the kernel's RPC layer); the declared [size] models the
    128-byte limit — anything larger must be passed by reference through
    shared memory. *)

type message = ..

type kind = Request | Reply

exception Too_large of int

exception Target_failed of int

type envelope = { src_proc : int; size : int; msg : message }

type t

val max_payload : int

val create : Sim.Engine.t -> Config.t -> t

val fail_node : t -> int -> unit

val restore_node : t -> int -> unit

(** Send a message; delivery takes one IPI latency plus the SIPS data
    latency. Raises {!Too_large} over 128 declared bytes and
    {!Target_failed} if the destination node is down. *)
val send :
  t -> from_proc:int -> to_node:int -> kind:kind -> size:int -> message -> unit

(** Blocking receive on a node's request or reply queue. *)
val receive :
  ?timeout:int64 -> t -> node:int -> kind:kind -> envelope option

val pending : t -> node:int -> kind:kind -> int

val send_count : t -> int
