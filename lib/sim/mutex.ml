type t = {
  mutable holder : Engine.thread option;
  mutable waiters : Engine.thread list;
}

let create () = { holder = None; waiters = [] }

let is_locked m = m.holder <> None

let lock eng m =
  let me = Engine.self () in
  (match m.holder with
  | Some h when h == me -> invalid_arg "Mutex.lock: not reentrant"
  | _ -> ());
  let rec wait () =
    match m.holder with
    | None -> m.holder <- Some me
    | Some _ ->
      Engine.suspend ~site:"mutex.lock" (fun thr ->
          m.waiters <- m.waiters @ [ thr ]);
      ignore eng;
      wait ()
  in
  wait ()

let try_lock m =
  match m.holder with
  | None ->
    m.holder <- Some (Engine.self ());
    true
  | Some _ -> false

let unlock eng m =
  (match m.holder with
  | None -> invalid_arg "Mutex.unlock: not locked"
  | Some _ -> ());
  m.holder <- None;
  (* Wake the first live waiter; it re-contends in its [wait] loop. *)
  let rec wake () =
    match m.waiters with
    | [] -> ()
    | w :: rest ->
      m.waiters <- rest;
      if not (Engine.try_resume eng w) then wake ()
  in
  wake ()

let with_lock eng m f =
  lock eng m;
  Fun.protect ~finally:(fun () -> unlock eng m) f
