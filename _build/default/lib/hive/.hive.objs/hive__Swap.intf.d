lib/hive/swap.mli: Flash Types
