(* The single-system-image syscall layer: the UNIX-flavoured API that
   processes (workloads, examples) program against. Every call passes the
   user gate (suspension during agreement/recovery) and raises
   [Types.Syscall_error] on failure. *)

exception E = Types.Syscall_error

let ok = function Ok v -> v | Error e -> raise (E e)

let cell_of (sys : Types.system) (p : Types.process) =
  sys.Types.cells.(p.Types.proc_cell)

let getpid (p : Types.process) = p.Types.pid

let getcell (p : Types.process) = p.Types.proc_cell

(* Common syscall prologue: every entry passes the user gate of the
   process's current cell (suspending while agreement or recovery has it
   closed), counts the call, and runs the body inside a tracing span. The
   cell is looked up once and handed to the body, so a call cannot
   accidentally mix gate cell and execution cell. *)
let enter (sys : Types.system) (p : Types.process) name f =
  let c = cell_of sys p in
  Gate.pass c;
  Types.bump c ("syscall." ^ name);
  (* Only build the span name (a fresh string per call) when a trace sink
     is attached; this is on the path of every syscall in the system. *)
  if Sim.Event.enabled sys.Types.events then
    Sim.Event.span sys.Types.events ~cell:c.Types.cell_id ~cat:Sim.Event.Syscall
      ("sys." ^ name) (fun () -> f c)
  else f c

(* ---------- Files ---------- *)

let install_fd (p : Types.process) vnode gen ~writable =
  let n = p.Types.next_fd in
  p.Types.next_fd <- n + 1;
  Hashtbl.replace p.Types.fds n
    { Types.fd_num = n; vnode; pos = 0; opened_gen = gen; fd_writable = writable };
  n

let note_remote_home (p : Types.process) vnode =
  let fid = Types.vnode_fid vnode in
  if fid.Types.home <> p.Types.proc_cell then
    p.Types.uses_cells <-
      (if List.mem fid.Types.home p.Types.uses_cells then p.Types.uses_cells
       else fid.Types.home :: p.Types.uses_cells)

let openf (sys : Types.system) (p : Types.process) ?(writable = false) path =
  enter sys p "open" @@ fun c ->
  let vnode, gen = ok (Fs.open_file sys c ~path) in
  note_remote_home p vnode;
  install_fd p vnode gen ~writable

let creat (sys : Types.system) (p : Types.process) ?(content = Bytes.empty)
    path =
  enter sys p "creat" @@ fun c ->
  let vnode, gen = ok (Fs.create_file sys c ~path ~content) in
  note_remote_home p vnode;
  install_fd p vnode gen ~writable:true

let fd_of (p : Types.process) fd =
  match Hashtbl.find_opt p.Types.fds fd with
  | Some f -> f
  | None -> raise (E Types.EBADF)

let read (sys : Types.system) (p : Types.process) ~fd ~len =
  enter sys p "read" @@ fun c ->
  let f = fd_of p fd in
  let data =
    ok
      (Fs.read sys c f.Types.vnode ~opened_gen:f.Types.opened_gen
         ~pos:f.Types.pos ~len)
  in
  f.Types.pos <- f.Types.pos + Bytes.length data;
  data

let pread (sys : Types.system) (p : Types.process) ~fd ~pos ~len =
  enter sys p "pread" @@ fun c ->
  let f = fd_of p fd in
  ok (Fs.read sys c f.Types.vnode ~opened_gen:f.Types.opened_gen ~pos ~len)

let write (sys : Types.system) (p : Types.process) ~fd data =
  enter sys p "write" @@ fun c ->
  let f = fd_of p fd in
  if not f.Types.fd_writable then raise (E Types.EBADF);
  let n =
    ok
      (Fs.write sys c f.Types.vnode ~opened_gen:f.Types.opened_gen
         ~pos:f.Types.pos data)
  in
  f.Types.pos <- f.Types.pos + n;
  n

let pwrite (sys : Types.system) (p : Types.process) ~fd ~pos data =
  enter sys p "pwrite" @@ fun c ->
  let f = fd_of p fd in
  if not f.Types.fd_writable then raise (E Types.EBADF);
  ok (Fs.write sys c f.Types.vnode ~opened_gen:f.Types.opened_gen ~pos data)

let seek (sys : Types.system) (p : Types.process) ~fd pos =
  enter sys p "seek" @@ fun _c -> (fd_of p fd).Types.pos <- pos

let close (sys : Types.system) (p : Types.process) ~fd =
  enter sys p "close" @@ fun c ->
  let f = fd_of p fd in
  Hashtbl.remove p.Types.fds fd;
  (* Closing the last descriptor drops idle import bindings (and thereby
     remote firewall grants) unless the file is still mapped. *)
  let still_open =
    Hashtbl.fold
      (fun _ (g : Types.fd) acc ->
        acc || Types.vnode_fid g.Types.vnode = Types.vnode_fid f.Types.vnode)
      p.Types.fds false
  in
  let still_mapped =
    List.exists
      (fun (r : Types.region) ->
        match r.Types.kind with
        | Types.File_region (v, _) ->
          Types.vnode_fid v = Types.vnode_fid f.Types.vnode
        | Types.Anon_region _ -> false)
      p.Types.regions
  in
  if not (still_open || still_mapped) then
    Fs.release_file_imports sys c f.Types.vnode

let fsize (sys : Types.system) (p : Types.process) ~fd =
  enter sys p "fsize" @@ fun c -> ok (Fs.file_size sys c (fd_of p fd).Types.vnode)

let unlink (sys : Types.system) (p : Types.process) path =
  enter sys p "unlink" @@ fun c -> ok (Fs.unlink sys c path)

let sync (sys : Types.system) (p : Types.process) =
  enter sys p "sync" @@ fun c -> Fs.sync_cell sys c

(* ---------- Memory ---------- *)

let mmap_file (sys : Types.system) (p : Types.process) ~fd ~npages ~writable =
  enter sys p "mmap_file" @@ fun _c ->
  let f = fd_of p fd in
  if writable && not f.Types.fd_writable then raise (E Types.EBADF);
  Vm.map_file sys p f.Types.vnode ~opened_gen:f.Types.opened_gen ~writable
    ~npages

let mmap_anon (sys : Types.system) (p : Types.process) ~npages =
  enter sys p "mmap_anon" @@ fun c ->
  let leaf = Cow.create_root sys c () in
  Vm.map_anon sys p leaf ~npages

let touch (sys : Types.system) (p : Types.process) ~vpage ~write =
  enter sys p "touch" @@ fun _c -> ok (Vm.touch sys p ~vpage ~write)

let write_word (sys : Types.system) (p : Types.process) ~vpage ~offset v =
  enter sys p "write_word" @@ fun _c ->
  ok (Vm.write_word sys p ~vpage ~offset v)

let read_word (sys : Types.system) (p : Types.process) ~vpage ~offset =
  enter sys p "read_word" @@ fun _c -> ok (Vm.read_word sys p ~vpage ~offset)

(* ---------- Processes ---------- *)

let fork (sys : Types.system) (p : Types.process) ?on_cell ~name body =
  enter sys p "fork" @@ fun _c -> ok (Process.fork sys p ?on_cell ~name body)

let exec (sys : Types.system) (p : Types.process) path =
  enter sys p "exec" @@ fun _c -> ok (Process.exec sys p ~path)

let wait = Process.wait

let migrate (sys : Types.system) (p : Types.process) ~to_cell =
  enter sys p "migrate" @@ fun _c -> ok (Process.migrate sys p ~to_cell)

(* ---------- Signals and process groups ---------- *)

let kill (sys : Types.system) (p : Types.process) ~pid signal =
  enter sys p "kill" @@ fun _c -> ok (Signal.kill sys p ~pid signal)

let killpg (sys : Types.system) (p : Types.process) ~pgid signal =
  enter sys p "killpg" @@ fun _c -> ok (Signal.kill_group sys p ~pgid signal)

let signal_handle (p : Types.process) s f = Signal.handle p s f

let setpgid (p : Types.process) pgid = Signal.set_pgid p pgid

let getpgid (p : Types.process) = Signal.get_pgid p

let wait_all = Process.wait_all

let compute = Process.compute
