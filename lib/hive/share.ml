(* Logical-level memory sharing primitives (Table 5.1 of the paper).

   export: the data home records that a client cell is accessing one of
   its data pages (pinning it and noting the dependency for recovery), and
   grants firewall write permission to the client's processors if the
   client requested a writable mapping.

   import: the client allocates an extended pfdat bound to the remote
   page and inserts it into its pfdat hash table, after which most of the
   kernel operates on the page as if it were local.

   release: the client frees the extended pfdat and tells the data home,
   which unpins the page (keeping it cached on its own free list for fast
   re-access). *)

type Types.payload += P_release of { lid : Types.logical_id }

let release_op = Rpc.Op.declare "share.release"

let page_event sys (c : Types.cell) name (pf : Types.pfdat) ~peer =
  Sim.Event.instant sys.Types.events ~cell:c.Types.cell_id
    ~args:
      [ ("pfn", Sim.Event.Int pf.Types.pfn); ("peer", Sim.Event.Int peer) ]
    ~cat:Sim.Event.Page name

(* Data-home side: record a client's access to a cached page. *)
let export (sys : Types.system) (home : Types.cell) (pf : Types.pfdat)
    ~client ~writable =
  Sim.Engine.delay sys.Types.params.Params.fault_export_ns;
  Types.bump home "share.exports";
  page_event sys home "page.export" pf ~peer:client;
  if not (List.mem client pf.Types.exported_to) then
    pf.Types.exported_to <- client :: pf.Types.exported_to;
  if writable then Wild_write.grant_for_export sys home pf ~client

(* Client side: bind a remote page into the local pfdat table.

   CC-NUMA special case (Section 5.5): when the client is the *memory
   home* of a frame it loaned out and the data home placed this page in
   it, the preexisting (loaned) pfdat is reused rather than allocating an
   extended one — the logical-level and physical-level state machines use
   separate fields within the pfdat. *)
let import (sys : Types.system) (client : Types.cell) ~pfn ~data_home ~lid
    ~writable =
  Sim.Engine.delay sys.Types.params.Params.fault_import_ns;
  Types.bump client "share.imports";
  match Pfdat.lookup client lid with
  | Some pf -> pf (* raced with another local importer *)
  | None ->
    Sim.Event.instant sys.Types.events ~cell:client.Types.cell_id
      ~args:[ ("pfn", Sim.Event.Int pfn); ("peer", Sim.Event.Int data_home) ]
      ~cat:Sim.Event.Page "page.import";
    let pf =
      match Hashtbl.find_opt client.Types.frames pfn with
      | Some existing when existing.Types.loaned_to <> None ->
        (* Reimporting one of our own loaned frames. *)
        Types.bump client "share.reimports";
        existing
      | Some _ | None ->
        let pf = Pfdat.alloc_extended client ~pfn in
        Hashtbl.replace client.Types.frames pfn pf;
        pf
    in
    pf.Types.imported_from <- Some data_home;
    ignore writable;
    Pfdat.insert client lid pf;
    pf

(* Client side: drop an imported page binding and notify the data home. *)
let release (sys : Types.system) (client : Types.cell) (pf : Types.pfdat) =
  match (pf.Types.imported_from, pf.Types.lid) with
  | Some home, Some lid ->
    if pf.Types.loaned_to <> None then begin
      (* A reimported loaned frame: drop only the logical-level state. *)
      Pfdat.remove client pf;
      pf.Types.imported_from <- None
    end
    else Pfdat.free_extended client pf;
    Types.bump client "share.releases";
    page_event sys client "page.release" pf ~peer:home;
    if List.mem home client.Types.live_set then
      ignore
        (Rpc.call sys ~from:client ~target:home ~op:release_op
           (P_release { lid }))
  | _ ->
    (* The binding may already have been dropped (e.g. by recovery's
       flush while this thread was mid-fault): releasing is idempotent. *)
    Types.bump client "share.release_races";
    if pf.Types.extended then Pfdat.free_extended client pf

(* Drop an import binding without an RPC (used during recovery, when the
   data home is gone or will clean up on its own side of the barrier). *)
let drop_import (client : Types.cell) (pf : Types.pfdat) =
  if pf.Types.loaned_to <> None then begin
    Pfdat.remove client pf;
    pf.Types.imported_from <- None
  end
  else Pfdat.free_extended client pf

(* Data-home side: a client released its binding. Write permission was
   granted "as long as any process on that cell has the page mapped"
   (Section 4.2), so the release also revokes any firewall grant. *)
let unexport (sys : Types.system) (home : Types.cell) ~client ~lid =
  match Pfdat.lookup home lid with
  | Some pf ->
    pf.Types.exported_to <-
      List.filter (fun c -> c <> client) pf.Types.exported_to;
    Wild_write.revoke_client sys home pf ~client
  | None -> ()

let registered = ref false

let register_handlers () =
  if not !registered then begin
    registered := true;
    Rpc.register release_op (fun sys cell ~src arg ->
        match arg with
        | P_release { lid } ->
          unexport sys cell ~client:src ~lid;
          Types.Immediate (Ok Types.P_unit)
        | _ -> Types.Immediate (Error Types.EFAULT))
  end
