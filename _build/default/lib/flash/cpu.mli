(** Processor occupancy model.

    One CPU per node. Simulation threads occupy the CPU for compute bursts
    (FIFO-fair); interrupt-level work ({!steal}) stretches whatever burst is
    in progress, modelling interrupt-level RPC service on a busy node. *)

exception Halted of int

type t

val create : int -> t

val id : t -> int

val is_halted : t -> bool

(** Fail-stop this processor: current and future occupants get {!Halted}. *)
val halt : t -> unit

val restore : t -> unit

val check : t -> unit

(** Run interrupt-level work for [ns] (no queueing; stretches the current
    burst). *)
val steal : Sim.Engine.t -> t -> int64 -> unit

(** Occupy the CPU for [ns] of computation. *)
val use : Sim.Engine.t -> t -> int64 -> unit

(** Total busy time accumulated (bursts + interrupts). *)
val busy_ns : t -> int64
