lib/hive/params.ml:
