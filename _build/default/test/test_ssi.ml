(* Single-system-image extensions: signals and distributed process
   groups, spanning tasks, process migration, and the swapper. *)

let with_sys ?(ncells = 4) f =
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = ncells; mem_pages_per_node = 512 }
  in
  let sys = Hive.System.boot ~mcfg ~ncells ~wax:false eng in
  f eng sys

let run_to_completion ?(code = Some 0) sys p =
  let ok =
    Hive.System.run_until_processes_done sys ~deadline:300_000_000_000L [ p ]
  in
  Alcotest.(check bool) "finished" true ok;
  Alcotest.(check (option int)) "exit code" code p.Hive.Types.exit_code

let in_proc sys ~on ~name body =
  Hive.Process.spawn sys sys.Hive.Types.cells.(on) ~name body

(* ---------- signals ---------- *)

let test_local_kill_default_terminates () =
  with_sys (fun _eng sys ->
      let victim =
        in_proc sys ~on:0 ~name:"victim" (fun sys p ->
            Hive.Syscall.compute sys p 10_000_000_000L)
      in
      let killer =
        in_proc sys ~on:0 ~name:"killer" (fun sys p ->
            Sim.Engine.delay 10_000_000L;
            Hive.Syscall.kill sys p ~pid:victim.Hive.Types.pid
              Hive.Signal.SIGKILL)
      in
      run_to_completion sys killer;
      ignore
        (Hive.System.run_until_processes_done sys ~deadline:1_000_000_000L
           [ victim ]);
      Alcotest.(check (option int)) "terminated by signal" (Some 128)
        victim.Hive.Types.exit_code)

let test_cross_cell_kill () =
  with_sys (fun _eng sys ->
      let victim =
        in_proc sys ~on:3 ~name:"victim" (fun sys p ->
            Hive.Syscall.compute sys p 10_000_000_000L)
      in
      let killer =
        in_proc sys ~on:0 ~name:"killer" (fun sys p ->
            Hive.Syscall.compute sys p 10_000_000L;
            Hive.Syscall.kill sys p ~pid:victim.Hive.Types.pid
              Hive.Signal.SIGTERM)
      in
      run_to_completion sys killer;
      ignore
        (Hive.System.run_until_processes_done sys ~deadline:1_000_000_000L
           [ victim ]);
      Alcotest.(check (option int)) "terminated across cells" (Some 128)
        victim.Hive.Types.exit_code)

let test_signal_handler_runs () =
  with_sys (fun _eng sys ->
      let handled = ref false in
      let victim =
        in_proc sys ~on:1 ~name:"victim" (fun sys p ->
            Hive.Syscall.signal_handle p Hive.Signal.SIGUSR1 (fun _ ->
                handled := true);
            Hive.Syscall.compute sys p 100_000_000L)
      in
      let sender =
        in_proc sys ~on:0 ~name:"sender" (fun sys p ->
            Sim.Engine.delay 10_000_000L;
            Hive.Syscall.kill sys p ~pid:victim.Hive.Types.pid
              Hive.Signal.SIGUSR1)
      in
      run_to_completion sys sender;
      run_to_completion sys victim;
      Alcotest.(check bool) "handler ran, process survived" true !handled)

let test_sigkill_uncatchable () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun _sys p ->
            match Hive.Syscall.signal_handle p Hive.Signal.SIGKILL (fun _ -> ()) with
            | () -> failwith "SIGKILL handler must be rejected"
            | exception Invalid_argument _ -> ())
      in
      run_to_completion sys p)

let test_distributed_process_group () =
  with_sys (fun _eng sys ->
      (* Members of group 42 on three different cells; killpg kills all of
         them and nothing else. *)
      let mk cell =
        in_proc sys ~on:cell ~name:(Printf.sprintf "member%d" cell)
          (fun sys p ->
            Hive.Syscall.setpgid p 4242;
            Hive.Syscall.compute sys p 10_000_000_000L)
      in
      let members = [ mk 0; mk 1; mk 2 ] in
      let bystander =
        in_proc sys ~on:1 ~name:"bystander" (fun sys p ->
            Hive.Syscall.compute sys p 300_000_000L)
      in
      let killer =
        in_proc sys ~on:3 ~name:"killer" (fun sys p ->
            Sim.Engine.delay 50_000_000L;
            Hive.Syscall.killpg sys p ~pgid:4242 Hive.Signal.SIGTERM)
      in
      run_to_completion sys killer;
      ignore
        (Hive.System.run_until_processes_done sys ~deadline:2_000_000_000L
           members);
      List.iter
        (fun (m : Hive.Types.process) ->
          Alcotest.(check (option int)) "group member terminated" (Some 128)
            m.Hive.Types.exit_code)
        members;
      run_to_completion sys bystander)

(* ---------- spanning tasks ---------- *)

let test_spanning_task_shares_memory () =
  with_sys (fun _eng sys ->
      let sums = Array.make 4 0L in
      let p =
        in_proc sys ~on:0 ~name:"spawner" (fun sys p ->
            let task = Hive.Spanning.create sys p ~shared_pages:8 in
            let barrier = Sim.Barrier.create 4 in
            for t = 0 to 3 do
              ignore
                (Hive.Spanning.add_thread sys task ~on_cell:t ~name:"w"
                   (fun sys w ->
                     (* Each thread writes its slot in the shared page... *)
                     Hive.Spanning.write_shared sys w ~page:0 ~offset:(t * 8)
                       (Int64.of_int (100 + t));
                     Sim.Barrier.await sys.Hive.Types.eng barrier;
                     (* ...then sums everyone's slots: true write sharing
                        across all four cells. *)
                     let s = ref 0L in
                     for u = 0 to 3 do
                       s :=
                         Int64.add !s
                           (Hive.Spanning.read_shared sys w ~page:0
                              ~offset:(u * 8))
                     done;
                     sums.(t) <- !s))
            done;
            let codes = Hive.Spanning.join sys task in
            assert (List.for_all (fun c -> c = 0) codes);
            Hive.Spanning.destroy sys task)
      in
      run_to_completion sys p;
      Array.iteri
        (fun t s ->
          Alcotest.(check int64)
            (Printf.sprintf "thread %d saw all writes" t)
            406L s)
        sums)

let test_spanning_task_dies_with_cell () =
  with_sys (fun eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"spawner" (fun sys p ->
            let task = Hive.Spanning.create sys p ~shared_pages:4 in
            for t = 0 to 3 do
              ignore
                (Hive.Spanning.add_thread sys task ~on_cell:t ~name:"w"
                   (fun sys w ->
                     (* Touch the shared segment to establish dependency. *)
                     Hive.Spanning.write_shared sys w ~page:0 ~offset:0 1L;
                     Hive.Syscall.compute sys w 10_000_000_000L))
            done;
            ignore (Hive.Spanning.join sys task))
      in
      ignore
        (Sim.Engine.spawn eng (fun () ->
             Sim.Engine.delay 200_000_000L;
             Hive.System.inject_node_failure sys 2));
      ignore
        (Hive.System.run_until_processes_done sys ~deadline:30_000_000_000L
           [ p ]);
      (* All threads die: the one on the dead cell with it, the others
         because their shared segment depends on a dead resource or the
         task home; the spawner's join returns. *)
      Alcotest.(check bool) "spawner finished" true
        (p.Hive.Types.pstate = Hive.Types.Proc_zombie))

(* ---------- migration ---------- *)

let test_migration_moves_process () =
  with_sys (fun _eng sys ->
      let seen = ref [] in
      let p =
        in_proc sys ~on:0 ~name:"nomad" (fun sys p ->
            let r = Hive.Syscall.mmap_anon sys p ~npages:2 in
            let vp = r.Hive.Types.start_page in
            Hive.Syscall.write_word sys p ~vpage:vp ~offset:0 11L;
            seen := Hive.Syscall.getcell p :: !seen;
            Hive.Syscall.migrate sys p ~to_cell:2;
            seen := Hive.Syscall.getcell p :: !seen;
            (* Memory written before migration is still visible: the anon
               page is reached through the COW tree across cells. *)
            let v = Hive.Syscall.read_word sys p ~vpage:vp ~offset:0 in
            assert (v = 11L);
            (* And new writes work on the new cell. *)
            Hive.Syscall.write_word sys p ~vpage:vp ~offset:8 22L)
      in
      run_to_completion sys p;
      Alcotest.(check (list int)) "cells visited" [ 2; 0 ] !seen;
      Alcotest.(check bool) "process now owned by cell 2" true
        (List.memq p sys.Hive.Types.cells.(2).Hive.Types.processes);
      Alcotest.(check bool) "no longer owned by cell 0" false
        (List.memq p sys.Hive.Types.cells.(0).Hive.Types.processes))

let test_migration_to_dead_cell_fails () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            sys.Hive.Types.cells.(0).Hive.Types.live_set <- [ 0; 2; 3 ];
            match Hive.Process.migrate sys p ~to_cell:1 with
            | Error Hive.Types.EHOSTDOWN -> ()
            | _ -> failwith "expected EHOSTDOWN")
      in
      run_to_completion sys p)

(* ---------- swap ---------- *)

let test_swap_out_and_in () =
  with_sys ~ncells:2 (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            let r = Hive.Syscall.mmap_anon sys p ~npages:4 in
            let vp = r.Hive.Types.start_page in
            for k = 0 to 3 do
              Hive.Syscall.write_word sys p ~vpage:(vp + k) ~offset:0
                (Int64.of_int (1000 + k))
            done;
            let c0 = sys.Hive.Types.cells.(0) in
            (* Swap the process's idle anon pages out. *)
            let out = Hive.Swap.swap_out_process sys p in
            assert (out = 4);
            assert (Hive.Swap.swapped_pages c0 = 4);
            (* Faulting them back must restore the exact contents. *)
            for k = 0 to 3 do
              let v = Hive.Syscall.read_word sys p ~vpage:(vp + k) ~offset:0 in
              assert (v = Int64.of_int (1000 + k))
            done;
            assert (Hive.Swap.swapped_pages c0 = 0))
      in
      run_to_completion sys p)

let test_swap_idle_respects_pins () =
  with_sys ~ncells:2 (fun _eng sys ->
      (* A mapped (refs > 0) page must not be swapped by the idle scan. *)
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            let r = Hive.Syscall.mmap_anon sys p ~npages:2 in
            let vp = r.Hive.Types.start_page in
            Hive.Syscall.write_word sys p ~vpage:vp ~offset:0 5L;
            let c0 = sys.Hive.Types.cells.(0) in
            let n = Hive.Swap.swap_out_idle sys c0 ~want:100 in
            assert (n = 0);
            assert (Hive.Syscall.read_word sys p ~vpage:vp ~offset:0 = 5L))
      in
      run_to_completion sys p)

let suite =
  [
    Alcotest.test_case "kill: default action terminates" `Quick
      test_local_kill_default_terminates;
    Alcotest.test_case "kill across cells" `Quick test_cross_cell_kill;
    Alcotest.test_case "signal handler runs, process survives" `Quick
      test_signal_handler_runs;
    Alcotest.test_case "SIGKILL cannot be caught" `Quick
      test_sigkill_uncatchable;
    Alcotest.test_case "distributed process group kill" `Quick
      test_distributed_process_group;
    Alcotest.test_case "spanning task write-shares memory across 4 cells"
      `Quick test_spanning_task_shares_memory;
    Alcotest.test_case "spanning task dies with a cell" `Quick
      test_spanning_task_dies_with_cell;
    Alcotest.test_case "migration moves a process between cells" `Quick
      test_migration_moves_process;
    Alcotest.test_case "migration to a dead cell fails" `Quick
      test_migration_to_dead_cell_fails;
    Alcotest.test_case "swap out and fault back in" `Quick test_swap_out_and_in;
    Alcotest.test_case "idle swap respects pinned pages" `Quick
      test_swap_idle_respects_pins;
  ]
