(** The paper-reproduction benchmark sections (Tables 3.4–8.1 plus the
    repo's own ablations, resilience, fuzz-throughput and simulator
    micro-benchmarks), formerly the monolithic [bench/main.ml]. Each
    section prints paper-vs-measured rows; [quick] samples the long
    fault-injection campaigns instead of running all 69 tests. *)

val all : (string * (quick:bool -> unit)) list

val names : string list

val find : string -> (quick:bool -> unit) option
