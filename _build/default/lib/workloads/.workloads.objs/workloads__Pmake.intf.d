lib/workloads/pmake.mli: Hive Workload
