test/test_recovery.ml: Alcotest Array Bytes Flash Hive Int64 List Printf Sim
