type 'a entry = { time : int64; seq : int; payload : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length h = h.size

let capacity h = Array.length h.data

let is_empty h = h.size = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  if h.size >= cap then begin
    let ncap = max 16 (2 * cap) in
    let nd = Array.make ncap h.data.(0) in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

(* Drop the backing array down to a small multiple of the live size so a
   long-lived engine does not pin the peak of its largest campaign. Only
   worth doing when the array is mostly slack; keeps at least 16 slots. *)
let shrink h =
  let cap = Array.length h.data in
  if cap > 64 && h.size * 4 < cap then begin
    let ncap = max 16 (2 * h.size) in
    let nd = Array.make ncap h.data.(0) in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

(* 4-ary layout: children of [i] are [4i+1 .. 4i+4]. Half the depth of a
   binary heap, and the four children share cache lines, which matters on
   the pop path (the hottest loop in the engine). Pop order is a pure
   function of the [(time, seq)] total order, so arity is invisible to
   clients. *)
let rec sift_up h i =
  if i > 0 then begin
    let p = (i - 1) / 4 in
    if before h.data.(i) h.data.(p) then begin
      swap h i p;
      sift_up h p
    end
  end

let rec sift_down h i =
  let first = (4 * i) + 1 in
  if first < h.size then begin
    let last = min (first + 3) (h.size - 1) in
    let m = ref i in
    for c = first to last do
      if before h.data.(c) h.data.(!m) then m := c
    done;
    if !m <> i then begin
      swap h i !m;
      sift_down h !m
    end
  end

let push h ~time ~seq payload =
  let e = { time; seq; payload } in
  if h.size = 0 && Array.length h.data = 0 then h.data <- Array.make 16 e;
  grow h;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    shrink h;
    Some top
  end

(* Keep only the entries whose payload satisfies [keep] (called exactly
   once per entry, so it may carry side effects such as marking the
   dropped entries dead), then rebuild the heap invariant bottom-up:
   O(n), versus O(n log n) for popping the survivors one by one. Pop
   order is unaffected — the heap pops strictly by [(time, seq)]
   and seq values are unique. *)
let filter h keep =
  let k = ref 0 in
  for i = 0 to h.size - 1 do
    let e = h.data.(i) in
    if keep e.payload then begin
      h.data.(!k) <- e;
      incr k
    end
  done;
  h.size <- !k;
  (* Heapify bottom-up from the last internal node. *)
  for i = (h.size - 2) / 4 downto 0 do
    sift_down h i
  done;
  shrink h
