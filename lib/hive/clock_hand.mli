(** The VM clock-hand process (Sections 3.2 and 5.7).

   Each cell runs a page-reclaim daemon. The paper: "There are no
   operations in the memory sharing subsystem for a cell to request that
   another return its page or page frame... This information will
   eventually be provided by Wax, which will direct the virtual memory
   clock hand process running on each cell to preferentially free pages
   whose memory home is under memory pressure."

   Implemented exactly so: every sweep the daemon returns idle borrowed
   frames whose memory home appears in the Wax hint list
   ([clock_hand_targets]), and under local pressure it additionally
   reclaims idle cached file pages. *)

val sweep_period_ns : int64
val sweep : Types.system -> Types.cell -> int
val start : Types.system -> Types.cell -> unit
