(* Remote-page import cache, batched releases, invalidation callbacks,
   and the sharing-path leak regressions that motivated them. *)

let with_sys ?(ncells = 2) ?(params = Hive.Params.default) f =
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = ncells; mem_pages_per_node = 768 }
  in
  let sys = Hive.System.boot ~mcfg ~params ~ncells ~wax:false eng in
  f eng sys

let in_thread sys body =
  let eng = sys.Hive.Types.eng in
  let thr = Sim.Engine.spawn eng ~name:"t" body in
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 60_000_000_000L) eng;
  Alcotest.(check bool) "thread done" true thr.Sim.Engine.dead

let in_proc sys ~on ~name body =
  Hive.Process.spawn sys sys.Hive.Types.cells.(on) ~name body

let run_to_completion sys p =
  let ok =
    Hive.System.run_until_processes_done sys ~deadline:120_000_000_000L [ p ]
  in
  Alcotest.(check bool) "process finished" true ok;
  Alcotest.(check (option int)) "clean exit" (Some 0) p.Hive.Types.exit_code

let counter (c : Hive.Types.cell) name = Sim.Stats.value c.Hive.Types.counters name

let file_lid ~ino page =
  { Hive.Types.tag = Hive.Types.File_obj { Hive.Types.home = 0; ino }; page }

(* Export a page of a cell-0 object to [client] and import it there,
   mirroring the fs/vm import paths. *)
let share_page sys ~lid ~client ~writable =
  let c0 = sys.Hive.Types.cells.(0) in
  let cc = sys.Hive.Types.cells.(client) in
  let pf = Hive.Page_alloc.alloc_frame sys c0 in
  Hive.Pfdat.insert c0 lid pf;
  Hive.Share.export sys c0 pf ~client ~writable;
  let imp =
    Hive.Share.import sys cc ~pfn:pf.Hive.Types.pfn ~data_home:0 ~lid ~gen:0
      ~writable
  in
  (pf, imp)

(* A writable import through the anon/spanning path (which calls
   Share.import directly, not the fs paths) must carry the client-side
   grant bookkeeping itself: before the fix only the fs.ml call sites set
   write_granted_to, so an anon writable import left the firewall state
   and the pfdat inconsistent. *)
let test_writable_anon_import_grants () =
  with_sys (fun _eng sys ->
      in_thread sys (fun () ->
          let c0 = sys.Hive.Types.cells.(0) in
          let lid =
            { Hive.Types.tag =
                Hive.Types.Anon_obj { cow_home = 0; node_id = 42 };
              page = 0 }
          in
          let _pf, imp = share_page sys ~lid ~client:1 ~writable:true in
          Alcotest.(check bool) "client grant recorded on the import" true
            (List.mem 1 imp.Hive.Types.write_granted_to);
          Alcotest.(check bool) "writable import marked dirty" true
            imp.Hive.Types.dirty;
          Alcotest.(check int) "firewall counts the writable export" 1
            (Hive.Wild_write.remotely_writable_pages sys c0);
          (* A writable import is never parked: release really releases. *)
          Hive.Share.release sys sys.Hive.Types.cells.(1) imp;
          Alcotest.(check bool) "released, not parked" true
            (imp.Hive.Types.imported_from = None && not imp.Hive.Types.cached);
          Alcotest.(check int) "firewall grant revoked" 0
            (Hive.Wild_write.remotely_writable_pages sys c0)))

(* Releasing a read-only file import parks it; a later writable export of
   the same page to a third cell must invalidate the parked binding
   through the share.invalidate callback and retire the export record. *)
let test_writable_export_invalidates_parked () =
  with_sys ~ncells:3 (fun _eng sys ->
      in_thread sys (fun () ->
          let c0 = sys.Hive.Types.cells.(0) in
          let c1 = sys.Hive.Types.cells.(1) in
          let lid = file_lid ~ino:900 0 in
          let pf, imp = share_page sys ~lid ~client:1 ~writable:false in
          Hive.Share.release sys c1 imp;
          Alcotest.(check bool) "binding parked" true
            (imp.Hive.Types.cached
            && List.memq imp c1.Hive.Types.import_cache);
          Alcotest.(check int) "insertion counted" 1
            (counter c1 "share.cache_insertions");
          (* Cell 2 wants the page writable: cell 1's parked copy must go. *)
          Hive.Share.export sys c0 pf ~client:2 ~writable:true;
          Alcotest.(check bool) "parked binding invalidated" true
            (Hive.Pfdat.lookup c1 lid = None);
          Alcotest.(check (list int)) "cache emptied" []
            (List.map (fun (p : Hive.Types.pfdat) -> p.Hive.Types.pfn)
               c1.Hive.Types.import_cache);
          Alcotest.(check int) "invalidation counted" 1
            (counter c1 "share.cache_invalidations");
          Alcotest.(check bool) "export record retired at the home" true
            (not (List.mem 1 pf.Hive.Types.exported_to));
          Alcotest.(check bool) "writable client still exported" true
            (List.mem 2 pf.Hive.Types.exported_to)))

(* The cache is bounded: parking beyond capacity evicts (and really
   releases) the least-recently-parked binding. *)
let test_cache_eviction_at_capacity () =
  let params = { Hive.Params.default with Hive.Params.import_cache_pages = 2 } in
  with_sys ~params (fun _eng sys ->
      in_thread sys (fun () ->
          let c1 = sys.Hive.Types.cells.(1) in
          let imports =
            List.map
              (fun page ->
                let lid = file_lid ~ino:901 page in
                let _pf, imp = share_page sys ~lid ~client:1 ~writable:false in
                imp)
              [ 0; 1; 2 ]
          in
          List.iter (fun imp -> Hive.Share.release sys c1 imp) imports;
          Alcotest.(check int) "cache bounded at capacity" 2
            (List.length c1.Hive.Types.import_cache);
          Alcotest.(check int) "eviction counted" 1
            (counter c1 "share.cache_evictions");
          let oldest = List.nth imports 0 in
          Alcotest.(check bool) "evicted binding fully released" true
            (oldest.Hive.Types.imported_from = None
            && not oldest.Hive.Types.cached)))

(* Recovery flush: no parked binding survives flush_remote_bindings (the
   pre-barrier-1 step) — the data home may be dead or about to discard. *)
let test_recovery_flush_drops_parked () =
  with_sys (fun _eng sys ->
      in_thread sys (fun () ->
          let c1 = sys.Hive.Types.cells.(1) in
          let lid = file_lid ~ino:902 0 in
          let _pf, imp = share_page sys ~lid ~client:1 ~writable:false in
          Hive.Share.release sys c1 imp;
          Alcotest.(check bool) "binding parked" true imp.Hive.Types.cached;
          Hive.Vm.flush_remote_bindings sys c1;
          Alcotest.(check int) "import cache flushed" 0
            (List.length c1.Hive.Types.import_cache);
          Alcotest.(check bool) "binding gone" true
            (Hive.Pfdat.lookup c1 lid = None)))

let drop_everything sys =
  let now = Sim.Engine.now sys.Hive.Types.eng in
  Flash.Sips.degrade
    (Flash.Machine.sips sys.Hive.Types.machine)
    ~rng:(Sim.Prng.of_int64 0x5eedL)
    {
      Flash.Sips.deg_from = -1;
      deg_to = -1;
      from_ns = now;
      until_ns = Int64.add now 55_000_000_000L;
      drop_pct = 100;
      dup_pct = 0;
      delay_pct = 0;
      max_delay_ns = 0L;
    }

(* A release whose RPC is lost must not vanish silently: the client
   counts it and raises a failure hint naming the data home (the export
   record over there may now be leaked until recovery). *)
let test_lost_release_counted_and_hinted () =
  with_sys (fun _eng sys ->
      let hints = ref [] in
      sys.Hive.Types.on_hint <-
        Some (fun _c ~suspect ~reason -> hints := (suspect, reason) :: !hints);
      in_thread sys (fun () ->
          let c1 = sys.Hive.Types.cells.(1) in
          (* Writable, so release takes the RPC path rather than parking. *)
          let lid = file_lid ~ino:903 0 in
          let _pf, imp = share_page sys ~lid ~client:1 ~writable:true in
          drop_everything sys;
          Hive.Share.release sys c1 imp;
          Alcotest.(check int) "lost release counted" 1
            (counter c1 "share.release_lost");
          Alcotest.(check bool) "failure hint raised against the home" true
            (List.exists (fun (suspect, _) -> suspect = 0) !hints)))

(* close() must not swallow a failed bulk release invisibly: the error is
   counted, and the counter rides into the metrics JSON. *)
let test_close_counts_lost_batch_release () =
  with_sys (fun _eng sys ->
      sys.Hive.Types.on_hint <- Some (fun _c ~suspect:_ ~reason:_ -> ());
      let p =
        in_proc sys ~on:1 ~name:"t" (fun sys p ->
            let fd = Hive.Syscall.creat sys p "/tmp/lost-release.dat" in
            ignore (Hive.Syscall.write sys p ~fd (Bytes.make 4096 'x'));
            drop_everything sys;
            Hive.Syscall.close sys p ~fd)
      in
      run_to_completion sys p;
      let c1 = sys.Hive.Types.cells.(1) in
      Alcotest.(check bool) "swallowed release error counted" true
        (counter c1 "fs.release_errors" >= 1);
      Alcotest.(check bool) "lost release counted" true
        (counter c1 "share.release_lost" >= 1);
      let json = Hive.Metrics.to_json sys in
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "surfaced in metrics JSON" true
        (contains json "fs.release_errors"))

(* A vectored locate crossing EOF must stop at the last page: no binding,
   client or home side, past the end of the file. *)
let test_locate_batch_stops_at_eof () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:1 ~name:"t" (fun sys p ->
            let fd =
              Hive.Syscall.creat sys p ~content:(Bytes.make 10000 'e')
                "/tmp/eof.dat"
            in
            ignore (Hive.Syscall.pread sys p ~fd ~pos:0 ~len:10000);
            Hive.Syscall.close sys p ~fd)
      in
      run_to_completion sys p;
      let last_page = 10000 / Hive.Types.page_size sys in
      (match Hive.Fs.find_local sys.Hive.Types.cells.(0) "/tmp/eof.dat" with
      | Some f ->
        Hashtbl.iter
          (fun pg _ ->
            Alcotest.(check bool) "home caches no page past EOF" true
              (pg <= last_page))
          f.Hive.Types.cached_pages
      | None -> Alcotest.fail "file missing at home");
      Hive.Pfdat.iter_pages sys.Hive.Types.cells.(1) (fun pf ->
          match pf.Hive.Types.lid with
          | Some { Hive.Types.page; _ } ->
            Alcotest.(check bool) "client binds no page past EOF" true
              (page <= last_page)
          | None -> ()))

(* A generation bump landing while a vectored locate is paging in its
   batch must fail the whole batch with EIO — never export a mix of pre-
   and post-discard pages. *)
let test_gen_bump_mid_batch_fails_whole_batch () =
  with_sys (fun _eng sys ->
      let got_eio = ref false in
      let p =
        in_proc sys ~on:1 ~name:"t" (fun sys p ->
            let fd =
              Hive.Syscall.creat sys p ~content:(Bytes.make 32768 'g')
                "/tmp/genbump.dat"
            in
            (* The batch read below pages 8 uncached pages in from disk at
               the home; land a dirty-page discard (generation bump) in
               the middle of that. *)
            ignore
              (Sim.Engine.spawn sys.Hive.Types.eng ~name:"bump" (fun () ->
                   Sim.Engine.delay 5_000_000L;
                   let c0 = sys.Hive.Types.cells.(0) in
                   match Hive.Fs.find_local c0 "/tmp/genbump.dat" with
                   | Some f ->
                     Hive.Fs.note_discard sys c0 f ~page:0 ~dirty:true
                   | None -> ()));
            (try ignore (Hive.Syscall.pread sys p ~fd ~pos:0 ~len:32768)
             with Hive.Types.Syscall_error Hive.Types.EIO -> got_eio := true);
            Hive.Syscall.close sys p ~fd)
      in
      run_to_completion sys p;
      Alcotest.(check bool) "whole batch failed with EIO" true !got_eio;
      let stale = ref 0 in
      Hive.Pfdat.iter_pages sys.Hive.Types.cells.(1) (fun pf ->
          if pf.Hive.Types.imported_from <> None then incr stale);
      Alcotest.(check int) "no stale page imported" 0 !stale)

(* Sequential fault streams grow the adaptive read-ahead window: far
   fewer locate RPCs than pages, with the read-ahead pages counted. *)
let test_fault_readahead_batches_locates () =
  with_sys (fun _eng sys ->
      let npages = 16 in
      let p =
        in_proc sys ~on:1 ~name:"t" (fun sys p ->
            let fd =
              Hive.Syscall.creat sys p
                ~content:(Bytes.make (npages * Hive.Types.page_size sys) 'r')
                "/tmp/ra.dat"
            in
            let reg = Hive.Syscall.mmap_file sys p ~fd ~npages ~writable:false in
            for k = 0 to npages - 1 do
              Hive.Syscall.touch sys p
                ~vpage:(reg.Hive.Types.start_page + k)
                ~write:false
            done)
      in
      run_to_completion sys p;
      let c1 = sys.Hive.Types.cells.(1) in
      Alcotest.(check bool) "fewer locates than pages" true
        (counter c1 "fs.remote_locates" < npages / 2);
      Alcotest.(check bool) "read-ahead pages counted" true
        (counter c1 "fs.readahead_pages" > 0))

(* Everything above must leave the system consistent under the new
   import-cache invariant (and all the old ones). *)
let test_invariants_hold_after_cache_traffic () =
  with_sys ~ncells:3 (fun _eng sys ->
      in_thread sys (fun () ->
          let c1 = sys.Hive.Types.cells.(1) in
          let c2 = sys.Hive.Types.cells.(2) in
          List.iter
            (fun page ->
              let lid = file_lid ~ino:905 page in
              let pf, imp = share_page sys ~lid ~client:1 ~writable:false in
              Hive.Share.release sys c1 imp;
              if page mod 2 = 0 then begin
                Hive.Share.export sys sys.Hive.Types.cells.(0) pf ~client:2
                  ~writable:false;
                let imp2 =
                  Hive.Share.import sys c2 ~pfn:pf.Hive.Types.pfn ~data_home:0
                    ~lid ~gen:0 ~writable:false
                in
                Hive.Share.release sys c2 imp2
              end)
            [ 0; 1; 2; 3; 4; 5 ]);
      Alcotest.(check (list string)) "no invariant violations" []
        (List.map
           (fun v -> v.Hive.Invariants.inv ^ ": " ^ v.Hive.Invariants.detail)
           (Hive.Invariants.check sys)))

let suite =
  [
    Alcotest.test_case "writable anon import carries the firewall grant"
      `Quick test_writable_anon_import_grants;
    Alcotest.test_case "writable export invalidates parked bindings" `Quick
      test_writable_export_invalidates_parked;
    Alcotest.test_case "cache evicts at capacity" `Quick
      test_cache_eviction_at_capacity;
    Alcotest.test_case "recovery flush drops parked bindings" `Quick
      test_recovery_flush_drops_parked;
    Alcotest.test_case "lost release is counted and hinted" `Quick
      test_lost_release_counted_and_hinted;
    Alcotest.test_case "close counts a lost batch release" `Quick
      test_close_counts_lost_batch_release;
    Alcotest.test_case "vectored locate stops at EOF" `Quick
      test_locate_batch_stops_at_eof;
    Alcotest.test_case "generation bump mid-batch fails the whole batch"
      `Quick test_gen_bump_mid_batch_fails_whole_batch;
    Alcotest.test_case "sequential faults batch their locates" `Quick
      test_fault_readahead_batches_locates;
    Alcotest.test_case "invariants hold after cache traffic" `Quick
      test_invariants_hold_after_cache_traffic;
  ]
