(** Counting semaphore for simulation threads. *)

type t

val create : int -> t

val value : t -> int

val acquire : Engine.t -> t -> unit

val try_acquire : t -> bool

val release : Engine.t -> t -> unit

val with_acquired : Engine.t -> t -> (unit -> 'a) -> 'a
