test/test_vm_cow.ml: Alcotest Array Bytes Flash Gen Hashtbl Hive Int64 List QCheck QCheck_alcotest Sim
