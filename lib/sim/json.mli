(** A minimal JSON document model with a printer and parser, shared by the
    metrics snapshot ([Hive.Metrics.Snapshot]) and the benchmark trajectory
    files ([BENCH_<area>.json]). The simulator deliberately has no external
    dependencies, so this is the one JSON implementation in the tree.

    The printer is lossless for every value the parser can produce:
    [of_string (to_string v) = Ok v] whenever [v] contains no non-finite
    floats (JSON cannot represent nan/infinity; the printer emits [null]
    for them, so guard upstream). *)

type t =
  | Null
  | Bool of bool
  | Int of int64  (** numbers written without [.], [e] or [E] *)
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** field order is preserved *)

(** Render compactly (no insignificant whitespace) unless [pretty] is set,
    in which case arrays and objects are indented two spaces per level. *)
val to_string : ?pretty:bool -> t -> string

(** Parse a complete JSON document; trailing garbage is an error. Integral
    numbers that fit are [Int], everything else is [Float]. *)
val of_string : string -> (t, string) result

(** A float representation that survives a print/parse round trip and is
    always valid JSON (never ["1."], ["nan"] or ["inf"]). *)
val float_repr : float -> string

(** {2 Accessors} — each returns [None] on a shape mismatch. *)

(** Field of an object. *)
val member : string -> t -> t option

val to_int_opt : t -> int option

val to_int64_opt : t -> int64 option

(** Accepts both [Int] and [Float]. *)
val to_float_opt : t -> float option

val to_string_opt : t -> string option

val to_bool_opt : t -> bool option

val to_list_opt : t -> t list option

val to_obj_opt : t -> (string * t) list option
