lib/hive/cow.mli: Careful_ref Types
