(** Wild write defense, part 1: firewall management (Section 4.2).

   Policy: write access to a page is granted to all processors of a cell
   as a group, when any process on that cell faults the page into a
   writable portion of its address space; permission remains granted while
   any process on that cell has the page mapped. Kernel pages and
   local-only user pages are never remotely writable.

   Firewall bits can only be changed by the local processor of the page's
   node, so when the data home has borrowed the frame it must send an RPC
   to the memory home to change firewall state. *)

type Types.payload +=
    P_fw of { pfn : int; target_cell : Types.cell_id; grant : bool; }
val firewall_rpc_op : Rpc.Op.t
val apply_local :
  Types.system ->
  Types.cell ->
  pfn:Flash.Addr.pfn -> target_cell:int -> grant:bool -> unit
val registered : bool ref
val register_handlers : unit -> unit
val change :
  Types.system ->
  Types.cell ->
  pfn:Flash.Addr.pfn -> target_cell:Types.cell_id -> grant:bool -> unit
val grant_for_export :
  Types.system ->
  Types.cell -> Types.pfdat -> client:Types.cell_id -> unit
val revoke_client :
  Types.system ->
  Types.cell -> Types.pfdat -> client:Types.cell_id -> unit
val remotely_writable_pages : Types.system -> Types.cell -> int
