(** server: an interactive time-sharing traffic workload for quantifying
    "serve through failure" — open-loop Poisson arrivals on every cell,
    Zipf file popularity over files spread across data homes, fork/exit
    churn storms, and an optional cell kill mid-traffic.

    Clients spend an end-to-end deadline budget across redirect legs
    ([Hive.Rpc.call ?deadline_ns]); servers shed sheddable requests with
    EBUSY when saturated or mid-recovery. Request latencies land in
    [sys.op_ns] keyed ["class|phase"] (phases: before/during/after the
    failure), so [Hive.Metrics] exports per-phase p50/p95/p99/p99.9. *)

type fault = { kill_cell : int; at_ms : int }

type cfg = {
  duration_ms : int;
  rate_rps : float;  (** system-wide arrival rate (open loop) *)
  zipf_s : float;
  nfiles : int;
  file_pages : int;
  read_pages : int;
  service_ns : int64;
  churn_pct : int;  (** % of arrivals that are churn requests *)
  churn_forks : int;
  churn_compute_ns : int64;
  deadline_ms : int;  (** end-to-end client budget per request *)
  remote_pct : int;  (** % of reads sent to a non-home cell first *)
  fault : fault option;
  seed : int64;
}

val default : cfg

(** Outcome counts and containment numbers for one run. *)
type stats = {
  arrivals : int;
  skipped : int;
  reads_served : int;
  reads_redirected : int;
  fail_fast : int;
  deadline_exceeded : int;
  client_lost : int;
  shed_legs : int;
  churn_sent : int;
  churn_ok : int;
  fault_at_ns : int64 option;
  recovered_at_ns : int64 option;
  fail_fast_max_ns : int64;
  errors : int;
}

type Hive.Types.payload +=
    P_srv_read of { path : string; pages : int; service_ns : int64 }
  | P_srv_data of { bytes : int }
  | P_srv_churn of { path : string; forks : int; compute_ns : int64 }

val read_op : Hive.Rpc.Op.t
val churn_op : Hive.Rpc.Op.t

(** Register the server RPC handlers; idempotent. Parallel campaign
    drivers must call this before spawning worker domains (the handler
    table is a shared global). *)
val register_ops : unit -> unit

(** Run the traffic against a booted system, driving the engine until
    the configured duration elapses and every in-flight request has
    resolved. [result.completed] also requires zero unexpected
    traffic-thread errors. *)
val run :
  ?cfg:cfg -> Hive.Types.system -> Workload.result * stats

(** One-line human summary of {!stats} (plus fault/recovery times). *)
val print_stats : stats -> unit
