(* Rolling maintenance: the paper's reliability section notes that with a
   multicellular kernel, "scheduled hardware maintenance and kernel
   software upgrades can proceed transparently to applications, one cell
   at a time". This example takes each cell down in turn (while work runs
   on the others), repairs its node, and reintegrates it.

   Run with:  dune exec examples/rolling_upgrade.exe *)

let () =
  let eng = Sim.Engine.create () in
  (* Maintenance chooses its own reintegration times, so turn off the
     recovery master's automatic repair (otherwise the cell would already
     be back up when the manual [reintegrate] call runs). *)
  let params = { Hive.Params.default with Hive.Params.auto_reintegrate = false } in
  let sys = Hive.System.boot ~params ~ncells:4 eng in
  let served = ref 0 in

  (* A continuous stream of small jobs lands on whatever cells are up. *)
  let rec job_source i =
    ignore
      (Sim.Engine.spawn eng ~name:"source" (fun () ->
           Sim.Engine.delay 30_000_000L;
           let live = Hive.System.live_cells sys in
           (match live with
           | [] -> ()
           | _ ->
             let cell =
               sys.Hive.Types.cells.(List.nth live (i mod List.length live))
             in
             ignore
               (Hive.Process.spawn sys cell
                  ~name:(Printf.sprintf "req%d" i)
                  (fun sys p ->
                    Hive.Syscall.compute sys p 10_000_000L;
                    incr served)));
           if i < 200 then job_source (i + 1)))
  in
  job_source 0;

  (* Take cells 1..3 down one at a time, 2 s apart, repairing each. *)
  ignore
    (Sim.Engine.spawn eng ~name:"maintenance" (fun () ->
         for cell = 1 to 3 do
           Sim.Engine.delay 2_000_000_000L;
           Printf.printf "[%5.1f s] taking cell %d down for maintenance\n"
             (Int64.to_float (Sim.Engine.time ()) /. 1e9)
             cell;
           Hive.System.inject_node_failure sys cell;
           Sim.Engine.delay 1_000_000_000L;
           Printf.printf "[%5.1f s] node repaired; reintegrating cell %d\n"
             (Int64.to_float (Sim.Engine.time ()) /. 1e9)
             cell;
           Hive.System.reintegrate sys cell
         done));

  Sim.Engine.run ~until:10_000_000_000L eng;
  Printf.printf "served %d requests across the maintenance window\n" !served;
  Printf.printf "live cells at the end: [%s]\n"
    (String.concat "; "
       (List.map string_of_int (Hive.System.live_cells sys)))
