(** A set of processor numbers: the value of a firewall write-permission
    vector. A multi-word bit set, normalized so that equal sets are
    structurally equal ([=], [Hashtbl.hash] and [compare] all behave);
    machines of hundreds of processors are representable, unlike the
    single 64-bit word the 64-node prototype used. Values are
    immutable. *)

type t

val empty : t

val is_empty : t -> bool

val singleton : int -> t

val of_list : int list -> t

val mem : t -> int -> bool

val add : t -> int -> t

val remove : t -> int -> t

val union : t -> t -> t

val inter : t -> t -> t

(** [diff a b] is the processors in [a] but not [b]. *)
val diff : t -> t -> t

(** Do the two sets share any processor? (No intermediate allocation.) *)
val intersects : t -> t -> bool

val equal : t -> t -> bool

val subset : t -> t -> bool

val cardinal : t -> int

(** Ascending processor numbers. *)
val to_list : t -> int list

(** Compact hex rendering for traces and events. *)
val to_string : t -> string
