(* Intercell RPC on top of the SIPS hardware primitive (Section 6).

   The paper's SIPS is "as reliable as a cache miss", so the original
   transport had no retransmission or duplicate suppression. Our fault
   model is harsher: a degraded interconnect (a flaky coherence controller
   on a failing node) can drop, duplicate or delay messages, and a node
   failure can eat messages in flight. The transport therefore provides
   at-most-once semantics end to end:

   - the client retransmits a timed-out request up to [rpc_max_retries]
     times with exponential backoff plus deterministic jitter, and reports
     a failure hint only once every attempt is exhausted;
   - the server keeps a per-client-cell reply cache so a retransmitted
     request is answered from cache (or suppressed while the original is
     still executing) instead of re-executed — ops declared [idempotent]
     skip the cache;
   - call ids fold in the client cell's incarnation number, and every
     message carries its epoch, so requests and replies from before a
     failure/reboot are discarded rather than matched against a
     reincarnated cell's fresh calls.

   A cache line (128 bytes) carries most argument/result records, and
   larger data is passed by reference through shared memory (costed as a
   copy plus allocation, per Table 5.2).

   The base system services requests at interrupt level on the receiving
   node. A queuing service and server-process pool handles longer-latency
   requests (those that may block, e.g. for I/O): an initial interrupt-level
   RPC launches the operation and a completion reply returns the result. *)

type Flash.Sips.message +=
  | M_request of {
      call_id : int;
      src_cell : int;
      src_epoch : int; (* client incarnation when the call started *)
      attempt : int; (* 0 = original transmission *)
      op : string;
      arg : Types.payload;
      arg_bytes : int;
      deadline_ns : int64;
          (* absolute end-to-end deadline propagated from the client,
             0 = none. The server pool drops a queued request whose
             deadline already passed instead of executing work whose
             caller has provably given up — so a burst of abandoned
             requests drains at dequeue speed rather than occupying
             the pool for their full service time. *)
    }
  | M_reply of {
      call_id : int;
      dst_epoch : int; (* echo of the request's [src_epoch] *)
      outcome : Types.rpc_outcome;
    }

(* The bugs the at-most-once machinery fixes can be deliberately
   re-created per system — boot with [Params.rpc_dup_suppression] or
   [Params.rpc_epoch_check] off — so the fuzzer's checkers can
   demonstrate they would catch a regression. Keeping the knobs in the
   system's params (not global refs) means concurrent campaigns on other
   domains are unaffected. *)

(* Typed operation descriptors. Every RPC op is declared once, up front,
   with its wire-size defaults and timeout; [register] and [call] take the
   descriptor, so an undeclared or misspelled op cannot compile and every
   call site agrees on payload sizes. The descriptor name also keys the
   per-op latency histograms. *)
module Op = struct
  type t = {
    name : string;
    arg_bytes : int;
    reply_bytes : int;
    timeout_ns : int64 option; (* None = use Params.rpc_timeout_ns *)
    idempotent : bool; (* read-only: replays are harmless, skip the cache *)
    sheddable : bool;
        (* interactive traffic the server may refuse with EBUSY under
           load; kernel ops are never shed *)
  }

  let declared : (string, t) Hashtbl.t = Hashtbl.create 64

  let declare ?(arg_bytes = 64) ?(reply_bytes = 64) ?timeout_ns
      ?(idempotent = false) ?(sheddable = false) name =
    if Hashtbl.mem declared name then
      invalid_arg ("Rpc.Op.declare: duplicate " ^ name);
    let op =
      { name; arg_bytes; reply_bytes; timeout_ns; idempotent; sheddable }
    in
    Hashtbl.replace declared name op;
    op

  let name op = op.name

  let is_idempotent name =
    match Hashtbl.find_opt declared name with
    | Some op -> op.idempotent
    | None -> false

  let is_sheddable name =
    match Hashtbl.find_opt declared name with
    | Some op -> op.sheddable
    | None -> false

  let all () =
    Hashtbl.fold (fun _ op acc -> op :: acc) declared []
    |> List.sort (fun a b -> compare a.name b.name)
end

type handler =
  Types.system -> Types.cell -> src:Types.cell_id -> Types.payload ->
  Types.handler_action

let handlers : (string, handler) Hashtbl.t = Hashtbl.create 64

let register (op : Op.t) h =
  if Hashtbl.mem handlers op.Op.name then
    invalid_arg ("Rpc.register: duplicate " ^ op.Op.name);
  Hashtbl.replace handlers op.Op.name h

let registered (op : Op.t) = Hashtbl.mem handlers op.Op.name

(* Marshaling cost on one side of a call carrying [bytes] of payload:
   stub execution, plus, beyond one cache line, buffer allocation and a
   copy through shared memory. *)
let marshal_cost (sys : Types.system) bytes =
  let p = sys.Types.params in
  if bytes <= 0 then 0L
  else if bytes <= Flash.Sips.max_payload then p.Params.rpc_stub_marshal_ns
  else
    Int64.add
      (Int64.add p.Params.rpc_stub_marshal_ns p.Params.rpc_alloc_free_ns)
      (Flash.Config.copy_cost sys.Types.mcfg bytes)

let report_hint (sys : Types.system) (from : Types.cell) suspect reason =
  match sys.Types.on_hint with
  | Some f -> f from ~suspect ~reason
  | None -> ()

exception Rpc_failed of Types.cell_id * string

(* Epoch-tagged call ids: the cell id and its incarnation occupy the high
   digits, the per-incarnation sequence the low ones, so ids can never
   collide across a reboot — a late pre-failure reply cannot even
   numerically match a post-reboot call. *)
let make_call_id (c : Types.cell) =
  c.Types.next_call_id <- c.Types.next_call_id + 1;
  (((c.Types.cell_id * 1000) + (c.Types.incarnation mod 1000))
   * 1_000_000_000)
  + c.Types.next_call_id

(* Send the reply for a completed request back to the caller. *)
let send_reply (sys : Types.system) (server : Types.cell) ~src_cell
    ~src_epoch ~call_id outcome =
  let p = sys.Types.params in
  Sim.Engine.delay p.Params.rpc_server_reply_ns;
  let client_cell = sys.Types.cells.(src_cell) in
  try
    Flash.Sips.send
      (Flash.Machine.sips sys.Types.machine)
      ~from_proc:(Types.boss_proc server)
      ~to_node:(Types.boss_proc client_cell) ~kind:Flash.Sips.Reply ~size:64
      (M_reply { call_id; dst_epoch = src_epoch; outcome })
  with Flash.Sips.Target_failed _ -> ()

(* Find (or create) the at-most-once session for a client cell, refusing
   requests from an epoch older than the one on file: a reincarnated
   client can never retransmit its previous life's calls, so anything
   older is a stale message that must not execute. *)
let session_for (server : Types.cell) ~src_cell ~src_epoch =
  let s =
    match Hashtbl.find_opt server.Types.rpc_sessions src_cell with
    | Some s -> s
    | None ->
      let s =
        { Types.rs_epoch = src_epoch;
          rs_max_call = 0;
          rs_replies = Hashtbl.create 32 }
      in
      Hashtbl.replace server.Types.rpc_sessions src_cell s;
      s
  in
  if src_epoch < s.Types.rs_epoch then None
  else begin
    if src_epoch > s.Types.rs_epoch then begin
      (* The client rebooted: its old incarnation's replies can never be
         asked for again, so the cache restarts with the new epoch. *)
      Hashtbl.reset s.Types.rs_replies;
      s.Types.rs_epoch <- src_epoch;
      s.Types.rs_max_call <- 0
    end;
    Some s
  end

(* Bound the reply cache: a client retransmits within a handful of
   timeouts, so entries far below the highest call id seen can no longer
   be asked for. *)
let cache_window = 4096

let prune_session (s : Types.rpc_session) =
  if Hashtbl.length s.Types.rs_replies > 2 * cache_window then begin
    let cutoff = s.Types.rs_max_call - cache_window in
    let stale =
      Hashtbl.fold
        (fun k _ acc -> if k < cutoff then k :: acc else acc)
        s.Types.rs_replies []
    in
    List.iter (Hashtbl.remove s.Types.rs_replies) stale
  end

(* Interrupt-level service of one incoming request. *)
let service_request (sys : Types.system) (server : Types.cell) env =
  let p = sys.Types.params in
  match env.Flash.Sips.msg with
  | M_request
      { call_id; src_cell; src_epoch; attempt; op; arg; arg_bytes;
        deadline_ns } -> (
    Types.bump server "rpc.served";
    if attempt > 0 then Types.bump server "rpc.retransmits_seen";
    let cpu = Flash.Machine.cpu sys.Types.machine (Types.boss_proc server) in
    Flash.Cpu.steal sys.Types.eng cpu p.Params.rpc_server_dispatch_ns;
    if arg_bytes > Flash.Sips.max_payload then
      Sim.Engine.delay (marshal_cost sys arg_bytes);
    (* Handler execution time per op: for immediate service that is the
       handler itself; for queued service, the work function in the pool
       process (dispatch cost is negligible and not double-counted). *)
    let timed : 'a. (unit -> 'a) -> 'a =
     fun f ->
      let t0 = Sim.Engine.now sys.Types.eng in
      let result =
        (* Skip the span-name concat and args list when untraced. *)
        if Sim.Event.enabled sys.Types.events then
          Sim.Event.span sys.Types.events ~cell:server.Types.cell_id
            ~args:[ ("src", Sim.Event.Int src_cell) ]
            ~cat:Sim.Event.Rpc ("rpc.serve:" ^ op) f
        else f ()
      in
      Sim.Stats.hist_add
        (Types.hist_for sys.Types.rpc_server_ns op)
        (Int64.sub (Sim.Engine.now sys.Types.eng) t0);
      result
    in
    let session =
      if Op.is_idempotent op then None
      else session_for server ~src_cell ~src_epoch
    in
    let stale = (not (Op.is_idempotent op)) && session = None in
    if stale then Types.bump server "rpc.stale_request_drops"
    else begin
      let cached =
        match session with
        | Some s when sys.Types.params.Params.rpc_dup_suppression ->
          Hashtbl.find_opt s.Types.rs_replies call_id
        | _ -> None
      in
      match cached with
      | Some (Types.Reply_done outcome) ->
        (* Retransmit of a completed request: resend the cached reply. *)
        Types.bump server "rpc.dup_suppressed";
        send_reply sys server ~src_cell ~src_epoch ~call_id outcome
      | Some Types.Reply_in_progress ->
        (* The original is still executing; its reply will serve both. *)
        Types.bump server "rpc.dup_suppressed"
      | None -> (
        (match session with
        | Some s ->
          Hashtbl.replace s.Types.rs_replies call_id Types.Reply_in_progress;
          if call_id > s.Types.rs_max_call then s.Types.rs_max_call <- call_id;
          prune_session s
        | None -> ());
        (* Audit trail for the at-most-once invariant: count each actual
           execution of a non-idempotent op body, keyed by this server
           incarnation and the call id. *)
        let record_exec () =
          if not (Op.is_idempotent op) then begin
            let key = (server.Types.cell_id, server.Types.incarnation, call_id) in
            let n =
              match Hashtbl.find_opt sys.Types.rpc_executions key with
              | Some (_, n) -> n
              | None -> 0
            in
            Hashtbl.replace sys.Types.rpc_executions key (op, n + 1)
          end
        in
        let complete outcome =
          (match session with
          | Some s ->
            Hashtbl.replace s.Types.rs_replies call_id
              (Types.Reply_done outcome)
          | None -> ());
          send_reply sys server ~src_cell ~src_epoch ~call_id outcome
        in
        match Hashtbl.find_opt handlers op with
        | None -> complete (Error Types.EFAULT)
        | Some h -> (
          let t0 = Sim.Engine.now sys.Types.eng in
          match
            record_exec ();
            h sys server ~src:src_cell arg
          with
          | Types.Immediate outcome ->
            (* Interrupt-level service: record the handler time and mark it
               as an instant (it never blocks, unlike queued spans). *)
            let dt = Int64.sub (Sim.Engine.now sys.Types.eng) t0 in
            Sim.Stats.hist_add (Types.hist_for sys.Types.rpc_server_ns op) dt;
            if Sim.Event.enabled sys.Types.events then
              Sim.Event.instant sys.Types.events ~cell:server.Types.cell_id
                ~args:
                  [ ("src", Sim.Event.Int src_cell); ("dur_ns", Sim.Event.I64 dt)
                  ]
                ~cat:Sim.Event.Rpc ("rpc.serve:" ^ op);
            complete outcome
          | Types.Queued _
            when Op.is_sheddable op
                 && (Sim.Mailbox.length server.Types.rpc_queue
                     >= p.Params.rpc_queue_bound
                    || server.Types.cstatus <> Types.Cell_up) ->
            (* Admission control: a sheddable request meeting a saturated
               backlog — or a cell still mid-recovery — is refused right
               at interrupt level with a fast-fail EBUSY, so overload (or
               a rebooting cell) degrades into explicit shed counts the
               client can redirect on, instead of queue collapse. Going
               through [complete] keeps the reply cache coherent for
               retransmits of the shed call. *)
            Types.bump server "rpc.shed";
            complete (Error Types.EBUSY)
          | Types.Queued f ->
            (* Longer-latency request: hand off to the server process pool;
               the completion reply is sent from the server process. *)
            Types.bump server "rpc.queued";
            Flash.Cpu.steal sys.Types.eng cpu p.Params.rpc_queue_handoff_ns;
            Sim.Mailbox.send sys.Types.eng server.Types.rpc_queue (fun () ->
                Sim.Engine.delay p.Params.rpc_context_switch_ns;
                if
                  Int64.compare deadline_ns 0L > 0
                  && Int64.compare (Sim.Engine.now sys.Types.eng) deadline_ns
                     > 0
                then begin
                  (* Deadline propagation: the caller's end-to-end budget
                     already ran out while this request sat in the queue,
                     so it has provably given up (or soon will) on any
                     reply — drop the work instead of serving a ghost. *)
                  Types.bump server "rpc.expired";
                  complete (Error Types.ETIMEDOUT)
                end
                else
                  let outcome =
                    timed (fun () ->
                        try f () with Types.Syscall_error e -> Error e)
                  in
                  complete outcome)
          | exception Types.Syscall_error e -> complete (Error e)))
    end)
  | _ -> ()

(* Deliver one reply to the pending-call table. A reply stamped with an
   epoch other than the cell's current incarnation was addressed to a
   previous life and is dropped; a reply whose call is no longer pending
   arrived after the caller timed out (the op executed but the caller saw
   EHOSTDOWN) and is counted and dropped. *)
let service_reply (sys : Types.system) (client : Types.cell) env =
  match env.Flash.Sips.msg with
  | M_reply { call_id; dst_epoch; outcome } ->
    if
      dst_epoch <> client.Types.incarnation
      && sys.Types.params.Params.rpc_epoch_check
    then
      Types.bump client "rpc.stale_reply_drops"
    else begin
      if dst_epoch <> client.Types.incarnation then
        (* Only reachable with the epoch check disabled: record the
           acceptance so the invariant checker can flag it. *)
        sys.Types.rpc_stale_accepts <-
          Printf.sprintf
            "cell %d accepted reply for call %d from epoch %d while in \
             incarnation %d"
            client.Types.cell_id call_id dst_epoch client.Types.incarnation
          :: sys.Types.rpc_stale_accepts;
      match Hashtbl.find_opt client.Types.pending_calls call_id with
      | None -> Types.bump client "rpc.late_replies"
      | Some pc ->
        Hashtbl.remove client.Types.pending_calls call_id;
        Sim.Ivar.fill sys.Types.eng pc.Types.call_done outcome
    end
  | _ -> ()

(* Per-cell kernel threads: an interrupt dispatcher for requests, one for
   replies, and a pool of server processes for queued requests. *)
let start_threads (sys : Types.system) (cell : Types.cell) =
  let eng = sys.Types.eng in
  let sips = Flash.Machine.sips sys.Types.machine in
  let node = Types.boss_proc cell in
  let spawn name body =
    let thr = Sim.Engine.spawn eng ~name body in
    cell.Types.kernel_threads <- thr :: cell.Types.kernel_threads
  in
  spawn
    (Printf.sprintf "cell%d.rpc.reqs" cell.Types.cell_id)
    (fun () ->
      let rec loop () =
        match Flash.Sips.receive sips ~node ~kind:Flash.Sips.Request with
        | Some env ->
          service_request sys cell env;
          loop ()
        | None -> ()
      in
      loop ());
  spawn
    (Printf.sprintf "cell%d.rpc.replies" cell.Types.cell_id)
    (fun () ->
      let rec loop () =
        match Flash.Sips.receive sips ~node ~kind:Flash.Sips.Reply with
        | Some env ->
          service_reply sys cell env;
          loop ()
        | None -> ()
      in
      loop ());
  for i = 1 to sys.Types.params.Params.rpc_server_pool do
    spawn
      (Printf.sprintf "cell%d.rpc.pool%d" cell.Types.cell_id i)
      (fun () ->
        let rec loop () =
          match Sim.Mailbox.receive eng cell.Types.rpc_queue with
          | Some work ->
            work ();
            loop ()
          | None -> ()
        in
        loop ())
  done

(* Exponential backoff before retransmission [n]: base doubled per attempt
   up to the cap, plus up to 50% deterministic jitter so retransmissions
   from different callers spread out. *)
let backoff_ns (p : Params.t) rng n =
  let shifted = Int64.shift_left p.Params.rpc_backoff_base_ns n in
  let b =
    if
      Int64.compare shifted p.Params.rpc_backoff_cap_ns > 0
      || Int64.compare shifted 0L <= 0
    then p.Params.rpc_backoff_cap_ns
    else shifted
  in
  Int64.add b (Sim.Prng.int64 rng (Int64.max 1L (Int64.div b 2L)))

(* Client side of a call. Transmits, waits one timeout, and retransmits
   with backoff up to [rpc_max_retries] times; returns [Error EHOSTDOWN]
   after the last timeout or on delivery failure. A failure hint is
   reported only once every attempt is exhausted, so transient link
   degradation does not escalate straight into distributed agreement.
   Payload sizes and the timeout default from the op descriptor; per-call
   overrides remain for variable-size payloads. *)
let call (sys : Types.system) ~(from : Types.cell) ~target ~(op : Op.t)
    ?arg_bytes ?reply_bytes ?timeout_ns ?deadline_ns arg =
  let p = sys.Types.params in
  let arg_bytes =
    match arg_bytes with Some b -> b | None -> op.Op.arg_bytes
  in
  let reply_bytes =
    match reply_bytes with Some b -> b | None -> op.Op.reply_bytes
  in
  let timeout_ns =
    match (timeout_ns, op.Op.timeout_ns) with
    | Some t, _ -> t
    | None, Some t -> t
    | None, None -> p.Params.rpc_timeout_ns
  in
  let deadline_ns =
    match deadline_ns with Some d -> d | None -> p.Params.rpc_deadline_ns
  in
  let eng = sys.Types.eng in
  let op_name = op.Op.name in
  Types.bump from "rpc.calls";
  let t0 = Sim.Engine.now eng in
  (* End-to-end budget: the absolute instant past which no further
     waiting or retransmission may happen, spanning every attempt and
     backoff sleep (the per-attempt [timeout_ns] alone would multiply the
     caller's intent by the whole retry schedule). 0 = unlimited. *)
  let t_deadline =
    if Int64.compare deadline_ns 0L > 0 then Some (Int64.add t0 deadline_ns)
    else None
  in
  let budget_left () =
    match t_deadline with
    | None -> None
    | Some td -> Some (Int64.sub td (Sim.Engine.now eng))
  in
  let budget_exhausted () =
    match budget_left () with
    | Some r -> Int64.compare r 0L <= 0
    | None -> false
  in
  let cap_to_budget ns =
    match budget_left () with
    | Some r when Int64.compare r ns < 0 -> Int64.max r 0L
    | _ -> ns
  in
  (* Record the whole-call latency the client observed, on every exit
     path; the enclosing span closes even if the thread is killed. *)
  let finish outcome =
    Sim.Stats.hist_add
      (Types.hist_for sys.Types.rpc_client_ns op_name)
      (Int64.sub (Sim.Engine.now eng) t0);
    outcome
  in
  let traced body =
    (* Build the span name and args only when a sink will see them. *)
    if Sim.Event.enabled sys.Types.events then
      Sim.Event.span sys.Types.events ~cell:from.Types.cell_id
        ~args:[ ("target", Sim.Event.Int target) ]
        ~cat:Sim.Event.Rpc
        ("rpc.call:" ^ op_name)
        body
    else body ()
  in
  traced @@ fun () ->
  if not (List.mem target from.Types.live_set) then
    finish (Error Types.EHOSTDOWN)
  else begin
    Sim.Engine.delay p.Params.rpc_client_send_ns;
    Sim.Engine.delay (marshal_cost sys arg_bytes);
    let call_id = make_call_id from in
    (* The epoch travels with the call, stamped once when the id is
       minted: a retransmit after the calling cell reboots mid-call must
       still carry the old incarnation (so the server's session filter
       stale-drops it) — re-reading [from.incarnation] here would let a
       previous life's call id re-execute under the new epoch. *)
    let src_epoch = from.Types.incarnation in
    let pc =
      { Types.call_id; reply = None; call_done = Sim.Ivar.create () }
    in
    Hashtbl.replace from.Types.pending_calls call_id pc;
    let target_cell = sys.Types.cells.(target) in
    let give_up ?hint err =
      Hashtbl.remove from.Types.pending_calls call_id;
      (match hint with
      | Some reason -> report_hint sys from target reason
      | None -> ());
      finish (Error err)
    in
    let succeed outcome =
      Sim.Engine.delay p.Params.rpc_client_recv_ns;
      if reply_bytes > Flash.Sips.max_payload then
        Sim.Engine.delay (marshal_cost sys reply_bytes);
      finish outcome
    in
    let transmit attempt =
      try
        Flash.Sips.send
          (Flash.Machine.sips sys.Types.machine)
          ~from_proc:(Types.boss_proc from)
          ~to_node:(Types.boss_proc target_cell)
          ~kind:Flash.Sips.Request
          ~size:(min arg_bytes Flash.Sips.max_payload)
          (M_request
             { call_id;
               src_cell = from.Types.cell_id;
               src_epoch;
               attempt;
               op = op_name;
               arg;
               arg_bytes;
               deadline_ns =
                 (match t_deadline with Some td -> td | None -> 0L) });
        true
      with Flash.Sips.Target_failed _ -> false
    in
    let give_up_deadline () =
      Types.bump from "rpc.deadline_exceeded";
      give_up Types.ETIMEDOUT
    in
    let rec attempt n =
      (* The reply may have landed during the previous backoff sleep. *)
      match Sim.Ivar.peek pc.Types.call_done with
      | Some outcome -> succeed outcome
      | None ->
        if from.Types.incarnation <> src_epoch then
          (* Our own cell died and rebooted while the call was in
             flight: the id belongs to the previous life, every
             retransmit would be stale-dropped and any late reply
             discarded, so fail the orphaned call instead of burning
             retries. *)
          give_up Types.EHOSTDOWN
        else if not (List.mem target from.Types.live_set) then
          (* Recovery declared the target dead while we were waiting. *)
          give_up Types.EHOSTDOWN
        else if budget_exhausted () then give_up_deadline ()
        else if not (transmit n) then
          give_up ~hint:"rpc: target node down" Types.EHOSTDOWN
        else begin
          (* The client processor spins waiting for the reply; it only
             context switches after a timeout of 50 us, which almost never
             occurs. *)
          match
            Sim.Ivar.read
              ~timeout:(cap_to_budget timeout_ns)
              eng pc.Types.call_done
          with
          | Some outcome -> succeed outcome
          | None ->
            if budget_exhausted () then give_up_deadline ()
            else if n >= p.Params.rpc_max_retries then begin
              Types.bump from "rpc.timeouts";
              give_up ~hint:"rpc: timeout" Types.EHOSTDOWN
            end
            else begin
              Types.bump from "rpc.retransmits";
              Sim.Engine.delay
                (cap_to_budget (backoff_ns p from.Types.rpc_rng n));
              attempt (n + 1)
            end
        end
    in
    match attempt 0 with
    | outcome -> outcome
    | exception e ->
      (* The calling thread is being torn down (killed by recovery or a
         panic) while the call is in flight: drop its bookkeeping so the
         entry cannot linger as a phantom orphan in the pending-call
         table. *)
      Hashtbl.remove from.Types.pending_calls call_id;
      raise e
  end

(* Convenience wrapper raising Syscall_error on failure. *)
let call_exn sys ~from ~target ~op ?arg_bytes ?reply_bytes ?timeout_ns
    ?deadline_ns arg =
  match
    call sys ~from ~target ~op ?arg_bytes ?reply_bytes ?timeout_ns
      ?deadline_ns arg
  with
  | Ok v -> v
  | Error e -> raise (Types.Syscall_error e)
