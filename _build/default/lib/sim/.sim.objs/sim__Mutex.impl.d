lib/sim/mutex.ml: Engine Fun
