(* Kernel heap for published data structures.

   Structures that other cells read directly (clock words, COW tree nodes,
   ...) are serialized into a reserved region of the cell's own physical
   memory, so that careful references, bus errors and corruption behave
   exactly as on the hardware. Following Section 4.1 of the paper, the
   allocator writes a structure type identifier at the start of each
   object and the deallocator removes it: checking the tag is the first
   line of defense against invalid remote pointers. *)

let header_bytes = 8

exception Out_of_kernel_memory

let create ~base ~limit : Types.kmem =
  { kmem_base = base; kmem_limit = limit; kmem_next = base; kmem_free = [] }

let proc_of (c : Types.cell) = c.Types.boss_node

let mem (sys : Types.system) = Flash.Machine.memory sys.machine

(* Allocate [size] payload bytes tagged [tag]; returns the object address
   (which points at the tag word; fields start at [addr + header_bytes]). *)
let alloc (sys : Types.system) (c : Types.cell) ~tag ~size =
  let eng = sys.eng in
  let total = size + header_bytes in
  let total = (total + 7) land lnot 7 in
  let km = c.Types.kmem in
  let addr =
    match List.find_opt (fun (_, sz) -> sz >= total) km.kmem_free with
    | Some ((a, sz) as blk) ->
      km.kmem_free <- List.filter (fun b -> b != blk) km.kmem_free;
      if sz > total then km.kmem_free <- (a + total, sz - total) :: km.kmem_free;
      a
    | None ->
      if km.kmem_next + total > km.kmem_limit then raise Out_of_kernel_memory;
      let a = km.kmem_next in
      km.kmem_next <- km.kmem_next + total;
      a
  in
  Flash.Memory.write_i64 eng (mem sys) ~by:(proc_of c) addr tag;
  addr

let free (sys : Types.system) (c : Types.cell) ~addr ~size =
  let total = (size + header_bytes + 7) land lnot 7 in
  (* Remove the type identifier so stale remote pointers fail the check. *)
  Flash.Memory.write_i64 sys.eng (mem sys) ~by:(proc_of c) addr 0L;
  c.Types.kmem.kmem_free <- (addr, total) :: c.Types.kmem.kmem_free

(* The owner's own kernel structures are hot in its caches: charge L2
   hits, not memory misses. *)
let read_field (sys : Types.system) (c : Types.cell) ~addr ~index =
  Flash.Memory.read_cached_i64 sys.eng (mem sys) ~by:(proc_of c)
    (addr + header_bytes + (8 * index))

(* Read [count] consecutive fields as one block (per-line latency). *)
let read_fields (sys : Types.system) (c : Types.cell) ~addr ~index ~count =
  let b =
    Flash.Memory.read_cached sys.eng (mem sys) ~by:(proc_of c)
      (addr + header_bytes + (8 * index))
      (8 * count)
  in
  Array.init count (fun i -> Bytes.get_int64_le b (8 * i))

let write_field (sys : Types.system) (c : Types.cell) ~addr ~index v =
  Flash.Memory.write_i64 sys.eng (mem sys) ~by:(proc_of c)
    (addr + header_bytes + (8 * index))
    v

let read_tag (sys : Types.system) (c : Types.cell) ~addr =
  Flash.Memory.read_cached_i64 sys.eng (mem sys) ~by:(proc_of c) addr
