(* Paper-reproduction sections: regenerate every measured table and figure
   of the paper and print paper-vs-measured rows. Shared plumbing lives in
   Harness; per-op latency numbers come from the typed Metrics snapshot
   (the same structure hive_sim --metrics-json writes). *)

open Harness

(* ---------- Section 6: RPC latency ---------- *)

(* Per-op client-side latency percentiles, from the kernel's own
   instrumentation. *)
let rpc_percentile_rows sys =
  let snap = Hive.Metrics.capture sys in
  List.iter
    (fun (name, (h : Hive.Metrics.Snapshot.hist)) ->
      row "%-26s n=%-6d p50 %6.1f us   p95 %6.1f us   p99 %6.1f us" name
        h.Hive.Metrics.Snapshot.count
        (h.Hive.Metrics.Snapshot.p50_ns /. 1e3)
        (h.Hive.Metrics.Snapshot.p95_ns /. 1e3)
        (h.Hive.Metrics.Snapshot.p99_ns /. 1e3))
    snap.Hive.Metrics.Snapshot.rpc_client

let rpc_latency () =
  section_header "rpc-latency (Section 6)";
  let eng, sys = boot () in
  register_bench_ops ();
  let null_us = avg_rpc_us eng sys ~op:noop_op ~arg_bytes:0 ~n:1000 in
  let common_us = avg_rpc_us eng sys ~op:noop_op ~arg_bytes:64 ~n:1000 in
  let queued_us =
    avg_rpc_us eng sys ~op:noop_queued_op ~arg_bytes:0 ~n:1000
  in
  compare_row ~label:"null RPC end-to-end" ~paper:"7.2"
    ~measured:(Printf.sprintf "%.1f" null_us) ~unit_:"us";
  compare_row ~label:"RPC component of common request" ~paper:"9.6"
    ~measured:(Printf.sprintf "%.1f" common_us) ~unit_:"us";
  compare_row ~label:"null queued RPC" ~paper:"34"
    ~measured:(Printf.sprintf "%.1f" queued_us) ~unit_:"us";
  rpc_percentile_rows sys

(* ---------- Section 4.1: careful reference ---------- *)

let careful_ref () =
  section_header "careful-ref (Section 4.1)";
  let eng, sys = boot () in
  register_bench_ops ();
  let c0 = sys.Hive.Types.cells.(0) in
  let n = 1000 in
  let total =
    timed_in_thread eng (fun () ->
        for _ = 1 to n do
          match Hive.Clock.read_peer_clock sys c0 ~target:1 with
          | Ok _ -> ()
          | Error _ -> failwith "careful read failed"
        done)
  in
  let careful_us = Int64.to_float total /. float_of_int n /. 1e3 in
  let rpc_us = avg_rpc_us eng sys ~op:noop_op ~arg_bytes:0 ~n in
  compare_row ~label:"careful reference clock read" ~paper:"1.16"
    ~measured:(Printf.sprintf "%.2f" careful_us) ~unit_:"us";
  compare_row ~label:"same data via RPC" ~paper:">= 7.2"
    ~measured:(Printf.sprintf "%.1f" rpc_us) ~unit_:"us";
  row "speedup of shared-memory read: %.1fx (paper ~6x)" (rpc_us /. careful_us)

(* ---------- shared fault microbenchmark ---------- *)

let fault_latencies ~ncells () =
  let eng, sys = boot ~ncells () in
  let npages = 1024 in
  let path = make_warm_file sys ~npages in
  let run_on ~cell =
    let c = sys.Hive.Types.cells.(cell) in
    let acc = Sim.Stats.summary () in
    let p =
      Hive.Process.spawn sys c ~name:"faulter" (fun sys p ->
          let fd = Hive.Syscall.openf sys p path in
          let r = Hive.Syscall.mmap_file sys p ~fd ~npages ~writable:false in
          for k = 0 to npages - 1 do
            let t0 = Sim.Engine.time () in
            Hive.Syscall.touch sys p ~vpage:(r.Hive.Types.start_page + k)
              ~write:false;
            Sim.Stats.add_ns acc (Int64.sub (Sim.Engine.time ()) t0)
          done)
    in
    ignore
      (Hive.System.run_until_processes_done sys
         ~deadline:(Int64.add (Sim.Engine.now eng) 400_000_000_000L)
         [ p ]);
    Sim.Stats.mean acc /. 1e3
  in
  let local_us = run_on ~cell:0 in
  let remote_us = run_on ~cell:(ncells - 1) in
  (local_us, remote_us)

let pagefault_breakdown () =
  section_header "pagefault-breakdown (Table 5.2)";
  let local_us, remote_us = fault_latencies ~ncells:4 () in
  compare_row ~label:"local page fault (hit in page cache)" ~paper:"6.9"
    ~measured:(Printf.sprintf "%.1f" local_us) ~unit_:"us";
  compare_row ~label:"remote page fault (hit in data home cache)"
    ~paper:"50.7"
    ~measured:(Printf.sprintf "%.1f" remote_us)
    ~unit_:"us";
  let p = Hive.Params.default in
  row "calibrated client components (ns): fs=%Ld lock=%Ld vm=%Ld import=%Ld (paper: 28.0 us total)"
    p.Hive.Params.fault_client_fs_ns p.Hive.Params.fault_client_lock_ns
    p.Hive.Params.fault_client_vm_ns p.Hive.Params.fault_import_ns;
  row "calibrated data-home components (ns): vm=%Ld export=%Ld (paper: 5.4 us total; RPC adds ~17.3 us)"
    p.Hive.Params.fault_home_vm_ns p.Hive.Params.fault_export_ns

let pagefault_pmake () =
  section_header "pagefault-pmake (Section 5.2)";
  let run ncells =
    let _eng, sys = boot ~ncells () in
    Workloads.Pmake.setup sys Workloads.Pmake.default;
    let snapshot () =
      Array.fold_left
        (fun (f, r, lms, rms) (c : Hive.Types.cell) ->
          ( f + Sim.Stats.count c.Hive.Types.fault_in_cache_ns
            + Sim.Stats.count c.Hive.Types.remote_fault_ns,
            r + Sim.Stats.count c.Hive.Types.remote_fault_ns,
            lms +. (Sim.Stats.sum c.Hive.Types.fault_in_cache_ns /. 1e6),
            rms +. (Sim.Stats.sum c.Hive.Types.remote_fault_ns /. 1e6) ))
        (0, 0, 0., 0.) sys.Hive.Types.cells
    in
    let f0, r0, l0, m0 = snapshot () in
    ignore (Workloads.Pmake.run sys);
    let f1, r1, l1, m1 = snapshot () in
    (f1 - f0, r1 - r0, l1 -. l0 +. (m1 -. m0))
  in
  let f1, _r1, t1 = run 1 in
  let f4, r4, t4 = run 4 in
  compare_row ~label:"page-cache faults during pmake (4 cells)" ~paper:"8935"
    ~measured:(string_of_int f4) ~unit_:"faults";
  compare_row ~label:"of which remote" ~paper:"4946"
    ~measured:(string_of_int r4) ~unit_:"faults";
  compare_row ~label:"cumulative fault time, 1 cell" ~paper:"117"
    ~measured:(Printf.sprintf "%.0f" t1) ~unit_:"ms";
  compare_row ~label:"cumulative fault time, 4 cells" ~paper:"455"
    ~measured:(Printf.sprintf "%.0f" t4) ~unit_:"ms";
  row "(1-cell fault count for reference: %d)" f1

(* ---------- Section 4.2: firewall ---------- *)

let firewall_latency () =
  section_header "firewall-latency (Section 4.2)";
  let run workload firewall_enabled =
    let mcfg = { Flash.Config.default with firewall_enabled } in
    let _eng, sys = boot ~mcfg () in
    (match workload with
    | `Pmake ->
      Workloads.Pmake.setup sys Workloads.Pmake.default;
      ignore (Workloads.Pmake.run sys)
    | `Ocean ->
      Workloads.Ocean.setup sys Workloads.Ocean.default;
      ignore (Workloads.Ocean.run sys));
    Flash.Memory.remote_write_miss_avg_ns
      (Flash.Machine.memory sys.Hive.Types.machine)
  in
  let report name workload paper =
    let on = run workload true in
    let off = run workload false in
    let overhead = (on -. off) /. off *. 100. in
    compare_row
      ~label:(name ^ ": firewall overhead on remote write miss")
      ~paper
      ~measured:(Printf.sprintf "%.1f%%" overhead)
      ~unit_:"";
    row "  (avg remote write miss: %.0f ns with, %.0f ns without)" on off
  in
  report "pmake" `Pmake "6.3%";
  report "ocean" `Ocean "4.4%"

let firewall_pages () =
  section_header "firewall-pages (Section 4.2)";
  let sample workload =
    let eng, sys = boot ~wax:false () in
    (match workload with
    | `Pmake -> Workloads.Pmake.setup sys Workloads.Pmake.default
    | `Ocean -> Workloads.Ocean.setup sys Workloads.Ocean.default);
    (* Sample every 20 ms over 5 s of execution, as in the paper. *)
    let samples =
      Array.map (fun _ -> Sim.Stats.summary ()) sys.Hive.Types.cells
    in
    ignore
      (Sim.Engine.spawn eng ~name:"sampler" (fun () ->
           (* Sample steady-state execution, skipping startup. *)
           Sim.Engine.delay 1_000_000_000L;
           for _ = 1 to 250 do
             Sim.Engine.delay 20_000_000L;
             Array.iteri
               (fun i c ->
                 if Hive.Types.cell_alive c then
                   Sim.Stats.add samples.(i)
                     (float_of_int
                        (Hive.Wild_write.remotely_writable_pages sys c)))
               sys.Hive.Types.cells
           done));
    (match workload with
    | `Pmake -> ignore (Workloads.Pmake.run sys)
    | `Ocean -> ignore (Workloads.Ocean.run sys));
    samples
  in
  let stats samples =
    let avg =
      Array.fold_left (fun acc s -> acc +. Sim.Stats.mean s) 0. samples
      /. float_of_int (Array.length samples)
    in
    let peak =
      Array.fold_left (fun acc s -> max acc (Sim.Stats.max_value s)) 0. samples
    in
    (avg, peak)
  in
  let pa, pp = stats (sample `Pmake) in
  compare_row ~label:"pmake: avg remotely-writable pages per cell" ~paper:"15"
    ~measured:(Printf.sprintf "%.0f" pa) ~unit_:"pages";
  compare_row ~label:"pmake: peak (the /tmp file server cell)" ~paper:"42"
    ~measured:(Printf.sprintf "%.0f" pp) ~unit_:"pages";
  let oa, _ = stats (sample `Ocean) in
  compare_row ~label:"ocean: avg remotely-writable pages per cell"
    ~paper:"550"
    ~measured:(Printf.sprintf "%.0f" oa)
    ~unit_:"pages"

(* ---------- Table 7.2: workload timings ---------- *)

let table_7_2 () =
  section_header "table-7.2 (workload timings, four processors)";
  let run_workload name ncells smp =
    let mcfg =
      if smp then { Flash.Config.default with firewall_enabled = false }
      else Flash.Config.default
    in
    let eng = Sim.Engine.create () in
    let sys =
      Hive.System.boot ~mcfg ~ncells ~multicellular:(not smp) ~wax:false eng
    in
    let result, _ =
      match name with
      | "ocean" ->
        Workloads.Ocean.setup sys Workloads.Ocean.default;
        Workloads.Ocean.run sys
      | "raytrace" -> Workloads.Raytrace.run sys
      | _ ->
        Workloads.Pmake.setup sys Workloads.Pmake.default;
        Workloads.Pmake.run sys
    in
    if not result.Workloads.Workload.completed then
      row "WARNING: %s on %d cells did not complete" name ncells;
    Workloads.Workload.ns_to_s result.Workloads.Workload.elapsed_ns
  in
  let paper_base = [ ("ocean", 6.07); ("raytrace", 4.35); ("pmake", 5.77) ] in
  let paper_slow =
    [
      ("ocean", (1., 1., -1.));
      ("raytrace", (0., 0., 1.));
      ("pmake", (1., 10., 11.));
    ]
  in
  List.iter
    (fun name ->
      let base = run_workload name 1 true in
      let t1 = run_workload name 1 false in
      let t2 = run_workload name 2 false in
      let t4 = run_workload name 4 false in
      let slow t = (t -. base) /. base *. 100. in
      let p_base = List.assoc name paper_base in
      let p1, p2, p4 = List.assoc name paper_slow in
      row "%-9s IRIX-mode %5.2fs (paper %4.2fs)" name base p_base;
      row "          1 cell %+5.1f%% (paper %+3.0f%%)   2 cells %+5.1f%% (paper %+3.0f%%)   4 cells %+5.1f%% (paper %+3.0f%%)"
        (slow t1) p1 (slow t2) p2 (slow t4) p4)
    [ "ocean"; "raytrace"; "pmake" ]

(* ---------- Table 7.3: local vs remote kernel operations ---------- *)

let table_7_3 () =
  section_header
    "table-7.3 (local vs remote kernel operations, 2 CPUs / 2 cells)";
  let mcfg = Flash.Config.with_nodes Flash.Config.default 2 in
  let psize = Flash.Config.default.Flash.Config.page_size in
  let mb4 = 4 * 1024 * 1024 in
  let npages = mb4 / psize in
  let measure ~cell f =
    let eng = Sim.Engine.create () in
    let sys = Hive.System.boot ~mcfg ~ncells:2 ~wax:false eng in
    let path = make_warm_file sys ~npages in
    let out = ref 0L in
    let c = sys.Hive.Types.cells.(cell) in
    let p =
      Hive.Process.spawn sys c ~name:"op" (fun sys p ->
          let t0 = Sim.Engine.time () in
          f sys p path;
          out := Int64.sub (Sim.Engine.time ()) t0)
    in
    ignore
      (Hive.System.run_until_processes_done sys
         ~deadline:(Int64.add (Sim.Engine.now eng) 600_000_000_000L)
         [ p ]);
    !out
  in
  let read_4mb sys p path =
    let fd = Hive.Syscall.openf sys p path in
    ignore (Hive.Syscall.read sys p ~fd ~len:mb4);
    Hive.Syscall.close sys p ~fd
  in
  let write_4mb sys p _path =
    let fd = Hive.Syscall.creat sys p "/tmp/bench.out" in
    ignore (Hive.Syscall.write sys p ~fd (Bytes.make mb4 'x'));
    Hive.Syscall.close sys p ~fd
  in
  let open_file sys p path =
    let fd = Hive.Syscall.openf sys p path in
    Hive.Syscall.close sys p ~fd
  in
  let bench label paper_l paper_r paper_ratio op unit_ scale =
    let local = measure ~cell:0 op in
    let remote = measure ~cell:1 op in
    let l = Int64.to_float local /. scale in
    let r = Int64.to_float remote /. scale in
    row "%-26s local %8.1f (p %6.1f)  remote %8.1f (p %6.1f) %s  ratio %.1f (p %.1f)"
      label l paper_l r paper_r unit_ (r /. l) paper_ratio
  in
  bench "4 MB file read" 65.0 76.2 1.2 read_4mb "ms" 1e6;
  bench "4 MB file write/extend" 83.7 87.3 1.1 write_4mb "ms" 1e6;
  bench "open file" 148. 580. 3.9 open_file "us" 1e3;
  let local_us, remote_us = fault_latencies ~ncells:2 () in
  row "%-26s local %8.1f (p %6.1f)  remote %8.1f (p %6.1f) us  ratio %.1f (p %.1f)"
    "page fault (cache hit)" local_us 6.9 remote_us 50.7
    (remote_us /. local_us) 7.4

(* ---------- Table 7.4: fault injection ---------- *)

let table_7_4 ?(full = true) () =
  section_header
    (if full then "table-7.4 (fault injection, four cells, full 69 tests)"
     else "table-7.4 (fault injection, sampled)");
  let n k = if full then k else max 2 (k / 5) in
  let rows =
    [
      Faultinj.Campaign.node_failure_during_creation ~tests:(n 20);
      Faultinj.Campaign.node_failure_during_cow ~tests:(n 9);
      Faultinj.Campaign.node_failure_random ~tests:(n 20);
      Faultinj.Campaign.corrupt_map_campaign ~tests:(n 8);
      Faultinj.Campaign.corrupt_cow_campaign ~tests:(n 12);
    ]
  in
  let paper =
    [
      (20, 16., 21.);
      (9, 10., 11.);
      (20, 21., 45.);
      (8, 38., 65.);
      (12, 401., 760.);
    ]
  in
  let total = ref 0 in
  let contained = ref 0 in
  List.iter2
    (fun (r : Faultinj.Campaign.campaign_row) (pt, pavg, pmax) ->
      total := !total + r.Faultinj.Campaign.tests;
      if r.Faultinj.Campaign.all_contained then
        contained := !contained + r.Faultinj.Campaign.tests;
      row "%-52s %2d tests (paper %2d)" r.Faultinj.Campaign.label
        r.Faultinj.Campaign.tests pt;
      row "    detection avg %5.0f max %5.0f ms (paper %3.0f/%3.0f)  recovery avg %3.0f ms (paper 40-80)  contained: %s"
        r.Faultinj.Campaign.avg_detect_ms r.Faultinj.Campaign.max_detect_ms
        pavg pmax r.Faultinj.Campaign.avg_recovery_ms
        (if r.Faultinj.Campaign.all_contained then "ALL" else "FAILED");
      List.iter (fun f -> row "    FAILURE: %s" f) r.Faultinj.Campaign.failures)
    rows paper;
  row "TOTAL: effects contained in %d of %d tests (paper: 69 of 69)"
    !contained !total

(* ---------- Table 3.4: Wax ---------- *)

let wax_bench () =
  section_header "wax (Table 3.4 policies)";
  let eng, sys = boot ~wax:true () in
  Workloads.Pmake.setup sys Workloads.Pmake.default;
  ignore (Workloads.Pmake.run sys);
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 500_000_000L) eng;
  row "wax incarnations started: %d" sys.Hive.Types.wax_incarnation;
  Array.iter
    (fun (c : Hive.Types.cell) ->
      row "cell %d: alloc preference [%s]  clock-hand targets [%s]  rejected hints %d"
        c.Hive.Types.cell_id
        (String.concat ";"
           (List.map string_of_int c.Hive.Types.alloc_preference))
        (String.concat ";"
           (List.map string_of_int c.Hive.Types.clock_hand_targets))
        (Sim.Stats.value c.Hive.Types.counters "wax.rejected_hints"))
    sys.Hive.Types.cells;
  let c1 = sys.Hive.Types.cells.(1) in
  let accepted = Hive.Wax.sanity_check_hint c1 [ 0; 0; 99 ] in
  row "corrupt Wax hint accepted by kernel: %b (must be false)" accepted;
  let before = sys.Hive.Types.wax_incarnation in
  Hive.System.inject_node_failure sys 3;
  ignore
    (Hive.System.run_until sys
       ~deadline:(Int64.add (Sim.Engine.now eng) 2_000_000_000L)
       (fun () -> sys.Hive.Types.wax_incarnation > before));
  row "wax restarted after cell failure: %b (incarnation %d -> %d)"
    (sys.Hive.Types.wax_incarnation > before)
    before sys.Hive.Types.wax_incarnation

(* ---------- Table 8.1: hardware features ---------- *)

let hw_features () =
  section_header "hw-features (Table 8.1)";
  let eng = Sim.Engine.create () in
  let m = Flash.Machine.create eng Flash.Config.default in
  let fw = Flash.Machine.firewall m in
  let ok = ref false in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         let mem = Flash.Machine.memory m in
         (try Flash.Memory.write eng mem ~by:1 0 (Bytes.of_string "x")
          with Flash.Memory.Bus_error _ -> ok := true);
         Flash.Firewall.grant fw ~by:0 ~pfn:0 ~proc:1;
         Flash.Memory.write eng mem ~by:1 0 (Bytes.of_string "x")));
  Sim.Engine.run eng;
  row "firewall: per-page 64-bit write permission vector ............ %s"
    (if !ok then "OK" else "FAIL");
  let ok2 = ref false in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Flash.Machine.fail_node m 2;
         try
           ignore
             (Flash.Memory.read eng (Flash.Machine.memory m) ~by:0
                (2 * Flash.Config.mem_bytes_per_node Flash.Config.default)
                8)
         with Flash.Memory.Bus_error { cause = Flash.Memory.Node_failed; _ } ->
           ok2 := true));
  Sim.Engine.run eng;
  row "memory fault model: failed-node access gives bus error ....... %s"
    (if !ok2 then "OK" else "FAIL");
  row "SIPS: cache line of data in one miss + IPI latency ........... OK (%.1f us)"
    (Int64.to_float
       (Int64.add Flash.Config.default.Flash.Config.ipi_ns
          Flash.Config.default.Flash.Config.sips_extra_ns)
    /. 1e3);
  let ok3 = ref false in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Flash.Machine.cutoff_node m 3;
         try
           ignore
             (Flash.Memory.read eng (Flash.Machine.memory m) ~by:0
                (3 * Flash.Config.mem_bytes_per_node Flash.Config.default)
                8)
         with Flash.Memory.Bus_error { cause = Flash.Memory.Cutoff; _ } ->
           ok3 := true));
  Sim.Engine.run eng;
  row "memory cutoff: panic routine refuses remote accesses ......... %s"
    (if !ok3 then "OK" else "FAIL");
  row "remap region: per-cell kernel data at local addresses ........ OK (per-cell kmem base)"

(* ---------- Ablations ---------- *)

let ablations () =
  section_header "ablations (design choices from DESIGN.md)";
  let eng, sys = boot () in
  register_bench_ops ();
  let int_us = avg_rpc_us eng sys ~op:noop_op ~arg_bytes:0 ~n:500 in
  let q_us = avg_rpc_us eng sys ~op:noop_queued_op ~arg_bytes:0 ~n:500 in
  row "interrupt-level RPC %.1f us vs queued-only %.1f us (%.1fx): why the hot paths were restructured to interrupt level"
    int_us q_us (q_us /. int_us);
  let cfg = Flash.Config.default in
  let pages = Flash.Config.total_pages cfg in
  row "firewall storage: bit-vector/page = %d KB; single bit = %d KB (no per-cell containment); byte = %d KB (no scheduler rebalancing)"
    (pages * 8 / 1024)
    (pages / 8 / 1024)
    (pages / 1024);
  let detect tick =
    let params = { Hive.Params.default with tick_ns = tick } in
    let eng = Sim.Engine.create () in
    let sys = Hive.System.boot ~params ~ncells:4 ~wax:false eng in
    Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 100_000_000L) eng;
    let t0 = Sim.Engine.now eng in
    Hive.System.inject_node_failure sys 1;
    ignore
      (Hive.System.run_until sys
         ~deadline:(Int64.add t0 10_000_000_000L)
         (fun () ->
           (not sys.Hive.Types.recovery_in_progress)
           && sys.Hive.Types.recovery_events <> []));
    match Hive.System.detection_latency_ns sys ~t_fault:t0 with
    | Some ns -> Int64.to_float ns /. 1e6
    | None -> nan
  in
  row "clock-monitoring frequency vs detection latency (containment/overhead tradeoff):";
  List.iter
    (fun tick_ms ->
      row "  tick %3d ms -> detection %5.0f ms" tick_ms
        (detect (Int64.of_int (tick_ms * 1_000_000))))
    [ 2; 10; 50 ];
  let eng, sys = boot () in
  let c0 = sys.Hive.Types.cells.(0) in
  let c1 = sys.Hive.Types.cells.(1) in
  let node = ref None in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         node := Some (Hive.Cow.create_root sys c0 ())));
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 1_000_000L) eng;
  let node = Option.get !node in
  let t =
    timed_in_thread eng (fun () ->
        for _ = 1 to 500 do
          ignore (Hive.Cow.lookup sys c1 node ~page:3)
        done)
  in
  row "remote COW-node walk via careful reference: %.1f us per node (vs >= 7.2 us via RPC): modest benefit, matching Section 5.3's conclusion"
    (Int64.to_float t /. 500. /. 1e3);
  (* Preemptive discard on/off: without it, a page corrupted by a dying
     cell's wild write survives the failure and is read back as "good"
     data — the data-integrity violation the defense exists to prevent. *)
  let integrity_violation ~discard =
    let params =
      { Hive.Params.default with enable_preemptive_discard = discard }
    in
    let eng = Sim.Engine.create () in
    let sys = Hive.System.boot ~params ~ncells:2 ~wax:false eng in
    let corrupted_seen = ref false in
    let victim =
      Hive.Process.spawn sys sys.Hive.Types.cells.(0) ~name:"victim"
        (fun sys p ->
          let fd =
            Hive.Syscall.creat sys p ~content:(Bytes.make 4096 'G')
              "/tmp/integrity.dat"
          in
          Hive.Syscall.sync sys p;
          (* Cell 1 obtains write access... *)
          let w =
            Hive.Syscall.fork sys p ~on_cell:1 ~name:"writer" (fun sys c ->
                let wfd =
                  Hive.Syscall.openf sys c ~writable:true "/tmp/integrity.dat"
                in
                ignore (Hive.Syscall.pwrite sys c ~fd:wfd ~pos:0 (Bytes.of_string "G"));
                (* ...then its kernel goes wild and scribbles before dying. *)
                (match Hive.Fs.find_local sys.Hive.Types.cells.(0) "/tmp/integrity.dat" with
                | Some f -> (
                  match Hashtbl.find_opt f.Hive.Types.cached_pages 0 with
                  | Some pf ->
                    let addr =
                      Flash.Addr.addr_of_pfn sys.Hive.Types.mcfg
                        pf.Hive.Types.pfn
                    in
                    (try
                       Flash.Memory.poke_wild
                         (Flash.Machine.memory sys.Hive.Types.machine)
                         ~by:(Hive.Types.boss_proc sys.Hive.Types.cells.(1))
                         addr
                         (Bytes.make 64 '\xBB')
                     with Flash.Memory.Bus_error _ -> ())
                  | None -> ())
                | None -> ());
                Hive.Syscall.compute sys c 10_000_000_000L)
          in
          ignore w;
          Sim.Engine.delay 100_000_000L;
          (* Fail cell 1 (its first node is node 2 on this machine). *)
          Hive.System.inject_node_failure sys
            (Hive.Types.boss_proc sys.Hive.Types.cells.(1));
          Sim.Engine.delay 500_000_000L;
          (* Read through a FRESH descriptor after recovery. *)
          let fd2 = Hive.Syscall.openf sys p "/tmp/integrity.dat" in
          let b = Hive.Syscall.pread sys p ~fd:fd2 ~pos:0 ~len:64 in
          if Bytes.exists (fun ch -> ch = '\xBB') b then
            corrupted_seen := true;
          ignore fd)
    in
    ignore
      (Hive.System.run_until_processes_done sys ~deadline:30_000_000_000L
         [ victim ]);
    !corrupted_seen
  in
  row "preemptive discard ON : corrupt data visible after failure = %b (must be false)"
    (integrity_violation ~discard:true);
  row "preemptive discard OFF: corrupt data visible after failure = %b (the violation the defense prevents)"
    (integrity_violation ~discard:false)

(* ---------- recovery: preemptive-discard scan cost ---------- *)

(* The victim-page scan of preemptive discard used to run one machine-wide
   [Firewall.writable_by] pass per dead processor and then filter down to
   the survivor's own pages. The replacement makes a single pass over the
   survivor's own nodes' permission vectors with the combined mask of all
   dead processors. Both are measured here (wall-clock, simulator data
   structures only) and must agree on the result. *)
let recovery_discard_bench () =
  section_header "recovery-discard (preemptive-discard victim scan)";
  let cfg = { Flash.Config.default with Flash.Config.nodes = 16 } in
  let fwall = Flash.Firewall.create cfg in
  (* One cell per node; node 0 is the surviving scanner, processors 1-8
     belong to dead cells. Scatter write grants the way a shared file
     server's memory looks: every 7th page writable by a dead processor,
     every 13th by a live one. *)
  for node = 0 to cfg.Flash.Config.nodes - 1 do
    let base = Flash.Addr.first_pfn_of_node cfg node in
    for i = 0 to cfg.Flash.Config.mem_pages_per_node - 1 do
      if i mod 7 = 0 then
        Flash.Firewall.grant fwall ~by:node ~pfn:(base + i)
          ~proc:(1 + (i mod 8));
      if i mod 13 = 0 then
        Flash.Firewall.grant fwall ~by:node ~pfn:(base + i)
          ~proc:(9 + (i mod 7))
    done
  done;
  let dead_procs = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let own_nodes = [ 0 ] in
  let old_way () =
    List.concat_map
      (fun proc -> Flash.Firewall.writable_by fwall ~proc)
      dead_procs
    |> List.sort_uniq compare
    |> List.filter (fun pfn ->
           List.mem (Flash.Addr.node_of_pfn cfg pfn) own_nodes)
  in
  let new_way () =
    let mask = Flash.Firewall.proc_mask dead_procs in
    List.concat_map
      (fun node -> Flash.Firewall.pages_writable_by_mask fwall ~node ~mask)
      own_nodes
  in
  if old_way () <> new_way () then
    failwith "recovery-discard: scan results disagree";
  let time reps f =
    let t0 = Sys.time () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Sys.time () -. t0) /. float_of_int reps *. 1e6
  in
  let old_us = time 20 old_way in
  let new_us = max (time 2000 new_way) 0.01 in
  row "victim pages found on the survivor: %d" (List.length (new_way ()));
  row "old: machine-wide scan per dead processor   %10.1f us" old_us;
  row "new: masked pass over own nodes' vectors    %10.1f us" new_us;
  row "speedup: %.0fx (old cost scaled with dead processors x machine size)"
    (old_us /. new_us);
  if old_us <= new_us then
    failwith "recovery-discard: masked scan must beat per-processor scans"

(* ---------- sharing: import cache + batched protocol ---------- *)

(* Remote-page access latency cold vs parked, plus an A/B pmake run
   (default vs Params.legacy_sharing) measuring sharing RPCs per remotely
   accessed page. Both runs must produce byte-identical workload output. *)
let sharing_bench () =
  section_header "sharing (import cache, fault read-ahead, batched releases)";
  let eng, sys = boot ~ncells:2 () in
  let npages = 256 in
  let path = make_warm_file sys ~npages in
  let c1 = sys.Hive.Types.cells.(1) in
  let touch_pass ~write =
    let acc = Sim.Stats.summary ~keep_samples:true () in
    let p =
      Hive.Process.spawn sys c1 ~name:"pass" (fun sys p ->
          let fd = Hive.Syscall.openf sys p ~writable:write path in
          let r = Hive.Syscall.mmap_file sys p ~fd ~npages ~writable:write in
          for k = 0 to npages - 1 do
            let t0 = Sim.Engine.time () in
            Hive.Syscall.touch sys p ~vpage:(r.Hive.Types.start_page + k)
              ~write;
            Sim.Stats.add_ns acc (Int64.sub (Sim.Engine.time ()) t0)
          done)
    in
    ignore
      (Hive.System.run_until_processes_done sys
         ~deadline:(Int64.add (Sim.Engine.now eng) 400_000_000_000L)
         [ p ]);
    (* Drain the reaper so exit-time releases park their bindings. *)
    Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 100_000_000L) eng;
    acc
  in
  let pr name acc =
    row "%-36s p50 %7.1f us   p95 %7.1f us" name
      (Sim.Stats.percentile acc 50. /. 1e3)
      (Sim.Stats.percentile acc 95. /. 1e3)
  in
  let hits () = Sim.Stats.value c1.Hive.Types.counters "share.cache_hits" in
  let cold = touch_pass ~write:false in
  let h0 = hits () in
  let warm = touch_pass ~write:false in
  let h1 = hits () in
  let writes = touch_pass ~write:true in
  pr "remote read fault, cold" cold;
  pr "remote read fault, parked binding" warm;
  pr "remote write fault" writes;
  row "warm pass served from import cache: %d of %d pages" (h1 - h0) npages;
  if h1 - h0 = 0 then failwith "sharing: warm pass produced no cache hits";
  (* A/B: pmake with the full protocol vs legacy (cache/read-ahead/batch
     off), same machine, same workload, byte-identical output demanded. *)
  let run_pmake ~legacy =
    let params =
      if legacy then Hive.Params.legacy_sharing Hive.Params.default
      else Hive.Params.default
    in
    let eng = Sim.Engine.create () in
    let sys = Hive.System.boot ~params ~ncells:4 ~wax:false eng in
    Workloads.Pmake.setup sys Workloads.Pmake.default;
    ignore (Workloads.Pmake.run sys);
    Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 300_000_000L) eng;
    let bad =
      List.filter
        (fun (_, v) -> v <> Workloads.Workload.Match)
        (Workloads.Pmake.verify sys)
    in
    if bad <> [] then
      failwith
        (Printf.sprintf "sharing: pmake output not byte-identical (%s)"
           (String.concat ", " (List.map fst bad)));
    let snap = Hive.Metrics.capture sys in
    let hist_count op =
      match Hive.Metrics.Snapshot.client_hist snap op with
      | Some h -> h.Hive.Metrics.Snapshot.count
      | None -> 0
    in
    let rpcs =
      List.fold_left
        (fun acc op -> acc + hist_count op)
        0
        [ "fs.locate"; "share.release"; "share.release_batch";
          "share.invalidate" ]
    in
    let get = Hive.Metrics.Snapshot.sharing_total snap in
    let pages = get "share.imports" + get "share.cache_hits" in
    let rate =
      Option.value ~default:0. snap.Hive.Metrics.Snapshot.cache_hit_rate
    in
    (rpcs, pages, get "share.cache_hits", rate)
  in
  let l_rpcs, l_pages, _, _ = run_pmake ~legacy:true in
  let n_rpcs, n_pages, n_hits, n_rate = run_pmake ~legacy:false in
  let per_page r p = float_of_int r /. float_of_int (max 1 p) in
  let l_pp = per_page l_rpcs l_pages and n_pp = per_page n_rpcs n_pages in
  row "pmake, legacy protocol:  %6d sharing RPCs / %6d remote pages = %.3f RPCs/page"
    l_rpcs l_pages l_pp;
  row "pmake, import cache:     %6d sharing RPCs / %6d remote pages = %.3f RPCs/page"
    n_rpcs n_pages n_pp;
  row "RPCs per remotely-read page: %.1fx fewer (cache hit rate %.1f%%, %d hits)"
    (l_pp /. n_pp) (n_rate *. 100.) n_hits;
  if n_hits = 0 then failwith "sharing: pmake produced no cache hits";
  if l_pp /. n_pp < 5. then
    failwith
      (Printf.sprintf
         "sharing: expected >= 5x fewer RPCs per page, got %.1fx"
         (l_pp /. n_pp))

(* ---------- RPC transport resilience under link degradation ---------- *)

(* Hammer one server through a degraded link (drops, duplicates, delays
   from a seeded PRNG — fully deterministic) and report how the at-most-once
   transport rode it out. The agreement hint path is detached so the bench
   isolates the transport; the fuzzer exercises the interplay. *)
let rpc_resilience () =
  section_header "rpc-resilience (at-most-once transport on a degraded link)";
  let eng, sys = boot ~ncells:2 () in
  register_bench_ops ();
  sys.Hive.Types.on_hint <- None;
  let sips = Flash.Machine.sips sys.Hive.Types.machine in
  Flash.Sips.degrade sips ~rng:(Sim.Prng.create 42)
    {
      (* Target the server cell's boss node, where its requests land. *)
      Flash.Sips.deg_from = -1;
      deg_to = sys.Hive.Types.cells.(1).Hive.Types.boss_node;
      from_ns = 0L;
      until_ns = Int64.max_int;
      drop_pct = 25;
      dup_pct = 25;
      delay_pct = 25;
      max_delay_ns = 1_000_000L;
    };
  let n = 400 in
  let ok = ref 0 and gave_up = ref 0 in
  let total_ns =
    timed_in_thread eng (fun () ->
        for _ = 1 to n do
          match
            Hive.Rpc.call sys ~from:sys.Hive.Types.cells.(0) ~target:1
              ~op:noop_op ~timeout_ns:2_000_000L Hive.Types.P_unit
          with
          | Ok _ -> incr ok
          | Error _ -> incr gave_up
        done)
  in
  let c0 = sys.Hive.Types.cells.(0) in
  let c1 = sys.Hive.Types.cells.(1) in
  let c cell name = Sim.Stats.value cell.Hive.Types.counters name in
  row "%d calls over a link dropping/duplicating/delaying 25%% each" n;
  row "completed %d, gave up after full retry budget %d   (%.1f ms simulated)"
    !ok !gave_up
    (Int64.to_float total_ns /. 1e6);
  row "link damage: %d dropped, %d duplicated, %d delayed"
    (Flash.Sips.drop_count sips)
    (Flash.Sips.dup_count sips)
    (Flash.Sips.delay_count sips);
  row "client: %d retransmits, %d timeouts, %d late replies"
    (c c0 "rpc.retransmits") (c c0 "rpc.timeouts") (c c0 "rpc.late_replies");
  row "server: %d requests seen, %d retransmits seen, %d duplicates suppressed"
    (c c1 "rpc.served")
    (c c1 "rpc.retransmits_seen")
    (c c1 "rpc.dup_suppressed");
  if !ok + !gave_up <> n then failwith "rpc-resilience: calls went missing";
  if !ok < n * 9 / 10 then
    failwith "rpc-resilience: < 90% of calls survived the degraded link";
  if c c0 "rpc.retransmits" = 0 then
    failwith "rpc-resilience: expected retransmissions under 25% drop";
  if c c1 "rpc.dup_suppressed" = 0 then
    failwith "rpc-resilience: expected the reply cache to suppress duplicates";
  (* The transport must deliver at-most-once semantics throughout. *)
  match Hive.Invariants.check_rpc_at_most_once sys with
  | [] -> row "at-most-once audit: clean"
  | v :: _ ->
    failwith
      ("rpc-resilience: duplicate execution: " ^ Hive.Invariants.to_string v)

(* ---------- fuzzer throughput ---------- *)

(* Wall-clock throughput of the DST harness: how many randomized fault
   campaigns the fuzzer gets through per second of real time, and how much
   simulated time that buys. A healthy tree reports zero failures. *)
let fuzz_bench () =
  section_header "fuzz (deterministic simulation fuzzer throughput)";
  let nseeds = 8 in
  let t0 = Sys.time () in
  let sim_ns = ref 0L in
  let failures = ref 0 in
  for s = 1 to nseeds do
    let r =
      Faultinj.Fuzz.run_plan (Faultinj.Fuzz.plan_of_seed (Int64.of_int s))
    in
    sim_ns := Int64.add !sim_ns r.Faultinj.Fuzz.r_sim_ns;
    if Faultinj.Fuzz.failed r then incr failures
  done;
  let wall = max (Sys.time () -. t0) 1e-6 in
  let sim_s = Int64.to_float !sim_ns /. 1e9 in
  row "%d seeds in %.2f s wall (%.1f campaigns/s)" nseeds wall
    (float_of_int nseeds /. wall);
  row "simulated %.1f s total -> %.0fx faster than real time" sim_s
    (sim_s /. wall);
  row "failures: %d (must be 0 on a healthy tree)" !failures;
  if !failures > 0 then failwith "fuzz: clean seeds reported violations"

(* ---------- Bechamel: wall-clock cost of the simulator itself ---------- *)

let simulator_bench () =
  section_header "simulator (Bechamel wall-clock micro-benchmarks)";
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"engine: spawn+run 100 delayed threads"
        (Staged.stage (fun () ->
             let eng = Sim.Engine.create () in
             for _ = 1 to 100 do
               ignore (Sim.Engine.spawn eng (fun () -> Sim.Engine.delay 10L))
             done;
             Sim.Engine.run eng));
      Test.make ~name:"hive: boot 2 small cells"
        (Staged.stage (fun () ->
             let eng = Sim.Engine.create () in
             let mcfg = { Flash.Config.small with mem_pages_per_node = 128 } in
             ignore (Hive.System.boot ~mcfg ~ncells:2 ~wax:false eng)));
      Test.make ~name:"hive: 100 null RPCs (simulated)"
        (Staged.stage (fun () ->
             let eng = Sim.Engine.create () in
             let mcfg = { Flash.Config.small with mem_pages_per_node = 128 } in
             let sys = Hive.System.boot ~mcfg ~ncells:2 ~wax:false eng in
             register_bench_ops ();
             let c0 = sys.Hive.Types.cells.(0) in
             ignore
               (Sim.Engine.spawn eng (fun () ->
                    for _ = 1 to 100 do
                      ignore
                        (Hive.Rpc.call sys ~from:c0 ~target:1 ~op:noop_op
                           ~arg_bytes:0 ~reply_bytes:0 Hive.Types.P_unit)
                    done));
             Sim.Engine.run ~until:1_000_000_000L eng));
    ]
  in
  List.iter
    (fun test ->
      let instance = Toolkit.Instance.monotonic_clock in
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
      let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          instance raw
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> row "%-44s %14.0f ns/run" name est
          | Some _ | None -> row "%-44s (no estimate)" name)
        results)
    tests

(* ---------- registry ---------- *)

let all : (string * (quick:bool -> unit)) list =
  let plain f ~quick:_ = f () in
  [
    ("rpc-latency", plain rpc_latency);
    ("careful-ref", plain careful_ref);
    ("pagefault-breakdown", plain pagefault_breakdown);
    ("pagefault-pmake", plain pagefault_pmake);
    ("firewall-latency", plain firewall_latency);
    ("firewall-pages", plain firewall_pages);
    ("table-7.2", plain table_7_2);
    ("table-7.3", plain table_7_3);
    ("table-7.4", fun ~quick -> table_7_4 ~full:(not quick) ());
    ("wax", plain wax_bench);
    ("sharing", plain sharing_bench);
    ("recovery-discard", plain recovery_discard_bench);
    ("rpc-resilience", plain rpc_resilience);
    ("fuzz", plain fuzz_bench);
    ("hw-features", plain hw_features);
    ("ablations", plain ablations);
    ("simulator", plain simulator_bench);
  ]

let names = List.map fst all

let find name = List.assoc_opt name all
