(** Distributed agreement on cell failure (Section 4.3).

   A hint alone must not reboot a cell: a faulty cell that mistakenly
   concluded others were corrupt could destroy a large fraction of the
   system. When an alert is broadcast, all cells suspend user-level
   processes and vote on the suspect's liveness; consensus among the
   surviving cells is required before recovery. A cell that broadcasts
   the same alert twice but is voted down both times is itself considered
   corrupt by the other cells.

   The paper simulated this protocol with an oracle (the group-membership
   algorithm was not yet implemented); we provide both the real
   broadcast-vote protocol and an oracle mode for reproducing the paper's
   experimental setup. *)

type Types.payload +=
    P_vote_req of { suspect : Types.cell_id;
      accuser : Types.cell_id;
    }
  | P_vote of { alive : bool; }
  | P_dismiss of { accuser : Types.cell_id; }
val vote_op : Rpc.Op.t
val ping_op : Rpc.Op.t
val dismiss_op : Rpc.Op.t
val probe_timeout_ns : int64
val oracle_dead : Types.system -> int -> bool
val probe :
  Types.system -> Types.cell -> Types.cell_id -> bool
val false_alert_count : Types.cell -> Types.cell_id -> int
val bump_false_alerts : Types.cell -> Types.cell_id -> unit
val run :
  Types.system ->
  Types.cell -> suspect:Types.cell_id -> reason:string -> unit
val registered : bool ref
val register_handlers : unit -> unit
