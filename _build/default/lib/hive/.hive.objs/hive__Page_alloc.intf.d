lib/hive/page_alloc.mli: Types
