(** Cell construction and boot.

   When the system boots, each cell is assigned a range of nodes that it
   owns throughout execution; it manages their processors, memory and I/O
   devices as an independent kernel (Figure 3.1). Boot reserves kernel
   pages on the boss node (holding the published clock word, Wax slots and
   serialized kernel structures), grants its own processors write access
   to all of its memory, and starts the RPC dispatch and clock threads. *)

val kernel_reserved_pages : int
val make :
  Flash.Config.t ->
  id:Types.cell_id -> nodes:int list -> Types.cell
val init_frames : Types.system -> Types.cell -> unit
val init_firewall : Types.system -> Types.cell -> unit
val boot : Types.system -> Types.cell -> unit
val spawn_kernel :
  Types.system ->
  Types.cell -> name:string -> (unit -> unit) -> Sim.Engine.thread
