(* Shared plumbing for benchmark sections and sweep scenarios. *)

let section_header title = Printf.printf "\n=== %s ===\n%!" title

let row fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n%!" s) fmt

let compare_row ~label ~paper ~measured ~unit_ =
  row "%-46s paper %10s   measured %10s %s" label paper measured unit_

let boot ?(ncells = 4) ?(mcfg = Flash.Config.default) ?(wax = false) () =
  let eng = Sim.Engine.create () in
  let sys = Hive.System.boot ~mcfg ~ncells ~wax eng in
  (eng, sys)

(* Run a simulation-thread body to completion and return simulated ns. *)
let timed_in_thread eng body =
  let dt = ref 0L in
  ignore
    (Sim.Engine.spawn eng ~name:"bench" (fun () ->
         let t0 = Sim.Engine.time () in
         body ();
         dt := Int64.sub (Sim.Engine.time ()) t0));
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 60_000_000_000L) eng;
  !dt

let noop_op = Hive.Rpc.Op.declare "bench.noop"

let noop_queued_op = Hive.Rpc.Op.declare "bench.noop_queued"

let bench_registered = ref false

let register_bench_ops () =
  if not !bench_registered then begin
    bench_registered := true;
    Hive.Rpc.register noop_op (fun _sys _cell ~src:_ _arg ->
        Hive.Types.Immediate (Ok Hive.Types.P_unit));
    Hive.Rpc.register noop_queued_op (fun _sys _cell ~src:_ _arg ->
        Hive.Types.Queued (fun () -> Ok Hive.Types.P_unit))
  end

let avg_rpc_us eng sys ~op ~arg_bytes ~n =
  let c0 = sys.Hive.Types.cells.(0) in
  let total =
    timed_in_thread eng (fun () ->
        for _ = 1 to n do
          match
            Hive.Rpc.call sys ~from:c0 ~target:1 ~op ~arg_bytes ~reply_bytes:0
              Hive.Types.P_unit
          with
          | Ok _ -> ()
          | Error _ -> failwith "bench rpc failed"
        done)
  in
  Int64.to_float total /. float_of_int n /. 1e3

(* Build a file homed on cell 0 and warm its cache there. *)
let make_warm_file sys ~npages =
  let psize = Hive.Types.page_size sys in
  let path = "/tmp/bench.dat" in
  let home = sys.Hive.Types.cells.(0) in
  let p =
    Hive.Process.spawn sys home ~name:"warm" (fun sys p ->
        let fd =
          Hive.Syscall.creat sys p
            ~content:
              (Workloads.Workload.synth_content ~tag:path
                 ~bytes:(npages * psize))
            path
        in
        ignore (Hive.Syscall.read sys p ~fd ~len:(npages * psize));
        Hive.Syscall.close sys p ~fd)
  in
  ignore
    (Hive.System.run_until_processes_done sys ~deadline:400_000_000_000L [ p ]);
  path
