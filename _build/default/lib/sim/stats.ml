type summary = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable samples : float list;
  keep_samples : bool;
}

let summary ?(keep_samples = true) () =
  { count = 0; sum = 0.; min_v = infinity; max_v = neg_infinity; samples = []; keep_samples }

let add s x =
  s.count <- s.count + 1;
  s.sum <- s.sum +. x;
  if x < s.min_v then s.min_v <- x;
  if x > s.max_v then s.max_v <- x;
  if s.keep_samples then s.samples <- x :: s.samples

let add_ns s ns = add s (Int64.to_float ns)

let count s = s.count

let sum s = s.sum

let mean s = if s.count = 0 then 0. else s.sum /. float_of_int s.count

let min_value s = if s.count = 0 then 0. else s.min_v

let max_value s = if s.count = 0 then 0. else s.max_v

let percentile s p =
  if not s.keep_samples then invalid_arg "Stats.percentile: samples not kept";
  match s.samples with
  | [] -> 0.
  | xs ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    let idx = int_of_float (p /. 100. *. float_of_int (n - 1) +. 0.5) in
    arr.(max 0 (min (n - 1) idx))

type counter = { mutable n : int }

let counter () = { n = 0 }

let incr c = c.n <- c.n + 1

let incr_by c k = c.n <- c.n + k

let get c = c.n

let reset c = c.n <- 0

(* A set of named counters, used by cells and benches for event accounting. *)
type registry = (string, counter) Hashtbl.t

let registry () : registry = Hashtbl.create 32

let find (r : registry) name =
  match Hashtbl.find_opt r name with
  | Some c -> c
  | None ->
    let c = counter () in
    Hashtbl.replace r name c;
    c

let bump ?(by = 1) r name = incr_by (find r name) by

let value r name = match Hashtbl.find_opt r name with Some c -> c.n | None -> 0

let to_list (r : registry) =
  Hashtbl.fold (fun k c acc -> (k, c.n) :: acc) r []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
