lib/hive/cell.mli: Flash Sim Types
