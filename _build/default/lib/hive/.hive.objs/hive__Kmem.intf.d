lib/hive/kmem.mli: Flash Types
