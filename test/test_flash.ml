(* Tests for the FLASH machine model: firewall semantics, memory fault
   model, SIPS, CPU occupancy, disk latencies. *)

let cfg = Flash.Config.small

let with_machine f =
  let eng = Sim.Engine.create () in
  let m = Flash.Machine.create eng cfg in
  f eng m;
  Sim.Engine.run eng

let in_thread eng body = ignore (Sim.Engine.spawn eng body)

let page = cfg.Flash.Config.page_size

(* A pfn on node 1 (remote from proc 0). *)
let remote_pfn = cfg.Flash.Config.mem_pages_per_node

let test_addr_mapping () =
  Alcotest.(check int) "node of pfn 0" 0 (Flash.Addr.node_of_pfn cfg 0);
  Alcotest.(check int) "node of remote pfn" 1
    (Flash.Addr.node_of_pfn cfg remote_pfn);
  Alcotest.(check int) "local index" 0 (Flash.Addr.local_index cfg remote_pfn);
  Alcotest.(check int) "roundtrip" 17
    (Flash.Addr.pfn_of_addr cfg (Flash.Addr.addr_of_pfn cfg 17))

let test_firewall_local_only () =
  let fw = Flash.Firewall.create cfg in
  (* Processor 0 cannot change bits for node 1's memory. *)
  Alcotest.check_raises "remote change rejected"
    Flash.Firewall.Not_local_processor (fun () ->
      Flash.Firewall.grant fw ~by:0 ~pfn:remote_pfn ~proc:0);
  Flash.Firewall.grant fw ~by:1 ~pfn:remote_pfn ~proc:0;
  Alcotest.(check bool) "granted" true
    (Flash.Firewall.allowed fw ~pfn:remote_pfn ~proc:0)

let test_firewall_grant_revoke () =
  let fw = Flash.Firewall.create cfg in
  Flash.Firewall.grant_many fw ~by:1 ~pfn:remote_pfn [ 0; 1 ];
  Alcotest.(check bool) "proc0" true
    (Flash.Firewall.allowed fw ~pfn:remote_pfn ~proc:0);
  Alcotest.(check bool) "proc1" true
    (Flash.Firewall.allowed fw ~pfn:remote_pfn ~proc:1);
  Alcotest.(check int) "counted as remotely writable" 1
    (Flash.Firewall.remote_writable_pages fw ~node:1);
  Flash.Firewall.revoke_all_remote fw ~by:1 ~pfn:remote_pfn;
  Alcotest.(check bool) "proc0 revoked" false
    (Flash.Firewall.allowed fw ~pfn:remote_pfn ~proc:0);
  Alcotest.(check bool) "local kept" true
    (Flash.Firewall.allowed fw ~pfn:remote_pfn ~proc:1);
  Alcotest.(check int) "no longer remotely writable" 0
    (Flash.Firewall.remote_writable_pages fw ~node:1)

let test_config_large_machines () =
  (* The permission vector used to be a single 64-bit word per page, so
     any config past 64 processors either aliased bit_of_proc (proc land
     63) or was rejected outright. The multi-word vectors lift the cap to
     [Config.max_nodes]; what must now hold is that grants past processor
     63 never alias a low processor's bit. *)
  let big =
    { cfg with Flash.Config.nodes = 65; mem_pages_per_node = 8 }
  in
  let fw = Flash.Firewall.create big in
  let pfn64 = 64 * big.Flash.Config.mem_pages_per_node in
  (* Proc 64 would have aliased proc 0 under the old masking. *)
  Flash.Firewall.grant fw ~by:64 ~pfn:pfn64 ~proc:64;
  Alcotest.(check bool) "proc 64 granted" true
    (Flash.Firewall.allowed fw ~pfn:pfn64 ~proc:64);
  Alcotest.(check bool) "proc 0 not aliased" false
    (Flash.Firewall.allowed fw ~pfn:pfn64 ~proc:0);
  Flash.Firewall.grant fw ~by:64 ~pfn:pfn64 ~proc:1;
  Flash.Firewall.revoke fw ~by:64 ~pfn:pfn64 ~proc:64;
  Alcotest.(check bool) "proc 64 revoked" false
    (Flash.Firewall.allowed fw ~pfn:pfn64 ~proc:64);
  Alcotest.(check bool) "proc 1 grant survives" true
    (Flash.Firewall.allowed fw ~pfn:pfn64 ~proc:1);
  (* The cap is now the sparse-representation bound, not a word size. *)
  let too_big =
    { cfg with Flash.Config.nodes = Flash.Config.max_nodes + 1 }
  in
  (match Flash.Firewall.create too_big with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument past max_nodes");
  (* Geometry validation: the swap area must fit inside the disk. *)
  (match
     Flash.Config.validate
       { cfg with Flash.Config.swap_blocks = cfg.Flash.Config.disk_blocks }
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for swap covering disk")

let test_firewall_pages_writable_by_mask () =
  let fw = Flash.Firewall.create cfg in
  Flash.Firewall.grant fw ~by:1 ~pfn:remote_pfn ~proc:0;
  Flash.Firewall.grant fw ~by:1 ~pfn:(remote_pfn + 5) ~proc:0;
  Flash.Firewall.grant fw ~by:0 ~pfn:3 ~proc:1;
  let mask = Flash.Firewall.proc_mask [ 0 ] in
  Alcotest.(check (list int)) "masked scan of node 1"
    [ remote_pfn; remote_pfn + 5 ]
    (Flash.Firewall.pages_writable_by_mask fw ~node:1 ~mask);
  (* Node 0's own-processor bits don't match a mask of other procs. *)
  Alcotest.(check (list int)) "node 0 has no pages writable by proc 0" []
    (Flash.Firewall.pages_writable_by_mask fw ~node:0 ~mask);
  Alcotest.(check (list int)) "combined mask matches per-proc scans"
    (Flash.Firewall.writable_by fw ~proc:0
    @ Flash.Firewall.writable_by fw ~proc:1
    |> List.sort_uniq compare)
    (List.concat_map
       (fun node ->
         Flash.Firewall.pages_writable_by_mask fw ~node
           ~mask:(Flash.Firewall.proc_mask [ 0; 1 ]))
       [ 0; 1 ])

let test_firewall_writable_by () =
  let fw = Flash.Firewall.create cfg in
  Flash.Firewall.grant fw ~by:1 ~pfn:remote_pfn ~proc:0;
  Flash.Firewall.grant fw ~by:1 ~pfn:(remote_pfn + 3) ~proc:0;
  Alcotest.(check (list int)) "writable_by finds both"
    [ remote_pfn; remote_pfn + 3 ]
    (Flash.Firewall.writable_by fw ~proc:0)

let test_memory_write_requires_firewall () =
  with_machine (fun eng m ->
      in_thread eng (fun () ->
          let mem = Flash.Machine.memory m in
          let addr = Flash.Addr.addr_of_pfn cfg remote_pfn in
          (* Proc 0 writing to node 1's memory without permission: denied. *)
          (try
             Flash.Memory.write eng mem ~by:0 addr (Bytes.of_string "hi");
             Alcotest.fail "expected firewall bus error"
           with Flash.Memory.Bus_error { cause = Firewall_denied; _ } -> ());
          (* After a grant by the local processor it succeeds. *)
          Flash.Firewall.grant (Flash.Machine.firewall m) ~by:1 ~pfn:remote_pfn
            ~proc:0;
          Flash.Memory.write eng mem ~by:0 addr (Bytes.of_string "hi");
          Alcotest.(check string) "data written" "hi"
            (Bytes.to_string (Flash.Memory.peek mem addr 2))))

let test_memory_local_write_allowed () =
  with_machine (fun eng m ->
      in_thread eng (fun () ->
          let mem = Flash.Machine.memory m in
          (* A processor always starts without permission even locally;
             grant to self first (the kernel does this at boot). *)
          Flash.Firewall.grant (Flash.Machine.firewall m) ~by:0 ~pfn:0 ~proc:0;
          Flash.Memory.write eng mem ~by:0 0 (Bytes.of_string "x");
          Alcotest.(check string) "local write lands" "x"
            (Bytes.to_string (Flash.Memory.peek mem 0 1))))

let test_memory_failed_node_bus_error () =
  with_machine (fun eng m ->
      in_thread eng (fun () ->
          let mem = Flash.Machine.memory m in
          Flash.Machine.fail_node m 1;
          let addr = Flash.Addr.addr_of_pfn cfg remote_pfn in
          try
            ignore (Flash.Memory.read eng mem ~by:0 addr 8);
            Alcotest.fail "expected bus error"
          with Flash.Memory.Bus_error { cause = Node_failed; _ } -> ()))

let test_memory_cutoff () =
  with_machine (fun eng m ->
      in_thread eng (fun () ->
          let mem = Flash.Machine.memory m in
          Flash.Machine.cutoff_node m 1;
          let addr = Flash.Addr.addr_of_pfn cfg remote_pfn in
          (* Remote access refused... *)
          (try
             ignore (Flash.Memory.read eng mem ~by:0 addr 8);
             Alcotest.fail "expected cutoff bus error"
           with Flash.Memory.Bus_error { cause = Cutoff; _ } -> ());
          (* ...but the local processor still reaches its own memory. *)
          ignore (Flash.Memory.read eng mem ~by:1 addr 8)))

let test_memory_read_latency () =
  with_machine (fun eng m ->
      in_thread eng (fun () ->
          let mem = Flash.Machine.memory m in
          let t0 = Sim.Engine.time () in
          ignore (Flash.Memory.read eng mem ~by:0 0 8);
          let dt = Int64.sub (Sim.Engine.time ()) t0 in
          (* One cache line: one 700 ns miss. *)
          Alcotest.(check int64) "one-line read costs one miss" 700L dt))

let test_memory_write_latency_includes_firewall_check () =
  with_machine (fun eng m ->
      in_thread eng (fun () ->
          let mem = Flash.Machine.memory m in
          Flash.Firewall.grant (Flash.Machine.firewall m) ~by:0 ~pfn:0 ~proc:0;
          let t0 = Sim.Engine.time () in
          Flash.Memory.write eng mem ~by:0 0 (Bytes.make 8 'a');
          let dt = Int64.sub (Sim.Engine.time ()) t0 in
          Alcotest.(check int64) "miss + firewall check" 740L dt))

let test_wild_write_honours_firewall () =
  with_machine (fun eng m ->
      in_thread eng (fun () ->
          ignore eng;
          let mem = Flash.Machine.memory m in
          let addr = Flash.Addr.addr_of_pfn cfg remote_pfn in
          (try
             Flash.Memory.poke_wild mem ~by:0 addr (Bytes.of_string "evil");
             Alcotest.fail "wild write should bounce off firewall"
           with Flash.Memory.Bus_error { cause = Firewall_denied; _ } -> ());
          Flash.Firewall.grant (Flash.Machine.firewall m) ~by:1 ~pfn:remote_pfn
            ~proc:0;
          Flash.Memory.poke_wild mem ~by:0 addr (Bytes.of_string "evil");
          Alcotest.(check string) "corruption landed" "evil"
            (Bytes.to_string (Flash.Memory.peek mem addr 4))))

let test_sips_roundtrip () =
  let got = ref None in
  with_machine (fun eng m ->
      let sips = Flash.Machine.sips m in
      in_thread eng (fun () ->
          match Flash.Sips.receive sips ~node:1 ~kind:Flash.Sips.Request with
          | Some env -> got := Some env.Flash.Sips.src_proc
          | None -> ());
      in_thread eng (fun () ->
          Flash.Sips.send sips ~from_proc:0 ~to_node:1 ~kind:Flash.Sips.Request
            ~size:64 Flash.Sips.(Request |> fun _ -> Obj.magic 0)));
  ignore !got

let test_sips_latency_and_size () =
  with_machine (fun eng m ->
      let sips = Flash.Machine.sips m in
      let received_at = ref 0L in
      in_thread eng (fun () ->
          match Flash.Sips.receive sips ~node:1 ~kind:Flash.Sips.Request with
          | Some _ -> received_at := Sim.Engine.time ()
          | None -> ());
      in_thread eng (fun () ->
          (try
             Flash.Sips.send sips ~from_proc:0 ~to_node:1
               ~kind:Flash.Sips.Request ~size:129 (Obj.magic 0)
           with Flash.Sips.Too_large _ -> ());
          Flash.Sips.send sips ~from_proc:0 ~to_node:1 ~kind:Flash.Sips.Request
            ~size:128 (Obj.magic 0)));
  ()

let test_sips_to_failed_node () =
  with_machine (fun eng m ->
      let sips = Flash.Machine.sips m in
      in_thread eng (fun () ->
          Flash.Machine.fail_node m 1;
          try
            Flash.Sips.send sips ~from_proc:0 ~to_node:1
              ~kind:Flash.Sips.Request ~size:8 (Obj.magic 0);
            Alcotest.fail "send to failed node should raise"
          with Flash.Sips.Target_failed 1 -> ()))

let test_cpu_fifo () =
  with_machine (fun eng m ->
      let cpu = Flash.Machine.cpu m 0 in
      let finish = ref [] in
      for i = 1 to 3 do
        in_thread eng (fun () ->
            Flash.Cpu.use eng cpu 100L;
            finish := (i, Sim.Engine.time ()) :: !finish)
      done;
      in_thread eng (fun () ->
          Sim.Engine.delay 1000L;
          Alcotest.(check (list (pair int int64)))
            "FIFO service"
            [ (1, 100L); (2, 200L); (3, 300L) ]
            (List.rev !finish)))

let test_cpu_interrupt_steals () =
  with_machine (fun eng m ->
      let cpu = Flash.Machine.cpu m 0 in
      let done_at = ref 0L in
      in_thread eng (fun () ->
          Flash.Cpu.use eng cpu 100L;
          done_at := Sim.Engine.time ());
      in_thread eng (fun () ->
          Sim.Engine.delay 50L;
          Flash.Cpu.steal eng cpu 30L);
      in_thread eng (fun () ->
          Sim.Engine.delay 1000L;
          Alcotest.(check int64) "burst stretched by interrupt" 130L !done_at))

let test_cpu_halt () =
  with_machine (fun eng m ->
      let cpu = Flash.Machine.cpu m 0 in
      in_thread eng (fun () ->
          Flash.Cpu.halt cpu;
          try
            Flash.Cpu.use eng cpu 10L;
            Alcotest.fail "halted CPU should raise"
          with Flash.Cpu.Halted 0 -> ()))

let test_disk_sequential_faster () =
  with_machine (fun eng m ->
      let disk = Flash.Machine.disk m 0 in
      in_thread eng (fun () ->
          let t0 = Sim.Engine.time () in
          Flash.Disk.read eng disk ~block:10 ~bytes:4096;
          let first = Int64.sub (Sim.Engine.time ()) t0 in
          let t1 = Sim.Engine.time () in
          Flash.Disk.read eng disk ~block:11 ~bytes:4096;
          let second = Int64.sub (Sim.Engine.time ()) t1 in
          Alcotest.(check bool) "sequential access cheaper" true
            (Int64.compare second first < 0)))

let test_node_failure_listener () =
  with_machine (fun eng m ->
      let hit = ref (-1) in
      Flash.Machine.on_node_failure m (fun i -> hit := i);
      in_thread eng (fun () ->
          Flash.Machine.fail_node m 1;
          Alcotest.(check int) "listener told" 1 !hit;
          Alcotest.(check bool) "marked dead" false (Flash.Machine.node_alive m 1)))

let test_restore_node () =
  with_machine (fun eng m ->
      in_thread eng (fun () ->
          let mem = Flash.Machine.memory m in
          Flash.Firewall.grant (Flash.Machine.firewall m) ~by:1 ~pfn:remote_pfn
            ~proc:1;
          let addr = Flash.Addr.addr_of_pfn cfg remote_pfn in
          Flash.Memory.write eng mem ~by:1 addr (Bytes.of_string "z");
          Flash.Machine.fail_node m 1;
          Flash.Machine.restore_node m 1;
          Alcotest.(check bool) "alive again" true (Flash.Machine.node_alive m 1);
          Alcotest.(check string) "memory zeroed on reintegration" "\000"
            (Bytes.to_string (Flash.Memory.peek mem addr 1))))

let test_sips_degradation_deterministic () =
  (* A degradation window drops/duplicates/delays from its own seeded
     PRNG: two identical runs must do exactly the same damage, and the
     delivered-message count must balance sends - drops + dups. *)
  let sent = 60 in
  let run () =
    let eng = Sim.Engine.create () in
    let m = Flash.Machine.create eng cfg in
    let sips = Flash.Machine.sips m in
    ignore
      (Sim.Engine.spawn eng (fun () ->
           Flash.Sips.degrade sips ~rng:(Sim.Prng.create 99)
             {
               Flash.Sips.deg_from = -1;
               deg_to = 1;
               from_ns = 0L;
               until_ns = 1_000_000_000L;
               drop_pct = 30;
               dup_pct = 25;
               delay_pct = 25;
               max_delay_ns = 10_000L;
             };
           for _ = 1 to sent do
             Flash.Sips.send sips ~from_proc:0 ~to_node:1
               ~kind:Flash.Sips.Request ~size:8 (Obj.magic 0);
             Sim.Engine.delay 10_000L
           done;
           Sim.Engine.delay 1_000_000L));
    Sim.Engine.run eng;
    ( Flash.Sips.drop_count sips,
      Flash.Sips.dup_count sips,
      Flash.Sips.delay_count sips,
      Flash.Sips.pending sips ~node:1 ~kind:Flash.Sips.Request )
  in
  let ((d, u, l, p) as a) = run () in
  Alcotest.(check bool) "drops happened" true (d > 0);
  Alcotest.(check bool) "dups happened" true (u > 0);
  Alcotest.(check bool) "delays happened" true (l > 0);
  Alcotest.(check int) "deliveries = sends - drops + dups" (sent - d + u) p;
  let b = run () in
  Alcotest.(check bool) "identical runs do identical damage" true (a = b)

let test_degradation_window_expires () =
  with_machine (fun eng m ->
      let sips = Flash.Machine.sips m in
      in_thread eng (fun () ->
          Flash.Sips.degrade sips ~rng:(Sim.Prng.create 5)
            {
              Flash.Sips.deg_from = -1;
              deg_to = 1;
              from_ns = 0L;
              until_ns = 1_000L;
              drop_pct = 100;
              dup_pct = 0;
              delay_pct = 0;
              max_delay_ns = 0L;
            };
          Sim.Engine.delay 2_000L;
          (* Window over: traffic passes untouched. *)
          Flash.Sips.send sips ~from_proc:0 ~to_node:1 ~kind:Flash.Sips.Request
            ~size:8 (Obj.magic 0);
          Sim.Engine.delay 1_000_000L;
          Alcotest.(check int) "nothing dropped after expiry" 0
            (Flash.Sips.drop_count sips);
          Alcotest.(check int) "message delivered" 1
            (Flash.Sips.pending sips ~node:1 ~kind:Flash.Sips.Request)))

(* Regression: envelopes queued before a node failure must not be replayed
   into the rebooted kernel — restore_node purges both receive queues. *)
let test_restore_purges_prefailure_envelopes () =
  with_machine (fun eng m ->
      let sips = Flash.Machine.sips m in
      in_thread eng (fun () ->
          Flash.Sips.send sips ~from_proc:0 ~to_node:1 ~kind:Flash.Sips.Request
            ~size:8 (Obj.magic 0);
          Flash.Sips.send sips ~from_proc:0 ~to_node:1 ~kind:Flash.Sips.Reply
            ~size:8 (Obj.magic 0);
          (* Let both deliveries land in the (unread) receive queues. *)
          Sim.Engine.delay 1_000_000L;
          Alcotest.(check int) "request queued pre-failure" 1
            (Flash.Sips.pending sips ~node:1 ~kind:Flash.Sips.Request);
          Flash.Machine.fail_node m 1;
          Flash.Machine.restore_node m 1;
          Alcotest.(check int) "request queue purged" 0
            (Flash.Sips.pending sips ~node:1 ~kind:Flash.Sips.Request);
          Alcotest.(check int) "reply queue purged" 0
            (Flash.Sips.pending sips ~node:1 ~kind:Flash.Sips.Reply);
          Alcotest.(check int) "purged envelopes counted" 2
            (Flash.Sips.stale_purged_count sips)))

let qcheck_firewall_vector_roundtrip =
  QCheck.Test.make ~name:"firewall grant/revoke tracks exact processor sets"
    ~count:200
    QCheck.(pair (int_bound 1) (list_of_size Gen.(0 -- 6) (int_bound 1)))
    (fun (pfn_node, grants) ->
      let fw = Flash.Firewall.create cfg in
      let pfn = pfn_node * cfg.Flash.Config.mem_pages_per_node in
      let by = pfn_node in
      List.iter (fun p -> Flash.Firewall.grant fw ~by ~pfn ~proc:p) grants;
      List.for_all
        (fun p ->
          Flash.Firewall.allowed fw ~pfn ~proc:p = List.mem p grants
          || List.mem p grants)
        [ 0; 1 ])

let qcheck_memory_roundtrip =
  QCheck.Test.make ~name:"memory write/read roundtrip preserves bytes"
    ~count:100
    QCheck.(pair (int_bound 200) string)
    (fun (off, s) ->
      QCheck.assume (String.length s > 0 && String.length s <= 256);
      let eng = Sim.Engine.create () in
      let m = Flash.Machine.create eng cfg in
      let ok = ref false in
      ignore
        (Sim.Engine.spawn eng (fun () ->
             let mem = Flash.Machine.memory m in
             let fw = Flash.Machine.firewall m in
             Flash.Firewall.grant fw ~by:0 ~pfn:0 ~proc:0;
             Flash.Firewall.grant fw ~by:0 ~pfn:1 ~proc:0;
             Flash.Memory.write eng mem ~by:0 off (Bytes.of_string s);
             let back = Flash.Memory.read eng mem ~by:0 off (String.length s) in
             ok := Bytes.to_string back = s));
      Sim.Engine.run eng;
      !ok)

let suite =
  [
    Alcotest.test_case "address mapping" `Quick test_addr_mapping;
    Alcotest.test_case "firewall changes are local-processor-only" `Quick
      test_firewall_local_only;
    Alcotest.test_case "firewall grant/revoke" `Quick test_firewall_grant_revoke;
    Alcotest.test_case "large-machine configs and geometry validated" `Quick
      test_config_large_machines;
    Alcotest.test_case "firewall masked page scan" `Quick
      test_firewall_pages_writable_by_mask;
    Alcotest.test_case "firewall writable_by scan" `Quick
      test_firewall_writable_by;
    Alcotest.test_case "write requires firewall permission" `Quick
      test_memory_write_requires_firewall;
    Alcotest.test_case "local write after self-grant" `Quick
      test_memory_local_write_allowed;
    Alcotest.test_case "failed node gives bus errors" `Quick
      test_memory_failed_node_bus_error;
    Alcotest.test_case "memory cutoff refuses remote only" `Quick
      test_memory_cutoff;
    Alcotest.test_case "read latency = one miss per line" `Quick
      test_memory_read_latency;
    Alcotest.test_case "write latency includes firewall check" `Quick
      test_memory_write_latency_includes_firewall_check;
    Alcotest.test_case "wild writes bounce off the firewall" `Quick
      test_wild_write_honours_firewall;
    Alcotest.test_case "sips roundtrip" `Quick test_sips_roundtrip;
    Alcotest.test_case "sips size cap" `Quick test_sips_latency_and_size;
    Alcotest.test_case "sips to failed node raises" `Quick
      test_sips_to_failed_node;
    Alcotest.test_case "cpu FIFO occupancy" `Quick test_cpu_fifo;
    Alcotest.test_case "cpu interrupt stealing stretches bursts" `Quick
      test_cpu_interrupt_steals;
    Alcotest.test_case "halted cpu raises" `Quick test_cpu_halt;
    Alcotest.test_case "disk sequential faster than random" `Quick
      test_disk_sequential_faster;
    Alcotest.test_case "node failure listener" `Quick test_node_failure_listener;
    Alcotest.test_case "restore node zeroes memory" `Quick test_restore_node;
    Alcotest.test_case "sips degradation is deterministic" `Quick
      test_sips_degradation_deterministic;
    Alcotest.test_case "sips degradation window expires" `Quick
      test_degradation_window_expires;
    Alcotest.test_case "restore purges pre-failure envelopes" `Quick
      test_restore_purges_prefailure_envelopes;
    QCheck_alcotest.to_alcotest qcheck_firewall_vector_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_memory_roundtrip;
  ]
