lib/sim/barrier.mli: Engine
