(* A set of processor numbers, the value a firewall permission vector
   holds. On the real FLASH this is a bit vector in the coherence
   controller; machines past 64 processors widen it to multiple words
   (Section 4.2 notes the MAGIC firewall storage options scale with
   machine size). Represented as a normalized array of 63-bit words so
   structural equality and polymorphic hashing work and machines of
   hundreds of processors stay representable. *)

type t = int array (* word i holds procs [63i, 63i+62]; no trailing zeros *)

let bits_per_word = 63

let empty : t = [||]

let is_empty (s : t) = Array.length s = 0

(* Drop trailing zero words so equal sets are structurally equal. *)
let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let singleton p =
  if p < 0 then invalid_arg "Procset.singleton: negative processor";
  let w = p / bits_per_word in
  let a = Array.make (w + 1) 0 in
  a.(w) <- 1 lsl (p mod bits_per_word);
  a

let mem (s : t) p =
  let w = p / bits_per_word in
  p >= 0
  && w < Array.length s
  && s.(w) land (1 lsl (p mod bits_per_word)) <> 0

let add (s : t) p =
  if p < 0 then invalid_arg "Procset.add: negative processor";
  let w = p / bits_per_word in
  let n = max (Array.length s) (w + 1) in
  let a = Array.make n 0 in
  Array.blit s 0 a 0 (Array.length s);
  a.(w) <- a.(w) lor (1 lsl (p mod bits_per_word));
  a

let remove (s : t) p =
  let w = p / bits_per_word in
  if p < 0 || w >= Array.length s then s
  else begin
    let a = Array.copy s in
    a.(w) <- a.(w) land lnot (1 lsl (p mod bits_per_word));
    normalize a
  end

let of_list ps = List.fold_left add empty ps

let union (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  Array.init n (fun i ->
      (if i < la then a.(i) else 0) lor if i < lb then b.(i) else 0)

let inter (a : t) (b : t) : t =
  let n = min (Array.length a) (Array.length b) in
  normalize (Array.init n (fun i -> a.(i) land b.(i)))

let diff (a : t) (b : t) : t =
  let lb = Array.length b in
  normalize
    (Array.mapi (fun i w -> if i < lb then w land lnot b.(i) else w) a)

let intersects (a : t) (b : t) =
  let n = min (Array.length a) (Array.length b) in
  let rec go i = i < n && (a.(i) land b.(i) <> 0 || go (i + 1)) in
  go 0

let equal (a : t) (b : t) = a = b

let subset (a : t) (b : t) = is_empty (diff a b)

let cardinal (s : t) =
  let popcount w =
    let c = ref 0 and w = ref w in
    while !w <> 0 do
      w := !w land (!w - 1);
      incr c
    done;
    !c
  in
  Array.fold_left (fun acc w -> acc + popcount w) 0 s

let to_list (s : t) =
  let acc = ref [] in
  for w = Array.length s - 1 downto 0 do
    for b = bits_per_word - 1 downto 0 do
      if s.(w) land (1 lsl b) <> 0 then acc := ((w * bits_per_word) + b) :: !acc
    done
  done;
  !acc

(* Compact rendering for traces: hex words, most significant first. *)
let to_string (s : t) =
  if is_empty s then "0"
  else
    String.concat ":"
      (List.rev (Array.to_list (Array.map (Printf.sprintf "%x") s)))
