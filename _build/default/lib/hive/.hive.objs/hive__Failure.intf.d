lib/hive/failure.mli: Types
