(* Shared kernel state types.

   Hive's subsystems (VM, FS, RPC, recovery, ...) operate on one mutually
   recursive bundle of mutable state types, defined here once; each
   subsystem module implements behavior over them. This mirrors a kernel's
   shared header structure and avoids module cycles. *)

type cell_id = int

type pid = int

(* UNIX-style error results surfaced to processes. *)
type errno =
  | EIO (* data lost: generation mismatch after preemptive discard *)
  | ENOENT
  | EBADF
  | ESRCH
  | EFAULT
  | EAGAIN
  | EHOSTDOWN (* cell owning the resource is down *)
  | EBUSY (* server shed the request: queue saturated or mid-recovery *)
  | ETIMEDOUT (* end-to-end deadline budget exhausted across retries *)
  | ENOSPC (* file area would grow into the swap partition *)

exception Syscall_error of errno

let errno_to_string = function
  | EIO -> "EIO"
  | ENOENT -> "ENOENT"
  | EBADF -> "EBADF"
  | ESRCH -> "ESRCH"
  | EFAULT -> "EFAULT"
  | EAGAIN -> "EAGAIN"
  | EHOSTDOWN -> "EHOSTDOWN"
  | EBUSY -> "EBUSY"
  | ETIMEDOUT -> "ETIMEDOUT"
  | ENOSPC -> "ENOSPC"

(* File identity: the data home cell plus an inode number local to it. *)
type fid = { home : cell_id; ino : int }

type generation = int

(* Logical page identity: the object the page belongs to plus the page
   offset within it (the IRIX "logical page id": tag + offset). *)
type obj_tag =
  | File_obj of fid
  | Anon_obj of { cow_home : cell_id; node_id : int }

type logical_id = { tag : obj_tag; page : int }

(* Page frame data structure. Every cell has a pfdat for each frame it
   owns; *extended pfdats* are allocated dynamically to name a remote
   page (logical-level import) or a borrowed remote frame (physical-level
   borrow). The logical-level and physical-level state machines use
   separate fields so a frame can be simultaneously loaned and imported
   back (the CC-NUMA placement optimization of Section 5.5). *)
type pfdat = {
  pfn : int;
  table_cell : cell_id; (* whose pfdat table this entry lives in *)
  mutable lid : logical_id option;
  mutable dirty : bool;
  mutable refs : int;
  mutable pins : int;
      (* short-term holds by in-flight kernel operations (e.g. a locate
         batch between page-in and export): keeps the frame out of
         reclaim/swap without counting as a process mapping *)
  (* logical level *)
  mutable exported_to : cell_id list; (* data-home side: client cells *)
  mutable imported_from : cell_id option; (* client side: the data home *)
  mutable write_granted_to : cell_id list; (* firewall grants outstanding *)
  (* physical level *)
  mutable loaned_to : cell_id option; (* memory-home side *)
  mutable borrowed_from : cell_id option; (* data-home side *)
  mutable extended : bool;
  (* import cache *)
  mutable cached : bool;
      (* client side: a released read-only import parked in the cell's
         import cache for RPC-free re-access *)
  mutable import_gen : generation;
      (* file generation the data home reported when this binding was
         imported; a parked binding is only valid while the home's
         generation still equals it *)
  mutable salvaged_from : cell_id option;
      (* client side: a local copy of a clean page rescued from a dead
         cell whose memory outlived its processors; dropped when that
         home reintegrates *)
}

(* A file homed on some cell. [disk_block] is its start block on the data
   home's disk; pages cached in memory live in the pfdat table. *)
type file = {
  fid : fid;
  path : string;
  mutable size : int;
  mutable generation : generation;
      (* bumped when a dirty page is preemptively discarded *)
  mutable disk_block : int;
  mutable cached_pages : (int, pfdat) Hashtbl.t; (* page index -> frame *)
  mutable disk_content : Bytes.t; (* stable storage contents *)
  mutable unlinked : bool;
}

type vnode =
  | Local_vnode of file
  | Shadow_vnode of { fid : fid; path : string; data_home : cell_id }

let vnode_fid = function
  | Local_vnode f -> f.fid
  | Shadow_vnode s -> s.fid

let vnode_path = function
  | Local_vnode f -> f.path
  | Shadow_vnode s -> s.path

(* Open file description; [opened_gen] implements the generation-number
   check: accesses through a descriptor opened before a discard get EIO. *)
type fd = {
  fd_num : int;
  vnode : vnode;
  mutable pos : int;
  opened_gen : generation;
  fd_writable : bool;
}

(* Reference to a copy-on-write tree node serialized in the kernel memory
   of [cow_cell]. *)
type cow_ref = { cow_cell : cell_id; cow_addr : int }

type region_kind =
  | File_region of vnode * int (* starting page within the file *)
  | Anon_region of cow_ref

type region = {
  start_page : int; (* virtual page number *)
  npages : int;
  kind : region_kind;
  reg_writable : bool;
  mutable opened_gen : generation;
}

(* A virtual-to-physical mapping held by a process: enough to model TLB
   flushes and remote-mapping removal during recovery. *)
type mapping = {
  map_lid : logical_id;
  map_pf : pfdat;
  map_writable : bool;
}

type proc_state = Proc_running | Proc_suspended | Proc_zombie

type process = {
  pid : pid;
  mutable proc_cell : cell_id;
  mutable assigned_node : int; (* the node whose CPU runs this process *)
  mutable pname : string;
  mutable thread : Sim.Engine.thread option;
  mutable regions : region list;
  mutable mappings : (int, mapping) Hashtbl.t; (* virtual page -> mapping *)
  mutable fds : (int, fd) Hashtbl.t;
  mutable next_fd : int;
  mutable pstate : proc_state;
  mutable exit_code : int option;
  mutable killed_by_failure : bool;
  exit_ivar : int Sim.Ivar.t;
  mutable children : process list;
  mutable uses_cells : cell_id list; (* cells whose resources it depends on *)
}

(* Universal payload for RPC arguments/results; each subsystem extends it. *)
type payload = ..

type payload += P_unit | P_int of int | P_error of errno

type rpc_outcome = (payload, errno) result

(* What an interrupt-level handler decides to do with a request. *)
type handler_action =
  | Immediate of rpc_outcome (* serviced entirely at interrupt level *)
  | Queued of (unit -> rpc_outcome) (* must block: run in a server process *)

type cell_status = Cell_up | Cell_recovering | Cell_down

(* Kernel heap for structures published to other cells (serialized into
   simulated physical memory so careful references and corruptions are
   genuine). *)
type kmem = {
  kmem_base : int; (* physical byte address *)
  kmem_limit : int;
  mutable kmem_next : int;
  mutable kmem_free : (int * int) list; (* (addr, size) free blocks *)
}

type pending_call = {
  call_id : int;
  mutable reply : rpc_outcome option;
  call_done : rpc_outcome Sim.Ivar.t;
}

(* Server-side at-most-once state, kept per client cell. A retransmitted
   request whose call id is already present is answered from the cached
   reply (or silently suppressed while the original is still executing)
   instead of re-executed. *)
type rpc_reply_state =
  | Reply_in_progress (* original request is still executing *)
  | Reply_done of rpc_outcome (* completed: retransmits resend this *)

type rpc_session = {
  mutable rs_epoch : int; (* client incarnation the cache is valid for *)
  mutable rs_max_call : int; (* highest call id seen (prune watermark) *)
  rs_replies : (int, rpc_reply_state) Hashtbl.t; (* call id -> state *)
}

(* Per-file sequential-fault detector driving the adaptive read-ahead
   window: [ra_last] is the highest file page the last locate fetched,
   [ra_window] the number of pages the next sequential miss will ask for. *)
type ra_stream = { mutable ra_last : int; mutable ra_window : int }

type cell = {
  cell_id : cell_id;
  cell_nodes : int list; (* node ids owned throughout execution *)
  boss_node : int; (* first node: hosts published kernel data *)
  mutable cstatus : cell_status;
  mutable mem_alive : bool;
      (* Cell_down but the nodes' memory still answers remote reads: the
         CXL pooled-memory failure mode (processors dead, memory alive) *)
  mutable live_set : cell_id list; (* cells this cell believes are up *)
  (* pfdat tables *)
  page_hash : (logical_id, pfdat) Hashtbl.t;
  frames : (int, pfdat) Hashtbl.t; (* by pfn: own + borrowed frames *)
  mutable free_frames : int list;
  mutable free_frame_count : int;
      (* maintained alongside [free_frames] so Wax's once-per-period
         publish (and every pressure check) is O(1), not O(free list) *)
  mutable total_frames : int; (* frames owned at boot, for pressure pcts *)
  mutable reserved_loans : int list; (* own frames currently loaned out *)
  (* fs *)
  files : (string, file) Hashtbl.t; (* files homed on this cell, by path *)
  files_by_ino : (int, file) Hashtbl.t;
  mutable next_ino : int;
  mutable next_disk_block : int;
  (* kernel heap in simulated memory *)
  kmem : kmem;
  clock_addr : int; (* published clock word *)
  (* processes *)
  mutable processes : process list;
  mutable user_gate_open : bool;
  mutable gate_waiters : Sim.Engine.thread list;
  (* rpc *)
  mutable next_call_id : int;
  mutable incarnation : int;
      (* bumped on every reintegration; folded into call ids and checked
         against message epochs so pre-reboot traffic is discarded *)
  rpc_rng : Sim.Prng.t; (* deterministic backoff jitter *)
  pending_calls : (int, pending_call) Hashtbl.t;
  rpc_sessions : (cell_id, rpc_session) Hashtbl.t;
      (* per-client at-most-once reply cache (this cell as server) *)
  rpc_queue : (unit -> unit) Sim.Mailbox.t; (* queued-service requests *)
  release_queue : pfdat Sim.Mailbox.t;
      (* imports released by exiting processes, drained by a kernel thread *)
  mutable import_cache : pfdat list;
      (* released read-only imports parked for RPC-free re-access, most
         recently used first; bounded by Params.import_cache_pages *)
  readahead : (fid, ra_stream) Hashtbl.t;
      (* per-file sequential fault streams (remote files only) *)
  pending_releases : (logical_id, int) Hashtbl.t;
      (* lids with a release RPC in flight to their data home. A re-import
         of such a lid must wait for the release to land, or the stale
         release would retire the export record of the *new* binding at
         the home (lost invalidation channel). *)
  mutable flush_epoch : int;
      (* bumped by recovery's import flush. A fault thread already past
         the gate when recovery begins snapshots this before its locate
         RPC: a mismatch afterwards means the reply predates the homes'
         preemptive discard — its frame numbers and the export record it
         created are gone, so the fault must relocate, not bind. *)
  swap_table : (logical_id, int * Bytes.t) Hashtbl.t;
      (* anonymous pages swapped out to this cell's swap partition:
         lid -> (disk block within the swap area, contents) *)
  mutable swap_blocks_used : int;
  mutable swap_free_blocks : int list;
      (* swap blocks freed by swap-ins, reused before the bump allocator *)
  (* failure detection / recovery *)
  mutable suspected : cell_id list;
  mutable alert_votes : (cell_id * cell_id) list; (* accuser, suspect *)
  mutable false_alerts : (cell_id * int) list; (* accuser -> vote-downs *)
  mutable in_recovery : bool;
  mutable recovery_active : bool;
      (* a recovery thread for this cell exists (set at spawn, cleared when
         the thread leaves its round loop); lets a nested-failure restart
         know whether to re-spawn or rely on the barrier abort *)
  mutable recovery_barrier_joined : int * int; (* (round, barrier) joined *)
  (* wax hints *)
  mutable alloc_preference : cell_id list;
  mutable clock_hand_targets : cell_id list; (* cells under memory pressure *)
  mutable swap_hint : int;
      (* frames the Wax coordinator suggests this cell push to swap; the
         cell's own Wax thread validates and acts on it (hints-only
         contract: the coordinator never swaps on another cell's behalf) *)
  mutable salvaged_by_home : (cell_id, pfdat) Hashtbl.t;
      (* index of salvaged pages by their dead data home, so reintegration
         purges in O(salvaged from that home) instead of sweeping every
         page of every survivor; entries are validated against [frames]
         at purge time (a reclaimed frame may leave a stale entry) *)
  mutable rr_cpu : int; (* round-robin CPU assignment cursor *)
  mutable wax_slot : int; (* published word Wax reads/writes *)
  (* threads owned by this kernel, killed on panic *)
  mutable kernel_threads : Sim.Engine.thread list;
  counters : Sim.Stats.registry;
  fault_in_cache_ns : Sim.Stats.summary;
  remote_fault_ns : Sim.Stats.summary;
}

(* The whole Hive system: machine + cells + global configuration. *)
type system = {
  machine : Flash.Machine.t;
  eng : Sim.Engine.t;
  mcfg : Flash.Config.t;
  params : Params.t;
  cells : cell array;
  node_owner : cell_id array;
      (* node -> owning cell, fixed at boot; O(1) [cell_of_node] instead
         of a scan over every cell's node list *)
  mutable last_boot_ns : int64;
      (* simulated time the slowest cell finished booting (the large-
         machine boot-cost metric) *)
  proc_table : (pid, process) Hashtbl.t;
  mutable next_pid : int;
  mutable use_agreement_oracle : bool;
  multicellular : bool; (* false = SMP-OS (IRIX-like) baseline mode *)
  mutable recovery_in_progress : bool;
  mutable recovery_events : (cell_id * int64) list;
      (* (cell, time it entered recovery) for detection-latency measurement *)
  mutable recovery_complete_at : int64;
  mutable recovery_barrier1 : Sim.Barrier.t option;
  mutable recovery_barrier2 : Sim.Barrier.t option;
  (* Cascading-failure state: the current round's confirmed dead set, a
     round counter bumped on initiation and on every nested-failure
     restart, and whether a double-barrier round is actually in flight
     (recovery_in_progress also covers the agreement phase before a round
     and the master's diagnostics after it). *)
  mutable recovery_dead : cell_id list;
  mutable recovery_round : int;
  mutable recovery_round_active : bool;
  mutable recovery_participants : cell_id list;
      (* survivors driving the current recovery; a partitioned accuser that
         cannot reach any of them must run its own agreement round rather
         than silently deferring to a recovery it cannot observe *)
  (* Split-brain oracle state: which cells currently hold recovery
     mastership, and every instant at which two held it concurrently.
     Latched continuously (at master_begin time, via the event bus), not
     recomputed post-quiesce, so a transient dual-master window can never
     escape the checker by standing down before the run ends. *)
  mutable masters_active : cell_id list;
  mutable master_overlaps : string list;
  mutable on_cell_death : (cell_id -> unit) option;
      (* panic/hardware-failure hook: lets an in-flight recovery round
         restart with an enlarged dead set when a participant dies *)
  mutable reintegrate_fn : (cell_id -> unit) option;
      (* installed by System at boot; the recovery master drives it after
         diagnostics pass to reboot and reintegrate repaired cells *)
  mutable wax_restart : (system -> unit) option;
  mutable wax_threads : Sim.Engine.thread list;
  mutable wax_incarnation : int;
  mutable on_hint : (cell -> suspect:cell_id -> reason:string -> unit) option;
      (* installed by the failure-detection module at boot *)
  sys_counters : Sim.Stats.registry;
  mutable trace_faults : bool;
  (* At-most-once audit trail, read by Invariants: how many times each
     non-idempotent op body actually ran, keyed by the server's identity
     (cell, incarnation) and the call id; plus any stale-epoch message a
     cell accepted (always a bug — recorded only when the epoch check is
     deliberately disabled for planted-bug demos). *)
  rpc_executions : (cell_id * int * int, string * int) Hashtbl.t;
  mutable rpc_stale_accepts : string list;
  (* observability *)
  events : Sim.Event.bus;
  rpc_client_ns : (string, Sim.Stats.histogram) Hashtbl.t;
      (* per-op whole-call latency seen by clients *)
  rpc_server_ns : (string, Sim.Stats.histogram) Hashtbl.t;
      (* per-op handler execution time on servers *)
  op_ns : (string, Sim.Stats.histogram) Hashtbl.t;
      (* user-visible end-to-end operation latency by op class (the server
         workload keys these as "class|phase", e.g. "server.read|before") *)
  mutable recovery_timeline : (string * int64) list;
      (* (phase, time) markers from the most recent recovery, oldest first *)
}

let cell_of_node (sys : system) node =
  if node < 0 || node >= Array.length sys.node_owner then
    invalid_arg "cell_of_node: node not owned by any cell";
  sys.cells.(sys.node_owner.(node))

(* Free-frame pool mutators: every site goes through these so
   [free_frame_count] can never drift from the list. *)

let push_free (c : cell) pfn =
  c.free_frames <- pfn :: c.free_frames;
  c.free_frame_count <- c.free_frame_count + 1

(* Append variant: borrowed frames go to the tail so local frames are
   preferred by allocation. *)
let push_free_last (c : cell) pfn =
  c.free_frames <- c.free_frames @ [ pfn ];
  c.free_frame_count <- c.free_frame_count + 1

let take_free (c : cell) =
  match c.free_frames with
  | pfn :: rest ->
    c.free_frames <- rest;
    c.free_frame_count <- c.free_frame_count - 1;
    Some pfn
  | [] -> None

let remove_free (c : cell) pfn =
  let removed = ref 0 in
  c.free_frames <-
    List.filter
      (fun p ->
        if p = pfn then begin
          incr removed;
          false
        end
        else true)
      c.free_frames;
  c.free_frame_count <- c.free_frame_count - !removed

let set_free (c : cell) pfns =
  c.free_frames <- pfns;
  c.free_frame_count <- List.length pfns

let cell sys id = sys.cells.(id)

let boss_proc (c : cell) = c.boss_node

let cell_alive (c : cell) = c.cstatus = Cell_up

let page_size (sys : system) = sys.mcfg.Flash.Config.page_size

(* Pages per file page unit: files are paged in units of the machine page. *)
let bump ?(by = 1) (c : cell) name = Sim.Stats.bump ~by c.counters name

let sys_bump ?(by = 1) (sys : system) name =
  Sim.Stats.bump ~by sys.sys_counters name

let hist_for (tbl : (string, Sim.Stats.histogram) Hashtbl.t) name =
  match Hashtbl.find_opt tbl name with
  | Some h -> h
  | None ->
    let h = Sim.Stats.histogram () in
    Hashtbl.replace tbl name h;
    h

(* Record a recovery-phase marker: appended to the timeline (kept in order)
   and emitted on the event bus. *)
let note_phase (sys : system) ?cell phase =
  let t = Sim.Engine.now sys.eng in
  sys.recovery_timeline <- sys.recovery_timeline @ [ (phase, t) ];
  Sim.Event.instant sys.events ?cell ~cat:Sim.Event.Recovery phase

(* Recovery-mastership latch: the split-brain oracle. [master_begin] is
   called the instant a cell assumes mastership of a recovery round; if
   any other cell still holds mastership the overlap is latched right
   here — the invariant checker later reports it even if one master has
   long since stood down. *)
let master_begin (sys : system) (cell_id : cell_id) =
  let t = Sim.Engine.now sys.eng in
  (* A master whose cell has since been killed never ran [master_end];
     its stale latch must not count as a concurrent live master. *)
  sys.masters_active <-
    List.filter (fun id -> cell_alive (cell sys id)) sys.masters_active;
  List.iter
    (fun other ->
      if other <> cell_id then
        sys.master_overlaps <-
          sys.master_overlaps
          @ [
              Printf.sprintf
                "cells %d and %d were concurrent recovery masters at t=%Ldns"
                other cell_id t;
            ])
    sys.masters_active;
  if not (List.mem cell_id sys.masters_active) then
    sys.masters_active <- sys.masters_active @ [ cell_id ];
  note_phase sys ~cell:cell_id
    (Printf.sprintf "recovery.master_begin.cell%d" cell_id)

let master_end (sys : system) (cell_id : cell_id) =
  if List.mem cell_id sys.masters_active then begin
    sys.masters_active <-
      List.filter (fun id -> id <> cell_id) sys.masters_active;
    note_phase sys ~cell:cell_id
      (Printf.sprintf "recovery.master_end.cell%d" cell_id)
  end
