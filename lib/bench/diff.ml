(* Trajectory regression gate: see the .mli. *)

type finding = {
  f_area : string;
  f_scenario : string;
  f_dims : Scenario.dims;
  f_metric : string;
  f_baseline : float;
  f_fresh : float;
  f_change_pct : float;
}

type verdict = {
  regressions : finding list;
  improvements : finding list;
  notes : string list;
  compared : int;
}

let default_threshold = 0.20

(* Signed relative change of [fresh] against [baseline], oriented so that
   positive = worse for the metric's direction. A zero baseline with a
   nonzero fresh value counts as a full-scale move. *)
let adverse_change (dir : Scenario.direction) ~baseline ~fresh =
  let rel =
    if baseline = 0. then (if fresh = 0. then 0. else Float.infinity)
    else (fresh -. baseline) /. Float.abs baseline
  in
  match dir with
  | Scenario.Lower_better -> rel
  | Scenario.Higher_better -> -.rel
  | Scenario.Info -> 0.

let signed_change ~baseline ~fresh =
  if baseline = 0. then if fresh = 0. then 0. else Float.infinity
  else (fresh -. baseline) /. Float.abs baseline *. 100.

let compare_reports ?(threshold = default_threshold) ~baseline ~fresh () =
  let regressions = ref [] in
  let improvements = ref [] in
  let notes = ref [] in
  let compared = ref 0 in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let fresh_area a =
    List.find_opt (fun (r : Sweep.report) -> r.Sweep.a_area = a) fresh
  in
  List.iter
    (fun (brep : Sweep.report) ->
      match fresh_area brep.Sweep.a_area with
      | None -> note "area %s: no fresh sweep (skipped)" brep.Sweep.a_area
      | Some frep ->
        List.iter
          (fun (brow : Sweep.row) ->
            let key (r : Sweep.row) =
              (r.Sweep.r_scenario, r.Sweep.r_dims)
            in
            match
              List.find_opt
                (fun r -> key r = key brow)
                frep.Sweep.a_rows
            with
            | None ->
              note "%s %s [%s]: not in fresh sweep (skipped)"
                brep.Sweep.a_area brow.Sweep.r_scenario
                (Scenario.dims_label brow.Sweep.r_dims)
            | Some frow ->
              List.iter
                (fun (bm : Scenario.metric) ->
                  match
                    List.find_opt
                      (fun (m : Scenario.metric) ->
                        m.Scenario.m_name = bm.Scenario.m_name)
                      frow.Sweep.r_metrics
                  with
                  | None ->
                    note "%s %s [%s] %s: metric missing from fresh sweep"
                      brep.Sweep.a_area brow.Sweep.r_scenario
                      (Scenario.dims_label brow.Sweep.r_dims)
                      bm.Scenario.m_name
                  | Some fm ->
                    if bm.Scenario.m_dir <> Scenario.Info then begin
                      incr compared;
                      let adverse =
                        adverse_change bm.Scenario.m_dir
                          ~baseline:bm.Scenario.m_value
                          ~fresh:fm.Scenario.m_value
                      in
                      let finding =
                        {
                          f_area = brep.Sweep.a_area;
                          f_scenario = brow.Sweep.r_scenario;
                          f_dims = brow.Sweep.r_dims;
                          f_metric = bm.Scenario.m_name;
                          f_baseline = bm.Scenario.m_value;
                          f_fresh = fm.Scenario.m_value;
                          f_change_pct =
                            signed_change ~baseline:bm.Scenario.m_value
                              ~fresh:fm.Scenario.m_value;
                        }
                      in
                      if adverse > threshold then
                        regressions := finding :: !regressions
                      else if adverse < -.threshold then
                        improvements := finding :: !improvements
                    end)
                brow.Sweep.r_metrics)
          brep.Sweep.a_rows)
    baseline;
  (* Fresh rows with no baseline: future trajectory entries, noted only. *)
  List.iter
    (fun (frep : Sweep.report) ->
      let base_area =
        List.find_opt
          (fun (r : Sweep.report) -> r.Sweep.a_area = frep.Sweep.a_area)
          baseline
      in
      List.iter
        (fun (frow : Sweep.row) ->
          let missing =
            match base_area with
            | None -> true
            | Some brep ->
              not
                (List.exists
                   (fun (r : Sweep.row) ->
                     r.Sweep.r_scenario = frow.Sweep.r_scenario
                     && r.Sweep.r_dims = frow.Sweep.r_dims)
                   brep.Sweep.a_rows)
          in
          if missing then
            note "%s %s [%s]: new row, no baseline yet" frep.Sweep.a_area
              frow.Sweep.r_scenario
              (Scenario.dims_label frow.Sweep.r_dims))
        frep.Sweep.a_rows)
    fresh;
  {
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    notes = List.rev !notes;
    compared = !compared;
  }

let print_finding ~tag f =
  Printf.printf "%s %s/%s [%s] %s: %s -> %s (%+.1f%%)\n" tag f.f_area
    f.f_scenario
    (Scenario.dims_label f.f_dims)
    f.f_metric
    (Sim.Json.float_repr f.f_baseline)
    (Sim.Json.float_repr f.f_fresh)
    f.f_change_pct

let run_dirs ?(threshold = default_threshold) ~baseline_dir ~fresh_dir () =
  match (Sweep.load_dir baseline_dir, Sweep.load_dir fresh_dir) with
  | Error e, _ ->
    Printf.eprintf "bench diff: baseline %s: %s\n" baseline_dir e;
    2
  | _, Error e ->
    Printf.eprintf "bench diff: fresh %s: %s\n" fresh_dir e;
    2
  | Ok baseline, Ok fresh ->
    if baseline = [] then begin
      Printf.eprintf "bench diff: no BENCH_*.json in baseline %s\n"
        baseline_dir;
      2
    end
    else begin
      let v = compare_reports ~threshold ~baseline ~fresh () in
      List.iter (print_finding ~tag:"REGRESSION") v.regressions;
      List.iter (print_finding ~tag:"improvement") v.improvements;
      List.iter (fun n -> Printf.printf "note: %s\n" n) v.notes;
      Printf.printf
        "bench diff: %d metric(s) compared, %d regression(s), %d \
         improvement(s) at %.0f%% threshold\n"
        v.compared
        (List.length v.regressions)
        (List.length v.improvements)
        (threshold *. 100.);
      if v.regressions <> [] then 1 else 0
    end
