(* Quickstart: boot a four-cell Hive on the simulated FLASH machine, run a
   couple of processes that share a file across cells, and print what the
   kernel did.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Create a simulation engine and boot Hive: four nodes, four cells
        (maximum fault containment: one cell per processor). *)
  let eng = Sim.Engine.create () in
  let sys = Hive.System.boot ~ncells:4 eng in
  Printf.printf "booted %d cells on a %d-node FLASH machine\n"
    (Array.length sys.Hive.Types.cells)
    (Flash.Config.default.Flash.Config.nodes);

  (* 2. A process on cell 0 creates a file. "/tmp" is homed on cell 0, so
        cell 0 is the data home for this file. *)
  let writer =
    Hive.Process.spawn sys sys.Hive.Types.cells.(0) ~name:"writer"
      (fun sys p ->
        let fd =
          Hive.Syscall.creat sys p
            ~content:(Bytes.of_string "hello from cell 0")
            "/tmp/hello.txt"
        in
        Hive.Syscall.close sys p ~fd;
        Hive.Syscall.sync sys p)
  in
  ignore
    (Hive.System.run_until_processes_done sys ~deadline:10_000_000_000L
       [ writer ]);

  (* 3. A process on cell 3 reads it: the page is located at the data home
        by RPC, exported there, and imported into cell 3's page cache
        (logical-level memory sharing, Section 5.2 of the paper). *)
  let reader =
    Hive.Process.spawn sys sys.Hive.Types.cells.(3) ~name:"reader"
      (fun sys p ->
        let fd = Hive.Syscall.openf sys p "/tmp/hello.txt" in
        let data = Hive.Syscall.read sys p ~fd ~len:17 in
        Printf.printf "cell 3 read through the shared page cache: %S\n"
          (Bytes.to_string data);
        Hive.Syscall.close sys p ~fd)
  in
  ignore
    (Hive.System.run_until_processes_done sys ~deadline:10_000_000_000L
       [ reader ]);

  (* 4. Fork a child across a cell boundary (single-system image). *)
  let parent =
    Hive.Process.spawn sys sys.Hive.Types.cells.(0) ~name:"parent"
      (fun sys p ->
        let child =
          Hive.Syscall.fork sys p ~on_cell:2 ~name:"remote-child"
            (fun sys c ->
              Printf.printf "child pid %d running on cell %d\n"
                (Hive.Syscall.getpid c) (Hive.Syscall.getcell c);
              Hive.Syscall.compute sys c 1_000_000L)
        in
        let code = Hive.Syscall.wait sys p child in
        Printf.printf "child exited with %d\n" code)
  in
  ignore
    (Hive.System.run_until_processes_done sys ~deadline:10_000_000_000L
       [ parent ]);

  (* 5. Show the kernel activity counters. *)
  Printf.printf "\nper-cell kernel activity:\n";
  Array.iter
    (fun (c : Hive.Types.cell) ->
      Printf.printf "  cell %d: rpc calls %d served %d, imports %d, exports %d\n"
        c.Hive.Types.cell_id
        (Sim.Stats.value c.Hive.Types.counters "rpc.calls")
        (Sim.Stats.value c.Hive.Types.counters "rpc.served")
        (Sim.Stats.value c.Hive.Types.counters "share.imports")
        (Sim.Stats.value c.Hive.Types.counters "share.exports"))
    sys.Hive.Types.cells;
  Printf.printf "\nsimulated time elapsed: %.3f ms\n"
    (Int64.to_float (Sim.Engine.now eng) /. 1e6)
