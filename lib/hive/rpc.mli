(** Intercell RPC on top of the SIPS hardware primitive (Section 6).

   The paper's SIPS is "as reliable as a cache miss"; our fault model is
   harsher (degraded links can drop, duplicate or delay messages, and a
   node failure eats messages in flight), so the transport provides
   at-most-once semantics: bounded client retransmission with exponential
   backoff + jitter, a per-client reply cache on the server so a
   retransmitted request is answered from cache instead of re-executed,
   and epoch-tagged call ids (the cell incarnation number) so traffic
   from before a failure/reboot is discarded. A failure hint is reported
   only after every retransmission is exhausted.

   The base system services requests at interrupt level on the receiving
   node. A queuing service and server-process pool handles longer-latency
   requests (those that may block, e.g. for I/O): an initial interrupt-level
   RPC launches the operation and a completion reply returns the result.

   Operations are identified by {!Op.t} descriptors declared once with
   {!Op.declare}: registration and calls both take the descriptor, so an
   undeclared or misspelled op name cannot compile, sizes cannot be
   mismatched between call sites, and the descriptor keys the per-op
   latency histograms. *)

(** Typed RPC operation descriptors. *)
module Op : sig
  type t = private {
    name : string;
    arg_bytes : int; (* default request payload size *)
    reply_bytes : int; (* default reply payload size *)
    timeout_ns : int64 option; (* None = Params.rpc_timeout_ns *)
    idempotent : bool; (* replays harmless: skips the reply cache *)
    sheddable : bool; (* may be refused with EBUSY under server overload *)
  }

  (** Declare an operation; raises [Invalid_argument] on a duplicate name.
      Call once at module initialization. Declare [~idempotent:true] only
      for read-only ops whose re-execution is observably harmless.
      Declare [~sheddable:true] for interactive traffic the server may
      refuse with [EBUSY] when its queued-service backlog reaches
      [Params.rpc_queue_bound] or the cell is still mid-recovery; kernel
      ops are never shed. *)
  val declare :
    ?arg_bytes:int ->
    ?reply_bytes:int ->
    ?timeout_ns:int64 ->
    ?idempotent:bool ->
    ?sheddable:bool ->
    string ->
    t

  val name : t -> string

  (** Whether the named op was declared idempotent (false if unknown). *)
  val is_idempotent : string -> bool

  (** Whether the named op was declared sheddable (false if unknown). *)
  val is_sheddable : string -> bool

  (** Every declared op, sorted by name (for metrics export). *)
  val all : unit -> t list
end

type Flash.Sips.message +=
    M_request of { call_id : int; src_cell : int; src_epoch : int;
      attempt : int; op : string; arg : Types.payload; arg_bytes : int;
      deadline_ns : int64;
          (** absolute client deadline propagated with the request,
              0 = none; the server pool drops queued requests whose
              deadline has already passed *)
    }
  | M_reply of { call_id : int; dst_epoch : int;
      outcome : Types.rpc_outcome;
    }

type handler =
    Types.system ->
    Types.cell ->
    src:Types.cell_id -> Types.payload -> Types.handler_action
val handlers : (string, handler) Hashtbl.t
val register : Op.t -> handler -> unit
val registered : Op.t -> bool
val marshal_cost : Types.system -> int -> int64
val report_hint :
  Types.system ->
  Types.cell -> Types.cell_id -> string -> unit
exception Rpc_failed of Types.cell_id * string
val send_reply :
  Types.system ->
  Types.cell ->
  src_cell:int -> src_epoch:int -> call_id:int -> Types.rpc_outcome -> unit
val service_request :
  Types.system -> Types.cell -> Flash.Sips.envelope -> unit
val service_reply :
  Types.system -> Types.cell -> Flash.Sips.envelope -> unit
val start_threads : Types.system -> Types.cell -> unit

(** Call [op] on [target]. Payload sizes and the timeout default from the
    descriptor; the optional arguments override them for variable-size
    payloads. The timeout is per attempt: a call retransmits up to
    [Params.rpc_max_retries] times before returning [Error EHOSTDOWN].
    [deadline_ns] is the end-to-end budget spanning every attempt and
    backoff sleep (default [Params.rpc_deadline_ns]; 0 = unlimited):
    when it runs out the call stops retransmitting and returns
    [Error ETIMEDOUT] without raising a failure hint. *)
val call :
  Types.system ->
  from:Types.cell ->
  target:Types.cell_id ->
  op:Op.t ->
  ?arg_bytes:int ->
  ?reply_bytes:int ->
  ?timeout_ns:int64 ->
  ?deadline_ns:int64 -> Types.payload -> Types.rpc_outcome
val call_exn :
  Types.system ->
  from:Types.cell ->
  target:Types.cell_id ->
  op:Op.t ->
  ?arg_bytes:int ->
  ?reply_bytes:int ->
  ?timeout_ns:int64 ->
  ?deadline_ns:int64 -> Types.payload -> Types.payload
