(** Deterministic pseudo-random number generator (splitmix64).

    Simulations must be reproducible, so no global or OS randomness is used
    anywhere in the repository; every source of variation derives from a
    seeded [Prng.t]. *)

type t

val create : int -> t

(** Seed from a full 64-bit value (fuzzer seeds are 64-bit; [create] folds
    through [int] and loses the sign bit). *)
val of_int64 : int64 -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** Derive an independent generator (for per-thread determinism). *)
val split : t -> t

(** Uniform integer in [\[0, bound)]. *)
val int : t -> int -> int

(** Uniform int64 in [\[0, bound)]. *)
val int64 : t -> int64 -> int64

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

val bool : t -> bool

(** Uniform choice from a non-empty array. *)
val pick : t -> 'a array -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** Exponentially distributed value with the given mean (e.g. Poisson
    inter-arrival gaps). Raises on a non-positive mean. *)
val exponential : t -> mean:float -> float

(** Poisson-distributed count with mean [lambda] (Knuth's product-of-
    uniforms method). Raises unless [0 < lambda <= 700]. *)
val poisson : t -> float -> int

(** Zipf popularity distribution over ranks [0..n-1]: rank [i] has weight
    [1/(i+1)^s] ([s = 0] is uniform). The CDF is precomputed at [zipf]
    time so each {!zipf_draw} is one uniform plus a binary search. *)
type zipf

val zipf : n:int -> s:float -> zipf

(** Draw a rank in [\[0, n)] from the distribution. *)
val zipf_draw : t -> zipf -> int
