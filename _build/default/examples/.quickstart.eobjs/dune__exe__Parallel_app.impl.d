examples/parallel_app.ml: Array Hive List Printf Sim Workloads
