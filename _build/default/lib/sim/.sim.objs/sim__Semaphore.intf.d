lib/sim/semaphore.mli: Engine
