(** The file system: a vnode layer with a unified, cross-cell page cache.

   Every file has a *data home* cell (deterministic from its path) that
   owns its backing store and page cache. Processes on other cells open
   the file through a shadow vnode and bind its pages into their own pfdat
   tables with export/import (Section 5.2): a fault or read that misses
   locally sends an RPC to the data home, which loads the page from disk
   if needed, exports it, and returns the frame address. Faults that hit
   in the data home's page cache are serviced entirely at interrupt level;
   only those requiring disk I/O go to the queued server pool.

   Preemptive discard support: when a dirty page is discarded after a cell
   failure, the file's generation number is bumped. Descriptors (and
   mapped regions) opened before the failure carry the old generation and
   get EIO; files opened afterwards read whatever is stable on disk
   (Section 4.2, "preemptive discard"). *)

type Types.payload +=
    P_lookup of { path : string; }
  | P_attrs of { ino : int; size : int; generation : int; }
  | P_locate of {
      ino : int;
      page : int;
      npages : int;
      writable : bool;
      gen : int;
    }
  | P_located of { pages : (int * int) list; gen : int; }
  | P_create of { path : string; content : Bytes.t; }
  | P_created of { ino : int; gen : int }
  | P_dirty of { ino : int; page : int; }
  | P_setsize of { ino : int; size : int; }
val lookup_op : Rpc.Op.t
val locate_op : Rpc.Op.t
val create_op : Rpc.Op.t
val setsize_op : Rpc.Op.t
val locate_batch : int
val page_size : Types.system -> int
val home_of_path : Types.system -> string -> int
val mem : Types.system -> Flash.Memory.t
val frame_addr : Types.system -> Flash.Addr.pfn -> Flash.Addr.t
val find_local : Types.cell -> string -> Types.file option
val find_by_ino : Types.cell -> int -> Types.file option
val create_local :
  Types.system ->
  Types.cell -> path:string -> content:bytes -> Types.file
val page_in :
  Types.system ->
  Types.cell -> Types.file -> int -> Types.pfdat
val stage_page :
  Types.system ->
  Types.cell -> Types.file -> int -> Types.pfdat -> unit
val writeback :
  Types.system ->
  Types.cell -> Types.file -> int -> Types.pfdat -> unit
val sync_file :
  Types.system -> Types.cell -> Types.file -> unit
val sync_cell : Types.system -> Types.cell -> unit
val note_discard :
  Types.system ->
  Types.cell -> Types.file -> page:int -> dirty:bool -> unit
exception Stale of Types.errno
val check_gen :
  Types.system ->
  Types.cell -> Types.vnode -> Types.generation -> unit
val open_file :
  Types.system ->
  Types.cell ->
  path:string ->
  (Types.vnode * Types.generation, Types.errno) result
val create_file :
  Types.system ->
  Types.cell ->
  path:string ->
  content:Bytes.t ->
  (Types.vnode * Types.generation, Types.errno) result
val get_page :
  Types.system ->
  Types.cell ->
  Types.vnode ->
  page:int ->
  writable:bool ->
  opened_gen:Types.generation ->
  usage:[ `Fault | `Syscall ] -> (Types.pfdat, Types.errno) result
val read :
  Types.system ->
  Types.cell ->
  Types.vnode ->
  opened_gen:Types.generation ->
  pos:int -> len:int -> (bytes, Types.errno) result
val write :
  Types.system ->
  Types.cell ->
  Types.vnode ->
  opened_gen:Types.generation ->
  pos:int -> bytes -> (int, Types.errno) result
val release_file_imports :
  Types.system -> Types.cell -> Types.vnode -> unit
val file_size :
  Types.system ->
  Types.cell -> Types.vnode -> (int, Types.errno) result
val unlink :
  Types.system ->
  Types.cell -> string -> (unit, Types.errno) result
val registered : bool ref
val register_handlers : unit -> unit
