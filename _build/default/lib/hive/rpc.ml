(* Intercell RPC on top of the SIPS hardware primitive (Section 6).

   The subsystem is much leaner than classical distributed-system RPC: SIPS
   is reliable, so there is no retransmission or duplicate suppression; a
   cache line (128 bytes) carries most argument/result records, and larger
   data is passed by reference through shared memory (costed as a copy plus
   allocation, per Table 5.2).

   The base system services requests at interrupt level on the receiving
   node. A queuing service and server-process pool handles longer-latency
   requests (those that may block, e.g. for I/O): an initial interrupt-level
   RPC launches the operation and a completion reply returns the result. *)

type Flash.Sips.message +=
  | M_request of {
      call_id : int;
      src_cell : int;
      op : string;
      arg : Types.payload;
      arg_bytes : int;
    }
  | M_reply of { call_id : int; outcome : Types.rpc_outcome }

type handler =
  Types.system -> Types.cell -> src:Types.cell_id -> Types.payload ->
  Types.handler_action

let handlers : (string, handler) Hashtbl.t = Hashtbl.create 64

let register op h =
  if Hashtbl.mem handlers op then invalid_arg ("Rpc.register: duplicate " ^ op);
  Hashtbl.replace handlers op h

let registered op = Hashtbl.mem handlers op

(* Marshaling cost on one side of a call carrying [bytes] of payload:
   stub execution, plus, beyond one cache line, buffer allocation and a
   copy through shared memory. *)
let marshal_cost (sys : Types.system) bytes =
  let p = sys.Types.params in
  if bytes <= 0 then 0L
  else if bytes <= Flash.Sips.max_payload then p.Params.rpc_stub_marshal_ns
  else
    Int64.add
      (Int64.add p.Params.rpc_stub_marshal_ns p.Params.rpc_alloc_free_ns)
      (Flash.Config.copy_cost sys.Types.mcfg bytes)

let report_hint (sys : Types.system) (from : Types.cell) suspect reason =
  match sys.Types.on_hint with
  | Some f -> f from ~suspect ~reason
  | None -> ()

exception Rpc_failed of Types.cell_id * string

(* Send the reply for a completed request back to the caller. *)
let send_reply (sys : Types.system) (server : Types.cell) ~src_cell ~call_id
    outcome =
  let p = sys.Types.params in
  Sim.Engine.delay p.Params.rpc_server_reply_ns;
  let client_cell = sys.Types.cells.(src_cell) in
  try
    Flash.Sips.send
      (Flash.Machine.sips sys.Types.machine)
      ~from_proc:(Types.boss_proc server)
      ~to_node:(Types.boss_proc client_cell) ~kind:Flash.Sips.Reply ~size:64
      (M_reply { call_id; outcome })
  with Flash.Sips.Target_failed _ -> ()

(* Interrupt-level service of one incoming request. *)
let service_request (sys : Types.system) (server : Types.cell) env =
  let p = sys.Types.params in
  match env.Flash.Sips.msg with
  | M_request { call_id; src_cell; op; arg; arg_bytes } -> (
    Types.bump server "rpc.served";
    let cpu = Flash.Machine.cpu sys.Types.machine (Types.boss_proc server) in
    Flash.Cpu.steal sys.Types.eng cpu p.Params.rpc_server_dispatch_ns;
    if arg_bytes > Flash.Sips.max_payload then
      Sim.Engine.delay (marshal_cost sys arg_bytes);
    match Hashtbl.find_opt handlers op with
    | None ->
      send_reply sys server ~src_cell ~call_id (Error Types.EFAULT)
    | Some h -> (
      match h sys server ~src:src_cell arg with
      | Types.Immediate outcome ->
        send_reply sys server ~src_cell ~call_id outcome
      | Types.Queued f ->
        (* Longer-latency request: hand off to the server process pool;
           the completion reply is sent from the server process. *)
        Types.bump server "rpc.queued";
        Flash.Cpu.steal sys.Types.eng cpu p.Params.rpc_queue_handoff_ns;
        Sim.Mailbox.send sys.Types.eng server.Types.rpc_queue (fun () ->
            Sim.Engine.delay p.Params.rpc_context_switch_ns;
            let outcome = try f () with Types.Syscall_error e -> Error e in
            send_reply sys server ~src_cell ~call_id outcome)
      | exception Types.Syscall_error e ->
        send_reply sys server ~src_cell ~call_id (Error e)))
  | _ -> ()

(* Deliver one reply to the pending-call table. *)
let service_reply (sys : Types.system) (client : Types.cell) env =
  match env.Flash.Sips.msg with
  | M_reply { call_id; outcome } -> (
    match Hashtbl.find_opt client.Types.pending_calls call_id with
    | None -> () (* caller timed out and gave up *)
    | Some pc ->
      Hashtbl.remove client.Types.pending_calls call_id;
      Sim.Ivar.fill sys.Types.eng pc.Types.call_done outcome)
  | _ -> ()

(* Per-cell kernel threads: an interrupt dispatcher for requests, one for
   replies, and a pool of server processes for queued requests. *)
let start_threads (sys : Types.system) (cell : Types.cell) =
  let eng = sys.Types.eng in
  let sips = Flash.Machine.sips sys.Types.machine in
  let node = Types.boss_proc cell in
  let spawn name body =
    let thr = Sim.Engine.spawn eng ~name body in
    cell.Types.kernel_threads <- thr :: cell.Types.kernel_threads
  in
  spawn
    (Printf.sprintf "cell%d.rpc.reqs" cell.Types.cell_id)
    (fun () ->
      let rec loop () =
        match Flash.Sips.receive sips ~node ~kind:Flash.Sips.Request with
        | Some env ->
          service_request sys cell env;
          loop ()
        | None -> ()
      in
      loop ());
  spawn
    (Printf.sprintf "cell%d.rpc.replies" cell.Types.cell_id)
    (fun () ->
      let rec loop () =
        match Flash.Sips.receive sips ~node ~kind:Flash.Sips.Reply with
        | Some env ->
          service_reply sys cell env;
          loop ()
        | None -> ()
      in
      loop ());
  for i = 1 to sys.Types.params.Params.rpc_server_pool do
    spawn
      (Printf.sprintf "cell%d.rpc.pool%d" cell.Types.cell_id i)
      (fun () ->
        let rec loop () =
          match Sim.Mailbox.receive eng cell.Types.rpc_queue with
          | Some work ->
            work ();
            loop ()
          | None -> ()
        in
        loop ())
  done

(* Client side of a call. Returns the outcome, or [Error EHOSTDOWN] after a
   timeout or delivery failure (also reporting a failure hint, since an RPC
   timeout means the target cell is potentially failed). *)
let call (sys : Types.system) ~(from : Types.cell) ~target ~op
    ?(arg_bytes = 64) ?(reply_bytes = 64) ?timeout_ns arg =
  let p = sys.Types.params in
  let timeout_ns =
    match timeout_ns with Some t -> t | None -> p.Params.rpc_timeout_ns
  in
  let eng = sys.Types.eng in
  Types.bump from "rpc.calls";
  if not (List.mem target from.Types.live_set) then Error Types.EHOSTDOWN
  else begin
    Sim.Engine.delay p.Params.rpc_client_send_ns;
    Sim.Engine.delay (marshal_cost sys arg_bytes);
    from.Types.next_call_id <- from.Types.next_call_id + 1;
    let call_id =
      (from.Types.cell_id * 1_000_000) + from.Types.next_call_id
    in
    let pc =
      { Types.call_id; reply = None; call_done = Sim.Ivar.create () }
    in
    Hashtbl.replace from.Types.pending_calls call_id pc;
    let target_cell = sys.Types.cells.(target) in
    match
      Flash.Sips.send
        (Flash.Machine.sips sys.Types.machine)
        ~from_proc:(Types.boss_proc from)
        ~to_node:(Types.boss_proc target_cell)
        ~kind:Flash.Sips.Request
        ~size:(min arg_bytes Flash.Sips.max_payload)
        (M_request
           { call_id; src_cell = from.Types.cell_id; op; arg; arg_bytes })
    with
    | exception Flash.Sips.Target_failed _ ->
      Hashtbl.remove from.Types.pending_calls call_id;
      report_hint sys from target "rpc: target node down";
      Error Types.EHOSTDOWN
    | () -> (
      (* The client processor spins waiting for the reply; it only context
         switches after a timeout of 50 us, which almost never occurs. *)
      match Sim.Ivar.read ~timeout:timeout_ns eng pc.Types.call_done with
      | Some outcome ->
        Sim.Engine.delay p.Params.rpc_client_recv_ns;
        if reply_bytes > Flash.Sips.max_payload then
          Sim.Engine.delay (marshal_cost sys reply_bytes);
        outcome
      | None ->
        Hashtbl.remove from.Types.pending_calls call_id;
        Types.bump from "rpc.timeouts";
        report_hint sys from target "rpc: timeout";
        Error Types.EHOSTDOWN)
  end

(* Convenience wrapper raising Syscall_error on failure. *)
let call_exn sys ~from ~target ~op ?arg_bytes ?reply_bytes ?timeout_ns arg =
  match call sys ~from ~target ~op ?arg_bytes ?reply_bytes ?timeout_ns arg with
  | Ok v -> v
  | Error e -> raise (Types.Syscall_error e)
