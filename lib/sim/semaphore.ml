type t = { mutable count : int; mutable waiters : Engine.thread list }

let create count =
  if count < 0 then invalid_arg "Semaphore.create";
  { count; waiters = [] }

let value s = s.count

let acquire _eng s =
  let rec wait () =
    if s.count > 0 then s.count <- s.count - 1
    else begin
      Engine.suspend ~site:"semaphore.acquire" (fun thr ->
          s.waiters <- s.waiters @ [ thr ]);
      wait ()
    end
  in
  wait ()

let try_acquire s =
  if s.count > 0 then begin
    s.count <- s.count - 1;
    true
  end
  else false

let release eng s =
  s.count <- s.count + 1;
  let rec wake () =
    match s.waiters with
    | [] -> ()
    | w :: rest ->
      s.waiters <- rest;
      if not (Engine.try_resume eng w) then wake ()
  in
  wake ()

let with_acquired eng s f =
  acquire eng s;
  Fun.protect ~finally:(fun () -> release eng s) f
