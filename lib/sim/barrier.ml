type outcome = Released | Aborted

type t = {
  mutable parties : int;
  mutable arrived : int;
  mutable generation : int;
  mutable aborted : bool;
  mutable waiters : Engine.thread list;
}

let create parties =
  if parties <= 0 then invalid_arg "Barrier.create";
  { parties; arrived = 0; generation = 0; aborted = false; waiters = [] }

let parties b = b.parties

let arrived b = b.arrived

let aborted b = b.aborted

let release eng b =
  b.arrived <- 0;
  b.generation <- b.generation + 1;
  let ws = b.waiters in
  b.waiters <- [];
  List.iter (fun w -> ignore (Engine.try_resume eng w)) ws

let await_abortable eng b =
  if b.aborted then Aborted
  else begin
    b.arrived <- b.arrived + 1;
    if b.arrived >= b.parties then begin
      release eng b;
      Released
    end
    else begin
      let gen = b.generation in
      Engine.suspend ~site:"barrier.await" (fun thr ->
          b.waiters <- b.waiters @ [ thr ]);
      (* A killed waiter can be resumed spuriously; re-block until the
         generation actually advances or the barrier is torn down. *)
      while b.generation = gen && not b.aborted do
        Engine.suspend ~site:"barrier.await" (fun thr ->
            b.waiters <- b.waiters @ [ thr ])
      done;
      if b.aborted then Aborted else Released
    end
  end

let await eng b = ignore (await_abortable eng b)

let abort eng b =
  if not b.aborted then begin
    b.aborted <- true;
    b.arrived <- 0;
    let ws = b.waiters in
    b.waiters <- [];
    List.iter (fun w -> ignore (Engine.try_resume eng w)) ws
  end

let remove_party eng b =
  if b.parties <= 1 then
    (* The last party leaving tears the barrier down: nobody could ever
       release the remaining waiters. *)
    abort eng b
  else begin
    b.parties <- b.parties - 1;
    if (not b.aborted) && b.arrived >= b.parties then release eng b
  end
