type level = Off | Error | Info | Debug

let level = ref Off

let set_level l = level := l

let enabled l =
  match (!level, l) with
  | Off, _ -> false
  | Error, Error -> true
  | Error, (Info | Debug) -> false
  | Info, (Error | Info) -> true
  | Info, Debug -> false
  | Debug, _ -> true
  | _, Off -> false

let ns_to_ms ns = Int64.to_float ns /. 1e6

let log l eng fmt =
  if enabled l then
    Format.kasprintf
      (fun s -> Format.eprintf "[%10.3f ms] %s@." (ns_to_ms (Engine.now eng)) s)
      fmt
  else Format.ikfprintf (fun _ -> ()) Format.err_formatter fmt

let error eng fmt = log Error eng fmt

let info eng fmt = log Info eng fmt

let debug eng fmt = log Debug eng fmt
