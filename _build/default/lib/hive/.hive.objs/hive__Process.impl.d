lib/hive/process.ml: Array Cow Flash Fs Gate Hashtbl List Panic Params Printf Rpc Sim Types Vm
