lib/workloads/ocean.mli: Hive Sim Workload
