examples/compute_server.ml: Array Bytes Fun Hive Int64 List Printf Sim String
