lib/workloads/workload.ml: Array Bytes Char Flash Hashtbl Hive Int64
