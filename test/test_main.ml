let () =
  Alcotest.run "hive"
    [
      ("sim", Test_sim.suite);
      ("flash", Test_flash.suite);
      ("hive", Test_hive.suite);
      ("fs", Test_fs.suite);
      ("vm-cow", Test_vm_cow.suite);
      ("recovery", Test_recovery.suite);
      ("partition", Test_partition.suite);
      ("rpc", Test_rpc.suite);
      ("careful", Test_careful.suite);
      ("sharing", Test_sharing.suite);
      ("import-cache", Test_import_cache.suite);
      ("ssi", Test_ssi.suite);
      ("workloads", Test_workloads.suite);
      ("traffic", Test_traffic.suite);
      ("observability", Test_observability.suite);
      ("wax-swap", Test_wax_swap.suite);
      ("wax-scale", Test_wax_scale.suite);
      ("fuzz", Test_fuzz.suite);
      ("bench", Test_bench.suite);
    ]
