lib/hive/wild_write.mli: Flash Types
