lib/hive/wax.ml: Array Flash Gate Int64 List Page_alloc Params Printf Sim Swap Types
