lib/hive/clock_hand.mli: Types
