(* Parallel-application scenario: a scientific job whose workers span all
   cells and share memory both ways — a read-shared scene through the
   distributed copy-on-write tree, and a write-shared grid through
   exported file pages protected by the firewall.

   Run with:  dune exec examples/parallel_app.exe *)

let () =
  let eng = Sim.Engine.create () in
  let sys = Hive.System.boot ~ncells:4 eng in

  (* Run the ocean-style workload: each worker owns a chunk homed on its
     cell and writes into its neighbours' chunks every step. *)
  Workloads.Ocean.setup sys Workloads.Ocean.default;
  let result, _ = Workloads.Ocean.run sys in
  Printf.printf "ocean: %.2f s simulated on 4 cells (%s)\n"
    (Workloads.Workload.ns_to_s result.Workloads.Workload.elapsed_ns)
    (if result.Workloads.Workload.completed then "completed" else "failed");
  List.iter
    (fun (path, v) ->
      Printf.printf "  output %s: %s\n" path
        (Workloads.Workload.verify_outcome_to_string v))
    (Workloads.Ocean.verify sys);

  (* Show how much of the data segment became write-shared across cells
     (the firewall statistic of Section 4.2). *)
  Array.iter
    (fun (c : Hive.Types.cell) ->
      Printf.printf
        "  cell %d: %d of its pages are currently remotely writable\n"
        c.Hive.Types.cell_id
        (Hive.Wild_write.remotely_writable_pages sys c))
    sys.Hive.Types.cells;

  (* And the raytrace workload: read-sharing through the COW tree. *)
  let result, _ = Workloads.Raytrace.run sys in
  Printf.printf "raytrace: %.2f s simulated on 4 cells (%s)\n"
    (Workloads.Workload.ns_to_s result.Workloads.Workload.elapsed_ns)
    (if result.Workloads.Workload.completed then "completed" else "failed");
  Array.iter
    (fun (c : Hive.Types.cell) ->
      let n = Sim.Stats.value c.Hive.Types.counters "careful_ref.enter" in
      if n > 0 then
        Printf.printf
          "  cell %d performed %d careful-reference reads of remote COW nodes\n"
          c.Hive.Types.cell_id n)
    sys.Hive.Types.cells
