test/test_sharing.ml: Alcotest Array Flash Gen Hashtbl Hive Int64 List QCheck QCheck_alcotest Sim
