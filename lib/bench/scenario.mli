(** Typed benchmark scenario registry, mirroring [Hive.Rpc.Op.declare]:
    a scenario is declared once with its name, trajectory area, and the
    dimension grid it covers; {!Sweep} runs each (scenario × dims) point
    and emits one [BENCH_<area>.json] per area.

    Every measured value is a function of simulated time and kernel
    counters only — never wall clock — so a sweep over the same grid is
    byte-identical across runs and machines, which is what lets CI diff a
    fresh sweep against the committed trajectory. *)

(** One point in the dimension grid. Scenarios ignore the dimensions that
    do not apply to them (a pure RPC scenario has no working set); the
    unused fields stay at their {!default_dims} values so row identity is
    still well-defined. *)
type dims = {
  workload : string;  (** pmake | ocean | raytrace | rpc | read *)
  cells : int;
  nodes : int;  (** machine nodes; cells must divide nodes *)
  ws_pages : int;  (** working-set size in pages, 0 = n/a *)
  link_ms : int;
      (** length of a 25%% drop/dup/delay degradation window armed from
          t=0, 0 = healthy interconnect *)
  import_cache : bool;  (** false = legacy sharing protocol *)
  smp : bool;  (** SMP-OS baseline: one kernel, firewall off *)
  rate : int;  (** traffic arrival rate in requests/s, 0 = n/a *)
  zipf_pct : int;  (** Zipf skew [s] times 100 (110 = s of 1.1), 0 = n/a *)
  fault_ms : int;
      (** cell-kill injection time into the traffic run, 0 = no fault *)
}

val default_dims : dims

(** Stable one-line rendering, e.g.
    ["pmake cells=4 nodes=4 ws=0 link=0ms cache=on"]. *)
val dims_label : dims -> string

(** How {!Diff} should interpret a change in a metric's value. *)
type direction =
  | Lower_better
  | Higher_better
  | Info  (** context only: never flagged *)

type metric = { m_name : string; m_value : float; m_dir : direction }

val metric : ?dir:direction -> string -> float -> metric

type t = private {
  sc_name : string;
  sc_area : string;
  sc_doc : string;
  sc_dims : dims list;  (** full grid, run order *)
  sc_quick : dims list;  (** reduced grid for CI smoke sweeps *)
  sc_run : dims -> metric list;
}

(** Declare a scenario; raises [Invalid_argument] on a duplicate name or
    an empty grid. [quick] defaults to the first grid point. Call once at
    module initialization (see {!Scenarios.register}). *)
val declare :
  name:string ->
  area:string ->
  ?doc:string ->
  dims:dims list ->
  ?quick:dims list ->
  (dims -> metric list) ->
  t

(** Every declared scenario, in declaration order. *)
val all : unit -> t list

(** Distinct areas, sorted. *)
val areas : unit -> string list

val find : string -> t option
