lib/hive/panic.ml: Flash List Sim Types
