lib/hive/syscall.ml: Array Bytes Cow Fs Gate Hashtbl List Process Signal Types Vm
