(** Wax: intercell resource-management policy in a user-level process
   (Section 3.2, Table 3.4).

   Wax is a multithreaded user-level spanning process with a thread on
   every cell. It builds a global view of system state through shared
   memory (each cell's thread publishes local statistics into a shared
   word; the coordinator thread reads them all with ordinary loads — no
   careful protocol, because Wax is allowed to die on any cell failure),
   and feeds policy hints back to the kernels: which cells to allocate
   memory from, which cells the VM clock hand should target, etc.

   Hints are *only* hints: the coordinator never acts on another cell's
   behalf. It deposits allocation-preference, clock-hand-target and
   swap-out hints; the receiving kernel (or the cell's own Wax thread, for
   swap) validates each against local state before acting. Each kernel
   sanity-checks everything it receives, so a corrupt Wax can hurt
   performance but not correctness. Because Wax uses resources from all
   cells, it exits whenever any cell fails; recovery forks a fresh
   incarnation that rebuilds its view from scratch. *)

val mem : Types.system -> Flash.Memory.t
val sanity_check_hint : Types.cell -> Types.cell_id list -> bool
val sanity_check_clock_hint : Types.cell -> Types.cell_id list -> bool

(** Validate and (if the cell really is under local pressure) execute a
    deposited swap-out hint; always clears the hint slot. Rejections bump
    [wax.rejected_hints]. *)
val act_on_swap_hint : Types.system -> Types.cell -> unit

val publish_local_state : Types.system -> Types.cell -> unit
exception Wax_dies
val policy_pass : Types.system -> Types.cell -> unit
val stop : Types.system -> unit
val start : Types.system -> unit
val restart : Types.system -> unit
val install : Types.system -> unit
