(* Fault-injection campaigns (Section 7.4).

   Each test boots a four-cell system, runs a workload, injects one fault
   (a fail-stop node failure or a kernel data corruption), and then:

   - measures the latency until the last cell enters recovery;
   - checks that the fault's effects were contained: all other cells
     survive;
   - runs the pmake workload as a system correctness check (it forks
     processes on all surviving cells);
   - compares all output files of the workload run and the check run
     against reference copies to detect data corruption (stale data after
     a preemptive discard is data loss, not corruption).

   The workload/timing combinations follow Table 7.4: node failure during
   process creation (pmake), during copy-on-write search (raytrace), and
   at random times (pmake); corrupt pointer in a process address map
   (pmake) and in the copy-on-write tree (raytrace). *)

type fault =
  | Node_failure of { node : int; at_ns : int64 }
  | Corrupt_map of { victim_cell : int; at_ns : int64; mode : Hive.System.corruption_mode }
  | Corrupt_cow of { victim_cell : int; at_ns : int64; mode : Hive.System.corruption_mode }
  | Link_degrade of {
      deg_from : int; (* source proc, -1 = any *)
      deg_to : int; (* destination node, -1 = any *)
      at_ns : int64;
      dur_ns : int64;
      drop_pct : int;
      dup_pct : int;
      delay_pct : int;
      max_delay_ns : int64;
      salt : int64; (* seeds the window's own per-message PRNG *)
    }
  | Partition of {
      part_cell : int; (* cell severed from the rest of the machine *)
      at_ns : int64;
      dur_ns : int64; (* heals deterministically at at_ns + dur_ns *)
      one_way : bool; (* true: only traffic INTO the cell is lost *)
    }
  | Cpu_dead_mem_alive of { node : int; at_ns : int64 }

type outcome = {
  fault_desc : string;
  injected_cell : int;
  contained : bool;
  detection_ms : float option;
  recovery_ms : float option;
  check_passed : bool;
  corrupt_outputs : string list;
  survivors : int list;
}

type workload_kind = Use_pmake | Use_raytrace

let pick_victim_process (sys : Hive.Types.system) ~cell_id =
  let c = sys.Hive.Types.cells.(cell_id) in
  List.find_opt
    (fun (p : Hive.Types.process) ->
      p.Hive.Types.pstate = Hive.Types.Proc_running
      && List.exists
           (fun (r : Hive.Types.region) ->
             match r.Hive.Types.kind with
             | Hive.Types.Anon_region _ -> true
             | _ -> false)
           p.Hive.Types.regions)
    c.Hive.Types.processes

(* Find a COW node owned by the victim cell (a leaf of one of its
   processes), for direct tree corruption. Prefer a leaf with a parent (a
   post-fork leaf still used for copy-on-write searches) over a root. *)
let pick_cow_node (sys : Hive.Types.system) ~cell_id =
  let c = sys.Hive.Types.cells.(cell_id) in
  let has_parent (leaf : Hive.Types.cow_ref) =
    let addr =
      leaf.Hive.Types.cow_addr + Hive.Kmem.header_bytes
      + (8 * Hive.Cow.f_parent_addr)
    in
    Bytes.get_int64_le
      (Flash.Memory.peek (Flash.Machine.memory sys.Hive.Types.machine) addr 8)
      0
    >= 0L
  in
  let roots = ref None and forked = ref None in
  List.iter
    (fun (p : Hive.Types.process) ->
      if p.Hive.Types.pstate = Hive.Types.Proc_running then
        List.iter
          (fun (r : Hive.Types.region) ->
            match r.Hive.Types.kind with
            | Hive.Types.Anon_region leaf
              when leaf.Hive.Types.cow_cell = cell_id ->
              if has_parent leaf then begin
                if !forked = None then forked := Some leaf
              end
              else if !roots = None then roots := Some leaf
            | _ -> ())
          p.Hive.Types.regions)
    c.Hive.Types.processes;
  (match (!forked, !roots) with Some l, _ -> Some l | None, r -> r)

let inject (sys : Hive.Types.system) rng fault =
  match fault with
  | Node_failure { node; _ } ->
    Hive.System.inject_node_failure sys node;
    Some (Hive.Types.cell_of_node sys node).Hive.Types.cell_id
  | Corrupt_map { victim_cell; mode; _ } -> (
    match pick_victim_process sys ~cell_id:victim_cell with
    | Some p ->
      if Hive.System.corrupt_address_map sys p mode rng then Some victim_cell
      else None
    | None -> None)
  | Corrupt_cow { victim_cell; mode; _ } -> (
    match pick_cow_node sys ~cell_id:victim_cell with
    | Some leaf ->
      Hive.System.corrupt_cow_parent sys sys.Hive.Types.cells.(victim_cell)
        leaf mode rng;
      Some victim_cell
    | None -> None)
  | Link_degrade
      { deg_from; deg_to; dur_ns; drop_pct; dup_pct; delay_pct;
        max_delay_ns; salt; _ } ->
    let now = Sim.Engine.now sys.Hive.Types.eng in
    Flash.Sips.degrade
      (Flash.Machine.sips sys.Hive.Types.machine)
      ~rng:(Sim.Prng.of_int64 salt)
      { Flash.Sips.deg_from; deg_to; from_ns = now;
        until_ns = Int64.add now dur_ns; drop_pct; dup_pct; delay_pct;
        max_delay_ns };
    (* Reported as the destination cell when the window targets one link,
       cell 0 for a machine-wide window; nothing is corrupted either way. *)
    Some
      (if deg_to >= 0 then
         (Hive.Types.cell_of_node sys deg_to).Hive.Types.cell_id
       else 0)
  | Partition { part_cell; dur_ns; one_way; _ } ->
    (* Sever every directed link between the cell's nodes and the rest of
       the machine. Intra-cell links stay up: the cell keeps running on
       its own side of the blackout. [one_way] models asymmetric
       reachability: only traffic into the cell is lost, so its own sends
       still arrive while every reply (and probe) back to it vanishes. *)
    let sips = Flash.Machine.sips sys.Hive.Types.machine in
    let now = Sim.Engine.now sys.Hive.Types.eng in
    let until = Int64.add now dur_ns in
    let inside =
      sys.Hive.Types.cells.(part_cell).Hive.Types.cell_nodes
    in
    let outside =
      Array.to_list sys.Hive.Types.cells
      |> List.concat_map (fun (c : Hive.Types.cell) ->
             if c.Hive.Types.cell_id = part_cell then []
             else c.Hive.Types.cell_nodes)
    in
    List.iter
      (fun inner ->
        List.iter
          (fun outer ->
            Flash.Sips.partition sips
              { Flash.Sips.part_from = outer; part_to = inner;
                part_from_ns = now; part_until_ns = until };
            if not one_way then
              Flash.Sips.partition sips
                { Flash.Sips.part_from = inner; part_to = outer;
                  part_from_ns = now; part_until_ns = until })
          outside)
      inside;
    Some part_cell
  | Cpu_dead_mem_alive { node; _ } ->
    Hive.System.inject_cpu_failure sys node;
    Some (Hive.Types.cell_of_node sys node).Hive.Types.cell_id

(* Whether the fault destroys or corrupts kernel state on the victim cell
   (so checkers must exempt it). Link degradation only perturbs message
   delivery: every cell must come out fully coherent, so it is never
   exempted. A partitioned minority cell stands down (self-panics) and is
   rebooted with zeroed memory at reintegration, so it is exempted like
   any other fail-stop victim. *)
let corrupts_cell = function
  | Node_failure _ | Corrupt_map _ | Corrupt_cow _ -> true
  | Link_degrade _ -> false
  | Partition _ | Cpu_dead_mem_alive _ -> true

let fault_time = function
  | Node_failure { at_ns; _ } -> at_ns
  | Corrupt_map { at_ns; _ } -> at_ns
  | Corrupt_cow { at_ns; _ } -> at_ns
  | Link_degrade { at_ns; _ } -> at_ns
  | Partition { at_ns; _ } -> at_ns
  | Cpu_dead_mem_alive { at_ns; _ } -> at_ns

let describe = function
  | Node_failure { node; _ } -> Printf.sprintf "node %d fail-stop" node
  | Corrupt_map { victim_cell; _ } ->
    Printf.sprintf "corrupt address map on cell %d" victim_cell
  | Corrupt_cow { victim_cell; _ } ->
    Printf.sprintf "corrupt COW tree on cell %d" victim_cell
  | Link_degrade
      { deg_from; deg_to; dur_ns; drop_pct; dup_pct; delay_pct; _ } ->
    Printf.sprintf
      "degrade link %s->%s for %Ld ms (drop %d%% dup %d%% delay %d%%)"
      (if deg_from = -1 then "*" else string_of_int deg_from)
      (if deg_to = -1 then "*" else string_of_int deg_to)
      (Int64.div dur_ns 1_000_000L)
      drop_pct dup_pct delay_pct
  | Partition { part_cell; dur_ns; one_way; _ } ->
    Printf.sprintf "partition cell %d for %Ld ms (%s)" part_cell
      (Int64.div dur_ns 1_000_000L)
      (if one_way then "inbound only" else "both ways")
  | Cpu_dead_mem_alive { node; _ } ->
    Printf.sprintf "node %d CPU dead, memory alive" node

(* Run one fault-injection test. *)
let run_test ?(seed = 1) ~workload fault =
  let rng = Sim.Prng.create seed in
  let eng = Sim.Engine.create () in
  let sys = Hive.System.boot ~ncells:4 ~wax:true eng in
  Workloads.Pmake.setup sys Workloads.Pmake.default;
  (match workload with
  | Use_pmake -> ()
  | Use_raytrace -> ());
  (* Injection happens from a detached thread at the requested time. *)
  let injected = ref None in
  let t_inject = ref 0L in
  ignore
    (Sim.Engine.spawn eng ~name:"injector" (fun () ->
         Sim.Engine.delay (fault_time fault);
         (* Retry until a suitable victim exists (e.g. a process with an
            anonymous region for corruption faults). *)
         let rec attempt tries =
           if tries = 0 then ()
           else
             match inject sys rng fault with
             | Some cell ->
               t_inject := Sim.Engine.time ();
               injected := Some cell
             | None ->
               Sim.Engine.delay 20_000_000L;
               attempt (tries - 1)
         in
         attempt 200));
  (* Run the workload. *)
  let result, _p =
    match workload with
    | Use_pmake -> Workloads.Pmake.run sys
    | Use_raytrace ->
      let r, p = Workloads.Raytrace.run sys in
      (r, p)
  in
  ignore result;
  (* Let detection/recovery finish. *)
  ignore
    (Hive.System.run_until sys
       ~deadline:(Int64.add (Sim.Engine.now eng) 3_000_000_000L)
       (fun () ->
         (not sys.Hive.Types.recovery_in_progress)
         && (sys.Hive.Types.recovery_events <> [] || !injected = None)));
  let injected_cell = match !injected with Some c -> c | None -> -1 in
  let detection_ms =
    match Hive.System.detection_latency_ns sys ~t_fault:!t_inject with
    | Some ns when !injected <> None -> Some (Int64.to_float ns /. 1e6)
    | _ -> None
  in
  let recovery_ms =
    if
      sys.Hive.Types.recovery_events <> []
      && Int64.compare sys.Hive.Types.recovery_complete_at !t_inject > 0
    then
      let first_entry =
        List.fold_left
          (fun acc (_, t) -> min acc t)
          Int64.max_int sys.Hive.Types.recovery_events
      in
      Some
        (Int64.to_float
           (Int64.sub sys.Hive.Types.recovery_complete_at first_entry)
        /. 1e6)
    else None
  in
  let survivors = Hive.System.live_cells sys in
  (* Containment: every cell except the injected one survived. *)
  let contained =
    Array.for_all
      (fun (c : Hive.Types.cell) ->
        c.Hive.Types.cell_id = injected_cell
        || Hive.Types.cell_alive c)
      sys.Hive.Types.cells
  in
  (* Correctness check: run pmake across the surviving cells and verify
     its outputs against references. *)
  let check_result, _ = Workloads.Pmake.run sys in
  let verify = Workloads.Pmake.verify sys in
  let corrupt_outputs =
    List.filter_map
      (fun (path, v) ->
        if v = Workloads.Workload.Corrupt then Some path else None)
      verify
  in
  (* Workload-specific outputs from the faulted run are also checked for
     corruption (loss is acceptable). *)
  let extra_corrupt =
    match workload with
    | Use_pmake -> []
    | Use_raytrace ->
      List.filter_map
        (fun (path, v) ->
          if v = Workloads.Workload.Corrupt then Some path else None)
        (Workloads.Raytrace.verify sys)
  in
  {
    fault_desc = describe fault;
    injected_cell;
    contained;
    detection_ms;
    recovery_ms;
    check_passed = check_result.Workloads.Workload.completed;
    corrupt_outputs = corrupt_outputs @ extra_corrupt;
    survivors;
  }

let passed o =
  o.contained && o.check_passed && o.corrupt_outputs = []
  && o.injected_cell >= 0

(* ---------- The Table 7.4 campaigns ---------- *)

type campaign_row = {
  label : string;
  tests : int;
  all_contained : bool;
  avg_detect_ms : float;
  max_detect_ms : float;
  avg_recovery_ms : float;
  failures : string list;
}

let summarize label outcomes =
  let det = List.filter_map (fun o -> o.detection_ms) outcomes in
  let rec_ = List.filter_map (fun o -> o.recovery_ms) outcomes in
  let avg xs =
    if xs = [] then 0. else List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
  in
  {
    label;
    tests = List.length outcomes;
    all_contained = List.for_all passed outcomes;
    avg_detect_ms = avg det;
    max_detect_ms = List.fold_left max 0. det;
    avg_recovery_ms = avg rec_;
    failures =
      List.concat_map
        (fun o ->
          if passed o then []
          else
            [ Printf.sprintf "%s: contained=%b check=%b corrupt=[%s] injected=%d"
                o.fault_desc o.contained o.check_passed
                (String.concat ";" o.corrupt_outputs)
                o.injected_cell ])
        outcomes;
  }

let modes =
  [| Hive.System.Random_address; Hive.System.Off_by_one_word;
     Hive.System.Self_pointer |]

(* Node failure during process creation (pmake): inject early, while the
   driver is forking compile jobs. *)
let node_failure_during_creation ~tests =
  List.init tests (fun i ->
      run_test ~seed:(100 + i) ~workload:Use_pmake
        (Node_failure
           { node = 1 + (i mod 3); at_ns = Int64.of_int (40_000_000 * (i + 2)) }))
  |> summarize "node failure during process creation (pmake)"

(* Node failure during COW search (raytrace): inject while workers fault
   scene pages through the tree. *)
let node_failure_during_cow ~tests =
  List.init tests (fun i ->
      run_test ~seed:(200 + i) ~workload:Use_raytrace
        (Node_failure
           { node = 1 + (i mod 3); at_ns = Int64.of_int (15_000_000 * (i + 1)) }))
  |> summarize "node failure during copy-on-write search (raytrace)"

(* Node failure at a random time during pmake. *)
let node_failure_random ~tests =
  let rng = Sim.Prng.create 42 in
  List.init tests (fun i ->
      let at = 50_000_000 + Sim.Prng.int rng 4_000_000_000 in
      run_test ~seed:(300 + i) ~workload:Use_pmake
        (Node_failure { node = 1 + (i mod 3); at_ns = Int64.of_int at }))
  |> summarize "node failure at random time (pmake)"

(* Corrupt pointer in a process address map (pmake). *)
let corrupt_map_campaign ~tests =
  List.init tests (fun i ->
      run_test ~seed:(400 + i) ~workload:Use_pmake
        (Corrupt_map
           {
             victim_cell = 1 + (i mod 3);
             at_ns = Int64.of_int (120_000_000 * (i + 1));
             mode = modes.(i mod Array.length modes);
           }))
  |> summarize "corrupt pointer in process address map (pmake)"

(* Corrupt pointer in the COW tree (raytrace): injected mid-run, so the
   corruption lies dormant until a later copy-on-write search trips it —
   which is why the paper's detection latencies for this campaign are an
   order of magnitude above the clock-monitoring bound. *)
let corrupt_cow_campaign ~tests =
  List.init tests (fun i ->
      run_test ~seed:(500 + i) ~workload:Use_raytrace
        (Corrupt_cow
           {
             victim_cell = 1 + (i mod 3);
             at_ns = Int64.of_int (300_000_000 + (180_000_000 * i));
             mode = modes.(i mod Array.length modes);
           }))
  |> summarize "corrupt pointer in copy-on-write tree (raytrace)"

(* ---------- Parallel campaign driver ---------- *)

(* Shard a seed list across OCaml 5 domains. Work-stealing: workers pull
   the next unclaimed index from a shared cursor, so a slow seed never
   idles the other domains. Each worker runs [run] with a private
   simulation engine ([Sim.Engine.create] binds the engine to the
   creating domain and rejects use from any other), and shares nothing
   else — every cross-campaign cache in the tree is domain-local and
   reset per boot. Results are published under a mutex and handed to
   [on_record] from the calling domain in seed order, so the merged
   output is byte-identical to a serial run regardless of [jobs].

   The caller must ensure one-time global registration (RPC handler
   tables) has already happened on the calling domain — booting any
   system does it — before workers race to boot theirs. [run_parallel]
   boots nothing itself, so it performs that warm-up via
   [Hive.System.register_all_handlers]. *)
let run_parallel (type r) ~jobs ~(seeds : int64 array) ~(run : int64 -> r)
    ~(on_record : int64 -> r -> unit) =
  let n = Array.length seeds in
  if jobs <= 1 || n <= 1 then
    Array.iter (fun s -> on_record s (run s)) seeds
  else begin
    Hive.System.register_all_handlers ();
    Workloads.Server.register_ops ();
    let next = Atomic.make 0 in
    let results : (r, exn) result option array = Array.make n None in
    let m = Mutex.create () in
    let ready = Condition.create () in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            match run seeds.(i) with
            | v -> Ok v
            | exception e -> Error e
          in
          Mutex.lock m;
          results.(i) <- Some r;
          Condition.broadcast ready;
          Mutex.unlock m;
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
    let emitted = ref 0 in
    Mutex.lock m;
    (try
       while !emitted < n do
         match results.(!emitted) with
         | Some r ->
           let i = !emitted in
           results.(i) <- None;
           incr emitted;
           (* Emit outside the lock: [on_record] may write files or
              replay a failing seed. *)
           Mutex.unlock m;
           (match r with Ok v -> on_record seeds.(i) v | Error e -> raise e);
           Mutex.lock m
         | None -> Condition.wait ready m
       done;
       Mutex.unlock m
     with e ->
       (* Unblock and collect the workers before re-raising. *)
       Atomic.set next n;
       List.iter Domain.join domains;
       raise e);
    List.iter Domain.join domains
  end

(* ---------- Cascading (nested) failures ---------- *)

type cascade_outcome = {
  c_first_node : int;
  c_second_node : int;
  c_deadlocked : bool;  (* recovery never completed before the deadline *)
  c_restarted : bool;   (* the round restarted with the enlarged dead set *)
  c_contained : bool;   (* every non-victim cell survived the episode *)
  c_reintegrated : bool;
      (* both victims rebooted by the master and back in all live sets *)
  c_check_passed : bool;  (* pmake across the restored system verifies *)
  c_detection_ms : float option;
}

(* Kill a second node while the first failure's recovery round is in
   flight (between barrier 1 and barrier 2): the acid test for the
   abortable-barrier / round-restart machinery. The survivors must abort
   the round, restart it with the enlarged dead set, finish, and the
   recovery master must then repair and reintegrate both victims. *)
let run_cascade_test ?(seed = 1) ~first_node ~second_node ~at_ns () =
  ignore seed;
  let eng = Sim.Engine.create () in
  let sys = Hive.System.boot ~ncells:4 ~wax:true eng in
  Workloads.Pmake.setup sys Workloads.Pmake.default;
  let t_first = ref 0L in
  ignore
    (Sim.Engine.spawn eng ~name:"cascade-injector" (fun () ->
         Sim.Engine.delay at_ns;
         t_first := Sim.Engine.time ();
         Hive.System.inject_node_failure sys first_node;
         (* Poll until the round is past barrier 1 (the window stays open
            through barrier 2 and the master's diagnostics), then fail the
            second node mid-round. *)
         let past_barrier1 () =
           sys.Hive.Types.recovery_round_active
           && List.exists
                (fun (phase, t) ->
                  phase = "recovery.barrier1"
                  && Int64.compare t !t_first >= 0)
                sys.Hive.Types.recovery_timeline
         in
         let rec poll tries =
           if tries > 0 && not (past_barrier1 ()) then begin
             Sim.Engine.delay 100_000L;
             poll (tries - 1)
           end
         in
         poll 10_000;
         Hive.System.inject_node_failure sys second_node));
  let result, _ = Workloads.Pmake.run sys in
  ignore result;
  let recovery_done =
    Hive.System.run_until sys
      ~deadline:(Int64.add (Sim.Engine.now eng) 5_000_000_000L)
      (fun () ->
        (not sys.Hive.Types.recovery_in_progress)
        && sys.Hive.Types.recovery_events <> [])
  in
  let first_cell =
    (Hive.Types.cell_of_node sys first_node).Hive.Types.cell_id
  in
  let second_cell =
    (Hive.Types.cell_of_node sys second_node).Hive.Types.cell_id
  in
  let contained =
    Array.for_all
      (fun (c : Hive.Types.cell) ->
        c.Hive.Types.cell_id = first_cell
        || c.Hive.Types.cell_id = second_cell
        || Hive.Types.cell_alive c)
      sys.Hive.Types.cells
  in
  let both_back =
    Hive.System.run_until sys
      ~deadline:(Int64.add (Sim.Engine.now eng) 3_000_000_000L)
      (fun () ->
        Hive.Types.cell_alive sys.Hive.Types.cells.(first_cell)
        && Hive.Types.cell_alive sys.Hive.Types.cells.(second_cell))
  in
  let reintegrated =
    both_back
    && Sim.Stats.value sys.Hive.Types.sys_counters "cell.reintegrations" >= 2
    && Array.for_all
         (fun (c : Hive.Types.cell) ->
           (not (Hive.Types.cell_alive c))
           || List.mem first_cell c.Hive.Types.live_set
              && List.mem second_cell c.Hive.Types.live_set)
         sys.Hive.Types.cells
  in
  let check_result, _ = Workloads.Pmake.run sys in
  let verify_ok =
    List.for_all
      (fun (_, v) -> v <> Workloads.Workload.Corrupt)
      (Workloads.Pmake.verify sys)
  in
  {
    c_first_node = first_node;
    c_second_node = second_node;
    c_deadlocked = not recovery_done;
    c_restarted =
      Sim.Stats.value sys.Hive.Types.sys_counters "recovery.round_restarts"
      >= 1;
    c_contained = contained;
    c_reintegrated = reintegrated;
    c_check_passed = check_result.Workloads.Workload.completed && verify_ok;
    c_detection_ms =
      (match Hive.System.detection_latency_ns sys ~t_fault:!t_first with
      | Some ns -> Some (Int64.to_float ns /. 1e6)
      | None -> None);
  }

let cascade_passed o =
  (not o.c_deadlocked) && o.c_restarted && o.c_contained && o.c_reintegrated
  && o.c_check_passed

let cascade_campaign ~tests =
  let outcomes =
    List.init tests (fun i ->
        run_cascade_test ~seed:(600 + i)
          ~first_node:(1 + (i mod 3))
          ~second_node:(1 + ((i + 1) mod 3))
          ~at_ns:(Int64.of_int (60_000_000 * (i + 1)))
          ())
  in
  let det = List.filter_map (fun o -> o.c_detection_ms) outcomes in
  let avg xs =
    if xs = [] then 0.
    else List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
  in
  {
    label = "second node failure during recovery (pmake)";
    tests = List.length outcomes;
    all_contained = List.for_all cascade_passed outcomes;
    avg_detect_ms = avg det;
    max_detect_ms = List.fold_left max 0. det;
    avg_recovery_ms = 0.;
    failures =
      List.concat_map
        (fun o ->
          if cascade_passed o then []
          else
            [ Printf.sprintf
                "nodes %d+%d: deadlock=%b restarted=%b contained=%b \
                 reintegrated=%b check=%b"
                o.c_first_node o.c_second_node o.c_deadlocked o.c_restarted
                o.c_contained o.c_reintegrated o.c_check_passed ])
        outcomes;
  }
