lib/flash/machine.ml: Array Config Cpu Disk Format List Memory Sim Sips
