test/test_sim.ml: Alcotest Fun Int64 List Printexc QCheck QCheck_alcotest Sim
