(** Cyclic synchronization barrier: the last of [parties] arrivals releases
    everyone. Used by parallel workloads and by Hive's double-global-barrier
    recovery protocol. *)

type t

val create : int -> t

val parties : t -> int

(** Threads currently waiting in the present generation. *)
val arrived : t -> int

(** Block until [parties] threads have called [await]. *)
val await : Engine.t -> t -> unit
