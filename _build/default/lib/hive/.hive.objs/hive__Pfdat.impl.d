lib/hive/pfdat.ml: Hashtbl Types
