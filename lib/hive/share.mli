(** Logical-level memory sharing primitives (Table 5.1 of the paper).

   export: the data home records that a client cell is accessing one of
   its data pages (pinning it and noting the dependency for recovery), and
   grants firewall write permission to the client's processors if the
   client requested a writable mapping.

   import: the client allocates an extended pfdat bound to the remote
   page and inserts it into its pfdat hash table, after which most of the
   kernel operates on the page as if it were local.

   release: the client frees the extended pfdat and tells the data home,
   which unpins the page (keeping it cached on its own free list for fast
   re-access). *)

type Types.payload += P_release of { lid : Types.logical_id; }
val release_op : Rpc.Op.t
val export :
  Types.system ->
  Types.cell ->
  Types.pfdat -> client:Types.cell_id -> writable:bool -> unit
val import :
  Types.system ->
  Types.cell ->
  pfn:int ->
  data_home:Types.cell_id ->
  lid:Types.logical_id -> writable:'a -> Types.pfdat
val release :
  Types.system -> Types.cell -> Types.pfdat -> unit
val drop_import : Types.cell -> Types.pfdat -> unit
val unexport :
  Types.system ->
  Types.cell ->
  client:Types.cell_id -> lid:Types.logical_id -> unit
val registered : bool ref
val register_handlers : unit -> unit
