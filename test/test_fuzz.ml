(* Tests for the deterministic simulation fuzzer: seed replay is
   bit-for-bit, clean seeds report zero violations, and a deliberately
   planted containment bug is caught by the invariant checkers and shrunk
   to a minimal reproducer. *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let test_plan_of_seed_deterministic () =
  let a = Faultinj.Fuzz.plan_of_seed 42L in
  let b = Faultinj.Fuzz.plan_of_seed 42L in
  Alcotest.(check string) "same plan" (Faultinj.Fuzz.describe_plan a)
    (Faultinj.Fuzz.describe_plan b);
  let c = Faultinj.Fuzz.plan_of_seed 43L in
  Alcotest.(check bool) "different seeds differ" true
    (Faultinj.Fuzz.describe_plan a <> Faultinj.Fuzz.describe_plan c)

let test_replay_is_byte_identical () =
  let plan = Faultinj.Fuzz.plan_of_seed 2L in
  let a = Faultinj.Fuzz.record_to_json (Faultinj.Fuzz.run_plan plan) in
  let b = Faultinj.Fuzz.record_to_json (Faultinj.Fuzz.run_plan plan) in
  Alcotest.(check string) "two replays byte-identical" a b

let test_clean_seeds_zero_violations () =
  List.iter
    (fun seed ->
      let r = Faultinj.Fuzz.run_plan (Faultinj.Fuzz.plan_of_seed seed) in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %Ld clean" seed)
        [] r.Faultinj.Fuzz.r_violations)
    [ 1L; 3L; 8L ]

(* Seeds whose derived plans include link-degradation windows — seed 16
   and 31 land theirs right inside a node-failure recovery round — must
   ride out the weather with zero violations: every message may be
   dropped, duplicated or delayed, but the kernels stay coherent. *)
let test_link_fault_seeds_clean () =
  List.iter
    (fun seed ->
      let p = Faultinj.Fuzz.plan_of_seed seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld has a link window" seed)
        true
        (contains (Faultinj.Fuzz.describe_plan p) "degrade link");
      let r = Faultinj.Fuzz.run_plan p in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %Ld clean under link faults" seed)
        [] r.Faultinj.Fuzz.r_violations)
    [ 16L; 28L; 31L ]

(* The planted transport bug: reply-cache suppression off plus a
   duplication-heavy window makes retransmitted requests execute twice.
   The at-most-once checker must catch it, and the reproducer must shrink
   (the bug needs no scheduled faults at all, only the planted window). *)
let test_dup_bug_caught_and_shrunk () =
  let plan = Faultinj.Fuzz.plan_of_seed 28L in
  let r = Faultinj.Fuzz.run_plan ~dup_bug:true plan in
  Alcotest.(check bool) "duplicate execution detected" true
    (Faultinj.Fuzz.failed r);
  Alcotest.(check bool) "at-most-once checker named it" true
    (List.exists
       (fun v -> contains v "rpc-at-most-once")
       r.Faultinj.Fuzz.r_violations);
  let p', r' = Faultinj.Fuzz.shrink ~dup_bug:true plan in
  Alcotest.(check bool) "shrunk plan still fails" true (Faultinj.Fuzz.failed r');
  Alcotest.(check bool) "scheduled faults shrunk away" true
    (List.length p'.Faultinj.Fuzz.faults <= 1)

(* Seed 4 derives a plan whose fault lands; with [demo_bug] the harness
   then plants a firewall grant the kernel never recorded. The checkers
   must catch it, and shrinking must converge to at most two faults while
   still failing. *)
let test_demo_bug_caught_and_shrunk () =
  let plan = Faultinj.Fuzz.plan_of_seed 4L in
  let r = Faultinj.Fuzz.run_plan ~demo_bug:true plan in
  Alcotest.(check bool) "planted bug detected" true (Faultinj.Fuzz.failed r);
  Alcotest.(check bool) "firewall checker named it" true
    (List.exists
       (fun v -> contains v "firewall")
       r.Faultinj.Fuzz.r_violations);
  let p', r' = Faultinj.Fuzz.shrink ~demo_bug:true plan in
  Alcotest.(check bool) "shrunk plan still fails" true
    (Faultinj.Fuzz.failed r');
  Alcotest.(check bool) "shrunk to <= 2 faults" true
    (List.length p'.Faultinj.Fuzz.faults <= 2);
  Alcotest.(check bool) "jitter shrunk away" false p'.Faultinj.Fuzz.jitter

(* The parallel campaign driver shards seeds across domains but must
   merge records back in seed order, so its output is byte-identical to
   a serial sweep for any job count. *)
let test_parallel_campaign_matches_serial () =
  let seeds = Array.init 6 (fun i -> Int64.of_int (i + 1)) in
  let run s =
    Faultinj.Fuzz.record_to_json
      (Faultinj.Fuzz.run_plan (Faultinj.Fuzz.plan_of_seed s))
  in
  let serial = Array.to_list (Array.map run seeds) in
  let out = ref [] in
  Faultinj.Campaign.run_parallel ~jobs:4 ~seeds ~run
    ~on_record:(fun _ line -> out := line :: !out);
  Alcotest.(check (list string)) "4-domain merge byte-identical to serial"
    serial (List.rev !out)

let test_clean_plan_does_not_shrink () =
  let plan = Faultinj.Fuzz.plan_of_seed 1L in
  match Faultinj.Fuzz.shrink plan with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shrinking a passing plan must be rejected"

let suite =
  [
    Alcotest.test_case "plan derivation is deterministic" `Quick
      test_plan_of_seed_deterministic;
    Alcotest.test_case "seed replay is byte-identical" `Slow
      test_replay_is_byte_identical;
    Alcotest.test_case "clean seeds report zero violations" `Slow
      test_clean_seeds_zero_violations;
    Alcotest.test_case "link-fault seeds stay clean" `Slow
      test_link_fault_seeds_clean;
    Alcotest.test_case "planted duplicate-execution bug caught and shrunk"
      `Slow test_dup_bug_caught_and_shrunk;
    Alcotest.test_case "planted containment bug caught and shrunk" `Slow
      test_demo_bug_caught_and_shrunk;
    Alcotest.test_case "parallel campaign merge matches serial" `Slow
      test_parallel_campaign_matches_serial;
    Alcotest.test_case "shrink rejects passing plans" `Slow
      test_clean_plan_does_not_shrink;
  ]
