(* Distributed process groups and signal delivery.

   The paper's prototype single-system image "provides forks across cell
   boundaries, distributed process groups and signal delivery" (Section
   3.3). Process groups span cells: a signal sent to a group is delivered
   to every member wherever it runs, via one RPC per remote cell holding
   members. Groups and signal state are per-cell; the group id carries
   the cell that created it, and membership is tracked where each member
   runs (no shared mutable structure crosses a cell boundary). *)

type signal = SIGTERM | SIGKILL | SIGUSR1 | SIGUSR2

let signal_to_string = function
  | SIGTERM -> "SIGTERM"
  | SIGKILL -> "SIGKILL"
  | SIGUSR1 -> "SIGUSR1"
  | SIGUSR2 -> "SIGUSR2"

type Types.payload +=
  | P_signal of { pid : Types.pid; signal : signal }
  | P_signal_group of { pgid : int; signal : signal }

let signal_op = Rpc.Op.declare ~arg_bytes:16 "signal.deliver"

let signal_group_op = Rpc.Op.declare ~arg_bytes:16 "signal.deliver_group"

(* Per-process signal state lives outside the Types bundle, keyed by pid;
   entries die with the process table entry. *)
type pstate = {
  mutable handlers : (signal * (Types.process -> unit)) list;
  mutable pending : signal list;
  mutable pgid : int;
}

(* Domain-local (parallel fuzz workers share nothing) and reset on every
   [System.boot]: pids restart from 1 per system, so without the reset a
   later campaign in the same process would inherit pgids and handlers
   from identically-numbered processes of an earlier one. *)
let table_key : (Types.pid, pstate) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let reset () = Hashtbl.reset (Domain.DLS.get table_key)

let state_of (p : Types.process) =
  let table = Domain.DLS.get table_key in
  match Hashtbl.find_opt table p.Types.pid with
  | Some st -> st
  | None ->
    let st = { handlers = []; pending = []; pgid = p.Types.pid } in
    Hashtbl.replace table p.Types.pid st;
    st

(* Install a handler (SIGKILL cannot be caught). *)
let handle (p : Types.process) signal f =
  if signal = SIGKILL then invalid_arg "Signal.handle: SIGKILL";
  let st = state_of p in
  st.handlers <- (signal, f) :: List.remove_assoc signal st.handlers

let set_pgid (p : Types.process) pgid = (state_of p).pgid <- pgid

let get_pgid (p : Types.process) = (state_of p).pgid

(* Deliver a signal to a local process: run the handler if installed,
   otherwise the default action (terminate). *)
let deliver_local (sys : Types.system) (target : Types.process) signal =
  if target.Types.pstate <> Types.Proc_zombie then begin
    let st = state_of target in
    match (signal, List.assoc_opt signal st.handlers) with
    | SIGKILL, _ | _, None ->
      (* Default action: terminate the process. *)
      target.Types.exit_code <- Some 128;
      (match target.Types.thread with
      | Some t -> Sim.Engine.kill sys.Types.eng t
      | None -> ())
    | _, Some f ->
      st.pending <- st.pending @ [ signal ];
      (* Handlers run in process context at the next delivery point; for
         simulation purposes run it promptly in a helper thread bound to
         the target. *)
      ignore
        (Sim.Engine.spawn sys.Types.eng
           ~name:(Printf.sprintf "sig.%d" target.Types.pid)
           (fun () ->
             if target.Types.pstate <> Types.Proc_zombie then begin
               st.pending <-
                 List.filter (fun s -> s <> signal) st.pending;
               f target
             end))
  end

(* Kill: deliver a signal to a pid anywhere in the system. *)
let kill (sys : Types.system) (from : Types.process) ~pid signal =
  match Hashtbl.find_opt sys.Types.proc_table pid with
  | None -> Error Types.ESRCH
  | Some target ->
    let here = sys.Types.cells.(from.Types.proc_cell) in
    if target.Types.proc_cell = from.Types.proc_cell then begin
      Sim.Engine.delay (Flash.Config.cycles sys.Types.mcfg 400);
      deliver_local sys target signal;
      Ok ()
    end
    else
      match
        Rpc.call sys ~from:here ~target:target.Types.proc_cell ~op:signal_op
          (P_signal { pid; signal })
      with
      | Ok _ -> Ok ()
      | Error e -> Error e

(* Signal every member of a process group, machine-wide: one RPC per
   remote cell (members are found by each cell locally). *)
let kill_group (sys : Types.system) (from : Types.process) ~pgid signal =
  let here = sys.Types.cells.(from.Types.proc_cell) in
  let deliver_on_cell (c : Types.cell) =
    List.iter
      (fun (p : Types.process) ->
        if
          p.Types.pstate <> Types.Proc_zombie
          && (state_of p).pgid = pgid
        then deliver_local sys p signal)
      c.Types.processes
  in
  deliver_on_cell here;
  let errors = ref 0 in
  List.iter
    (fun cell_id ->
      if cell_id <> here.Types.cell_id then
        match
          Rpc.call sys ~from:here ~target:cell_id ~op:signal_group_op
            (P_signal_group { pgid; signal })
        with
        | Ok _ -> ()
        | Error _ -> incr errors)
    here.Types.live_set;
  if !errors = 0 then Ok () else Error Types.EHOSTDOWN

let registered = ref false

let register_handlers () =
  if not !registered then begin
    registered := true;
    Rpc.register signal_op (fun sys _cell ~src:_ arg ->
        match arg with
        | P_signal { pid; signal } -> (
          match Hashtbl.find_opt sys.Types.proc_table pid with
          | Some target ->
            Types.Immediate
              (deliver_local sys target signal;
               Ok Types.P_unit)
          | None -> Types.Immediate (Error Types.ESRCH))
        | _ -> Types.Immediate (Error Types.EFAULT));
    Rpc.register signal_group_op (fun sys cell ~src:_ arg ->
        match arg with
        | P_signal_group { pgid; signal } ->
          List.iter
            (fun (p : Types.process) ->
              if
                p.Types.pstate <> Types.Proc_zombie
                && (state_of p).pgid = pgid
              then deliver_local sys p signal)
            cell.Types.processes;
          Types.Immediate (Ok Types.P_unit)
        | _ -> Types.Immediate (Error Types.EFAULT))
  end
