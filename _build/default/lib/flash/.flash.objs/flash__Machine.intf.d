lib/flash/machine.mli: Config Cpu Disk Firewall Format Memory Sim Sips
