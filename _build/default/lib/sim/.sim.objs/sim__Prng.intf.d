lib/sim/prng.mli:
