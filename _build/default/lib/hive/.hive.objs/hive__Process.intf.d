lib/hive/process.mli: Flash Types
