(** Metrics: a typed snapshot of what the kernel instrumentation
    accumulated over a run — per-op RPC latency histograms (client and
    server side), per-cell counters and status, system-wide counters,
    interconnect (SIPS) damage totals, sharing-protocol totals, and the
    recovery phase timeline.

    [capture] freezes a {!Snapshot.t} from a live system; the snapshot
    round-trips through JSON ([Snapshot.of_string (Snapshot.to_string s)
    = Ok s]), so the benches, [hive_sim --metrics-json] and the sweep
    trajectory files all consume the same structure instead of re-scraping
    counters. *)

module Snapshot : sig
  (** Exported view of one latency histogram: summary percentiles plus
      the non-empty log-scale buckets [(lo_ns, hi_ns, count)]. All float
      fields are [0.] when [count = 0]. *)
  type hist = {
    count : int;
    mean_ns : float;
    min_ns : float;
    max_ns : float;
    p50_ns : float;
    p95_ns : float;
    p99_ns : float;
    p999_ns : float;
    buckets : (int64 * int64 * int) list;
  }

  type cell = {
    id : int;
    status : Types.cell_status;
    live_set : int list;
    counters : (string * int) list;  (** sorted by name *)
  }

  (** Interconnect damage totals: what the degradation fault model did to
      traffic, and how much stale pre-failure state was purged. *)
  type sips = {
    sends : int;
    drops : int;
    dups : int;
    delays : int;
    stale_purged : int;
  }

  type t = {
    sim_time_ns : int64;
    rpc_client : (string * hist) list;  (** per-op, sorted by op name *)
    rpc_server : (string * hist) list;
    ops : (string * hist) list;
        (** user-visible end-to-end op latency, keyed ["class|phase"]
            (e.g. ["server.read|before"]); empty when the run recorded
            none, and parsed as empty from older snapshots. *)
    cells : cell list;
    system_counters : (string * int) list;
    sips : sips;
    sharing : (string * int) list;  (** system-wide totals, sorted *)
    cache_hit_rate : float option;
        (** hits / (hits + remote locates); [None] when the run made no
            remote lookups at all — omitted from the JSON rather than
            emitting 0/0. *)
    recovery_timeline : (string * int64) list;
  }

  (** Sharing total by name, 0 when absent. *)
  val sharing_total : t -> string -> int

  (** Client-side histogram for one RPC op, if any calls were made. *)
  val client_hist : t -> string -> hist option

  (** End-to-end op histogram by ["class|phase"] key, if recorded. *)
  val op_hist : t -> string -> hist option

  (** [hist_quantile h q] estimates the [q]-th percentile (0..100) from
      the exported log-scale buckets with linear interpolation inside
      the target bucket, clamped to [min_ns, max_ns]. The summary fields
      (sample-based) are more accurate where they exist; this covers
      arbitrary quantiles of an already-serialized histogram. *)
  val hist_quantile : hist -> float -> float

  val to_json : t -> Sim.Json.t

  val of_json : Sim.Json.t -> (t, string) result

  (** Compact JSON text; [of_string (to_string t) = Ok t]. *)
  val to_string : t -> string

  val of_string : string -> (t, string) result
end

(** Freeze a snapshot of a live system. *)
val capture : Types.system -> Snapshot.t

(** System-wide sharing-protocol totals (imports, cache hits, releases,
    invalidations, ...) summed over cells. *)
val sharing_totals : Types.system -> (string * int) list

(** share.cache_hits / (share.cache_hits + fs.remote_locates), [None]
    when the run made no remote page lookups (avoids a 0/0). *)
val cache_hit_rate : Types.system -> float option

(** [capture] rendered as compact JSON text. *)
val to_json : Types.system -> string

(** Write {!to_json} to [path]. *)
val write_file : Types.system -> string -> unit

(** Print a human-readable summary of a snapshot (per-op RPC latency
    percentiles, sharing totals and the recovery timeline) to stdout. *)
val print_summary : Snapshot.t -> unit
