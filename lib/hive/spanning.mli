(** Spanning tasks (Section 3.2).

   "Hive extends the UNIX process abstraction to span cell boundaries. A
   single parallel process can run threads on multiple cells at the same
   time. Each cell runs a separate local process containing the threads
   that are local to that cell. Shared process state such as the address
   space map is kept consistent among the component processes."

   The paper lists spanning tasks as not yet implemented; this module
   implements them on top of the existing sharing machinery: the task's
   shared segment is an unlinked shared-memory object whose pages live at
   a data home and are exported writable to every component cell (so all
   the wild-write defense applies to it), and the address-space map is
   replicated into each component local process when a thread is added. *)

type t = {
  task_id : int;
  home_cell : Types.cell_id;
  shm_path : string;
  shared_npages : int;
  shared_gen : Types.generation;
  mutable components : Types.process list;
  mutable next_thread : int;
}
(* Reset the domain-local task-id generator (called by [System.boot]). *)
val reset_ids : unit -> unit
val create : Types.system -> Types.process -> shared_pages:int -> t
val shared_base : int
val map_shared : Types.system -> t -> Types.process -> unit
val add_thread :
  Types.system ->
  t ->
  on_cell:int ->
  name:string ->
  (Types.system -> Types.process -> unit) -> Types.process
val read_shared :
  Types.system -> Types.process -> page:int -> offset:int -> int64
val write_shared :
  Types.system ->
  Types.process -> page:int -> offset:int -> int64 -> unit
val join : Types.system -> t -> int list
val destroy : Types.system -> t -> unit
