(* Typed structured-event bus for the simulation.

   Subsystems emit *spans* (begin/end pairs bracketing an operation) and
   *instants* (point events) stamped with the virtual clock; each event
   carries a category, the owning cell, the emitting simulation thread and
   a list of key/value fields. Events flow to pluggable sinks: an
   in-memory ring buffer (tests, post-mortem), a JSONL stream, and a
   Chrome `trace_event` file loadable in chrome://tracing / Perfetto.

   Emission is free when no sink is attached (a single list check), so
   instrumentation can stay on hot paths unconditionally. *)

type value =
  | Int of int
  | I64 of int64
  | Float of float
  | Str of string
  | Bool of bool

type category =
  | Rpc
  | Syscall
  | Firewall
  | Recovery
  | Gate
  | Page
  | Proc
  | Workload
  | Custom of string

let category_to_string = function
  | Rpc -> "rpc"
  | Syscall -> "syscall"
  | Firewall -> "firewall"
  | Recovery -> "recovery"
  | Gate -> "gate"
  | Page -> "page"
  | Proc -> "proc"
  | Workload -> "workload"
  | Custom s -> s

type phase = Begin | End | Instant | Counter

let phase_to_string = function
  | Begin -> "B"
  | End -> "E"
  | Instant -> "i"
  | Counter -> "C"

type t = {
  ts : int64; (* virtual time, ns *)
  cat : category;
  name : string;
  phase : phase;
  cell : int; (* owning cell, or -1 for system-wide *)
  tid : int; (* emitting simulation thread *)
  args : (string * value) list;
}

type sink = { emit : t -> unit; flush : unit -> unit }

type bus = { eng : Engine.t; mutable sinks : sink list }

let create eng = { eng; sinks = [] }

let attach bus sink = bus.sinks <- bus.sinks @ [ sink ]

let enabled bus = bus.sinks <> []

let flush bus = List.iter (fun s -> s.flush ()) bus.sinks

let emit bus ?(cell = -1) ?(args = []) ~cat ~phase name =
  if bus.sinks <> [] then begin
    let e =
      {
        ts = Engine.now bus.eng;
        cat;
        name;
        phase;
        cell;
        tid = Engine.current_tid bus.eng;
        args;
      }
    in
    List.iter (fun s -> s.emit e) bus.sinks
  end

let instant bus ?cell ?args ~cat name =
  emit bus ?cell ?args ~cat ~phase:Instant name

let counter bus ?cell ~cat name v =
  emit bus ?cell ~args:[ ("value", Int v) ] ~cat ~phase:Counter name

(* Run [f] inside a span. The [End] event is emitted even if [f] raises
   (including thread kill during recovery), so span trees stay balanced. *)
let span bus ?cell ?args ~cat name f =
  if bus.sinks = [] then f ()
  else begin
    emit bus ?cell ?args ~cat ~phase:Begin name;
    match f () with
    | v ->
      emit bus ?cell ~cat ~phase:End name;
      v
    | exception e ->
      emit bus ?cell ~cat ~phase:End name;
      raise e
  end

(* ---------- Ring-buffer sink ---------- *)

type ring = {
  rbuf : t option array;
  mutable rnext : int;
  mutable rcount : int; (* total events ever emitted *)
}

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Event.ring: capacity must be positive";
  { rbuf = Array.make capacity None; rnext = 0; rcount = 0 }

let ring_sink r =
  {
    emit =
      (fun e ->
        r.rbuf.(r.rnext) <- Some e;
        r.rnext <- (r.rnext + 1) mod Array.length r.rbuf;
        r.rcount <- r.rcount + 1);
    flush = (fun () -> ());
  }

(* Buffered events, oldest first. *)
let ring_contents r =
  let cap = Array.length r.rbuf in
  let n = min r.rcount cap in
  let start = (r.rnext - n + cap) mod cap in
  List.init n (fun i ->
      match r.rbuf.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let ring_total r = r.rcount

(* ---------- JSON helpers (shared by the file sinks) ---------- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_value b = function
  | Int i -> Buffer.add_string b (string_of_int i)
  | I64 i -> Buffer.add_string b (Int64.to_string i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.0f" f)
    else Buffer.add_string b (Printf.sprintf "%g" f)
  | Str s ->
    Buffer.add_char b '"';
    json_escape b s;
    Buffer.add_char b '"'
  | Bool v -> Buffer.add_string b (if v then "true" else "false")

let json_args b args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      json_escape b k;
      Buffer.add_string b "\":";
      json_value b v)
    args;
  Buffer.add_char b '}'

(* One event as a Chrome trace_event JSON object. [ts] is microseconds;
   pid is the cell (so each cell gets its own track group) and tid the
   simulation thread, which makes B/E pairs nest correctly. *)
let event_to_json e =
  let b = Buffer.create 160 in
  Buffer.add_string b "{\"name\":\"";
  json_escape b e.name;
  Buffer.add_string b "\",\"cat\":\"";
  Buffer.add_string b (category_to_string e.cat);
  Buffer.add_string b "\",\"ph\":\"";
  Buffer.add_string b (phase_to_string e.phase);
  Buffer.add_string b "\",\"ts\":";
  Buffer.add_string b (Printf.sprintf "%.3f" (Int64.to_float e.ts /. 1e3));
  (match e.phase with
  | Instant -> Buffer.add_string b ",\"s\":\"t\""
  | Begin | End | Counter -> ());
  Buffer.add_string b ",\"pid\":";
  Buffer.add_string b (string_of_int (if e.cell < 0 then 999 else e.cell));
  Buffer.add_string b ",\"tid\":";
  Buffer.add_string b (string_of_int e.tid);
  if e.args <> [] then begin
    Buffer.add_string b ",\"args\":";
    json_args b e.args
  end;
  Buffer.add_char b '}';
  Buffer.contents b

(* ---------- JSONL sink: one JSON object per line ---------- *)

let jsonl_sink oc =
  {
    emit =
      (fun e ->
        output_string oc (event_to_json e);
        output_char oc '\n');
    flush = (fun () -> Stdlib.flush oc);
  }

(* ---------- Chrome trace_event sink: a JSON array ---------- *)

(* Write Chrome trace_event objects to [oc] as one JSON array. Returns
   the sink and a terminator function that closes the array (without
   closing [oc], which the caller owns). [flush] only flushes the
   channel — it must NOT emit the `]` and reopen a fresh `[`, which
   used to leave a flushed-then-continued trace as two concatenated
   JSON arrays that Perfetto rejects; only the terminator writes `]`.
   Chrome's parser tolerates a missing terminator, so a crashed run's
   partial trace still loads. *)
let chrome_sink oc =
  let first = ref true in
  output_string oc "[\n";
  let sink =
    {
      emit =
        (fun e ->
          if !first then first := false else output_string oc ",\n";
          output_string oc (event_to_json e));
      flush = (fun () -> Stdlib.flush oc);
    }
  in
  let terminate () =
    output_string oc "\n]\n";
    Stdlib.flush oc
  in
  (sink, terminate)

(* Open a Chrome trace file; returns the sink and a close function that
   terminates the JSON array and closes the file. *)
let chrome_file path =
  let oc = open_out path in
  let sink, terminate = chrome_sink oc in
  let close () =
    terminate ();
    close_out oc
  in
  (sink, close)

let jsonl_file path =
  let oc = open_out path in
  (jsonl_sink oc, fun () -> close_out oc)
