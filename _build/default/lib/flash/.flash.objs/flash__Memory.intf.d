lib/flash/memory.mli: Addr Bytes Config Firewall Sim
