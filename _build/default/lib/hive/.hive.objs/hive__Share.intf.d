lib/hive/share.mli: Types
