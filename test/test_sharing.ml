(* Memory-sharing corner cases: the logical/physical interactions of
   Section 5.5 and the Wax-directed clock hand. *)

let with_sys ?(ncells = 2) f =
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = ncells; mem_pages_per_node = 512 }
  in
  let sys = Hive.System.boot ~mcfg ~ncells ~wax:false eng in
  f eng sys

let in_thread sys body =
  let eng = sys.Hive.Types.eng in
  let thr = Sim.Engine.spawn eng ~name:"t" body in
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 60_000_000_000L) eng;
  Alcotest.(check bool) "thread done" true thr.Sim.Engine.dead

(* A frame simultaneously loaned out and imported back into its memory
   home (the CC-NUMA placement optimization): the memory home's pfdat is
   reused, not shadowed by an extended pfdat. *)
let test_loaned_and_reimported () =
  with_sys (fun _eng sys ->
      in_thread sys (fun () ->
          let c0 = sys.Hive.Types.cells.(0) in
          let c1 = sys.Hive.Types.cells.(1) in
          (* Cell 0 borrows a frame from cell 1 (cell 1 = memory home). *)
          let pfns = Hive.Page_alloc.borrow_from sys c0 ~home:1 ~count:1 in
          let pfn = List.hd pfns in
          let home_pf = Hashtbl.find c1.Hive.Types.frames pfn in
          Alcotest.(check bool) "loan recorded at memory home" true
            (home_pf.Hive.Types.loaned_to = Some 0);
          (* Cell 0 (data home) caches a logical page in the borrowed
             frame and exports it back to cell 1. *)
          let lid =
            { Hive.Types.tag =
                Hive.Types.File_obj { Hive.Types.home = 0; ino = 777 };
              page = 0 }
          in
          let data_pf = Hashtbl.find c0.Hive.Types.frames pfn in
          Hive.Pfdat.insert c0 lid data_pf;
          Hive.Share.export sys c0 data_pf ~client:1 ~writable:false;
          (* Cell 1 imports the page that physically lives in its own
             loaned frame: the preexisting pfdat must be reused. *)
          let imp =
            Hive.Share.import sys c1 ~pfn ~data_home:0 ~lid ~gen:0
              ~writable:false
          in
          Alcotest.(check bool) "reused the loaned pfdat" true (imp == home_pf);
          Alcotest.(check bool) "logical level bound" true
            (imp.Hive.Types.imported_from = Some 0);
          Alcotest.(check bool) "physical level intact" true
            (imp.Hive.Types.loaned_to = Some 0);
          Alcotest.(check int) "reimport counted" 1
            (Sim.Stats.value c1.Hive.Types.counters "share.reimports");
          (* Releasing the import keeps the loan. *)
          Hive.Share.release sys c1 imp;
          Alcotest.(check bool) "import dropped" true
            (imp.Hive.Types.imported_from = None);
          Alcotest.(check bool) "loan survives release" true
            (imp.Hive.Types.loaned_to = Some 0);
          Alcotest.(check bool) "frame record survives" true
            (Hashtbl.mem c1.Hive.Types.frames pfn)))

let test_clock_hand_returns_borrowed_frames () =
  with_sys (fun eng sys ->
      in_thread sys (fun () ->
          let c0 = sys.Hive.Types.cells.(0) in
          let c1 = sys.Hive.Types.cells.(1) in
          let loans_before = List.length c1.Hive.Types.reserved_loans in
          ignore (Hive.Page_alloc.borrow_from sys c0 ~home:1 ~count:4);
          Alcotest.(check int) "loans outstanding" (loans_before + 4)
            (List.length c1.Hive.Types.reserved_loans);
          (* Wax marks cell 1 as pressured; the clock hand must return the
             idle borrowed frames on its next sweep. *)
          c0.Hive.Types.clock_hand_targets <- [ 1 ]);
      Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 600_000_000L) eng;
      let c1 = sys.Hive.Types.cells.(1) in
      Alcotest.(check int) "loans returned by the clock hand" 0
        (List.length c1.Hive.Types.reserved_loans);
      let c0 = sys.Hive.Types.cells.(0) in
      Alcotest.(check bool) "clock hand counted its work" true
        (Sim.Stats.value c0.Hive.Types.counters "clock_hand.released" >= 4))

let test_borrowed_frames_not_returned_without_hint () =
  with_sys (fun eng sys ->
      in_thread sys (fun () ->
          let c0 = sys.Hive.Types.cells.(0) in
          ignore (Hive.Page_alloc.borrow_from sys c0 ~home:1 ~count:2));
      (* No Wax hint: several sweeps later the loan must still stand
         (the data home keeps its CC-NUMA placement). *)
      Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 600_000_000L) eng;
      let c1 = sys.Hive.Types.cells.(1) in
      Alcotest.(check int) "loans kept without pressure hint" 2
        (List.length c1.Hive.Types.reserved_loans))

let test_exhaustion_borrows_transparently () =
  (* Allocating far beyond a cell's own memory transparently borrows from
     the other cell (physical-level sharing under pressure). *)
  with_sys (fun _eng sys ->
      in_thread sys (fun () ->
          let c0 = sys.Hive.Types.cells.(0) in
          let own_pages = List.length c0.Hive.Types.free_frames in
          let n = own_pages + 64 in
          let remote = ref 0 in
          for _ = 1 to n do
            let pf = Hive.Page_alloc.alloc_frame sys c0 in
            if Flash.Addr.node_of_pfn sys.Hive.Types.mcfg pf.Hive.Types.pfn <> 0
            then incr remote
          done;
          Alcotest.(check bool) "borrowed under pressure" true (!remote >= 64)))

(* Property: the firewall's remotely-writable page count on the home
   always equals the number of pages with an outstanding writable export,
   through any interleaving of writable/read-only exports and releases. *)
let qcheck_firewall_tracks_exports =
  QCheck.Test.make
    ~name:"firewall count equals outstanding writable exports" ~count:30
    QCheck.(list_of_size Gen.(1 -- 20) (pair (int_bound 7) bool))
    (fun script ->
      let eng = Sim.Engine.create () in
      let mcfg =
        { Flash.Config.small with Flash.Config.nodes = 2; mem_pages_per_node = 512 }
      in
      let sys = Hive.System.boot ~mcfg ~ncells:2 ~wax:false eng in
      let ok = ref true in
      let thr =
        Sim.Engine.spawn eng ~name:"q" (fun () ->
            let c0 = sys.Hive.Types.cells.(0) in
            let c1 = sys.Hive.Types.cells.(1) in
            (* Eight pages of a cell-0 file. *)
            let pfs =
              List.init 8 (fun page ->
                  let pf = Hive.Page_alloc.alloc_frame sys c0 in
                  let lid =
                    { Hive.Types.tag =
                        Hive.Types.File_obj { Hive.Types.home = 0; ino = 500 };
                      page }
                  in
                  Hive.Pfdat.insert c0 lid pf;
                  (lid, pf))
            in
            let writable_exports = Hashtbl.create 8 in
            List.iter
              (fun (page, writable) ->
                let lid, pf = List.nth pfs page in
                if Hashtbl.mem writable_exports page then begin
                  (* Release from the client side. *)
                  (match Hive.Pfdat.lookup c1 lid with
                  | Some imp -> Hive.Share.release sys c1 imp
                  | None -> ());
                  Hashtbl.remove writable_exports page
                end
                else begin
                  Hive.Share.export sys c0 pf ~client:1 ~writable;
                  ignore
                    (Hive.Share.import sys c1 ~pfn:pf.Hive.Types.pfn
                       ~data_home:0 ~lid ~gen:0 ~writable);
                  if writable then Hashtbl.replace writable_exports page ()
                end;
                let expected = Hashtbl.length writable_exports in
                let measured =
                  Hive.Wild_write.remotely_writable_pages sys c0
                in
                if measured <> expected then ok := false)
              script)
      in
      Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 60_000_000_000L) eng;
      !ok && thr.Sim.Engine.dead)

let suite =
  [
    Alcotest.test_case "loaned frame reimported reuses pfdat (S5.5)" `Quick
      test_loaned_and_reimported;
    Alcotest.test_case "clock hand returns loans to pressured homes" `Quick
      test_clock_hand_returns_borrowed_frames;
    Alcotest.test_case "loans kept without pressure hint" `Quick
      test_borrowed_frames_not_returned_without_hint;
    Alcotest.test_case "allocation borrows transparently when exhausted"
      `Quick test_exhaustion_borrows_transparently;
    QCheck_alcotest.to_alcotest qcheck_firewall_tracks_exports;
  ]
