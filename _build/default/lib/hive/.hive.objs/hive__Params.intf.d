lib/hive/params.mli:
