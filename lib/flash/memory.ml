type error_cause = Node_failed | Cutoff | Firewall_denied | Invalid_address

exception Bus_error of { addr : Addr.t; cause : error_cause }

(* Node memory is page-granular and lazily allocated: a slot holds
   [None] until the first write lands on that page, and reads of
   never-written pages serve zeros. Booting a node is then O(pages) slot
   initialization instead of zeroing tens of megabytes of backing store
   — which dominated fuzz-campaign boot time — and a machine only ever
   holds its working set. *)
type node_mem = {
  pages : Bytes.t option array;
  mutable accessible : bool; (* false once failed *)
  mutable cutoff : bool; (* memory cutoff: remote accesses refused *)
}

type t = {
  cfg : Config.t;
  firewall : Firewall.t;
  nodes : node_mem array;
  reads : Sim.Stats.counter;
  writes : Sim.Stats.counter;
  remote_write_miss_ns : Sim.Stats.summary;
  wild_writes : Sim.Stats.counter;
}

let create cfg =
  {
    cfg;
    firewall = Firewall.create cfg;
    nodes =
      Array.init cfg.Config.nodes (fun _ ->
          {
            pages = Array.make cfg.Config.mem_pages_per_node None;
            accessible = true;
            cutoff = false;
          });
    reads = Sim.Stats.counter ();
    writes = Sim.Stats.counter ();
    remote_write_miss_ns = Sim.Stats.summary ~keep_samples:false ();
    wild_writes = Sim.Stats.counter ();
  }

(* Gather [len] bytes starting at node-local offset [off] into a fresh
   buffer; unallocated pages read as zeros. *)
let copy_out cfg (nm : node_mem) ~off len =
  let psize = cfg.Config.page_size in
  let dst = Bytes.make len '\000' in
  let pos = ref 0 in
  while !pos < len do
    let o = off + !pos in
    let page = o / psize and inpage = o mod psize in
    let n = min (len - !pos) (psize - inpage) in
    (match nm.pages.(page) with
    | Some b -> Bytes.blit b inpage dst !pos n
    | None -> ());
    pos := !pos + n
  done;
  dst

(* Scatter [src] to node-local offset [off], allocating pages on first
   touch. *)
let copy_in cfg (nm : node_mem) ~off src =
  let psize = cfg.Config.page_size in
  let len = Bytes.length src in
  let pos = ref 0 in
  while !pos < len do
    let o = off + !pos in
    let page = o / psize and inpage = o mod psize in
    let n = min (len - !pos) (psize - inpage) in
    let b =
      match nm.pages.(page) with
      | Some b -> b
      | None ->
        let b = Bytes.make psize '\000' in
        nm.pages.(page) <- Some b;
        b
    in
    Bytes.blit src !pos b inpage n;
    pos := !pos + n
  done

let firewall t = t.firewall

let cfg t = t.cfg

let fail_node t node = t.nodes.(node).accessible <- false

let cutoff_node t node = t.nodes.(node).cutoff <- true

let restore_node t node =
  let nm = t.nodes.(node) in
  nm.accessible <- true;
  nm.cutoff <- false;
  (* Memory content is lost on failure: drop the pages (freeing the old
     working set) rather than zeroing them in place. *)
  Array.fill nm.pages 0 (Array.length nm.pages) None

let node_accessible t node = t.nodes.(node).accessible

let bounds_check t addr len =
  if
    len < 0 || addr < 0
    || addr + len > Config.total_pages t.cfg * t.cfg.Config.page_size
  then raise (Bus_error { addr; cause = Invalid_address })

let target t ~by addr len =
  bounds_check t addr len;
  let node = Addr.node_of_addr t.cfg addr in
  let nm = t.nodes.(node) in
  if not nm.accessible then raise (Bus_error { addr; cause = Node_failed });
  if nm.cutoff && node <> by then raise (Bus_error { addr; cause = Cutoff });
  (node, nm)

(* Latency of an access that misses to memory: one miss per cache line
   touched. Reads and writes share the model; writes to remote pages add
   the firewall ownership-request check. *)
let access_cost t ~by ~node ~write bytes =
  let lines = Config.lines_for t.cfg (max 1 bytes) in
  let base = Int64.mul (Int64.of_int lines) t.cfg.Config.mem_ns in
  if write && t.cfg.Config.firewall_enabled then begin
    let check =
      Int64.mul (Int64.of_int lines) t.cfg.Config.firewall_check_ns
    in
    let cost = Int64.add base check in
    if node <> by then
      Sim.Stats.add t.remote_write_miss_ns
        (Int64.to_float (Int64.div cost (Int64.of_int lines)));
    cost
  end
  else begin
    if write && node <> by then
      Sim.Stats.add t.remote_write_miss_ns
        (Int64.to_float t.cfg.Config.mem_ns);
    base
  end

(* Shared prologue of every timed read: liveness checks, counter, line
   latency, post-delay liveness re-check (the node may have died
   mid-access). Returns the node memory and node-local offset. *)
let read_prologue eng t ~by addr len =
  let node, nm = target t ~by addr len in
  Sim.Stats.incr t.reads;
  Sim.Engine.delay (access_cost t ~by ~node ~write:false len);
  if not nm.accessible then raise (Bus_error { addr; cause = Node_failed });
  ignore eng;
  (nm, addr - node * Config.mem_bytes_per_node t.cfg)

let read eng t ~by addr len =
  let nm, off = read_prologue eng t ~by addr len in
  copy_out t.cfg nm ~off len

(* Cached read: the line is expected hot in the local cache (kernel
   structures the owner touches constantly); charges L2-hit latency but
   obeys the same fault model. *)
let cached_prologue eng t ~by addr len =
  let node, nm = target t ~by addr len in
  Sim.Stats.incr t.reads;
  let lines = Config.lines_for t.cfg (max 1 len) in
  Sim.Engine.delay (Int64.mul (Int64.of_int lines) t.cfg.Config.l2_hit_ns);
  if not nm.accessible then raise (Bus_error { addr; cause = Node_failed });
  ignore eng;
  (nm, addr - node * Config.mem_bytes_per_node t.cfg)

let read_cached eng t ~by addr len =
  let nm, off = cached_prologue eng t ~by addr len in
  copy_out t.cfg nm ~off len

(* Word-sized accessors skip the intermediate buffer when the word sits
   inside one page (always, for the aligned kernel words on the hot
   clock-tick / kmem / careful-reference paths); latency and fault model
   are identical to the buffer path. *)
let get_i64 cfg (nm : node_mem) ~off =
  let psize = cfg.Config.page_size in
  if (off mod psize) + 8 <= psize then
    match nm.pages.(off / psize) with
    | Some b -> Bytes.get_int64_le b (off mod psize)
    | None -> 0L
  else Bytes.get_int64_le (copy_out cfg nm ~off 8) 0

let read_u8 eng t ~by addr =
  let nm, off = read_prologue eng t ~by addr 1 in
  let psize = t.cfg.Config.page_size in
  match nm.pages.(off / psize) with
  | Some b -> Char.code (Bytes.get b (off mod psize))
  | None -> 0

let read_i64 eng t ~by addr =
  let nm, off = read_prologue eng t ~by addr 8 in
  get_i64 t.cfg nm ~off

let read_cached_i64 eng t ~by addr =
  let nm, off = cached_prologue eng t ~by addr 8 in
  get_i64 t.cfg nm ~off

(* The coherence controller checks the firewall on each request for
   cache-line ownership; a write to a page whose bit is not set for the
   writing processor fails with a bus error. *)
let check_firewall t ~by addr len =
  if t.cfg.Config.firewall_enabled then begin
    let first = Addr.pfn_of_addr t.cfg addr in
    let last = Addr.pfn_of_addr t.cfg (addr + max 0 (len - 1)) in
    for pfn = first to last do
      if not (Firewall.allowed t.firewall ~pfn ~proc:by) then
        raise (Bus_error { addr; cause = Firewall_denied })
    done
  end

let write_prologue eng t ~by addr len =
  let node, nm = target t ~by addr len in
  check_firewall t ~by addr len;
  Sim.Stats.incr t.writes;
  Sim.Engine.delay (access_cost t ~by ~node ~write:true len);
  if not nm.accessible then raise (Bus_error { addr; cause = Node_failed });
  ignore eng;
  (nm, addr - node * Config.mem_bytes_per_node t.cfg)

let write eng t ~by addr bytes =
  let nm, off = write_prologue eng t ~by addr (Bytes.length bytes) in
  copy_in t.cfg nm ~off bytes

let page_for_write cfg (nm : node_mem) page =
  match nm.pages.(page) with
  | Some b -> b
  | None ->
    let b = Bytes.make cfg.Config.page_size '\000' in
    nm.pages.(page) <- Some b;
    b

let write_u8 eng t ~by addr v =
  let nm, off = write_prologue eng t ~by addr 1 in
  let psize = t.cfg.Config.page_size in
  Bytes.set (page_for_write t.cfg nm (off / psize)) (off mod psize)
    (Char.chr (v land 0xff))

let write_i64 eng t ~by addr v =
  let nm, off = write_prologue eng t ~by addr 8 in
  let psize = t.cfg.Config.page_size in
  if (off mod psize) + 8 <= psize then
    Bytes.set_int64_le (page_for_write t.cfg nm (off / psize)) (off mod psize) v
  else begin
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 v;
    copy_in t.cfg nm ~off b
  end

(* Out-of-band access used by fault injection and test assertions: no
   latency, no firewall, no liveness checks. A wild write issued through
   [poke_wild] still honours the firewall (that is the point of the
   hardware) but bypasses the latency model. *)
let peek t addr len =
  bounds_check t addr len;
  let node = Addr.node_of_addr t.cfg addr in
  copy_out t.cfg t.nodes.(node)
    ~off:(addr - node * Config.mem_bytes_per_node t.cfg)
    len

let peek_i64 t addr =
  bounds_check t addr 8;
  let node = Addr.node_of_addr t.cfg addr in
  get_i64 t.cfg t.nodes.(node)
    ~off:(addr - node * Config.mem_bytes_per_node t.cfg)

let poke t addr bytes =
  bounds_check t addr (Bytes.length bytes);
  let node = Addr.node_of_addr t.cfg addr in
  copy_in t.cfg t.nodes.(node)
    ~off:(addr - node * Config.mem_bytes_per_node t.cfg)
    bytes

let poke_wild t ~by addr bytes =
  let len = Bytes.length bytes in
  bounds_check t addr len;
  if t.cfg.Config.firewall_enabled then begin
    let first = Addr.pfn_of_addr t.cfg addr in
    let last = Addr.pfn_of_addr t.cfg (addr + max 0 (len - 1)) in
    for pfn = first to last do
      if not (Firewall.allowed t.firewall ~pfn ~proc:by) then
        raise (Bus_error { addr; cause = Firewall_denied })
    done
  end;
  Sim.Stats.incr t.wild_writes;
  poke t addr bytes

let stats t =
  ( Sim.Stats.get t.reads,
    Sim.Stats.get t.writes,
    Sim.Stats.get t.wild_writes )

let remote_write_miss_avg_ns t = Sim.Stats.mean t.remote_write_miss_ns
