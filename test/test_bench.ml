(* Bench subsystem tests: typed metrics snapshot round-trip, the nan
   guard on ratio metrics, sweep determinism, and the regression gate. *)

open Bench

(* Boot a 2-cell system and drive some RPC + sharing traffic so the
   snapshot has non-trivial histograms, counters and a cache hit rate. *)
let driven_system () =
  let eng, sys = Harness.boot ~ncells:2 () in
  Harness.register_bench_ops ();
  ignore (Harness.avg_rpc_us eng sys ~op:Harness.noop_op ~arg_bytes:16 ~n:50);
  let npages = 8 in
  let path = Harness.make_warm_file sys ~npages in
  let touch_pass () =
    let p =
      Hive.Process.spawn sys sys.Hive.Types.cells.(1) ~name:"reader"
        (fun sys p ->
          let fd = Hive.Syscall.openf sys p path in
          let r = Hive.Syscall.mmap_file sys p ~fd ~npages ~writable:false in
          for k = 0 to npages - 1 do
            Hive.Syscall.touch sys p ~vpage:(r.Hive.Types.start_page + k)
              ~write:false
          done)
    in
    ignore
      (Hive.System.run_until_processes_done sys
         ~deadline:(Int64.add (Sim.Engine.now eng) 60_000_000_000L)
         [ p ]);
    Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 100_000_000L) eng
  in
  touch_pass ();
  touch_pass ();
  sys

let test_snapshot_roundtrip () =
  let sys = driven_system () in
  let snap = Hive.Metrics.capture sys in
  (match snap.Hive.Metrics.Snapshot.cache_hit_rate with
  | Some r -> Alcotest.(check bool) "hit rate in [0,1]" true (r >= 0. && r <= 1.)
  | None -> Alcotest.fail "driven system should have a cache hit rate");
  Alcotest.(check bool) "client histograms present" true
    (snap.Hive.Metrics.Snapshot.rpc_client <> []);
  let s = Hive.Metrics.Snapshot.to_string snap in
  match Hive.Metrics.Snapshot.of_string s with
  | Error e -> Alcotest.failf "of_string failed: %s" e
  | Ok snap' ->
    Alcotest.(check bool) "snapshot round-trips structurally equal" true
      (snap = snap');
    (* And the re-serialization is byte-identical. *)
    Alcotest.(check string) "re-serialization is byte-identical" s
      (Hive.Metrics.Snapshot.to_string snap')

let test_hit_rate_nan_guard () =
  (* An idle system has zero lookups: the ratio must be absent, never
     0/0 = nan. *)
  let _eng, sys = Harness.boot ~ncells:2 () in
  Alcotest.(check bool) "idle hit rate is None" true
    (Hive.Metrics.cache_hit_rate sys = None);
  let snap = Hive.Metrics.capture sys in
  Alcotest.(check bool) "snapshot hit rate is None" true
    (snap.Hive.Metrics.Snapshot.cache_hit_rate = None);
  let s = Hive.Metrics.to_json sys in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "JSON has no nan" false (contains s "nan");
  Alcotest.(check bool) "JSON omits cache_hit_rate" false
    (contains s "cache_hit_rate");
  match Hive.Metrics.Snapshot.of_string s with
  | Error e -> Alcotest.failf "idle snapshot does not parse: %s" e
  | Ok snap' ->
    Alcotest.(check bool) "idle snapshot round-trips" true (snap = snap')

(* The cheapest real grid row, used for the determinism and gate tests. *)
let quick_rpc_reports () =
  Scenarios.register ();
  Sweep.run ~areas:[ "rpc" ] ~quick:true
    ~dims_filter:(fun d -> d.Scenario.link_ms = 0)
    ~verbose:false ()

let test_sweep_deterministic () =
  let r1 = quick_rpc_reports () in
  let r2 = quick_rpc_reports () in
  let render rs =
    String.concat "\n"
      (List.map
         (fun r -> Sim.Json.to_string ~pretty:true (Sweep.report_to_json r))
         rs)
  in
  Alcotest.(check bool) "sweep produced rows" true
    (List.exists (fun r -> r.Sweep.a_rows <> []) r1);
  Alcotest.(check string) "two sweeps are byte-identical" (render r1)
    (render r2);
  (* And the report itself survives a JSON round trip. *)
  List.iter
    (fun r ->
      match Sweep.report_of_json (Sweep.report_to_json r) with
      | Error e -> Alcotest.failf "report round-trip failed: %s" e
      | Ok r' -> Alcotest.(check bool) "report equal" true (r = r'))
    r1

let scale_lower_better factor (reports : Sweep.report list) =
  List.map
    (fun (r : Sweep.report) ->
      {
        r with
        Sweep.a_rows =
          List.map
            (fun (row : Sweep.row) ->
              {
                row with
                Sweep.r_metrics =
                  List.map
                    (fun (m : Scenario.metric) ->
                      if m.Scenario.m_dir = Scenario.Lower_better then
                        { m with Scenario.m_value = m.Scenario.m_value *. factor }
                      else m)
                    row.Sweep.r_metrics;
              })
            r.Sweep.a_rows;
      })
    reports

let test_diff_gate () =
  let baseline = quick_rpc_reports () in
  (* Unchanged re-run: clean. *)
  let v = Diff.compare_reports ~baseline ~fresh:baseline () in
  Alcotest.(check int) "identical sweep has no regressions" 0
    (List.length v.Diff.regressions);
  Alcotest.(check bool) "metrics were compared" true (v.Diff.compared > 0);
  (* Planted 2x slowdown on every lower-is-better metric: flagged. *)
  let slow = scale_lower_better 2.0 baseline in
  let v = Diff.compare_reports ~baseline ~fresh:slow () in
  Alcotest.(check bool) "2x slowdown is flagged" true
    (v.Diff.regressions <> []);
  List.iter
    (fun (f : Diff.finding) ->
      Alcotest.(check (float 1e-6)) "change is +100%" 100. f.Diff.f_change_pct)
    v.Diff.regressions;
  (* The same movement in the other direction is an improvement. *)
  let fast = scale_lower_better 0.5 baseline in
  let v = Diff.compare_reports ~baseline ~fresh:fast () in
  Alcotest.(check int) "2x speedup is not a regression" 0
    (List.length v.Diff.regressions);
  Alcotest.(check bool) "2x speedup is an improvement" true
    (v.Diff.improvements <> [])

let test_diff_orientation () =
  let mk name dir value =
    {
      Sweep.a_area = "t";
      a_rows =
        [
          {
            Sweep.r_scenario = name;
            r_dims = Scenario.default_dims;
            r_metrics = [ Scenario.metric ~dir name value ];
          };
        ];
    }
  in
  (* Higher-better dropping is a regression; Info never is. *)
  let v =
    Diff.compare_reports
      ~baseline:[ mk "done" Scenario.Higher_better 100. ]
      ~fresh:[ mk "done" Scenario.Higher_better 50. ]
      ()
  in
  Alcotest.(check int) "higher-better drop flagged" 1
    (List.length v.Diff.regressions);
  let v =
    Diff.compare_reports
      ~baseline:[ mk "ctx" Scenario.Info 100. ]
      ~fresh:[ mk "ctx" Scenario.Info 5000. ]
      ()
  in
  Alcotest.(check int) "info metrics never gate" 0
    (List.length v.Diff.regressions);
  (* A quick CI sweep covering a subset of the committed trajectory only
     produces notes for the uncovered rows, not failures. *)
  let base = [ mk "a" Scenario.Lower_better 1.; mk "b" Scenario.Lower_better 1. ] in
  let v =
    Diff.compare_reports ~baseline:base
      ~fresh:[ mk "a" Scenario.Lower_better 1. ]
      ()
  in
  Alcotest.(check int) "subset sweep is clean" 0
    (List.length v.Diff.regressions);
  Alcotest.(check bool) "uncovered rows are noted" true (v.Diff.notes <> [])

let test_scenario_registry () =
  Scenarios.register ();
  Scenarios.register ();
  (* Idempotent registration, and quick grids are subsets of full grids. *)
  let scenarios = Scenario.all () in
  Alcotest.(check bool) "scenarios registered" true (List.length scenarios >= 5);
  List.iter
    (fun (s : Scenario.t) ->
      List.iter
        (fun q ->
          Alcotest.(check bool)
            (s.Scenario.sc_name ^ ": quick point is in the full grid")
            true
            (List.mem q s.Scenario.sc_dims))
        s.Scenario.sc_quick)
    scenarios;
  Alcotest.check_raises "duplicate declaration rejected"
    (Invalid_argument "Scenario.declare: duplicate null-rpc")
    (fun () ->
      ignore
        (Scenario.declare ~name:"null-rpc" ~area:"rpc"
           ~dims:[ Scenario.default_dims ] (fun _ -> [])))

let suite =
  [
    Alcotest.test_case "metrics snapshot JSON round-trips" `Quick
      test_snapshot_roundtrip;
    Alcotest.test_case "cache hit rate never emits nan" `Quick
      test_hit_rate_nan_guard;
    Alcotest.test_case "sweep output is deterministic" `Slow
      test_sweep_deterministic;
    Alcotest.test_case "diff flags a planted 2x slowdown" `Slow
      test_diff_gate;
    Alcotest.test_case "diff respects metric direction" `Quick
      test_diff_orientation;
    Alcotest.test_case "scenario registry invariants" `Quick
      test_scenario_registry;
  ]
