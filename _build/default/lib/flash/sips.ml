type message = ..

type kind = Request | Reply

exception Too_large of int

exception Target_failed of int

type envelope = { src_proc : int; size : int; msg : message }

type node_queues = {
  requests : envelope Sim.Mailbox.t;
  replies : envelope Sim.Mailbox.t;
  mutable up : bool;
}

type t = {
  cfg : Config.t;
  eng : Sim.Engine.t;
  queues : node_queues array;
  sends : Sim.Stats.counter;
}

let max_payload = 128

let create eng cfg =
  {
    cfg;
    eng;
    queues =
      Array.init cfg.Config.nodes (fun _ ->
          {
            requests = Sim.Mailbox.create ();
            replies = Sim.Mailbox.create ();
            up = true;
          });
    sends = Sim.Stats.counter ();
  }

let fail_node t node = t.queues.(node).up <- false

let restore_node t node = t.queues.(node).up <- true

(* Each SIPS delivers one cache line of data (128 bytes) in about the
   latency of a cache miss, with an interrupt raised at the receiver. Data
   beyond a cache line must be sent by reference, so [size] is capped. *)
let send t ~from_proc ~to_node ~kind ~size msg =
  if size > max_payload then raise (Too_large size);
  let q = t.queues.(to_node) in
  if not q.up then raise (Target_failed to_node);
  Sim.Stats.incr t.sends;
  let latency = Int64.add t.cfg.Config.ipi_ns t.cfg.Config.sips_extra_ns in
  let env = { src_proc = from_proc; size; msg } in
  Sim.Engine.schedule t.eng ~after:latency (fun () ->
      if q.up then
        Sim.Mailbox.send t.eng
          (match kind with Request -> q.requests | Reply -> q.replies)
          env)

(* Blocking receive used by each node's interrupt dispatch thread. *)
let receive ?timeout t ~node ~kind =
  let q = t.queues.(node) in
  Sim.Mailbox.receive ?timeout t.eng
    (match kind with Request -> q.requests | Reply -> q.replies)

let pending t ~node ~kind =
  let q = t.queues.(node) in
  Sim.Mailbox.length (match kind with Request -> q.requests | Reply -> q.replies)

let send_count t = Sim.Stats.get t.sends
