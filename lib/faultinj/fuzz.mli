(** Deterministic simulation fuzzer (DST harness).

    A single 64-bit seed derives a whole experiment: machine shape (cells,
    nodes per cell), workload and its scaled-down configuration, an
    optional scheduler-jitter stream, and a randomized fault schedule
    (node fail-stops, address-map and COW-tree corruptions, cascades
    timed to land inside a recovery round). Because the simulation engine
    is deterministic, replaying a seed reproduces the run bit-for-bit;
    a failing seed can then be shrunk to a minimal reproducer. *)

type workload = Pmake | Ocean | Raytrace

(** Interactive-traffic shape for seeds that run the server workload. *)
type traffic = {
  t_rate : int;  (** system-wide arrival rate, requests/s *)
  t_zipf_pct : int;  (** Zipf [s] times 100; 0 = uniform *)
  t_churn_pct : int;
  t_deadline_ms : int;  (** end-to-end client budget *)
}

type plan = {
  seed : int64;
  ncells : int;
  nodes_per_cell : int;
  mem_pages_per_node : int;
  workload : workload;
  jitter : bool;
  faults : Campaign.fault list;  (** sorted by injection time *)
  traffic : traffic option;
      (** when set, interactive server traffic replaces the batch
          workload; [faults] still applies mid-traffic. Drawn from its
          own salted stream appended after every other draw, so seeds
          without traffic keep byte-identical plans. *)
}

type record = {
  r_seed : int64;
  r_plan : string;  (** human-readable plan summary *)
  r_injected : string list;  (** faults that actually landed, with cell *)
  r_completed : bool;  (** workload driver finished *)
  r_violations : string list;  (** invariant violations, empty = pass *)
  r_survivors : int list;
  r_sim_ns : int64;  (** virtual time at end of run *)
  r_events : int;
      (** events the engine scheduled: a deterministic measure of how
          much simulation work the seed did *)
}

val plan_of_seed : int64 -> plan

val describe_plan : plan -> string

(** Run one plan to completion and check every invariant. [demo_bug]
    plants a deliberate containment bug (a firewall grant the kernel
    never recorded) when a node failure lands — used to prove the
    checkers can catch one. [dup_bug] plants a transport bug instead:
    reply-cache suppression is disabled while a duplication-heavy
    machine-wide degradation window runs, so retransmitted requests
    execute twice and the at-most-once checker must flag it.
    [split_brain] plants an agreement bug: the quorum check is disabled
    (silence counts as a death vote) while cell 0 is severed from the
    rest of the machine, so both sides of the blackout confirm each
    other dead and elect concurrent recovery masters — the latched
    single-master oracle must flag the overlap.
    [trace_out] writes a Chrome trace_event JSON file of the run;
    [metrics_out] writes the end-of-run typed metrics snapshot as JSON. *)
val run_plan :
  ?demo_bug:bool ->
  ?dup_bug:bool ->
  ?split_brain:bool ->
  ?trace_out:string ->
  ?metrics_out:string ->
  plan ->
  record

val failed : record -> bool

(** One JSON object (single line, stable field order) per record; two
    replays of the same seed produce byte-identical lines. *)
val record_to_json : record -> string

(** Shrink a failing plan: repeatedly drop faults, round fault times to
    coarser grains, and disable jitter, keeping each simplification only
    if the plan still fails. Returns the minimal plan and its record.
    Raises [Invalid_argument] if the plan does not fail to begin with. *)
val shrink :
  ?demo_bug:bool -> ?dup_bug:bool -> ?split_brain:bool -> plan -> plan * record
