type t = {
  nodes : int;
  mem_pages_per_node : int;
  page_size : int;
  cycle_ns : int64;
  l1_hit_ns : int64;
  l2_hit_ns : int64;
  mem_ns : int64;
  cache_line : int;
  ipi_ns : int64;
  sips_extra_ns : int64;
  firewall_enabled : bool;
  firewall_check_ns : int64;
  firewall_writeback_check_ns : int64;
  uncached_op_ns : int64;
  disk_avg_access_ns : int64;
  disk_track_ns : int64;
  disk_bytes_per_ns : float;
  dma_setup_ns : int64;
  disk_blocks : int;
  swap_blocks : int;
}

(* Nodes cap: the firewall stores sparse multi-word permission vectors
   (see Firewall), so the machine is no longer limited to the 64
   processors of one vector word. The cap below only guards against
   nonsense configs; the paper's full envelope (64 cells over hundreds
   of nodes) fits comfortably. *)
let max_nodes = 1024

(* The paper's experimental machine: four 200-MHz R4000-class nodes, 32 MB
   per node, 700 ns average main-memory latency, 128-byte secondary cache
   lines, 700 ns IPI delivery and 300 ns extra for SIPS data access, and an
   HP-97560-class disk per node. *)
let default =
  {
    nodes = 4;
    mem_pages_per_node = 8192;
    page_size = 4096;
    cycle_ns = 5L;
    l1_hit_ns = 5L;
    l2_hit_ns = 50L;
    mem_ns = 700L;
    cache_line = 128;
    ipi_ns = 700L;
    sips_extra_ns = 300L;
    firewall_enabled = true;
    firewall_check_ns = 40L;
    firewall_writeback_check_ns = 25L;
    uncached_op_ns = 500L;
    disk_avg_access_ns = 15_000_000L;
    disk_track_ns = 2_000_000L;
    disk_bytes_per_ns = 2.3e-3;
    (* ~2.3 MB/s, HP 97560 class *)
    dma_setup_ns = 30_000L;
    (* HP 97560 class capacity: ~1.3 GB = 327680 4 KB blocks, the top
       65536 (256 MB) reserved as the cell's swap partition. *)
    disk_blocks = 327_680;
    swap_blocks = 65_536;
  }

let small =
  { default with nodes = 2; mem_pages_per_node = 256 }

let with_nodes cfg n = { cfg with nodes = n }

(* The firewall keeps one multi-word permission set per page, so the old
   64-node ceiling (one 64-bit vector word) is gone; [max_nodes] only
   rejects nonsense. Disk geometry must leave room for both a file area
   and the swap partition: the swap area is the top [swap_blocks] of the
   disk, and a config whose swap partition swallows the whole disk would
   silently overlap file blocks with swap. *)
let validate cfg =
  if cfg.nodes < 1 then invalid_arg "Flash.Config: need at least one node";
  if cfg.nodes > max_nodes then
    invalid_arg
      (Printf.sprintf "Flash.Config: at most %d nodes" max_nodes);
  if cfg.mem_pages_per_node < 1 then
    invalid_arg "Flash.Config: need at least one memory page per node";
  if cfg.disk_blocks < 1 then
    invalid_arg "Flash.Config: need a disk with at least one block";
  if cfg.swap_blocks < 1 || cfg.swap_blocks >= cfg.disk_blocks then
    invalid_arg
      "Flash.Config: swap partition must fit on the disk with room left \
       for file blocks (0 < swap_blocks < disk_blocks)"

(* First block of the per-node swap partition: the top [swap_blocks] of
   the disk. File-block allocation must stay strictly below this. *)
let swap_base cfg = cfg.disk_blocks - cfg.swap_blocks

let total_pages cfg = cfg.nodes * cfg.mem_pages_per_node

let mem_bytes_per_node cfg = cfg.mem_pages_per_node * cfg.page_size

let lines_for cfg bytes = (bytes + cfg.cache_line - 1) / cfg.cache_line

(* Cost of streaming [bytes] through the cache, missing on each line. *)
let copy_cost cfg bytes =
  Int64.mul (Int64.of_int (lines_for cfg bytes)) cfg.mem_ns

let cycles cfg n = Int64.mul (Int64.of_int n) cfg.cycle_ns
