lib/sim/barrier.ml: Engine List
