(** raytrace: rendering a teapot with 6 antialias rays per pixel
   (Table 7.1) — a parallel application whose workers read-share the scene
   built by the parent before the fork.

   The scene lives in the parent's anonymous memory, so every worker read
   is a copy-on-write tree search: on a multicell system, workers forked
   to other cells walk interior tree nodes on the parent's cell with the
   careful reference protocol and bind the pages with export/import — the
   exact path stressed by the paper's "during copy-on-write search" fault
   injections. Worker outputs mix in the scene words actually read, so a
   wild write to scene memory corrupts the output detectably. *)

type cfg = {
  workers : int;
  scene_pages : int;
  tile_pages : int;
  compute_ns : int64;
  build_ns : int64;
}
val default : cfg
val out_path : int -> string
val scene_word : int -> int64
val expected_scene_sum : cfg -> int64
val expected_output : cfg -> int -> bytes
val worker :
  cfg ->
  w:int ->
  scene_region:Hive.Types.region ->
  Hive.Types.system -> Hive.Types.process -> unit
val driver : cfg -> Hive.Types.system -> Hive.Types.process -> unit
val run :
  ?cfg:cfg ->
  Hive.Types.system -> Workload.result * Hive.Types.process
val verify :
  ?cfg:cfg ->
  Hive.Types.system -> (string * Workload.verify_outcome) list
