(* Calibrated kernel path costs, in nanoseconds of 200-MHz processor time.

   These are *component* costs taken from the paper's measured breakdowns
   (Table 5.2 and Section 6); end-to-end latencies, ratios and workload
   slowdowns are not hardcoded anywhere — they emerge from composing these
   components with the machine model, and the benches compare the emergent
   numbers against the paper. *)

type t = {
  (* Clock and failure detection *)
  tick_ns : int64;
  clock_check_cost_ns : int64;
  clock_stall_ticks : int;
  rpc_timeout_ns : int64;
  spin_timeout_ns : int64;
  (* At-most-once RPC transport: retransmission bounds and backoff.
     A per-attempt timeout of [rpc_timeout_ns] plus [rpc_max_retries]
     retransmits with exponential backoff (base doubling up to the cap,
     plus deterministic jitter) rides out transient link degradation; only
     exhausting every attempt reports a failure hint. *)
  rpc_max_retries : int;
  rpc_backoff_base_ns : int64;
  rpc_backoff_cap_ns : int64;
  rpc_dup_suppression : bool;
      (* servers drop retransmits of already-executed calls (false only in
         fault-injection runs that model the historical transport bug) *)
  rpc_epoch_check : bool;
      (* clients drop replies stamped with a previous incarnation (false
         only in runs proving the epoch invariant checker has teeth) *)
  rpc_deadline_ns : int64;
      (* default end-to-end budget for a call, spanning every retransmit
         and backoff sleep; 0 = unlimited (the per-attempt schedule alone
         bounds the call). Callers override per call with ?deadline_ns. *)
  rpc_queue_bound : int;
      (* admission control for ops declared [sheddable]: a sheddable
         request arriving while the server's queued-service backlog is at
         least this deep is refused with EBUSY instead of queued *)
  (* Careful reference protocol *)
  careful_on_ns : int64;
  careful_off_ns : int64;
  careful_check_ns : int64;
  (* RPC engine *)
  rpc_client_send_ns : int64;
  rpc_client_recv_ns : int64;
  rpc_server_dispatch_ns : int64;
  rpc_server_reply_ns : int64;
  rpc_stub_marshal_ns : int64;
  rpc_alloc_free_ns : int64;
  rpc_queue_handoff_ns : int64;
  rpc_context_switch_ns : int64;
  rpc_server_pool : int;
  (* Virtual memory paths (Table 5.2 components) *)
  fault_local_hit_ns : int64;
  fault_client_fs_ns : int64;
  fault_client_lock_ns : int64;
  fault_client_vm_ns : int64;
  fault_import_ns : int64;
  fault_home_vm_ns : int64;
  fault_export_ns : int64;
  (* File system paths *)
  open_local_ns : int64;
  open_remote_extra_ns : int64;
  read_write_page_overhead_ns : int64;
  remote_read_bind_ns : int64;
  fs_block_alloc_ns : int64;
  (* Process management *)
  fork_local_ns : int64;
  fork_remote_extra_ns : int64;
  exec_ns : int64;
  exit_ns : int64;
  context_switch_ns : int64;
  (* Recovery *)
  enable_preemptive_discard : bool;
      (* ablation knob: turn off the wild-write defense's discard step *)
  auto_reintegrate : bool;
      (* recovery master reboots and reintegrates the failed cells once
         their hardware diagnostics pass (off = leave them down, as the
         paper's prototype did) *)
  max_refault_retries : int;
      (* bound on firewall-denied refault retries before a write gives up
         with EFAULT (a persistent denial would otherwise livelock) *)
  recovery_scan_page_ns : int64;
  recovery_phase_ns : int64;
  agreement_vote_ns : int64;
  agreement_quorum_check : bool;
      (* under a partition, an accuser whose reachable side is not a strict
         majority of its live set must stand down instead of confirming
         (false only in runs proving the single-master checker has teeth) *)
  enable_salvage : bool;
      (* when a cell's processors die but its memory stays readable
         (Cpu_dead_mem_alive), survivors copy generation-clean, wild-write-
         filtered imported pages into local frames instead of dropping the
         bindings (ablation knob for the salvage-vs-discard A/B) *)
  salvage_copy_ns : int64; (* per-page remote-read-and-copy cost *)
  (* Wax *)
  wax_period_ns : int64;
  wax_scan_cost_ns : int64;
  wax_pressure_pct : int;
      (* a cell is under memory pressure when its free frames drop below
         this percentage of the frames it owns (floor of 8); replaces the
         old fixed 32-frame threshold, which was meaningless for both
         tiny test cells and 64-cell machines *)
  wax_swap_want : int;
      (* frames a swap hint asks a pressured cell to push to swap; the
         cell's own thread validates the hint before acting *)
  wax_pref_len : int;
      (* length of the allocation-preference hint list (the k cells with
         the most free memory, selected without sorting every cell) *)
  clock_hand_low_pct : int;
      (* clock-hand local-pressure watermark, as a percentage of owned
         frames (floor of 8); was a fixed 64 frames *)
  (* Remote-page import cache and batched sharing protocol *)
  enable_import_cache : bool;
      (* park released read-only imports in a per-cell cache instead of
         freeing them, so re-access skips the locate RPC *)
  import_cache_pages : int; (* parked bindings per cell before eviction *)
  fault_readahead_max : int;
      (* cap on the adaptive read-ahead window for sequential fault
         streams (1 = the old locate-one-page-per-fault behavior) *)
  batch_releases : bool;
      (* coalesce import releases into one vectored RPC per data home *)
}

let default =
  {
    tick_ns = 10_000_000L;
    clock_check_cost_ns = 230L;
    clock_stall_ticks = 2;
    rpc_timeout_ns = 200_000_000L;
    spin_timeout_ns = 50_000L;
    rpc_max_retries = 3;
    rpc_backoff_base_ns = 20_000_000L;
    rpc_backoff_cap_ns = 160_000_000L;
    rpc_dup_suppression = true;
    rpc_epoch_check = true;
    rpc_deadline_ns = 0L;
    rpc_queue_bound = 64;
    careful_on_ns = 260L;
    careful_off_ns = 200L;
    careful_check_ns = 60L;
    rpc_client_send_ns = 1_200L;
    rpc_client_recv_ns = 1_150L;
    rpc_server_dispatch_ns = 1_650L;
    rpc_server_reply_ns = 1_200L;
    rpc_stub_marshal_ns = 2_400L;
    rpc_alloc_free_ns = 3_700L;
    rpc_queue_handoff_ns = 13_000L;
    rpc_context_switch_ns = 14_000L;
    rpc_server_pool = 4;
    fault_local_hit_ns = 6_900L;
    fault_client_fs_ns = 9_000L;
    fault_client_lock_ns = 5_500L;
    fault_client_vm_ns = 8_700L;
    fault_import_ns = 4_800L;
    fault_home_vm_ns = 3_400L;
    fault_export_ns = 2_000L;
    open_local_ns = 148_000L;
    open_remote_extra_ns = 380_000L;
    read_write_page_overhead_ns = 16_000L;
    remote_read_bind_ns = 3_500L;
    fs_block_alloc_ns = 20_000L;
    fork_local_ns = 700_000L;
    fork_remote_extra_ns = 250_000L;
    exec_ns = 900_000L;
    exit_ns = 300_000L;
    context_switch_ns = 10_000L;
    enable_preemptive_discard = true;
    auto_reintegrate = true;
    max_refault_retries = 3;
    recovery_scan_page_ns = 400L;
    recovery_phase_ns = 14_000_000L;
    agreement_vote_ns = 50_000L;
    agreement_quorum_check = true;
    enable_salvage = true;
    salvage_copy_ns = 9_000L;
    wax_period_ns = 100_000_000L;
    wax_scan_cost_ns = 50_000L;
    wax_pressure_pct = 5;
    wax_swap_want = 16;
    wax_pref_len = 4;
    clock_hand_low_pct = 1;
    enable_import_cache = true;
    import_cache_pages = 512;
    fault_readahead_max = 8;
    batch_releases = true;
  }

(* The pre-cache sharing protocol: every release is an RPC, every fault
   locates exactly one page, nothing is parked. Used for A/B comparison
   (hive_sim --no-import-cache, bench sharing). *)
let legacy_sharing p =
  {
    p with
    enable_import_cache = false;
    import_cache_pages = 0;
    fault_readahead_max = 1;
    batch_releases = false;
  }
