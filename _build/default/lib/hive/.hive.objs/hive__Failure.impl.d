lib/hive/failure.ml: Agreement List Printf Sim Types
