(* Dimensional sweep driver: see the .mli. *)

module J = Sim.Json

type row = {
  r_scenario : string;
  r_dims : Scenario.dims;
  r_metrics : Scenario.metric list;
}

type report = { a_area : string; a_rows : row list }

let run ?areas ?(quick = false) ?(dims_filter = fun _ -> true)
    ?(verbose = true) () =
  let wanted area =
    match areas with None -> true | Some l -> List.mem area l
  in
  let by_area : (string, row list ref) Hashtbl.t = Hashtbl.create 8 in
  let area_order = ref [] in
  List.iter
    (fun (sc : Scenario.t) ->
      if wanted sc.Scenario.sc_area then begin
        let grid = if quick then sc.Scenario.sc_quick else sc.Scenario.sc_dims in
        List.iter
          (fun dims ->
            if dims_filter dims then begin
              if verbose then
                Printf.printf "sweep: %-16s %s\n%!" sc.Scenario.sc_name
                  (Scenario.dims_label dims);
              let metrics = sc.Scenario.sc_run dims in
              if verbose then
                List.iter
                  (fun (m : Scenario.metric) ->
                    Printf.printf "    %-24s %s\n%!" m.Scenario.m_name
                      (J.float_repr m.Scenario.m_value))
                  metrics;
              let row =
                { r_scenario = sc.Scenario.sc_name; r_dims = dims;
                  r_metrics = metrics }
              in
              let bucket =
                match Hashtbl.find_opt by_area sc.Scenario.sc_area with
                | Some b -> b
                | None ->
                  let b = ref [] in
                  Hashtbl.replace by_area sc.Scenario.sc_area b;
                  area_order := sc.Scenario.sc_area :: !area_order;
                  b
              in
              bucket := row :: !bucket
            end)
          grid
      end)
    (Scenario.all ());
  List.rev !area_order
  |> List.map (fun area ->
         { a_area = area; a_rows = List.rev !(Hashtbl.find by_area area) })
  |> List.sort (fun a b -> compare a.a_area b.a_area)

(* ---------- JSON ---------- *)

let direction_to_string = function
  | Scenario.Lower_better -> "lower"
  | Scenario.Higher_better -> "higher"
  | Scenario.Info -> "info"

let direction_of_string = function
  | "lower" -> Some Scenario.Lower_better
  | "higher" -> Some Scenario.Higher_better
  | "info" -> Some Scenario.Info
  | _ -> None

let dims_to_json (d : Scenario.dims) =
  J.Obj
    [
      ("workload", J.Str d.Scenario.workload);
      ("cells", J.Int (Int64.of_int d.Scenario.cells));
      ("nodes", J.Int (Int64.of_int d.Scenario.nodes));
      ("ws_pages", J.Int (Int64.of_int d.Scenario.ws_pages));
      ("link_ms", J.Int (Int64.of_int d.Scenario.link_ms));
      ("import_cache", J.Bool d.Scenario.import_cache);
      ("smp", J.Bool d.Scenario.smp);
      ("rate", J.Int (Int64.of_int d.Scenario.rate));
      ("zipf_pct", J.Int (Int64.of_int d.Scenario.zipf_pct));
      ("fault_ms", J.Int (Int64.of_int d.Scenario.fault_ms));
    ]

let row_to_json r =
  J.Obj
    [
      ("scenario", J.Str r.r_scenario);
      ("dims", dims_to_json r.r_dims);
      ( "metrics",
        J.Arr
          (List.map
             (fun (m : Scenario.metric) ->
               J.Obj
                 [
                   ("name", J.Str m.Scenario.m_name);
                   ("value", J.Float m.Scenario.m_value);
                   ("better", J.Str (direction_to_string m.Scenario.m_dir));
                 ])
             r.r_metrics) );
    ]

let report_to_json rep =
  J.Obj
    [
      ("schema", J.Int 1L);
      ("area", J.Str rep.a_area);
      ("rows", J.Arr (List.map row_to_json rep.a_rows));
    ]

let ( let* ) = Result.bind

let field name conv j =
  match J.member name j with
  | None -> Error (Printf.sprintf "sweep: missing field %S" name)
  | Some v -> (
    match conv v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "sweep: bad field %S" name))

let map_result f l =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) l
  |> Result.map List.rev

let dims_of_json j : (Scenario.dims, string) result =
  let* workload = field "workload" J.to_string_opt j in
  let* cells = field "cells" J.to_int_opt j in
  let* nodes = field "nodes" J.to_int_opt j in
  let* ws_pages = field "ws_pages" J.to_int_opt j in
  let* link_ms = field "link_ms" J.to_int_opt j in
  let* import_cache = field "import_cache" J.to_bool_opt j in
  let* smp = field "smp" J.to_bool_opt j in
  (* traffic dims default to 0 so baselines written before they existed
     still parse (0 = "not a traffic row", matching default_dims) *)
  let opt_int name =
    match J.member name j with
    | None -> Ok 0
    | Some v -> (
      match J.to_int_opt v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "sweep: bad field %S" name))
  in
  let* rate = opt_int "rate" in
  let* zipf_pct = opt_int "zipf_pct" in
  let* fault_ms = opt_int "fault_ms" in
  Ok
    { Scenario.workload; cells; nodes; ws_pages; link_ms; import_cache; smp;
      rate; zipf_pct; fault_ms }

let metric_of_json j =
  let* name = field "name" J.to_string_opt j in
  let* value = field "value" J.to_float_opt j in
  let* better = field "better" J.to_string_opt j in
  match direction_of_string better with
  | Some dir ->
    Ok { Scenario.m_name = name; m_value = value; m_dir = dir }
  | None -> Error (Printf.sprintf "sweep: unknown direction %S" better)

let row_of_json j =
  let* scenario = field "scenario" J.to_string_opt j in
  let* dims = field "dims" Option.some j in
  let* dims = dims_of_json dims in
  let* metrics = field "metrics" J.to_list_opt j in
  let* metrics = map_result metric_of_json metrics in
  Ok { r_scenario = scenario; r_dims = dims; r_metrics = metrics }

let report_of_json j =
  let* schema = field "schema" J.to_int_opt j in
  if schema <> 1 then
    Error (Printf.sprintf "sweep: unsupported schema %d" schema)
  else
    let* area = field "area" J.to_string_opt j in
    let* rows = field "rows" J.to_list_opt j in
    let* rows = map_result row_of_json rows in
    Ok { a_area = area; a_rows = rows }

(* ---------- files ---------- *)

let file_name ~area = Printf.sprintf "BENCH_%s.json" area

let write_dir ~dir reports =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun rep ->
      let path = Filename.concat dir (file_name ~area:rep.a_area) in
      let oc = open_out path in
      output_string oc (J.to_string ~pretty:true (report_to_json rep));
      output_char oc '\n';
      close_out oc;
      path)
    reports

let load_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
    match J.of_string text with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok j -> (
      match report_of_json j with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok rep -> Ok rep))

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error e -> Error e
  | entries ->
    Array.to_list entries
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare
    |> map_result (fun f -> load_file (Filename.concat dir f))
    |> Result.map
         (List.sort (fun a b -> compare a.a_area b.a_area))
