lib/hive/share.ml: Hashtbl List Params Pfdat Rpc Sim Types Wild_write
