lib/sim/engine.ml: Effect Heap Int64 List Printexc Printf
