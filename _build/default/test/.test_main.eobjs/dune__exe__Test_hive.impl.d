test/test_hive.ml: Alcotest Array Bytes Flash Hashtbl Hive Int64 List Printf Sim
