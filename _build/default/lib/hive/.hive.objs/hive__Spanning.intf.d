lib/hive/spanning.mli: Types
