(** Min-heap (4-ary, for cache locality on the pop path) keyed by
    [(time, seq)], used as the simulation event queue. Ties on [time] are
    broken by insertion sequence number, which makes event delivery
    deterministic. *)

type 'a entry = { time : int64; seq : int; payload : 'a }

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

(** Slots in the backing array (>= {!length}); exposed so tests and the
    engine can assert that compaction and shrinking actually release
    memory. *)
val capacity : 'a t -> int

val is_empty : 'a t -> bool

(** [push h ~time ~seq payload] inserts an entry. [seq] must be unique and
    monotonically increasing for same-time determinism. *)
val push : 'a t -> time:int64 -> seq:int -> 'a -> unit

(** Smallest entry without removing it. *)
val peek : 'a t -> 'a entry option

(** Remove and return the smallest entry. Shrinks the backing array when
    it is mostly slack, so draining a large campaign releases its peak. *)
val pop : 'a t -> 'a entry option

(** [filter h keep] removes every entry whose payload fails [keep] and
    restores the heap invariant in O(n). [keep] is called exactly once
    per entry (in unspecified order), so it may carry side effects such
    as marking the dropped entries. Pop order of the survivors is
    unchanged: the heap pops strictly by [(time, seq)] and sequence
    numbers are unique. Used by the engine to reclaim cancelled timers
    without waiting for their deadlines to drain through {!pop}. *)
val filter : 'a t -> ('a -> bool) -> unit
