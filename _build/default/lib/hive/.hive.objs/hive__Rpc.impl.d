lib/hive/rpc.ml: Array Flash Hashtbl Int64 List Params Printf Sim Types
