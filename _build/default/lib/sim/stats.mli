(** Measurement helpers: scalar summaries, counters and named-counter
    registries, shared by the kernel instrumentation and the benches. *)

(** Running summary of a series of observations. *)
type summary

(** [keep_samples] (default true) retains every observation so percentiles
    can be computed; disable for very long runs. *)
val summary : ?keep_samples:bool -> unit -> summary

val add : summary -> float -> unit

(** Record a nanosecond duration. *)
val add_ns : summary -> int64 -> unit

val count : summary -> int

val sum : summary -> float

val mean : summary -> float

val min_value : summary -> float

val max_value : summary -> float

(** [percentile s 50.] is the median. Requires [keep_samples]. *)
val percentile : summary -> float -> float

type counter

val counter : unit -> counter

val incr : counter -> unit

val incr_by : counter -> int -> unit

val get : counter -> int

val reset : counter -> unit

(** Named counters for kernel event accounting. *)
type registry

val registry : unit -> registry

val find : registry -> string -> counter

val bump : ?by:int -> registry -> string -> unit

val value : registry -> string -> int

val to_list : registry -> (string * int) list
