lib/sim/stats.ml: Array Hashtbl Int64 List
