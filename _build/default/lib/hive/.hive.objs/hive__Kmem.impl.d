lib/hive/kmem.ml: Array Bytes Flash List Types
