(** Distributed process groups and signal delivery.

   The paper's prototype single-system image "provides forks across cell
   boundaries, distributed process groups and signal delivery" (Section
   3.3). Process groups span cells: a signal sent to a group is delivered
   to every member wherever it runs, via one RPC per remote cell holding
   members. Groups and signal state are per-cell; the group id carries
   the cell that created it, and membership is tracked where each member
   runs (no shared mutable structure crosses a cell boundary). *)

type signal = SIGTERM | SIGKILL | SIGUSR1 | SIGUSR2
val signal_to_string : signal -> string
type Types.payload +=
    P_signal of { pid : Types.pid; signal : signal; }
  | P_signal_group of { pgid : int; signal : signal; }
val signal_op : Rpc.Op.t
val signal_group_op : Rpc.Op.t
type pstate = {
  mutable handlers : (signal * (Types.process -> unit)) list;
  mutable pending : signal list;
  mutable pgid : int;
}
(* Clear the domain-local per-pid signal state; called by [System.boot]
   so campaigns never inherit pgids or handlers from identically
   numbered pids of an earlier system on this domain. *)
val reset : unit -> unit

val state_of : Types.process -> pstate
val handle :
  Types.process -> signal -> (Types.process -> unit) -> unit
val set_pgid : Types.process -> int -> unit
val get_pgid : Types.process -> int
val deliver_local : Types.system -> Types.process -> signal -> unit
val kill :
  Types.system ->
  Types.process ->
  pid:Types.pid -> signal -> (unit, Types.errno) result
val kill_group :
  Types.system ->
  Types.process -> pgid:int -> signal -> (unit, Types.errno) result
val registered : bool ref
val register_handlers : unit -> unit
