(* The shipped sweep scenarios. Every metric here is a function of
   simulated time and kernel counters only — no wall clock — so each
   (scenario × dims) point is byte-identical across runs and machines.
   That determinism is what the committed BENCH_<area>.json trajectory
   and the CI diff gate stand on. *)

open Scenario

(* Boot a system for one grid point. *)
let boot_dims (dims : dims) =
  let eng = Sim.Engine.create () in
  let mcfg = Flash.Config.with_nodes Flash.Config.default dims.nodes in
  let mcfg =
    if dims.smp then { mcfg with Flash.Config.firewall_enabled = false }
    else mcfg
  in
  let params =
    if dims.import_cache then Hive.Params.default
    else Hive.Params.legacy_sharing Hive.Params.default
  in
  let sys =
    Hive.System.boot ~mcfg ~params ~ncells:dims.cells
      ~multicellular:(not dims.smp) ~wax:false eng
  in
  (eng, sys)

(* Arm a deterministic 25% drop/dup/delay window into cell 1's boss node
   for [link_ms] (the Sips.degrade fault model the fuzzer uses). The
   agreement hint path is detached so the row isolates the transport. *)
let degrade_link sys (dims : dims) =
  if dims.link_ms > 0 then begin
    sys.Hive.Types.on_hint <- None;
    Flash.Sips.degrade
      (Flash.Machine.sips sys.Hive.Types.machine)
      ~rng:(Sim.Prng.create 42)
      {
        Flash.Sips.deg_from = -1;
        deg_to = sys.Hive.Types.cells.(1).Hive.Types.boss_node;
        from_ns = 0L;
        until_ns = Int64.of_int (dims.link_ms * 1_000_000);
        drop_pct = 25;
        dup_pct = 25;
        delay_pct = 25;
        max_delay_ns = 1_000_000L;
      }
  end

let hit_rate_pct (snap : Hive.Metrics.Snapshot.t) =
  100. *. Option.value ~default:0. snap.Hive.Metrics.Snapshot.cache_hit_rate

let client_hist_exn snap op =
  match Hive.Metrics.Snapshot.client_hist snap op with
  | Some h -> h
  | None -> failwith (Printf.sprintf "scenario: no %s calls recorded" op)

(* ---------- area rpc ---------- *)

let run_rpc ~op ~opname (dims : dims) =
  let eng, sys = boot_dims dims in
  Harness.register_bench_ops ();
  degrade_link sys dims;
  let n = 400 in
  let ok = ref 0 and gave_up = ref 0 in
  ignore
    (Harness.timed_in_thread eng (fun () ->
         for _ = 1 to n do
           match
             Hive.Rpc.call sys ~from:sys.Hive.Types.cells.(0) ~target:1 ~op
               ?timeout_ns:(if dims.link_ms > 0 then Some 2_000_000L else None)
               Hive.Types.P_unit
           with
           | Ok _ -> incr ok
           | Error _ -> incr gave_up
         done));
  let snap = Hive.Metrics.capture sys in
  let h = client_hist_exn snap opname in
  let per name =
    Array.fold_left
      (fun acc (c : Hive.Types.cell) ->
        acc + Sim.Stats.value c.Hive.Types.counters name)
      0 sys.Hive.Types.cells
  in
  [
    metric "p50_ns" h.Hive.Metrics.Snapshot.p50_ns;
    metric "p95_ns" h.Hive.Metrics.Snapshot.p95_ns;
    metric "p99_ns" h.Hive.Metrics.Snapshot.p99_ns;
    metric "mean_ns" h.Hive.Metrics.Snapshot.mean_ns;
    metric ~dir:Higher_better "completed" (float_of_int !ok);
    metric ~dir:Info "retransmits" (float_of_int (per "rpc.retransmits"));
    metric ~dir:Info "dup_suppressed"
      (float_of_int (per "rpc.dup_suppressed"));
  ]

let rpc_base = { default_dims with workload = "rpc"; cells = 2; nodes = 4 }

let declare_rpc () =
  ignore
    (declare ~name:"null-rpc" ~area:"rpc"
       ~doc:
         "400 interrupt-level null RPCs cell 0 -> 1; client-side latency \
          percentiles, optionally through a degraded link."
       ~dims:
         [
           rpc_base;
           { rpc_base with cells = 4 };
           { rpc_base with cells = 2; nodes = 2 };
           { rpc_base with link_ms = 300 };
           { rpc_base with cells = 4; link_ms = 300 };
         ]
       ~quick:[ rpc_base; { rpc_base with link_ms = 300 } ]
       (run_rpc ~op:Harness.noop_op ~opname:"bench.noop"));
  ignore
    (declare ~name:"queued-rpc" ~area:"rpc"
       ~doc:"400 null RPCs through the queued service and server pool."
       ~dims:[ rpc_base; { rpc_base with cells = 4 } ]
       ~quick:[ rpc_base ]
       (run_rpc ~op:Harness.noop_queued_op ~opname:"bench.noop_queued"))

(* ---------- area sharing ---------- *)

(* Remote read faults from cell 1 against a file homed on cell 0: a cold
   pass, then a second pass that must be served by the import cache when
   it is enabled. *)
let run_remote_read (dims : dims) =
  let eng, sys = boot_dims dims in
  let npages = dims.ws_pages in
  let path = Harness.make_warm_file sys ~npages in
  let c1 = sys.Hive.Types.cells.(1) in
  let touch_pass () =
    let acc = Sim.Stats.summary ~keep_samples:true () in
    let p =
      Hive.Process.spawn sys c1 ~name:"pass" (fun sys p ->
          let fd = Hive.Syscall.openf sys p path in
          let r = Hive.Syscall.mmap_file sys p ~fd ~npages ~writable:false in
          for k = 0 to npages - 1 do
            let t0 = Sim.Engine.time () in
            Hive.Syscall.touch sys p ~vpage:(r.Hive.Types.start_page + k)
              ~write:false;
            Sim.Stats.add_ns acc (Int64.sub (Sim.Engine.time ()) t0)
          done)
    in
    ignore
      (Hive.System.run_until_processes_done sys
         ~deadline:(Int64.add (Sim.Engine.now eng) 400_000_000_000L)
         [ p ]);
    (* Drain the reaper so exit-time releases park their bindings. *)
    Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 100_000_000L) eng;
    acc
  in
  let cold = touch_pass () in
  let second = touch_pass () in
  let snap = Hive.Metrics.capture sys in
  let get = Hive.Metrics.Snapshot.sharing_total snap in
  [
    metric "cold_p50_us" (Sim.Stats.percentile cold 50. /. 1e3);
    metric "second_p50_us" (Sim.Stats.percentile second 50. /. 1e3);
    metric "locate_rpcs" (float_of_int (get "fs.remote_locates"));
    metric ~dir:Higher_better "hit_rate_pct" (hit_rate_pct snap);
    metric ~dir:Info "cache_hits" (float_of_int (get "share.cache_hits"));
    metric ~dir:Info "readahead_pages"
      (float_of_int (get "fs.readahead_pages"));
  ]

(* Full pmake with the sharing protocol of the grid point; demands
   byte-identical workload output and reports sharing RPCs per remotely
   accessed page — the number PR 5 moved from 1.907 to 0.245. *)
let run_pmake_sharing (dims : dims) =
  let eng, sys = boot_dims dims in
  Workloads.Pmake.setup sys Workloads.Pmake.default;
  let result, _ = Workloads.Pmake.run sys in
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 300_000_000L) eng;
  let bad =
    List.filter
      (fun (_, v) -> v <> Workloads.Workload.Match)
      (Workloads.Pmake.verify sys)
  in
  if bad <> [] then
    failwith
      (Printf.sprintf "pmake-sharing: output not byte-identical (%s)"
         (String.concat ", " (List.map fst bad)));
  let snap = Hive.Metrics.capture sys in
  let hist_count op =
    match Hive.Metrics.Snapshot.client_hist snap op with
    | Some h -> h.Hive.Metrics.Snapshot.count
    | None -> 0
  in
  let rpcs =
    hist_count "fs.locate" + hist_count "share.release"
    + hist_count "share.release_batch"
    + hist_count "share.invalidate"
  in
  let get = Hive.Metrics.Snapshot.sharing_total snap in
  let pages = get "share.imports" + get "share.cache_hits" in
  [
    metric "elapsed_ms"
      (Int64.to_float result.Workloads.Workload.elapsed_ns /. 1e6);
    metric "rpcs_per_page" (float_of_int rpcs /. float_of_int (max 1 pages));
    metric ~dir:Higher_better "hit_rate_pct" (hit_rate_pct snap);
    metric ~dir:Info "sharing_rpcs" (float_of_int rpcs);
    metric ~dir:Info "remote_pages" (float_of_int pages);
  ]

let read_base =
  { default_dims with workload = "read"; cells = 2; nodes = 4; ws_pages = 64 }

let pmake_share_base =
  { default_dims with workload = "pmake"; cells = 4; nodes = 4 }

let declare_sharing () =
  ignore
    (declare ~name:"remote-read" ~area:"sharing"
       ~doc:
         "Sequential remote read faults against a warm data home; second \
          pass must hit the import cache when enabled."
       ~dims:
         [
           read_base;
           { read_base with ws_pages = 256 };
           { read_base with import_cache = false };
           { read_base with ws_pages = 256; import_cache = false };
           { read_base with nodes = 2 };
         ]
       ~quick:[ read_base; { read_base with import_cache = false } ]
       run_remote_read);
  ignore
    (declare ~name:"pmake-sharing" ~area:"sharing"
       ~doc:
         "Full pmake; sharing RPCs per remotely accessed page with the \
          import cache on/off, output verified byte-identical."
       ~dims:
         [
           pmake_share_base;
           { pmake_share_base with import_cache = false };
           { pmake_share_base with cells = 2 };
           { pmake_share_base with cells = 2; import_cache = false };
         ]
       ~quick:
         [
           { pmake_share_base with cells = 2 };
           { pmake_share_base with cells = 2; import_cache = false };
         ]
       run_pmake_sharing)

(* ---------- area workloads ---------- *)

let run_workload_point (dims : dims) =
  let _eng, sys = boot_dims dims in
  let result, _ =
    match dims.workload with
    | "pmake" ->
      Workloads.Pmake.setup sys Workloads.Pmake.default;
      Workloads.Pmake.run sys
    | "ocean" ->
      Workloads.Ocean.setup sys Workloads.Ocean.default;
      Workloads.Ocean.run sys
    | "raytrace" -> Workloads.Raytrace.run sys
    | other -> failwith ("unknown workload " ^ other)
  in
  [
    metric "elapsed_ms"
      (Int64.to_float result.Workloads.Workload.elapsed_ns /. 1e6);
    metric ~dir:Higher_better "completed"
      (if result.Workloads.Workload.completed then 1. else 0.);
    metric ~dir:Info "procs_killed"
      (float_of_int result.Workloads.Workload.procs_killed);
  ]

let declare_workloads () =
  let grid name rows quick =
    let base = { default_dims with workload = name; nodes = 4 } in
    let point (cells, smp) = { base with cells; smp } in
    ignore
      (declare ~name ~area:"workloads"
         ~doc:
           (name
          ^ " end-to-end simulated run time across machine shapes (smp = \
             SMP-OS baseline)")
         ~dims:(List.map point rows)
         ~quick:(List.map point quick)
         run_workload_point)
  in
  grid "pmake"
    [ (1, true); (1, false); (2, false); (4, false) ]
    [ (2, false) ];
  grid "ocean" [ (1, true); (1, false); (4, false) ] [ (4, false) ];
  grid "raytrace" [ (1, false); (4, false) ] [ (4, false) ]

(* ---------- area fuzz ---------- *)

(* Deterministic profile of a fixed fuzz-seed batch. Wall-clock
   throughput belongs to the sections report (never committed); every
   metric here is a pure function of the seeds, so the committed
   BENCH_fuzz.json is byte-stable and the diff gate catches behavioral
   drift in the DES hot paths — an engine change that alters verdicts,
   fault landings or event-queue traffic trips it. The batch size rides
   in the [ws_pages] dimension. *)
let fuzz_seed_batch n = Array.init n (fun i -> Int64.of_int (i + 1))

let fuzz_records seeds =
  Array.to_list
    (Array.map
       (fun s -> Faultinj.Fuzz.run_plan (Faultinj.Fuzz.plan_of_seed s))
       seeds)

let run_fuzz_batch (dims : dims) =
  let records = fuzz_records (fuzz_seed_batch dims.ws_pages) in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 records in
  let clean =
    List.length (List.filter (fun r -> not (Faultinj.Fuzz.failed r)) records)
  in
  let sim_ns =
    List.fold_left
      (fun acc r -> Int64.add acc r.Faultinj.Fuzz.r_sim_ns)
      0L records
  in
  [
    metric ~dir:Higher_better "clean_seeds" (float_of_int clean);
    metric "events_scheduled"
      (float_of_int (sum (fun r -> r.Faultinj.Fuzz.r_events)));
    metric ~dir:Info "faults_injected"
      (float_of_int (sum (fun r -> List.length r.Faultinj.Fuzz.r_injected)));
    metric ~dir:Info "sim_s_total" (Int64.to_float sim_ns /. 1e9);
  ]

(* Serial and two-domain runs of the same batch must merge to the same
   record stream, byte for byte. *)
let run_fuzz_parallel_merge (dims : dims) =
  let seeds = fuzz_seed_batch dims.ws_pages in
  let jsonl records =
    String.concat "\n" (List.map Faultinj.Fuzz.record_to_json records)
  in
  let serial = jsonl (fuzz_records seeds) in
  let out = ref [] in
  Faultinj.Campaign.run_parallel ~jobs:2 ~seeds
    ~run:(fun s -> Faultinj.Fuzz.run_plan (Faultinj.Fuzz.plan_of_seed s))
    ~on_record:(fun _ r -> out := r :: !out);
  let parallel = jsonl (List.rev !out) in
  [
    metric ~dir:Higher_better "merged_identical"
      (if String.equal serial parallel then 1. else 0.);
    metric ~dir:Info "records" (float_of_int (Array.length seeds));
  ]

let declare_fuzz () =
  let base = { default_dims with workload = "fuzz"; cells = 4; nodes = 8 } in
  ignore
    (declare ~name:"fuzz_batch" ~area:"fuzz"
       ~doc:
         "verdict and event-traffic profile of a fixed seed batch (ws = \
          seeds); deterministic, so the trajectory gates DES hot-path \
          changes"
       ~dims:
         [ { base with ws_pages = 8 }; { base with ws_pages = 16 } ]
       ~quick:[ { base with ws_pages = 8 } ]
       run_fuzz_batch);
  ignore
    (declare ~name:"fuzz_parallel" ~area:"fuzz"
       ~doc:
         "serial vs two-domain merge identity of the same seed batch \
          (must be 1)"
       ~dims:[ { base with ws_pages = 8 } ]
       run_fuzz_parallel_merge)

(* ---------- area resilience ---------- *)

(* Partition-and-heal profile and the memory-salvage A/B. Both rows are
   pure functions of simulated time and counters, like everything else in
   the sweep, so the committed BENCH_resilience.json trajectory gates the
   partition fault model and the salvage path against drift. *)

let settle_ns = 50_000_000L

let run_in_thread eng f =
  let out = ref None in
  ignore (Sim.Engine.spawn eng ~name:"bench" (fun () -> out := Some (f ())));
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 30_000_000_000L) eng;
  match !out with
  | Some v -> v
  | None -> failwith "resilience: bench thread did not finish"

let raise_hint sys ~by ~suspect =
  match sys.Hive.Types.on_hint with
  | Some f ->
    f sys.Hive.Types.cells.(by) ~suspect ~reason:"bench fault injection"
  | None -> failwith "resilience: no hint handler installed"

(* Sever every link into and out of [cell] for [window_ns] starting now;
   the heal is a deterministic scheduled event. *)
let sever_cell sys ~cell ~window_ns =
  let sips = Flash.Machine.sips sys.Hive.Types.machine in
  let t0 = Sim.Engine.now sys.Hive.Types.eng in
  let until_ns = Int64.add t0 window_ns in
  List.iter
    (fun n ->
      Flash.Sips.partition sips
        { Flash.Sips.part_from = -1; part_to = n; part_from_ns = t0;
          part_until_ns = until_ns };
      Flash.Sips.partition sips
        { Flash.Sips.part_from = n; part_to = -1; part_from_ns = t0;
          part_until_ns = until_ns })
    sys.Hive.Types.cells.(cell).Hive.Types.cell_nodes

(* Black out one cell for link_ms, let agreement excise it, and measure
   the path back to a single unified live set after the deterministic
   heal: the victim is still running behind the blackout, so reclamation
   defers, the heal stops it, and reintegration reunifies the machine. *)
let run_partition_heal (dims : dims) =
  let eng = Sim.Engine.create () in
  let mcfg = Flash.Config.with_nodes Flash.Config.default dims.nodes in
  let sys = Hive.System.boot ~mcfg ~ncells:dims.cells ~wax:false eng in
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) settle_ns) eng;
  let victim = dims.cells - 1 in
  let t0 = Sim.Engine.now eng in
  let window_ns = Int64.of_int (dims.link_ms * 1_000_000) in
  let heal_ns = Int64.add t0 window_ns in
  sever_cell sys ~cell:victim ~window_ns;
  raise_hint sys ~by:0 ~suspect:victim;
  let unified () =
    Array.for_all
      (fun (c : Hive.Types.cell) ->
        Hive.Types.cell_alive c
        && List.length c.Hive.Types.live_set = dims.cells)
      sys.Hive.Types.cells
  in
  (* Only a unified live set *after* the heal counts: short windows ride
     through on retransmission (the alert is dismissed), long windows
     excise the victim and reunify through reintegration. *)
  let reunified =
    Hive.System.run_until sys
      ~deadline:(Int64.add heal_ns 6_000_000_000L)
      (fun () ->
        Int64.compare (Sim.Engine.now eng) heal_ns >= 0 && unified ())
  in
  let reunify_ms =
    Int64.to_float (Int64.sub (Sim.Engine.now eng) t0) /. 1e6
  in
  let single_master_ok =
    sys.Hive.Types.master_overlaps = []
    && Hive.Invariants.check_single_master sys = []
  in
  let deferred =
    List.length
      (List.filter
         (fun (p, _) -> p = "recovery.reclaim_deferred")
         sys.Hive.Types.recovery_timeline)
  in
  let sysc name = float_of_int (Sim.Stats.value sys.Hive.Types.sys_counters name) in
  [
    metric ~dir:Higher_better "reunified" (if reunified then 1. else 0.);
    metric ~dir:Higher_better "single_master_ok"
      (if single_master_ok then 1. else 0.);
    metric "reunify_ms" reunify_ms;
    metric ~dir:Info "blocked_envelopes"
      (float_of_int
         (Flash.Sips.partition_blocked_count
            (Flash.Machine.sips sys.Hive.Types.machine)));
    metric ~dir:Info "agreement_rounds" (sysc "agreement.rounds");
    metric ~dir:Info "excisions_confirmed" (sysc "agreement.confirmed");
    metric ~dir:Info "alerts_dismissed" (sysc "agreement.dismissed");
    metric ~dir:Info "reintegrations" (sysc "cell.reintegrations");
    metric ~dir:Info "reclaims_deferred" (float_of_int deferred);
  ]

(* CXL-style memory salvage A/B: import ws clean pages from a remote home,
   halt the home's processors with its memory alive, and count how many
   survive recovery locally (salvage on) versus being discarded and lost
   to EIO (salvage off, the [import_cache] dimension reused as the knob). *)
let run_salvage_ab (dims : dims) =
  let eng = Sim.Engine.create () in
  let mcfg = Flash.Config.with_nodes Flash.Config.default dims.nodes in
  (* auto_reintegrate off: the home stays down, so a discarded page is
     genuinely unreadable rather than quietly refetched from the reboot. *)
  let params =
    {
      Hive.Params.default with
      Hive.Params.enable_salvage = dims.import_cache;
      auto_reintegrate = false;
    }
  in
  let sys = Hive.System.boot ~mcfg ~params ~ncells:dims.cells ~wax:false eng in
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) settle_ns) eng;
  let c0 = sys.Hive.Types.cells.(0) in
  let home = 1 in
  let path =
    let rec go k =
      let p = Printf.sprintf "/cxl/bench.%d" k in
      if Hive.Fs.home_of_path sys p = home then p else go (k + 1)
    in
    go 0
  in
  let psize = Hive.Types.page_size sys in
  let npages = dims.ws_pages in
  let content =
    Workloads.Workload.synth_content ~tag:path ~bytes:(npages * psize)
  in
  let vn, gen =
    run_in_thread eng (fun () ->
        match Hive.Fs.create_file sys c0 ~path ~content with
        | Error _ -> failwith "resilience: create failed"
        | Ok _ -> (
          Hive.Fs.sync_cell sys sys.Hive.Types.cells.(home);
          match Hive.Fs.open_file sys c0 ~path with
          | Ok (vn, gen) -> (vn, gen)
          | Error _ -> failwith "resilience: open failed"))
  in
  let imported =
    run_in_thread eng (fun () ->
        let n = ref 0 in
        for page = 0 to npages - 1 do
          match
            Hive.Fs.get_page sys c0 vn ~page ~writable:false ~opened_gen:gen
              ~usage:`Syscall
          with
          | Ok _ -> incr n
          | Error _ -> ()
        done;
        !n)
  in
  List.iter
    (fun node -> Hive.System.inject_cpu_failure sys node)
    sys.Hive.Types.cells.(home).Hive.Types.cell_nodes;
  raise_hint sys ~by:0 ~suspect:home;
  ignore
    (Hive.System.run_until sys
       ~deadline:(Int64.add (Sim.Engine.now eng) 5_000_000_000L)
       (fun () ->
         (not sys.Hive.Types.recovery_in_progress)
         && sys.Hive.Types.recovery_events <> []));
  let salvaged =
    Sim.Stats.value c0.Hive.Types.counters "vm.salvaged_pages"
  in
  (* Post-failure reads: a salvaged page is served locally and must be
     byte-identical to what the dead home exported; a discarded page is
     lost until the home reboots. *)
  let readable, identical =
    run_in_thread eng (fun () ->
        let readable = ref 0 and identical = ref 0 in
        let mem = Flash.Machine.memory sys.Hive.Types.machine in
        for page = 0 to npages - 1 do
          match
            Hive.Fs.get_page sys c0 vn ~page ~writable:false ~opened_gen:gen
              ~usage:`Syscall
          with
          | Error _ -> ()
          | Ok pf ->
            incr readable;
            let got =
              Flash.Memory.peek mem
                (Hive.Fs.frame_addr sys pf.Hive.Types.pfn)
                psize
            in
            if Bytes.equal got (Bytes.sub content (page * psize) psize) then
              incr identical
        done;
        (!readable, !identical))
  in
  [
    metric ~dir:Higher_better "readable_after_failure"
      (float_of_int readable);
    metric "discarded_pages" (float_of_int (imported - readable));
    metric ~dir:Higher_better "byte_identical" (float_of_int identical);
    metric ~dir:Info "salvaged_pages" (float_of_int salvaged);
    metric ~dir:Info "imported_pages" (float_of_int imported);
  ]

let declare_resilience () =
  let part_base =
    { default_dims with workload = "partition"; cells = 4; nodes = 4 }
  in
  ignore
    (declare ~name:"partition-heal" ~area:"resilience"
       ~doc:
         "black out one cell for link_ms, excise it under quorum \
          agreement, and measure reunification after the deterministic \
          heal (single-master invariant checked per row)"
       ~dims:
         [
           { part_base with link_ms = 200 };
           { part_base with link_ms = 800 };
           { part_base with link_ms = 3000 };
         ]
       ~quick:[ { part_base with link_ms = 200 } ]
       run_partition_heal);
  let salv_base =
    { default_dims with workload = "salvage"; cells = 2; nodes = 4 }
  in
  ignore
    (declare ~name:"salvage-ab" ~area:"resilience"
       ~doc:
         "memory salvage A/B: clean pages imported from a cpu-dead \
          mem-alive home that survive recovery locally vs discarded \
          (cache dimension = salvage knob)"
       ~dims:
         [
           { salv_base with ws_pages = 16 };
           { salv_base with ws_pages = 16; import_cache = false };
           { salv_base with ws_pages = 64 };
           { salv_base with ws_pages = 64; import_cache = false };
         ]
       ~quick:
         [
           { salv_base with ws_pages = 16 };
           { salv_base with ws_pages = 16; import_cache = false };
         ]
       run_salvage_ab)

(* ---------- area traffic ---------- *)

(* Serve-through-failure: interactive Poisson/Zipf traffic with a cell
   killed mid-run. The committed rows quantify the paper's availability
   claim as a trajectory: the surviving cells' served-read p99.9 during
   cell death and recovery stays within a small factor of the pre-failure
   baseline, and clients of the dead cell's data fail fast inside their
   deadline budget instead of hanging. All metrics are functions of
   simulated time, so the rows are byte-stable and diff-gated. *)

let traffic_duration_ms = 5_000

let run_traffic (dims : dims) =
  let _eng, sys = boot_dims dims in
  let cfg =
    {
      Workloads.Server.default with
      Workloads.Server.duration_ms = traffic_duration_ms;
      rate_rps = float_of_int dims.rate;
      zipf_s = float_of_int dims.zipf_pct /. 100.;
      fault =
        (if dims.fault_ms > 0 then
           Some
             { Workloads.Server.kill_cell = dims.cells - 1;
               at_ms = dims.fault_ms }
         else None);
    }
  in
  let result, stats = Workloads.Server.run ~cfg sys in
  let snap = Hive.Metrics.capture sys in
  let p999 key =
    match Hive.Metrics.Snapshot.op_hist snap key with
    | Some h when h.Hive.Metrics.Snapshot.count > 0 ->
      Some h.Hive.Metrics.Snapshot.p999_ns
    | _ -> None
  in
  let before_p999 =
    match p999 "server.read|before" with
    | Some v -> v
    | None -> failwith "traffic: no served reads before the fault"
  in
  (* Ratio of clean served-read p99.9 during the outage to the
     pre-failure baseline — the headline containment number. 1.0 on
     no-fault rows (there is no "during" phase). *)
  let during_ratio =
    match p999 "server.read|during" with
    | Some v -> v /. before_p999
    | None -> 1.0
  in
  let deadline_ns = float_of_int cfg.Workloads.Server.deadline_ms *. 1e6 in
  let recovery_ms =
    match (stats.Workloads.Server.fault_at_ns, stats.Workloads.Server.recovered_at_ns) with
    | Some tf, Some tr -> Int64.to_float (Int64.sub tr tf) /. 1e6
    | _ -> 0.
  in
  [
    metric "during_over_before_p999" during_ratio;
    metric "before_p999_ms" (before_p999 /. 1e6);
    metric "fail_fast_max_ms"
      (Int64.to_float stats.Workloads.Server.fail_fast_max_ns /. 1e6);
    metric ~dir:Higher_better "fail_fast_within_budget"
      (if Int64.to_float stats.Workloads.Server.fail_fast_max_ns
          <= deadline_ns
       then 1.
       else 0.);
    metric ~dir:Higher_better "completed"
      (if result.Workloads.Workload.completed then 1. else 0.);
    metric ~dir:Info "served" (float_of_int stats.Workloads.Server.reads_served);
    metric ~dir:Info "redirected"
      (float_of_int stats.Workloads.Server.reads_redirected);
    metric ~dir:Info "shed_legs" (float_of_int stats.Workloads.Server.shed_legs);
    metric ~dir:Info "deadline_exceeded"
      (float_of_int stats.Workloads.Server.deadline_exceeded);
    metric ~dir:Info "fail_fast" (float_of_int stats.Workloads.Server.fail_fast);
    metric ~dir:Info "client_lost"
      (float_of_int stats.Workloads.Server.client_lost);
    metric ~dir:Info "recovery_ms" recovery_ms;
  ]

let declare_traffic () =
  let base =
    {
      default_dims with
      workload = "server";
      cells = 4;
      nodes = 4;
      rate = 80;
      zipf_pct = 110;
    }
  in
  ignore
    (declare ~name:"serve-through-failure" ~area:"traffic"
       ~doc:
         "interactive Poisson/Zipf traffic with a cell killed mid-run: \
          surviving-cell served-read p99.9 during death+recovery vs the \
          pre-failure baseline, and fail-fast latency vs the deadline \
          budget"
       ~dims:
         [
           base;
           { base with fault_ms = 2_000 };
           { base with rate = 160; fault_ms = 2_000 };
           { base with rate = 40; fault_ms = 2_000 };
           { base with cells = 2; fault_ms = 2_000 };
           { base with zipf_pct = 1; fault_ms = 2_000 };
         ]
       ~quick:
         [
           { base with fault_ms = 2_000 };
           { base with rate = 160; fault_ms = 2_000 };
         ]
       run_traffic)

(* ---------- area scale ---------- *)

(* The paper's full envelope: 4 to 64 cells over 8 to 128 nodes, with Wax
   installed and driving placement through validated hints. Each row boots
   the machine (per-node memory in the [ws_pages] dimension, kept small so
   the big rows stay fast), runs a pmake sized to the cell count, fail-stops
   the last cell mid-compile, and waits for automatic recovery plus
   reintegration to reunify the live set. Committed rows gate the scaling
   behavior: boot and recovery must grow sub-quadratically in cells, RPCs
   per compile must stay flat, and the invariant checkers must come back
   clean on every shape. *)

let run_scale (dims : dims) =
  let eng = Sim.Engine.create () in
  let mcfg =
    {
      (Flash.Config.with_nodes Flash.Config.default dims.nodes) with
      Flash.Config.mem_pages_per_node = dims.ws_pages;
    }
  in
  let sys = Hive.System.boot ~mcfg ~ncells:dims.cells ~wax:true eng in
  let boot_ms = Int64.to_float sys.Hive.Types.last_boot_ns /. 1e6 in
  (* Let Wax publish stats and run a few policy passes before loading. *)
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 400_000_000L) eng;
  let pcfg =
    {
      Workloads.Pmake.default with
      Workloads.Pmake.files = 2 * dims.cells;
      jobs = max 4 dims.cells;
      anon_pages = 64;
    }
  in
  Workloads.Pmake.setup sys pcfg;
  (* Fail-stop the last cell 500 ms into the build; detection runs off the
     published-clock stall, recovery excises the cell, auto-reintegration
     brings it back while the surviving compiles keep going. *)
  let victim = dims.cells - 1 in
  let t_fault = ref 0L in
  let t_reunified = ref 0L in
  let unified () =
    (not sys.Hive.Types.recovery_in_progress)
    && Array.for_all
         (fun (c : Hive.Types.cell) ->
           Hive.Types.cell_alive c
           && List.length c.Hive.Types.live_set = dims.cells)
         sys.Hive.Types.cells
  in
  ignore
    (Sim.Engine.spawn eng ~name:"scale-fault" (fun () ->
         Sim.Engine.delay 500_000_000L;
         t_fault := Sim.Engine.now eng;
         Hive.System.inject_node_failure sys
           (List.hd sys.Hive.Types.cells.(victim).Hive.Types.cell_nodes)));
  (* The build usually outlives reintegration, so sample the first moment
     the machine is whole again rather than crediting the build tail to
     recovery. *)
  ignore
    (Sim.Engine.spawn eng ~name:"scale-watch" (fun () ->
         while Int64.compare !t_fault 0L = 0 || not (unified ()) do
           Sim.Engine.delay 10_000_000L
         done;
         t_reunified := Sim.Engine.now eng));
  let result, _ = Workloads.Pmake.run ~cfg:pcfg sys in
  let reunified =
    Hive.System.run_until sys
      ~deadline:(Int64.add (Sim.Engine.now eng) 30_000_000_000L)
      unified
  in
  let recovery_ms =
    if reunified && Int64.compare !t_reunified !t_fault > 0 then
      Int64.to_float (Int64.sub !t_reunified !t_fault) /. 1e6
    else 0.
  in
  let snap = Hive.Metrics.capture sys in
  let rpc_calls =
    List.fold_left
      (fun acc (_, (h : Hive.Metrics.Snapshot.hist)) ->
        acc + h.Hive.Metrics.Snapshot.count)
      0 snap.Hive.Metrics.Snapshot.rpc_client
  in
  let per name =
    Array.fold_left
      (fun acc (c : Hive.Types.cell) ->
        acc + Sim.Stats.value c.Hive.Types.counters name)
      0 sys.Hive.Types.cells
  in
  let sysc name = Sim.Stats.value sys.Hive.Types.sys_counters name in
  (* Wax balancing effect: relative spread of free frames across the live
     cells (stddev over mean). The hint loop steers allocation toward the
     emptier cells, so a working Wax keeps this bounded as cells grow. *)
  let free_counts =
    Array.to_list sys.Hive.Types.cells
    |> List.filter Hive.Types.cell_alive
    |> List.map (fun c -> float_of_int (Hive.Page_alloc.free_count c))
  in
  let n = float_of_int (List.length free_counts) in
  let mean = List.fold_left ( +. ) 0. free_counts /. n in
  let var =
    List.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. free_counts /. n
  in
  let spread_pct = if mean > 0. then 100. *. sqrt var /. mean else 0. in
  let invariants_clean = Hive.Invariants.check sys = [] in
  [
    metric "boot_ms" boot_ms;
    metric "recovery_ms" recovery_ms;
    metric "rpcs_per_compile"
      (float_of_int rpc_calls /. float_of_int pcfg.Workloads.Pmake.files);
    metric ~dir:Higher_better "reunified" (if reunified then 1. else 0.);
    metric ~dir:Higher_better "invariants_clean"
      (if invariants_clean then 1. else 0.);
    metric ~dir:Higher_better "wax_incarnations"
      (float_of_int (sysc "wax.incarnations"));
    metric ~dir:Info "free_spread_pct" spread_pct;
    metric ~dir:Info "swap_hints_acted"
      (float_of_int (per "wax.swap_hints_acted"));
    metric ~dir:Info "rejected_hints" (float_of_int (per "wax.rejected_hints"));
    metric ~dir:Info "elapsed_ms"
      (Int64.to_float result.Workloads.Workload.elapsed_ns /. 1e6);
    metric ~dir:Info "compiles" (float_of_int pcfg.Workloads.Pmake.files);
  ]

let declare_scale () =
  let base =
    { default_dims with workload = "scale"; ws_pages = 512 }
  in
  ignore
    (declare ~name:"large-machine" ~area:"scale"
       ~doc:
         "boot N cells over 2N nodes with Wax hints driving placement, run \
          a pmake sized to the machine, fail-stop one cell mid-build, and \
          reunify through recovery + reintegration (ws = pages per node); \
          gates boot/recovery scaling and hint-validation health"
       ~dims:
         [
           { base with cells = 4; nodes = 8 };
           { base with cells = 16; nodes = 32 };
           { base with cells = 32; nodes = 64 };
           { base with cells = 64; nodes = 128 };
         ]
       ~quick:
         [
           { base with cells = 4; nodes = 8 };
           { base with cells = 32; nodes = 64 };
         ]
       run_scale)

(* ---------- registration ---------- *)

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    declare_rpc ();
    declare_sharing ();
    declare_workloads ();
    declare_fuzz ();
    declare_resilience ();
    declare_traffic ();
    declare_scale ()
  end
