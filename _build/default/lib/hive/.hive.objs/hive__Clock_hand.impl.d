lib/hive/clock_hand.ml: Hashtbl List Page_alloc Pfdat Printf Sim Swap Types
