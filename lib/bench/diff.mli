(** The regression gate: compare a fresh sweep against the committed
    trajectory and fail past a threshold.

    Rows are matched by (scenario, dims); metrics by name. A metric whose
    value moved against its declared direction by more than [threshold]
    (relative, default {!default_threshold}) is a regression; movement the
    other way is an improvement (reported, never failing). Baseline rows
    absent from the fresh sweep (e.g. a [--quick] CI run over the reduced
    grid) are skipped with a note, as are fresh rows with no baseline yet. *)

type finding = {
  f_area : string;
  f_scenario : string;
  f_dims : Scenario.dims;
  f_metric : string;
  f_baseline : float;
  f_fresh : float;
  f_change_pct : float;  (** signed, relative to baseline *)
}

type verdict = {
  regressions : finding list;
  improvements : finding list;
  notes : string list;  (** unmatched rows/metrics *)
  compared : int;  (** gated metric comparisons performed *)
}

val default_threshold : float  (** 0.20 = 20% *)

val compare_reports :
  ?threshold:float ->
  baseline:Sweep.report list ->
  fresh:Sweep.report list ->
  unit ->
  verdict

val print_finding : tag:string -> finding -> unit

(** Load both directories, compare, print every finding and a one-line
    summary; returns the exit code (0 clean, 1 regressions, 2 load
    error). *)
val run_dirs :
  ?threshold:float -> baseline_dir:string -> fresh_dir:string -> unit -> int
