lib/flash/disk.ml: Config Int64 Sim
