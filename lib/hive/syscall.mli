(** The single-system-image syscall layer: the UNIX-flavoured API that
   processes (workloads, examples) program against. Every call passes the
   user gate (suspension during agreement/recovery) and raises
   [Types.Syscall_error] on failure. *)

exception E of Types.errno
val ok : ('a, Types.errno) result -> 'a
val cell_of : Types.system -> Types.process -> Types.cell
val getpid : Types.process -> Types.pid
val getcell : Types.process -> Types.cell_id
val install_fd :
  Types.process ->
  Types.vnode -> Types.generation -> writable:bool -> int
val openf :
  Types.system -> Types.process -> ?writable:bool -> string -> int
val creat :
  Types.system ->
  Types.process -> ?content:Bytes.t -> string -> int
val fd_of : Types.process -> int -> Types.fd
val read :
  Types.system -> Types.process -> fd:int -> len:int -> bytes
val pread :
  Types.system ->
  Types.process -> fd:int -> pos:int -> len:int -> bytes
val write : Types.system -> Types.process -> fd:int -> bytes -> int
val pwrite :
  Types.system ->
  Types.process -> fd:int -> pos:int -> bytes -> int
val seek : Types.system -> Types.process -> fd:int -> int -> unit
val close : Types.system -> Types.process -> fd:int -> unit
val fsize : Types.system -> Types.process -> fd:int -> int
val unlink : Types.system -> Types.process -> string -> unit
val sync : Types.system -> Types.process -> unit
val mmap_file :
  Types.system ->
  Types.process ->
  fd:int -> npages:int -> writable:bool -> Types.region
val mmap_anon :
  Types.system -> Types.process -> npages:int -> Types.region
val touch :
  Types.system -> Types.process -> vpage:int -> write:bool -> unit
val write_word :
  Types.system ->
  Types.process -> vpage:int -> offset:int -> int64 -> unit
val read_word :
  Types.system -> Types.process -> vpage:int -> offset:int -> int64
val fork :
  Types.system ->
  Types.process ->
  ?on_cell:Types.cell_id ->
  name:string ->
  (Types.system -> Types.process -> unit) -> Types.process
val exec : Types.system -> Types.process -> string -> unit
val wait :
  Types.system -> Types.process -> Types.process -> int
val migrate :
  Types.system ->
  Types.process -> to_cell:Types.cell_id -> unit
val kill :
  Types.system ->
  Types.process -> pid:Types.pid -> Signal.signal -> unit
val killpg :
  Types.system ->
  Types.process -> pgid:int -> Signal.signal -> unit
val signal_handle :
  Types.process ->
  Signal.signal -> (Types.process -> unit) -> unit
val setpgid : Types.process -> int -> unit
val getpgid : Types.process -> int
val wait_all : Types.system -> Types.process -> int list
val compute : Types.system -> Types.process -> int64 -> unit
