(** User-level suspension gate.

   During distributed agreement and recovery, user-level processes are
   suspended while kernel-level threads continue (Section 4.3). Process
   threads pass through the gate at syscall and fault entry points and
   block while it is closed. *)

val close : Types.system -> Types.cell -> unit
val open_ : Types.system -> Types.cell -> unit
val pass : Types.cell -> unit
val is_open : Types.cell -> bool
