(* The file system: a vnode layer with a unified, cross-cell page cache.

   Every file has a *data home* cell (deterministic from its path) that
   owns its backing store and page cache. Processes on other cells open
   the file through a shadow vnode and bind its pages into their own pfdat
   tables with export/import (Section 5.2): a fault or read that misses
   locally sends an RPC to the data home, which loads the page from disk
   if needed, exports it, and returns the frame address. Faults that hit
   in the data home's page cache are serviced entirely at interrupt level;
   only those requiring disk I/O go to the queued server pool.

   Preemptive discard support: when a dirty page is discarded after a cell
   failure, the file's generation number is bumped. Descriptors (and
   mapped regions) opened before the failure carry the old generation and
   get EIO; files opened afterwards read whatever is stable on disk
   (Section 4.2, "preemptive discard"). *)

type Types.payload +=
  | P_lookup of { path : string }
  | P_attrs of { ino : int; size : int; generation : int }
  | P_locate of {
      ino : int;
      page : int;
      npages : int;
      writable : bool;
      gen : int; (* generation the client's descriptor was opened under *)
    }
  | P_located of {
      pages : (int * int) list; (* file page -> pfn *)
      gen : int; (* generation the pages were exported under *)
    }
  | P_create of { path : string; content : Bytes.t }
  | P_created of { ino : int; gen : int }
  | P_dirty of { ino : int; page : int }
  | P_setsize of { ino : int; size : int }

(* Pure read of the home cell's name table: replays are harmless. *)
let lookup_op = Rpc.Op.declare ~idempotent:true "fs.lookup"

let locate_op = Rpc.Op.declare ~reply_bytes:512 "fs.locate"

(* arg_bytes overridden per call: the payload carries the file content. *)
let create_op = Rpc.Op.declare "fs.create"

let setsize_op = Rpc.Op.declare ~arg_bytes:32 "fs.set_size"

(* Batch size for locate RPCs issued by the sequential read/write paths
   (read-ahead clustering); faults use the adaptive per-file window in
   [cell.readahead], capped by Params.fault_readahead_max. *)
let locate_batch = 8

let page_size (sys : Types.system) = sys.Types.mcfg.Flash.Config.page_size

(* Deterministic path placement: /tmp lives on cell 0 (the paper's pmake
   setup has one cell serving the compiler temporary directory); other
   paths hash over the cells. *)
let home_of_path (sys : Types.system) path =
  let n = Array.length sys.Types.cells in
  let has_prefix p =
    String.length path >= String.length p
    && String.sub path 0 (String.length p) = p
  in
  (* The root file system (binaries, headers, sources) and /tmp live on
     cell 0, which acts as the file server -- the paper's pmake setup, where
     the cell serving the compiler temporary directory peaked at 42
     remotely-writable pages. Other trees hash across the cells. *)
  if List.exists has_prefix [ "/tmp"; "/bin"; "/usr"; "/src"; "/etc" ] then 0
  else Hashtbl.hash path mod n

let mem (sys : Types.system) = Flash.Machine.memory sys.Types.machine

let frame_addr (sys : Types.system) pfn =
  Flash.Addr.addr_of_pfn sys.Types.mcfg pfn

(* ---------- Data-home-side operations ---------- *)

let find_local (c : Types.cell) path = Hashtbl.find_opt c.Types.files path

let find_by_ino (c : Types.cell) ino =
  Hashtbl.find_opt c.Types.files_by_ino ino

let create_local (sys : Types.system) (home : Types.cell) ~path ~content =
  match find_local home path with
  | Some f ->
    (* Truncate and rewrite: stale cached pages must leave the page hash,
       or re-creation would serve old frames. Remote clients may hold
       parked bindings to those frames — invalidate them first, while the
       export records are still in place. *)
    let by_client = Hashtbl.create 4 in
    Hashtbl.iter
      (fun pg (pf : Types.pfdat) ->
        let lid = { Types.tag = Types.File_obj f.Types.fid; page = pg } in
        List.iter
          (fun cl ->
            let prev =
              match Hashtbl.find_opt by_client cl with
              | Some l -> l
              | None -> []
            in
            Hashtbl.replace by_client cl (lid :: prev))
          pf.Types.exported_to)
      f.Types.cached_pages;
    Hashtbl.iter
      (fun cl lids -> Share.invalidate_clients sys home ~clients:[ cl ] ~lids)
      by_client;
    Hashtbl.iter
      (fun _pg (pf : Types.pfdat) ->
        if not pf.Types.extended then Page_alloc.free_frame sys home pf)
      f.Types.cached_pages;
    Hashtbl.reset f.Types.cached_pages;
    f.Types.size <- Bytes.length content;
    f.Types.disk_content <- Bytes.copy content;
    f
  | None ->
    let psize = page_size sys in
    let blocks = max 1 ((Bytes.length content + psize - 1) / psize) in
    (* File blocks grow upward from the front of the disk; the swap area
       owns the top [swap_blocks]. A file that would cross [swap_base]
       must be refused, not silently overlap the swap partition (the old
       fixed 1-MiB swap base made that collision possible on any disk
       whose file area outgrew it). *)
    if
      home.Types.next_disk_block + blocks + 8
      > Flash.Config.swap_base sys.Types.mcfg
    then begin
      Types.bump home "fs.enospc";
      raise (Types.Syscall_error Types.ENOSPC)
    end;
    home.Types.next_ino <- home.Types.next_ino + 1;
    let f =
      {
        Types.fid = { home = home.Types.cell_id; ino = home.Types.next_ino };
        path;
        size = Bytes.length content;
        generation = 0;
        disk_block = home.Types.next_disk_block;
        cached_pages = Hashtbl.create 16;
        disk_content = Bytes.copy content;
        unlinked = false;
      }
    in
    home.Types.next_disk_block <- home.Types.next_disk_block + blocks + 8;
    Hashtbl.replace home.Types.files path f;
    Hashtbl.replace home.Types.files_by_ino f.Types.fid.Types.ino f;
    f

(* Load one page of a file into the data home's page cache (disk I/O). *)
let page_in (sys : Types.system) (home : Types.cell) (f : Types.file) page =
  let psize = page_size sys in
  let lid = { Types.tag = Types.File_obj f.Types.fid; page } in
  match Pfdat.lookup home lid with
  | Some pf -> pf
  | None ->
    let pf = Page_alloc.alloc_frame sys home in
    let off = page * psize in
    let avail = max 0 (min psize (Bytes.length f.Types.disk_content - off)) in
    (* Fresh pages (beyond the stable contents) have nothing to read from
       disk: extending writes must not pay an I/O. *)
    if avail > 0 then begin
      let disk =
        Flash.Machine.disk sys.Types.machine (Types.boss_proc home)
      in
      Flash.Disk.read sys.Types.eng disk
        ~block:(f.Types.disk_block + page)
        ~bytes:psize
    end;
    (* DMA the stable contents into the frame; fresh frames are already
       zero, so extension pages skip the fill entirely. *)
    if avail > 0 then begin
      let buf = Bytes.make psize '\000' in
      Bytes.blit f.Types.disk_content off buf 0 avail;
      Flash.Memory.write sys.Types.eng (mem sys) ~by:(Types.boss_proc home)
        (frame_addr sys pf.Types.pfn)
        buf
    end;
    (* The disk read blocked: another thread may have cached the page
       meanwhile. The loser frees its frame and uses the winner's (the
       page-lock discipline of a real kernel). *)
    match Pfdat.lookup home lid with
    | Some winner ->
      Page_alloc.free_frame sys home pf;
      winner
    | None ->
      Pfdat.insert home lid pf;
      Hashtbl.replace f.Types.cached_pages page pf;
      Types.bump home "fs.page_ins";
      if Sim.Event.enabled sys.Types.events then
        Sim.Event.instant sys.Types.events ~cell:home.Types.cell_id
          ~args:
            [ ("pfn", Sim.Event.Int pf.Types.pfn);
              ("page", Sim.Event.Int page) ]
          ~cat:Sim.Event.Page "fs.page_in";
      pf

(* Copy a cached page into the stable-content buffer (no disk timing). *)
let stage_page (sys : Types.system) (home : Types.cell) (f : Types.file) page
    (pf : Types.pfdat) =
  let psize = page_size sys in
  let off = page * psize in
  let needed = off + psize in
  if Bytes.length f.Types.disk_content < needed then begin
    let bigger = Bytes.make needed '\000' in
    Bytes.blit f.Types.disk_content 0 bigger 0 (Bytes.length f.Types.disk_content);
    f.Types.disk_content <- bigger
  end;
  let data =
    Flash.Memory.read sys.Types.eng (mem sys) ~by:(Types.boss_proc home)
      (frame_addr sys pf.Types.pfn)
      psize
  in
  Bytes.blit data 0 f.Types.disk_content off psize;
  pf.Types.dirty <- false;
  Types.bump home "fs.writebacks"

(* Write a cached page back to stable storage. *)
let writeback (sys : Types.system) (home : Types.cell) (f : Types.file) page
    (pf : Types.pfdat) =
  stage_page sys home f page pf;
  let psize = page_size sys in
  let disk = Flash.Machine.disk sys.Types.machine (Types.boss_proc home) in
  Flash.Disk.write sys.Types.eng disk
    ~block:(f.Types.disk_block + page)
    ~bytes:psize

(* Clustered writeback: stage every dirty page, then issue one contiguous
   disk write covering their span. *)
let sync_file (sys : Types.system) (home : Types.cell) (f : Types.file) =
  let psize = page_size sys in
  let dirty = ref [] in
  Hashtbl.iter
    (fun page pf -> if pf.Types.dirty then dirty := (page, pf) :: !dirty)
    f.Types.cached_pages;
  match !dirty with
  | [] -> ()
  | pages ->
    List.iter (fun (page, pf) -> stage_page sys home f page pf) pages;
    let first = List.fold_left (fun a (p, _) -> min a p) max_int pages in
    let last = List.fold_left (fun a (p, _) -> max a p) 0 pages in
    let disk = Flash.Machine.disk sys.Types.machine (Types.boss_proc home) in
    Flash.Disk.write sys.Types.eng disk
      ~block:(f.Types.disk_block + first)
      ~bytes:((last - first + 1) * psize)

let sync_cell (sys : Types.system) (c : Types.cell) =
  Hashtbl.iter (fun _ f -> sync_file sys c f) c.Types.files

(* Preemptive-discard notification from the VM layer: a dirty page of this
   file was dropped; record the data loss by bumping the generation. *)
let note_discard (sys : Types.system) (home : Types.cell) (f : Types.file)
    ~page ~dirty =
  Hashtbl.remove f.Types.cached_pages page;
  if dirty then begin
    f.Types.generation <- f.Types.generation + 1;
    Types.bump home "fs.generation_bumps";
    ignore sys
  end

(* ---------- Client-side operations ---------- *)

exception Stale of Types.errno

let check_gen (sys : Types.system) (c : Types.cell) vnode opened_gen =
  match vnode with
  | Types.Local_vnode f ->
    if f.Types.generation > opened_gen then raise (Types.Syscall_error Types.EIO)
  | Types.Shadow_vnode _ ->
    (* The generation check happens on the data home during locate; adding
       an RPC per client access would defeat the point of import caching,
       so the data home enforces it authoritatively in its handlers. *)
    ignore (sys, c)

(* Open: returns the vnode plus the generation observed at open time. *)
let open_file (sys : Types.system) (c : Types.cell) ~path =
  let p = sys.Types.params in
  let home_id = home_of_path sys path in
  if home_id = c.Types.cell_id then begin
    Sim.Engine.delay p.Params.open_local_ns;
    match find_local c path with
    | Some f when not f.Types.unlinked ->
      Ok (Types.Local_vnode f, f.Types.generation)
    | _ -> Error Types.ENOENT
  end
  else begin
    (* Remote open: path lookup RPC to the data home plus shadow vnode
       setup. *)
    Sim.Engine.delay p.Params.open_remote_extra_ns;
    match
      Rpc.call sys ~from:c ~target:home_id ~op:lookup_op (P_lookup { path })
    with
    | Ok (P_attrs { ino; size = _; generation }) ->
      Ok
        ( Types.Shadow_vnode
            { fid = { home = home_id; ino }; path; data_home = home_id },
          generation )
    | Ok _ -> Error Types.EFAULT
    | Error e -> Error e
  end

let create_file (sys : Types.system) (c : Types.cell) ~path ~content =
  let home_id = home_of_path sys path in
  if home_id = c.Types.cell_id then begin
    Sim.Engine.delay sys.Types.params.Params.open_local_ns;
    let f = create_local sys c ~path ~content in
    Ok (Types.Local_vnode f, f.Types.generation)
  end
  else
    match
      Rpc.call sys ~from:c ~target:home_id ~op:create_op
        ~arg_bytes:(64 + Bytes.length content)
        (P_create { path; content })
    with
    | Ok (P_created { ino; gen }) ->
      Ok
        ( Types.Shadow_vnode
            { fid = { home = home_id; ino }; path; data_home = home_id },
          gen )
    | Ok _ -> Error Types.EFAULT
    | Error e -> Error e

(* Get one page of a file, local or remote, for `Fault or `Syscall use.
   Returns the client-side pfdat (regular on the data home, extended
   elsewhere). [opened_gen] enforces the generation check. *)
let rec get_page (sys : Types.system) (c : Types.cell) vnode ~page ~writable
    ~opened_gen ~(usage : [ `Fault | `Syscall ]) =
  let p = sys.Types.params in
  let fid = Types.vnode_fid vnode in
  let lid = { Types.tag = Types.File_obj fid; page } in
  match Pfdat.lookup c lid with
  | Some pf when writable && pf.Types.salvaged_from <> None ->
    (* A salvaged copy is read-only: its data home is down, so a write
       must fail exactly as a locate RPC to the dead home would, instead
       of dirtying a local copy that is purged at reintegration. *)
    Error Types.EIO
  | Some pf
    when (not writable)
         || pf.Types.imported_from = None
         || List.mem c.Types.cell_id pf.Types.write_granted_to ->
    (* Hit in the local pfdat hash table (possibly a parked import). A
       parked binding imported under a newer generation than this
       descriptor means the descriptor is stale: fail like the local
       path does, instead of serving data the open never saw. A binding
       older than the descriptor (its invalidation was lost) must not be
       served either — drop it and refetch from the data home. *)
    if pf.Types.cached && pf.Types.import_gen > opened_gen then
      Error Types.EIO
    else if pf.Types.cached && pf.Types.import_gen < opened_gen then begin
      Share.drop_import c pf;
      get_page sys c vnode ~page ~writable ~opened_gen ~usage
    end
    else begin
      Share.cache_hit c pf;
      (match usage with
      | `Fault -> Sim.Engine.delay p.Params.fault_local_hit_ns
      | `Syscall -> Sim.Engine.delay p.Params.read_write_page_overhead_ns);
      if writable then pf.Types.dirty <- true;
      Ok pf
    end
  | Some pf ->
    (* Imported read-only but write wanted: rebind with write access. *)
    Share.drop_import c pf;
    get_page sys c vnode ~page ~writable ~opened_gen ~usage
  | None -> (
    match vnode with
    | Types.Local_vnode f ->
      if f.Types.generation > opened_gen then Error Types.EIO
      else begin
        (match usage with
        | `Fault -> Sim.Engine.delay p.Params.fault_local_hit_ns
        | `Syscall -> Sim.Engine.delay p.Params.read_write_page_overhead_ns);
        let pf = page_in sys c f page in
        if writable then begin
          pf.Types.dirty <- true;
          Hashtbl.replace f.Types.cached_pages page pf
        end;
        Ok pf
      end
    | Types.Shadow_vnode { fid = sfid; data_home; _ } -> (
      (* Remote page: client-side file system work, locate RPC to the data
         home, then import. Sequential syscalls batch their locates;
         sequential fault streams grow an adaptive read-ahead window (a
         lone fault still locates one page, so sparse access patterns pay
         nothing extra). *)
      Sim.Engine.delay p.Params.fault_client_fs_ns;
      Types.bump c "fs.remote_locates";
      let npages =
        match usage with
        | `Syscall -> locate_batch
        | `Fault ->
          let ra =
            match Hashtbl.find_opt c.Types.readahead fid with
            | Some r -> r
            | None ->
              let r = { Types.ra_last = min_int; ra_window = 1 } in
              Hashtbl.replace c.Types.readahead fid r;
              r
          in
          if page = ra.Types.ra_last + 1 then
            ra.Types.ra_window <-
              min (ra.Types.ra_window * 2)
                (max 1 p.Params.fault_readahead_max)
          else ra.Types.ra_window <- 1;
          ra.Types.ra_window
      in
      let epoch = c.Types.flush_epoch in
      match
        Rpc.call sys ~from:c ~target:data_home ~op:locate_op
          (P_locate
             { ino = sfid.Types.ino; page; npages; writable;
               gen = opened_gen })
      with
      | Ok (P_located _) when c.Types.flush_epoch <> epoch ->
        (* Recovery flushed this cell while the locate was in flight: the
           reply's frames (and the export records the home created for
           them) predate the preemptive discard. Wait out the round and
           relocate instead of binding stale frame numbers. *)
        Types.bump c "fs.stale_locates";
        Gate.pass c;
        get_page sys c vnode ~page ~writable ~opened_gen ~usage
      | Ok (P_located { pages; gen }) -> (
        let imported =
          List.map
            (fun (pg, pfn) ->
              let l = { Types.tag = Types.File_obj fid; page = pg } in
              (pg, Share.import sys c ~pfn ~data_home ~lid:l ~gen ~writable))
            pages
        in
        (match usage with
        | `Fault -> (
          match Hashtbl.find_opt c.Types.readahead fid with
          | Some ra ->
            ra.Types.ra_last <-
              List.fold_left (fun a (pg, _) -> max a pg) page imported;
            let extra = List.length imported - 1 in
            if extra > 0 then
              Types.bump ~by:extra c "fs.readahead_pages"
          | None -> ())
        | `Syscall -> ());
        match List.assoc_opt page imported with
        | Some pf -> Ok pf
        | None -> Error Types.EIO)
      | Ok (Types.P_error e) | Error e -> Error e
      | Ok _ -> Error Types.EFAULT))

(* Read [len] bytes at [pos]. Copies page by page out of the (possibly
   remote) page cache; every byte movement is charged through the memory
   model. *)
let read (sys : Types.system) (c : Types.cell) vnode ~opened_gen ~pos ~len =
  check_gen sys c vnode opened_gen;
  let psize = page_size sys in
  (* The loop always produces exactly [len] bytes (reads past EOF return
     zeros from the page cache), so write straight into the user buffer
     rather than growing a Buffer.t chunk by chunk. *)
  let out = Bytes.create len in
  let rec loop pos remaining =
    if remaining <= 0 then Ok out
    else begin
      let page = pos / psize in
      let off = pos mod psize in
      let chunk = min remaining (psize - off) in
      match get_page sys c vnode ~page ~writable:false ~opened_gen ~usage:`Syscall with
      | Error e -> Error e
      | Ok pf ->
        let data =
          Flash.Memory.read sys.Types.eng (mem sys) ~by:(Types.boss_proc c)
            (frame_addr sys pf.Types.pfn + off)
            chunk
        in
        (* Copy-out to the user buffer. *)
        Sim.Engine.delay (Flash.Config.copy_cost sys.Types.mcfg chunk);
        Bytes.blit data 0 out (len - remaining) chunk;
        loop (pos + chunk) (remaining - chunk)
    end
  in
  Types.bump c "fs.reads";
  loop pos len

(* Write bytes at [pos], extending the file as needed. *)
let write (sys : Types.system) (c : Types.cell) vnode ~opened_gen ~pos data =
  check_gen sys c vnode opened_gen;
  let p = sys.Types.params in
  let psize = page_size sys in
  let len = Bytes.length data in
  let end_pos = ref 0 in
  let rec loop pos done_ =
    if done_ >= len then Ok len
    else begin
      let page = pos / psize in
      let off = pos mod psize in
      let chunk = min (len - done_) (psize - off) in
      end_pos := max !end_pos (pos + chunk);
      match get_page sys c vnode ~page ~writable:true ~opened_gen ~usage:`Syscall with
      | Error e -> Error e
      | Ok pf -> (
        (* Copy-in from the user buffer, then store through the firewall-
           checked memory system. *)
        Sim.Engine.delay (Flash.Config.copy_cost sys.Types.mcfg chunk);
        match
          Flash.Memory.write sys.Types.eng (mem sys) ~by:(Types.boss_proc c)
            (frame_addr sys pf.Types.pfn + off)
            (Bytes.sub data done_ chunk)
        with
        | () ->
          (* Extending past EOF allocates blocks on the data home (the
             home charges this in its own handlers for remote writers). *)
          (match vnode with
          | Types.Local_vnode f ->
            if pos + chunk > f.Types.size then begin
              Sim.Engine.delay p.Params.fs_block_alloc_ns;
              f.Types.size <- pos + chunk
            end
          | Types.Shadow_vnode _ -> ());
          loop (pos + chunk) (done_ + chunk)
        | exception Flash.Memory.Bus_error _ -> Error Types.EFAULT)
    end
  in
  Types.bump c "fs.writes";
  let r = loop pos 0 in
  (* The data home owns the file attributes: propagate an extension. *)
  (match (r, vnode) with
  | Ok _, Types.Shadow_vnode { fid; data_home; _ } ->
    ignore
      (Rpc.call sys ~from:c ~target:data_home ~op:setsize_op
         (P_setsize { ino = fid.Types.ino; size = !end_pos }))
  | _ -> ());
  r

(* Release this client's idle import bindings for a file (called at
   close time, so firewall grants are revoked promptly rather than held
   until process exit). *)
let release_file_imports (sys : Types.system) (c : Types.cell) vnode =
  match vnode with
  | Types.Local_vnode _ -> ()
  | Types.Shadow_vnode { fid; _ } ->
    let doomed = ref [] in
    Pfdat.iter_pages c (fun pf ->
        match (pf.Types.lid, pf.Types.imported_from) with
        | Some { Types.tag = Types.File_obj f; _ }, Some _
          when f = fid && pf.Types.refs = 0 && pf.Types.extended
               && not pf.Types.cached ->
          doomed := pf :: !doomed
        | _ -> ());
    (* One vectored release per data home; a lost batch is counted per
       page inside release_many, and surfaced (not swallowed) here. *)
    (try Share.release_many sys c !doomed
     with Types.Syscall_error _ -> Types.bump c "fs.release_errors")

let file_size (sys : Types.system) (c : Types.cell) vnode =
  match vnode with
  | Types.Local_vnode f -> Ok f.Types.size
  | Types.Shadow_vnode { data_home; path; _ } -> (
    match
      Rpc.call sys ~from:c ~target:data_home ~op:lookup_op
        (P_lookup { path })
    with
    | Ok (P_attrs { size; _ }) -> Ok size
    | Ok _ -> Error Types.EFAULT
    | Error e -> Error e)

let unlink (sys : Types.system) (c : Types.cell) path =
  let home_id = home_of_path sys path in
  if home_id = c.Types.cell_id then
    match find_local c path with
    | Some f ->
      f.Types.unlinked <- true;
      Hashtbl.remove c.Types.files path;
      Ok ()
    | None -> Error Types.ENOENT
  else
    match
      Rpc.call sys ~from:c ~target:home_id ~op:create_op
        (P_create { path = "\000unlink:" ^ path; content = Bytes.empty })
    with
    | Ok _ -> Ok ()
    | Error e -> Error e

(* ---------- RPC handlers (data-home side) ---------- *)

let registered = ref false

let register_handlers () =
  if not !registered then begin
    registered := true;
    Rpc.register lookup_op (fun sys cell ~src:_ arg ->
        match arg with
        | P_lookup { path } -> (
          match find_local cell path with
          | Some f when not f.Types.unlinked ->
            Types.Queued
              (fun () ->
                Sim.Engine.delay sys.Types.params.Params.open_local_ns;
                Ok
                  (P_attrs
                     {
                       ino = f.Types.fid.Types.ino;
                       size = f.Types.size;
                       generation = f.Types.generation;
                     }))
          | _ -> Types.Immediate (Error Types.ENOENT))
        | _ -> Types.Immediate (Error Types.EFAULT));
    Rpc.register create_op (fun sys cell ~src:_ arg ->
        match arg with
        | P_create { path; content = _ }
          when String.length path > 8 && String.sub path 0 8 = "\000unlink:" ->
          let real = String.sub path 8 (String.length path - 8) in
          (match find_local cell real with
          | Some f ->
            f.Types.unlinked <- true;
            Hashtbl.remove cell.Types.files real
          | None -> ());
          Types.Immediate (Ok (P_created { ino = 0; gen = 0 }))
        | P_create { path; content } ->
          Types.Queued
            (fun () ->
              Sim.Engine.delay sys.Types.params.Params.open_local_ns;
              let f = create_local sys cell ~path ~content in
              Ok
                (P_created
                   { ino = f.Types.fid.Types.ino; gen = f.Types.generation }))
        | _ -> Types.Immediate (Error Types.EFAULT));
    Rpc.register setsize_op (fun _sys cell ~src:_ arg ->
        match arg with
        | P_setsize { ino; size } ->
          (match find_by_ino cell ino with
          | Some f -> f.Types.size <- max f.Types.size size
          | None -> ());
          Types.Immediate (Ok Types.P_unit)
        | _ -> Types.Immediate (Error Types.EFAULT));
    Rpc.register locate_op (fun sys cell ~src arg ->
        match arg with
        | P_locate { ino; page; npages; writable; gen } -> (
          match find_by_ino cell ino with
          | None -> Types.Immediate (Error Types.ENOENT)
          | Some f ->
            if f.Types.generation > gen then
              (* The client's descriptor predates a preemptive discard:
                 the home enforces the generation check for all remote
                 accesses (the client-side shadow path never re-checks). *)
              Types.Immediate (Error Types.EIO)
            else begin
              let psize = page_size sys in
              (* Writable locates pre-allocate the whole requested cluster
                 (an extending writer will fill it); read locates stop at
                 EOF. *)
              let last_page =
                if writable then page + npages - 1
                else max page ((max 1 f.Types.size - 1) / psize)
              in
              let wanted =
                List.init
                  (min npages (last_page - page + 1))
                  (fun i -> page + i)
              in
              let all_cached =
                List.for_all
                  (fun pg -> Hashtbl.mem f.Types.cached_pages pg)
                  wanted
              in
              (* A writable export may have to invalidate other clients'
                 parked bindings — an RPC, so it cannot run at interrupt
                 level. *)
              let invalidating =
                writable
                && List.exists
                     (fun pg ->
                       match Hashtbl.find_opt f.Types.cached_pages pg with
                       | Some pf -> Share.needs_invalidate pf ~client:src
                       | None -> false)
                     wanted
              in
              let serve () =
                Sim.Engine.delay sys.Types.params.Params.fault_home_vm_ns;
                (* Page everything in first: the disk reads may block, and
                   a generation bump landing mid-batch must fail the whole
                   batch before any page is exported — never export a mix
                   of pre- and post-discard pages. *)
                (* Hold each frame for the rest of the batch: later
                   page_ins block on disk, and an unreferenced,
                   not-yet-exported frame is fair game for the clock
                   hand's reclaim sweep. Pins are registered as they are
                   taken so a mid-batch failure (OOM, kill) still
                   releases the earlier ones; the guard against pins = 0
                   covers a frame force-freed (truncate) under the pin. *)
                let pinned = ref [] in
                Fun.protect
                  ~finally:(fun () ->
                    List.iter
                      (fun (pf : Types.pfdat) ->
                        if pf.Types.pins > 0 then
                          pf.Types.pins <- pf.Types.pins - 1)
                      !pinned)
                  (fun () ->
                    let pfs =
                      List.map
                        (fun pg ->
                          (* Block allocation for pages a remote writer
                             extends. *)
                          if writable && pg * psize >= f.Types.size then
                            Sim.Engine.delay
                              sys.Types.params.Params.fs_block_alloc_ns;
                          let pf = page_in sys cell f pg in
                          pf.Types.pins <- pf.Types.pins + 1;
                          pinned := pf :: !pinned;
                          (pg, pf))
                        wanted
                    in
                    if f.Types.generation > gen then Error Types.EIO
                    else begin
                      let pages =
                        List.map
                          (fun (pg, pf) ->
                            Share.export sys cell pf ~client:src ~writable;
                            if writable then pf.Types.dirty <- true;
                            (pg, pf.Types.pfn))
                          pfs
                      in
                      Ok (P_located { pages; gen = f.Types.generation })
                    end)
              in
              if all_cached && not invalidating then
                (* Hit in the file cache: serviced entirely at interrupt
                   level (Section 4.3 explains why no blocking locks are
                   needed on this path). *)
                Types.Immediate (serve ())
              else Types.Queued serve
            end)
        | _ -> Types.Immediate (Error Types.EFAULT))
  end
