(** Per-cell page frame allocation with physical-level sharing (Sections
   3.2 and 5.4).

   Each cell manages a free list of the frames it owns. Under memory
   pressure the allocator can *borrow* frames from another cell (the
   memory home), which moves them to a reserved list and ignores them
   until the borrower returns them or fails. Requests carry constraints: a
   set of acceptable cells and a preferred cell; frames for internal
   kernel use must be local, since the firewall does not defend against
   wild writes by the memory home. *)

type Types.payload +=
    P_borrow of { count : int; }
  | P_borrowed of { pfns : int list; }
  | P_return of { pfns : int list; }
val borrow_op : Rpc.Op.t
val return_op : Rpc.Op.t
exception Out_of_memory
val free_count : Types.cell -> int

(** Pressure watermark: [pct] percent of the frames the cell owns, with a
    floor of 8 so tiny test cells still have a meaningful threshold. *)
val low_water : Types.cell -> pct:int -> int

val under_pressure : Types.cell -> pct:int -> bool
val reclaim : Types.system -> Types.cell -> want:int -> int
val take_local : Types.cell -> int option
val loan_frames :
  Types.system ->
  Types.cell -> client:Types.cell_id -> count:int -> int list
val borrow_from :
  Types.system ->
  Types.cell -> home:Types.cell_id -> count:int -> int list
val return_frame :
  Types.system -> Types.cell -> Types.pfdat -> unit
val alloc_frame :
  ?kernel_only:bool ->
  ?preferred:Types.cell_id ->
  Types.system -> Types.cell -> Types.pfdat
val free_frame :
  Types.system -> Types.cell -> Types.pfdat -> unit
val registered : bool ref
val register_handlers : unit -> unit
