(* Failure detection, agreement, recovery and reintegration tests. *)

let with_sys ?(ncells = 4) ?(oracle = false) ?(params = Hive.Params.default) f =
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = ncells; mem_pages_per_node = 512 }
  in
  let sys = Hive.System.boot ~mcfg ~params ~ncells ~oracle ~wax:false eng in
  f eng sys

(* Several tests below inspect the post-recovery "cell stays down" state,
   which only exists when the recovery master is not allowed to repair
   and reboot the failed cell on its own. *)
let manual = { Hive.Params.default with Hive.Params.auto_reintegrate = false }

let settle eng = Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 50_000_000L) eng

let await_recovery sys =
  Hive.System.run_until sys
    ~deadline:(Int64.add (Sim.Engine.now sys.Hive.Types.eng) 3_000_000_000L)
    (fun () ->
      (not sys.Hive.Types.recovery_in_progress)
      && sys.Hive.Types.recovery_events <> [])

let test_all_cells_enter_recovery () =
  with_sys (fun eng sys ->
      settle eng;
      Hive.System.inject_node_failure sys 2;
      Alcotest.(check bool) "recovery completed" true (await_recovery sys);
      let entered = List.map fst sys.Hive.Types.recovery_events in
      Alcotest.(check (list int)) "all survivors entered recovery" [ 0; 1; 3 ]
        (List.sort compare entered))

let test_live_sets_updated () =
  with_sys ~params:manual (fun eng sys ->
      settle eng;
      Hive.System.inject_node_failure sys 1;
      ignore (await_recovery sys);
      Array.iter
        (fun (c : Hive.Types.cell) ->
          if Hive.Types.cell_alive c then
            Alcotest.(check bool)
              (Printf.sprintf "cell %d dropped cell 1" c.Hive.Types.cell_id)
              false
              (List.mem 1 c.Hive.Types.live_set))
        sys.Hive.Types.cells)

let test_oracle_agreement () =
  with_sys ~oracle:true (fun eng sys ->
      settle eng;
      Hive.System.inject_node_failure sys 3;
      Alcotest.(check bool) "recovery with oracle" true (await_recovery sys))

let test_false_alert_dismissed () =
  with_sys (fun eng sys ->
      settle eng;
      (* A spurious hint against a perfectly healthy cell must be voted
         down, and the suspect must survive. *)
      let c0 = sys.Hive.Types.cells.(0) in
      (match sys.Hive.Types.on_hint with
      | Some f -> f c0 ~suspect:2 ~reason:"spurious"
      | None -> Alcotest.fail "no hint handler");
      Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 500_000_000L) eng;
      Alcotest.(check bool) "suspect survived" true
        (Hive.Types.cell_alive sys.Hive.Types.cells.(2));
      Alcotest.(check bool) "no recovery ran" true
        (sys.Hive.Types.recovery_events = []);
      Alcotest.(check bool) "gates reopened" true
        (Array.for_all
           (fun (c : Hive.Types.cell) -> c.Hive.Types.user_gate_open)
           sys.Hive.Types.cells);
      Alcotest.(check int) "dismissal counted" 1
        (Sim.Stats.value sys.Hive.Types.sys_counters "agreement.dismissed"))

let test_repeated_false_accuser_distrusted () =
  with_sys (fun eng sys ->
      settle eng;
      let c0 = sys.Hive.Types.cells.(0) in
      let accuse () =
        (match sys.Hive.Types.on_hint with
        | Some f -> f c0 ~suspect:2 ~reason:"crying wolf"
        | None -> ());
        Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 500_000_000L) eng
      in
      accuse ();
      accuse ();
      accuse ();
      (* Voters now refuse to confirm cell 0's alerts. *)
      Alcotest.(check bool) "cell 2 still alive after repeated alerts" true
        (Hive.Types.cell_alive sys.Hive.Types.cells.(2));
      let c1 = sys.Hive.Types.cells.(1) in
      Alcotest.(check bool) "peers count the false alerts" true
        (Hive.Agreement.false_alert_count c1 0 >= 2))

let test_processes_killed_by_dependency () =
  with_sys (fun eng sys ->
      settle eng;
      (* A process on cell 0 that mapped pages from cell 2 must die when
         cell 2 dies; an independent process survives. *)
      let dependent_killed = ref false in
      let independent_finished = ref false in
      let dep =
        Hive.Process.spawn sys sys.Hive.Types.cells.(0) ~name:"dep"
          (fun sys p ->
            (* Build dependency on cell 2: map a file homed on cell 2. *)
            let path =
              (* Find a path hashed to cell 2 (outside /tmp etc.). *)
              let rec go k =
                let c = Printf.sprintf "/x/dep.%d" k in
                if Hive.Fs.home_of_path sys c = 2 then c else go (k + 1)
              in
              go 0
            in
            let fd =
              Hive.Syscall.creat sys p ~content:(Bytes.make 4096 'd') path
            in
            ignore (Hive.Syscall.pread sys p ~fd ~pos:0 ~len:4096);
            Hive.Syscall.compute sys p 5_000_000_000L)
      in
      let indep =
        Hive.Process.spawn sys sys.Hive.Types.cells.(0) ~name:"indep"
          (fun sys p ->
            Hive.Syscall.compute sys p 600_000_000L;
            independent_finished := true)
      in
      ignore
        (Sim.Engine.spawn eng (fun () ->
             Sim.Engine.delay 200_000_000L;
             Hive.System.inject_node_failure sys 2));
      ignore
        (Hive.System.run_until_processes_done sys ~deadline:10_000_000_000L
           [ dep; indep ]);
      dependent_killed := dep.Hive.Types.killed_by_failure;
      Alcotest.(check bool) "dependent process killed" true !dependent_killed;
      Alcotest.(check bool) "independent process finished" true
        !independent_finished)

let test_preemptive_discard_counts () =
  with_sys ~ncells:2 (fun eng sys ->
      settle eng;
      (* Cell 1 writes into a cell-0 file, leaving remotely-writable
         pages; when cell 1 dies, cell 0 must discard them. *)
      let writer =
        Hive.Process.spawn sys sys.Hive.Types.cells.(1) ~name:"w"
          (fun sys p ->
            let fd = Hive.Syscall.creat sys p "/tmp/victim.dat" in
            ignore (Hive.Syscall.write sys p ~fd (Bytes.make 16384 'v'));
            Hive.Syscall.compute sys p 5_000_000_000L)
      in
      ignore writer;
      Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 100_000_000L) eng;
      let c0 = sys.Hive.Types.cells.(0) in
      let writable_before = Hive.Wild_write.remotely_writable_pages sys c0 in
      Alcotest.(check bool) "pages remotely writable before" true
        (writable_before > 0);
      Hive.System.inject_node_failure sys 1;
      ignore (await_recovery sys);
      Alcotest.(check int) "no remotely-writable pages after discard" 0
        (Hive.Wild_write.remotely_writable_pages sys c0);
      Alcotest.(check bool) "discards counted" true
        (Sim.Stats.value c0.Hive.Types.counters "vm.discarded_pages" > 0))

let test_wax_dies_and_restarts () =
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = 4; mem_pages_per_node = 512 }
  in
  let sys = Hive.System.boot ~mcfg ~ncells:4 ~wax:true eng in
  Sim.Engine.run ~until:500_000_000L eng;
  Alcotest.(check int) "first incarnation" 1 sys.Hive.Types.wax_incarnation;
  Hive.System.inject_node_failure sys 2;
  let ok =
    Hive.System.run_until sys ~deadline:3_000_000_000L (fun () ->
        sys.Hive.Types.wax_incarnation >= 2)
  in
  Alcotest.(check bool) "wax restarted by recovery master" true ok

let test_reintegration () =
  with_sys ~params:manual (fun eng sys ->
      settle eng;
      (* Create a file on cell 1, kill cell 1, reintegrate it, and check
         the file is still there (disk survives) and the cell serves. *)
      let path =
        let rec go k =
          let c = Printf.sprintf "/y/data.%d" k in
          if Hive.Fs.home_of_path sys c = 1 then c else go (k + 1)
        in
        go 0
      in
      let creator =
        Hive.Process.spawn sys sys.Hive.Types.cells.(1) ~name:"creator"
          (fun sys p ->
            let fd =
              Hive.Syscall.creat sys p ~content:(Bytes.of_string "persists")
                path
            in
            ignore fd;
            Hive.Syscall.sync sys p)
      in
      ignore
        (Hive.System.run_until_processes_done sys ~deadline:10_000_000_000L
           [ creator ]);
      Hive.System.inject_node_failure sys 1;
      ignore (await_recovery sys);
      Alcotest.(check bool) "down" false
        (Hive.Types.cell_alive sys.Hive.Types.cells.(1));
      Hive.System.reintegrate sys 1;
      Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 100_000_000L) eng;
      Alcotest.(check bool) "up again" true
        (Hive.Types.cell_alive sys.Hive.Types.cells.(1));
      (* Everyone has it back in the live set. *)
      Array.iter
        (fun (c : Hive.Types.cell) ->
          if Hive.Types.cell_alive c then
            Alcotest.(check bool) "in live set" true
              (List.mem 1 c.Hive.Types.live_set))
        sys.Hive.Types.cells;
      (* The file survived on disk and is served again. *)
      let reader =
        Hive.Process.spawn sys sys.Hive.Types.cells.(0) ~name:"reader"
          (fun sys p ->
            let fd = Hive.Syscall.openf sys p path in
            let b = Hive.Syscall.pread sys p ~fd ~pos:0 ~len:8 in
            assert (Bytes.to_string b = "persists"))
      in
      ignore
        (Hive.System.run_until_processes_done sys ~deadline:20_000_000_000L
           [ reader ]);
      Alcotest.(check (option int)) "read after reintegration" (Some 0)
        reader.Hive.Types.exit_code)

let test_double_failure () =
  with_sys ~params:manual (fun eng sys ->
      settle eng;
      Hive.System.inject_node_failure sys 1;
      ignore (await_recovery sys);
      sys.Hive.Types.recovery_events <- [];
      Hive.System.inject_node_failure sys 2;
      Alcotest.(check bool) "second recovery completes" true (await_recovery sys);
      Alcotest.(check (list int)) "two survivors" [ 0; 3 ]
        (List.sort compare (Hive.System.live_cells sys));
      ignore eng)

let test_round_restart_on_nested_failure () =
  with_sys ~params:manual (fun eng sys ->
      settle eng;
      let t0 = Sim.Engine.now eng in
      Hive.System.inject_node_failure sys 2;
      (* Wait until the round is in flight and past barrier 1, then kill a
         second participant mid-round: the survivors must abort the
         barriers and restart with the enlarged dead set instead of
         deadlocking on cell 1's barrier slot. *)
      let mid_round =
        Hive.System.run_until sys ~step:100_000L
          ~deadline:(Int64.add t0 3_000_000_000L)
          (fun () ->
            sys.Hive.Types.recovery_round_active
            && List.exists
                 (fun (phase, t) ->
                   phase = "recovery.barrier1" && Int64.compare t t0 >= 0)
                 sys.Hive.Types.recovery_timeline)
      in
      Alcotest.(check bool) "round reached barrier 1" true mid_round;
      Hive.System.inject_node_failure sys 1;
      Alcotest.(check bool) "restarted round completes" true
        (await_recovery sys);
      Alcotest.(check bool) "round restart counted" true
        (Sim.Stats.value sys.Hive.Types.sys_counters "recovery.round_restarts"
        >= 1);
      Alcotest.(check bool) "restart marker in timeline" true
        (List.exists
           (fun (p, _) -> p = "recovery.restart")
           sys.Hive.Types.recovery_timeline);
      Alcotest.(check (list int)) "two survivors" [ 0; 3 ]
        (List.sort compare (Hive.System.live_cells sys));
      Array.iter
        (fun (c : Hive.Types.cell) ->
          if Hive.Types.cell_alive c then begin
            Alcotest.(check bool)
              (Printf.sprintf "cell %d dropped cell 1" c.Hive.Types.cell_id)
              false
              (List.mem 1 c.Hive.Types.live_set);
            Alcotest.(check bool)
              (Printf.sprintf "cell %d dropped cell 2" c.Hive.Types.cell_id)
              false
              (List.mem 2 c.Hive.Types.live_set)
          end)
        sys.Hive.Types.cells)

let test_auto_reintegration () =
  with_sys (fun eng sys ->
      settle eng;
      Hive.System.inject_node_failure sys 2;
      Alcotest.(check bool) "recovery completes" true (await_recovery sys);
      (* With [auto_reintegrate] (the default) the recovery master repairs
         the failed nodes after diagnostics and reboots the cell without
         any manual call. *)
      let rebooted =
        Hive.System.run_until sys
          ~deadline:(Int64.add (Sim.Engine.now eng) 2_000_000_000L)
          (fun () -> Hive.Types.cell_alive sys.Hive.Types.cells.(2))
      in
      Alcotest.(check bool) "cell 2 rebooted by master" true rebooted;
      Alcotest.(check int) "one reintegration counted" 1
        (Sim.Stats.value sys.Hive.Types.sys_counters "cell.reintegrations");
      Alcotest.(check bool) "reintegrate marker in timeline" true
        (List.exists
           (fun (p, _) -> p = "recovery.reintegrate")
           sys.Hive.Types.recovery_timeline);
      Array.iter
        (fun (c : Hive.Types.cell) ->
          if Hive.Types.cell_alive c then
            Alcotest.(check bool)
              (Printf.sprintf "cell %d has cell 2 back" c.Hive.Types.cell_id)
              true
              (List.mem 2 c.Hive.Types.live_set))
        sys.Hive.Types.cells)

let test_panic_cuts_off_memory () =
  with_sys ~ncells:2 (fun eng sys ->
      settle eng;
      Hive.Panic.panic sys sys.Hive.Types.cells.(1) "test panic";
      (* Remote reads of the panicked cell's memory now bus-error. *)
      let p =
        Hive.Process.spawn sys sys.Hive.Types.cells.(0) ~name:"prober"
          (fun sys p ->
            ignore p;
            let c1 = sys.Hive.Types.cells.(1) in
            match
              Flash.Memory.read sys.Hive.Types.eng
                (Flash.Machine.memory sys.Hive.Types.machine)
                ~by:0 c1.Hive.Types.clock_addr 8
            with
            | _ -> failwith "expected cutoff"
            | exception Flash.Memory.Bus_error { cause = Flash.Memory.Cutoff; _ }
              -> ())
      in
      ignore
        (Hive.System.run_until_processes_done sys ~deadline:5_000_000_000L [ p ]);
      Alcotest.(check (option int)) "prober saw cutoff" (Some 0)
        p.Hive.Types.exit_code;
      ignore eng)

let suite =
  [
    Alcotest.test_case "all survivors enter recovery" `Quick
      test_all_cells_enter_recovery;
    Alcotest.test_case "live sets updated" `Quick test_live_sets_updated;
    Alcotest.test_case "agreement oracle mode" `Quick test_oracle_agreement;
    Alcotest.test_case "false alert dismissed, suspect survives" `Quick
      test_false_alert_dismissed;
    Alcotest.test_case "repeated false accuser distrusted" `Quick
      test_repeated_false_accuser_distrusted;
    Alcotest.test_case "dependent processes killed, others survive" `Quick
      test_processes_killed_by_dependency;
    Alcotest.test_case "preemptive discard revokes and frees" `Quick
      test_preemptive_discard_counts;
    Alcotest.test_case "wax dies with a cell and restarts" `Quick
      test_wax_dies_and_restarts;
    Alcotest.test_case "reintegration after repair" `Quick test_reintegration;
    Alcotest.test_case "two successive failures" `Quick test_double_failure;
    Alcotest.test_case "nested failure restarts the round" `Quick
      test_round_restart_on_nested_failure;
    Alcotest.test_case "automatic reintegration by the master" `Quick
      test_auto_reintegration;
    Alcotest.test_case "panic cuts off remote memory access" `Quick
      test_panic_cuts_off_memory;
  ]
