(** The process model: UNIX-style processes that run as simulation threads
   on their cell's processors, with fork across cell boundaries (part of
   the single-system image), exec, exit and wait.

   At fork, copy-on-write leaves are split (Section 5.3); when the child
   lands on a different cell, the split leaf crosses the cell boundary and
   the COW tree becomes a distributed data structure. *)

type Types.payload +=
    P_fork of { parent_pid : int; name : string;
      body : Types.system -> Types.process -> unit;
      regions : Types.region list; fds : (int * Types.fd) list;
    }
  | P_forked of { pid : int; }
val fork_op : Rpc.Op.t
val migrate_xfer_op : Rpc.Op.t
val cell_of : Types.system -> Types.process -> Types.cell
val cpu_of : Types.system -> Types.process -> Flash.Cpu.t
val compute : Types.system -> Types.process -> int64 -> unit
val alloc_pid : Types.system -> int
val make_process :
  Types.system ->
  Types.cell -> name:string -> pid:Types.pid -> Types.process
val reap : Types.system -> Types.process -> unit
val start_thread :
  Types.system ->
  Types.cell ->
  Types.process ->
  (Types.system -> Types.process -> unit) -> unit
val spawn :
  Types.system ->
  Types.cell ->
  name:string ->
  (Types.system -> Types.process -> unit) -> Types.process
val split_anon_regions :
  Types.system ->
  Types.process -> Types.cell -> Types.region list
val copy_fds : Types.process -> (int * Types.fd) list
val install_child :
  Types.system ->
  Types.cell ->
  name:string ->
  regions:Types.region list ->
  fds:(int * Types.fd) list ->
  parent_pid:Types.pid ->
  (Types.system -> Types.process -> unit) -> Types.process
val fork :
  Types.system ->
  Types.process ->
  ?on_cell:Types.cell_id ->
  name:string ->
  (Types.system -> Types.process -> unit) ->
  (Types.process, Types.errno) result
val exec :
  Types.system ->
  Types.process -> path:string -> (unit, Types.errno) result
val migrate :
  Types.system ->
  Types.process ->
  to_cell:Types.cell_id -> (unit, Types.errno) result
val wait :
  Types.system -> Types.process -> Types.process -> int
val wait_all : Types.system -> Types.process -> int list
val registered : bool ref
val register_handlers : unit -> unit
