type node = {
  id : int;
  cpu : Cpu.t;
  disk : Disk.t;
  mutable alive : bool;
}

type t = {
  cfg : Config.t;
  eng : Sim.Engine.t;
  memory : Memory.t;
  sips : Sips.t;
  nodes : node array;
  mutable failure_listeners : (int -> unit) list;
}

let create eng cfg =
  Config.validate cfg;
  {
    cfg;
    eng;
    memory = Memory.create cfg;
    sips = Sips.create eng cfg;
    nodes =
      Array.init cfg.Config.nodes (fun i ->
          { id = i; cpu = Cpu.create i; disk = Disk.create cfg i; alive = true });
    failure_listeners = [];
  }

let cfg t = t.cfg

let eng t = t.eng

let memory t = t.memory

let firewall t = Memory.firewall t.memory

let sips t = t.sips

let node t i = t.nodes.(i)

let cpu t i = t.nodes.(i).cpu

let disk t i = t.nodes.(i).disk

let node_alive t i = t.nodes.(i).alive

let on_node_failure t f = t.failure_listeners <- f :: t.failure_listeners

(* Fail-stop a node: the processor halts, the local memory becomes
   inaccessible, SIPS messages to it are dropped. The unit of hardware
   failure in a CC-NUMA machine (Figure 2.1 of the paper). *)
let fail_node t i =
  let n = t.nodes.(i) in
  if n.alive then begin
    n.alive <- false;
    Cpu.halt n.cpu;
    Memory.fail_node t.memory i;
    Sips.fail_node t.sips i;
    List.iter (fun f -> f i) t.failure_listeners
  end

(* CXL-style processor failure: the CPU halts and SIPS goes silent, but
   the node's memory controller keeps answering — remote reads of its
   pages still succeed. Survivors see a peer whose clock word is readable
   but frozen and whose messages never arrive; its clean exported pages
   can be salvaged instead of discarded. *)
let fail_node_cpu t i =
  let n = t.nodes.(i) in
  if n.alive then begin
    n.alive <- false;
    Cpu.halt n.cpu;
    Sips.fail_node t.sips i;
    List.iter (fun f -> f i) t.failure_listeners
  end

(* Repair and reintegrate a node (memory zeroed). *)
let restore_node t i =
  let n = t.nodes.(i) in
  n.alive <- true;
  Cpu.restore n.cpu;
  Memory.restore_node t.memory i;
  Sips.restore_node t.sips i

(* Memory cutoff, used by a cell's panic routine: the node stays alive but
   refuses remote memory accesses, preventing the spread of potentially
   corrupt data. *)
let cutoff_node t i = Memory.cutoff_node t.memory i

let procs_of_nodes nodes = nodes

let pp_summary fmt t =
  Format.fprintf fmt "FLASH machine: %d nodes, %d pages/node, firewall %s"
    t.cfg.Config.nodes t.cfg.Config.mem_pages_per_node
    (if t.cfg.Config.firewall_enabled then "on" else "off")
