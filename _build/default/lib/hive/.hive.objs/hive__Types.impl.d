lib/hive/types.ml: Array Bytes Flash Hashtbl List Params Sim
