(** Failure hints (Section 4.3).

   A cell is considered potentially failed when: an RPC to it times out; an
   access to its memory causes a bus error; its published clock word stops
   incrementing; or data read from its memory fails the consistency checks
   of the careful reference protocol. A hint triggers distributed
   agreement immediately; confirmation is required before recovery. *)

val handle_hint :
  Types.system ->
  Types.cell -> suspect:Types.cell_id -> reason:string -> unit
val install : Types.system -> unit
