(* Interconnect partitions, asymmetric reachability, the single-recovery-
   master invariant, and CXL-style memory salvage.

   Partitions are directed blackout windows at the SIPS layer; kernels
   must infer them from probe behavior (timeouts, not bus errors). The
   agreement protocol's quorum rule keeps the minority side from electing
   a second recovery master, the [Types.master_begin] latch proves it,
   and windows heal deterministically so the halves reconcile into one
   live set. *)

let with_sys ?(ncells = 4) ?(params = Hive.Params.default) f =
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = ncells; mem_pages_per_node = 512 }
  in
  let sys = Hive.System.boot ~mcfg ~params ~ncells ~oracle:false ~wax:false eng in
  f eng sys

let manual = { Hive.Params.default with Hive.Params.auto_reintegrate = false }

let settle eng =
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 50_000_000L) eng

let run_until_t eng t = Sim.Engine.run ~until:t eng

let await_recovery sys =
  Hive.System.run_until sys
    ~deadline:(Int64.add (Sim.Engine.now sys.Hive.Types.eng) 3_000_000_000L)
    (fun () ->
      (not sys.Hive.Types.recovery_in_progress)
      && sys.Hive.Types.recovery_events <> [])

let hint sys ~by ~suspect =
  match sys.Hive.Types.on_hint with
  | Some f -> f sys.Hive.Types.cells.(by) ~suspect ~reason:"test hint"
  | None -> Alcotest.fail "no hint handler installed"

let sips sys = Flash.Machine.sips sys.Hive.Types.machine

(* Sever one cell from the rest of the machine. [inbound_only] models
   asymmetric reachability: traffic INTO the cell is lost while its own
   sends still get out. *)
let sever sys ~cell ~from_ns ~until_ns ~inbound_only =
  List.iter
    (fun n ->
      Flash.Sips.partition (sips sys)
        {
          Flash.Sips.part_from = -1;
          part_to = n;
          part_from_ns = from_ns;
          part_until_ns = until_ns;
        };
      if not inbound_only then
        Flash.Sips.partition (sips sys)
          {
            Flash.Sips.part_from = n;
            part_to = -1;
            part_from_ns = from_ns;
            part_until_ns = until_ns;
          })
    sys.Hive.Types.cells.(cell).Hive.Types.cell_nodes

let live_set_of sys i =
  List.sort compare sys.Hive.Types.cells.(i).Hive.Types.live_set

let check_reconciled sys ~ncells =
  let all = List.init ncells Fun.id in
  Array.iter
    (fun (c : Hive.Types.cell) ->
      Alcotest.(check bool)
        (Printf.sprintf "cell %d alive after heal" c.Hive.Types.cell_id)
        true
        (Hive.Types.cell_alive c);
      Alcotest.(check (list int))
        (Printf.sprintf "cell %d sees one live set" c.Hive.Types.cell_id)
        all
        (live_set_of sys c.Hive.Types.cell_id))
    sys.Hive.Types.cells

let no_dual_master sys =
  Alcotest.(check (list string)) "no concurrent recovery masters" []
    sys.Hive.Types.master_overlaps

(* Run [f] on a fresh engine thread and drive the engine until it
   finishes (kernel-level test work that needs an execution context for
   RPCs and delays). *)
let in_thread eng f =
  let out = ref None in
  ignore (Sim.Engine.spawn eng (fun () -> out := Some (f ())));
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 5_000_000_000L) eng;
  match !out with
  | Some v -> v
  | None -> Alcotest.fail "engine thread did not finish"

(* ---------- symmetric split ---------- *)

let test_symmetric_split_one_master () =
  with_sys (fun eng sys ->
      settle eng;
      let t0 = Sim.Engine.now eng in
      let heal = Int64.add t0 600_000_000L in
      sever sys ~cell:3 ~from_ns:t0 ~until_ns:heal ~inbound_only:false;
      hint sys ~by:0 ~suspect:3;
      Alcotest.(check bool) "recovery completed" true (await_recovery sys);
      (* The majority excised the unreachable cell... *)
      Alcotest.(check (list int)) "majority live set" [ 0; 1; 2 ]
        (live_set_of sys 0);
      (* ...but the cell itself is still running behind the blackout, so
         reclamation is deferred until the heal. *)
      Alcotest.(check bool) "reclaim deferred" true
        (List.exists
           (fun (p, _) -> p = "recovery.reclaim_deferred")
           sys.Hive.Types.recovery_timeline);
      no_dual_master sys;
      (* After the heal the master stops the excised half and reboots it
         into the one surviving live set. *)
      run_until_t eng (Int64.add heal 500_000_000L);
      check_reconciled sys ~ncells:4;
      no_dual_master sys;
      Alcotest.(check (list string)) "single-master oracle clean" []
        (List.map
           (fun (v : Hive.Invariants.violation) -> v.Hive.Invariants.detail)
           (Hive.Invariants.check_single_master sys)))

(* ---------- asymmetric reachability ---------- *)

let test_asymmetric_no_deadlock_no_dual_master () =
  with_sys (fun eng sys ->
      settle eng;
      let t0 = Sim.Engine.now eng in
      let heal = Int64.add t0 500_000_000L in
      (* Only traffic INTO cell 3 is lost: it can shout, nobody can
         answer. Probes time out in the request direction for the
         majority and in the reply direction for the victim — both sides
         must classify "unreachable", not "dead hardware". *)
      sever sys ~cell:3 ~from_ns:t0 ~until_ns:heal ~inbound_only:true;
      hint sys ~by:0 ~suspect:3;
      Alcotest.(check bool) "no deadlock: recovery completed" true
        (await_recovery sys);
      Alcotest.(check bool) "agreement confirmed via unreachable votes" true
        (Sim.Stats.value sys.Hive.Types.sys_counters "agreement.confirmed" >= 1);
      Alcotest.(check (list int)) "majority live set" [ 0; 1; 2 ]
        (live_set_of sys 0);
      no_dual_master sys;
      run_until_t eng (Int64.add heal 500_000_000L);
      check_reconciled sys ~ncells:4;
      no_dual_master sys)

(* ---------- minority stand-down ---------- *)

let test_minority_stands_down () =
  with_sys (fun eng sys ->
      settle eng;
      let t0 = Sim.Engine.now eng in
      (* The heal must outlast the minority's agreement round: its vote
         RPCs to the unreachable majority each burn through every
         retransmission (~1 s per voter) before it can conclude it has no
         quorum. *)
      let heal = Int64.add t0 3_000_000_000L in
      sever sys ~cell:0 ~from_ns:t0 ~until_ns:heal ~inbound_only:false;
      (* The minority side raises the alarm: it can reach nobody, so it
         cannot muster a quorum — confirming would elect a recovery
         master concurrent with the majority's. It stands down. *)
      hint sys ~by:0 ~suspect:1;
      let stood_down =
        Hive.System.run_until sys
          ~deadline:(Int64.add t0 2_800_000_000L)
          (fun () -> not (Hive.Types.cell_alive sys.Hive.Types.cells.(0)))
      in
      Alcotest.(check bool) "minority cell stood down" true stood_down;
      Alcotest.(check bool) "no-quorum counted" true
        (Sim.Stats.value sys.Hive.Types.sys_counters "agreement.no_quorum" >= 1);
      Alcotest.(check bool) "standdown marker in timeline" true
        (List.exists
           (fun (p, _) -> p = "recovery.standdown")
           sys.Hive.Types.recovery_timeline);
      (* Meanwhile the majority's own clock monitoring has excised cell 0
         with a clean 3-of-4 quorum; after the heal the deferred reclaim
         reboots it into the one surviving live set. *)
      run_until_t eng (Int64.add heal 500_000_000L);
      check_reconciled sys ~ncells:4;
      no_dual_master sys)

(* ---------- short blackout: dismissal, heal, no false excision ---------- *)

(* Sever ONE link (both directions) between two cells, leaving every other
   path intact. *)
let sever_link sys ~a ~b ~from_ns ~until_ns =
  List.iter
    (fun na ->
      List.iter
        (fun nb ->
          Flash.Sips.partition (sips sys)
            {
              Flash.Sips.part_from = na;
              part_to = nb;
              part_from_ns = from_ns;
              part_until_ns = until_ns;
            };
          Flash.Sips.partition (sips sys)
            {
              Flash.Sips.part_from = nb;
              part_to = na;
              part_from_ns = from_ns;
              part_until_ns = until_ns;
            })
        sys.Hive.Types.cells.(b).Hive.Types.cell_nodes)
    sys.Hive.Types.cells.(a).Hive.Types.cell_nodes

let test_short_blackout_heals_without_excision () =
  with_sys (fun eng sys ->
      settle eng;
      let c0 = sys.Hive.Types.cells.(0) in
      (* A file homed on cell 1, created before the blackout. *)
      let path =
        let rec go k =
          let p = Printf.sprintf "/part/heal.%d" k in
          if Hive.Fs.home_of_path sys p = 1 then p else go (k + 1)
        in
        go 0
      in
      let content = Bytes.make 4096 'h' in
      in_thread eng (fun () ->
          match Hive.Fs.create_file sys c0 ~path ~content with
          | Ok _ -> ()
          | Error _ -> Alcotest.fail "create failed");
      let t0 = Sim.Engine.now eng in
      sever_link sys ~a:0 ~b:1 ~from_ns:t0 ~until_ns:(Int64.add t0 80_000_000L);
      (* Cell 0's clock monitor notices its severed neighbor within a few
         ticks and accuses — but cells 2 and 3 still reach cell 1 and vote
         it alive, so the alert is DISMISSED: one lost link must not
         excise a live cell. Meanwhile the read below rides RPC
         retransmissions through the window and completes after the
         heal. *)
      let read_ok =
        in_thread eng (fun () ->
            match Hive.Fs.open_file sys c0 ~path with
            | Error _ -> false
            | Ok (vn, gen) -> (
              match
                Hive.Fs.read sys c0 vn ~opened_gen:gen ~pos:0 ~len:4096
              with
              | Ok b -> Bytes.equal b content
              | Error _ -> false))
      in
      Alcotest.(check bool) "read completed through the heal" true read_ok;
      Alcotest.(check bool) "blackout dropped envelopes" true
        (Flash.Sips.partition_blocked_count (sips sys) > 0);
      Alcotest.(check int) "no excision was confirmed" 0
        (Sim.Stats.value sys.Hive.Types.sys_counters "agreement.confirmed");
      Alcotest.(check (list int)) "live set intact" [ 0; 1; 2; 3 ]
        (live_set_of sys 0);
      Alcotest.(check (list string)) "invariants clean after heal" []
        (List.map Hive.Invariants.to_string (Hive.Invariants.check sys)))

(* ---------- the single-master oracle itself ---------- *)

let test_oracle_latches_concurrent_masters () =
  with_sys (fun eng sys ->
      settle eng;
      ignore eng;
      Hive.Types.master_begin sys 0;
      Hive.Types.master_begin sys 1;
      Hive.Types.master_end sys 0;
      Hive.Types.master_end sys 1;
      (* Both masters are long gone — the overlap must still be latched. *)
      let vs = Hive.Invariants.check_single_master sys in
      Alcotest.(check bool) "overlap latched after both ended" true
        (List.exists
           (fun (v : Hive.Invariants.violation) ->
             v.Hive.Invariants.inv = "single-master")
           vs))

let test_oracle_flags_mastership_leak () =
  with_sys (fun eng sys ->
      settle eng;
      ignore eng;
      Hive.Types.master_begin sys 2;
      let leaked = Hive.Invariants.check_single_master sys in
      Alcotest.(check bool) "leak flagged" true (leaked <> []);
      Hive.Types.master_end sys 2;
      Alcotest.(check int) "clean after master_end" 0
        (List.length (Hive.Invariants.check_single_master sys)))

(* ---------- cpu-dead / memory-alive classification ---------- *)

let test_cpu_dead_mem_alive_classified_hard_dead () =
  with_sys ~params:manual (fun eng sys ->
      settle eng;
      Hive.System.inject_cpu_failure sys 2;
      Alcotest.(check bool) "memory banks still answer" true
        sys.Hive.Types.cells.(2).Hive.Types.mem_alive;
      hint sys ~by:0 ~suspect:2;
      Alcotest.(check bool) "recovery completed" true (await_recovery sys);
      (* A readable clock with a silent kernel is dead hardware, not a
         partition: the suspect leaves the quorum base and the survivors
         confirm immediately. *)
      Alcotest.(check (list int)) "survivors excised the victim" [ 0; 1; 3 ]
        (List.sort compare (Hive.System.live_cells sys));
      no_dual_master sys;
      Hive.System.reintegrate sys 2;
      settle eng;
      Alcotest.(check bool) "mem-alive flag cleared by reintegration" false
        sys.Hive.Types.cells.(2).Hive.Types.mem_alive)

(* ---------- memory salvage ---------- *)

(* Boot a 2-cell system, home a 2-page file on cell 1, import both pages
   into cell 0 (clean, read-only unless [writable]), then kill cell 1's
   processors while its memory lives on. Returns what the caller needs to
   inspect the aftermath. *)
let salvage_scenario ?(params = manual) ~writable f =
  with_sys ~ncells:2 ~params (fun eng sys ->
      settle eng;
      let c0 = sys.Hive.Types.cells.(0) in
      let path =
        let rec go k =
          let p = Printf.sprintf "/cxl/data.%d" k in
          if Hive.Fs.home_of_path sys p = 1 then p else go (k + 1)
        in
        go 0
      in
      let content = Bytes.cat (Bytes.make 4096 'A') (Bytes.make 4096 'B') in
      let vn, gen =
        in_thread eng (fun () ->
            match Hive.Fs.create_file sys c0 ~path ~content with
            | Ok _ -> (
              (* Make the home copy durable and clean. *)
              Hive.Fs.sync_cell sys sys.Hive.Types.cells.(1);
              match Hive.Fs.open_file sys c0 ~path with
              | Ok (vn, gen) -> (vn, gen)
              | Error _ -> Alcotest.fail "open failed")
            | Error _ -> Alcotest.fail "create failed")
      in
      let imported =
        in_thread eng (fun () ->
            List.for_all
              (fun page ->
                match
                  Hive.Fs.get_page sys c0 vn ~page ~writable ~opened_gen:gen
                    ~usage:`Syscall
                with
                | Ok _ -> true
                | Error _ -> false)
              [ 0; 1 ])
      in
      Alcotest.(check bool) "pages imported before the failure" true imported;
      Hive.System.inject_cpu_failure sys 1;
      hint sys ~by:0 ~suspect:1;
      Alcotest.(check bool) "recovery completed" true (await_recovery sys);
      f eng sys ~c0 ~vn ~gen ~content)

let salvaged_pfdats (c : Hive.Types.cell) =
  let out = ref [] in
  Hive.Pfdat.iter_pages c (fun pf ->
      if pf.Hive.Types.salvaged_from <> None then out := pf :: !out);
  !out

let test_salvage_clean_pages_byte_identical () =
  salvage_scenario ~writable:false (fun eng sys ~c0 ~vn ~gen ~content ->
      Alcotest.(check int) "both clean pages salvaged" 2
        (Sim.Stats.value c0.Hive.Types.counters "vm.salvaged_pages");
      (* Ground truth: the salvaged frames hold byte-identical copies. *)
      let mem = Flash.Machine.memory sys.Hive.Types.machine in
      List.iter
        (fun (pf : Hive.Types.pfdat) ->
          let bytes =
            Flash.Memory.peek mem
              (Hive.Fs.frame_addr sys pf.Hive.Types.pfn)
              4096
          in
          let page =
            match pf.Hive.Types.lid with
            | Some l -> l.Hive.Types.page
            | None -> Alcotest.fail "salvaged page has no logical id"
          in
          Alcotest.(check bytes) "salvaged copy byte-identical"
            (Bytes.sub content (page * 4096) 4096)
            bytes)
        (salvaged_pfdats c0);
      (* And the file system serves reads from them while the home stays
         down — no disk, no dead-home RPC. *)
      let served =
        in_thread eng (fun () ->
            match Hive.Fs.get_page sys c0 vn ~page:0 ~writable:false
                    ~opened_gen:gen ~usage:`Syscall
            with
            | Ok pf -> pf.Hive.Types.salvaged_from = Some 1
            | Error _ -> false)
      in
      Alcotest.(check bool) "reads served from the salvaged copy" true served)

let test_salvage_read_only_and_purged_at_reintegration () =
  salvage_scenario ~writable:false (fun eng sys ~c0 ~vn ~gen ~content:_ ->
      (* A write must fail exactly as a locate to the dead home would:
         dirtying the copy would be lost (and stale) after reboot. *)
      let write_errno =
        in_thread eng (fun () ->
            match Hive.Fs.get_page sys c0 vn ~page:0 ~writable:true
                    ~opened_gen:gen ~usage:`Syscall
            with
            | Ok _ -> None
            | Error e -> Some e)
      in
      Alcotest.(check bool) "salvaged copy is read-only (EIO)" true
        (write_errno = Some Hive.Types.EIO);
      Alcotest.(check bool) "salvaged bindings present before reboot" true
        (salvaged_pfdats c0 <> []);
      (* Reintegration restarts the home's generations from disk: every
         salvaged binding must be purged, or cell 0 would serve dead
         data. *)
      Hive.System.reintegrate sys 1;
      settle eng;
      Alcotest.(check (list int)) "no salvaged bindings survive reboot" []
        (List.map
           (fun (pf : Hive.Types.pfdat) -> pf.Hive.Types.pfn)
           (salvaged_pfdats c0));
      Alcotest.(check bool) "purge counted" true
        (Sim.Stats.value c0.Hive.Types.counters "vm.salvage_purged" > 0))

let test_wild_write_suspect_pages_discarded () =
  (* Import WRITABLE: the firewall granted cell 0 write access, so the
     home copy could have been scribbled on by the dying kernel — the
     wild-write filter must refuse to salvage it. *)
  salvage_scenario ~writable:true (fun _eng _sys ~c0 ~vn:_ ~gen:_ ~content:_ ->
      Alcotest.(check int) "nothing salvaged" 0
        (Sim.Stats.value c0.Hive.Types.counters "vm.salvaged_pages");
      Alcotest.(check (list int)) "suspect bindings discarded" []
        (List.map
           (fun (pf : Hive.Types.pfdat) -> pf.Hive.Types.pfn)
           (salvaged_pfdats c0)))

let test_salvage_ablation_discards_instead () =
  (* Same clean-import scenario with the knob off: recovery discards the
     bindings and post-failure reads hit the dead home. *)
  let params =
    { manual with Hive.Params.enable_salvage = false }
  in
  salvage_scenario ~params ~writable:false
    (fun eng sys ~c0 ~vn ~gen ~content:_ ->
      Alcotest.(check int) "ablation: nothing salvaged" 0
        (Sim.Stats.value c0.Hive.Types.counters "vm.salvaged_pages");
      let read_errno =
        in_thread eng (fun () ->
            match Hive.Fs.get_page sys c0 vn ~page:0 ~writable:false
                    ~opened_gen:gen ~usage:`Syscall
            with
            | Ok _ -> None
            | Error e -> Some e)
      in
      Alcotest.(check bool) "ablation: read fails against the dead home" true
        (read_errno <> None))

(* ---------- quorum property test ---------- *)

(* 500 random directed reachability matrices through the real quorum
   rule. Model: every cell is actually alive; a probe succeeds only if
   request and reply both get through (two-way reachability); silence is
   partition silence (stays in the quorum base). For every accuser/
   suspect pair the pure decision function says whether that accuser
   would confirm and start recovery (electing the lowest cell of its
   reachability class as master). Safety: all confirming accusers must
   lie in ONE mutual-reachability class — so at most one recovery master
   — and with the quorum check disabled (the planted --demo-split-brain
   bug) the 500 matrices must exhibit at least one multi-class confirm,
   proving the property test can actually see the bug. *)
let test_quorum_property_500_matrices () =
  let rng = Sim.Prng.of_int64 0x51_0B_AD_5EEDL in
  let legacy_splits = ref 0 in
  for _case = 1 to 500 do
    let n = 3 + Sim.Prng.int rng 6 in
    let reach = Array.init n (fun _ -> Array.make n false) in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        reach.(i).(j) <- i = j || Sim.Prng.int rng 3 <> 0
      done
    done;
    let reach2 i j = reach.(i).(j) && reach.(j).(i) in
    (* Mutual-reachability classes: connected components over two-way
       links. *)
    let comp = Array.make n (-1) in
    let rec flood root i =
      if comp.(i) < 0 then begin
        comp.(i) <- root;
        for j = 0 to n - 1 do
          if reach2 i j then flood root j
        done
      end
    in
    for i = 0 to n - 1 do
      flood i i
    done;
    let confirms ~quorum_check a s =
      let alive = ref 0 and unreachable = ref 0 in
      (* The accuser's own probe... *)
      if reach2 a s then incr alive else incr unreachable;
      (* ...plus every voter it can actually talk to. Silent voters are
         partition silence: no vote, but they stay in the quorum base. *)
      for v = 0 to n - 1 do
        if v <> s && v <> a && reach2 a v then
          if reach2 v s then incr alive else incr unreachable
      done;
      Hive.Agreement.quorum_confirms ~quorum_check
        {
          Hive.Agreement.t_alive = !alive;
          t_dead = 0;
          t_unreachable = !unreachable;
          t_hard_dead = 0;
          t_live_set = n;
        }
    in
    let classes_confirming quorum_check =
      let cs = ref [] in
      for a = 0 to n - 1 do
        for s = 0 to n - 1 do
          if s <> a && confirms ~quorum_check a s then
            if not (List.mem comp.(a) !cs) then cs := comp.(a) :: !cs
        done
      done;
      !cs
    in
    let quorum_classes = classes_confirming true in
    if List.length quorum_classes > 1 then
      Alcotest.failf
        "matrix %d (n=%d): %d reachability classes confirmed deaths under \
         the quorum rule — concurrent recovery masters"
        _case n
        (List.length quorum_classes);
    if List.length (classes_confirming false) > 1 then incr legacy_splits
  done;
  Alcotest.(check bool)
    "legacy no-quorum rule exhibits split-brain on these matrices" true
    (!legacy_splits > 0)

(* ---------- the planted split-brain bug ---------- *)

let has_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let contains_single_master violations =
  List.exists (fun v -> has_substring v "single-master") violations

let test_demo_split_brain_caught () =
  let plan = Faultinj.Fuzz.plan_of_seed 1L in
  let r = Faultinj.Fuzz.run_plan ~split_brain:true plan in
  Alcotest.(check bool) "planted split-brain detected" true
    (Faultinj.Fuzz.failed r);
  Alcotest.(check bool) "single-master oracle fired" true
    (contains_single_master r.Faultinj.Fuzz.r_violations)

let test_demo_split_brain_shrinks () =
  let plan = Faultinj.Fuzz.plan_of_seed 1L in
  let _plan', r' = Faultinj.Fuzz.shrink ~split_brain:true plan in
  Alcotest.(check bool) "shrunk plan still fails" true
    (Faultinj.Fuzz.failed r');
  Alcotest.(check bool) "shrunk failure still names single-master" true
    (contains_single_master r'.Faultinj.Fuzz.r_violations)

let suite =
  [
    Alcotest.test_case "symmetric split elects one master, heal reconciles"
      `Quick test_symmetric_split_one_master;
    Alcotest.test_case "asymmetric reachability: no deadlock, no dual master"
      `Quick test_asymmetric_no_deadlock_no_dual_master;
    Alcotest.test_case "minority side stands down" `Quick
      test_minority_stands_down;
    Alcotest.test_case "short blackout heals without excision" `Quick
      test_short_blackout_heals_without_excision;
    Alcotest.test_case "oracle latches concurrent masters" `Quick
      test_oracle_latches_concurrent_masters;
    Alcotest.test_case "oracle flags mastership leak" `Quick
      test_oracle_flags_mastership_leak;
    Alcotest.test_case "cpu-dead/mem-alive classified hard-dead" `Quick
      test_cpu_dead_mem_alive_classified_hard_dead;
    Alcotest.test_case "salvage: clean pages byte-identical" `Quick
      test_salvage_clean_pages_byte_identical;
    Alcotest.test_case "salvage: read-only, purged at reintegration" `Quick
      test_salvage_read_only_and_purged_at_reintegration;
    Alcotest.test_case "salvage: wild-write suspects discarded" `Quick
      test_wild_write_suspect_pages_discarded;
    Alcotest.test_case "salvage ablation discards instead" `Quick
      test_salvage_ablation_discards_instead;
    Alcotest.test_case "quorum property: 500 reachability matrices" `Quick
      test_quorum_property_500_matrices;
    Alcotest.test_case "demo split-brain caught by the oracle" `Quick
      test_demo_split_brain_caught;
    Alcotest.test_case "demo split-brain shrinks" `Slow
      test_demo_split_brain_shrinks;
  ]
