lib/hive/gate.ml: List Sim Types
