test/test_rpc.ml: Alcotest Array Flash Hive Int64 Sim
