lib/workloads/raytrace.ml: Array Bytes Hive Int64 List Printf Sim Workload
