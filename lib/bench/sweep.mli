(** The dimensional sweep driver: run every registered scenario over its
    grid and emit one deterministic [BENCH_<area>.json] per area — the
    machine-readable perf trajectory CI diffs against (see {!Diff}). *)

type row = {
  r_scenario : string;
  r_dims : Scenario.dims;
  r_metrics : Scenario.metric list;
}

type report = { a_area : string; a_rows : row list }

(** Run the sweep. [areas] restricts to the named areas; [quick] runs each
    scenario's reduced grid; [dims_filter] drops grid points (both default
    to everything). [verbose] (default true) prints each row's metrics as
    it completes. Reports are sorted by area; rows keep scenario
    declaration order. *)
val run :
  ?areas:string list ->
  ?quick:bool ->
  ?dims_filter:(Scenario.dims -> bool) ->
  ?verbose:bool ->
  unit ->
  report list

val report_to_json : report -> Sim.Json.t

val report_of_json : Sim.Json.t -> (report, string) result

(** ["BENCH_<area>.json"]. *)
val file_name : area:string -> string

(** Write each report to [dir/BENCH_<area>.json] (pretty-printed, stable);
    returns the paths written. *)
val write_dir : dir:string -> report list -> string list

val load_file : string -> (report, string) result

(** Load every [BENCH_*.json] in a directory, sorted by area. *)
val load_dir : string -> (report list, string) result
