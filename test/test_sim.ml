(* Tests for the discrete-event engine and synchronization primitives. *)

let check_i64 = Alcotest.(check int64)

let run_sim f =
  let eng = Sim.Engine.create () in
  f eng;
  Sim.Engine.run eng;
  eng

let test_clock_advances () =
  let trace = ref [] in
  let eng =
    run_sim (fun eng ->
        ignore
          (Sim.Engine.spawn eng ~name:"a" (fun () ->
               Sim.Engine.delay 100L;
               trace := ("a", Sim.Engine.time ()) :: !trace;
               Sim.Engine.delay 50L;
               trace := ("a2", Sim.Engine.time ()) :: !trace)))
  in
  check_i64 "final time" 150L (Sim.Engine.now eng);
  Alcotest.(check (list (pair string int64)))
    "trace" [ ("a", 100L); ("a2", 150L) ] (List.rev !trace)

let test_deterministic_order () =
  let order = ref [] in
  let eng = Sim.Engine.create () in
  for i = 1 to 5 do
    ignore
      (Sim.Engine.spawn eng ~name:(string_of_int i) (fun () ->
           Sim.Engine.delay 10L;
           order := i :: !order))
  done;
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "spawn order preserved at ties" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_spawn_at () =
  let t = ref 0L in
  let eng = Sim.Engine.create () in
  ignore (Sim.Engine.spawn_at eng ~at:500L (fun () -> t := Sim.Engine.time ()));
  Sim.Engine.run eng;
  check_i64 "starts at 500" 500L !t

let test_kill_unwinds () =
  let cleaned = ref false in
  let reached = ref false in
  let eng = Sim.Engine.create () in
  let victim =
    Sim.Engine.spawn eng ~name:"victim" (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () ->
            Sim.Engine.delay 1000L;
            reached := true))
  in
  ignore
    (Sim.Engine.spawn eng ~name:"killer" (fun () ->
         Sim.Engine.delay 10L;
         Sim.Engine.kill eng victim));
  Sim.Engine.run eng;
  Alcotest.(check bool) "cleanup ran" true !cleaned;
  Alcotest.(check bool) "body did not complete" false !reached;
  check_i64 "killed promptly, not at 1000" 10L (Sim.Engine.now eng)

let test_kill_before_start () =
  let ran = ref false in
  let eng = Sim.Engine.create () in
  let victim = Sim.Engine.spawn eng (fun () -> ran := true) in
  Sim.Engine.kill eng victim;
  Sim.Engine.run eng;
  Alcotest.(check bool) "never ran" false !ran;
  Alcotest.(check int) "no live threads" 0 (Sim.Engine.live_threads eng)

let test_run_until () =
  let count = ref 0 in
  let eng = Sim.Engine.create () in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         for _ = 1 to 100 do
           Sim.Engine.delay 10L;
           incr count
         done));
  Sim.Engine.run ~until:55L eng;
  Alcotest.(check int) "five ticks by t=55" 5 !count;
  check_i64 "clock clamped" 55L (Sim.Engine.now eng);
  Sim.Engine.run eng;
  Alcotest.(check int) "completes later" 100 !count

let test_crash_handler () =
  let eng = Sim.Engine.create () in
  let got = ref "" in
  Sim.Engine.set_crash_handler eng (fun thr e ->
      got := thr.Sim.Engine.name ^ ":" ^ Printexc.to_string e);
  ignore (Sim.Engine.spawn eng ~name:"boom" (fun () -> failwith "bad"));
  Sim.Engine.run eng;
  Alcotest.(check string) "handler saw it" "boom:Failure(\"bad\")" !got

let test_timer_cancel () =
  let fired = ref false in
  let eng = Sim.Engine.create () in
  let tm = Sim.Engine.timer eng ~after:100L (fun () -> fired := true) in
  Sim.Engine.cancel tm;
  Sim.Engine.run eng;
  Alcotest.(check bool) "cancelled timer silent" false !fired

let test_ivar_basic () =
  let eng = Sim.Engine.create () in
  let iv = Sim.Ivar.create () in
  let got = ref 0 in
  ignore
    (Sim.Engine.spawn eng (fun () -> got := Sim.Ivar.read_exn eng iv));
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.delay 42L;
         Sim.Ivar.fill eng iv 7));
  Sim.Engine.run eng;
  Alcotest.(check int) "value" 7 !got;
  check_i64 "waited" 42L (Sim.Engine.now eng)

let test_ivar_timeout () =
  let eng = Sim.Engine.create () in
  let iv = Sim.Ivar.create () in
  let got = ref (Some 1) in
  ignore
    (Sim.Engine.spawn eng (fun () -> got := Sim.Ivar.read ~timeout:100L eng iv));
  Sim.Engine.run eng;
  Alcotest.(check (option int)) "timed out" None !got;
  check_i64 "at timeout" 100L (Sim.Engine.now eng)

let test_ivar_fill_after_timeout () =
  let eng = Sim.Engine.create () in
  let iv = Sim.Ivar.create () in
  let first = ref (Some 0) and second = ref None in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         first := Sim.Ivar.read ~timeout:10L eng iv));
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.delay 50L;
         Sim.Ivar.fill eng iv 9;
         second := Sim.Ivar.read eng iv));
  Sim.Engine.run eng;
  Alcotest.(check (option int)) "first timed out" None !first;
  Alcotest.(check (option int)) "late fill readable" (Some 9) !second

let test_mailbox_fifo () =
  let eng = Sim.Engine.create () in
  let mb = Sim.Mailbox.create () in
  let got = ref [] in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         for _ = 1 to 3 do
           got := Sim.Mailbox.receive_exn eng mb :: !got
         done));
  ignore
    (Sim.Engine.spawn eng (fun () ->
         List.iter
           (fun x ->
             Sim.Engine.delay 5L;
             Sim.Mailbox.send eng mb x)
           [ 1; 2; 3 ]));
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_timeout_then_send () =
  let eng = Sim.Engine.create () in
  let mb = Sim.Mailbox.create () in
  let r1 = ref (Some 0) and r2 = ref None in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         r1 := Sim.Mailbox.receive ~timeout:10L eng mb));
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.delay 20L;
         Sim.Mailbox.send eng mb 5;
         (* Message must not be lost to the timed-out waiter. *)
         r2 := Sim.Mailbox.try_receive mb));
  Sim.Engine.run eng;
  Alcotest.(check (option int)) "timed out" None !r1;
  Alcotest.(check (option int)) "message preserved" (Some 5) !r2

let test_mutex_exclusion () =
  let eng = Sim.Engine.create () in
  let m = Sim.Mutex.create () in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 4 do
    ignore
      (Sim.Engine.spawn eng (fun () ->
           Sim.Mutex.with_lock eng m (fun () ->
               incr inside;
               if !inside > !max_inside then max_inside := !inside;
               Sim.Engine.delay 10L;
               decr inside)))
  done;
  Sim.Engine.run eng;
  Alcotest.(check int) "mutual exclusion" 1 !max_inside;
  check_i64 "serialized" 40L (Sim.Engine.now eng)

let test_mutex_killed_holder_releases () =
  let eng = Sim.Engine.create () in
  let m = Sim.Mutex.create () in
  let second_got_lock = ref false in
  let holder =
    Sim.Engine.spawn eng (fun () ->
        Sim.Mutex.with_lock eng m (fun () -> Sim.Engine.delay 1000L))
  in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.delay 5L;
         Sim.Mutex.lock eng m;
         second_got_lock := true));
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.delay 10L;
         Sim.Engine.kill eng holder));
  Sim.Engine.run eng;
  Alcotest.(check bool) "lock released by kill" true !second_got_lock

let test_semaphore_limits () =
  let eng = Sim.Engine.create () in
  let s = Sim.Semaphore.create 2 in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 6 do
    ignore
      (Sim.Engine.spawn eng (fun () ->
           Sim.Semaphore.with_acquired eng s (fun () ->
               incr inside;
               if !inside > !max_inside then max_inside := !inside;
               Sim.Engine.delay 10L;
               decr inside)))
  done;
  Sim.Engine.run eng;
  Alcotest.(check int) "at most 2 inside" 2 !max_inside;
  check_i64 "three waves" 30L (Sim.Engine.now eng)

let test_barrier_releases_all () =
  let eng = Sim.Engine.create () in
  let b = Sim.Barrier.create 3 in
  let released = ref [] in
  for i = 1 to 3 do
    ignore
      (Sim.Engine.spawn eng (fun () ->
           Sim.Engine.delay (Int64.of_int (i * 10));
           Sim.Barrier.await eng b;
           released := (i, Sim.Engine.time ()) :: !released))
  done;
  Sim.Engine.run eng;
  List.iter
    (fun (_, t) -> check_i64 "all released when last arrives" 30L t)
    !released;
  Alcotest.(check int) "all three" 3 (List.length !released)

let test_barrier_cyclic () =
  let eng = Sim.Engine.create () in
  let b = Sim.Barrier.create 2 in
  let rounds = ref 0 in
  for _ = 1 to 2 do
    ignore
      (Sim.Engine.spawn eng (fun () ->
           for _ = 1 to 3 do
             Sim.Engine.delay 1L;
             Sim.Barrier.await eng b
           done;
           incr rounds))
  done;
  Sim.Engine.run eng;
  Alcotest.(check int) "both finished 3 rounds" 2 !rounds

let test_barrier_abort_releases_waiters () =
  let eng = Sim.Engine.create () in
  let b = Sim.Barrier.create 3 in
  let outcomes = ref [] in
  for i = 1 to 2 do
    ignore
      (Sim.Engine.spawn eng (fun () ->
           Sim.Engine.delay (Int64.of_int i);
           let o = Sim.Barrier.await_abortable eng b in
           outcomes := o :: !outcomes))
  done;
  (* The third party never arrives; abort instead of deadlocking. *)
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.delay 10L;
         Sim.Barrier.abort eng b));
  Sim.Engine.run eng;
  Alcotest.(check int) "both waiters released" 2 (List.length !outcomes);
  Alcotest.(check bool) "both saw Aborted" true
    (List.for_all (fun o -> o = Sim.Barrier.Aborted) !outcomes);
  (* Abort is sticky: late arrivals are turned away immediately. *)
  let late = ref None in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         late := Some (Sim.Barrier.await_abortable eng b)));
  Sim.Engine.run eng;
  Alcotest.(check bool) "late arrival sees Aborted" true
    (!late = Some Sim.Barrier.Aborted)

let test_barrier_remove_party () =
  let eng = Sim.Engine.create () in
  let b = Sim.Barrier.create 3 in
  let released = ref 0 in
  for i = 1 to 2 do
    ignore
      (Sim.Engine.spawn eng (fun () ->
           Sim.Engine.delay (Int64.of_int i);
           match Sim.Barrier.await_abortable eng b with
           | Sim.Barrier.Released -> incr released
           | Sim.Barrier.Aborted -> ()))
  done;
  (* The third participant dies; shrinking the party count must release
     the two already waiting. *)
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.delay 10L;
         Sim.Barrier.remove_party eng b));
  Sim.Engine.run eng;
  Alcotest.(check int) "both released by the shrink" 2 !released;
  Alcotest.(check int) "parties now 2" 2 (Sim.Barrier.parties b);
  (* Shrinking the last party degenerates to an abort. *)
  let b2 = Sim.Barrier.create 1 in
  Sim.Barrier.remove_party eng b2;
  Alcotest.(check bool) "single-party shrink aborts" true
    (Sim.Barrier.aborted b2)

let test_prng_deterministic () =
  let a = Sim.Prng.create 42 and b = Sim.Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Prng.next a) (Sim.Prng.next b)
  done

let test_condvar () =
  let eng = Sim.Engine.create () in
  let m = Sim.Mutex.create () in
  let cv = Sim.Condvar.create () in
  let ready = ref false and observed = ref false in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Mutex.with_lock eng m (fun () ->
             while not !ready do
               Sim.Condvar.wait eng cv m
             done;
             observed := true)));
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.delay 30L;
         Sim.Mutex.with_lock eng m (fun () -> ready := true);
         Sim.Condvar.signal eng cv));
  Sim.Engine.run eng;
  Alcotest.(check bool) "condition observed" true !observed

let qcheck_heap_ordered =
  QCheck.Test.make ~name:"heap pops in (time, seq) order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun times ->
      let h = Sim.Heap.create () in
      List.iteri
        (fun i t -> Sim.Heap.push h ~time:(Int64.of_int t) ~seq:i i)
        times;
      let rec drain prev acc =
        match Sim.Heap.pop h with
        | None -> List.rev acc
        | Some e ->
          let key = (e.Sim.Heap.time, e.Sim.Heap.seq) in
          if compare key prev < 0 then raise Exit;
          drain key (e.Sim.Heap.payload :: acc)
      in
      match drain (-1L, -1) [] with
      | popped -> List.length popped = List.length times
      | exception Exit -> false)

let qcheck_heap_filter_preserves_order =
  QCheck.Test.make
    ~name:"heap filter drops exactly the marked entries, order intact"
    ~count:200
    QCheck.(list (pair (int_bound 1000) bool))
    (fun spec ->
      let entries = List.mapi (fun i (t, b) -> (Int64.of_int t, i, b)) spec in
      let h = Sim.Heap.create () in
      List.iter (fun (t, i, _) -> Sim.Heap.push h ~time:t ~seq:i i) entries;
      let keep = Array.of_list (List.map (fun (_, _, b) -> b) entries) in
      Sim.Heap.filter h (fun i -> keep.(i));
      let expected =
        List.filter_map (fun (t, i, b) -> if b then Some (t, i) else None)
          entries
        |> List.sort compare |> List.map snd
      in
      let rec drain acc =
        match Sim.Heap.pop h with
        | None -> List.rev acc
        | Some e -> drain (e.Sim.Heap.payload :: acc)
      in
      drain [] = expected)

(* Draining a large heap must release its peak allocation: a long-lived
   engine should not pin the backing array of its largest campaign. *)
let test_heap_pop_releases_peak () =
  let h = Sim.Heap.create () in
  for i = 0 to 4095 do
    Sim.Heap.push h ~time:(Int64.of_int (i land 63)) ~seq:i i
  done;
  let peak = Sim.Heap.capacity h in
  Alcotest.(check bool) "backing array grew" true (peak >= 4096);
  for _ = 1 to 4080 do
    ignore (Sim.Heap.pop h)
  done;
  Alcotest.(check int) "survivors remain" 16 (Sim.Heap.length h);
  Alcotest.(check bool) "peak released" true (Sim.Heap.capacity h < peak / 4)

(* Cancelling timers must reclaim their queue entries eagerly (via heap
   compaction) instead of letting tombstones drain through pop at their
   original deadlines. *)
let test_cancelled_timers_compacted () =
  let eng = Sim.Engine.create () in
  let fired = ref 0 in
  let timers =
    List.init 100 (fun i ->
        Sim.Engine.timer eng
          ~after:(Int64.of_int (1000 + i))
          (fun () -> incr fired))
  in
  List.iteri (fun i tm -> if i < 90 then Sim.Engine.cancel tm) timers;
  Alcotest.(check bool) "dead entries reclaimed before their deadlines" true
    (Sim.Engine.cancelled_pending eng < 90);
  Sim.Engine.run eng;
  Alcotest.(check int) "surviving timers fired" 10 !fired;
  Alcotest.(check int) "queue fully drained" 0
    (Sim.Engine.cancelled_pending eng)

(* Engines are single-threaded by construction; parallel fuzz workers
   each own a private one. Driving an engine from another domain must be
   refused loudly, not corrupt the queue silently. *)
let test_foreign_domain_rejected () =
  let eng = Sim.Engine.create () in
  let verdict =
    Domain.spawn (fun () ->
        match Sim.Engine.spawn eng (fun () -> ()) with
        | _ -> "accepted"
        | exception Invalid_argument _ -> "rejected")
  in
  Alcotest.(check string) "cross-domain scheduling refused" "rejected"
    (Domain.join verdict);
  (* The owner can still use it afterwards. *)
  ignore (Sim.Engine.spawn eng (fun () -> Sim.Engine.delay 1L));
  Sim.Engine.run eng;
  check_i64 "owner unaffected" 1L (Sim.Engine.now eng)

let qcheck_prng_bounds =
  QCheck.Test.make ~name:"prng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let g = Sim.Prng.create seed in
      let x = Sim.Prng.int g bound in
      x >= 0 && x < bound)

let qcheck_mailbox_preserves_messages =
  QCheck.Test.make ~name:"mailbox delivers every message exactly once"
    ~count:100
    QCheck.(list small_nat)
    (fun msgs ->
      let eng = Sim.Engine.create () in
      let mb = Sim.Mailbox.create () in
      let got = ref [] in
      let n = List.length msgs in
      ignore
        (Sim.Engine.spawn eng (fun () ->
             for _ = 1 to n do
               got := Sim.Mailbox.receive_exn eng mb :: !got
             done));
      ignore
        (Sim.Engine.spawn eng (fun () ->
             List.iter (fun x -> Sim.Mailbox.send eng mb x) msgs));
      Sim.Engine.run eng;
      List.rev !got = msgs)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let test_deadlock_names_blocked_threads () =
  let eng = Sim.Engine.create () in
  let mb = Sim.Mailbox.create () in
  ignore
    (Sim.Engine.spawn eng ~name:"rpc.server" (fun () ->
         ignore (Sim.Mailbox.receive eng mb)));
  ignore
    (Sim.Engine.spawn eng ~name:"waiter" (fun () ->
         Sim.Engine.delay 10L;
         ignore (Sim.Ivar.read eng (Sim.Ivar.create ()))));
  Sim.Engine.run eng;
  match Sim.Engine.check_deadlock eng with
  | () -> Alcotest.fail "deadlock not reported"
  | exception Sim.Engine.Deadlock msg ->
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "message mentions %S" needle)
          true (contains msg needle))
      [
        "2 thread"; "tid"; "rpc.server"; "mailbox.receive"; "waiter";
        "ivar.read";
      ]

let test_no_deadlock_when_all_exit () =
  let eng = Sim.Engine.create () in
  ignore (Sim.Engine.spawn eng ~name:"a" (fun () -> Sim.Engine.delay 5L));
  Sim.Engine.run eng;
  Sim.Engine.check_deadlock eng

let suite =
  [
    Alcotest.test_case "clock advances with delays" `Quick test_clock_advances;
    Alcotest.test_case "deterministic tie-break order" `Quick
      test_deterministic_order;
    Alcotest.test_case "spawn_at starts later" `Quick test_spawn_at;
    Alcotest.test_case "kill unwinds with cleanup" `Quick test_kill_unwinds;
    Alcotest.test_case "kill before start" `Quick test_kill_before_start;
    Alcotest.test_case "run ~until pauses and resumes" `Quick test_run_until;
    Alcotest.test_case "crash handler invoked" `Quick test_crash_handler;
    Alcotest.test_case "timer cancel" `Quick test_timer_cancel;
    Alcotest.test_case "ivar fill/read" `Quick test_ivar_basic;
    Alcotest.test_case "ivar read timeout" `Quick test_ivar_timeout;
    Alcotest.test_case "ivar fill after timeout" `Quick
      test_ivar_fill_after_timeout;
    Alcotest.test_case "mailbox fifo" `Quick test_mailbox_fifo;
    Alcotest.test_case "mailbox timeout does not eat messages" `Quick
      test_mailbox_timeout_then_send;
    Alcotest.test_case "mutex mutual exclusion" `Quick test_mutex_exclusion;
    Alcotest.test_case "mutex released when holder killed" `Quick
      test_mutex_killed_holder_releases;
    Alcotest.test_case "semaphore limits concurrency" `Quick
      test_semaphore_limits;
    Alcotest.test_case "barrier releases all at once" `Quick
      test_barrier_releases_all;
    Alcotest.test_case "barrier is cyclic" `Quick test_barrier_cyclic;
    Alcotest.test_case "barrier abort releases waiters" `Quick
      test_barrier_abort_releases_waiters;
    Alcotest.test_case "barrier shrinks when a party dies" `Quick
      test_barrier_remove_party;
    Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
    Alcotest.test_case "condvar signal" `Quick test_condvar;
    Alcotest.test_case "deadlock report names blocked threads" `Quick
      test_deadlock_names_blocked_threads;
    Alcotest.test_case "no deadlock when all threads exit" `Quick
      test_no_deadlock_when_all_exit;
    Alcotest.test_case "heap pop releases peak capacity" `Quick
      test_heap_pop_releases_peak;
    Alcotest.test_case "cancelled timers compacted eagerly" `Quick
      test_cancelled_timers_compacted;
    Alcotest.test_case "engine rejects use from a foreign domain" `Quick
      test_foreign_domain_rejected;
    QCheck_alcotest.to_alcotest qcheck_heap_ordered;
    QCheck_alcotest.to_alcotest qcheck_heap_filter_preserves_order;
    QCheck_alcotest.to_alcotest qcheck_prng_bounds;
    QCheck_alcotest.to_alcotest qcheck_mailbox_preserves_messages;
  ]
