lib/hive/vm.ml: Array Careful_ref Cow Flash Fs Gate Hashtbl Int64 List Page_alloc Params Pfdat Rpc Share Sim Swap Types Wild_write
