(** Common workload infrastructure: deterministic input generation, output
   verification against reference contents, and timing.

   Workload outputs are deterministic functions of their inputs so that
   the fault-injection experiments can detect corruption by comparing
   output files against reference copies, exactly as in Section 7.4. *)

type result = {
  name : string;
  elapsed_ns : int64;
  completed : bool;
  procs_total : int;
  procs_killed : int;
}
val ns_to_s : int64 -> float
val synth_content : tag:string -> bytes:int -> bytes
val derive_output : input:bytes -> bytes:int -> bytes
val stable_content : Hive.Types.system -> string -> bytes option
val logical_content : Hive.Types.system -> string -> bytes option
type verify_outcome = Match | Data_loss | Corrupt | Missing
val verify_output :
  Hive.Types.system -> path:string -> reference:Bytes.t -> verify_outcome
val verify_outcome_to_string : verify_outcome -> string
