(* Distributed agreement on cell failure (Section 4.3).

   A hint alone must not reboot a cell: a faulty cell that mistakenly
   concluded others were corrupt could destroy a large fraction of the
   system. When an alert is broadcast, all cells suspend user-level
   processes and vote on the suspect's liveness; consensus among the
   surviving cells is required before recovery. A cell that broadcasts
   the same alert twice but is voted down both times is itself considered
   corrupt by the other cells.

   Interconnect partitions add a third observable beside "alive" and
   "dead": *unreachable*. A bus error is the hardware answering "that
   memory is gone" (node dead); a timeout is silence — the peer may be
   alive on the far side of a partition. The vote therefore carries a
   tri-state verdict, and confirmation requires responses from a strict
   majority of the accuser's live set (minus cells whose hardware is
   demonstrably dead). An accuser that cannot muster that quorum is on
   the minority side of a split: confirming there would elect a recovery
   master concurrently with the majority's, so it stands down (panics)
   instead — safety over liveness, exactly the Hive bias.

   The paper simulated this protocol with an oracle (the group-membership
   algorithm was not yet implemented); we provide both the real
   broadcast-vote protocol and an oracle mode for reproducing the paper's
   experimental setup. *)

type verdict = V_alive | V_dead | V_unreachable

type Types.payload +=
  | P_vote_req of { suspect : Types.cell_id; accuser : Types.cell_id }
  | P_vote of { verdict : verdict }
  | P_dismiss of { accuser : Types.cell_id }

let vote_op = Rpc.Op.declare "agree.vote"

(* A liveness probe has no effect to replay. *)
let ping_op = Rpc.Op.declare ~idempotent:true "agree.ping"

let dismiss_op = Rpc.Op.declare "agree.dismiss"

let probe_timeout_ns = 2_000_000L

(* The confirmation decision as a pure function of one round's tallies,
   shared by the live protocol below and by property tests that drive it
   with thousands of synthetic electorates. [t_hard_dead] counts cells
   whose hardware demonstrably died (bus error or readable-but-frozen
   clock): they leave the quorum base. Unreachable silence does not — a
   partitioned peer may be alive, so it stays in the base and denies the
   accuser its vote. *)
type tally = {
  t_alive : int;  (** responders that saw the suspect alive *)
  t_dead : int;  (** responders that saw dead hardware *)
  t_unreachable : int;  (** responders that timed out probing the suspect *)
  t_hard_dead : int;  (** voters (or the suspect) with demonstrably dead hw *)
  t_live_set : int;  (** size of the accuser's live set *)
}

let quorum_confirms ~quorum_check (t : tally) =
  let responders = t.t_alive + t.t_dead + t.t_unreachable in
  let quorum_base = t.t_live_set - t.t_hard_dead in
  if quorum_check then
    t.t_alive = 0
    && (t.t_dead > 0 || t.t_unreachable > 0)
    && responders * 2 > quorum_base
  else
    (* Historical rule (no quorum): silence counts as a death vote. Kept
       as the planted bug behind --demo-split-brain: under a partition
       both sides confirm and elect concurrent masters. *)
    t.t_dead + t.t_unreachable > t.t_alive

(* Ground truth used in oracle mode, mirroring the SimOS machine model's
   failure oracle. *)
let oracle_dead (sys : Types.system) suspect =
  let c = sys.Types.cells.(suspect) in
  c.Types.cstatus = Types.Cell_down
  || List.exists
       (fun n -> not (Flash.Machine.node_alive sys.Types.machine n))
       c.Types.cell_nodes

(* Probe a suspect: careful read of its clock word plus a ping RPC. The
   careful section distinguishes a partitioned peer (times out:
   [Unreachable]) from dead hardware (bus error). A readable clock with a
   silent kernel means the processors are dead while the memory lives on
   (the Cpu_dead_mem_alive fault) — unless a partition armed between the
   two reads, which the clock re-read detects. *)
let probe (sys : Types.system) (voter : Types.cell) suspect =
  Sim.Engine.delay sys.Types.params.Params.agreement_vote_ns;
  if sys.Types.use_agreement_oracle then
    if oracle_dead sys suspect then V_dead else V_alive
  else begin
    match Clock.read_peer_clock sys voter ~target:suspect with
    | Error (Careful_ref.Unreachable _) -> V_unreachable
    | Error _ -> V_dead
    | Ok _ -> (
      match
        Rpc.call sys ~from:voter ~target:suspect ~op:ping_op
          ~timeout_ns:probe_timeout_ns Types.P_unit
      with
      | Ok _ -> V_alive
      | Error _ -> (
        match Clock.read_peer_clock sys voter ~target:suspect with
        | Error (Careful_ref.Unreachable _) -> V_unreachable
        | Ok _ | Error _ -> V_dead))
  end

let false_alert_count (c : Types.cell) accuser =
  match List.assoc_opt accuser c.Types.false_alerts with
  | Some n -> n
  | None -> 0

let bump_false_alerts (c : Types.cell) accuser =
  let n = false_alert_count c accuser in
  c.Types.false_alerts <-
    (accuser, n + 1) :: List.remove_assoc accuser c.Types.false_alerts

(* Does the recovery already in flight reach this cell? If the accuser is
   partitioned from every participant, that recovery cannot observe (or
   excise) anything on this side — the accuser must run its own round
   rather than silently deferring to a recovery it cannot see. *)
let standing_recovery_reaches (sys : Types.system) (accuser : Types.cell) =
  List.exists
    (fun p ->
      p <> accuser.Types.cell_id
      && not (Careful_ref.partitioned sys accuser ~target:p))
    sys.Types.recovery_participants

(* Run one agreement round from the accusing cell. *)
let run (sys : Types.system) (accuser : Types.cell) ~suspect ~reason =
  let skip =
    (not (Types.cell_alive accuser))
    || sys.Types.recovery_in_progress
       && (accuser.Types.in_recovery || standing_recovery_reaches sys accuser)
  in
  if skip then ()
  else begin
    sys.Types.recovery_in_progress <- true;
    (* Publish the round's electorate: a later hint on a partitioned cell
       consults it to decide whether this round can possibly reach it. *)
    sys.Types.recovery_participants <-
      List.filter (fun id -> id <> suspect) accuser.Types.live_set;
    Types.sys_bump sys "agreement.rounds";
    Sim.Trace.info sys.Types.eng "agreement: cell %d accuses cell %d (%s)"
      accuser.Types.cell_id suspect reason;
    Types.note_phase sys ~cell:accuser.Types.cell_id "recovery.agreement";
    Gate.close sys accuser;
    let voters =
      List.filter (fun id -> id <> suspect) accuser.Types.live_set
    in
    let votes_dead = ref 0 and votes_alive = ref 0 in
    let votes_unreachable = ref 0 in
    (* Voters that never answered, split by what their silence means:
       a readable clock or a bus error is dead hardware (out of the
       quorum base); a careful-section timeout is a partitioned peer that
       may well be alive (stays in the base, denies us its vote). *)
    let silent_unreachable = ref 0 and silent_dead = ref 0 in
    let count = function
      | V_alive -> incr votes_alive
      | V_dead -> incr votes_dead
      | V_unreachable -> incr votes_unreachable
    in
    let my_verdict = ref V_unreachable in
    List.iter
      (fun voter_id ->
        if voter_id = accuser.Types.cell_id then begin
          let v = probe sys accuser suspect in
          my_verdict := v;
          count v
        end
        else
          match
            Rpc.call sys ~from:accuser ~target:voter_id ~op:vote_op
              (P_vote_req { suspect; accuser = accuser.Types.cell_id })
          with
          | Ok (P_vote { verdict }) -> count verdict
          | Ok _ | Error _ -> (
            match Clock.read_peer_clock sys accuser ~target:voter_id with
            | Error (Careful_ref.Unreachable _) -> incr silent_unreachable
            | Ok _ | Error _ -> incr silent_dead))
      voters;
    let p = sys.Types.params in
    let hard_dead =
      !silent_dead + (match !my_verdict with V_dead -> 1 | _ -> 0)
    in
    let confirmed =
      quorum_confirms ~quorum_check:p.Params.agreement_quorum_check
        {
          t_alive = !votes_alive;
          t_dead = !votes_dead;
          t_unreachable = !votes_unreachable;
          t_hard_dead = hard_dead;
          t_live_set = List.length accuser.Types.live_set;
        }
    in
    if confirmed then begin
      Types.sys_bump sys "agreement.confirmed";
      Recovery.initiate ~by:accuser.Types.cell_id sys ~dead:[ suspect ]
    end
    else if
      p.Params.agreement_quorum_check
      && !votes_alive = 0
      && (!votes_unreachable > 0 || !silent_unreachable > 0)
    then begin
      (* No quorum, and the missing voters are unreachable rather than
         dead: this accuser is on the minority side of a partition. *)
      Types.sys_bump sys "agreement.no_quorum";
      Types.note_phase sys ~cell:accuser.Types.cell_id "recovery.standdown";
      if not sys.Types.recovery_round_active then
        sys.Types.recovery_in_progress <- false;
      Panic.panic sys accuser "partition: minority side, standing down"
    end
    else begin
      (* Dismissed: reopen gates everywhere and note the false alert. *)
      Types.sys_bump sys "agreement.dismissed";
      bump_false_alerts accuser accuser.Types.cell_id;
      accuser.Types.suspected <-
        List.filter (fun s -> s <> suspect) accuser.Types.suspected;
      List.iter
        (fun voter_id ->
          if voter_id <> accuser.Types.cell_id then
            ignore
              (Rpc.call sys ~from:accuser ~target:voter_id ~op:dismiss_op
                 (P_dismiss { accuser = accuser.Types.cell_id })))
        voters;
      Gate.open_ sys accuser;
      sys.Types.recovery_in_progress <- false
    end
  end

(* After voting "dead" a cell keeps its gate closed until the accuser
   either confirms (recovery closes it anyway) or dismisses the alert. A
   lost dismiss must not suspend user processes forever: re-check after a
   timeout and reopen if no recovery is in flight. While agreement or
   recovery is still running, re-arm and look again later. *)
let watchdog_timeout_ns = 2_000_000_000L

let watchdog_reopen (sys : Types.system) (cell : Types.cell) =
  let rec check () =
    if Types.cell_alive cell && not cell.Types.user_gate_open then begin
      if sys.Types.recovery_in_progress || cell.Types.in_recovery then
        Sim.Engine.schedule sys.Types.eng ~after:watchdog_timeout_ns check
      else begin
        Types.bump cell "agreement.watchdog_reopens";
        Gate.open_ sys cell
      end
    end
  in
  Sim.Engine.schedule sys.Types.eng ~after:watchdog_timeout_ns check

let registered = ref false

let register_handlers () =
  if not !registered then begin
    registered := true;
    Rpc.register ping_op (fun _sys _cell ~src:_ _arg ->
        Types.Immediate (Ok Types.P_unit));
    Rpc.register vote_op (fun sys cell ~src arg ->
        match arg with
        | P_vote_req { suspect; accuser } ->
          Types.Queued
            (fun () ->
              (* Suspend user-level processes for the duration of
                 agreement (and recovery, if confirmed). *)
              Gate.close sys cell;
              let verdict =
                if false_alert_count cell accuser >= 2 then
                  (* Repeated false accuser: considered corrupt; refuse to
                     confirm its alerts. *)
                  V_alive
                else probe sys cell suspect
              in
              ignore src;
              (match verdict with
              | V_alive ->
                (* Reopen optimistically; a confirm will re-close. *)
                Gate.open_ sys cell
              | V_dead | V_unreachable ->
                (* The gate stays closed awaiting the accuser's verdict.
                   On a degraded interconnect the dismiss RPC can be lost
                   even after every retransmission, which would leave this
                   cell's processes suspended forever — a watchdog reopens
                   the gate if no recovery materializes. *)
                watchdog_reopen sys cell);
              Ok (P_vote { verdict }))
        | _ -> Types.Immediate (Error Types.EFAULT));
    Rpc.register dismiss_op (fun sys cell ~src:_ arg ->
        match arg with
        | P_dismiss { accuser } ->
          bump_false_alerts cell accuser;
          Gate.open_ sys cell;
          Types.Immediate (Ok Types.P_unit)
        | _ -> Types.Immediate (Error Types.EFAULT))
  end
