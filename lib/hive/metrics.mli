(** Metrics export: JSON snapshot of the run's instrumentation — per-op
    RPC latency histograms (p50/p95/p99 plus log-scale buckets), per-cell
    counters and status, system counters, and the recovery phase
    timeline. *)

(** Render the full metrics document as a JSON string. *)
val to_json : Types.system -> string

(** Write {!to_json} to [path]. *)
val write_file : Types.system -> string -> unit

(** Print a human-readable summary (per-op RPC latency percentiles and
    the recovery timeline) to stdout. *)
val print_summary : Types.system -> unit
