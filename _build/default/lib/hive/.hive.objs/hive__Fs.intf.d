lib/hive/fs.mli: Bytes Flash Types
