lib/flash/firewall.mli: Addr Config
