(* The swapper: anonymous pages whose backing store is the swap partition
   (Section 5.3 calls anonymous pages "those whose backing store is in the
   swap partition"; Table 3.4 lists "which processes to swap" among the
   Wax-driven policies).

   Each cell owns a swap area on its local disk: the top
   [Config.swap_blocks] blocks ([Config.swap_base] upward — derived from
   the disk geometry, so file blocks can never overlap the swap area no
   matter the machine size). Swapping out an idle anonymous page writes
   it to a swap block and frees the frame; the next fault finds it
   neither in the page cache nor in the COW record path and swaps it back
   in from that block. Only pages homed on this cell (its own anonymous
   data) are swapped: the firewall rules already forbid trusting remote
   frames for kernel-critical data, and remote clients simply re-import
   after a swap-in. *)

let swap_base (sys : Types.system) = Flash.Config.swap_base sys.Types.mcfg

let page_size (sys : Types.system) = sys.Types.mcfg.Flash.Config.page_size

let mem (sys : Types.system) = Flash.Machine.memory sys.Types.machine

let is_swappable (pf : Types.pfdat) =
  Pfdat.is_idle pf
  && (not pf.Types.extended)
  && pf.Types.borrowed_from = None
  &&
  match pf.Types.lid with
  | Some { Types.tag = Types.Anon_obj _; _ } -> true
  | _ -> false

(* Allocate a block within the swap area: reuse a freed block, else bump.
   None when the partition is full. *)
let alloc_swap_block (sys : Types.system) (c : Types.cell) =
  match c.Types.swap_free_blocks with
  | b :: rest ->
    c.Types.swap_free_blocks <- rest;
    Some b
  | [] ->
    if c.Types.swap_blocks_used >= sys.Types.mcfg.Flash.Config.swap_blocks
    then None
    else begin
      let b = c.Types.swap_blocks_used in
      c.Types.swap_blocks_used <- c.Types.swap_blocks_used + 1;
      Some b
    end

(* Swap one anonymous page out to the local swap partition. *)
let swap_out_page (sys : Types.system) (c : Types.cell) (pf : Types.pfdat) =
  match pf.Types.lid with
  | Some ({ Types.tag = Types.Anon_obj _; _ } as lid) -> (
    match alloc_swap_block sys c with
    | None ->
      Types.bump c "swap.partition_full";
      false
    | Some block ->
      let psize = page_size sys in
      let addr = Flash.Addr.addr_of_pfn sys.Types.mcfg pf.Types.pfn in
      let data =
        Flash.Memory.read sys.Types.eng (mem sys) ~by:(Types.boss_proc c) addr
          psize
      in
      let disk = Flash.Machine.disk sys.Types.machine (Types.boss_proc c) in
      Flash.Disk.write sys.Types.eng disk
        ~block:(swap_base sys + block)
        ~bytes:psize;
      Hashtbl.replace c.Types.swap_table lid (block, data);
      Pfdat.remove c pf;
      Hashtbl.remove c.Types.frames pf.Types.pfn;
      Types.push_free c pf.Types.pfn;
      Types.bump c "swap.outs";
      true)
  | _ -> false

(* Reclaim up to [want] frames by swapping idle anonymous pages out. *)
let swap_out_idle (sys : Types.system) (c : Types.cell) ~want =
  let victims = ref [] in
  let n = ref 0 in
  Pfdat.iter_pages c (fun pf ->
      if !n < want && is_swappable pf then begin
        victims := pf :: !victims;
        incr n
      end);
  List.fold_left
    (fun acc pf -> if swap_out_page sys c pf then acc + 1 else acc)
    0 !victims

(* Fault-time swap-in: if the page was swapped, restore it into a fresh
   frame and re-insert it in the page cache. The freed swap block is
   recycled for later swap-outs. *)
let swap_in (sys : Types.system) (c : Types.cell) lid =
  match Hashtbl.find_opt c.Types.swap_table lid with
  | None -> None
  | Some (block, data) ->
    let psize = page_size sys in
    let pf = Page_alloc.alloc_frame sys c in
    let disk = Flash.Machine.disk sys.Types.machine (Types.boss_proc c) in
    Flash.Disk.read sys.Types.eng disk ~block:(swap_base sys + block)
      ~bytes:psize;
    Flash.Memory.write sys.Types.eng (mem sys) ~by:(Types.boss_proc c)
      (Flash.Addr.addr_of_pfn sys.Types.mcfg pf.Types.pfn)
      data;
    Hashtbl.remove c.Types.swap_table lid;
    c.Types.swap_free_blocks <- block :: c.Types.swap_free_blocks;
    Pfdat.insert c lid pf;
    Types.bump c "swap.ins";
    Some pf

(* Swap out every idle anonymous page of one process (the granularity Wax
   reasons about in Table 3.4). Returns the number of pages written. *)
let swap_out_process (sys : Types.system) (p : Types.process) =
  let c = sys.Types.cells.(p.Types.proc_cell) in
  (* Drop the process's own anon mappings so its pages become idle. *)
  let anon_vpages = ref [] in
  Hashtbl.iter
    (fun vpage (m : Types.mapping) ->
      match m.Types.map_lid.Types.tag with
      | Types.Anon_obj _ -> anon_vpages := (vpage, m) :: !anon_vpages
      | _ -> ())
    p.Types.mappings;
  List.iter
    (fun (vpage, (m : Types.mapping)) ->
      m.Types.map_pf.Types.refs <- max 0 (m.Types.map_pf.Types.refs - 1);
      Hashtbl.remove p.Types.mappings vpage)
    !anon_vpages;
  List.fold_left
    (fun acc (_, (m : Types.mapping)) ->
      if is_swappable m.Types.map_pf && swap_out_page sys c m.Types.map_pf
      then acc + 1
      else acc)
    0 !anon_vpages

let swapped_pages (c : Types.cell) = Hashtbl.length c.Types.swap_table
