(* Metrics export: a machine-readable snapshot of what the kernel
   instrumentation accumulated over a run — per-op RPC latency histograms
   (client and server side), per-cell counters and status, system-wide
   counters, and the recovery phase timeline. Emitted as hand-rolled JSON
   (the simulator deliberately has no external dependencies). *)

let buf_add = Buffer.add_string

let esc s =
  let b = Buffer.create (String.length s) in
  Sim.Event.json_escape b s;
  Buffer.contents b

(* Print a float without OCaml's trailing-dot syntax ("1." is not JSON). *)
let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%g" v

let hist_json b (h : Sim.Stats.histogram) =
  let p q = Sim.Stats.hist_percentile h q in
  buf_add b
    (Printf.sprintf
       "{\"count\":%d,\"mean_ns\":%s,\"min_ns\":%s,\"max_ns\":%s,\"p50_ns\":%s,\"p95_ns\":%s,\"p99_ns\":%s,\"buckets\":["
       (Sim.Stats.hist_count h)
       (fnum (Sim.Stats.hist_mean h))
       (fnum (Sim.Stats.hist_min h))
       (fnum (Sim.Stats.hist_max h))
       (fnum (p 50.)) (fnum (p 95.)) (fnum (p 99.)));
  List.iteri
    (fun i (lo, hi, n) ->
      if i > 0 then buf_add b ",";
      buf_add b (Printf.sprintf "[%Ld,%Ld,%d]" lo hi n))
    (Sim.Stats.hist_nonempty h);
  buf_add b "]}"

(* Histogram tables keyed by op name, sorted for stable output. *)
let sorted_hists tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let hist_table_json b tbl =
  buf_add b "{";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then buf_add b ",";
      buf_add b (Printf.sprintf "\"%s\":" (esc name));
      hist_json b h)
    (sorted_hists tbl);
  buf_add b "}"

let counters_json b kvs =
  buf_add b "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then buf_add b ",";
      buf_add b (Printf.sprintf "\"%s\":%d" (esc k) v))
    (List.sort compare kvs);
  buf_add b "}"

let status_string = function
  | Types.Cell_up -> "up"
  | Types.Cell_recovering -> "recovering"
  | Types.Cell_down -> "down"

(* System-wide totals for the sharing protocol (summed over cells), plus
   the derived cache-hit rate: hits / (hits + locate RPCs) — the fraction
   of remote-page lookups that never left the cell. *)
let sharing_counters =
  [ "share.imports"; "share.exports"; "share.releases"; "share.reimports";
    "share.cache_hits"; "share.cache_insertions"; "share.cache_evictions";
    "share.cache_invalidations"; "share.invalidates"; "share.release_lost";
    "share.release_races"; "fs.remote_locates"; "fs.readahead_pages";
    "fs.release_errors" ]

let sharing_totals (sys : Types.system) =
  List.map
    (fun name ->
      let total =
        Array.fold_left
          (fun acc (c : Types.cell) ->
            acc + Sim.Stats.value c.Types.counters name)
          0 sys.Types.cells
      in
      (name, total))
    sharing_counters

let cache_hit_rate (sys : Types.system) =
  let totals = sharing_totals sys in
  let get n = try List.assoc n totals with Not_found -> 0 in
  let hits = get "share.cache_hits" in
  float_of_int hits /. float_of_int (max 1 (hits + get "fs.remote_locates"))

let to_json (sys : Types.system) =
  let b = Buffer.create 4096 in
  buf_add b
    (Printf.sprintf "{\n\"sim_time_ns\":%Ld,\n" (Sim.Engine.now sys.Types.eng));
  buf_add b "\"rpc\":{\"client\":";
  hist_table_json b sys.Types.rpc_client_ns;
  buf_add b ",\"server\":";
  hist_table_json b sys.Types.rpc_server_ns;
  buf_add b "},\n\"cells\":[";
  Array.iteri
    (fun i (c : Types.cell) ->
      if i > 0 then buf_add b ",";
      buf_add b
        (Printf.sprintf "\n{\"id\":%d,\"status\":\"%s\",\"live_set\":[%s],\"counters\":"
           c.Types.cell_id
           (status_string c.Types.cstatus)
           (String.concat ","
              (List.map string_of_int (List.sort compare c.Types.live_set))));
      counters_json b (Sim.Stats.to_list c.Types.counters);
      buf_add b "}")
    sys.Types.cells;
  buf_add b "],\n\"system_counters\":";
  counters_json b (Sim.Stats.to_list sys.Types.sys_counters);
  (* Interconnect transport totals: what the degradation fault model did
     to traffic, and how much stale pre-failure state was purged. The
     per-cell counters (rpc.retransmits, rpc.dup_suppressed,
     rpc.stale_reply_drops, ...) record how the kernels rode it out. *)
  let sips = Flash.Machine.sips sys.Types.machine in
  buf_add b
    (Printf.sprintf
       ",\n\"sips\":{\"sends\":%d,\"drops\":%d,\"dups\":%d,\"delays\":%d,\"stale_purged\":%d}"
       (Flash.Sips.send_count sips)
       (Flash.Sips.drop_count sips)
       (Flash.Sips.dup_count sips)
       (Flash.Sips.delay_count sips)
       (Flash.Sips.stale_purged_count sips));
  buf_add b ",\n\"sharing\":{";
  List.iter
    (fun (k, v) -> buf_add b (Printf.sprintf "\"%s\":%d," (esc k) v))
    (List.sort compare (sharing_totals sys));
  buf_add b
    (Printf.sprintf "\"cache_hit_rate\":%s}" (fnum (cache_hit_rate sys)));
  buf_add b ",\n\"recovery_timeline\":[";
  List.iteri
    (fun i (phase, t) ->
      if i > 0 then buf_add b ",";
      buf_add b (Printf.sprintf "\n{\"phase\":\"%s\",\"ns\":%Ld}" (esc phase) t))
    sys.Types.recovery_timeline;
  buf_add b "]\n}\n";
  Buffer.contents b

let write_file (sys : Types.system) path =
  let oc = open_out path in
  output_string oc (to_json sys);
  close_out oc

(* Human-readable end-of-run summary: per-op RPC latency percentiles. *)
let print_summary (sys : Types.system) =
  let client = sorted_hists sys.Types.rpc_client_ns in
  if client <> [] then begin
    Printf.printf "RPC client latency (us):\n";
    Printf.printf "  %-26s %8s %8s %8s %8s\n" "op" "count" "p50" "p95" "p99";
    List.iter
      (fun (name, h) ->
        let p q = Sim.Stats.hist_percentile h q /. 1e3 in
        Printf.printf "  %-26s %8d %8.1f %8.1f %8.1f\n" name
          (Sim.Stats.hist_count h) (p 50.) (p 95.) (p 99.))
      client
  end;
  (let totals = sharing_totals sys in
   let get n = try List.assoc n totals with Not_found -> 0 in
   if get "share.imports" > 0 then
     Printf.printf
       "sharing: %d imports, %d cache hits (hit rate %.2f), %d locates, %d \
        readahead pages, %d releases, %d invalidations, %d lost releases\n"
       (get "share.imports") (get "share.cache_hits") (cache_hit_rate sys)
       (get "fs.remote_locates") (get "fs.readahead_pages")
       (get "share.releases") (get "share.cache_invalidations")
       (get "share.release_lost"));
  if sys.Types.recovery_timeline <> [] then begin
    Printf.printf "recovery timeline:\n";
    List.iter
      (fun (phase, t) ->
        Printf.printf "  %10.3f ms  %s\n" (Int64.to_float t /. 1e6) phase)
      sys.Types.recovery_timeline
  end
