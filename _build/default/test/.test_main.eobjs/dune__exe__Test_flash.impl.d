test/test_flash.ml: Alcotest Bytes Flash Gen Int64 List Obj QCheck QCheck_alcotest Sim String
