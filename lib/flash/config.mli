(** FLASH machine parameters.

    The defaults model the paper's experimental setup (Section 7.2): a
    four-node machine with one 200-MHz processor, 32 MB of memory and one
    disk per node; 50 ns secondary-cache hit; 700 ns average memory latency;
    128-byte secondary cache lines; 700 ns IPIs; SIPS delivering a cache
    line of data for an IPI plus 300 ns. *)

type t = {
  nodes : int;
  mem_pages_per_node : int;
  page_size : int;  (** firewall granularity and OS page size: 4 KB *)
  cycle_ns : int64;  (** 5 ns at 200 MHz *)
  l1_hit_ns : int64;
  l2_hit_ns : int64;
  mem_ns : int64;  (** average second-level miss latency *)
  cache_line : int;
  ipi_ns : int64;
  sips_extra_ns : int64;
  firewall_enabled : bool;
  firewall_check_ns : int64;
      (** added by the coherence controller to each ownership request *)
  firewall_writeback_check_ns : int64;
      (** added to checked cache-line writebacks *)
  uncached_op_ns : int64;
      (** uncached operation to the coherence controller (firewall update) *)
  disk_avg_access_ns : int64;
  disk_track_ns : int64;  (** sequential (same-track) access *)
  disk_bytes_per_ns : float;
  dma_setup_ns : int64;
  disk_blocks : int;  (** per-node disk capacity, in page-size blocks *)
  swap_blocks : int;
      (** size of the swap partition at the top of each disk; file blocks
          live strictly below [swap_base] *)
}

(** Hard ceiling on [nodes]; generous (the sparse firewall representation
    scales past the old one-vector-word limit of 64). *)
val max_nodes : int

(** The paper's four-node machine. *)
val default : t

(** A two-node machine with little memory, for fast unit tests. *)
val small : t

val with_nodes : t -> int -> t

(** Reject configurations the hardware cannot represent: node counts past
    {!max_nodes}, or a disk geometry whose swap partition leaves no room
    for file blocks (they would silently overlap). Raises
    [Invalid_argument]. Called by [Machine.create] and
    [Firewall.create]. *)
val validate : t -> unit

(** First block of each disk's swap partition ([disk_blocks] -
    [swap_blocks]); the file system allocates strictly below it. *)
val swap_base : t -> int

val total_pages : t -> int

val mem_bytes_per_node : t -> int

(** Number of cache lines covering [bytes]. *)
val lines_for : t -> int -> int

(** Cost of streaming [bytes] through the cache, missing on each line. *)
val copy_cost : t -> int -> int64

(** [cycles cfg n] is the duration of [n] processor cycles. *)
val cycles : t -> int -> int64
