type t = {
  cfg : Config.t;
  node : int;
  mutable last_block : int;
  mutable busy : Sim.Mutex.t;
  mutable ios : int;
  mutable bytes : int;
}

let block_size = 4096

let create cfg node =
  { cfg; node; last_block = -100; busy = Sim.Mutex.create (); ios = 0; bytes = 0 }

(* Positioning cost: sequential accesses pay a track-transfer cost only;
   anything else pays the average access (seek + rotation) of an
   HP-97560-class drive. Transfers add bandwidth-limited time plus DMA
   setup, as SimOS modelled DMA latency and controller occupancy. *)
let access_ns t ~block ~bytes =
  let cfg = t.cfg in
  let positioning =
    if block = t.last_block + 1 then cfg.Config.disk_track_ns
    else cfg.Config.disk_avg_access_ns
  in
  let transfer =
    Int64.of_float (float_of_int bytes /. cfg.Config.disk_bytes_per_ns)
  in
  Int64.add (Int64.add positioning transfer) cfg.Config.dma_setup_ns

let io eng t ~block ~bytes =
  Sim.Mutex.with_lock eng t.busy (fun () ->
      let ns = access_ns t ~block ~bytes in
      t.last_block <- block + ((bytes + block_size - 1) / block_size) - 1;
      t.ios <- t.ios + 1;
      t.bytes <- t.bytes + bytes;
      Sim.Engine.delay ns)

let read eng t ~block ~bytes = io eng t ~block ~bytes

let write eng t ~block ~bytes = io eng t ~block ~bytes

let io_count t = t.ios

let bytes_transferred t = t.bytes
