lib/sim/heap.mli:
