(** Recovery after a confirmed cell failure (Section 4.3).

   Given consensus on the live set, each surviving cell runs recovery to
   clean up dangling references and determine which processes must be
   killed. A double global barrier synchronizes the preemptive discard:

   - before barrier 1, each cell flushes its TLBs and removes remote
     mappings (faults arriving later are held up on the client side);
   - after barrier 1, no valid remote accesses are pending, so each cell
     revokes firewall permissions it granted to the failed cells, discards
     every page they could have written (notifying the file system about
     lost dirty pages), and cleans its VM structures;
   - after barrier 2, cells resume normal operation.

   At the end of a round a recovery master is elected from the new live
   set; it runs hardware diagnostics on the failed nodes and (if they
   pass) can reboot and reintegrate the failed cells. *)

type Types.payload +=
    P_recovery_start of { dead : Types.cell_id list; }
val start_op : Rpc.Op.t
val diagnostics_ns : int64
val recovery_sequence :
  Types.system ->
  Types.cell -> dead:Types.cell_id list -> unit
val start_recovery_thread :
  Types.system ->
  Types.cell -> dead:Types.cell_id list -> unit
val initiate : Types.system -> dead:Types.cell_id list -> unit
val registered : bool ref
val register_handlers : unit -> unit
