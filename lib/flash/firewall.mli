(** The FLASH firewall: a 64-bit write-permission vector per 4 KB page of
    main memory, stored and checked by the coherence controller of the
    owning node (Section 4.2 of the paper).

    A write request to a page whose corresponding bit is not set fails with
    a bus error. Only the local processor can change the firewall bits for
    the memory of its node; attempts by remote processors raise
    {!Not_local_processor}. *)

exception Not_local_processor

type t

(** Raises [Invalid_argument] (via {!Config.validate}) when the
    configuration has more than 64 nodes: the permission vector is one
    64-bit word per page, so larger configs would silently alias write
    permission across processors. *)
val create : Config.t -> t

(** The permission-vector bit of a processor. *)
val bit_of_proc : int -> int64

(** Combined permission-vector mask of a set of processors. *)
val proc_mask : int list -> int64

(** The raw 64-bit permission vector of a page. *)
val vector : t -> pfn:Addr.pfn -> int64

(** Does [proc] hold write permission to [pfn]? *)
val allowed : t -> pfn:Addr.pfn -> proc:int -> bool

(** All of these raise {!Not_local_processor} unless [by] is the processor
    of the node owning [pfn]. *)

val set_vector : t -> by:int -> pfn:Addr.pfn -> int64 -> unit

val grant : t -> by:int -> pfn:Addr.pfn -> proc:int -> unit

val revoke : t -> by:int -> pfn:Addr.pfn -> proc:int -> unit

(** Grant write permission to all processors of a cell at once (the Hive
    firewall-management policy grants per cell, not per processor). *)
val grant_many : t -> by:int -> pfn:Addr.pfn -> int list -> unit

(** Leave only the local processor's bit set. *)
val revoke_all_remote : t -> by:int -> pfn:Addr.pfn -> unit

val clear : t -> by:int -> pfn:Addr.pfn -> unit

(** Number of this node's pages writable by at least one remote processor
    (the paper's Section 4.2 firewall statistic). *)
val remote_writable_pages : t -> node:int -> int

(** Every pfn (machine-wide) writable by [proc]. Costs a full-machine
    scan; preemptive discard uses {!pages_writable_by_mask} instead. *)
val writable_by : t -> proc:int -> Addr.pfn list

(** [node]'s pfns whose permission vector intersects [mask], in ascending
    order. One pass over a single node's vectors; used by preemptive
    discard with the combined mask of all dead processors. *)
val pages_writable_by_mask : t -> node:int -> mask:int64 -> Addr.pfn list

(** Total number of firewall status changes so far (performance statistic). *)
val change_count : t -> int

(** Install an observer invoked whenever a page's permission vector
    actually changes (grants, revokes, recovery mass-revocation); used by
    the observability layer to trace hardware-level firewall traffic. *)
val set_notify :
  t -> (pfn:Addr.pfn -> old_vec:int64 -> new_vec:int64 -> unit) -> unit
