(** Unbounded FIFO message queue with blocking receive.

    Used for interrupt dispatch queues, RPC server pools and workload
    coordination. Delivery order is FIFO and deterministic.

    Send and receive are O(1): waiters live in a FIFO queue and a
    receiver that gives up (timeout, kill) tombstones its own record by
    identity rather than scanning, so a thread that re-enters [receive]
    can never invalidate its new registration by cleaning up an old
    one. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** Enqueue a message, waking the longest-waiting receiver if any. *)
val send : Engine.t -> 'a t -> 'a -> unit

(** Non-blocking receive. *)
val try_receive : 'a t -> 'a option

(** Discard all queued messages (waiters are untouched); returns how many
    were dropped. Models a hardware queue reset. *)
val clear : 'a t -> int

(** Discard queued messages matching the predicate, preserving the order
    of survivors; returns how many were dropped. Waiters are untouched. *)
val reject : 'a t -> ('a -> bool) -> int

(** Blocking receive; [None] on timeout. *)
val receive : ?timeout:int64 -> Engine.t -> 'a t -> 'a option

(** Blocking receive with no timeout. *)
val receive_exn : Engine.t -> 'a t -> 'a
