(* Minimal JSON: one document model, one printer, one parser. Kept
   dependency-free on purpose — see the .mli. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Shortest decimal form that parses back to the same float. The result
   always contains '.' or 'e' so it re-parses as a float, never an int;
   non-finite values (which JSON cannot express) become "null". *)
let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else begin
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let rec print ~pretty ~indent b v =
  let nl_indent extra =
    if pretty then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make ((indent + extra) * 2) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (Int64.to_string i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s ->
    Buffer.add_char b '"';
    escape_into b s;
    Buffer.add_char b '"'
  | Arr [] -> Buffer.add_string b "[]"
  | Arr items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        nl_indent 1;
        print ~pretty ~indent:(indent + 1) b item)
      items;
    nl_indent 0;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char b ',';
        nl_indent 1;
        Buffer.add_char b '"';
        escape_into b k;
        Buffer.add_string b (if pretty then "\": " else "\":");
        print ~pretty ~indent:(indent + 1) b item)
      fields;
    nl_indent 0;
    Buffer.add_char b '}'

let to_string ?(pretty = false) v =
  let b = Buffer.create 256 in
  print ~pretty ~indent:0 b v;
  Buffer.contents b

(* ---------- parsing ---------- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "expected '%c' at offset %d, found '%c'" ch c.pos x
  | None -> parse_error "expected '%c' at offset %d, found end of input" ch c.pos

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else parse_error "bad literal at offset %d" c.pos

(* Decode a \uXXXX escape (with surrogate pairs) into UTF-8 bytes. *)
let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let hex4 c =
  if c.pos + 4 > String.length c.src then
    parse_error "truncated \\u escape at offset %d" c.pos;
  let s = String.sub c.src c.pos 4 in
  c.pos <- c.pos + 4;
  try int_of_string ("0x" ^ s)
  with _ -> parse_error "bad \\u escape '%s'" s

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents b
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> parse_error "unterminated escape"
      | Some ch ->
        advance c;
        (match ch with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          let hi = hex4 c in
          let code =
            if hi >= 0xD800 && hi <= 0xDBFF then begin
              (* surrogate pair *)
              expect c '\\';
              expect c 'u';
              let lo = hex4 c in
              0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
            end
            else hi
          in
          add_utf8 b code
        | ch -> parse_error "bad escape '\\%c'" ch);
        go ())
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch -> is_num_char ch | None -> false do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  let integral =
    not (String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s)
  in
  if integral then
    match Int64.of_string_opt s with
    | Some i -> Int i
    | None -> Float (float_of_string s)
  else
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> parse_error "bad number '%s' at offset %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> parse_error "expected ',' or '}' at offset %d" c.pos
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> parse_error "expected ',' or ']' at offset %d" c.pos
      in
      Arr (items [])
    end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_error "unexpected '%c' at offset %d" ch c.pos

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok v
  | exception Parse_error msg -> Error msg
  | exception _ -> Error "malformed JSON"

(* ---------- accessors ---------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int_opt = function
  | Int i ->
    let n = Int64.to_int i in
    if Int64.of_int n = i then Some n else None
  | _ -> None

let to_int64_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (Int64.to_float i)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None

let to_list_opt = function Arr l -> Some l | _ -> None

let to_obj_opt = function Obj o -> Some o | _ -> None
