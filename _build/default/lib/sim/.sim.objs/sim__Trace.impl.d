lib/sim/trace.ml: Engine Format Int64
