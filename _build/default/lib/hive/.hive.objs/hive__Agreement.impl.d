lib/hive/agreement.ml: Array Clock Flash Gate List Params Recovery Rpc Sim Types
