(** Fault-injection campaigns (Section 7.4).

   Each test boots a four-cell system, runs a workload, injects one fault
   (a fail-stop node failure or a kernel data corruption), and then:

   - measures the latency until the last cell enters recovery;
   - checks that the fault's effects were contained: all other cells
     survive;
   - runs the pmake workload as a system correctness check (it forks
     processes on all surviving cells);
   - compares all output files of the workload run and the check run
     against reference copies to detect data corruption (stale data after
     a preemptive discard is data loss, not corruption).

   The workload/timing combinations follow Table 7.4: node failure during
   process creation (pmake), during copy-on-write search (raytrace), and
   at random times (pmake); corrupt pointer in a process address map
   (pmake) and in the copy-on-write tree (raytrace). *)

type fault =
    Node_failure of { node : int; at_ns : int64; }
  | Corrupt_map of { victim_cell : int; at_ns : int64;
      mode : Hive.System.corruption_mode;
    }
  | Corrupt_cow of { victim_cell : int; at_ns : int64;
      mode : Hive.System.corruption_mode;
    }
  | Link_degrade of {
      deg_from : int; (* source proc, -1 = any *)
      deg_to : int; (* destination node, -1 = any *)
      at_ns : int64;
      dur_ns : int64;
      drop_pct : int;
      dup_pct : int;
      delay_pct : int;
      max_delay_ns : int64;
      salt : int64; (* seeds the window's own per-message PRNG *)
    }
  | Partition of {
      part_cell : int; (* cell severed from the rest of the machine *)
      at_ns : int64;
      dur_ns : int64; (* heals deterministically at at_ns + dur_ns *)
      one_way : bool; (* true: only traffic INTO the cell is lost *)
    }
  | Cpu_dead_mem_alive of { node : int; at_ns : int64 }
type outcome = {
  fault_desc : string;
  injected_cell : int;
  contained : bool;
  detection_ms : float option;
  recovery_ms : float option;
  check_passed : bool;
  corrupt_outputs : string list;
  survivors : int list;
}
type workload_kind = Use_pmake | Use_raytrace
val pick_victim_process :
  Hive.Types.system -> cell_id:int -> Hive.Types.process option
val pick_cow_node :
  Hive.Types.system ->
  cell_id:Hive.Types.cell_id -> Hive.Types.cow_ref option
val inject :
  Hive.Types.system -> Sim.Prng.t -> fault -> Hive.Types.cell_id option

(** Whether the fault destroys/corrupts kernel state on the victim cell
    (so checkers must exempt it). Link degradation never does: every cell
    must come out of it fully coherent. A partitioned minority cell
    stands down and is rebooted with zeroed memory at reintegration, so
    it counts. *)
val corrupts_cell : fault -> bool

val fault_time : fault -> int64
val describe : fault -> string
val run_test : ?seed:int -> workload:workload_kind -> fault -> outcome
val passed : outcome -> bool
type campaign_row = {
  label : string;
  tests : int;
  all_contained : bool;
  avg_detect_ms : float;
  max_detect_ms : float;
  avg_recovery_ms : float;
  failures : string list;
}
val summarize : string -> outcome list -> campaign_row
val modes : Hive.System.corruption_mode array
val node_failure_during_creation : tests:int -> campaign_row
val node_failure_during_cow : tests:int -> campaign_row
val node_failure_random : tests:int -> campaign_row
val corrupt_map_campaign : tests:int -> campaign_row
val corrupt_cow_campaign : tests:int -> campaign_row

(** [run_parallel ~jobs ~seeds ~run ~on_record] shards [seeds] across
    [jobs] OCaml 5 domains with work stealing. Each worker executes
    [run seed] with a private, domain-bound simulation engine; results
    are handed to [on_record seed result] on the calling domain in seed
    order, so the merged output is byte-identical to a serial run for
    any [jobs]. [jobs <= 1] degenerates to a plain serial loop. A worker
    exception is re-raised on the calling domain at the position the
    failing seed holds in the order. [run] must not print or touch
    shared mutable state — everything it needs must be created inside
    the call (this is how the fuzzer's [run_plan] already behaves). *)
val run_parallel :
  jobs:int ->
  seeds:int64 array ->
  run:(int64 -> 'r) ->
  on_record:(int64 -> 'r -> unit) ->
  unit

(** Cascading (nested) failures: a second node killed while the first
    failure's recovery round is in flight, between the two global
    barriers. Exercises the abortable-barrier / round-restart machinery
    and the master's automatic reintegration of both victims. *)

type cascade_outcome = {
  c_first_node : int;
  c_second_node : int;
  c_deadlocked : bool;
  c_restarted : bool;
  c_contained : bool;
  c_reintegrated : bool;
  c_check_passed : bool;
  c_detection_ms : float option;
}

val run_cascade_test :
  ?seed:int ->
  first_node:int -> second_node:int -> at_ns:int64 -> unit -> cascade_outcome

(** No deadlock, the round restarted, the fault stayed contained, both
    victims were reintegrated, and the post-episode pmake check passed. *)
val cascade_passed : cascade_outcome -> bool

val cascade_campaign : tests:int -> campaign_row
