lib/hive/vm.mli: Flash Types
