(** The global physical address space.

    Each node owns a contiguous range of physical addresses (Figure 3.1 of
    the paper); page frame numbers (pfn) are global and map to a node by
    division. *)

type t = int

type pfn = int

val page_size : Config.t -> int

val pfn_of_addr : Config.t -> t -> pfn

val addr_of_pfn : Config.t -> pfn -> t

val offset : Config.t -> t -> int

val node_of_pfn : Config.t -> pfn -> int

val node_of_addr : Config.t -> t -> int

val first_pfn_of_node : Config.t -> int -> pfn

(** Index of a page within its node's memory. *)
val local_index : Config.t -> pfn -> int

val valid_pfn : Config.t -> pfn -> bool

val valid : Config.t -> t -> bool

val aligned : t -> int -> bool

val pp : Format.formatter -> t -> unit
