(* The top-level Hive system: boot, fault injection entry points, and
   measurement helpers.

   [boot] partitions the machine's nodes evenly among [cells] independent
   kernels and starts them. With [cells = 1] and the firewall disabled the
   same kernel code runs as the SMP-OS baseline (the paper's IRIX 5.2
   comparison point): no remote paths are ever taken, no firewall checks
   are charged. *)

let register_all_handlers () =
  Wild_write.register_handlers ();
  Page_alloc.register_handlers ();
  Share.register_handlers ();
  Fs.register_handlers ();
  Vm.register_handlers ();
  Process.register_handlers ();
  Signal.register_handlers ();
  Agreement.register_handlers ();
  Recovery.register_handlers ()

let boot_horizon_ns = 5_000_000L

(* Reboot and reintegrate a failed cell after its nodes are repaired (the
   paper left this unimplemented but "straightforward": the recovery
   master reboots cells whose hardware diagnostics pass). The cell's disk
   contents survive the reboot; its memory, page cache and kernel state
   start fresh; the other cells add it back to their live sets. Driven
   automatically by the recovery master when [Params.auto_reintegrate] is
   set, and still callable manually (e.g. for rolling maintenance). *)
let reintegrate (sys : Types.system) cell_id =
  let c = sys.Types.cells.(cell_id) in
  if c.Types.cstatus <> Types.Cell_down then
    invalid_arg "reintegrate: cell is not down";
  (* Survivors' salvaged copies of this cell's pages become stale the
     moment it reboots (file generations restart from disk): purge them
     and their mappings so the next access re-locates through the fresh
     data home. *)
  c.Types.mem_alive <- false;
  Array.iter
    (fun (o : Types.cell) ->
      if o.Types.cell_id <> cell_id && Types.cell_alive o then begin
        (* The per-home salvage index makes this O(pages salvaged from the
           rebooting cell) instead of a sweep over every frame the survivor
           owns. Entries can be stale (the frame was since reclaimed and
           reused), so each is validated against the frame table by
           physical identity before purging. *)
        let doomed =
          Hashtbl.find_all o.Types.salvaged_by_home cell_id
          |> List.filter (fun (pf : Types.pfdat) ->
                 pf.Types.salvaged_from = Some cell_id
                 &&
                 match Hashtbl.find_opt o.Types.frames pf.Types.pfn with
                 | Some cur -> cur == pf
                 | None -> false)
        in
        while Hashtbl.mem o.Types.salvaged_by_home cell_id do
          Hashtbl.remove o.Types.salvaged_by_home cell_id
        done;
        List.iter
          (fun (pf : Types.pfdat) ->
            List.iter
              (fun (p : Types.process) ->
                let stale = ref [] in
                Hashtbl.iter
                  (fun vpage (m : Types.mapping) ->
                    if m.Types.map_pf == pf then stale := vpage :: !stale)
                  p.Types.mappings;
                List.iter (Hashtbl.remove p.Types.mappings) !stale)
              o.Types.processes;
            Types.bump o "vm.salvage_purged";
            Page_alloc.free_frame sys o pf)
          doomed
      end)
    sys.Types.cells;
  (* Repair the hardware: memory zeroed, processor restarted. *)
  List.iter (Flash.Machine.restore_node sys.Types.machine) c.Types.cell_nodes;
  (* Fresh kernel state; files (and their stable disk contents) survive,
     but the page cache does not. *)
  Hashtbl.reset c.Types.page_hash;
  Hashtbl.reset c.Types.frames;
  Types.set_free c [];
  c.Types.total_frames <- 0;
  Hashtbl.reset c.Types.swap_table;
  c.Types.swap_blocks_used <- 0;
  c.Types.swap_free_blocks <- [];
  c.Types.swap_hint <- 0;
  Hashtbl.reset c.Types.salvaged_by_home;
  c.Types.reserved_loans <- [];
  c.Types.import_cache <- [];
  Hashtbl.reset c.Types.readahead;
  Hashtbl.reset c.Types.pending_releases;
  Hashtbl.iter
    (fun _ (f : Types.file) -> Hashtbl.reset f.Types.cached_pages)
    c.Types.files;
  c.Types.kmem.Types.kmem_next <- c.Types.kmem.Types.kmem_base + 128;
  c.Types.kmem.Types.kmem_free <- [];
  c.Types.processes <- [];
  c.Types.user_gate_open <- true;
  c.Types.gate_waiters <- [];
  Hashtbl.reset c.Types.pending_calls;
  (* Work queued in the old incarnation must not leak into the new one:
     a queued-service closure would run against reset kernel state, and a
     released import still in the drain queue would be re-parked by the
     reborn cell's drain thread — a dangling binding whose data home
     already cleaned up during recovery. *)
  ignore (Sim.Mailbox.clear c.Types.rpc_queue);
  ignore (Sim.Mailbox.clear c.Types.release_queue);
  (* A rebooted kernel starts its call-id sequence from zero again; the
     bumped incarnation keeps the new ids (and any messages still in
     flight from the old life) from colliding across the reboot. The
     reply cache dies with the old incarnation too. *)
  c.Types.incarnation <- c.Types.incarnation + 1;
  c.Types.next_call_id <- 0;
  Hashtbl.reset c.Types.rpc_sessions;
  c.Types.suspected <- [];
  c.Types.false_alerts <- [];
  c.Types.in_recovery <- false;
  c.Types.recovery_active <- false;
  c.Types.kernel_threads <- [];
  c.Types.cstatus <- Types.Cell_up;
  Types.sys_bump sys "cell.reintegrations";
  (* The other cells learn about the reintegration. *)
  Array.iter
    (fun (o : Types.cell) ->
      if Types.cell_alive o && not (List.mem cell_id o.Types.live_set) then
        o.Types.live_set <- cell_id :: o.Types.live_set)
    sys.Types.cells;
  ignore
    (Sim.Engine.spawn sys.Types.eng
       ~name:(Printf.sprintf "cell%d.reboot" cell_id)
       (fun () ->
         Cell.boot sys c;
         match sys.Types.wax_restart with Some f -> f sys | None -> ()))

let boot ?(mcfg = Flash.Config.default) ?(params = Params.default)
    ?(ncells = mcfg.Flash.Config.nodes) ?(multicellular = true)
    ?(oracle = false) ?(wax = true) (eng : Sim.Engine.t) =
  if ncells < 1 || ncells > mcfg.Flash.Config.nodes then
    invalid_arg "Hive.boot: bad cell count";
  if mcfg.Flash.Config.nodes mod ncells <> 0 then
    invalid_arg "Hive.boot: cells must divide nodes evenly";
  register_all_handlers ();
  (* Reset the domain-local id generators and per-pid signal state so a
     campaign's behavior is a function of its plan alone, not of what ran
     earlier on this domain. *)
  Signal.reset ();
  Cow.reset_ids ();
  Spanning.reset_ids ();
  let machine = Flash.Machine.create eng mcfg in
  let nodes_per_cell = mcfg.Flash.Config.nodes / ncells in
  let cells =
    Array.init ncells (fun i ->
        let nodes =
          List.init nodes_per_cell (fun k -> (i * nodes_per_cell) + k)
        in
        Cell.make mcfg ~id:i ~nodes)
  in
  let sys =
    {
      Types.machine;
      eng;
      mcfg;
      params;
      cells;
      (* Node→cell ownership never changes after boot; the index makes
         [cell_of_node] O(1) on the wild-write and fault paths. *)
      node_owner =
        Array.init mcfg.Flash.Config.nodes (fun n -> n / nodes_per_cell);
      last_boot_ns = 0L;
      proc_table = Hashtbl.create 256;
      next_pid = 0;
      use_agreement_oracle = oracle;
      multicellular;
      recovery_in_progress = false;
      recovery_events = [];
      recovery_complete_at = 0L;
      recovery_barrier1 = None;
      recovery_barrier2 = None;
      recovery_dead = [];
      recovery_round = 0;
      recovery_round_active = false;
      recovery_participants = [];
      masters_active = [];
      master_overlaps = [];
      on_cell_death = None;
      reintegrate_fn = None;
      wax_restart = None;
      wax_threads = [];
      wax_incarnation = 0;
      on_hint = None;
      sys_counters = Sim.Stats.registry ();
      trace_faults = false;
      rpc_executions = Hashtbl.create 1024;
      rpc_stale_accepts = [];
      events = Sim.Event.create eng;
      rpc_client_ns = Hashtbl.create 32;
      rpc_server_ns = Hashtbl.create 32;
      op_ns = Hashtbl.create 32;
      recovery_timeline = [];
    }
  in
  (* Surface hardware-level firewall traffic on the event bus (covers the
     mass revocation of recovery, which bypasses the wild-write module). *)
  Flash.Firewall.set_notify (Flash.Machine.firewall machine)
    (fun ~pfn ~old_vec ~new_vec ->
      if Sim.Event.enabled sys.Types.events then
        Sim.Event.instant sys.Types.events
          ~args:
            [ ("pfn", Sim.Event.Int pfn);
              ("old_vec", Sim.Event.Str (Flash.Procset.to_string old_vec));
              ("new_vec", Sim.Event.Str (Flash.Procset.to_string new_vec)) ]
          ~cat:Sim.Event.Firewall "firewall.bits_changed");
  Failure.install sys;
  sys.Types.reintegrate_fn <- Some (fun id -> reintegrate sys id);
  (* A kernel thread dying with an uncaught exception panics its own cell;
     anything unattributable is a simulator bug and aborts loudly. *)
  Sim.Engine.set_crash_handler eng (fun thr e ->
      let owner = ref None in
      Array.iter
        (fun (c : Types.cell) ->
          if List.exists (fun t -> t == thr) c.Types.kernel_threads then
            owner := Some c;
          List.iter
            (fun (p : Types.process) ->
              match p.Types.thread with
              | Some t when t == thr -> owner := Some c
              | _ -> ())
            c.Types.processes)
        sys.Types.cells;
      match !owner with
      | Some c ->
        Panic.panic sys c
          (Printf.sprintf "uncaught exception in %s: %s" thr.Sim.Engine.name
             (Printexc.to_string e))
      | None ->
        raise
          (Failure
             (Printf.sprintf "simulator bug: thread %s raised %s"
                thr.Sim.Engine.name (Printexc.to_string e))));
  (* Hardware fault model: a node failure fail-stops its owning cell. *)
  Flash.Machine.on_node_failure machine (fun node ->
      let c = Types.cell_of_node sys node in
      if c.Types.cstatus <> Types.Cell_down then begin
        c.Types.cstatus <- Types.Cell_down;
        Types.sys_bump sys "cell.hw_failures";
        let ts = c.Types.kernel_threads in
        c.Types.kernel_threads <- [];
        List.iter (fun t -> Sim.Engine.kill eng t) ts;
        List.iter
          (fun (p : Types.process) ->
            match p.Types.thread with
            | Some t when p.Types.pstate <> Types.Proc_zombie ->
              p.Types.killed_by_failure <- true;
              Sim.Engine.kill eng t
            | _ -> ())
          c.Types.processes;
        (* A participant dying mid-round must restart the recovery round. *)
        match sys.Types.on_cell_death with
        | Some f -> f c.Types.cell_id
        | None -> ()
      end);
  (* Boot every cell, then let the boot threads run to completion. *)
  Array.iter
    (fun c -> ignore (Sim.Engine.spawn eng ~name:"boot" (fun () -> Cell.boot sys c)))
    cells;
  Sim.Engine.run ~until:boot_horizon_ns eng;
  if wax && multicellular then Wax.install sys;
  sys

(* ---------- Fault injection (the experiments' entry points) ---------- *)

(* Fail-stop hardware fault: halt a node (and thereby its cell). *)
let inject_node_failure (sys : Types.system) node =
  Flash.Machine.fail_node sys.Types.machine node

(* CXL-style processor failure: the node's CPU halts (fail-stopping its
   cell via the node-failure listener, exactly like [inject_node_failure])
   but the memory controller keeps answering remote reads. Survivors see
   a readable-but-frozen clock word, classify the cell as hard-dead, and
   may salvage its clean exported pages during recovery. *)
let inject_cpu_failure (sys : Types.system) node =
  let c = Types.cell_of_node sys node in
  if Types.cell_alive c then c.Types.mem_alive <- true;
  Flash.Machine.fail_node_cpu sys.Types.machine node

(* Kernel data corruption: overwrite a pointer field of a COW-tree node in
   [cell]'s kernel memory, in one of the pathological modes of
   Section 7.4. *)
type corruption_mode =
  | Random_address (* point at a random physical address *)
  | Off_by_one_word (* point one word away from the original *)
  | Self_pointer (* point back at the structure itself *)
  | Cross_cell of Types.cell_id (* point into another cell's memory *)

let corrupt_cow_parent (sys : Types.system) (_c : Types.cell)
    (node : Types.cow_ref) mode rng =
  let addr = node.Types.cow_addr + Kmem.header_bytes + (8 * Cow.f_parent_addr) in
  let original =
    Bytes.get_int64_le
      (Flash.Memory.peek (Flash.Machine.memory sys.Types.machine) addr 8)
      0
  in
  let victim =
    Types.cell_of_node sys
      (Flash.Addr.node_of_addr sys.Types.mcfg node.Types.cow_addr)
  in
  let victim_base = victim.Types.kmem.Types.kmem_base in
  let victim_span = victim.Types.kmem.Types.kmem_limit - victim_base in
  let corrupted =
    match mode with
    | Random_address ->
      (* A wild pointer that still lands in the victim's own kernel
         memory: its owner will dereference it trustingly. *)
      Int64.of_int (victim_base + Sim.Prng.int rng victim_span)
    | Off_by_one_word -> Int64.add original 8L
    | Self_pointer -> Int64.of_int node.Types.cow_addr
    | Cross_cell target ->
      let t = sys.Types.cells.(target) in
      Int64.of_int
        (t.Types.kmem.Types.kmem_base
        + Sim.Prng.int rng
            (t.Types.kmem.Types.kmem_limit - t.Types.kmem.Types.kmem_base))
  in
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 corrupted;
  Flash.Memory.poke (Flash.Machine.memory sys.Types.machine) addr b;
  (* Make the parent-cell field consistent with a locally-interpreted bad
     pointer (except for deliberate cross-cell corruption). *)
  let pc_addr = node.Types.cow_addr + Kmem.header_bytes + (8 * Cow.f_parent_cell) in
  let cb = Bytes.create 8 in
  (match mode with
  | Cross_cell target -> Bytes.set_int64_le cb 0 (Int64.of_int target)
  | Random_address | Off_by_one_word | Self_pointer ->
    Bytes.set_int64_le cb 0 (Int64.of_int victim.Types.cell_id));
  Flash.Memory.poke (Flash.Machine.memory sys.Types.machine) pc_addr cb;
  Types.sys_bump sys "inject.cow_corruptions"

(* Corrupt a process's address map: make an anon region's leaf pointer
   garbage, so the owning kernel trips over it on the next fault. *)
let corrupt_address_map (sys : Types.system) (p : Types.process) mode rng =
  let is_anon (r : Types.region) =
    match r.Types.kind with Types.Anon_region _ -> true | _ -> false
  in
  match List.find_opt is_anon p.Types.regions with
  | None -> false
  | Some r -> (
    match r.Types.kind with
    | Types.Anon_region leaf ->
      let c = sys.Types.cells.(p.Types.proc_cell) in
      corrupt_cow_parent sys c leaf mode rng;
      Types.sys_bump sys "inject.map_corruptions";
      true
    | Types.File_region _ -> false)

(* ---------- Running and measuring ---------- *)

let now = Sim.Engine.now

(* Advance the simulation until [pred] holds or [deadline] passes;
   returns true if the predicate held. *)
let run_until (sys : Types.system) ?(step = 1_000_000L) ~deadline pred =
  let eng = sys.Types.eng in
  let rec go () =
    if pred () then true
    else if Int64.compare (Sim.Engine.now eng) deadline >= 0 then pred ()
    else begin
      let now = Sim.Engine.now eng in
      match Sim.Engine.next_event_time eng with
      | None ->
        (* Empty queue: no event can ever change the state [pred]
           observes, so further polling cannot succeed. *)
        pred ()
      | Some t ->
        (* [pred] only changes when events run, so jump straight to the
           step boundary covering the next event instead of re-checking
           every idle [step] of virtual time. The boundary grid
           (now + k*step) and the observation points are exactly those
           of single-stepping. *)
        let target =
          if Int64.compare t deadline > 0 then deadline
          else begin
            let dt = Int64.sub t now in
            let k = Int64.div (Int64.add dt (Int64.sub step 1L)) step in
            let u = Int64.add now (Int64.mul (max 1L k) step) in
            if Int64.compare u deadline > 0 then deadline else u
          end
        in
        Sim.Engine.run ~until:target eng;
        go ()
    end
  in
  go ()

(* Wait for a set of processes to finish (exit, or die with their cell). *)
let run_until_processes_done (sys : Types.system) ?step ~deadline procs =
  run_until sys ?step ~deadline (fun () ->
      List.for_all
        (fun (p : Types.process) -> p.Types.pstate = Types.Proc_zombie)
        procs)

let live_cells (sys : Types.system) =
  Array.to_list sys.Types.cells |> List.filter Types.cell_alive
  |> List.map (fun c -> c.Types.cell_id)

(* Detection latency of the last recovery round: time from [t_fault] until
   the last live cell entered recovery (the Table 7.4 metric). *)
let detection_latency_ns (sys : Types.system) ~t_fault =
  match sys.Types.recovery_events with
  | [] -> None
  | evs ->
    let latest = List.fold_left (fun acc (_, t) -> max acc t) 0L evs in
    Some (Int64.sub latest t_fault)

let counters (sys : Types.system) =
  let all = Sim.Stats.to_list sys.Types.sys_counters in
  let per_cell =
    Array.to_list sys.Types.cells
    |> List.map (fun (c : Types.cell) ->
           (c.Types.cell_id, Sim.Stats.to_list c.Types.counters))
  in
  (all, per_cell)
