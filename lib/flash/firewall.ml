exception Not_local_processor

type t = {
  cfg : Config.t;
  bits : int64 array array; (* bits.(node).(local page index) *)
  mutable changes : int; (* count of firewall status updates, for benches *)
  mutable notify : (pfn:Addr.pfn -> old_vec:int64 -> new_vec:int64 -> unit) option;
      (* observer invoked on every real permission-vector change *)
}

let create cfg =
  (* The permission vector is a single 64-bit word per page: a config with
     more than 64 processors cannot be represented (bit_of_proc would
     alias) and is rejected rather than silently mis-protected. *)
  Config.validate cfg;
  {
    cfg;
    bits = Array.init cfg.Config.nodes (fun _ -> Array.make cfg.Config.mem_pages_per_node 0L);
    changes = 0;
    notify = None;
  }

let set_notify t f = t.notify <- Some f

let bit_of_proc proc = Int64.shift_left 1L (proc land 63)

let vector t ~pfn =
  let node = Addr.node_of_pfn t.cfg pfn in
  t.bits.(node).(Addr.local_index t.cfg pfn)

let allowed t ~pfn ~proc =
  Int64.logand (vector t ~pfn) (bit_of_proc proc) <> 0L

let check_local t ~by ~pfn =
  (* Only the local processor can change the firewall bits for the memory
     of its node. *)
  if Addr.node_of_pfn t.cfg pfn <> by then raise Not_local_processor

let set_vector t ~by ~pfn v =
  check_local t ~by ~pfn;
  let node = Addr.node_of_pfn t.cfg pfn in
  let i = Addr.local_index t.cfg pfn in
  let old = t.bits.(node).(i) in
  if old <> v then begin
    t.changes <- t.changes + 1;
    t.bits.(node).(i) <- v;
    match t.notify with
    | Some f -> f ~pfn ~old_vec:old ~new_vec:v
    | None -> ()
  end

let grant t ~by ~pfn ~proc =
  set_vector t ~by ~pfn (Int64.logor (vector t ~pfn) (bit_of_proc proc))

let revoke t ~by ~pfn ~proc =
  set_vector t ~by ~pfn
    (Int64.logand (vector t ~pfn) (Int64.lognot (bit_of_proc proc)))

let grant_many t ~by ~pfn procs =
  let v =
    List.fold_left (fun acc p -> Int64.logor acc (bit_of_proc p)) (vector t ~pfn) procs
  in
  set_vector t ~by ~pfn v

let revoke_all_remote t ~by ~pfn =
  set_vector t ~by ~pfn (bit_of_proc by)

let clear t ~by ~pfn = set_vector t ~by ~pfn 0L

let remote_writable_pages t ~node =
  let cfg = t.cfg in
  let count = ref 0 in
  let base = Addr.first_pfn_of_node cfg node in
  for i = 0 to cfg.Config.mem_pages_per_node - 1 do
    let v = t.bits.(node).(i) in
    let others = Int64.logand v (Int64.lognot (bit_of_proc node)) in
    if others <> 0L then incr count;
    ignore base
  done;
  !count

let proc_mask procs =
  List.fold_left (fun acc p -> Int64.logor acc (bit_of_proc p)) 0L procs

let pages_writable_by_mask t ~node ~mask =
  let cfg = t.cfg in
  let base = Addr.first_pfn_of_node cfg node in
  let acc = ref [] in
  for i = cfg.Config.mem_pages_per_node - 1 downto 0 do
    if Int64.logand t.bits.(node).(i) mask <> 0L then acc := (base + i) :: !acc
  done;
  !acc

let writable_by t ~proc =
  let cfg = t.cfg in
  let acc = ref [] in
  for node = cfg.Config.nodes - 1 downto 0 do
    for i = cfg.Config.mem_pages_per_node - 1 downto 0 do
      if Int64.logand t.bits.(node).(i) (bit_of_proc proc) <> 0L then
        acc := (Addr.first_pfn_of_node cfg node + i) :: !acc
    done
  done;
  !acc

let change_count t = t.changes
