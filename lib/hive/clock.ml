(* Clock monitoring (Sections 4.1 and 4.3).

   Each cell increments a published clock word on every clock interrupt.
   The clock handler also checks another cell's clock value on every tick
   (under the careful reference protocol): a value that fails to increment
   for consecutive ticks, or a bus error reaching it, is a failure hint.
   This detects hardware failures that halt processors but not entire
   nodes, as well as kernel deadlocks and interrupt losses. *)

let clock_value (sys : Types.system) (c : Types.cell) =
  Flash.Memory.peek_i64
    (Flash.Machine.memory sys.Types.machine)
    c.Types.clock_addr

(* One careful-reference read of a peer's clock word. *)
let read_peer_clock (sys : Types.system) (reader : Types.cell) ~target =
  let target_cell = sys.Types.cells.(target) in
  Careful_ref.protect sys reader ~target (fun ctx ->
      Careful_ref.read_i64 ctx target_cell.Types.clock_addr)

(* The cell this one monitors: its successor in the live-set ring. The
   live set only changes on failure/recovery, so the tick loop caches the
   answer keyed on the list's physical identity (the field is replaced,
   never mutated in place). *)
let compute_monitored_peer (c : Types.cell) =
  let live = List.sort compare c.Types.live_set in
  let higher = List.filter (fun id -> id > c.Types.cell_id) live in
  match (higher, live) with
  | h :: _, _ -> if h = c.Types.cell_id then None else Some h
  | [], l :: _ when l <> c.Types.cell_id -> Some l
  | _ -> None

let peer_cache_key :
    (int, int list * int option) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let monitored_peer (c : Types.cell) =
    let cache = Domain.DLS.get peer_cache_key in
    match Hashtbl.find_opt cache c.Types.cell_id with
    | Some (live, peer) when live == c.Types.live_set -> peer
    | _ ->
      let peer = compute_monitored_peer c in
      Hashtbl.replace cache c.Types.cell_id (c.Types.live_set, peer);
      peer

let hint (sys : Types.system) (c : Types.cell) suspect reason =
  match sys.Types.on_hint with
  | Some f -> f c ~suspect ~reason
  | None -> ()

let start (sys : Types.system) (c : Types.cell) =
  let eng = sys.Types.eng in
  let p = sys.Types.params in
  let mem = Flash.Machine.memory sys.Types.machine in
  let thr =
    Sim.Engine.spawn eng
      ~name:(Printf.sprintf "cell%d.clock" c.Types.cell_id)
      (fun () ->
        let last_seen = ref (-1L) in
        let last_peer = ref (-1) in
        let stalls = ref 0 in
        let bus_errors = ref 0 in
        let rec tick () =
          Sim.Engine.delay p.Params.tick_ns;
          if Types.cell_alive c then begin
            (* Increment our own published clock word. *)
            let v = clock_value sys c in
            Flash.Memory.write_i64 eng mem ~by:(Types.boss_proc c)
              c.Types.clock_addr (Int64.add v 1L);
            Sim.Engine.delay p.Params.clock_check_cost_ns;
            (* Monitor our ring successor. *)
            (match monitored_peer c with
            | None -> ()
            | Some peer ->
              if peer <> !last_peer then begin
                last_peer := peer;
                last_seen := -1L;
                stalls := 0
              end;
              (match read_peer_clock sys c ~target:peer with
              | Ok v ->
                bus_errors := 0;
                if v = !last_seen then begin
                  incr stalls;
                  if !stalls >= p.Params.clock_stall_ticks then begin
                    stalls := 0;
                    hint sys c peer "clock: stopped incrementing"
                  end
                end
                else begin
                  last_seen := v;
                  stalls := 0
                end
              | Error _ ->
                (* Tolerate one transient bus error; a second consecutive
                   one on the next tick is a failure hint. *)
                incr bus_errors;
                if !bus_errors >= 2 then begin
                  bus_errors := 0;
                  hint sys c peer "clock: bus error"
                end));
            tick ()
          end
        in
        tick ())
  in
  c.Types.kernel_threads <- thr :: c.Types.kernel_threads
