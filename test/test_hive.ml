(* Integration tests for the Hive kernel: memory sharing, RPC, processes,
   fault containment, recovery. *)

let small_params = Hive.Params.default

and () = ()

(* Boot a fresh system for each test. *)
let with_sys ?(ncells = 2) ?(nodes = 2) ?(oracle = false) ?(wax = false)
    ?(params = Hive.Params.default) f =
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes; mem_pages_per_node = 512 }
  in
  let sys = Hive.System.boot ~mcfg ~params ~ncells ~oracle ~wax eng in
  f eng sys

let run_proc sys ~on ~name body =
  let c = sys.Hive.Types.cells.(on) in
  Hive.Process.spawn sys c ~name (fun s p -> body s p)

let finish sys procs =
  let ok =
    Hive.System.run_until_processes_done sys ~deadline:60_000_000_000L procs
  in
  Alcotest.(check bool) "workload completed in time" true ok

let exit_code (p : Hive.Types.process) =
  match p.Hive.Types.exit_code with Some c -> c | None -> -1

let test_boot () =
  with_sys (fun _eng sys ->
      Alcotest.(check int) "two cells" 2 (Array.length sys.Hive.Types.cells);
      Array.iter
        (fun (c : Hive.Types.cell) ->
          Alcotest.(check bool) "cell up" true (Hive.Types.cell_alive c);
          Alcotest.(check bool) "has free frames" true
            (List.length c.Hive.Types.free_frames > 100))
        sys.Hive.Types.cells)

let test_local_file_io () =
  with_sys (fun _eng sys ->
      let result = ref "" in
      let p =
        run_proc sys ~on:0 ~name:"io" (fun sys p ->
            (* "/tmp/..." is homed on cell 0, so this is all local. *)
            let fd =
              Hive.Syscall.creat sys p ~content:(Bytes.of_string "hello hive")
                "/tmp/local.txt"
            in
            Hive.Syscall.close sys p ~fd;
            let fd = Hive.Syscall.openf sys p "/tmp/local.txt" in
            result := Bytes.to_string (Hive.Syscall.read sys p ~fd ~len:10);
            Hive.Syscall.close sys p ~fd)
      in
      finish sys [ p ];
      Alcotest.(check int) "clean exit" 0 (exit_code p);
      Alcotest.(check string) "file content" "hello hive" !result)

let test_remote_file_io () =
  with_sys (fun _eng sys ->
      let result = ref "" in
      (* Writer on cell 0 creates the /tmp file (homed on cell 0); reader on
         cell 1 reads it through export/import. *)
      let writer =
        run_proc sys ~on:0 ~name:"writer" (fun sys p ->
            let fd =
              Hive.Syscall.creat sys p ~content:(Bytes.of_string "cross-cell!")
                "/tmp/shared.txt"
            in
            Hive.Syscall.close sys p ~fd)
      in
      finish sys [ writer ];
      let reader =
        run_proc sys ~on:1 ~name:"reader" (fun sys p ->
            let fd = Hive.Syscall.openf sys p "/tmp/shared.txt" in
            result := Bytes.to_string (Hive.Syscall.read sys p ~fd ~len:11);
            Hive.Syscall.close sys p ~fd)
      in
      finish sys [ reader ];
      Alcotest.(check int) "reader exit" 0 (exit_code reader);
      Alcotest.(check string) "read across cells" "cross-cell!" !result;
      (* The reader must have imported pages from cell 0. *)
      let c1 = sys.Hive.Types.cells.(1) in
      Alcotest.(check bool) "imports happened" true
        (Sim.Stats.value c1.Hive.Types.counters "share.imports" > 0))

let test_remote_write_then_local_read () =
  with_sys (fun _eng sys ->
      (* Cell 1 writes a /tmp file (homed on cell 0) through imported
         writable pages, then a cell-0 process reads it back. *)
      let writer =
        run_proc sys ~on:1 ~name:"remote-writer" (fun sys p ->
            let fd =
              Hive.Syscall.creat sys p ~content:Bytes.empty "/tmp/rw.txt"
            in
            ignore (Hive.Syscall.write sys p ~fd (Bytes.of_string "written remotely"));
            Hive.Syscall.close sys p ~fd)
      in
      finish sys [ writer ];
      Alcotest.(check int) "writer exit" 0 (exit_code writer);
      let result = ref "" in
      let reader =
        run_proc sys ~on:0 ~name:"reader" (fun sys p ->
            let fd = Hive.Syscall.openf sys p "/tmp/rw.txt" in
            result := Bytes.to_string (Hive.Syscall.read sys p ~fd ~len:16))
      in
      finish sys [ reader ];
      Alcotest.(check string) "data visible at home" "written remotely" !result)

let test_fork_local_and_wait () =
  with_sys (fun _eng sys ->
      let child_ran = ref false in
      let p =
        run_proc sys ~on:0 ~name:"parent" (fun sys p ->
            let child =
              Hive.Syscall.fork sys p ~name:"child" (fun sys c ->
                  Hive.Syscall.compute sys c 100_000L;
                  child_ran := true)
            in
            let code = Hive.Syscall.wait sys p child in
            assert (code = 0))
      in
      finish sys [ p ];
      Alcotest.(check bool) "child ran" true !child_ran;
      Alcotest.(check int) "parent exit" 0 (exit_code p))

let test_fork_remote () =
  with_sys (fun _eng sys ->
      let child_cell = ref (-1) in
      let p =
        run_proc sys ~on:0 ~name:"parent" (fun sys p ->
            let child =
              Hive.Syscall.fork sys p ~on_cell:1 ~name:"child" (fun sys c ->
                  child_cell := Hive.Syscall.getcell c;
                  Hive.Syscall.compute sys c 50_000L)
            in
            ignore (Hive.Syscall.wait sys p child))
      in
      finish sys [ p ];
      Alcotest.(check int) "child ran on cell 1" 1 !child_cell)

let test_anon_memory_and_cow () =
  with_sys (fun _eng sys ->
      let parent_sees = ref 0L and child_sees = ref 0L in
      let p =
        run_proc sys ~on:0 ~name:"cowtest" (fun sys p ->
            let r = Hive.Syscall.mmap_anon sys p ~npages:4 in
            let vp = r.Hive.Types.start_page in
            (* Parent writes 42 before forking. *)
            Hive.Syscall.write_word sys p ~vpage:vp ~offset:0 42L;
            let child =
              Hive.Syscall.fork sys p ~name:"child" (fun sys c ->
                  (* Child reads the pre-fork value through the COW tree,
                     then writes its own copy. *)
                  child_sees := Hive.Syscall.read_word sys c ~vpage:vp ~offset:0;
                  Hive.Syscall.write_word sys c ~vpage:vp ~offset:0 99L)
            in
            ignore (Hive.Syscall.wait sys p child);
            (* The child's write must not be visible to the parent. *)
            parent_sees := Hive.Syscall.read_word sys p ~vpage:vp ~offset:0)
      in
      finish sys [ p ];
      Alcotest.(check int64) "child saw pre-fork value" 42L !child_sees;
      Alcotest.(check int64) "parent unaffected by child write" 42L !parent_sees)

let test_remote_fork_cow_across_cells () =
  with_sys (fun _eng sys ->
      let child_sees = ref 0L in
      let p =
        run_proc sys ~on:0 ~name:"spanning" (fun sys p ->
            let r = Hive.Syscall.mmap_anon sys p ~npages:2 in
            let vp = r.Hive.Types.start_page in
            Hive.Syscall.write_word sys p ~vpage:vp ~offset:0 7L;
            let child =
              Hive.Syscall.fork sys p ~on_cell:1 ~name:"remote-child"
                (fun sys c ->
                  (* The COW search walks a tree whose interior node lives
                     on cell 0, from cell 1, using careful references. *)
                  child_sees := Hive.Syscall.read_word sys c ~vpage:vp ~offset:0)
            in
            ignore (Hive.Syscall.wait sys p child))
      in
      finish sys [ p ];
      Alcotest.(check int64) "remote child read pre-fork page" 7L !child_sees)

let test_rpc_timeout_reports_hint () =
  with_sys (fun _eng sys ->
      (* Panic cell 1's kernel silently, then RPC it: the call must time
         out (or bounce) rather than hang, and a hint must be recorded. *)
      let p =
        run_proc sys ~on:0 ~name:"caller" (fun sys p ->
            ignore p;
            Hive.Panic.panic sys sys.Hive.Types.cells.(1) "test";
            let c0 = sys.Hive.Types.cells.(0) in
            match
              Hive.Rpc.call sys ~from:c0 ~target:1 ~op:Hive.Agreement.ping_op
                ~timeout_ns:1_000_000L Hive.Types.P_unit
            with
            | Ok _ -> failwith "expected failure"
            | Error Hive.Types.EHOSTDOWN -> ()
            | Error _ -> failwith "unexpected errno")
      in
      finish sys [ p ];
      Alcotest.(check int) "caller ok" 0 (exit_code p))

let test_hw_failure_detected_and_recovered () =
  (* Keep the failed cell down: this test checks the contained state
     itself, not the master's automatic repair. *)
  with_sys ~ncells:2 ~nodes:2
    ~params:{ Hive.Params.default with Hive.Params.auto_reintegrate = false }
    (fun eng sys ->
      (* Let things settle, then kill node 1 (= cell 1). *)
      Sim.Engine.run ~until:50_000_000L eng;
      let t_fault = Sim.Engine.now eng in
      Hive.System.inject_node_failure sys 1;
      let ok =
        Hive.System.run_until sys ~deadline:(Int64.add t_fault 2_000_000_000L)
          (fun () ->
            (not sys.Hive.Types.recovery_in_progress)
            && sys.Hive.Types.recovery_events <> [])
      in
      Alcotest.(check bool) "recovery ran" true ok;
      (* Containment: cell 0 is alive, cell 1 is down. *)
      Alcotest.(check bool) "cell 0 alive" true
        (Hive.Types.cell_alive sys.Hive.Types.cells.(0));
      Alcotest.(check bool) "cell 1 down" false
        (Hive.Types.cell_alive sys.Hive.Types.cells.(1));
      (* Detection latency is bounded by a few clock ticks. *)
      (match Hive.System.detection_latency_ns sys ~t_fault with
      | Some ns ->
        let ms = Int64.to_float ns /. 1e6 in
        Alcotest.(check bool)
          (Printf.sprintf "detection latency %.1f ms reasonable" ms)
          true
          (ms > 0.0 && ms < 100.0)
      | None -> Alcotest.fail "no recovery events");
      (* The survivor still works: run a process doing local I/O. *)
      let p =
        run_proc sys ~on:0 ~name:"survivor" (fun sys p ->
            let fd =
              Hive.Syscall.creat sys p ~content:(Bytes.of_string "alive")
                "/tmp/after.txt"
            in
            Hive.Syscall.close sys p ~fd)
      in
      finish sys [ p ];
      Alcotest.(check int) "survivor works" 0 (exit_code p))

let test_preemptive_discard_gives_eio () =
  with_sys ~ncells:2 ~nodes:2 (fun eng sys ->
      (* A cell-1 process writes a /tmp file (home cell 0) but the data
         stays dirty in cell 0's cache with cell 1 holding write access.
         Then cell 1 dies: cell 0 must discard the page (writable by the
         failed cell) and bump the file generation, so the old descriptor
         gets EIO while a fresh open reads stale-but-stable disk data. *)
      let got_eio = ref false in
      let fd_holder =
        run_proc sys ~on:0 ~name:"holder" (fun sys p ->
            let fd =
              Hive.Syscall.creat sys p ~content:(Bytes.of_string "stable data")
                "/tmp/discard.txt"
            in
            Hive.Syscall.sync sys p;
            (* Give cell 1 write access by letting it write the file. *)
            let writer_done = Sim.Ivar.create () in
            let _writer =
              Hive.Syscall.fork sys p ~on_cell:1 ~name:"dirtier" (fun sys c ->
                  let wfd = Hive.Syscall.openf sys c ~writable:true "/tmp/discard.txt" in
                  ignore
                    (Hive.Syscall.pwrite sys c ~fd:wfd ~pos:0
                       (Bytes.of_string "dirty!!"));
                  Sim.Ivar.fill sys.Hive.Types.eng writer_done ());
            in
            ignore (Sim.Ivar.read sys.Hive.Types.eng writer_done);
            (* Kill cell 1 while the page is remotely writable. *)
            Hive.System.inject_node_failure sys 1;
            (* Wait for recovery to finish. *)
            Sim.Engine.delay 500_000_000L;
            (* Our fd was opened before the failure: EIO expected. *)
            (try ignore (Hive.Syscall.pread sys p ~fd ~pos:0 ~len:5)
             with Hive.Types.Syscall_error Hive.Types.EIO -> got_eio := true);
            (* A fresh open sees the stable on-disk contents. *)
            let fd2 = Hive.Syscall.openf sys p "/tmp/discard.txt" in
            let back = Hive.Syscall.pread sys p ~fd:fd2 ~pos:0 ~len:11 in
            assert (Bytes.to_string back = "stable data"))
      in
      ignore eng;
      finish sys [ fd_holder ];
      Alcotest.(check bool) "EIO on pre-failure descriptor" true !got_eio;
      Alcotest.(check int) "holder exit ok" 0 (exit_code fd_holder))

let test_wild_write_blocked_by_firewall () =
  with_sys (fun _eng sys ->
      (* A faulty cell-1 kernel tries to scribble on cell 0's kernel
         memory: the firewall must refuse. *)
      let p =
        run_proc sys ~on:1 ~name:"faulty" (fun sys p ->
            ignore p;
            let c0 = sys.Hive.Types.cells.(0) in
            let target = c0.Hive.Types.clock_addr in
            match
              Flash.Memory.poke_wild
                (Flash.Machine.memory sys.Hive.Types.machine)
                ~by:1 target (Bytes.make 8 '\xff')
            with
            | () -> failwith "wild write got through!"
            | exception Flash.Memory.Bus_error _ -> ())
      in
      finish sys [ p ];
      Alcotest.(check int) "wild write blocked" 0 (exit_code p))

let test_cow_corruption_contained () =
  with_sys ~ncells:2 ~nodes:2 (fun eng sys ->
      (* Corrupt a COW node on cell 0, then have cell 0's process walk it:
         cell 0 must panic (kernel corruption) and cell 1 must survive. *)
      let rng = Sim.Prng.create 7 in
      let p =
        run_proc sys ~on:0 ~name:"victim" (fun sys p ->
            let r = Hive.Syscall.mmap_anon sys p ~npages:2 in
            let vp = r.Hive.Types.start_page in
            Hive.Syscall.write_word sys p ~vpage:vp ~offset:0 1L;
            (* Fork so the leaf has a parent worth walking. *)
            let child =
              Hive.Syscall.fork sys p ~name:"c" (fun sys c ->
                  Hive.Syscall.compute sys c 10_000L)
            in
            ignore (Hive.Syscall.wait sys p child);
            (* Corrupt our own region's leaf parent pointer. *)
            ignore
              (Hive.System.corrupt_address_map sys p Hive.System.Random_address rng);
            (* Next fault on a NOT-yet-materialized page walks the tree and
               trips over the corruption. *)
            ignore (Hive.Syscall.read_word sys p ~vpage:(vp + 1) ~offset:0))
      in
      ignore p;
      (* Run until recovery completes or deadline. *)
      let _ =
        Hive.System.run_until sys ~deadline:5_000_000_000L (fun () ->
            sys.Hive.Types.recovery_events <> []
            && not sys.Hive.Types.recovery_in_progress)
      in
      ignore eng;
      Alcotest.(check bool) "cell 1 survived" true
        (Hive.Types.cell_alive sys.Hive.Types.cells.(1)))

let test_careful_ref_defends_remote_corruption () =
  with_sys ~ncells:2 ~nodes:2 (fun _eng sys ->
      (* Cell 1 walks a corrupted COW node owned by cell 0 via the careful
         reference protocol: it must defend, not crash. *)
      let defended = ref false in
      let p =
        run_proc sys ~on:1 ~name:"walker" (fun sys p ->
            ignore p;
            let c0 = sys.Hive.Types.cells.(0) and c1 = sys.Hive.Types.cells.(1) in
            (* Build a real node on cell 0, then corrupt its tag. *)
            let node = Hive.Cow.create_root sys c0 () in
            Flash.Memory.poke
              (Flash.Machine.memory sys.Hive.Types.machine)
              node.Hive.Types.cow_addr (Bytes.make 8 '\x00');
            match Hive.Cow.lookup sys c1 node ~page:0 with
            | Hive.Cow.Defended _ -> defended := true
            | _ -> ())
      in
      finish sys [ p ];
      Alcotest.(check bool) "careful reference defended" true !defended;
      Alcotest.(check bool) "reader cell alive" true
        (Hive.Types.cell_alive sys.Hive.Types.cells.(1)))

let test_borrow_frames () =
  with_sys (fun _eng sys ->
      let p =
        run_proc sys ~on:0 ~name:"borrower" (fun sys p ->
            ignore p;
            let c0 = sys.Hive.Types.cells.(0) in
            let before = Hive.Page_alloc.free_count c0 in
            let got = Hive.Page_alloc.borrow_from sys c0 ~home:1 ~count:4 in
            assert (List.length got = 4);
            assert (Hive.Page_alloc.free_count c0 = before + 4);
            (* All borrowed frames live on cell 1's nodes. *)
            List.iter
              (fun pfn ->
                assert (Flash.Addr.node_of_pfn sys.Hive.Types.mcfg pfn = 1))
              got;
            (* Return one. *)
            let pf = Hashtbl.find c0.Hive.Types.frames (List.hd got) in
            Hive.Page_alloc.return_frame sys c0 pf)
      in
      finish sys [ p ];
      Alcotest.(check int) "borrow/return ok" 0 (exit_code p))

let suite =
  [
    Alcotest.test_case "boot" `Quick test_boot;
    Alcotest.test_case "local file io" `Quick test_local_file_io;
    Alcotest.test_case "remote file io (export/import)" `Quick
      test_remote_file_io;
    Alcotest.test_case "remote write visible at home" `Quick
      test_remote_write_then_local_read;
    Alcotest.test_case "fork local + wait" `Quick test_fork_local_and_wait;
    Alcotest.test_case "fork remote" `Quick test_fork_remote;
    Alcotest.test_case "anon memory + COW semantics" `Quick
      test_anon_memory_and_cow;
    Alcotest.test_case "COW across cells (careful ref walk)" `Quick
      test_remote_fork_cow_across_cells;
    Alcotest.test_case "rpc timeout reports failure" `Quick
      test_rpc_timeout_reports_hint;
    Alcotest.test_case "hw failure detected, contained, recovered" `Quick
      test_hw_failure_detected_and_recovered;
    Alcotest.test_case "preemptive discard + generation EIO" `Quick
      test_preemptive_discard_gives_eio;
    Alcotest.test_case "wild write blocked by firewall" `Quick
      test_wild_write_blocked_by_firewall;
    Alcotest.test_case "local COW corruption contained to cell" `Quick
      test_cow_corruption_contained;
    Alcotest.test_case "careful ref defends remote corruption" `Quick
      test_careful_ref_defends_remote_corruption;
    Alcotest.test_case "physical-level borrow/return" `Quick test_borrow_frames;
  ]
