type t = int

type pfn = int

let page_size cfg = cfg.Config.page_size

let pfn_of_addr cfg a = a / page_size cfg

let addr_of_pfn cfg pfn = pfn * page_size cfg

let offset cfg a = a mod page_size cfg

let node_of_pfn cfg pfn = pfn / cfg.Config.mem_pages_per_node

let node_of_addr cfg a = node_of_pfn cfg (pfn_of_addr cfg a)

let first_pfn_of_node cfg node = node * cfg.Config.mem_pages_per_node

let local_index cfg pfn = pfn mod cfg.Config.mem_pages_per_node

let valid_pfn cfg pfn = pfn >= 0 && pfn < Config.total_pages cfg

let valid cfg a = a >= 0 && a < Config.total_pages cfg * page_size cfg

let aligned a k = k > 0 && a mod k = 0

let pp fmt a = Format.fprintf fmt "0x%x" a
