lib/flash/addr.mli: Config Format
