(* The process model: UNIX-style processes that run as simulation threads
   on their cell's processors, with fork across cell boundaries (part of
   the single-system image), exec, exit and wait.

   At fork, copy-on-write leaves are split (Section 5.3); when the child
   lands on a different cell, the split leaf crosses the cell boundary and
   the COW tree becomes a distributed data structure. *)

type Types.payload +=
  | P_fork of {
      parent_pid : int;
      name : string;
      body : Types.system -> Types.process -> unit;
      regions : Types.region list;
      fds : (int * Types.fd) list;
    }
  | P_forked of { pid : int }

let fork_op = Rpc.Op.declare ~arg_bytes:512 "process.fork"

(* Process-image state transfer during migration (previously piggybacked
   on the agreement ping op, which hid it from per-op accounting). *)
let migrate_xfer_op = Rpc.Op.declare ~arg_bytes:512 "process.migrate_xfer"

let cell_of (sys : Types.system) (p : Types.process) =
  sys.Types.cells.(p.Types.proc_cell)

let cpu_of (sys : Types.system) (p : Types.process) =
  Flash.Machine.cpu sys.Types.machine p.Types.assigned_node

(* Consume CPU time on the process's assigned processor. *)
let compute (sys : Types.system) (p : Types.process) ns =
  Gate.pass (cell_of sys p);
  Flash.Cpu.use sys.Types.eng (cpu_of sys p) ns

let alloc_pid (sys : Types.system) =
  sys.Types.next_pid <- sys.Types.next_pid + 1;
  sys.Types.next_pid

let make_process (sys : Types.system) (c : Types.cell) ~name ~pid :
    Types.process =
  let nodes = c.Types.cell_nodes in
  let node = List.nth nodes (c.Types.rr_cpu mod List.length nodes) in
  c.Types.rr_cpu <- c.Types.rr_cpu + 1;
  let p =
    {
      Types.pid;
      proc_cell = c.Types.cell_id;
      assigned_node = node;
      pname = name;
      thread = None;
      regions = [];
      mappings = Hashtbl.create 32;
      fds = Hashtbl.create 8;
      next_fd = 3;
      pstate = Types.Proc_running;
      exit_code = None;
      killed_by_failure = false;
      exit_ivar = Sim.Ivar.create ();
      children = [];
      uses_cells = [];
    }
  in
  Hashtbl.replace sys.Types.proc_table pid p;
  c.Types.processes <- p :: c.Types.processes;
  p

(* Tear down a finished or killed process. *)
let reap (sys : Types.system) (p : Types.process) =
  if p.Types.pstate <> Types.Proc_zombie then begin
    p.Types.pstate <- Types.Proc_zombie;
    (try Vm.unmap_all sys p with _ -> ());
    if not (Sim.Ivar.is_filled p.Types.exit_ivar) then
      Sim.Ivar.fill sys.Types.eng p.Types.exit_ivar
        (match p.Types.exit_code with Some c -> c | None -> -1)
  end

(* Start the process body in its own thread with proper exit handling. *)
let start_thread (sys : Types.system) (c : Types.cell) (p : Types.process)
    body =
  let eng = sys.Types.eng in
  let thr =
    Sim.Engine.spawn eng ~name:(Printf.sprintf "pid%d.%s" p.Types.pid p.Types.pname)
      (fun () ->
        Sim.Engine.at_exit_thread (fun () -> reap sys p);
        Gate.pass c;
        match body sys p with
        | () -> p.Types.exit_code <- Some 0
        | exception Types.Syscall_error e ->
          Types.bump c "proc.syscall_aborts";
          p.Types.exit_code <- Some 1;
          Sim.Trace.debug eng "pid %d aborted: %s" p.Types.pid
            (Types.errno_to_string e)
        | exception Panic.Kernel_corruption _ ->
          (* The cell is panicking under us; the thread dies with it. *)
          ())
  in
  p.Types.thread <- Some thr

(* Spawn a fresh top-level process on a cell (used to start workloads). *)
let spawn (sys : Types.system) (c : Types.cell) ~name body =
  let p = make_process sys c ~name ~pid:(alloc_pid sys) in
  start_thread sys c p body;
  p

(* Split every anonymous region's COW leaf between parent and child. The
   old leaf becomes an interior node readable by both. *)
let split_anon_regions (sys : Types.system) (parent : Types.process)
    (child_cell : Types.cell) =
  let parent_cell = cell_of sys parent in
  let child_regions =
    List.map
      (fun (r : Types.region) ->
        match r.Types.kind with
        | Types.File_region _ -> r
        | Types.Anon_region leaf ->
          let parent_leaf, child_leaf =
            Cow.fork sys ~parent_cell ~child_cell leaf ()
          in
          (* Parent continues on its fresh leaf; its writable anon mappings
             must be dropped so post-fork writes re-fault and COW. *)
          let new_parent_r = { r with Types.kind = Types.Anon_region parent_leaf } in
          parent.Types.regions <-
            List.map
              (fun r' -> if r' == r then new_parent_r else r')
              parent.Types.regions;
          let doomed = ref [] in
          Hashtbl.iter
            (fun vpage (_ : Types.mapping) ->
              if
                vpage >= r.Types.start_page
                && vpage < r.Types.start_page + r.Types.npages
              then doomed := vpage :: !doomed)
            parent.Types.mappings;
          List.iter
            (fun vpage ->
              (match Hashtbl.find_opt parent.Types.mappings vpage with
              | Some m ->
                m.Types.map_pf.Types.refs <-
                  max 0 (m.Types.map_pf.Types.refs - 1)
              | None -> ());
              Hashtbl.remove parent.Types.mappings vpage)
            !doomed;
          { r with Types.kind = Types.Anon_region child_leaf })
      parent.Types.regions
  in
  child_regions

let copy_fds (parent : Types.process) =
  Hashtbl.fold (fun n fd acc -> (n, fd) :: acc) parent.Types.fds []

let install_child (sys : Types.system) (c : Types.cell) ~name ~regions ~fds
    ~parent_pid body =
  let p = make_process sys c ~name ~pid:(alloc_pid sys) in
  p.Types.regions <- regions;
  List.iter (fun (n, fd) -> Hashtbl.replace p.Types.fds n fd) fds;
  p.Types.next_fd <-
    List.fold_left (fun acc (n, _) -> max acc (n + 1)) 3 fds;
  (match Hashtbl.find_opt sys.Types.proc_table parent_pid with
  | Some parent -> parent.Types.children <- p :: parent.Types.children
  | None -> ());
  start_thread sys c p body;
  p

(* Fork a child running [body], optionally on another cell. *)
let fork (sys : Types.system) (parent : Types.process) ?on_cell ~name body =
  let here = cell_of sys parent in
  Gate.pass here;
  let target =
    match on_cell with Some c -> c | None -> parent.Types.proc_cell
  in
  let p = sys.Types.params in
  Sim.Engine.delay p.Params.fork_local_ns;
  Types.bump here "proc.forks";
  if target = parent.Types.proc_cell then begin
    let regions = split_anon_regions sys parent here in
    let child =
      install_child sys here ~name ~regions ~fds:(copy_fds parent)
        ~parent_pid:parent.Types.pid body
    in
    Ok child
  end
  else if not (List.mem target here.Types.live_set) then Error Types.EHOSTDOWN
  else begin
    (* Remote fork: split leaves across the boundary, then RPC the child
       image to the target cell. *)
    Types.bump here "proc.remote_forks";
    Sim.Engine.delay p.Params.fork_remote_extra_ns;
    let regions = split_anon_regions sys parent sys.Types.cells.(target) in
    match
      Rpc.call sys ~from:here ~target ~op:fork_op
        (P_fork
           {
             parent_pid = parent.Types.pid;
             name;
             body;
             regions;
             fds = copy_fds parent;
           })
    with
    | Ok (P_forked { pid }) -> (
      match Hashtbl.find_opt sys.Types.proc_table pid with
      | Some child ->
        parent.Types.children <- child :: parent.Types.children;
        Ok child
      | None -> Error Types.ESRCH)
    | Ok _ -> Error Types.EFAULT
    | Error e -> Error e
  end

(* Exec: load a program image — open its file and fault in the text pages
   (shared across all processes running the same binary machine-wide). *)
let exec (sys : Types.system) (p : Types.process) ~path =
  let c = cell_of sys p in
  Gate.pass c;
  Sim.Engine.delay sys.Types.params.Params.exec_ns;
  Types.bump c "proc.execs";
  match Fs.open_file sys c ~path with
  | Error e -> Error e
  | Ok (vnode, gen) -> (
    match Fs.file_size sys c vnode with
    | Error e -> Error e
    | Ok size ->
      let psize = Types.page_size sys in
      let npages = max 1 ((size + psize - 1) / psize) in
      let r = Vm.map_file sys p vnode ~opened_gen:gen ~writable:false ~npages in
      let rec load i =
        if i >= npages then Ok ()
        else
          match Vm.touch sys p ~vpage:(r.Types.start_page + i) ~write:false with
          | Ok () -> load (i + 1)
          | Error e -> Error e
      in
      load 0)

(* Migrate the calling process to another cell (load balancing of
   sequential processes, Section 3.2). Must be invoked at a safe point by
   the process itself: its mappings are flushed (pages re-fault on the new
   cell through the normal locate/import path) and its cell bookkeeping
   moves. *)
let migrate (sys : Types.system) (p : Types.process) ~to_cell =
  let here = cell_of sys p in
  Gate.pass here;
  if to_cell = p.Types.proc_cell then Ok ()
  else if not (List.mem to_cell here.Types.live_set) then
    Error Types.EHOSTDOWN
  else begin
    let dest = sys.Types.cells.(to_cell) in
    Types.bump here "proc.migrations_out";
    Types.bump dest "proc.migrations_in";
    (* Flush mappings; imported bindings stay cached on the old cell and
       get released by its reaper when idle. *)
    Hashtbl.iter
      (fun _ (m : Types.mapping) ->
        m.Types.map_pf.Types.refs <- max 0 (m.Types.map_pf.Types.refs - 1))
      p.Types.mappings;
    Hashtbl.reset p.Types.mappings;
    (* Anonymous regions: the leaf must be local to the process, so split
       it across the boundary exactly as a remote fork would. *)
    let migrated_regions = split_anon_regions sys p dest in
    p.Types.regions <- migrated_regions;
    here.Types.processes <-
      List.filter (fun q -> q != p) here.Types.processes;
    dest.Types.processes <- p :: dest.Types.processes;
    p.Types.proc_cell <- to_cell;
    let nodes = dest.Types.cell_nodes in
    dest.Types.rr_cpu <- dest.Types.rr_cpu + 1;
    p.Types.assigned_node <-
      List.nth nodes (dest.Types.rr_cpu mod List.length nodes);
    (* State transfer cost: one RPC plus the process image copy. *)
    Sim.Engine.delay sys.Types.params.Params.fork_remote_extra_ns;
    match
      Rpc.call sys ~from:here ~target:to_cell ~op:migrate_xfer_op
        Types.P_unit
    with
    | Ok _ -> Ok ()
    | Error e -> Error e
  end

(* Wait for a child to exit; the exit code is [-1] if it was killed by a
   cell failure. *)
let wait (sys : Types.system) (_parent : Types.process) (child : Types.process)
    =
  Sim.Ivar.read_exn sys.Types.eng child.Types.exit_ivar

(* Wait for all children. *)
let wait_all (sys : Types.system) (parent : Types.process) =
  List.map (fun c -> wait sys parent c) parent.Types.children

let registered = ref false

let register_handlers () =
  if not !registered then begin
    registered := true;
    Rpc.register migrate_xfer_op (fun _sys _cell ~src:_ _arg ->
        Types.Immediate (Ok Types.P_unit));
    Rpc.register fork_op (fun sys cell ~src:_ arg ->
        match arg with
        | P_fork { parent_pid; name; body; regions; fds } ->
          Types.Queued
            (fun () ->
              Sim.Engine.delay sys.Types.params.Params.fork_local_ns;
              let child =
                install_child sys cell ~name ~regions ~fds ~parent_pid body
              in
              Ok (P_forked { pid = child.Types.pid }))
        | _ -> Types.Immediate (Error Types.EFAULT))
  end
