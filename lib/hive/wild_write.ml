(* Wild write defense, part 1: firewall management (Section 4.2).

   Policy: write access to a page is granted to all processors of a cell
   as a group, when any process on that cell faults the page into a
   writable portion of its address space; permission remains granted while
   any process on that cell has the page mapped. Kernel pages and
   local-only user pages are never remotely writable.

   Firewall bits can only be changed by the local processor of the page's
   node, so when the data home has borrowed the frame it must send an RPC
   to the memory home to change firewall state. *)

type Types.payload +=
  | P_fw of { pfn : int; target_cell : Types.cell_id; grant : bool }

let firewall_rpc_op = Rpc.Op.declare "wild_write.fw_change"

(* Apply a grant/revoke on a frame whose node is local to [c]. *)
let apply_local (sys : Types.system) (c : Types.cell) ~pfn ~target_cell ~grant =
  let fw = Flash.Machine.firewall sys.Types.machine in
  let node = Flash.Addr.node_of_pfn sys.Types.mcfg pfn in
  if not (List.mem node c.Types.cell_nodes) then invalid_arg "fw: not local";
  (* Uncached operations to the coherence controller. *)
  Sim.Engine.delay sys.Types.mcfg.Flash.Config.uncached_op_ns;
  let procs = sys.Types.cells.(target_cell).Types.cell_nodes in
  if grant then Flash.Firewall.grant_many fw ~by:node ~pfn procs
  else
    List.iter (fun p -> Flash.Firewall.revoke fw ~by:node ~pfn ~proc:p) procs;
  if not grant then
    (* Revoking write permission requires communication with remote nodes
       to ensure all valid writes have been delivered to memory. *)
    Sim.Engine.delay sys.Types.mcfg.Flash.Config.mem_ns;
  Types.bump c "firewall.changes";
  if Sim.Event.enabled sys.Types.events then
    Sim.Event.instant sys.Types.events ~cell:c.Types.cell_id
      ~args:
        [ ("pfn", Sim.Event.Int pfn);
          ("target_cell", Sim.Event.Int target_cell) ]
      ~cat:Sim.Event.Firewall
      (if grant then "firewall.grant" else "firewall.revoke")

let registered = ref false

let register_handlers () =
  if not !registered then begin
    registered := true;
    Rpc.register firewall_rpc_op (fun sys cell ~src:_ arg ->
        match arg with
        | P_fw { pfn; target_cell; grant } ->
          Types.Immediate
            (apply_local sys cell ~pfn ~target_cell ~grant;
             Ok Types.P_unit)
        | _ -> Types.Immediate (Error Types.EFAULT))
  end

(* Change firewall state for [pfn] on behalf of the cell managing the data
   ([mgr]): direct when the frame's node is local, RPC to the memory home
   when the frame is borrowed. *)
let change (sys : Types.system) (mgr : Types.cell) ~pfn ~target_cell ~grant =
  let node = Flash.Addr.node_of_pfn sys.Types.mcfg pfn in
  if List.mem node mgr.Types.cell_nodes then
    apply_local sys mgr ~pfn ~target_cell ~grant
  else begin
    let home = Types.cell_of_node sys node in
    match
      Rpc.call sys ~from:mgr ~target:home.Types.cell_id ~op:firewall_rpc_op
        (P_fw { pfn; target_cell; grant })
    with
    | Ok _ -> ()
    | Error e -> raise (Types.Syscall_error e)
  end

(* Grant write access on export if needed, tracked in the data home's
   pfdat (only the data home knows the precise firewall status). *)
let grant_for_export sys (home : Types.cell) (pf : Types.pfdat) ~client =
  if not (List.mem client pf.Types.write_granted_to) then begin
    change sys home ~pfn:pf.Types.pfn ~target_cell:client ~grant:true;
    pf.Types.write_granted_to <- client :: pf.Types.write_granted_to
  end

let revoke_client sys (home : Types.cell) (pf : Types.pfdat) ~client =
  if List.mem client pf.Types.write_granted_to then begin
    (try change sys home ~pfn:pf.Types.pfn ~target_cell:client ~grant:false
     with Types.Syscall_error _ -> () (* memory home down: moot *));
    pf.Types.write_granted_to <-
      List.filter (fun c -> c <> client) pf.Types.write_granted_to
  end

(* Count of this cell's pages currently writable by a remote cell — the
   Section 4.2 statistic (avg 15/cell under pmake, 550 under ocean). *)
let remotely_writable_pages (sys : Types.system) (c : Types.cell) =
  let fw = Flash.Machine.firewall sys.Types.machine in
  List.fold_left
    (fun acc node -> acc + Flash.Firewall.remote_writable_pages fw ~node)
    0 c.Types.cell_nodes
