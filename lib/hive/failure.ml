(* Failure hints (Section 4.3).

   A cell is considered potentially failed when: an RPC to it times out; an
   access to its memory causes a bus error; its published clock word stops
   incrementing; or data read from its memory fails the consistency checks
   of the careful reference protocol. A hint triggers distributed
   agreement immediately; confirmation is required before recovery.

   Hints that arrive while a recovery round is already in flight cannot run
   agreement (gates are closed, the peers are busy in the round), but they
   must not be dropped either: a hint against a participant that has
   observably stopped is exactly how a *nested* failure is detected, and
   escalates into a round restart with the enlarged dead set. *)

let observably_down (sys : Types.system) suspect =
  let c = sys.Types.cells.(suspect) in
  c.Types.cstatus <> Types.Cell_up
  || List.exists
       (fun n -> not (Flash.Machine.node_alive sys.Types.machine n))
       c.Types.cell_nodes

let handle_hint (sys : Types.system) (reporter : Types.cell) ~suspect ~reason =
  if not (Types.cell_alive reporter) || suspect = reporter.Types.cell_id then ()
  else if sys.Types.recovery_in_progress then begin
    (* Mid-recovery hint: per-phase RPC timeouts and clock monitoring keep
       firing while a round runs. Escalate only when the suspect is a
       participant that has demonstrably stopped; [Recovery.cell_died]
       dedups against the confirmed dead set and restarts the round. *)
    if
      List.mem suspect reporter.Types.live_set
      && observably_down sys suspect
    then begin
      Types.bump reporter "failure.hints_during_recovery";
      Sim.Trace.info sys.Types.eng
        "cell %d suspects cell %d during recovery (%s)"
        reporter.Types.cell_id suspect reason;
      Recovery.cell_died sys suspect
    end
  end
  else if
    (not reporter.Types.in_recovery)
    && List.mem suspect reporter.Types.live_set
    && not (List.mem suspect reporter.Types.suspected)
  then begin
    reporter.Types.suspected <- suspect :: reporter.Types.suspected;
    Types.bump reporter "failure.hints";
    Types.note_phase sys ~cell:reporter.Types.cell_id "recovery.hint";
    Sim.Trace.info sys.Types.eng "cell %d suspects cell %d (%s)"
      reporter.Types.cell_id suspect reason;
    (* Run agreement from a fresh kernel thread: hints fire from fault
       paths and interrupt handlers that must not block for milliseconds. *)
    let thr =
      Sim.Engine.spawn sys.Types.eng
        ~name:(Printf.sprintf "cell%d.agreement" reporter.Types.cell_id)
        (fun () -> Agreement.run sys reporter ~suspect ~reason)
    in
    reporter.Types.kernel_threads <- thr :: reporter.Types.kernel_threads
  end

let install (sys : Types.system) =
  sys.Types.on_hint <- Some (handle_hint sys);
  (* Panics (and hardware fail-stops, via System's node-failure handler)
     report synchronously so an in-flight recovery round restarts instead
     of deadlocking on the dead participant's barrier slot. *)
  sys.Types.on_cell_death <- Some (fun id -> Recovery.cell_died sys id)
