type 'a waiter = { slot : 'a option ref; thread : Engine.thread }

type 'a t = { queue : 'a Queue.t; mutable waiters : 'a waiter list }

let create () = { queue = Queue.create (); waiters = [] }

let length m = Queue.length m.queue

let is_empty m = Queue.is_empty m.queue

(* Deliver to the first waiter that is still suspended; losers of a
   wake race (e.g. timed-out receivers) are skipped and dropped. *)
let rec deliver eng m x =
  match m.waiters with
  | [] -> Queue.push x m.queue
  | w :: rest ->
    m.waiters <- rest;
    if Engine.try_resume eng w.thread then w.slot := Some x
    else deliver eng m x

let send eng m x = deliver eng m x

let try_receive m = Queue.take_opt m.queue

(* Discard queued messages without waking waiters: used when a failed
   node's hardware queues are reset on restore. *)
let clear m =
  let n = Queue.length m.queue in
  Queue.clear m.queue;
  n

let receive ?timeout eng m =
  match Queue.take_opt m.queue with
  | Some _ as r -> r
  | None ->
    let slot = ref None in
    Engine.suspend ~site:"mailbox.receive" (fun thr ->
        m.waiters <- m.waiters @ [ { slot; thread = thr } ];
        match timeout with
        | None -> ()
        | Some d -> Engine.wake_after eng thr d);
    (match !slot with
    | Some _ as r -> r
    | None ->
      let me = Engine.self () in
      m.waiters <- List.filter (fun w -> w.thread != me) m.waiters;
      None)

let receive_exn eng m =
  match receive eng m with
  | Some x -> x
  | None -> assert false
