(* Traffic-serving tests: the Poisson/Zipf samplers behind the server
   workload, end-to-end RPC deadline budgets, dequeue-time expiry of
   orphaned requests, sheddable-op admission control, per-phase op
   latency export, fuzz-plan append-only compatibility, and the server
   workload itself (determinism and serving through a cell kill). *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

(* ---- sampler properties ---- *)

let test_poisson_mean_and_determinism () =
  let draws rng = Array.init 2000 (fun _ -> Sim.Prng.poisson rng 5.0) in
  let a = draws (Sim.Prng.create 7) in
  let b = draws (Sim.Prng.create 7) in
  Alcotest.(check bool) "equal seeds, identical sequences" true (a = b);
  let mean =
    float_of_int (Array.fold_left ( + ) 0 a) /. float_of_int (Array.length a)
  in
  Alcotest.(check bool)
    (Printf.sprintf "empirical mean %.3f within 5.0 +/- 0.3" mean)
    true
    (abs_float (mean -. 5.0) < 0.3);
  Array.iter
    (fun k -> Alcotest.(check bool) "counts non-negative" true (k >= 0))
    a

let test_zipf_skew_and_determinism () =
  let n = 50 in
  let dist = Sim.Prng.zipf ~n ~s:1.1 in
  let draws rng = Array.init 5000 (fun _ -> Sim.Prng.zipf_draw rng dist) in
  let a = draws (Sim.Prng.create 11) in
  let b = draws (Sim.Prng.create 11) in
  Alcotest.(check bool) "equal seeds, identical sequences" true (a = b);
  let counts = Array.make n 0 in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "rank in range" true (r >= 0 && r < n);
      counts.(r) <- counts.(r) + 1)
    a;
  Alcotest.(check bool) "rank 0 is the most popular" true
    (Array.for_all (fun c -> counts.(0) >= c) counts);
  Alcotest.(check bool) "head rank dominates the tail rank" true
    (counts.(0) > 10 * (counts.(n - 1) + 1))

(* ---- RPC deadline budget across retransmissions ---- *)

let echo_op = Hive.Rpc.Op.declare "traffic.echo"
let slow_op = Hive.Rpc.Op.declare "traffic.slow"
let shed_op = Hive.Rpc.Op.declare ~sheddable:true "traffic.shed"
let solid_op = Hive.Rpc.Op.declare "traffic.solid"

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    Hive.Rpc.register echo_op (fun _sys _cell ~src:_ arg ->
        Hive.Types.Immediate (Ok arg));
    Hive.Rpc.register slow_op (fun _sys _cell ~src:_ _arg ->
        Hive.Types.Queued
          (fun () ->
            Sim.Engine.delay 100_000_000L;
            Ok Hive.Types.P_unit));
    Hive.Rpc.register shed_op (fun _sys _cell ~src:_ arg ->
        Hive.Types.Queued (fun () -> Ok arg));
    Hive.Rpc.register solid_op (fun _sys _cell ~src:_ arg ->
        Hive.Types.Queued (fun () -> Ok arg))
  end

let with_sys ?params f =
  register ();
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = 2; mem_pages_per_node = 256 }
  in
  let sys = Hive.System.boot ~mcfg ?params ~ncells:2 ~wax:false eng in
  f eng sys

let call_from_thread eng sys ~op ?timeout_ns ?deadline_ns arg =
  let out = ref (Error Hive.Types.EFAULT) in
  let dur = ref 0L in
  ignore
    (Sim.Engine.spawn eng ~name:"caller" (fun () ->
         let t0 = Sim.Engine.time () in
         out :=
           Hive.Rpc.call sys ~from:sys.Hive.Types.cells.(0) ~target:1 ~op
             ?timeout_ns ?deadline_ns arg;
         dur := Int64.sub (Sim.Engine.time ()) t0));
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 30_000_000_000L) eng;
  (!out, !dur)

let black_hole sys =
  sys.Hive.Types.on_hint <- None;
  let sips = Flash.Machine.sips sys.Hive.Types.machine in
  Flash.Sips.degrade sips ~rng:(Sim.Prng.create 7)
    {
      Flash.Sips.deg_from = -1;
      deg_to = 1;
      from_ns = 0L;
      until_ns = 60_000_000_000L;
      drop_pct = 100;
      dup_pct = 0;
      delay_pct = 0;
      max_delay_ns = 0L;
    }

(* The end-to-end budget spans every retransmission and backoff sleep: a
   call into a black hole stops at the deadline with ETIMEDOUT instead of
   burning the whole per-attempt retry schedule to EHOSTDOWN. *)
let test_deadline_caps_total_time () =
  let timed_out_dur =
    with_sys (fun eng sys ->
        black_hole sys;
        let deadline = Int64.add (Sim.Engine.now eng) 120_000_000L in
        match
          call_from_thread eng sys ~op:echo_op ~timeout_ns:50_000_000L
            ~deadline_ns:deadline Hive.Types.P_unit
        with
        | Error Hive.Types.ETIMEDOUT, dur -> dur
        | Ok _, _ -> Alcotest.fail "black-hole call cannot succeed"
        | Error _, _ -> Alcotest.fail "expected ETIMEDOUT under a deadline")
  in
  Alcotest.(check bool)
    (Printf.sprintf "gave up within budget + one attempt (%.1f ms)"
       (Int64.to_float timed_out_dur /. 1e6))
    true
    (Int64.compare timed_out_dur 180_000_000L <= 0);
  let full_schedule_dur =
    with_sys (fun eng sys ->
        black_hole sys;
        match
          call_from_thread eng sys ~op:echo_op ~timeout_ns:50_000_000L
            Hive.Types.P_unit
        with
        | Error Hive.Types.EHOSTDOWN, dur -> dur
        | _ -> Alcotest.fail "expected EHOSTDOWN after retries exhausted")
  in
  (* 4 attempts x 50 ms + 20/40/80 ms backoff: the unbudgeted call takes
     the full schedule, well past where the deadline cut its sibling off. *)
  Alcotest.(check bool) "no deadline means the full retry schedule" true
    (Int64.compare full_schedule_dur 300_000_000L >= 0)

(* Dequeue-time expiry: a request that outlives its deadline while queued
   behind a slow op is dropped by the server pool (rpc.expired) instead of
   being served to a client that provably gave up. *)
let test_expired_request_dropped_at_dequeue () =
  with_sys
    ~params:{ Hive.Params.default with Hive.Params.rpc_server_pool = 1 }
    (fun eng sys ->
      sys.Hive.Types.on_hint <- None;
      ignore
        (Sim.Engine.spawn eng ~name:"occupier" (fun () ->
             ignore
               (Hive.Rpc.call sys ~from:sys.Hive.Types.cells.(0) ~target:1
                  ~op:slow_op Hive.Types.P_unit)));
      let late = ref (Error Hive.Types.EFAULT) in
      ignore
        (Sim.Engine.spawn eng ~name:"late-caller" (fun () ->
             Sim.Engine.delay 5_000_000L;
             let deadline =
               Int64.add (Sim.Engine.time ()) 30_000_000L
             in
             late :=
               Hive.Rpc.call sys ~from:sys.Hive.Types.cells.(0) ~target:1
                 ~op:solid_op ~deadline_ns:deadline Hive.Types.P_unit));
      Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 5_000_000_000L) eng;
      (match !late with
      | Error Hive.Types.ETIMEDOUT -> ()
      | _ -> Alcotest.fail "late caller must time out on its deadline");
      Alcotest.(check bool) "server dropped the orphaned request" true
        (Sim.Stats.value sys.Hive.Types.cells.(1).Hive.Types.counters
           "rpc.expired"
        >= 1))

(* Admission control: with the queue bound at zero every sheddable request
   is refused with EBUSY at enqueue time; kernel ops are never shed. *)
let test_sheddable_refused_when_saturated () =
  with_sys
    ~params:{ Hive.Params.default with Hive.Params.rpc_queue_bound = 0 }
    (fun eng sys ->
      (match call_from_thread eng sys ~op:shed_op Hive.Types.P_unit with
      | Error Hive.Types.EBUSY, _ -> ()
      | _ -> Alcotest.fail "sheddable op must be refused at bound 0");
      Alcotest.(check bool) "rpc.shed counted" true
        (Sim.Stats.value sys.Hive.Types.cells.(1).Hive.Types.counters
           "rpc.shed"
        >= 1);
      match call_from_thread eng sys ~op:solid_op Hive.Types.P_unit with
      | Ok _, _ -> ()
      | _ -> Alcotest.fail "non-sheddable op must still be served")

(* ---- server workload ---- *)

let server_sys () =
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = 2; mem_pages_per_node = 512 }
  in
  let sys = Hive.System.boot ~mcfg ~ncells:2 ~wax:false eng in
  sys

let short_cfg =
  {
    Workloads.Server.default with
    Workloads.Server.duration_ms = 400;
    rate_rps = 60.;
    seed = 0xBEEFL;
  }

let test_server_workload_deterministic () =
  let run () =
    let sys = server_sys () in
    Workloads.Server.run ~cfg:short_cfg sys
  in
  let r1, s1 = run () in
  let r2, s2 = run () in
  Alcotest.(check bool) "completed" true r1.Workloads.Workload.completed;
  Alcotest.(check bool) "identical stats across runs" true (s1 = s2);
  Alcotest.(check bool) "identical elapsed time" true
    (r1.Workloads.Workload.elapsed_ns = r2.Workloads.Workload.elapsed_ns);
  Alcotest.(check bool) "traffic actually flowed" true
    (s1.Workloads.Server.arrivals > 0 && s1.Workloads.Server.reads_served > 0)

let test_server_through_cell_kill () =
  let cfg =
    {
      short_cfg with
      Workloads.Server.duration_ms = 800;
      fault = Some { Workloads.Server.kill_cell = 1; at_ms = 300 };
    }
  in
  let sys = server_sys () in
  let result, stats = Workloads.Server.run ~cfg sys in
  Alcotest.(check bool) "completed through the kill" true
    result.Workloads.Workload.completed;
  (match stats.Workloads.Server.recovered_at_ns with
  | Some _ -> ()
  | None -> Alcotest.fail "victim cell must reintegrate before the end");
  let budget_ns =
    Int64.of_int (cfg.Workloads.Server.deadline_ms * 1_000_000)
  in
  Alcotest.(check bool)
    (Printf.sprintf "fail-fast within deadline budget (max %.1f ms)"
       (Int64.to_float stats.Workloads.Server.fail_fast_max_ns /. 1e6))
    true
    (Int64.compare stats.Workloads.Server.fail_fast_max_ns
       (Int64.add budget_ns 50_000_000L)
    <= 0);
  Alcotest.(check int) "no unexpected client errors" 0
    stats.Workloads.Server.errors

(* Per-phase end-to-end op latency lands in the snapshot, p99.9 included,
   and survives a JSON round trip losslessly. *)
let test_metrics_ops_roundtrip () =
  let sys = server_sys () in
  let _ = Workloads.Server.run ~cfg:short_cfg sys in
  let snap = Hive.Metrics.capture sys in
  (match Hive.Metrics.Snapshot.op_hist snap "server.read|before" with
  | Some h ->
    Alcotest.(check bool) "read latency recorded" true (h.count > 0);
    Alcotest.(check bool) "p999 at or above p99" true
      (h.Hive.Metrics.Snapshot.p999_ns >= h.Hive.Metrics.Snapshot.p99_ns)
  | None -> Alcotest.fail "server.read|before histogram missing");
  match Hive.Metrics.Snapshot.(of_string (to_string snap)) with
  | Ok snap' ->
    Alcotest.(check bool) "snapshot round-trips losslessly" true
      (snap = snap')
  | Error e -> Alcotest.fail ("snapshot did not parse back: " ^ e)

(* ---- fuzz-plan compatibility ---- *)

(* Plan strings captured before the traffic dimension existed. Seeds that
   do not draw traffic must derive byte-identical plans forever (replay
   compatibility); seeds that do draw it may only append to the string. *)
let frozen_plans =
  [
    ( 1L,
      "seed=0x1 cells=2x1 mem=1024 wl=ocean jitter=off faults=[corrupt \
       address map on cell 1 @ 454ms]" );
    ( 2L,
      "seed=0x2 cells=2x2 mem=2048 wl=pmake jitter=on faults=[degrade link \
       *->2 for 87 ms (drop 20% dup 17% delay 44%) @ 457ms; node 3 \
       fail-stop @ 480ms]" );
    ( 5L,
      "seed=0x5 cells=4x1 mem=1024 wl=pmake jitter=on faults=[node 1 CPU \
       dead, memory alive @ 82ms; degrade link *->3 for 313 ms (drop 23% \
       dup 32% delay 3%) @ 533ms; node 2 fail-stop @ 1025ms; node 3 \
       fail-stop @ 1038ms]" );
    ( 28L,
      "seed=0x1c cells=4x1 mem=2048 wl=pmake jitter=on faults=[degrade \
       link 3->2 for 122 ms (drop 21% dup 1% delay 15%) @ 1130ms]" );
  ]

let frozen_traffic_prefixes =
  [
    ( 3L,
      "seed=0x3 cells=2x1 mem=2048 wl=pmake jitter=off faults=[corrupt \
       address map on cell 1 @ 472ms]" );
    ( 38L,
      "seed=0x26 cells=4x2 mem=2048 wl=raytrace jitter=off \
       faults=[partition cell 1 for 208 ms (inbound only) @ 74ms; corrupt \
       address map on cell 3 @ 584ms]" );
    ( 47L,
      "seed=0x2f cells=2x1 mem=2048 wl=ocean jitter=on faults=[degrade \
       link *->1 for 87 ms (drop 20% dup 4% delay 30%) @ 856ms; node 1 \
       CPU dead, memory alive @ 877ms]" );
  ]

let test_traffic_free_plans_unchanged () =
  List.iter
    (fun (seed, expected) ->
      let p = Faultinj.Fuzz.plan_of_seed seed in
      Alcotest.(check string)
        (Printf.sprintf "seed %Ld byte-identical" seed)
        expected
        (Faultinj.Fuzz.describe_plan p))
    frozen_plans

let test_traffic_plans_append_only () =
  List.iter
    (fun (seed, prefix) ->
      let p = Faultinj.Fuzz.plan_of_seed seed in
      let s = Faultinj.Fuzz.describe_plan p in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld keeps its pre-traffic prefix" seed)
        true
        (String.length s > String.length prefix
        && String.sub s 0 (String.length prefix) = prefix);
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld gained a traffic clause" seed)
        true
        (contains s " traffic=[rate="))
    frozen_traffic_prefixes

let suite =
  [
    Alcotest.test_case "poisson sampler: mean and determinism" `Quick
      test_poisson_mean_and_determinism;
    Alcotest.test_case "zipf sampler: skew and determinism" `Quick
      test_zipf_skew_and_determinism;
    Alcotest.test_case "deadline caps total time across retries" `Quick
      test_deadline_caps_total_time;
    Alcotest.test_case "expired queued request dropped at dequeue" `Quick
      test_expired_request_dropped_at_dequeue;
    Alcotest.test_case "sheddable op refused when saturated" `Quick
      test_sheddable_refused_when_saturated;
    Alcotest.test_case "server workload is deterministic" `Slow
      test_server_workload_deterministic;
    Alcotest.test_case "server traffic rides out a cell kill" `Slow
      test_server_through_cell_kill;
    Alcotest.test_case "per-phase op latency round-trips with p999" `Slow
      test_metrics_ops_roundtrip;
    Alcotest.test_case "traffic-free fuzz plans byte-identical" `Quick
      test_traffic_free_plans_unchanged;
    Alcotest.test_case "traffic fuzz plans are append-only" `Quick
      test_traffic_plans_append_only;
  ]
