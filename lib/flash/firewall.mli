(** The FLASH firewall: a write-permission vector per 4 KB page of main
    memory, stored and checked by the coherence controller of the owning
    node (Section 4.2 of the paper). Permission vectors are processor
    sets ({!Procset.t}): the 64-node prototype packed them into one
    64-bit word; this model stores them sparsely (a per-node default set
    plus exceptions for pages with remote grants), so machines of
    hundreds of nodes are representable and whole-node scans cost
    O(outstanding grants), not O(pages).

    A write request to a page whose vector does not contain the writing
    processor fails with a bus error. Only the local processor can change
    the firewall bits for the memory of its node; attempts by remote
    processors raise {!Not_local_processor}. *)

exception Not_local_processor

type t

(** Raises [Invalid_argument] (via {!Config.validate}) on configurations
    past {!Config.max_nodes}. *)
val create : Config.t -> t

(** Combined permission set of a list of processors. *)
val proc_mask : int list -> Procset.t

(** The permission vector of a page. *)
val vector : t -> pfn:Addr.pfn -> Procset.t

(** Does [proc] hold write permission to [pfn]? *)
val allowed : t -> pfn:Addr.pfn -> proc:int -> bool

(** All of these raise {!Not_local_processor} unless [by] is the processor
    of the node owning [pfn]. *)

val set_vector : t -> by:int -> pfn:Addr.pfn -> Procset.t -> unit

(** Reset every page of [node] to one permission set: the boot/reboot
    fast path (O(1), clears all per-page exceptions). Reported to the
    notify observer as a single change on the node's first page. *)
val set_node_default : t -> by:int -> node:int -> Procset.t -> unit

val grant : t -> by:int -> pfn:Addr.pfn -> proc:int -> unit

val revoke : t -> by:int -> pfn:Addr.pfn -> proc:int -> unit

(** Grant write permission to all processors of a cell at once (the Hive
    firewall-management policy grants per cell, not per processor). *)
val grant_many : t -> by:int -> pfn:Addr.pfn -> int list -> unit

(** Leave only the local processor's bit set. *)
val revoke_all_remote : t -> by:int -> pfn:Addr.pfn -> unit

val clear : t -> by:int -> pfn:Addr.pfn -> unit

(** Number of this node's pages writable by at least one remote processor
    (the paper's Section 4.2 firewall statistic). Walks only the
    exception table. *)
val remote_writable_pages : t -> node:int -> int

(** Every pfn (machine-wide) writable by [proc]. Costs a scan of every
    node's exception table; preemptive discard uses
    {!pages_writable_by_mask} instead. *)
val writable_by : t -> proc:int -> Addr.pfn list

(** [node]'s pfns whose permission vector intersects [mask], in ascending
    order. One pass over the node's exception table (plus a full-page
    sweep only if the node's default itself matches); used by preemptive
    discard with the combined mask of all dead processors. *)
val pages_writable_by_mask : t -> node:int -> mask:Procset.t -> Addr.pfn list

(** Total number of firewall status changes so far (performance statistic). *)
val change_count : t -> int

(** Install an observer invoked whenever a page's permission vector
    actually changes (grants, revokes, recovery mass-revocation); used by
    the observability layer to trace hardware-level firewall traffic. *)
val set_notify :
  t -> (pfn:Addr.pfn -> old_vec:Procset.t -> new_vec:Procset.t -> unit) -> unit
