(** Virtual memory: address-space regions, page faults, logical-level
   sharing of file and anonymous pages, and the VM side of recovery
   (Table 5.1, Sections 5.2-5.6).

   There is no instruction-level execution in the simulation, so "the
   hardware" faults when a workload touches a virtual page with no entry in
   the process's mapping table; the fault path then follows the paper:
   check the local pfdat hash, and on a miss either service locally or send
   a locate RPC to the data home, which exports the page for the client to
   import. *)

type Types.payload +=
    P_anon_locate of { node_id : int; page : int; writable : bool; }
  | P_anon_page of { pfn : int; }
val anon_locate_op : Rpc.Op.t
val page_size : Types.system -> int
val mem : Types.system -> Flash.Memory.t
val frame_addr : Types.system -> Flash.Addr.pfn -> Flash.Addr.t
val cell_of : Types.system -> Types.process -> Types.cell
val note_dependency : Types.process -> Types.cell_id -> unit
val next_start : Types.process -> int
val map_file :
  Types.system ->
  Types.process ->
  Types.vnode ->
  opened_gen:Types.generation ->
  writable:bool -> npages:int -> Types.region
val map_anon :
  Types.system ->
  Types.process -> Types.cow_ref -> npages:int -> Types.region
val region_of : Types.process -> int -> Types.region option
val anon_create :
  Types.system ->
  Types.cell -> Types.cow_ref -> page:int -> Types.pfdat
val anon_get :
  Types.system ->
  Types.cell ->
  Types.cow_ref ->
  page:int -> writable:bool -> (Types.pfdat, Types.errno) result
val add_mapping :
  Types.process ->
  vpage:int ->
  lid:Types.logical_id -> Types.pfdat -> writable:bool -> unit
val fault :
  Types.system ->
  Types.process ->
  vpage:int -> write:bool -> (unit, Types.errno) result
val touch :
  Types.system ->
  Types.process ->
  vpage:int -> write:bool -> (unit, Types.errno) result
val write_word :
  Types.system ->
  Types.process ->
  vpage:int -> offset:int -> int64 -> (unit, Types.errno) result
val read_word :
  Types.system ->
  Types.process ->
  vpage:int -> offset:int -> (int64, Types.errno) result
val unmap_all : Types.system -> Types.process -> unit

(** Pre-barrier-1 recovery step. [dead] names the round's confirmed-dead
    cells: clean, generation-matched, never-write-granted file imports
    from a dead home whose memory banks still answer reads are copied
    into local frames ("salvaged", served read-only until the home
    reintegrates) instead of discarded. *)
val flush_remote_bindings :
  ?dead:Types.cell_id list -> Types.system -> Types.cell -> unit
val preemptive_discard :
  Types.system -> Types.cell -> dead:Types.cell_id list -> int
val registered : bool ref
val register_handlers : unit -> unit
