(* Tests for the two previously-untested policy modules.

   Wax: the resource-policy process spans every cell, with its coordinator
   thread on the lowest live cell. When that cell fails, the whole span
   dies (Wax uses all cells' resources) and recovery forks a fresh
   incarnation whose span covers — and whose coordinator is owned by — the
   new live set.

   Swap: anonymous pages round-trip through the per-cell swap partition,
   and a frame that was remotely writable before swap-out comes back with
   its firewall grants revoked. *)

let test_wax_span_ownership_transfer_across_failure () =
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = 4; mem_pages_per_node = 512 }
  in
  let params =
    { Hive.Params.default with Hive.Params.auto_reintegrate = false }
  in
  let sys = Hive.System.boot ~mcfg ~params ~ncells:4 ~wax:true eng in
  Sim.Engine.run ~until:500_000_000L eng;
  Alcotest.(check int) "one incarnation" 1 sys.Hive.Types.wax_incarnation;
  (* Fail cell 0 — the span's coordinator/owner cell. *)
  Hive.System.inject_node_failure sys 0;
  let restarted =
    Hive.System.run_until sys ~deadline:5_000_000_000L (fun () ->
        sys.Hive.Types.wax_incarnation >= 2
        && not sys.Hive.Types.recovery_in_progress)
  in
  Alcotest.(check bool) "new incarnation after owner-cell failure" true
    restarted;
  (* The new span covers exactly the surviving cells. *)
  Alcotest.(check int) "one thread per surviving cell" 3
    (List.length sys.Hive.Types.wax_threads);
  List.iter
    (fun (t : Sim.Engine.thread) ->
      Alcotest.(check bool)
        (Printf.sprintf "thread %S belongs to incarnation 2" t.Sim.Engine.name)
        true
        (String.length t.Sim.Engine.name > 4
        && String.sub t.Sim.Engine.name 0 4 = "wax2"))
    sys.Hive.Types.wax_threads;
  (* Let the re-elected coordinator (now cell 1) run policy passes: its
     hints must reach the survivors and must never name the dead cell. *)
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 1_000_000_000L) eng;
  List.iter
    (fun id ->
      let c = sys.Hive.Types.cells.(id) in
      Alcotest.(check bool)
        (Printf.sprintf "cell %d received post-transfer hints" id)
        true
        (c.Hive.Types.alloc_preference <> []);
      Alcotest.(check bool)
        (Printf.sprintf "cell %d hints exclude the dead cell" id)
        false
        (List.mem 0 c.Hive.Types.alloc_preference))
    [ 1; 2; 3 ]

let test_swap_roundtrip_preserves_contents_under_revocation () =
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = 2; mem_pages_per_node = 512 }
  in
  let sys = Hive.System.boot ~mcfg ~ncells:2 ~wax:false eng in
  let npages = 3 in
  let word vp = Int64.of_int ((vp * 1_000_003) + 7) in
  let swapped = ref 0 in
  let back = ref [] in
  let pfns_before = ref [] in
  let p =
    Hive.Process.spawn sys sys.Hive.Types.cells.(0) ~name:"swapper"
      (fun sys p ->
        let r = Hive.Syscall.mmap_anon sys p ~npages in
        let vp0 = r.Hive.Types.start_page in
        for i = 0 to npages - 1 do
          Hive.Syscall.write_word sys p ~vpage:(vp0 + i) ~offset:0
            (word (vp0 + i))
        done;
        (* A remote child imports the pages, so their frames become
           remotely writable through the firewall. *)
        let child =
          Hive.Syscall.fork sys p ~on_cell:1 ~name:"remote-reader"
            (fun sys c ->
              for i = 0 to npages - 1 do
                ignore (Hive.Syscall.read_word sys c ~vpage:(vp0 + i) ~offset:0)
              done)
        in
        ignore (Hive.Syscall.wait sys p child);
        (* Let the reaper release the child's imports (revocation). *)
        Hive.Syscall.compute sys p 100_000_000L;
        (* Fork dropped the parent's writable mappings (COW); touch the
           pages so they re-fault into the mapping table the swapper
           walks. *)
        for i = 0 to npages - 1 do
          ignore (Hive.Syscall.read_word sys p ~vpage:(vp0 + i) ~offset:0)
        done;
        Hashtbl.iter
          (fun _ (m : Hive.Types.mapping) ->
            pfns_before := m.Hive.Types.map_pf.Hive.Types.pfn :: !pfns_before)
          p.Hive.Types.mappings;
        swapped := Hive.Swap.swap_out_process sys p;
        (* Faulting the pages back in must restore the exact contents. *)
        for i = 0 to npages - 1 do
          back :=
            ( Hive.Syscall.read_word sys p ~vpage:(vp0 + i) ~offset:0,
              word (vp0 + i) )
            :: !back
        done)
  in
  let ok =
    Hive.System.run_until_processes_done sys ~deadline:120_000_000_000L [ p ]
  in
  Alcotest.(check bool) "process finished" true ok;
  Alcotest.(check bool) "at least one page swapped out" true (!swapped > 0);
  List.iter
    (fun (got, want) ->
      Alcotest.(check int64) "round-trip preserves word" want got)
    !back;
  (* The old frames were freed by swap-out; none may retain a firewall
     grant to cell 1 (proc 1) — revocation must survive the round-trip. *)
  let fw = Flash.Machine.firewall sys.Hive.Types.machine in
  List.iter
    (fun pfn ->
      Alcotest.(check bool)
        (Printf.sprintf "pfn %d holds no stale remote grant" pfn)
        false
        (Flash.Firewall.allowed fw ~pfn ~proc:1))
    !pfns_before;
  Alcotest.(check int) "swap table drained by faults" 0
    (Hive.Swap.swapped_pages sys.Hive.Types.cells.(0))

let suite =
  [
    Alcotest.test_case "wax span ownership transfers across cell failure"
      `Quick test_wax_span_ownership_transfer_across_failure;
    Alcotest.test_case "swap round-trip preserves contents, grants revoked"
      `Quick test_swap_roundtrip_preserves_contents_under_revocation;
  ]
