lib/hive/recovery.mli: Types
