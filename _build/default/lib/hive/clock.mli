(** Clock monitoring (Sections 4.1 and 4.3).

   Each cell increments a published clock word on every clock interrupt.
   The clock handler also checks another cell's clock value on every tick
   (under the careful reference protocol): a value that fails to increment
   for consecutive ticks, or a bus error reaching it, is a failure hint.
   This detects hardware failures that halt processors but not entire
   nodes, as well as kernel deadlocks and interrupt losses. *)

val clock_value : Types.system -> Types.cell -> int64
val read_peer_clock :
  Types.system ->
  Types.cell ->
  target:Types.cell_id ->
  (int64, Careful_ref.failure_reason) result
val monitored_peer : Types.cell -> Types.cell_id option
val hint :
  Types.system ->
  Types.cell -> Types.cell_id -> string -> unit
val start : Types.system -> Types.cell -> unit
