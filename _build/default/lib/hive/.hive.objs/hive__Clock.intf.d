lib/hive/clock.mli: Careful_ref Types
