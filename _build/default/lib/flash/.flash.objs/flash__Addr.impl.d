lib/flash/addr.ml: Config Format
