(* Benchmark driver. Three modes:

     main [--quick] [SECTION...]     paper-reproduction sections (Bench.Sections)
     main sweep [OPTIONS]            dimensional scenario sweep (Bench.Sweep)
     main diff [OPTIONS]             regression gate vs a committed trajectory

   Sections print paper-vs-measured rows; the sweep emits one deterministic
   BENCH_<area>.json per area; diff compares two sweep directories and exits
   non-zero past the regression threshold. *)

let usage () =
  prerr_endline
    "usage: main [--quick] [SECTION...]\n\
    \       main sweep [--quick] [--areas A,B] [--out-dir DIR]\n\
    \       main diff --baseline DIR --fresh DIR [--threshold PCT]\n\n\
     sections:";
  List.iter (fun n -> Printf.eprintf "  %s\n" n) Bench.Sections.names;
  Bench.Scenarios.register ();
  Printf.eprintf "\nsweep areas: %s\n"
    (String.concat ", " (Bench.Scenario.areas ()));
  2

let run_sections args =
  let quick = List.mem "--quick" args in
  let args = List.filter (fun a -> a <> "--quick") args in
  let unknown = ref false in
  let chosen =
    if args = [] then Bench.Sections.all
    else
      List.filter_map
        (fun a ->
          match Bench.Sections.find a with
          | Some f -> Some (a, f)
          | None ->
            Printf.eprintf "unknown section %s (see --help)\n" a;
            unknown := true;
            None)
        args
  in
  if !unknown then 2
  else begin
    Printf.printf
      "Hive reproduction benchmarks (simulated FLASH, four 200-MHz \
       processors)\n";
    List.iter (fun (_, f) -> f ~quick) chosen;
    Printf.printf "\nDone.\n";
    0
  end

let run_sweep args =
  let quick = ref false in
  let areas = ref None in
  let out_dir = ref None in
  let rec parse = function
    | [] -> Ok ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--areas" :: v :: rest ->
      areas := Some (String.split_on_char ',' v);
      parse rest
    | "--out-dir" :: v :: rest ->
      out_dir := Some v;
      parse rest
    | a :: _ -> Error a
  in
  match parse args with
  | Error a ->
    Printf.eprintf "sweep: unexpected argument %s\n" a;
    2
  | Ok () ->
    Bench.Scenarios.register ();
    let known = Bench.Scenario.areas () in
    let bad =
      match !areas with
      | None -> []
      | Some l -> List.filter (fun a -> not (List.mem a known)) l
    in
    if bad <> [] then begin
      Printf.eprintf "sweep: unknown area(s) %s (have: %s)\n"
        (String.concat ", " bad)
        (String.concat ", " known);
      2
    end
    else begin
      let reports = Bench.Sweep.run ?areas:!areas ~quick:!quick () in
      (match !out_dir with
      | None -> ()
      | Some dir ->
        let written = Bench.Sweep.write_dir ~dir reports in
        List.iter (fun p -> Printf.printf "wrote %s\n" p) written);
      0
    end

let run_diff args =
  let baseline = ref None in
  let fresh = ref None in
  let threshold = ref Bench.Diff.default_threshold in
  let rec parse = function
    | [] -> Ok ()
    | "--baseline" :: v :: rest ->
      baseline := Some v;
      parse rest
    | "--fresh" :: v :: rest ->
      fresh := Some v;
      parse rest
    | "--threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t > 0. ->
        threshold := t /. 100.;
        parse rest
      | _ -> Error ("--threshold " ^ v))
    | a :: _ -> Error a
  in
  match (parse args, !baseline, !fresh) with
  | Error a, _, _ ->
    Printf.eprintf "diff: bad argument %s\n" a;
    2
  | Ok (), Some baseline_dir, Some fresh_dir ->
    Bench.Diff.run_dirs ~threshold:!threshold ~baseline_dir ~fresh_dir ()
  | Ok (), _, _ ->
    prerr_endline "diff: both --baseline DIR and --fresh DIR are required";
    2

let () =
  match List.tl (Array.to_list Sys.argv) with
  | "--help" :: _ | "-h" :: _ -> exit (usage ())
  | "sweep" :: rest -> exit (run_sweep rest)
  | "diff" :: rest -> exit (run_diff rest)
  | rest -> exit (run_sections rest)
