(* Deterministic simulation fuzzer.

   One 64-bit seed derives everything about a run: the machine shape, the
   workload and its scaled-down configuration, the scheduler-jitter
   stream, and a randomized fault schedule. The engine itself is
   deterministic, so the seed is the complete reproducer: replaying it
   gives the same virtual-time history bit for bit, and a failing seed can
   be shrunk by re-running simplified plans.

   Independent PRNG streams are salted from the seed so that, e.g.,
   dropping a fault during shrinking does not perturb the jitter draws. *)

type workload = Pmake | Ocean | Raytrace

type traffic = {
  t_rate : int; (* system-wide arrival rate, requests/s *)
  t_zipf_pct : int; (* Zipf s x100; 0 = uniform *)
  t_churn_pct : int;
  t_deadline_ms : int; (* end-to-end client budget *)
}

type plan = {
  seed : int64;
  ncells : int;
  nodes_per_cell : int;
  mem_pages_per_node : int;
  workload : workload;
  jitter : bool;
  faults : Campaign.fault list;
  traffic : traffic option;
      (* when set, interactive server traffic replaces the batch workload;
         the fault schedule above still applies mid-traffic *)
}

type record = {
  r_seed : int64;
  r_plan : string;
  r_injected : string list;
  r_completed : bool;
  r_violations : string list;
  r_survivors : int list;
  r_sim_ns : int64;
  r_events : int;
      (* events the engine scheduled: deterministic work measure *)
}

let jitter_salt = 0x94D049BB133111EBL
let inject_salt = 0xBF58476D1CE4E5B9L
let cfg_salt = 0x9E3779B97F4A7C15L
let link_salt = 0xD6E8FEB86659FD93L
let dup_salt = 0xC2B2AE3D27D4EB4FL
let part_salt = 0x2545F4914F6CDD1DL
let cpu_salt = 0xDA942042E4DD58B5L
let traffic_salt = 0xA0761D6478BD642FL

let ms n = Int64.mul (Int64.of_int n) 1_000_000L

let workload_name = function
  | Pmake -> "pmake"
  | Ocean -> "ocean"
  | Raytrace -> "raytrace"

let fault_desc f =
  Printf.sprintf "%s @ %Ldms" (Campaign.describe f)
    (Int64.div (Campaign.fault_time f) 1_000_000L)

let plan_of_seed seed =
  let rng = Sim.Prng.of_int64 seed in
  let pick arr = arr.(Sim.Prng.int rng (Array.length arr)) in
  let ncells = pick [| 2; 2; 3; 4 |] in
  let nodes_per_cell = pick [| 1; 1; 2 |] in
  let mem_pages_per_node = pick [| 1024; 2048 |] in
  let workload = pick [| Pmake; Pmake; Ocean; Raytrace |] in
  let jitter = Sim.Prng.int rng 4 < 3 in
  let nfaults = pick [| 0; 1; 1; 1; 2; 2; 3 |] in
  (* Cell 0 hosts the workload drivers and the /tmp file server; faults
     target the other cells, which is where containment is interesting. *)
  let victim () = 1 + Sim.Prng.int rng (ncells - 1) in
  let mode () =
    Campaign.modes.(Sim.Prng.int rng (Array.length Campaign.modes))
  in
  let rec gen i prev_at acc =
    if i >= nfaults then List.rev acc
    else
      let at =
        if i > 0 && Sim.Prng.int rng 2 = 0 then
          (* Cascade: land a few ms after the previous fault, while its
             recovery round is likely between the two barriers. *)
          Int64.add prev_at (ms (2 + Sim.Prng.int rng 28))
        else ms (30 + Sim.Prng.int rng 1170)
      in
      let f =
        match Sim.Prng.int rng 4 with
        | 0 | 1 ->
          let vc = victim () in
          let node = (vc * nodes_per_cell) + Sim.Prng.int rng nodes_per_cell in
          Campaign.Node_failure { node; at_ns = at }
        | 2 ->
          Campaign.Corrupt_map
            { victim_cell = victim (); at_ns = at; mode = mode () }
        | _ ->
          Campaign.Corrupt_cow
            { victim_cell = victim (); at_ns = at; mode = mode () }
      in
      gen (i + 1) at (f :: acc)
  in
  let faults =
    gen 0 0L []
    |> List.stable_sort (fun a b ->
           Int64.compare (Campaign.fault_time a) (Campaign.fault_time b))
  in
  (* Link-degradation windows come from their own salted stream, appended
     after every draw above, so pre-existing seeds keep their exact
     machine shape, workload and fault schedule and merely gain some
     interconnect weather. When the plan already has faults, about half
     the windows are anchored just after the last one so degraded links
     overlap its recovery round. *)
  let lrng = Sim.Prng.of_int64 (Int64.logxor seed link_salt) in
  let nlinks = [| 0; 0; 0; 1; 1; 2 |].(Sim.Prng.int lrng 6) in
  let last_main =
    List.fold_left (fun acc f -> max acc (Campaign.fault_time f)) 0L faults
  in
  let gen_link _ =
    let at =
      if faults <> [] && Sim.Prng.int lrng 2 = 0 then
        Int64.add last_main (ms (2 + Sim.Prng.int lrng 40))
      else ms (30 + Sim.Prng.int lrng 1170)
    in
    (* Target a non-driver cell's boss node, where its RPC traffic lands;
       a third of the windows pin a single source processor. *)
    let deg_to = (1 + Sim.Prng.int lrng (ncells - 1)) * nodes_per_cell in
    let deg_from =
      if Sim.Prng.int lrng 3 = 0 then
        Sim.Prng.int lrng (ncells * nodes_per_cell)
      else -1
    in
    Campaign.Link_degrade
      {
        deg_from;
        deg_to;
        at_ns = at;
        dur_ns = ms (50 + Sim.Prng.int lrng 350);
        drop_pct = Sim.Prng.int lrng 61;
        dup_pct = Sim.Prng.int lrng 41;
        delay_pct = Sim.Prng.int lrng 51;
        max_delay_ns = Int64.of_int (200_000 + Sim.Prng.int lrng 1_800_000);
        salt = Sim.Prng.next lrng;
      }
  in
  let faults =
    faults @ List.init nlinks gen_link
    |> List.stable_sort (fun a b ->
           Int64.compare (Campaign.fault_time a) (Campaign.fault_time b))
  in
  (* CPU-death and partition faults come from two more salted streams,
     appended after the link stream for the same reason: pre-existing
     seeds keep their exact plans and merely gain the new fault kinds.
     A partition only makes sense when the cells outside it can still
     muster a strict majority of the pre-fault live set — otherwise both
     sides correctly stand down (safety over liveness) and nobody is left
     to reintegrate anyone, which is a 2-cell even-split limitation of
     the protocol, not a bug the fuzzer should report. So: at least 3
     cells, and few enough other cell-killing faults that the majority
     side keeps its quorum. *)
  let crng = Sim.Prng.of_int64 (Int64.logxor seed cpu_salt) in
  let ncpu = [| 0; 0; 0; 0; 1 |].(Sim.Prng.int crng 5) in
  let gen_cpu _ =
    let vc = 1 + Sim.Prng.int crng (ncells - 1) in
    Campaign.Cpu_dead_mem_alive
      {
        node = (vc * nodes_per_cell) + Sim.Prng.int crng nodes_per_cell;
        at_ns = ms (30 + Sim.Prng.int crng 1170);
      }
  in
  let cpu_faults = List.init ncpu gen_cpu in
  let killers =
    List.length cpu_faults
    + List.length (List.filter Campaign.corrupts_cell faults)
  in
  let prng = Sim.Prng.of_int64 (Int64.logxor seed part_salt) in
  let nparts =
    if ncells >= 3 && killers <= ncells - 3 then
      [| 0; 0; 0; 1; 1 |].(Sim.Prng.int prng 5)
    else 0
  in
  let gen_part _ =
    Campaign.Partition
      {
        part_cell = 1 + Sim.Prng.int prng (ncells - 1);
        at_ns = ms (60 + Sim.Prng.int prng 900);
        dur_ns = ms (120 + Sim.Prng.int prng 280);
        one_way = Sim.Prng.int prng 3 = 0;
      }
  in
  let faults =
    faults @ cpu_faults @ List.init nparts gen_part
    |> List.stable_sort (fun a b ->
           Int64.compare (Campaign.fault_time a) (Campaign.fault_time b))
  in
  (* Interactive traffic from its own salted stream, appended after every
     draw above: a quarter of the seeds run the server workload (under
     the same fault schedule) instead of a batch workload, and the other
     seeds keep byte-identical plans. *)
  let trng = Sim.Prng.of_int64 (Int64.logxor seed traffic_salt) in
  let traffic =
    if Sim.Prng.int trng 4 = 0 then
      Some
        {
          t_rate = 40 + (20 * Sim.Prng.int trng 7);
          t_zipf_pct = [| 0; 80; 110; 140 |].(Sim.Prng.int trng 4);
          t_churn_pct = 5 * Sim.Prng.int trng 5;
          t_deadline_ms = 150 + (50 * Sim.Prng.int trng 4);
        }
    else None
  in
  { seed; ncells; nodes_per_cell; mem_pages_per_node; workload; jitter;
    faults; traffic }

let describe_plan p =
  Printf.sprintf "seed=0x%Lx cells=%dx%d mem=%d wl=%s jitter=%s faults=[%s]%s"
    p.seed p.ncells p.nodes_per_cell p.mem_pages_per_node
    (workload_name p.workload)
    (if p.jitter then "on" else "off")
    (String.concat "; " (List.map fault_desc p.faults))
    (match p.traffic with
    | None -> ""
    | Some t ->
      Printf.sprintf " traffic=[rate=%d zipf=%d%% churn=%d%% deadline=%dms]"
        t.t_rate t.t_zipf_pct t.t_churn_pct t.t_deadline_ms)

(* Workload configurations are scaled down from the paper's Table 7.1
   sizes so a single fuzz run takes a fraction of a second of wall time.
   Derived from a salted stream independent of the fault draws, and from
   the plan's fixed shape only, so shrinking a plan never changes the
   workload. *)

type wcfg =
  | Cfg_pmake of Workloads.Pmake.cfg
  | Cfg_ocean of Workloads.Ocean.cfg
  | Cfg_raytrace of Workloads.Raytrace.cfg
  | Cfg_server of Workloads.Server.cfg

let cfg_of_plan p =
  let rng = Sim.Prng.of_int64 (Int64.logxor p.seed cfg_salt) in
  let r n = Sim.Prng.int rng n in
  match p.traffic with
  | Some t ->
    (* Scaled down like the batch configs: ~1.2 s of traffic so the
       plan's 30ms..1.2s fault schedule lands mid-stream. Faults come
       from the plan's injector, not from the workload's own knob. *)
    Cfg_server
      {
        Workloads.Server.default with
        Workloads.Server.duration_ms = 1_200;
        rate_rps = float_of_int t.t_rate;
        zipf_s = float_of_int t.t_zipf_pct /. 100.;
        nfiles = 32;
        churn_pct = t.t_churn_pct;
        deadline_ms = t.t_deadline_ms;
        fault = None;
        seed = p.seed;
      }
  | None -> (
    match p.workload with
  | Pmake ->
    Cfg_pmake
      {
        Workloads.Pmake.files = 3 + r 4;
        jobs = 2 + r 2;
        src_bytes = 16_384;
        hdr_bytes = 65_536;
        cc_bytes = 131_072;
        intermediate_bytes = 32_768;
        obj_bytes = 8_192;
        anon_pages = 48 + r 32;
        include_searches = 60;
        cpp_ns = ms 60;
        cc1_ns = ms 160;
        as_ns = ms 60;
        link_ns = ms 80;
      }
  | Ocean ->
    Cfg_ocean
      {
        Workloads.Ocean.workers = p.ncells;
        chunk_pages = 40 + r 41;
        boundary_words = 64;
        steps = 3 + r 3;
        step_compute_ns = ms 200;
        init_compute_ns = ms 100;
      }
    | Raytrace ->
      Cfg_raytrace
        {
          Workloads.Raytrace.workers = 2 + r 3;
          scene_pages = 32 + r 33;
          tile_pages = 8;
          compute_ns = ms 600;
          build_ns = ms 100;
        })

let setup_workload sys = function
  | Cfg_pmake c -> Workloads.Pmake.setup sys c
  | Cfg_ocean c -> Workloads.Ocean.setup sys c
  | Cfg_raytrace _ -> ()  (* the driver builds the scene itself *)
  | Cfg_server _ -> ()  (* run creates its own /srv tree *)

let run_workload sys = function
  | Cfg_pmake c -> fst (Workloads.Pmake.run ~cfg:c sys)
  | Cfg_ocean c -> fst (Workloads.Ocean.run ~cfg:c sys)
  | Cfg_raytrace c -> fst (Workloads.Raytrace.run ~cfg:c sys)
  | Cfg_server c -> fst (Workloads.Server.run ~cfg:c sys)

let verify_workload sys = function
  | Cfg_pmake c -> Workloads.Pmake.verify ~cfg:c sys
  | Cfg_ocean c -> Workloads.Ocean.verify ~cfg:c sys
  | Cfg_raytrace c -> Workloads.Raytrace.verify ~cfg:c sys
  | Cfg_server _ ->
    (* Reads have no output files; correctness on a clean run is the
       driver completing with zero traffic-thread errors, which
       [run] already folds into [completed]. *)
    []

(* Post-episode correctness check (Section 7.4's "check run"): a tiny
   pmake across the surviving cells whose outputs must be exact. *)
let check_cfg =
  {
    Workloads.Pmake.files = 2;
    jobs = 2;
    src_bytes = 8_192;
    hdr_bytes = 16_384;
    cc_bytes = 32_768;
    intermediate_bytes = 8_192;
    obj_bytes = 4_096;
    anon_pages = 16;
    include_searches = 12;
    cpp_ns = ms 20;
    cc1_ns = ms 50;
    as_ns = ms 20;
    link_ns = ms 30;
  }

let quiesce_deadline_ns = 10_000_000_000L

let run_plan ?(demo_bug = false) ?(dup_bug = false) ?(split_brain = false)
    ?trace_out ?metrics_out plan =
  let eng = Sim.Engine.create () in
  let nodes = plan.ncells * plan.nodes_per_cell in
  let mcfg =
    {
      Flash.Config.default with
      Flash.Config.nodes;
      mem_pages_per_node = plan.mem_pages_per_node;
    }
  in
  (* Planted transport bug (part 1): boot the system with the servers'
     reply caches off, so retransmitted requests really execute twice.
     Planted split-brain bug (part 1): boot with the agreement quorum
     check off, reverting to the historical "silence is a death vote"
     confirmation rule. *)
  let params =
    let p =
      if dup_bug then
        { Hive.Params.default with Hive.Params.rpc_dup_suppression = false }
      else Hive.Params.default
    in
    if split_brain then
      { p with Hive.Params.agreement_quorum_check = false }
    else p
  in
  let sys = Hive.System.boot ~mcfg ~params ~ncells:plan.ncells ~wax:true eng in
  let close_trace =
    match trace_out with
    | None -> fun () -> ()
    | Some path ->
      let sink, close = Sim.Event.chrome_file path in
      Sim.Event.attach sys.Hive.Types.events sink;
      close
  in
  (* Jitter starts only after boot so every plan boots through the same
     canonical event order; divergence comes from the plan alone. *)
  if plan.jitter then
    Sim.Engine.set_jitter eng
      (Some (Sim.Prng.of_int64 (Int64.logxor plan.seed jitter_salt)));
  let inject_rng = Sim.Prng.of_int64 (Int64.logxor plan.seed inject_salt) in
  (* Planted transport bug (part 2): arm a duplication-heavy machine-wide
     window over the whole run. With the reply caches off (see boot
     params), duplicated requests really execute twice, and the
     at-most-once checker must say so. *)
  if dup_bug then begin
    Flash.Sips.degrade
      (Flash.Machine.sips sys.Hive.Types.machine)
      ~rng:(Sim.Prng.of_int64 (Int64.logxor plan.seed dup_salt))
      {
        Flash.Sips.deg_from = -1;
        deg_to = -1;
        from_ns = 0L;
        until_ns = Int64.max_int;
        drop_pct = 0;
        dup_pct = 80;
        delay_pct = 25;
        max_delay_ns = 2_000_000L;
      }
  end;
  (* Planted split-brain bug (part 2): sever cell 0 from the rest of the
     machine mid-run and never heal. Under the historical confirmation
     rule (see boot params) each side of the blackout confirms the other
     dead and elects its own recovery master; the continuously-latched
     single-master oracle must catch the overlap. *)
  if split_brain then begin
    let sips = Flash.Machine.sips sys.Hive.Types.machine in
    let inside = sys.Hive.Types.cells.(0).Hive.Types.cell_nodes in
    let outside =
      Array.to_list sys.Hive.Types.cells
      |> List.concat_map (fun (c : Hive.Types.cell) ->
             if c.Hive.Types.cell_id = 0 then []
             else c.Hive.Types.cell_nodes)
    in
    List.iter
      (fun inner ->
        List.iter
          (fun outer ->
            Flash.Sips.partition sips
              { Flash.Sips.part_from = outer; part_to = inner;
                part_from_ns = 400_000_000L; part_until_ns = Int64.max_int };
            Flash.Sips.partition sips
              { Flash.Sips.part_from = inner; part_to = outer;
                part_from_ns = 400_000_000L; part_until_ns = Int64.max_int })
          outside)
      inside
  end;
  let cfg = cfg_of_plan plan in
  let injected = ref [] and exempt = ref [] in
  let violations = ref [] in
  let vio inv detail =
    violations := Printf.sprintf "%s: %s" inv detail :: !violations
  in
  let completed = ref false in
  (try
     setup_workload sys cfg;
     ignore
       (Sim.Engine.spawn eng ~name:"fuzz.injector" (fun () ->
            List.iter
              (fun f ->
                let at = Campaign.fault_time f in
                let now = Sim.Engine.time () in
                if Int64.compare at now > 0 then
                  Sim.Engine.delay (Int64.sub at now);
                (* Retry until a suitable victim exists (corruption faults
                   need a process with an anonymous region). *)
                let rec attempt tries =
                  match Campaign.inject sys inject_rng f with
                  | Some cell ->
                    injected :=
                      Printf.sprintf "%s -> cell %d" (fault_desc f) cell
                      :: !injected;
                    (* Link degradation leaves every kernel coherent, so
                       its "victim" cell stays subject to full checking. *)
                    if
                      Campaign.corrupts_cell f
                      && not (List.mem cell !exempt)
                    then exempt := cell :: !exempt
                  | None ->
                    if tries > 0 then begin
                      Sim.Engine.delay 20_000_000L;
                      attempt (tries - 1)
                    end
                in
                attempt 50)
              plan.faults));
     let result = run_workload sys cfg in
     completed := result.Workloads.Workload.completed;
     (* Let every scheduled fault — and the injector's retry window —
        land before judging the end state. *)
     let last_fault =
       List.fold_left
         (fun acc f -> max acc (Campaign.fault_time f))
         0L plan.faults
     in
     let horizon = Int64.add last_fault 1_200_000_000L in
     if Int64.compare (Hive.System.now eng) horizon < 0 then
       ignore (Hive.System.run_until sys ~deadline:horizon (fun () -> false));
     let quiesced () =
       (not sys.Hive.Types.recovery_in_progress)
       && Array.for_all Hive.Types.cell_alive sys.Hive.Types.cells
     in
     let wait_quiesce what =
       if
         not
           (Hive.System.run_until sys
              ~deadline:(Int64.add (Hive.System.now eng) quiesce_deadline_ns)
              quiesced)
       then vio "quiesce" (what ^ ": recovery/reintegration did not settle")
     in
     wait_quiesce "post-fault";
     (* Workload outputs must be complete and exact on a fault-free run.
        On a faulted run the application itself is not fault-tolerant —
        a killed worker or a corrupted victim process feeds garbage into
        outputs through perfectly legitimate writes — so exactness of the
        faulted run's outputs proves nothing about the OS; the binding
        oracle there is the post-recovery check run below. *)
     let clean = !injected = [] in
     if clean then
       List.iter
         (fun (path, v) ->
           if v <> Workloads.Workload.Match then
             vio "workload-output"
               (Printf.sprintf "%s: %s on a fault-free run" path
                  (Workloads.Workload.verify_outcome_to_string v)))
         (verify_workload sys cfg);
     if clean && not !completed then
       vio "workload-output" "driver did not complete on a fault-free run";
     if not clean then begin
       Workloads.Pmake.setup sys check_cfg;
       let cres = fst (Workloads.Pmake.run ~cfg:check_cfg sys) in
       (* A corruption planted earlier may only trip a panic here, when
          the check run touches the damaged structure. *)
       wait_quiesce "check-run";
       if not cres.Workloads.Workload.completed then
         vio "check-run" "post-fault pmake check did not complete";
       List.iter
         (fun (path, v) ->
           if v <> Workloads.Workload.Match then
             vio "check-run"
               (Printf.sprintf "%s: %s" path
                  (Workloads.Workload.verify_outcome_to_string v)))
         (Workloads.Pmake.verify ~cfg:check_cfg sys)
     end;
     (* RPC no-orphan: snapshot outstanding calls, advance past the full
        retransmission schedule (a worst-case call burns every retry:
        (1 + rpc_max_retries) timeouts plus the backoff gaps), and demand
        every one of them completed. *)
     let snap = Hive.Invariants.rpc_snapshot sys in
     ignore
       (Hive.System.run_until sys
          ~deadline:(Int64.add (Hive.System.now eng) 2_000_000_000L)
          (fun () -> false));
     List.iter
       (fun v -> vio v.Hive.Invariants.inv v.Hive.Invariants.detail)
       (Hive.Invariants.check_rpc_drained sys ~snapshot:snap);
     (* The planted containment bug: a hardware grant the kernel never
        recorded, on a kernel-reserve page cell 0 never exports. The
        firewall/pfdat agreement checker must flag it. *)
     if demo_bug && !exempt <> [] then begin
       let victim = sys.Hive.Types.cells.(List.hd !exempt) in
       let c0 = sys.Hive.Types.cells.(0) in
       let pfn = Flash.Addr.first_pfn_of_node mcfg c0.Hive.Types.boss_node + 2 in
       Flash.Firewall.grant_many
         (Flash.Machine.firewall sys.Hive.Types.machine)
         ~by:c0.Hive.Types.boss_node ~pfn victim.Hive.Types.cell_nodes
     end;
     List.iter
       (fun v -> vio v.Hive.Invariants.inv v.Hive.Invariants.detail)
       (Hive.Invariants.check ~exempt:!exempt sys)
   with
  | Sim.Engine.Deadlock msg -> vio "deadlock" msg
  | e -> vio "exception" (Printexc.to_string e));
  close_trace ();
  Option.iter (fun path -> Hive.Metrics.write_file sys path) metrics_out;
  {
    r_seed = plan.seed;
    r_plan = describe_plan plan;
    r_injected = List.rev !injected;
    r_completed = !completed;
    r_violations = List.rev !violations;
    r_survivors = Hive.System.live_cells sys;
    r_sim_ns = Hive.System.now eng;
    r_events = Sim.Engine.events_scheduled eng;
  }

let failed r = r.r_violations <> []

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_strings xs =
  String.concat "," (List.map (fun s -> "\"" ^ json_escape s ^ "\"") xs)

let record_to_json r =
  Printf.sprintf
    {|{"seed":"0x%Lx","plan":"%s","injected":[%s],"completed":%b,"violations":[%s],"survivors":[%s],"sim_ns":%Ld,"events":%d}|}
    r.r_seed (json_escape r.r_plan) (json_strings r.r_injected) r.r_completed
    (json_strings r.r_violations)
    (String.concat "," (List.map string_of_int r.r_survivors))
    r.r_sim_ns r.r_events

(* Shrinking: greedily apply the first simplification that still fails —
   dropping a fault, disabling jitter, rounding fault times to a coarse
   grain — until a fixpoint (or a run budget, since each probe is a full
   simulation). *)

let round_to grain at =
  let r = Int64.mul (Int64.div (Int64.add at (Int64.div grain 2L)) grain) grain in
  if Int64.compare r grain < 0 then grain else r

let round_fault grain = function
  | Campaign.Node_failure f ->
    Campaign.Node_failure { f with at_ns = round_to grain f.at_ns }
  | Campaign.Corrupt_map f ->
    Campaign.Corrupt_map { f with at_ns = round_to grain f.at_ns }
  | Campaign.Corrupt_cow f ->
    Campaign.Corrupt_cow { f with at_ns = round_to grain f.at_ns }
  | Campaign.Link_degrade f ->
    Campaign.Link_degrade { f with at_ns = round_to grain f.at_ns }
  | Campaign.Partition f ->
    Campaign.Partition { f with at_ns = round_to grain f.at_ns }
  | Campaign.Cpu_dead_mem_alive f ->
    Campaign.Cpu_dead_mem_alive { f with at_ns = round_to grain f.at_ns }

let shrink ?(demo_bug = false) ?(dup_bug = false) ?(split_brain = false) plan
    =
  let fails p =
    let r = run_plan ~demo_bug ~dup_bug ~split_brain p in
    if failed r then Some r else None
  in
  match fails plan with
  | None -> invalid_arg "Fuzz.shrink: plan does not fail"
  | Some r0 ->
    let drop l i = List.filteri (fun j _ -> j <> i) l in
    let candidates p =
      List.init (List.length p.faults) (fun i ->
          { p with faults = drop p.faults i })
      @ (match p.traffic with
        | Some _ -> [ { p with traffic = None } ]
        | None -> [])
      @ (if p.jitter then [ { p with jitter = false } ] else [])
      @ List.filter_map
          (fun grain ->
            let fs = List.map (round_fault grain) p.faults in
            if fs <> p.faults then Some { p with faults = fs } else None)
          [ 100_000_000L; 10_000_000L ]
    in
    let rec go p r budget =
      if budget = 0 then (p, r)
      else
        let rec first = function
          | [] -> None
          | c :: rest -> (
            match fails c with
            | Some rc -> Some (c, rc)
            | None -> first rest)
        in
        match first (candidates p) with
        | Some (p', r') -> go p' r' (budget - 1)
        | None -> (p, r)
    in
    go plan r0 40
