(** Deterministic discrete-event simulation engine.

    Simulated entities are cooperative green threads implemented with OCaml 5
    effect handlers; the engine advances a virtual nanosecond clock and runs
    events in deterministic [(time, sequence)] order. There is no wall-clock
    time and no OS concurrency anywhere: identical inputs give identical
    simulations.

    Threads block with {!delay} or {!suspend}; synchronization primitives
    ({!Ivar}, {!Mailbox}, {!Mutex}, ...) are built on {!suspend} and
    {!try_resume}.

    An engine is single-threaded by construction: it may only be driven by
    the OCaml domain that created it. {!run} and event scheduling raise
    [Invalid_argument] when called from any other domain. Parallel fuzz
    campaigns exploit this by giving each worker domain a private engine
    and sharing nothing between them. *)

(** Raised inside a thread when it is {!kill}ed, so that [Fun.protect]-style
    cleanup runs. *)
exception Killed

(** Raised by {!check_deadlock} when live threads remain but the event queue
    has drained. The message names every blocked thread: tid, name, and the
    suspend site recorded by the last {!suspend}/{!delay}. *)
exception Deadlock of string

(** Cancellable timer handle. *)
type timer

type thread = {
  tid : int;
  name : string;
  mutable dead : bool;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable timers : timer list;
  mutable on_exit : (unit -> unit) list;
  mutable site : string;
      (** Label of the last blocking point ("barrier.await", "rpc.call",
          ...); the Deadlock message quotes it for triage. *)
}

type t

val create : unit -> t

(** Current virtual time in nanoseconds. *)
val now : t -> int64

(** Tid of the thread the engine is currently executing, or 0 when called
    from outside any simulation thread. *)
val current_tid : t -> int

(** Replace the handler invoked when a thread raises an uncaught exception.
    The default re-raises, aborting the simulation loudly. *)
val set_crash_handler : t -> (thread -> exn -> unit) -> unit

(** Install (or clear) a scheduler-jitter generator. When set, the tie-break
    sequence number of newly scheduled events is perturbed with bits from
    the generator, so logically-concurrent events (same virtual time) may
    interleave differently across seeds while each seed stays exactly
    replayable. Events at different virtual times are never reordered. *)
val set_jitter : t -> Prng.t option -> unit

(** Schedule a callback at an absolute virtual time (clamped to now). *)
val schedule_at : t -> int64 -> (unit -> unit) -> timer

(** Schedule a callback after a relative delay. *)
val schedule : t -> after:int64 -> (unit -> unit) -> unit

(** Schedule a cancellable callback. *)
val timer : t -> after:int64 -> (unit -> unit) -> timer

(** Cancel a timer. Idempotent; a no-op on timers that already fired.
    Cancelled entries are reclaimed lazily: when they outnumber the live
    entries (beyond a small floor) the heap is compacted in one O(n)
    pass, so mass cancellation (thread kills, recovery aborts) cannot
    bloat the event queue until the dead deadlines drain. *)
val cancel : timer -> unit

(** Wake a suspended thread; [true] if this call captured its continuation,
    [false] if it had already been resumed (a waker losing a race must treat
    the wake as not delivered). *)
val try_resume : t -> thread -> bool

val resume : t -> thread -> unit

(** Attach a wake-up timer to a suspended thread (used to implement
    timeouts); cancelled automatically if another waker wins. Call only
    from within a {!suspend} registration. *)
val wake_after : t -> thread -> int64 -> unit

(** Kill a thread: it unwinds with {!Killed} at its next (or current)
    suspension point. *)
val kill : t -> thread -> unit

(** Start a new thread. [at] gives an absolute start time. *)
val spawn : ?name:string -> ?at:int64 option -> t -> (unit -> unit) -> thread

val spawn_at : t -> at:int64 -> ?name:string -> (unit -> unit) -> thread

(** {2 Thread-context operations (must be called from inside a thread)} *)

val self : unit -> thread

val time : unit -> int64

(** Block for a number of virtual nanoseconds. *)
val delay : int64 -> unit

val yield : unit -> unit

(** Low-level block: parks the current thread and passes it to [register],
    which stores it where a future waker can {!resume} it. [site] labels the
    blocking point for deadlock reports. *)
val suspend : ?site:string -> (thread -> unit) -> unit

(** Register a cleanup to run when the current thread exits (normally,
    by exception, or killed). *)
val at_exit_thread : (unit -> unit) -> unit

(** {2 Driving the simulation} *)

(** Run until the event queue empties, or until the given virtual time. *)
val run : ?until:int64 -> t -> unit

val run_until_quiescent : t -> unit

val live_threads : t -> int

val pending_events : t -> int

(** Virtual time of the earliest pending event, if any. Drivers use it to
    skip idle stretches of virtual time in one jump: between events no
    simulation state can change, so there is nothing to poll. *)
val next_event_time : t -> int64 option

(** Slots in the event-heap backing array; tests use it to assert that
    compaction and post-campaign shrinking actually release memory. *)
val queue_capacity : t -> int

(** Total events ever scheduled on this engine — a deterministic,
    wall-clock-free measure of simulation work (benches report
    events/s from it). *)
val events_scheduled : t -> int

(** Cancelled entries still occupying heap slots (drops to 0 after a
    compaction sweep or once they drain through the run loop). *)
val cancelled_pending : t -> int

(** Id of the domain that created this engine (the only domain allowed to
    drive it). *)
val owner_domain : t -> int

(** Live (not yet finished) threads, sorted by tid. After {!run} returns
    with an empty queue these are exactly the blocked threads. *)
val blocked_threads : t -> thread list

(** Raise {!Deadlock} — naming every blocked thread — if live threads remain
    but the event queue is empty, i.e. nothing can ever make progress.
    Call after {!run} returns; a no-op when the simulation quiesced
    cleanly or was merely stopped at [until]. *)
val check_deadlock : t -> unit
