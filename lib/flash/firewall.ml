exception Not_local_processor

(* Sparse per-node storage: almost every page of a node carries that
   node's boot-time default permission set (its owning cell's
   processors); only pages with outstanding remote grants differ. Each
   node therefore keeps one default set plus an exception table keyed by
   local page index. Boot is O(1) per node ([set_node_default]) instead
   of O(pages) vector stores, and the recovery scans
   ([pages_writable_by_mask], [remote_writable_pages]) walk only the
   exception table instead of every page of memory. *)
type node_perms = {
  mutable dflt : Procset.t;
  except : (int, Procset.t) Hashtbl.t; (* local page index -> vector *)
}

type t = {
  cfg : Config.t;
  perms : node_perms array;
  mutable changes : int; (* count of firewall status updates, for benches *)
  mutable notify :
    (pfn:Addr.pfn -> old_vec:Procset.t -> new_vec:Procset.t -> unit) option;
      (* observer invoked on every real permission-vector change *)
}

let create cfg =
  Config.validate cfg;
  {
    cfg;
    perms =
      Array.init cfg.Config.nodes (fun _ ->
          { dflt = Procset.empty; except = Hashtbl.create 16 });
    changes = 0;
    notify = None;
  }

let set_notify t f = t.notify <- Some f

let proc_mask procs = Procset.of_list procs

let vector t ~pfn =
  let np = t.perms.(Addr.node_of_pfn t.cfg pfn) in
  match Hashtbl.find_opt np.except (Addr.local_index t.cfg pfn) with
  | Some v -> v
  | None -> np.dflt

let allowed t ~pfn ~proc =
  let np = t.perms.(Addr.node_of_pfn t.cfg pfn) in
  match Hashtbl.find_opt np.except (Addr.local_index t.cfg pfn) with
  | Some v -> Procset.mem v proc
  | None -> Procset.mem np.dflt proc

let check_local t ~by ~pfn =
  (* Only the local processor can change the firewall bits for the memory
     of its node. *)
  if Addr.node_of_pfn t.cfg pfn <> by then raise Not_local_processor

let set_vector t ~by ~pfn v =
  check_local t ~by ~pfn;
  let np = t.perms.(Addr.node_of_pfn t.cfg pfn) in
  let i = Addr.local_index t.cfg pfn in
  let old =
    match Hashtbl.find_opt np.except i with Some o -> o | None -> np.dflt
  in
  if not (Procset.equal old v) then begin
    t.changes <- t.changes + 1;
    if Procset.equal v np.dflt then Hashtbl.remove np.except i
    else Hashtbl.replace np.except i v;
    match t.notify with
    | Some f -> f ~pfn ~old_vec:old ~new_vec:v
    | None -> ()
  end

(* Reset every page of [node] to permission set [v] in one operation: the
   boot/reboot path (grant the owning cell's processors everything,
   wiping any grants a previous incarnation handed out). Reported to the
   observer as a single change on the node's first page. *)
let set_node_default t ~by ~node v =
  if node <> by then raise Not_local_processor;
  let np = t.perms.(node) in
  let old = np.dflt in
  if not (Procset.equal old v) || Hashtbl.length np.except > 0 then begin
    t.changes <- t.changes + 1;
    np.dflt <- v;
    Hashtbl.reset np.except;
    match t.notify with
    | Some f ->
      f ~pfn:(Addr.first_pfn_of_node t.cfg node) ~old_vec:old ~new_vec:v
    | None -> ()
  end

let grant t ~by ~pfn ~proc =
  set_vector t ~by ~pfn (Procset.add (vector t ~pfn) proc)

let revoke t ~by ~pfn ~proc =
  set_vector t ~by ~pfn (Procset.remove (vector t ~pfn) proc)

let grant_many t ~by ~pfn procs =
  set_vector t ~by ~pfn
    (Procset.union (vector t ~pfn) (Procset.of_list procs))

let revoke_all_remote t ~by ~pfn =
  set_vector t ~by ~pfn (Procset.singleton by)

let clear t ~by ~pfn = set_vector t ~by ~pfn Procset.empty

let remote_writable_pages t ~node =
  let np = t.perms.(node) in
  let has_others v = not (Procset.is_empty (Procset.remove v node)) in
  let base =
    if has_others np.dflt then
      t.cfg.Config.mem_pages_per_node - Hashtbl.length np.except
    else 0
  in
  Hashtbl.fold
    (fun _ v acc -> if has_others v then acc + 1 else acc)
    np.except base

let pages_writable_by_mask t ~node ~mask =
  let np = t.perms.(node) in
  let base = Addr.first_pfn_of_node t.cfg node in
  if Procset.intersects np.dflt mask then begin
    (* Default matches: every page qualifies except non-matching
       exceptions (rare — only reachable when a mask names the node's own
       cell). *)
    let acc = ref [] in
    for i = t.cfg.Config.mem_pages_per_node - 1 downto 0 do
      let v =
        match Hashtbl.find_opt np.except i with
        | Some v -> v
        | None -> np.dflt
      in
      if Procset.intersects v mask then acc := (base + i) :: !acc
    done;
    !acc
  end
  else
    Hashtbl.fold
      (fun i v acc ->
        if Procset.intersects v mask then (base + i) :: acc else acc)
      np.except []
    |> List.sort compare

let writable_by t ~proc =
  let acc = ref [] in
  for node = t.cfg.Config.nodes - 1 downto 0 do
    acc :=
      pages_writable_by_mask t ~node ~mask:(Procset.singleton proc) @ !acc
  done;
  !acc

let change_count t = t.changes
