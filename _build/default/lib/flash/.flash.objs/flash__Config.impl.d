lib/flash/config.ml: Int64
