(** Cell panic: a kernel that detects internal corruption shuts itself down.

   The panic routine uses the FLASH memory-cutoff feature to stop
   servicing remote accesses to its nodes' memory, preventing the spread
   of potentially corrupt data (Table 8.1); all kernel and user threads of
   the cell are killed. Peers notice the silence through clock monitoring
   or bus errors and run distributed agreement. *)

val panic : Types.system -> Types.cell -> string -> unit
exception Kernel_corruption of string
val kernel_bad_reference :
  Types.system -> Types.cell -> string -> 'a
