(* ocean: the Splash-2 scientific simulation (130x130 grid, 900-second
   interval), characteristic of supercomputer use (Table 7.1).

   Each worker owns a chunk of the write-shared global data segment,
   placed on its own cell (chunk files homed per cell), and writes
   boundary rows into its neighbours' chunks every step — so on a
   multicell system a large fraction of the data segment is remotely
   writable through the firewall (the paper measured an average of 550
   remotely-writable pages per cell, versus 15 for pmake), and every
   boundary store is a firewall-checked remote write miss. *)

type cfg = {
  workers : int;
  chunk_pages : int; (* per-worker share of the data segment *)
  boundary_words : int; (* words written into each neighbour per step *)
  steps : int;
  step_compute_ns : int64;
  init_compute_ns : int64;
}

let default =
  {
    workers = 4;
    chunk_pages = 550;
    boundary_words = 260; (* two 130-column boundary rows *)
    steps = 6;
    step_compute_ns = 950_000_000L;
    init_compute_ns = 300_000_000L;
  }

(* Find a path that the name service homes on [target]. *)
let path_homed (sys : Hive.Types.system) ~base ~target =
  let rec search k =
    let path = Printf.sprintf "%s.%d" base k in
    if Hive.Fs.home_of_path sys path = target then path else search (k + 1)
  in
  search 0

let chunk_path sys w = path_homed sys ~base:(Printf.sprintf "/data/ocean%d" w) ~target:w

let out_path = "/tmp/ocean.out"

(* Expected checksum of the final grid, computed analytically: every
   worker writes [step] into its boundary words each step and sums its
   own chunk contribution deterministically. *)
let expected_output cfg =
  let total = ref 0L in
  for w = 0 to cfg.workers - 1 do
    for s = 1 to cfg.steps do
      total :=
        Int64.add !total
          (Int64.of_int (((w + 1) * s) + (cfg.boundary_words mod 97)))
    done
  done;
  Workload.derive_output
    ~input:(Bytes.of_string (Int64.to_string !total))
    ~bytes:4096

let setup (sys : Hive.Types.system) cfg =
  let psize = Hive.Types.page_size sys in
  let c0 = sys.Hive.Types.cells.(0) in
  let p =
    Hive.Process.spawn sys c0 ~name:"ocean-setup" (fun sys p ->
        for w = 0 to cfg.workers - 1 do
          let path = chunk_path sys (w mod Array.length sys.Hive.Types.cells) in
          let fd =
            Hive.Syscall.creat sys p
              ~content:(Bytes.make (cfg.chunk_pages * psize) '\000')
              path
          in
          Hive.Syscall.close sys p ~fd
        done;
        Hive.Syscall.sync sys p;
        (* Warm the file cache, as the paper does before every run. *)
        for w = 0 to cfg.workers - 1 do
          let path = chunk_path sys (w mod Array.length sys.Hive.Types.cells) in
          let fd = Hive.Syscall.openf sys p path in
          ignore (Hive.Syscall.read sys p ~fd ~len:(cfg.chunk_pages * psize));
          Hive.Syscall.close sys p ~fd
        done)
  in
  ignore
    (Hive.System.run_until_processes_done sys ~deadline:300_000_000_000L [ p ])

let worker cfg ~w ~barrier ~sums (sys : Hive.Types.system)
    (p : Hive.Types.process) =
  let ncells = Array.length sys.Hive.Types.cells in
  let eng = sys.Hive.Types.eng in
  (* A worker that dies — killed with its cell, torn down by recovery, or
     aborted on a syscall error — leaves the step barrier so the surviving
     workers are released instead of waiting forever on a party that will
     never arrive. A normal exit happens after the final await, where
     shrinking the barrier is harmless. *)
  Fun.protect ~finally:(fun () -> Sim.Barrier.remove_party eng barrier)
  @@ fun () ->
  (* Map every chunk writable; our own is local, neighbours' remote. *)
  let regions =
    Array.init cfg.workers (fun v ->
        let fd =
          Hive.Syscall.openf sys p ~writable:true (chunk_path sys (v mod ncells))
        in
        Hive.Syscall.mmap_file sys p ~fd ~npages:cfg.chunk_pages ~writable:true)
  in
  (* Initialization: touch the local chunk (first-touch placement). *)
  Hive.Syscall.compute sys p cfg.init_compute_ns;
  let own = regions.(w) in
  for k = 0 to cfg.chunk_pages - 1 do
    Hive.Syscall.touch sys p ~vpage:(own.Hive.Types.start_page + k) ~write:true
  done;
  Sim.Barrier.await eng barrier;
  let checksum = ref 0L in
  for s = 1 to cfg.steps do
    Hive.Syscall.compute sys p cfg.step_compute_ns;
    (* Multigrid relaxation writes spread over the whole shared segment:
       each step stores into every page of both neighbours' chunks (plus
       denser boundary-row traffic into the adjacent pages), so the data
       segment stays write-shared across the cells as in the paper. *)
    List.iter
      (fun nb ->
        let r = regions.(nb) in
        let per_page = Hive.Types.page_size sys / 8 in
        for pg = 0 to cfg.chunk_pages - 1 do
          Hive.Syscall.write_word sys p
            ~vpage:(r.Hive.Types.start_page + pg)
            ~offset:(w * 8)
            (Int64.of_int (((w + 1) * s) + pg))
        done;
        for k = 0 to cfg.boundary_words - 1 do
          let vpage = r.Hive.Types.start_page + (k / per_page) in
          Hive.Syscall.write_word sys p ~vpage ~offset:(k mod per_page * 8)
            (Int64.of_int (((w + 1) * s) + k))
        done)
      [ (w + 1) mod cfg.workers; (w + cfg.workers - 1) mod cfg.workers ];
    checksum :=
      Int64.add !checksum
        (Int64.of_int (((w + 1) * s) + (cfg.boundary_words mod 97)));
    Sim.Barrier.await eng barrier
  done;
  sums.(w) <- !checksum

let driver cfg sums (sys : Hive.Types.system) (p : Hive.Types.process) =
  let ncells = Array.length sys.Hive.Types.cells in
  let barrier = Sim.Barrier.create cfg.workers in
  let children = ref [] in
  for w = 0 to cfg.workers - 1 do
    match
      Hive.Process.fork sys p ~on_cell:(w mod ncells)
        ~name:(Printf.sprintf "ocean%d" w)
        (worker cfg ~w ~barrier ~sums)
    with
    | Ok c -> children := c :: !children
    | Error _ ->
      (* The worker's cell is down (or died mid-fork): it will never
         arrive at the step barrier, so shrink the barrier now or the
         workers that did start would wait on it forever. *)
      Sim.Barrier.remove_party sys.Hive.Types.eng barrier
  done;
  List.iter (fun c -> ignore (Hive.Process.wait sys p c)) !children;
  let total = Array.fold_left Int64.add 0L sums in
  let fd = Hive.Syscall.creat sys p out_path in
  ignore
    (Hive.Syscall.write sys p ~fd
       (Workload.derive_output
          ~input:(Bytes.of_string (Int64.to_string total))
          ~bytes:4096));
  Hive.Syscall.close sys p ~fd

let run ?(cfg = default) (sys : Hive.Types.system) =
  let t0 = Sim.Engine.now sys.Hive.Types.eng in
  let sums = Array.make cfg.workers 0L in
  let c0 = sys.Hive.Types.cells.(0) in
  let p = Hive.Process.spawn sys c0 ~name:"ocean" (driver cfg sums) in
  let completed =
    Hive.System.run_until_processes_done sys ~deadline:600_000_000_000L [ p ]
  in
  let elapsed = Int64.sub (Sim.Engine.now sys.Hive.Types.eng) t0 in
  ( {
      Workload.name = "ocean";
      elapsed_ns = elapsed;
      completed = completed && p.Hive.Types.exit_code = Some 0;
      procs_total = cfg.workers + 1;
      procs_killed = 0;
    },
    p )

let verify ?(cfg = default) (sys : Hive.Types.system) =
  [ (out_path,
     Workload.verify_output sys ~path:out_path ~reference:(expected_output cfg))
  ]
