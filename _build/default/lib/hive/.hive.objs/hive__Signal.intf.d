lib/hive/signal.mli: Hashtbl Types
