(** Intercell RPC on top of the SIPS hardware primitive (Section 6).

   The subsystem is much leaner than classical distributed-system RPC: SIPS
   is reliable, so there is no retransmission or duplicate suppression; a
   cache line (128 bytes) carries most argument/result records, and larger
   data is passed by reference through shared memory (costed as a copy plus
   allocation, per Table 5.2).

   The base system services requests at interrupt level on the receiving
   node. A queuing service and server-process pool handles longer-latency
   requests (those that may block, e.g. for I/O): an initial interrupt-level
   RPC launches the operation and a completion reply returns the result. *)

type Flash.Sips.message +=
    M_request of { call_id : int; src_cell : int; op : string;
      arg : Types.payload; arg_bytes : int;
    }
  | M_reply of { call_id : int; outcome : Types.rpc_outcome; }
type handler =
    Types.system ->
    Types.cell ->
    src:Types.cell_id -> Types.payload -> Types.handler_action
val handlers : (string, handler) Hashtbl.t
val register : string -> handler -> unit
val registered : string -> bool
val marshal_cost : Types.system -> int -> int64
val report_hint :
  Types.system ->
  Types.cell -> Types.cell_id -> string -> unit
exception Rpc_failed of Types.cell_id * string
val send_reply :
  Types.system ->
  Types.cell ->
  src_cell:int -> call_id:int -> Types.rpc_outcome -> unit
val service_request :
  Types.system -> Types.cell -> Flash.Sips.envelope -> unit
val service_reply :
  Types.system -> Types.cell -> Flash.Sips.envelope -> unit
val start_threads : Types.system -> Types.cell -> unit
val call :
  Types.system ->
  from:Types.cell ->
  target:Types.cell_id ->
  op:string ->
  ?arg_bytes:int ->
  ?reply_bytes:int ->
  ?timeout_ns:int64 -> Types.payload -> Types.rpc_outcome
val call_exn :
  Types.system ->
  from:Types.cell ->
  target:Types.cell_id ->
  op:string ->
  ?arg_bytes:int ->
  ?reply_bytes:int ->
  ?timeout_ns:int64 -> Types.payload -> Types.payload
