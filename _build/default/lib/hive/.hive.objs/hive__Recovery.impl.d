lib/hive/recovery.ml: Array Gate List Panic Params Printf Rpc Sim Types Vm
