type 'a waiter = { slot : 'a option ref; thread : Engine.thread }

type 'a t = { mutable value : 'a option; mutable waiters : 'a waiter list }

let create () = { value = None; waiters = [] }

let is_filled v = v.value <> None

let peek v = v.value

let fill eng v x =
  match v.value with
  | Some _ -> invalid_arg "Ivar.fill: already filled"
  | None ->
    v.value <- Some x;
    let ws = List.rev v.waiters in
    v.waiters <- [];
    List.iter
      (fun w ->
        if Engine.try_resume eng w.thread then w.slot := Some x)
      ws

let read ?timeout eng v =
  match v.value with
  | Some x -> Some x
  | None ->
    let slot = ref None in
    Engine.suspend ~site:"ivar.read" (fun thr ->
        v.waiters <- { slot; thread = thr } :: v.waiters;
        match timeout with
        | None -> ()
        | Some d -> Engine.wake_after eng thr d);
    (match !slot with
    | Some _ as r -> r
    | None ->
      (* Timed out: drop our waiter record so a later fill skips it. *)
      let me = Engine.self () in
      v.waiters <- List.filter (fun w -> w.thread != me) v.waiters;
      None)

let read_exn eng v =
  match read eng v with
  | Some x -> x
  | None -> assert false
