lib/workloads/workload.mli: Bytes Hive
