(* Wax: intercell resource-management policy in a user-level process
   (Section 3.2, Table 3.4).

   Wax is a multithreaded user-level spanning process with a thread on
   every cell. It builds a global view of system state through shared
   memory (each cell's thread publishes local statistics into a shared
   word; the coordinator thread reads them all with ordinary loads — no
   careful protocol, because Wax is allowed to die on any cell failure),
   and feeds policy hints back to the kernels: which cells to allocate
   memory from, which cells the VM clock hand should target, and which
   cells should push idle pages to swap.

   Hints are *only* hints. The coordinator never acts on another cell's
   behalf: it deposits each hint where the target cell's kernel (and its
   own Wax thread) can see it, and the target validates the hint against
   its local state before acting. Each kernel sanity-checks everything it
   receives, so a corrupt Wax can hurt performance but not correctness.
   Because Wax uses resources from all cells, it exits whenever any cell
   fails; recovery forks a fresh incarnation that rebuilds its view from
   scratch. *)

let mem (sys : Types.system) = Flash.Machine.memory sys.Types.machine

(* Kernel-side sanity check before accepting an allocation-preference
   hint: every id must be a live, distinct cell (dead, duplicate and
   out-of-range ids are all caught by the live-set membership test). *)
let sanity_check_hint (c : Types.cell) hint =
  let ok =
    List.for_all (fun id -> List.mem id c.Types.live_set) hint
    && List.length (List.sort_uniq compare hint) = List.length hint
  in
  if ok then begin
    c.Types.alloc_preference <- List.filter (fun id -> id <> c.Types.cell_id) hint;
    true
  end
  else begin
    Types.bump c "wax.rejected_hints";
    false
  end

(* Same contract for the clock-hand target hint: previously the
   coordinator stored targets into other cells unchecked. *)
let sanity_check_clock_hint (c : Types.cell) hint =
  let ok =
    List.for_all (fun id -> List.mem id c.Types.live_set) hint
    && List.length (List.sort_uniq compare hint) = List.length hint
  in
  if ok then begin
    c.Types.clock_hand_targets <- hint;
    true
  end
  else begin
    Types.bump c "wax.rejected_hints";
    false
  end

(* Swap hint: the coordinator deposits a want count; the cell's own Wax
   thread picks it up here, checks it against *local* state (a cell that
   is not actually under pressure refuses to swap — a corrupt Wax cannot
   force needless paging, and the want is bounded), and only then runs
   the swap-out on its own processors. *)
let act_on_swap_hint (sys : Types.system) (c : Types.cell) =
  let want = c.Types.swap_hint in
  if want <> 0 then begin
    c.Types.swap_hint <- 0;
    let p = sys.Types.params in
    if
      want > 0
      && want <= max p.Params.wax_swap_want (c.Types.total_frames / 8)
      && Page_alloc.under_pressure c ~pct:p.Params.wax_pressure_pct
    then begin
      Types.bump c "wax.swap_hints_acted";
      ignore (Swap.swap_out_idle sys c ~want)
    end
    else Types.bump c "wax.rejected_hints"
  end

let publish_local_state (sys : Types.system) (c : Types.cell) =
  (* Free-frame count, written into the shared slot with a plain store. *)
  Flash.Memory.write_i64 sys.Types.eng (mem sys) ~by:(Types.boss_proc c)
    c.Types.wax_slot
    (Int64.of_int (Page_alloc.free_count c))

exception Wax_dies

(* The [k] cells with the most free frames, by repeated selection —
   O(cells * k) with k fixed by Params, instead of sorting the whole
   cell list every policy period. *)
let top_k_free states k =
  let rec pick acc n remaining =
    if n = 0 then List.rev acc
    else
      match remaining with
      | [] -> List.rev acc
      | _ ->
        let best =
          List.fold_left
            (fun (bi, bf) (i, f) -> if f > bf then (i, f) else (bi, bf))
            (List.hd remaining) (List.tl remaining)
        in
        pick (fst best :: acc) (n - 1)
          (List.filter (fun (i, _) -> i <> fst best) remaining)
  in
  pick [] k states

(* The coordinator thread's policy pass: read every cell's published
   state (plain loads — a bus error kills Wax) and deposit hints. *)
let policy_pass (sys : Types.system) (home : Types.cell) =
  let p = sys.Types.params in
  let states =
    List.map
      (fun id ->
        let c = sys.Types.cells.(id) in
        let v =
          try
            Flash.Memory.read_i64 sys.Types.eng (mem sys)
              ~by:(Types.boss_proc home) c.Types.wax_slot
          with Flash.Memory.Bus_error _ -> raise Wax_dies
        in
        (id, Int64.to_int v))
      home.Types.live_set
  in
  (* Page-allocator hint: the cells with the most free memory. *)
  let pref = top_k_free states p.Params.wax_pref_len in
  (* Clock-hand / swap hint: cells under pressure relative to their own
     size (fewest free frames). *)
  let pressured =
    List.filter
      (fun (id, free) ->
        free
        < Page_alloc.low_water sys.Types.cells.(id)
            ~pct:p.Params.wax_pressure_pct)
      states
    |> List.map fst
  in
  List.iter
    (fun id ->
      let c = sys.Types.cells.(id) in
      if Types.cell_alive c then begin
        ignore (sanity_check_hint c pref);
        ignore (sanity_check_clock_hint c pressured);
        (* Swapper policy: suggest that cells under memory pressure push
           idle anonymous pages to their swap partition. Deposit only —
           the pressured cell's own thread validates and executes. *)
        if List.mem id pressured then
          c.Types.swap_hint <- p.Params.wax_swap_want
      end)
    home.Types.live_set

let stop (sys : Types.system) =
  let ts = sys.Types.wax_threads in
  sys.Types.wax_threads <- [];
  List.iter (fun t -> Sim.Engine.kill sys.Types.eng t) ts

(* Fork a Wax incarnation with a thread on every live cell. *)
let start (sys : Types.system) =
  sys.Types.wax_incarnation <- sys.Types.wax_incarnation + 1;
  let inc = sys.Types.wax_incarnation in
  Types.sys_bump sys "wax.incarnations";
  let live =
    Array.to_list sys.Types.cells |> List.filter Types.cell_alive
  in
  let coordinator =
    match live with c :: _ -> c.Types.cell_id | [] -> -1
  in
  List.iter
    (fun (c : Types.cell) ->
      let thr =
        Sim.Engine.spawn sys.Types.eng
          ~name:(Printf.sprintf "wax%d.cell%d" inc c.Types.cell_id)
          (fun () ->
            let p = sys.Types.params in
            try
              while Types.cell_alive c do
                Sim.Engine.delay p.Params.wax_period_ns;
                Gate.pass c;
                Sim.Engine.delay p.Params.wax_scan_cost_ns;
                publish_local_state sys c;
                if c.Types.cell_id = coordinator then policy_pass sys c;
                (* Act on any swap hint deposited for *this* cell, with
                   local validation. *)
                if Types.cell_alive c then act_on_swap_hint sys c
              done
            with
            | Wax_dies | Flash.Memory.Bus_error _ ->
              (* Some cell we depend on failed: the whole process exits;
                 recovery will fork a fresh incarnation. *)
              Types.sys_bump sys "wax.deaths")
      in
      sys.Types.wax_threads <- thr :: sys.Types.wax_threads)
    live

let restart (sys : Types.system) =
  stop sys;
  start sys

let install (sys : Types.system) =
  sys.Types.wax_restart <- Some restart;
  start sys
