lib/sim/condvar.mli: Engine Mutex
