(** Metrics export: JSON snapshot of the run's instrumentation — per-op
    RPC latency histograms (p50/p95/p99 plus log-scale buckets), per-cell
    counters and status, system counters, and the recovery phase
    timeline. *)

(** System-wide sharing-protocol totals (imports, cache hits, releases,
    invalidations, ...) summed over cells. *)
val sharing_totals : Types.system -> (string * int) list

(** share.cache_hits / (share.cache_hits + fs.remote_locates): the
    fraction of remote-page lookups served without leaving the cell. *)
val cache_hit_rate : Types.system -> float

(** Render the full metrics document as a JSON string. *)
val to_json : Types.system -> string

(** Write {!to_json} to [path]. *)
val write_file : Types.system -> string -> unit

(** Print a human-readable summary (per-op RPC latency percentiles and
    the recovery timeline) to stdout. *)
val print_summary : Types.system -> unit
