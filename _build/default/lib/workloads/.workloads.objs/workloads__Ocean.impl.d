lib/workloads/ocean.ml: Array Bytes Hive Int64 List Printf Sim Workload
