(** The careful reference protocol (Section 4.1 of the paper).

   One cell reads another's internal data structures directly when RPCs are
   too slow or an up-to-date view is required. The reading cell must defend
   itself against invalid pointers, linked structures with loops, values
   that change mid-operation, and bus errors from failed nodes:

   1. [careful_on] records which remote cell the kernel intends to access;
      a bus error while reading that cell's memory unwinds to the saved
      context instead of panicking the reading kernel.
   2. Every remote address is checked for alignment and for addressing the
      memory range belonging to the expected cell.
   3. Data values are copied to local memory before sanity checks.
   4. Each remote structure carries a type identifier written by the
      allocator; checking it is the first line of defense against invalid
      pointers.
   5. [careful_off] restores normal panic-on-bus-error behavior. *)

type failure_reason =
    Bad_pointer of int
  | Bad_tag of { addr : int; expected : int64; found : int64; }
  | Bus_fault of int
  | Loop_detected
  | Bad_value of string
  | Unreachable of int
      (** the interconnect to the target cell is partitioned: the remote
          read times out rather than bus-faulting — distinguishable from
          dead hardware, which answers with an error, not silence *)
exception Careful_abort of failure_reason

(** True when a blackout window currently severs either direction between
    the reader and the target (remote reads need the request to travel one
    way and the data the other). *)
val partitioned : Types.system -> Types.cell -> target:Types.cell_id -> bool
type ctx = {
  sys : Types.system;
  reader : Types.cell;
  target : Types.cell_id;
  mutable hops : int;
}
val reason_to_string : failure_reason -> string
val max_hops : int
val addr_in_cell : Types.system -> int -> Flash.Addr.t -> bool
val check_addr : ctx -> ?align:int -> Flash.Addr.t -> unit
val fail_value : string -> 'a
val read_i64 : ctx -> Flash.Addr.t -> int64
val read_bytes : ctx -> Flash.Addr.t -> int -> Bytes.t
val check_tag : ctx -> addr:Flash.Addr.t -> expected:int64 -> unit
val read_field : ctx -> addr:int -> index:int -> int64
val protect :
  Types.system ->
  Types.cell ->
  target:Types.cell_id -> (ctx -> 'a) -> ('a, failure_reason) result
