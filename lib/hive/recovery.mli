(** Recovery after a confirmed cell failure (Section 4.3).

   Given consensus on the live set, each surviving cell runs recovery to
   clean up dangling references and determine which processes must be
   killed. A double global barrier synchronizes the preemptive discard:

   - before barrier 1, each cell flushes its TLBs and removes remote
     mappings (faults arriving later are held up on the client side);
   - after barrier 1, no valid remote accesses are pending, so each cell
     revokes firewall permissions it granted to the failed cells, discards
     every page they could have written (notifying the file system about
     lost dirty pages), and cleans its VM structures;
   - after barrier 2, cells resume normal operation.

   Recovery is itself fault-tolerant: if a participant dies mid-round the
   barriers are aborted and the surviving cells restart the round with the
   enlarged dead set ({!cell_died}). At the end of a round the recovery
   master (lowest live cell id) runs hardware diagnostics on the failed
   nodes and, when [Params.auto_reintegrate] is set, reboots and
   reintegrates them through the hook installed by [System.boot]. *)

type Types.payload +=
    P_recovery_start of { dead : Types.cell_id list; }
val start_op : Rpc.Op.t
val diagnostics_ns : int64

(** Run the per-cell recovery round loop (in the calling thread) until a
    round completes that is still the current one. *)
val recovery_sequence : Types.system -> Types.cell -> unit

(** Spawn [recovery_sequence] in a fresh kernel thread of the cell and mark
    the cell as an active participant. *)
val start_recovery_thread : Types.system -> Types.cell -> unit

(** Start a recovery round for the confirmed dead set: force still-running
    "dead" cells to stop, create the round barriers, and start a recovery
    thread on every live participant. [by] names the initiating cell;
    when given, participation is limited to the cells it can reach — a
    "dead" cell that is merely partitioned away stays running (excised
    from the survivors' live sets) and is stopped and reintegrated by the
    recovery master once the partition heals. *)
val initiate :
  ?by:Types.cell_id -> Types.system -> dead:Types.cell_id list -> unit

(** Notify recovery that a cell has died. A no-op unless a round is in
    flight and the cell was a participant, in which case the round restarts
    with the enlarged dead set (abortable barriers guarantee no survivor is
    left waiting on the dead participant). *)
val cell_died : Types.system -> Types.cell_id -> unit

val registered : bool ref
val register_handlers : unit -> unit
