lib/flash/cpu.ml: Int64 Sim
