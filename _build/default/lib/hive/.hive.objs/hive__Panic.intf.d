lib/hive/panic.mli: Types
