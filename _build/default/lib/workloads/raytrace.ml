(* raytrace: rendering a teapot with 6 antialias rays per pixel
   (Table 7.1) — a parallel application whose workers read-share the scene
   built by the parent before the fork.

   The scene lives in the parent's anonymous memory, so every worker read
   is a copy-on-write tree search: on a multicell system, workers forked
   to other cells walk interior tree nodes on the parent's cell with the
   careful reference protocol and bind the pages with export/import — the
   exact path stressed by the paper's "during copy-on-write search" fault
   injections. Worker outputs mix in the scene words actually read, so a
   wild write to scene memory corrupts the output detectably. *)

type cfg = {
  workers : int;
  scene_pages : int;
  tile_pages : int;
  compute_ns : int64; (* per worker *)
  build_ns : int64;
}

let default =
  {
    workers = 4;
    scene_pages = 256;
    tile_pages = 64;
    compute_ns = 4_100_000_000L;
    build_ns = 200_000_000L;
  }

let out_path w = Printf.sprintf "/tmp/trace%d.out" w

let scene_word p = Int64.of_int ((p * 1234567) + 1)

let expected_scene_sum cfg =
  let s = ref 0L in
  for p = 0 to cfg.scene_pages - 1 do
    s := Int64.add !s (scene_word p)
  done;
  !s

let expected_output cfg w =
  Workload.derive_output
    ~input:
      (Bytes.of_string
         (Printf.sprintf "tile%d:%Ld" w (expected_scene_sum cfg)))
    ~bytes:(cfg.tile_pages * 512)

let worker cfg ~w ~scene_region (sys : Hive.Types.system)
    (p : Hive.Types.process) =
  (* Private tile buffer. *)
  let tiles = Hive.Syscall.mmap_anon sys p ~npages:cfg.tile_pages in
  for k = 0 to cfg.tile_pages - 1 do
    Hive.Syscall.touch sys p ~vpage:(tiles.Hive.Types.start_page + k)
      ~write:true
  done;
  (* Rays hit scene objects as rendering proceeds: read the scene through
     the COW tree in batches interleaved with compute, so copy-on-write
     searches keep happening throughout the run. *)
  let sum = ref 0L in
  let batches = 8 in
  let per_batch = (cfg.scene_pages + batches - 1) / batches in
  let per_compute = Int64.div cfg.compute_ns (Int64.of_int batches) in
  for b = 0 to batches - 1 do
    let lo = b * per_batch in
    let hi = min (cfg.scene_pages - 1) (lo + per_batch - 1) in
    for k = lo to hi do
      let v =
        Hive.Syscall.read_word sys p
          ~vpage:(scene_region.Hive.Types.start_page + k)
          ~offset:0
      in
      sum := Int64.add !sum v
    done;
    Hive.Syscall.compute sys p per_compute
  done;
  let fd = Hive.Syscall.creat sys p (out_path w) in
  ignore
    (Hive.Syscall.write sys p ~fd
       (Workload.derive_output
          ~input:(Bytes.of_string (Printf.sprintf "tile%d:%Ld" w !sum))
          ~bytes:(cfg.tile_pages * 512)));
  Hive.Syscall.close sys p ~fd

let driver cfg (sys : Hive.Types.system) (p : Hive.Types.process) =
  let ncells = Array.length sys.Hive.Types.cells in
  (* Build the scene in anonymous memory before forking. *)
  let scene = Hive.Syscall.mmap_anon sys p ~npages:cfg.scene_pages in
  Hive.Syscall.compute sys p cfg.build_ns;
  for k = 0 to cfg.scene_pages - 1 do
    Hive.Syscall.write_word sys p
      ~vpage:(scene.Hive.Types.start_page + k)
      ~offset:0 (scene_word k)
  done;
  let children = ref [] in
  for w = 0 to cfg.workers - 1 do
    match
      Hive.Process.fork sys p ~on_cell:(w mod ncells)
        ~name:(Printf.sprintf "trace%d" w)
        (worker cfg ~w ~scene_region:scene)
    with
    | Ok c -> children := c :: !children
    | Error _ -> ()
  done;
  List.iter (fun c -> ignore (Hive.Process.wait sys p c)) !children

let run ?(cfg = default) (sys : Hive.Types.system) =
  let t0 = Sim.Engine.now sys.Hive.Types.eng in
  let c0 = sys.Hive.Types.cells.(0) in
  let p = Hive.Process.spawn sys c0 ~name:"raytrace" (driver cfg) in
  let completed =
    Hive.System.run_until_processes_done sys ~deadline:600_000_000_000L [ p ]
  in
  let elapsed = Int64.sub (Sim.Engine.now sys.Hive.Types.eng) t0 in
  ( {
      Workload.name = "raytrace";
      elapsed_ns = elapsed;
      completed = completed && p.Hive.Types.exit_code = Some 0;
      procs_total = cfg.workers + 1;
      procs_killed = 0;
    },
    p )

let verify ?(cfg = default) (sys : Hive.Types.system) =
  List.init cfg.workers (fun w ->
      ( out_path w,
        Workload.verify_output sys ~path:(out_path w)
          ~reference:(expected_output cfg w) ))
