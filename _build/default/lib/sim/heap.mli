(** Binary min-heap keyed by [(time, seq)], used as the simulation event
    queue. Ties on [time] are broken by insertion sequence number, which
    makes event delivery deterministic. *)

type 'a entry = { time : int64; seq : int; payload : 'a }

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push h ~time ~seq payload] inserts an entry. [seq] must be unique and
    monotonically increasing for same-time determinism. *)
val push : 'a t -> time:int64 -> seq:int -> 'a -> unit

(** Smallest entry without removing it. *)
val peek : 'a t -> 'a entry option

(** Remove and return the smallest entry. *)
val pop : 'a t -> 'a entry option
