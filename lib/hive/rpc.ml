(* Intercell RPC on top of the SIPS hardware primitive (Section 6).

   The subsystem is much leaner than classical distributed-system RPC: SIPS
   is reliable, so there is no retransmission or duplicate suppression; a
   cache line (128 bytes) carries most argument/result records, and larger
   data is passed by reference through shared memory (costed as a copy plus
   allocation, per Table 5.2).

   The base system services requests at interrupt level on the receiving
   node. A queuing service and server-process pool handles longer-latency
   requests (those that may block, e.g. for I/O): an initial interrupt-level
   RPC launches the operation and a completion reply returns the result. *)

type Flash.Sips.message +=
  | M_request of {
      call_id : int;
      src_cell : int;
      op : string;
      arg : Types.payload;
      arg_bytes : int;
    }
  | M_reply of { call_id : int; outcome : Types.rpc_outcome }

(* Typed operation descriptors. Every RPC op is declared once, up front,
   with its wire-size defaults and timeout; [register] and [call] take the
   descriptor, so an undeclared or misspelled op cannot compile and every
   call site agrees on payload sizes. The descriptor name also keys the
   per-op latency histograms. *)
module Op = struct
  type t = {
    name : string;
    arg_bytes : int;
    reply_bytes : int;
    timeout_ns : int64 option; (* None = use Params.rpc_timeout_ns *)
  }

  let declared : (string, t) Hashtbl.t = Hashtbl.create 64

  let declare ?(arg_bytes = 64) ?(reply_bytes = 64) ?timeout_ns name =
    if Hashtbl.mem declared name then
      invalid_arg ("Rpc.Op.declare: duplicate " ^ name);
    let op = { name; arg_bytes; reply_bytes; timeout_ns } in
    Hashtbl.replace declared name op;
    op

  let name op = op.name

  let all () =
    Hashtbl.fold (fun _ op acc -> op :: acc) declared []
    |> List.sort (fun a b -> compare a.name b.name)
end

type handler =
  Types.system -> Types.cell -> src:Types.cell_id -> Types.payload ->
  Types.handler_action

let handlers : (string, handler) Hashtbl.t = Hashtbl.create 64

let register (op : Op.t) h =
  if Hashtbl.mem handlers op.Op.name then
    invalid_arg ("Rpc.register: duplicate " ^ op.Op.name);
  Hashtbl.replace handlers op.Op.name h

let registered (op : Op.t) = Hashtbl.mem handlers op.Op.name

(* Marshaling cost on one side of a call carrying [bytes] of payload:
   stub execution, plus, beyond one cache line, buffer allocation and a
   copy through shared memory. *)
let marshal_cost (sys : Types.system) bytes =
  let p = sys.Types.params in
  if bytes <= 0 then 0L
  else if bytes <= Flash.Sips.max_payload then p.Params.rpc_stub_marshal_ns
  else
    Int64.add
      (Int64.add p.Params.rpc_stub_marshal_ns p.Params.rpc_alloc_free_ns)
      (Flash.Config.copy_cost sys.Types.mcfg bytes)

let report_hint (sys : Types.system) (from : Types.cell) suspect reason =
  match sys.Types.on_hint with
  | Some f -> f from ~suspect ~reason
  | None -> ()

exception Rpc_failed of Types.cell_id * string

(* Send the reply for a completed request back to the caller. *)
let send_reply (sys : Types.system) (server : Types.cell) ~src_cell ~call_id
    outcome =
  let p = sys.Types.params in
  Sim.Engine.delay p.Params.rpc_server_reply_ns;
  let client_cell = sys.Types.cells.(src_cell) in
  try
    Flash.Sips.send
      (Flash.Machine.sips sys.Types.machine)
      ~from_proc:(Types.boss_proc server)
      ~to_node:(Types.boss_proc client_cell) ~kind:Flash.Sips.Reply ~size:64
      (M_reply { call_id; outcome })
  with Flash.Sips.Target_failed _ -> ()

(* Interrupt-level service of one incoming request. *)
let service_request (sys : Types.system) (server : Types.cell) env =
  let p = sys.Types.params in
  match env.Flash.Sips.msg with
  | M_request { call_id; src_cell; op; arg; arg_bytes } -> (
    Types.bump server "rpc.served";
    let cpu = Flash.Machine.cpu sys.Types.machine (Types.boss_proc server) in
    Flash.Cpu.steal sys.Types.eng cpu p.Params.rpc_server_dispatch_ns;
    if arg_bytes > Flash.Sips.max_payload then
      Sim.Engine.delay (marshal_cost sys arg_bytes);
    (* Handler execution time per op: for immediate service that is the
       handler itself; for queued service, the work function in the pool
       process (dispatch cost is negligible and not double-counted). *)
    let timed : 'a. (unit -> 'a) -> 'a =
     fun f ->
      let t0 = Sim.Engine.now sys.Types.eng in
      let result =
        Sim.Event.span sys.Types.events ~cell:server.Types.cell_id
          ~args:[ ("src", Sim.Event.Int src_cell) ]
          ~cat:Sim.Event.Rpc ("rpc.serve:" ^ op) f
      in
      Sim.Stats.hist_add
        (Types.hist_for sys.Types.rpc_server_ns op)
        (Int64.sub (Sim.Engine.now sys.Types.eng) t0);
      result
    in
    match Hashtbl.find_opt handlers op with
    | None ->
      send_reply sys server ~src_cell ~call_id (Error Types.EFAULT)
    | Some h -> (
      let t0 = Sim.Engine.now sys.Types.eng in
      match h sys server ~src:src_cell arg with
      | Types.Immediate outcome ->
        (* Interrupt-level service: record the handler time and mark it as
           an instant (it never blocks, unlike queued spans). *)
        let dt = Int64.sub (Sim.Engine.now sys.Types.eng) t0 in
        Sim.Stats.hist_add (Types.hist_for sys.Types.rpc_server_ns op) dt;
        Sim.Event.instant sys.Types.events ~cell:server.Types.cell_id
          ~args:
            [ ("src", Sim.Event.Int src_cell); ("dur_ns", Sim.Event.I64 dt) ]
          ~cat:Sim.Event.Rpc ("rpc.serve:" ^ op);
        send_reply sys server ~src_cell ~call_id outcome
      | Types.Queued f ->
        (* Longer-latency request: hand off to the server process pool;
           the completion reply is sent from the server process. *)
        Types.bump server "rpc.queued";
        Flash.Cpu.steal sys.Types.eng cpu p.Params.rpc_queue_handoff_ns;
        Sim.Mailbox.send sys.Types.eng server.Types.rpc_queue (fun () ->
            Sim.Engine.delay p.Params.rpc_context_switch_ns;
            let outcome =
              timed (fun () ->
                  try f () with Types.Syscall_error e -> Error e)
            in
            send_reply sys server ~src_cell ~call_id outcome)
      | exception Types.Syscall_error e ->
        send_reply sys server ~src_cell ~call_id (Error e)))
  | _ -> ()

(* Deliver one reply to the pending-call table. *)
let service_reply (sys : Types.system) (client : Types.cell) env =
  match env.Flash.Sips.msg with
  | M_reply { call_id; outcome } -> (
    match Hashtbl.find_opt client.Types.pending_calls call_id with
    | None -> () (* caller timed out and gave up *)
    | Some pc ->
      Hashtbl.remove client.Types.pending_calls call_id;
      Sim.Ivar.fill sys.Types.eng pc.Types.call_done outcome)
  | _ -> ()

(* Per-cell kernel threads: an interrupt dispatcher for requests, one for
   replies, and a pool of server processes for queued requests. *)
let start_threads (sys : Types.system) (cell : Types.cell) =
  let eng = sys.Types.eng in
  let sips = Flash.Machine.sips sys.Types.machine in
  let node = Types.boss_proc cell in
  let spawn name body =
    let thr = Sim.Engine.spawn eng ~name body in
    cell.Types.kernel_threads <- thr :: cell.Types.kernel_threads
  in
  spawn
    (Printf.sprintf "cell%d.rpc.reqs" cell.Types.cell_id)
    (fun () ->
      let rec loop () =
        match Flash.Sips.receive sips ~node ~kind:Flash.Sips.Request with
        | Some env ->
          service_request sys cell env;
          loop ()
        | None -> ()
      in
      loop ());
  spawn
    (Printf.sprintf "cell%d.rpc.replies" cell.Types.cell_id)
    (fun () ->
      let rec loop () =
        match Flash.Sips.receive sips ~node ~kind:Flash.Sips.Reply with
        | Some env ->
          service_reply sys cell env;
          loop ()
        | None -> ()
      in
      loop ());
  for i = 1 to sys.Types.params.Params.rpc_server_pool do
    spawn
      (Printf.sprintf "cell%d.rpc.pool%d" cell.Types.cell_id i)
      (fun () ->
        let rec loop () =
          match Sim.Mailbox.receive eng cell.Types.rpc_queue with
          | Some work ->
            work ();
            loop ()
          | None -> ()
        in
        loop ())
  done

(* Client side of a call. Returns the outcome, or [Error EHOSTDOWN] after a
   timeout or delivery failure (also reporting a failure hint, since an RPC
   timeout means the target cell is potentially failed). Payload sizes and
   the timeout default from the op descriptor; per-call overrides remain
   for variable-size payloads. *)
let call (sys : Types.system) ~(from : Types.cell) ~target ~(op : Op.t)
    ?arg_bytes ?reply_bytes ?timeout_ns arg =
  let p = sys.Types.params in
  let arg_bytes =
    match arg_bytes with Some b -> b | None -> op.Op.arg_bytes
  in
  let reply_bytes =
    match reply_bytes with Some b -> b | None -> op.Op.reply_bytes
  in
  let timeout_ns =
    match (timeout_ns, op.Op.timeout_ns) with
    | Some t, _ -> t
    | None, Some t -> t
    | None, None -> p.Params.rpc_timeout_ns
  in
  let eng = sys.Types.eng in
  let op_name = op.Op.name in
  Types.bump from "rpc.calls";
  let t0 = Sim.Engine.now eng in
  (* Record the whole-call latency the client observed, on every exit
     path; the enclosing span closes even if the thread is killed. *)
  let finish outcome =
    Sim.Stats.hist_add
      (Types.hist_for sys.Types.rpc_client_ns op_name)
      (Int64.sub (Sim.Engine.now eng) t0);
    outcome
  in
  Sim.Event.span sys.Types.events ~cell:from.Types.cell_id
    ~args:[ ("target", Sim.Event.Int target) ]
    ~cat:Sim.Event.Rpc
    ("rpc.call:" ^ op_name)
  @@ fun () ->
  if not (List.mem target from.Types.live_set) then
    finish (Error Types.EHOSTDOWN)
  else begin
    Sim.Engine.delay p.Params.rpc_client_send_ns;
    Sim.Engine.delay (marshal_cost sys arg_bytes);
    from.Types.next_call_id <- from.Types.next_call_id + 1;
    let call_id =
      (from.Types.cell_id * 1_000_000) + from.Types.next_call_id
    in
    let pc =
      { Types.call_id; reply = None; call_done = Sim.Ivar.create () }
    in
    Hashtbl.replace from.Types.pending_calls call_id pc;
    let target_cell = sys.Types.cells.(target) in
    match
      Flash.Sips.send
        (Flash.Machine.sips sys.Types.machine)
        ~from_proc:(Types.boss_proc from)
        ~to_node:(Types.boss_proc target_cell)
        ~kind:Flash.Sips.Request
        ~size:(min arg_bytes Flash.Sips.max_payload)
        (M_request
           { call_id;
             src_cell = from.Types.cell_id;
             op = op_name;
             arg;
             arg_bytes })
    with
    | exception Flash.Sips.Target_failed _ ->
      Hashtbl.remove from.Types.pending_calls call_id;
      report_hint sys from target "rpc: target node down";
      finish (Error Types.EHOSTDOWN)
    | () -> (
      (* The client processor spins waiting for the reply; it only context
         switches after a timeout of 50 us, which almost never occurs. *)
      match Sim.Ivar.read ~timeout:timeout_ns eng pc.Types.call_done with
      | Some outcome ->
        Sim.Engine.delay p.Params.rpc_client_recv_ns;
        if reply_bytes > Flash.Sips.max_payload then
          Sim.Engine.delay (marshal_cost sys reply_bytes);
        finish outcome
      | None ->
        Hashtbl.remove from.Types.pending_calls call_id;
        Types.bump from "rpc.timeouts";
        report_hint sys from target "rpc: timeout";
        finish (Error Types.EHOSTDOWN))
  end

(* Convenience wrapper raising Syscall_error on failure. *)
let call_exn sys ~from ~target ~op ?arg_bytes ?reply_bytes ?timeout_ns arg =
  match call sys ~from ~target ~op ?arg_bytes ?reply_bytes ?timeout_ns arg with
  | Ok v -> v
  | Error e -> raise (Types.Syscall_error e)
