lib/hive/system.ml: Agreement Array Bytes Cell Cow Failure Flash Fs Hashtbl Int64 Kmem List Page_alloc Panic Params Printexc Printf Process Recovery Share Signal Sim Types Vm Wax Wild_write
