lib/sim/condvar.ml: Engine List Mutex
