lib/flash/sips.mli: Config Sim
