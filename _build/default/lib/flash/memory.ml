type error_cause = Node_failed | Cutoff | Firewall_denied | Invalid_address

exception Bus_error of { addr : Addr.t; cause : error_cause }

type node_mem = {
  data : Bytes.t;
  mutable accessible : bool; (* false once failed *)
  mutable cutoff : bool; (* memory cutoff: remote accesses refused *)
}

type t = {
  cfg : Config.t;
  firewall : Firewall.t;
  nodes : node_mem array;
  reads : Sim.Stats.counter;
  writes : Sim.Stats.counter;
  remote_write_miss_ns : Sim.Stats.summary;
  wild_writes : Sim.Stats.counter;
}

let create cfg =
  {
    cfg;
    firewall = Firewall.create cfg;
    nodes =
      Array.init cfg.Config.nodes (fun _ ->
          {
            data = Bytes.make (Config.mem_bytes_per_node cfg) '\000';
            accessible = true;
            cutoff = false;
          });
    reads = Sim.Stats.counter ();
    writes = Sim.Stats.counter ();
    remote_write_miss_ns = Sim.Stats.summary ~keep_samples:false ();
    wild_writes = Sim.Stats.counter ();
  }

let firewall t = t.firewall

let cfg t = t.cfg

let fail_node t node = t.nodes.(node).accessible <- false

let cutoff_node t node = t.nodes.(node).cutoff <- true

let restore_node t node =
  let nm = t.nodes.(node) in
  nm.accessible <- true;
  nm.cutoff <- false;
  Bytes.fill nm.data 0 (Bytes.length nm.data) '\000'

let node_accessible t node = t.nodes.(node).accessible

let bounds_check t addr len =
  if
    len < 0 || addr < 0
    || addr + len > Config.total_pages t.cfg * t.cfg.Config.page_size
  then raise (Bus_error { addr; cause = Invalid_address })

let target t ~by addr len =
  bounds_check t addr len;
  let node = Addr.node_of_addr t.cfg addr in
  let nm = t.nodes.(node) in
  if not nm.accessible then raise (Bus_error { addr; cause = Node_failed });
  if nm.cutoff && node <> by then raise (Bus_error { addr; cause = Cutoff });
  (node, nm)

(* Latency of an access that misses to memory: one miss per cache line
   touched. Reads and writes share the model; writes to remote pages add
   the firewall ownership-request check. *)
let access_cost t ~by ~node ~write bytes =
  let lines = Config.lines_for t.cfg (max 1 bytes) in
  let base = Int64.mul (Int64.of_int lines) t.cfg.Config.mem_ns in
  if write && t.cfg.Config.firewall_enabled then begin
    let check =
      Int64.mul (Int64.of_int lines) t.cfg.Config.firewall_check_ns
    in
    let cost = Int64.add base check in
    if node <> by then
      Sim.Stats.add t.remote_write_miss_ns
        (Int64.to_float (Int64.div cost (Int64.of_int lines)));
    cost
  end
  else begin
    if write && node <> by then
      Sim.Stats.add t.remote_write_miss_ns
        (Int64.to_float t.cfg.Config.mem_ns);
    base
  end

let read eng t ~by addr len =
  let node, nm = target t ~by addr len in
  Sim.Stats.incr t.reads;
  Sim.Engine.delay (access_cost t ~by ~node ~write:false len);
  (* Re-check after the delay: the node may have died mid-access. *)
  if not nm.accessible then raise (Bus_error { addr; cause = Node_failed });
  ignore eng;
  Bytes.sub nm.data (addr - node * Config.mem_bytes_per_node t.cfg) len

(* Cached read: the line is expected hot in the local cache (kernel
   structures the owner touches constantly); charges L2-hit latency but
   obeys the same fault model. *)
let read_cached eng t ~by addr len =
  let _node, nm = target t ~by addr len in
  Sim.Stats.incr t.reads;
  let lines = Config.lines_for t.cfg (max 1 len) in
  Sim.Engine.delay (Int64.mul (Int64.of_int lines) t.cfg.Config.l2_hit_ns);
  if not nm.accessible then raise (Bus_error { addr; cause = Node_failed });
  ignore eng;
  Bytes.sub nm.data
    (addr - Addr.node_of_addr t.cfg addr * Config.mem_bytes_per_node t.cfg)
    len

let read_u8 eng t ~by addr =
  Char.code (Bytes.get (read eng t ~by addr 1) 0)

let read_i64 eng t ~by addr =
  Bytes.get_int64_le (read eng t ~by addr 8) 0

let write eng t ~by addr bytes =
  let len = Bytes.length bytes in
  let node, nm = target t ~by addr len in
  (* The coherence controller checks the firewall on each request for
     cache-line ownership; a write to a page whose bit is not set for the
     writing processor fails with a bus error. *)
  if t.cfg.Config.firewall_enabled then begin
    let first = Addr.pfn_of_addr t.cfg addr in
    let last = Addr.pfn_of_addr t.cfg (addr + max 0 (len - 1)) in
    for pfn = first to last do
      if not (Firewall.allowed t.firewall ~pfn ~proc:by) then
        raise (Bus_error { addr; cause = Firewall_denied })
    done
  end;
  Sim.Stats.incr t.writes;
  Sim.Engine.delay (access_cost t ~by ~node ~write:true len);
  if not nm.accessible then raise (Bus_error { addr; cause = Node_failed });
  ignore eng;
  Bytes.blit bytes 0 nm.data (addr - node * Config.mem_bytes_per_node t.cfg) len

let write_u8 eng t ~by addr v =
  write eng t ~by addr (Bytes.make 1 (Char.chr (v land 0xff)))

let write_i64 eng t ~by addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write eng t ~by addr b

(* Out-of-band access used by fault injection and test assertions: no
   latency, no firewall, no liveness checks. A wild write issued through
   [poke_wild] still honours the firewall (that is the point of the
   hardware) but bypasses the latency model. *)
let peek t addr len =
  bounds_check t addr len;
  let node = Addr.node_of_addr t.cfg addr in
  Bytes.sub t.nodes.(node).data
    (addr - node * Config.mem_bytes_per_node t.cfg)
    len

let poke t addr bytes =
  let len = Bytes.length bytes in
  bounds_check t addr len;
  let node = Addr.node_of_addr t.cfg addr in
  Bytes.blit bytes 0 t.nodes.(node).data
    (addr - node * Config.mem_bytes_per_node t.cfg)
    len

let poke_wild t ~by addr bytes =
  let len = Bytes.length bytes in
  bounds_check t addr len;
  if t.cfg.Config.firewall_enabled then begin
    let first = Addr.pfn_of_addr t.cfg addr in
    let last = Addr.pfn_of_addr t.cfg (addr + max 0 (len - 1)) in
    for pfn = first to last do
      if not (Firewall.allowed t.firewall ~pfn ~proc:by) then
        raise (Bus_error { addr; cause = Firewall_denied })
    done
  end;
  Sim.Stats.incr t.wild_writes;
  poke t addr bytes

let stats t =
  ( Sim.Stats.get t.reads,
    Sim.Stats.get t.writes,
    Sim.Stats.get t.wild_writes )

let remote_write_miss_avg_ns t = Sim.Stats.mean t.remote_write_miss_ns
