lib/sim/engine.mli: Effect
