lib/hive/swap.ml: Array Flash Hashtbl List Page_alloc Pfdat Types
