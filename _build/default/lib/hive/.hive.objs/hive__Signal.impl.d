lib/hive/signal.ml: Array Flash Hashtbl List Printf Rpc Sim Types
