(* Compute-server scenario: the motivating workload from the paper's
   introduction. A multiprogrammed compute server runs many independent
   jobs; a hardware fault kills one cell, and only the processes using
   that cell's resources die — everything else keeps running, and new
   work keeps being accepted.

   Run with:  dune exec examples/compute_server.exe *)

let () =
  let eng = Sim.Engine.create () in
  let sys = Hive.System.boot ~ncells:4 eng in
  let completed = ref [] in
  let failed = ref [] in

  (* Submit 16 independent batch jobs round-robin over the cells. Each job
     computes, then writes its result file. *)
  let submit i =
    let cell = sys.Hive.Types.cells.(i mod 4) in
    if Hive.Types.cell_alive cell then
      Some
        (Hive.Process.spawn sys cell
           ~name:(Printf.sprintf "job%d" i)
           (fun sys p ->
             let heap = Hive.Syscall.mmap_anon sys p ~npages:32 in
             for k = 0 to 31 do
               Hive.Syscall.touch sys p
                 ~vpage:(heap.Hive.Types.start_page + k)
                 ~write:true
             done;
             Hive.Syscall.compute sys p 800_000_000L;
             let fd =
               Hive.Syscall.creat sys p
                 ~content:(Bytes.of_string (Printf.sprintf "result %d" i))
                 (Printf.sprintf "/tmp/job%d.out" i)
             in
             Hive.Syscall.close sys p ~fd;
             completed := i :: !completed))
    else None
  in
  let jobs = List.filter_map submit (List.init 16 Fun.id) in
  Printf.printf "submitted %d jobs across 4 cells\n" (List.length jobs);

  (* 300 ms in, node 2 suffers a fail-stop hardware fault. *)
  ignore
    (Sim.Engine.spawn eng ~name:"fault" (fun () ->
         Sim.Engine.delay 300_000_000L;
         Printf.printf "[%.0f ms] injecting fail-stop fault on node 2\n"
           (Int64.to_float (Sim.Engine.time ()) /. 1e6);
         Hive.System.inject_node_failure sys 2));

  ignore
    (Hive.System.run_until_processes_done sys ~deadline:20_000_000_000L jobs);

  List.iter
    (fun (p : Hive.Types.process) ->
      if p.Hive.Types.killed_by_failure then
        failed := p.Hive.Types.pname :: !failed)
    jobs;
  Printf.printf
    "after the fault: %d jobs completed, %d killed by the cell failure\n"
    (List.length !completed) (List.length !failed);
  Printf.printf "live cells: [%s]\n"
    (String.concat "; "
       (List.map string_of_int (Hive.System.live_cells sys)));

  (* The survivors keep accepting work: resubmit the dead cell's jobs onto
     live cells. *)
  let resubmitted =
    List.filter_map
      (fun i ->
        let cell =
          sys.Hive.Types.cells.(List.nth (Hive.System.live_cells sys)
                                  (i mod List.length (Hive.System.live_cells sys)))
        in
        ignore cell;
        submit (100 + i))
      (List.init (List.length !failed) Fun.id)
  in
  ignore
    (Hive.System.run_until_processes_done sys ~deadline:40_000_000_000L
       resubmitted);
  Printf.printf "resubmitted %d jobs; total completed: %d\n"
    (List.length resubmitted) (List.length !completed);
  Printf.printf
    "detection latency for the fault: %s\n"
    (match
       Hive.System.detection_latency_ns sys ~t_fault:300_000_000L
     with
    | Some ns -> Printf.sprintf "%.1f ms" (Int64.to_float ns /. 1e6)
    | None -> "n/a")
