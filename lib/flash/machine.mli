(** The whole simulated FLASH machine: nodes (CPU + memory + disk), the
    firewall-protected memory system, SIPS messaging, and the fault
    injection API used by the experiments. *)

type node = {
  id : int;
  cpu : Cpu.t;
  disk : Disk.t;
  mutable alive : bool;
}

type t

val create : Sim.Engine.t -> Config.t -> t

val cfg : t -> Config.t

val eng : t -> Sim.Engine.t

val memory : t -> Memory.t

val firewall : t -> Firewall.t

val sips : t -> Sips.t

val node : t -> int -> node

val cpu : t -> int -> Cpu.t

val disk : t -> int -> Disk.t

val node_alive : t -> int -> bool

(** Register a callback invoked (synchronously) when a node fail-stops. *)
val on_node_failure : t -> (int -> unit) -> unit

(** Inject a fail-stop hardware fault: processor halted, memory range
    denied, messages dropped. *)
val fail_node : t -> int -> unit

(** Inject a CXL-style processor failure: CPU halted and SIPS silenced,
    but the node's memory stays readable by survivors (pooled-memory
    fault model — "Towards CXL Resilience to CPU Failures"). *)
val fail_node_cpu : t -> int -> unit

(** Repair and reintegrate a node after diagnostics pass (memory zeroed). *)
val restore_node : t -> int -> unit

(** Memory cutoff (Table 8.1): stop servicing remote accesses to the
    node's memory. *)
val cutoff_node : t -> int -> unit

val procs_of_nodes : int list -> int list

val pp_summary : Format.formatter -> t -> unit
