(** Simulation tracing with virtual timestamps. Off by default; benches and
    the CLI can raise the level for debugging. *)

type level = Off | Error | Info | Debug

val set_level : level -> unit

val enabled : level -> bool

val error : Engine.t -> ('a, Format.formatter, unit, unit) format4 -> 'a

val info : Engine.t -> ('a, Format.formatter, unit, unit) format4 -> 'a

val debug : Engine.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
