type t = {
  parties : int;
  mutable arrived : int;
  mutable generation : int;
  mutable waiters : Engine.thread list;
}

let create parties =
  if parties <= 0 then invalid_arg "Barrier.create";
  { parties; arrived = 0; generation = 0; waiters = [] }

let parties b = b.parties

let arrived b = b.arrived

let await eng b =
  b.arrived <- b.arrived + 1;
  if b.arrived >= b.parties then begin
    b.arrived <- 0;
    b.generation <- b.generation + 1;
    let ws = b.waiters in
    b.waiters <- [];
    List.iter (fun w -> ignore (Engine.try_resume eng w)) ws
  end
  else begin
    let gen = b.generation in
    Engine.suspend (fun thr -> b.waiters <- b.waiters @ [ thr ]);
    (* A killed waiter can be resumed spuriously; re-block until the
       generation actually advances. *)
    while b.generation = gen do
      Engine.suspend (fun thr -> b.waiters <- b.waiters @ [ thr ])
    done
  end
