exception Killed

exception Deadlock of string

(* [retired] is set once the entry can never run again — popped by the
   run loop or removed by heap compaction — so a late [cancel] on a
   dead timer handle does not skew the engine's cancelled-entry count.
   Events carry a back-pointer to their engine so [cancel] (whose public
   type is [timer -> unit]) can keep that count exact and trigger lazy
   heap compaction. *)
type event = {
  mutable cancelled : bool;
  mutable retired : bool;
  act : unit -> unit;
  eng : t;
}

and thread = {
  tid : int;
  name : string;
  mutable dead : bool;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable timers : event list;
  mutable on_exit : (unit -> unit) list;
  mutable site : string;
}

and t = {
  mutable now : int64;
  events : event Heap.t;
  mutable seq : int;
  mutable next_tid : int;
  mutable current : thread option;
  mutable live : int;
  mutable crash_handler : thread -> exn -> unit;
  threads : (int, thread) Hashtbl.t;
  mutable jitter : Prng.t option;
  mutable cancelled_pending : int;
      (* cancelled, unpopped entries still sitting in the event heap *)
  owner : int; (* id of the domain that created the engine *)
}

type timer = event

type _ Effect.t +=
  | E_now : int64 Effect.t
  | E_self : thread Effect.t
  | E_delay : int64 -> unit Effect.t
  | E_suspend : (thread -> unit) -> unit Effect.t

let create () =
  let eng =
    { now = 0L;
      events = Heap.create ();
      seq = 0;
      next_tid = 0;
      current = None;
      live = 0;
      crash_handler = (fun _ _ -> ());
      threads = Hashtbl.create 64;
      jitter = None;
      cancelled_pending = 0;
      owner = (Domain.self () :> int) }
  in
  eng.crash_handler <-
    (fun thr e ->
      let bt = Printexc.get_backtrace () in
      let msg =
        Printf.sprintf "sim thread %S (tid %d) raised %s\n%s" thr.name thr.tid
          (Printexc.to_string e) bt
      in
      raise (Failure msg));
  eng

let now eng = eng.now

(* Tid of the thread the engine is currently executing, or 0 when called
   from outside any simulation thread (boot code, sinks). *)
let current_tid eng =
  match eng.current with Some t -> t.tid | None -> 0

let set_crash_handler eng f = eng.crash_handler <- f

(* An engine is single-threaded by construction: it may only be driven by
   the domain that created it. Parallel fuzzing relies on this — each
   worker domain owns a private engine and never shares it. *)
let assert_owner eng op =
  let d = (Domain.self () :> int) in
  if d <> eng.owner then
    invalid_arg
      (Printf.sprintf
         "Engine.%s: engine owned by domain %d used from domain %d (engines \
          are single-threaded; create one per domain)"
         op eng.owner d)

let owner_domain eng = eng.owner

let set_jitter eng prng = eng.jitter <- prng

(* With jitter enabled, perturb the low bits of the tie-break sequence
   number so that events scheduled for the same virtual instant may pop in
   a different (but still seed-deterministic) order. Events at different
   times are never reordered, so causality is preserved; only the
   interleaving of logically-concurrent events varies across seeds. *)
let schedule_at eng time act =
  assert_owner eng "schedule_at";
  let time = if Int64.compare time eng.now < 0 then eng.now else time in
  eng.seq <- eng.seq + 1;
  let seq =
    match eng.jitter with
    | None -> eng.seq
    | Some p -> eng.seq lxor Prng.int p 8
  in
  let e = { cancelled = false; retired = false; act; eng } in
  Heap.push eng.events ~time ~seq e;
  e

let schedule eng ~after act =
  ignore (schedule_at eng (Int64.add eng.now after) act)

let timer eng ~after act = schedule_at eng (Int64.add eng.now after) act

(* When cancelled entries dominate the heap, sweep them out in one O(n)
   pass instead of letting them drain through [pop] at their (possibly
   far-future) deadlines. The threshold keeps the amortized cost O(1) per
   cancel while bounding the heap at ~2x its live size. *)
let maybe_compact eng =
  if
    eng.cancelled_pending > 32
    && eng.cancelled_pending * 2 > Heap.length eng.events
  then begin
    Heap.filter eng.events (fun e ->
        if e.cancelled then begin
          e.retired <- true;
          false
        end
        else true);
    eng.cancelled_pending <- 0
  end

let cancel tm =
  if not tm.cancelled && not tm.retired then begin
    tm.cancelled <- true;
    let eng = tm.eng in
    eng.cancelled_pending <- eng.cancelled_pending + 1;
    maybe_compact eng
  end

(* Resume a suspended thread by scheduling its parked continuation as an
   event at the current time. Returns false if the thread holds no
   continuation (already resumed, running, or never suspended): that tells a
   waker it lost the race against a competing waker or timeout. Any timers
   attached to the suspension (timeouts, delay wakeups) are cancelled so
   they cannot later advance the virtual clock. *)
let try_resume eng thr =
  match thr.cont with
  | None -> false
  | Some k ->
    thr.cont <- None;
    List.iter cancel thr.timers;
    thr.timers <- [];
    schedule eng ~after:0L (fun () ->
        let open Effect.Deep in
        let prev = eng.current in
        eng.current <- Some thr;
        (if thr.dead then discontinue k Killed else continue k ());
        eng.current <- prev);
    true

let resume eng thr = ignore (try_resume eng thr)

(* Arrange for a suspended thread to be woken after a delay; cancelled
   automatically if something else resumes it first. Call only from a
   suspend registration (or on a thread known to be suspended). *)
let wake_after eng thr d =
  let tm = timer eng ~after:d (fun () -> resume eng thr) in
  thr.timers <- tm :: thr.timers

let kill eng thr =
  if not thr.dead then begin
    thr.dead <- true;
    (* If suspended, force prompt unwinding so cleanup handlers run. *)
    ignore (try_resume eng thr)
  end

let finish eng thr =
  thr.dead <- true;
  eng.live <- eng.live - 1;
  Hashtbl.remove eng.threads thr.tid;
  List.iter cancel thr.timers;
  thr.timers <- [];
  List.iter (fun f -> f ()) (List.rev thr.on_exit);
  thr.on_exit <- []

let exec eng thr body =
  let open Effect.Deep in
  match_with
    (fun () -> try body () with Killed -> ())
    ()
    { retc = (fun () -> finish eng thr);
      exnc =
        (fun e ->
          finish eng thr;
          eng.crash_handler thr e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_now -> Some (fun (k : (a, unit) continuation) -> continue k eng.now)
          | E_self -> Some (fun (k : (a, unit) continuation) -> continue k thr)
          | E_delay d ->
            Some
              (fun (k : (a, unit) continuation) ->
                if thr.dead then discontinue k Killed
                else begin
                  thr.cont <- Some k;
                  (* Fast path: the wakeup timer continues the thread
                     directly instead of bouncing through a second
                     resume event, halving event-queue traffic on the
                     delay/compute path (the hottest in the simulator).
                     If a competing waker (kill, mailbox send) claims
                     the continuation first, it also cancels this
                     timer, so the direct continue can never race: a
                     fired timer finding [cont = Some] owns it. *)
                  let tm =
                    timer eng ~after:d (fun () ->
                        match thr.cont with
                        | None -> ()
                        | Some k ->
                          thr.cont <- None;
                          thr.timers <- [];
                          let prev = eng.current in
                          eng.current <- Some thr;
                          (if thr.dead then discontinue k Killed
                           else continue k ());
                          eng.current <- prev)
                  in
                  thr.timers <- tm :: thr.timers
                end)
          | E_suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                if thr.dead then discontinue k Killed
                else begin
                  thr.cont <- Some k;
                  register thr
                end)
          | _ -> None) }

let spawn ?(name = "thread") ?(at = None) eng body =
  eng.next_tid <- eng.next_tid + 1;
  let thr =
    { tid = eng.next_tid;
      name;
      dead = false;
      cont = None;
      timers = [];
      on_exit = [];
      site = "spawned" }
  in
  eng.live <- eng.live + 1;
  Hashtbl.replace eng.threads thr.tid thr;
  let start () =
    if thr.dead then
      (* Killed before it ever ran: just account for its exit. *)
      finish eng thr
    else begin
      let prev = eng.current in
      eng.current <- Some thr;
      exec eng thr body;
      eng.current <- prev
    end
  in
  (match at with
  | None -> schedule eng ~after:0L start
  | Some time -> ignore (schedule_at eng time start));
  thr

let spawn_at eng ~at ?name body = spawn ?name ~at:(Some at) eng body

let self () = Effect.perform E_self

let time () = Effect.perform E_now

let delay ns =
  if Int64.compare ns 0L > 0 then begin
    (self ()).site <- "delay";
    Effect.perform (E_delay ns)
  end

let yield () = Effect.perform (E_delay 0L)

let suspend ?(site = "suspend") register =
  (self ()).site <- site;
  Effect.perform (E_suspend register)

let at_exit_thread f =
  let thr = self () in
  thr.on_exit <- f :: thr.on_exit

let run ?until eng =
  assert_owner eng "run";
  let continue_run () =
    match Heap.peek eng.events with
    | None -> false
    | Some e ->
      if e.Heap.payload.cancelled then begin
        ignore (Heap.pop eng.events);
        e.Heap.payload.retired <- true;
        eng.cancelled_pending <- eng.cancelled_pending - 1;
        true
      end
      else begin
        match until with
        | Some u when Int64.compare e.Heap.time u > 0 ->
          eng.now <- u;
          false
        | _ ->
          ignore (Heap.pop eng.events);
          e.Heap.payload.retired <- true;
          eng.now <- e.Heap.time;
          e.Heap.payload.act ();
          true
      end
  in
  while continue_run () do
    ()
  done

let run_until_quiescent eng = run eng

let live_threads eng = eng.live

let pending_events eng = Heap.length eng.events

(* Virtual time of the earliest pending event (cancelled entries
   included — they still bound how far the clock can silently advance). *)
let next_event_time eng =
  match Heap.peek eng.events with
  | None -> None
  | Some e -> Some e.Heap.time

let queue_capacity eng = Heap.capacity eng.events

(* Total events ever scheduled; a deterministic measure of how much work
   a simulation did (wall-clock-free, so benches can gate on it). *)
let events_scheduled eng = eng.seq

let cancelled_pending eng = eng.cancelled_pending

(* Live threads sorted by tid; when the event queue has drained these are
   exactly the threads parked on a suspend with no waker left. *)
let blocked_threads eng =
  Hashtbl.fold (fun _ thr acc -> thr :: acc) eng.threads []
  |> List.filter (fun thr -> not thr.dead)
  |> List.sort (fun a b -> compare a.tid b.tid)

let check_deadlock eng =
  if eng.live > 0 && Heap.is_empty eng.events then begin
    let blocked = blocked_threads eng in
    let desc thr =
      Printf.sprintf "tid %d %S blocked at %s" thr.tid thr.name thr.site
    in
    raise
      (Deadlock
         (Printf.sprintf "deadlock: %d thread(s) made no progress: %s"
            (List.length blocked)
            (String.concat "; " (List.map desc blocked))))
  end
