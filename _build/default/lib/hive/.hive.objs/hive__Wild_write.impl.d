lib/hive/wild_write.ml: Array Flash List Rpc Sim Types
