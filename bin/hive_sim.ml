(* hive_sim: command-line driver for the simulated Hive system.

     hive_sim workload pmake --cells 4
     hive_sim workload ocean --cells 1 --smp
     hive_sim fault node --cells 4 --node 2 --at-ms 300
     hive_sim fault corrupt-cow --cells 4 --victim 1
     hive_sim sweep --areas sharing --quick
     hive_sim sweep pmake --cells 2 *)

open Cmdliner

(* ---- shared machine-shape and output terms ----

   Every subcommand that boots a system (or filters sweep rows) takes the
   same four shape flags; every subcommand that can emit observability
   artifacts takes the same two output flags. *)

type shape = {
  sh_cells : int option;
  sh_nodes : int option;
  sh_smp : bool;
  sh_no_import_cache : bool;
}

type output = { out_trace : string option; out_metrics : string option }

let shape_term =
  let cells =
    Arg.(
      value
      & opt (some int) None
      & info [ "cells" ] ~docv:"N"
          ~doc:
            "Number of cells (default 4). In sweep mode: keep only grid \
             rows with $(docv) cells.")
  in
  let nodes =
    Arg.(
      value
      & opt (some int) None
      & info [ "nodes" ] ~docv:"N"
          ~doc:
            "Number of nodes (default: the stock machine). In sweep mode: \
             keep only grid rows with $(docv) nodes.")
  in
  let smp =
    Arg.(
      value & flag
      & info [ "smp" ]
          ~doc:
            "Run the SMP-OS baseline (one kernel, firewall disabled). In \
             sweep mode: keep only SMP-baseline rows.")
  in
  let no_import_cache =
    Arg.(
      value & flag
      & info [ "no-import-cache" ]
          ~doc:
            "Run with the legacy sharing protocol: no remote-page import \
             cache, no fault read-ahead, one share.release RPC per page. \
             Useful as the A side of an A/B against the default protocol. \
             In sweep mode: keep only legacy-protocol rows.")
  in
  Term.(
    const (fun sh_cells sh_nodes sh_smp sh_no_import_cache ->
        { sh_cells; sh_nodes; sh_smp; sh_no_import_cache })
    $ cells $ nodes $ smp $ no_import_cache)

let output_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON file of the run (load it in \
             chrome://tracing or Perfetto).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Write the end-of-run typed metrics snapshot (per-op RPC \
             latency histograms, per-cell counters, sharing totals, \
             recovery timeline) as JSON.")
  in
  Term.(
    const (fun out_trace out_metrics -> { out_trace; out_metrics })
    $ trace $ metrics)

let boot_shape ?(oracle = false) ?wax shape =
  let ncells = Option.value ~default:4 shape.sh_cells in
  let eng = Sim.Engine.create () in
  let mcfg =
    match shape.sh_nodes with
    | None -> Flash.Config.default
    | Some n -> Flash.Config.with_nodes Flash.Config.default n
  in
  let mcfg =
    if shape.sh_smp then { mcfg with Flash.Config.firewall_enabled = false }
    else mcfg
  in
  let params =
    if shape.sh_no_import_cache then
      Hive.Params.legacy_sharing Hive.Params.default
    else Hive.Params.default
  in
  let sys =
    Hive.System.boot ~mcfg ~params ~ncells ~multicellular:(not shape.sh_smp)
      ~oracle
      ~wax:(Option.value ~default:(not shape.sh_smp) wax)
      eng
  in
  (eng, sys, ncells)

let setup_and_run sys = function
  | "pmake" ->
    Workloads.Pmake.setup sys Workloads.Pmake.default;
    Workloads.Pmake.run sys
  | "ocean" ->
    Workloads.Ocean.setup sys Workloads.Ocean.default;
    Workloads.Ocean.run sys
  | "raytrace" -> Workloads.Raytrace.run sys
  | other -> failwith ("unknown workload: " ^ other)

let verify_of sys = function
  | "pmake" -> Workloads.Pmake.verify sys
  | "ocean" -> Workloads.Ocean.verify sys
  | "raytrace" -> Workloads.Raytrace.verify sys
  | _ -> []

let print_counters sys =
  let _all, per_cell = Hive.System.counters sys in
  List.iter
    (fun (id, cs) ->
      Printf.printf "  cell %d:\n" id;
      List.iter (fun (k, v) -> Printf.printf "    %-28s %d\n" k v) cs)
    per_cell

(* Attach a Chrome trace_event sink when --trace-out is given; returns the
   finalizer that terminates the JSON array. *)
let attach_trace sys = function
  | None -> fun () -> ()
  | Some path ->
    let sink, close = Sim.Event.chrome_file path in
    Sim.Event.attach sys.Hive.Types.events sink;
    close

let finish_observability sys ~trace_close ~(output : output) =
  trace_close ();
  (match output.out_metrics with
  | None -> ()
  | Some path -> Hive.Metrics.write_file sys path);
  Hive.Metrics.print_summary (Hive.Metrics.capture sys)

(* ---- workload command ---- *)

let run_workload name shape verbose output =
  if verbose then Sim.Trace.set_level Sim.Trace.Info;
  let _eng, sys, ncells = boot_shape shape in
  let trace_close = attach_trace sys output.out_trace in
  let result, _ = setup_and_run sys name in
  Printf.printf "%s on %s (%d cell%s): %.3f s simulated%s\n"
    result.Workloads.Workload.name
    (if shape.sh_smp then "SMP-OS baseline" else "Hive")
    ncells
    (if ncells = 1 then "" else "s")
    (Workloads.Workload.ns_to_s result.Workloads.Workload.elapsed_ns)
    (if result.Workloads.Workload.completed then "" else "  [INCOMPLETE]");
  List.iter
    (fun (path, v) ->
      if v <> Workloads.Workload.Match then
        Printf.printf "  output %s: %s\n" path
          (Workloads.Workload.verify_outcome_to_string v))
    (verify_of sys name);
  if verbose then print_counters sys;
  finish_observability sys ~trace_close ~output;
  0

(* ---- server command: interactive traffic served through failure ---- *)

let run_server shape duration_ms rate zipf churn_pct deadline_ms kill_cell
    kill_at_ms seed verbose output =
  if verbose then Sim.Trace.set_level Sim.Trace.Info;
  let _eng, sys, ncells = boot_shape shape in
  let trace_close = attach_trace sys output.out_trace in
  (match kill_cell with
  | Some c when c < 0 || c >= ncells ->
    failwith (Printf.sprintf "--kill-cell %d: no such cell" c)
  | _ -> ());
  let cfg =
    {
      Workloads.Server.default with
      duration_ms;
      rate_rps = rate;
      zipf_s = zipf;
      churn_pct;
      deadline_ms;
      fault =
        Option.map
          (fun c -> { Workloads.Server.kill_cell = c; at_ms = kill_at_ms })
          kill_cell;
      seed;
    }
  in
  let result, stats = Workloads.Server.run ~cfg sys in
  Workloads.Server.print_stats stats;
  Printf.printf "server on %s (%d cell%s): %.3f s simulated%s\n"
    (if shape.sh_smp then "SMP-OS baseline" else "Hive")
    ncells
    (if ncells = 1 then "" else "s")
    (Workloads.Workload.ns_to_s result.Workloads.Workload.elapsed_ns)
    (if result.Workloads.Workload.completed then "" else "  [INCOMPLETE]");
  if verbose then print_counters sys;
  finish_observability sys ~trace_close ~output;
  if result.Workloads.Workload.completed then 0 else 1

(* ---- sweep command: thin wrapper over the Bench.Sweep registry ---- *)

let run_sweep workload shape areas quick out_dir =
  Bench.Scenarios.register ();
  let known = Bench.Scenario.areas () in
  let bad =
    match areas with
    | None -> []
    | Some l -> List.filter (fun a -> not (List.mem a known)) l
  in
  if bad <> [] then begin
    Printf.eprintf "sweep: unknown area(s) %s (have: %s)\n"
      (String.concat ", " bad)
      (String.concat ", " known);
    2
  end
  else begin
    let dims_filter (d : Bench.Scenario.dims) =
      (match workload with
      | None -> true
      | Some w -> d.Bench.Scenario.workload = w)
      && (match shape.sh_cells with
         | None -> true
         | Some n -> d.Bench.Scenario.cells = n)
      && (match shape.sh_nodes with
         | None -> true
         | Some n -> d.Bench.Scenario.nodes = n)
      && ((not shape.sh_smp) || d.Bench.Scenario.smp)
      && ((not shape.sh_no_import_cache)
         || not d.Bench.Scenario.import_cache)
    in
    let reports = Bench.Sweep.run ?areas ~quick ~dims_filter () in
    (match out_dir with
    | None -> ()
    | Some dir ->
      let written = Bench.Sweep.write_dir ~dir reports in
      List.iter (fun p -> Printf.printf "wrote %s\n" p) written);
    if List.for_all (fun r -> r.Bench.Sweep.a_rows = []) reports then begin
      Printf.eprintf "sweep: no grid rows matched the given filters\n";
      1
    end
    else 0
  end

(* ---- fault command ---- *)

let run_fault kind shape node victim at_ms cascade_node oracle link_from
    drop_pct dup_pct delay_pct dur_ms output =
  let eng, sys, _ = boot_shape ~oracle ~wax:false shape in
  let trace_close = attach_trace sys output.out_trace in
  Workloads.Pmake.setup sys Workloads.Pmake.default;
  let t_inject = ref 0L in
  let rng = Sim.Prng.create 1 in
  (* With --cascade-node, fail a second node while the first failure's
     recovery round is in flight (between the two global barriers). *)
  let inject_cascade () =
    match cascade_node with
    | None -> ()
    | Some second ->
      let past_barrier1 () =
        sys.Hive.Types.recovery_round_active
        && List.exists
             (fun (phase, t) ->
               phase = "recovery.barrier1" && Int64.compare t !t_inject >= 0)
             sys.Hive.Types.recovery_timeline
      in
      let rec poll tries =
        if tries > 0 && not (past_barrier1 ()) then begin
          Sim.Engine.delay 100_000L;
          poll (tries - 1)
        end
      in
      poll 10_000;
      Printf.printf "cascade: failing node %d mid-recovery\n" second;
      Hive.System.inject_node_failure sys second
  in
  ignore
    (Sim.Engine.spawn eng ~name:"injector" (fun () ->
         Sim.Engine.delay (Int64.of_int (at_ms * 1_000_000));
         t_inject := Sim.Engine.time ();
         match kind with
         | "node" ->
           Hive.System.inject_node_failure sys node;
           inject_cascade ()
         | "corrupt-cow" | "corrupt-map" ->
           let rec attempt tries =
             if tries > 0 then begin
               let injected =
                 List.exists
                   (fun (p : Hive.Types.process) ->
                     p.Hive.Types.proc_cell = victim
                     && Hive.System.corrupt_address_map sys p
                          Hive.System.Random_address rng)
                   sys.Hive.Types.cells.(victim).Hive.Types.processes
               in
               if not injected then begin
                 Sim.Engine.delay 20_000_000L;
                 attempt (tries - 1)
               end
               else t_inject := Sim.Engine.time ()
             end
           in
           attempt 100
         | "link" ->
           (* Degrade the interconnect into --node for --dur-ms: drops,
              duplicates and delays per the given percentages. The kernels
              must ride it out with retransmission and reply caching. *)
           ignore
             (Faultinj.Campaign.inject sys rng
                (Faultinj.Campaign.Link_degrade
                   {
                     deg_from = link_from;
                     deg_to = node;
                     at_ns = Sim.Engine.time ();
                     dur_ns = Int64.of_int (dur_ms * 1_000_000);
                     drop_pct;
                     dup_pct;
                     delay_pct;
                     max_delay_ns = 2_000_000L;
                     salt = 0x51EED5A17L;
                   }))
         | other -> failwith ("unknown fault kind: " ^ other)));
  let result, _ = Workloads.Pmake.run sys in
  Printf.printf "pmake with %s fault: %.3f s simulated, %s\n" kind
    (Workloads.Workload.ns_to_s result.Workloads.Workload.elapsed_ns)
    (if result.Workloads.Workload.completed then "driver completed"
     else "driver died");
  (match Hive.System.detection_latency_ns sys ~t_fault:!t_inject with
  | Some ns ->
    Printf.printf "detection latency: %.1f ms\n" (Int64.to_float ns /. 1e6)
  | None -> Printf.printf "no recovery round recorded\n");
  (* Let the recovery master finish diagnostics and reintegration. *)
  ignore
    (Hive.System.run_until sys
       ~deadline:(Int64.add (Sim.Engine.now eng) 2_000_000_000L)
       (fun () -> not sys.Hive.Types.recovery_in_progress));
  let sys_count name = Sim.Stats.value sys.Hive.Types.sys_counters name in
  Printf.printf "recovery round restarts: %d\n"
    (sys_count "recovery.round_restarts");
  Printf.printf "cells reintegrated: %d\n" (sys_count "cell.reintegrations");
  Printf.printf "live cells: [%s]\n"
    (String.concat "; "
       (List.map string_of_int (Hive.System.live_cells sys)));
  if kind = "link" then begin
    let per name =
      Array.fold_left
        (fun acc (c : Hive.Types.cell) ->
          acc + Sim.Stats.value c.Hive.Types.counters name)
        0 sys.Hive.Types.cells
    in
    let sips = Flash.Machine.sips sys.Hive.Types.machine in
    Printf.printf
      "sips damage: %d dropped, %d duplicated, %d delayed (of %d sends)\n"
      (Flash.Sips.drop_count sips)
      (Flash.Sips.dup_count sips)
      (Flash.Sips.delay_count sips)
      (Flash.Sips.send_count sips);
    Printf.printf
      "rpc transport: %d retransmits, %d duplicates suppressed, %d stale \
       drops, %d late replies\n"
      (per "rpc.retransmits") (per "rpc.dup_suppressed")
      (per "rpc.stale_reply_drops" + per "rpc.stale_request_drops")
      (per "rpc.late_replies")
  end;
  let corrupt =
    List.filter
      (fun (_, v) -> v = Workloads.Workload.Corrupt)
      (Workloads.Pmake.verify sys)
  in
  Printf.printf "corrupt outputs: %d (must be 0)\n" (List.length corrupt);
  (* End-state structural check: containment means the survivors' kernel
     state is consistent, not just that the build's outputs are. Give
     in-flight batches a moment to drain so transient pins don't read as
     leaks. *)
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 1_000_000_000L) eng;
  let violations = Hive.Invariants.check sys in
  List.iter
    (fun viol ->
      Printf.printf "invariant violation: %s\n" (Hive.Invariants.to_string viol))
    violations;
  Printf.printf "invariants: %s\n"
    (if violations = [] then "clean" else "VIOLATED");
  finish_observability sys ~trace_close ~output;
  if corrupt = [] && violations = [] then 0 else 1

(* ---- fuzz command ---- *)

let run_fuzz seeds seed_base replay shrink_flag out demo_bug dup_bug
    split_brain jobs output =
  let out_chan = Option.map open_out out in
  let emit r =
    match out_chan with
    | Some oc -> output_string oc (Faultinj.Fuzz.record_to_json r ^ "\n")
    | None -> ()
  in
  (* Emission and failure post-mortems always run on the main domain, in
     seed order; workers only compute records. With [--jobs n] the
     output (stdout and the JSONL file) is therefore byte-identical to a
     serial run. *)
  let report ~traced seed r =
    emit r;
    if Faultinj.Fuzz.failed r then begin
      let plan = Faultinj.Fuzz.plan_of_seed seed in
      Printf.printf "FAIL %s\n" (Faultinj.Fuzz.record_to_json r);
      (* Replay the failing seed with a Chrome trace for post-mortem
         (unless this run already wrote one). *)
      if not traced then begin
        let trace = Printf.sprintf "fuzz-fail-0x%Lx.trace.json" seed in
        ignore
          (Faultinj.Fuzz.run_plan ~demo_bug ~dup_bug ~split_brain
             ~trace_out:trace plan);
        Printf.printf "  trace written to %s\n" trace
      end;
      if shrink_flag then begin
        let p', r' =
          Faultinj.Fuzz.shrink ~demo_bug ~dup_bug ~split_brain plan
        in
        Printf.printf "  shrunk to: %s\n" (Faultinj.Fuzz.describe_plan p');
        Printf.printf "  %s\n" (Faultinj.Fuzz.record_to_json r')
      end;
      false
    end
    else begin
      Printf.printf "ok   seed=0x%Lx sim=%.2fs injected=%d survivors=[%s]\n"
        seed
        (Int64.to_float r.Faultinj.Fuzz.r_sim_ns /. 1e9)
        (List.length r.Faultinj.Fuzz.r_injected)
        (String.concat ";"
           (List.map string_of_int r.Faultinj.Fuzz.r_survivors));
      true
    end
  in
  let ok =
    match replay with
    | Some seed ->
      let r =
        Faultinj.Fuzz.run_plan ~demo_bug ~dup_bug ~split_brain
          ?trace_out:output.out_trace ?metrics_out:output.out_metrics
          (Faultinj.Fuzz.plan_of_seed seed)
      in
      report ~traced:(output.out_trace <> None) seed r
    | None ->
      let failures = ref 0 in
      let seed_list =
        Array.init seeds (fun i -> Int64.add seed_base (Int64.of_int i))
      in
      Faultinj.Campaign.run_parallel ~jobs ~seeds:seed_list
        ~run:(fun seed ->
          Faultinj.Fuzz.run_plan ~demo_bug ~dup_bug ~split_brain
            (Faultinj.Fuzz.plan_of_seed seed))
        ~on_record:(fun seed r ->
          if not (report ~traced:false seed r) then incr failures);
      Printf.printf "fuzz: %d seed(s), %d failure(s)\n" seeds !failures;
      !failures = 0
  in
  Option.iter close_out out_chan;
  if ok then 0 else 1

(* ---- cmdliner terms ---- *)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print kernel counters.")

let workload_name =
  Arg.(
    required
    & pos 0 (some (enum [ ("pmake", "pmake"); ("ocean", "ocean"); ("raytrace", "raytrace") ])) None
    & info [] ~docv:"WORKLOAD" ~doc:"pmake, ocean or raytrace.")

let workload_cmd =
  Cmd.v
    (Cmd.info "workload" ~doc:"Run one workload on a chosen configuration.")
    Term.(
      const run_workload $ workload_name $ shape_term $ verbose_arg
      $ output_term)

let sweep_workload =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD"
        ~doc:
          "Optional workload filter: keep only grid rows of this workload \
           (e.g. pmake, ocean, raytrace, rpc, read).")

let areas_arg =
  Arg.(
    value
    & opt (some (list string)) None
    & info [ "areas" ] ~docv:"A,B"
        ~doc:"Restrict the sweep to the named benchmark areas.")

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:
          "Run each scenario's reduced grid (the subset CI exercises) \
           instead of the full grid.")

let out_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out-dir" ] ~docv:"DIR"
        ~doc:"Write one BENCH_<area>.json per area into $(docv).")

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run the registered benchmark scenarios across their dimension \
          grids (workload x cells x nodes x working set x link degradation \
          x import cache) and optionally emit the deterministic \
          BENCH_<area>.json trajectory files.")
    Term.(
      const run_sweep $ sweep_workload $ shape_term $ areas_arg $ quick_arg
      $ out_dir_arg)

let fault_kind =
  Arg.(
    required
    & pos 0
        (some
           (enum
              [ ("node", "node"); ("corrupt-cow", "corrupt-cow");
                ("corrupt-map", "corrupt-map"); ("link", "link") ]))
        None
    & info [] ~docv:"KIND" ~doc:"node, corrupt-cow, corrupt-map or link.")

let node_arg =
  Arg.(
    value & opt int 2
    & info [ "node" ] ~docv:"N"
        ~doc:"Node to fail (or the degraded link's destination node).")

let link_from_arg =
  Arg.(
    value & opt int (-1)
    & info [ "link-from" ] ~docv:"PROC"
        ~doc:
          "With the link fault kind: source processor of the degraded \
           link (-1 = any).")

let drop_pct_arg =
  Arg.(
    value & opt int 30
    & info [ "drop-pct" ] ~docv:"PCT"
        ~doc:"Link fault: percentage of messages dropped.")

let dup_pct_arg =
  Arg.(
    value & opt int 20
    & info [ "dup-pct" ] ~docv:"PCT"
        ~doc:"Link fault: percentage of messages duplicated.")

let delay_pct_arg =
  Arg.(
    value & opt int 20
    & info [ "delay-pct" ] ~docv:"PCT"
        ~doc:"Link fault: percentage of messages delayed (up to 2 ms).")

let dur_ms_arg =
  Arg.(
    value & opt int 300
    & info [ "dur-ms" ] ~docv:"MS"
        ~doc:"Link fault: window duration in milliseconds.")

let victim_arg =
  Arg.(
    value & opt int 1
    & info [ "victim" ] ~docv:"CELL" ~doc:"Cell to corrupt.")

let at_ms_arg =
  Arg.(
    value & opt int 300
    & info [ "at-ms" ] ~docv:"MS" ~doc:"Injection time in milliseconds.")

let cascade_node_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cascade-node" ] ~docv:"N"
        ~doc:
          "With the node fault kind: fail a second node while the first \
           failure's recovery round is in flight, forcing a round restart \
           with the enlarged dead set.")

let oracle_arg =
  Arg.(
    value & flag
    & info [ "oracle" ]
        ~doc:"Use the failure oracle instead of distributed agreement.")

let fault_cmd =
  Cmd.v
    (Cmd.info "fault"
       ~doc:"Inject a fault during pmake and report containment.")
    Term.(
      const run_fault $ fault_kind $ shape_term $ node_arg $ victim_arg
      $ at_ms_arg $ cascade_node_arg $ oracle_arg $ link_from_arg
      $ drop_pct_arg $ dup_pct_arg $ delay_pct_arg $ dur_ms_arg
      $ output_term)

let seeds_arg =
  Arg.(
    value & opt int 25
    & info [ "seeds" ] ~docv:"N" ~doc:"Number of consecutive seeds to run.")

let seed_base_arg =
  Arg.(
    value & opt int64 1L
    & info [ "seed-base" ] ~docv:"SEED"
        ~doc:"First seed of the sweep (decimal or 0x hex).")

let replay_arg =
  Arg.(
    value
    & opt (some int64) None
    & info [ "replay" ] ~docv:"SEED"
        ~doc:"Replay a single seed instead of sweeping.")

let shrink_arg =
  Arg.(
    value & flag
    & info [ "shrink" ]
        ~doc:"Shrink failing seeds to a minimal reproducer plan.")

let fuzz_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Append one JSON record per seed to FILE (JSON Lines).")

let demo_bug_arg =
  Arg.(
    value & flag
    & info [ "demo-bug" ]
        ~doc:
          "(testing) Plant a deliberate containment bug — a firewall grant \
           the kernel never recorded — to prove the checkers catch it.")

let dup_bug_arg =
  Arg.(
    value & flag
    & info [ "demo-dup-bug" ]
        ~doc:
          "(testing) Plant a deliberate transport bug — reply-cache \
           suppression disabled under a duplication-heavy degradation \
           window — to prove the at-most-once checker catches duplicate \
           execution.")

let split_brain_arg =
  Arg.(
    value & flag
    & info [ "demo-split-brain" ]
        ~doc:
          "(testing) Plant a deliberate agreement bug — the quorum check \
           disabled while cell 0 is severed from the rest of the machine \
           — to prove the latched single-master oracle catches the \
           resulting concurrent recovery masters.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Shard the seed sweep across N domains (work-stealing; each \
           worker owns a private single-threaded simulation engine). \
           Output is byte-identical to --jobs 1 for any N.")

let duration_ms_arg =
  Arg.(
    value & opt int 3000
    & info [ "duration-ms" ] ~docv:"MS"
        ~doc:"Traffic duration in simulated milliseconds.")

let rate_arg =
  Arg.(
    value & opt float 80.
    & info [ "rate" ] ~docv:"RPS"
        ~doc:"System-wide open-loop arrival rate (requests/s).")

let zipf_arg =
  Arg.(
    value & opt float 1.1
    & info [ "zipf" ] ~docv:"S"
        ~doc:"Zipf exponent for file popularity.")

let churn_pct_arg =
  Arg.(
    value & opt int 10
    & info [ "churn-pct" ] ~docv:"PCT"
        ~doc:"Percent of arrivals that are fork/exit churn requests.")

let deadline_ms_arg =
  Arg.(
    value & opt int 250
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"End-to-end client deadline budget per request.")

let kill_cell_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "kill-cell" ] ~docv:"CELL"
        ~doc:"Fail-stop CELL mid-traffic to measure serving through failure.")

let kill_at_ms_arg =
  Arg.(
    value & opt int 1000
    & info [ "kill-at-ms" ] ~docv:"MS"
        ~doc:"When to kill the cell (simulated ms from traffic start).")

let traffic_seed_arg =
  Arg.(
    value & opt int64 0x5EEDL
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"PRNG seed for arrivals, popularity and churn draws.")

let server_cmd =
  Cmd.v
    (Cmd.info "server"
       ~doc:
         "Interactive time-sharing traffic served through failure: \
          open-loop Poisson arrivals with Zipf file popularity and \
          fork/exit churn, deadline-budgeted client retries, per-cell \
          admission control, and per-phase tail latency (before / during \
          / after an optional cell kill).")
    Term.(
      const run_server $ shape_term $ duration_ms_arg $ rate_arg $ zipf_arg
      $ churn_pct_arg $ deadline_ms_arg $ kill_cell_arg $ kill_at_ms_arg
      $ traffic_seed_arg $ verbose_arg $ output_term)

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Deterministic fault-campaign fuzzing: each seed derives a machine \
          shape, workload, scheduler jitter and fault schedule; system-wide \
          invariants are checked at end of run. Failing seeds replay \
          bit-for-bit and can be shrunk. With --replay, --trace-out and \
          --metrics-json capture that run's artifacts.")
    Term.(
      const run_fuzz $ seeds_arg $ seed_base_arg $ replay_arg $ shrink_arg
      $ fuzz_out_arg $ demo_bug_arg $ dup_bug_arg $ split_brain_arg
      $ jobs_arg $ output_term)

let main =
  Cmd.group
    (Cmd.info "hive_sim" ~version:"1.0"
       ~doc:"Simulated Hive multicellular OS on a FLASH machine model.")
    [ workload_cmd; server_cmd; sweep_cmd; fault_cmd; fuzz_cmd ]

let () = exit (Cmd.eval' main)
