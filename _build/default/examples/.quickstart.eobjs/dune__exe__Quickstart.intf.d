examples/quickstart.mli:
