lib/flash/config.mli:
