lib/hive/gate.mli: Types
