(* Distributed agreement on cell failure (Section 4.3).

   A hint alone must not reboot a cell: a faulty cell that mistakenly
   concluded others were corrupt could destroy a large fraction of the
   system. When an alert is broadcast, all cells suspend user-level
   processes and vote on the suspect's liveness; consensus among the
   surviving cells is required before recovery. A cell that broadcasts
   the same alert twice but is voted down both times is itself considered
   corrupt by the other cells.

   The paper simulated this protocol with an oracle (the group-membership
   algorithm was not yet implemented); we provide both the real
   broadcast-vote protocol and an oracle mode for reproducing the paper's
   experimental setup. *)

type Types.payload +=
  | P_vote_req of { suspect : Types.cell_id; accuser : Types.cell_id }
  | P_vote of { alive : bool }
  | P_dismiss of { accuser : Types.cell_id }

let vote_op = Rpc.Op.declare "agree.vote"

(* A liveness probe has no effect to replay. *)
let ping_op = Rpc.Op.declare ~idempotent:true "agree.ping"

let dismiss_op = Rpc.Op.declare "agree.dismiss"

let probe_timeout_ns = 2_000_000L

(* Ground truth used in oracle mode, mirroring the SimOS machine model's
   failure oracle. *)
let oracle_dead (sys : Types.system) suspect =
  let c = sys.Types.cells.(suspect) in
  c.Types.cstatus = Types.Cell_down
  || List.exists
       (fun n -> not (Flash.Machine.node_alive sys.Types.machine n))
       c.Types.cell_nodes

(* Probe a suspect: careful read of its clock word plus a ping RPC. *)
let probe (sys : Types.system) (voter : Types.cell) suspect =
  Sim.Engine.delay sys.Types.params.Params.agreement_vote_ns;
  if sys.Types.use_agreement_oracle then not (oracle_dead sys suspect)
  else begin
    let clock_ok =
      match Clock.read_peer_clock sys voter ~target:suspect with
      | Ok _ -> true
      | Error _ -> false
    in
    clock_ok
    &&
    match
      Rpc.call sys ~from:voter ~target:suspect ~op:ping_op
        ~timeout_ns:probe_timeout_ns Types.P_unit
    with
    | Ok _ -> true
    | Error _ -> false
  end

let false_alert_count (c : Types.cell) accuser =
  match List.assoc_opt accuser c.Types.false_alerts with
  | Some n -> n
  | None -> 0

let bump_false_alerts (c : Types.cell) accuser =
  let n = false_alert_count c accuser in
  c.Types.false_alerts <-
    (accuser, n + 1) :: List.remove_assoc accuser c.Types.false_alerts

(* Run one agreement round from the accusing cell. *)
let run (sys : Types.system) (accuser : Types.cell) ~suspect ~reason =
  if sys.Types.recovery_in_progress || not (Types.cell_alive accuser) then ()
  else begin
    sys.Types.recovery_in_progress <- true;
    Types.sys_bump sys "agreement.rounds";
    Sim.Trace.info sys.Types.eng "agreement: cell %d accuses cell %d (%s)"
      accuser.Types.cell_id suspect reason;
    Types.note_phase sys ~cell:accuser.Types.cell_id "recovery.agreement";
    Gate.close sys accuser;
    let voters =
      List.filter (fun id -> id <> suspect) accuser.Types.live_set
    in
    let votes_dead = ref 0 and votes_alive = ref 0 in
    List.iter
      (fun voter_id ->
        if voter_id = accuser.Types.cell_id then begin
          if probe sys accuser suspect then incr votes_alive
          else incr votes_dead
        end
        else
          match
            Rpc.call sys ~from:accuser ~target:voter_id ~op:vote_op
              (P_vote_req { suspect; accuser = accuser.Types.cell_id })
          with
          | Ok (P_vote { alive }) ->
            if alive then incr votes_alive else incr votes_dead
          | Ok _ | Error _ ->
            (* An unreachable voter neither confirms nor denies. *)
            ())
      voters;
    if !votes_dead > !votes_alive then begin
      Types.sys_bump sys "agreement.confirmed";
      Recovery.initiate sys ~dead:[ suspect ]
    end
    else begin
      (* Dismissed: reopen gates everywhere and note the false alert. *)
      Types.sys_bump sys "agreement.dismissed";
      bump_false_alerts accuser accuser.Types.cell_id;
      accuser.Types.suspected <-
        List.filter (fun s -> s <> suspect) accuser.Types.suspected;
      List.iter
        (fun voter_id ->
          if voter_id <> accuser.Types.cell_id then
            ignore
              (Rpc.call sys ~from:accuser ~target:voter_id ~op:dismiss_op
                 (P_dismiss { accuser = accuser.Types.cell_id })))
        voters;
      Gate.open_ sys accuser;
      sys.Types.recovery_in_progress <- false
    end
  end

(* After voting "dead" a cell keeps its gate closed until the accuser
   either confirms (recovery closes it anyway) or dismisses the alert. A
   lost dismiss must not suspend user processes forever: re-check after a
   timeout and reopen if no recovery is in flight. While agreement or
   recovery is still running, re-arm and look again later. *)
let watchdog_timeout_ns = 2_000_000_000L

let watchdog_reopen (sys : Types.system) (cell : Types.cell) =
  let rec check () =
    if Types.cell_alive cell && not cell.Types.user_gate_open then begin
      if sys.Types.recovery_in_progress || cell.Types.in_recovery then
        Sim.Engine.schedule sys.Types.eng ~after:watchdog_timeout_ns check
      else begin
        Types.bump cell "agreement.watchdog_reopens";
        Gate.open_ sys cell
      end
    end
  in
  Sim.Engine.schedule sys.Types.eng ~after:watchdog_timeout_ns check

let registered = ref false

let register_handlers () =
  if not !registered then begin
    registered := true;
    Rpc.register ping_op (fun _sys _cell ~src:_ _arg ->
        Types.Immediate (Ok Types.P_unit));
    Rpc.register vote_op (fun sys cell ~src arg ->
        match arg with
        | P_vote_req { suspect; accuser } ->
          Types.Queued
            (fun () ->
              (* Suspend user-level processes for the duration of
                 agreement (and recovery, if confirmed). *)
              Gate.close sys cell;
              let alive =
                if false_alert_count cell accuser >= 2 then
                  (* Repeated false accuser: considered corrupt; refuse to
                     confirm its alerts. *)
                  true
                else probe sys cell suspect
              in
              ignore src;
              if alive then begin
                (* Reopen optimistically; a confirm will re-close. *)
                Gate.open_ sys cell
              end
              else
                (* The gate stays closed awaiting the accuser's verdict.
                   On a degraded interconnect the dismiss RPC can be lost
                   even after every retransmission, which would leave this
                   cell's processes suspended forever — a watchdog reopens
                   the gate if no recovery materializes. *)
                watchdog_reopen sys cell;
              Ok (P_vote { alive }))
        | _ -> Types.Immediate (Error Types.EFAULT));
    Rpc.register dismiss_op (fun sys cell ~src:_ arg ->
        match arg with
        | P_dismiss { accuser } ->
          bump_false_alerts cell accuser;
          Gate.open_ sys cell;
          Types.Immediate (Ok Types.P_unit)
        | _ -> Types.Immediate (Error Types.EFAULT))
  end
