(* Virtual memory: address-space regions, page faults, logical-level
   sharing of file and anonymous pages, and the VM side of recovery
   (Table 5.1, Sections 5.2-5.6).

   There is no instruction-level execution in the simulation, so "the
   hardware" faults when a workload touches a virtual page with no entry in
   the process's mapping table; the fault path then follows the paper:
   check the local pfdat hash, and on a miss either service locally or send
   a locate RPC to the data home, which exports the page for the client to
   import. *)

type Types.payload +=
  | P_anon_locate of { node_id : int; page : int; writable : bool }
  | P_anon_page of { pfn : int }

let anon_locate_op = Rpc.Op.declare ~arg_bytes:32 "vm.anon_locate"

let page_size (sys : Types.system) = sys.Types.mcfg.Flash.Config.page_size

let mem (sys : Types.system) = Flash.Machine.memory sys.Types.machine

let frame_addr (sys : Types.system) pfn =
  Flash.Addr.addr_of_pfn sys.Types.mcfg pfn

let cell_of (sys : Types.system) (p : Types.process) =
  sys.Types.cells.(p.Types.proc_cell)

let note_dependency (p : Types.process) cell_id =
  if
    cell_id <> p.Types.proc_cell
    && not (List.mem cell_id p.Types.uses_cells)
  then p.Types.uses_cells <- cell_id :: p.Types.uses_cells

(* ---------- Region setup ---------- *)

let next_start (p : Types.process) =
  List.fold_left
    (fun acc (r : Types.region) -> max acc (r.Types.start_page + r.Types.npages))
    16 p.Types.regions

let map_file (sys : Types.system) (p : Types.process) vnode ~opened_gen
    ~writable ~npages =
  let r =
    {
      Types.start_page = next_start p;
      npages;
      kind = Types.File_region (vnode, 0);
      reg_writable = writable;
      opened_gen;
    }
  in
  ignore sys;
  p.Types.regions <- r :: p.Types.regions;
  let fid = Types.vnode_fid vnode in
  note_dependency p fid.Types.home;
  r

let map_anon (sys : Types.system) (p : Types.process) (leaf : Types.cow_ref)
    ~npages =
  let r =
    {
      Types.start_page = next_start p;
      npages;
      kind = Types.Anon_region { cow_cell = leaf.Types.cow_cell;
                                 cow_addr = leaf.Types.cow_addr };
      reg_writable = true;
      opened_gen = 0;
    }
  in
  ignore sys;
  p.Types.regions <- r :: p.Types.regions;
  r

let region_of (p : Types.process) vpage =
  List.find_opt
    (fun (r : Types.region) ->
      vpage >= r.Types.start_page && vpage < r.Types.start_page + r.Types.npages)
    p.Types.regions

(* ---------- Anonymous page service ---------- *)

(* Materialize a fresh anonymous page recorded at the process's leaf. *)
let anon_create (sys : Types.system) (c : Types.cell) (leaf : Types.cow_ref)
    ~page =
  let pf = Page_alloc.alloc_frame sys c in
  Cow.record_write sys c leaf ~page;
  let node_id = Cow.node_id sys { leaf with Types.cow_cell = leaf.Types.cow_cell } in
  let lid =
    {
      Types.tag = Types.Anon_obj { cow_home = c.Types.cell_id; node_id };
      page;
    }
  in
  Pfdat.insert c lid pf;
  pf

(* Get the frame for an anon page recorded at node [r] (local or remote). *)
let rec anon_get (sys : Types.system) (c : Types.cell) (r : Types.cow_ref)
    ~page ~writable =
  if r.Types.cow_cell = c.Types.cell_id then begin
    let node_id = Cow.node_id sys r in
    let lid =
      { Types.tag = Types.Anon_obj { cow_home = c.Types.cell_id; node_id };
        page }
    in
    match Pfdat.lookup c lid with
    | Some pf -> Ok pf
    | None -> (
      (* Not in memory: it may have been swapped out. *)
      match Swap.swap_in sys c lid with
      | Some pf -> Ok pf
      | None -> Error Types.EFAULT (* recorded but discarded *))
  end
  else begin
    (* The cell owning the recording node is the data home for the page:
       RPC to set up the export/import binding. *)
    let owner = r.Types.cow_cell in
    let node_id =
      (* Read the node id carefully; a defended failure means the owner is
         corrupt or gone. *)
      match
        Careful_ref.protect sys c ~target:owner (fun ctx ->
            Careful_ref.check_tag ctx ~addr:r.Types.cow_addr
              ~expected:Cow.cow_tag;
            Int64.to_int
              (Careful_ref.read_field ctx ~addr:r.Types.cow_addr ~index:0))
      with
      | Ok id -> Some id
      | Error reason ->
        (* A defended careful-reference failure is a failure hint
           (Table 4.1), exactly like [Cow.Defended] in [fault]: report it
           so agreement can run on the owner, instead of silently
           returning EFAULT and leaving a corrupt cell unsuspected. *)
        Types.bump c "vm.anon_careful_failures";
        (match sys.Types.on_hint with
        | Some f ->
          f c ~suspect:owner ~reason:(Careful_ref.reason_to_string reason)
        | None -> ());
        None
    in
    match node_id with
    | None -> Error Types.EFAULT
    | Some node_id -> (
      let epoch = c.Types.flush_epoch in
      match
        Rpc.call sys ~from:c ~target:owner ~op:anon_locate_op
          (P_anon_locate { node_id; page; writable })
      with
      | Ok (P_anon_page { pfn = _ }) when c.Types.flush_epoch <> epoch ->
        (* Recovery flushed this cell while the locate was in flight: the
           reply's frame may already be discarded at the owner. Wait out
           the round and relocate. *)
        Types.bump c "vm.stale_locates";
        Gate.pass c;
        anon_get sys c r ~page ~writable
      | Ok (P_anon_page { pfn }) ->
        let lid =
          { Types.tag = Types.Anon_obj { cow_home = owner; node_id }; page }
        in
        Ok (Share.import sys c ~pfn ~data_home:owner ~lid ~gen:0 ~writable)
      | Ok _ -> Error Types.EFAULT
      | Error e -> Error e)
  end

(* ---------- The page fault path ---------- *)

let add_mapping (p : Types.process) ~vpage ~lid (pf : Types.pfdat) ~writable =
  (match Hashtbl.find_opt p.Types.mappings vpage with
  | Some old -> old.Types.map_pf.Types.refs <- max 0 (old.Types.map_pf.Types.refs - 1)
  | None -> ());
  pf.Types.refs <- pf.Types.refs + 1;
  Hashtbl.replace p.Types.mappings vpage
    { Types.map_lid = lid; map_pf = pf; map_writable = writable }

let fault (sys : Types.system) (p : Types.process) ~vpage ~write =
  let c = cell_of sys p in
  Gate.pass c;
  Types.bump c "vm.faults";
  let par = sys.Types.params in
  match region_of p vpage with
  | None -> Error Types.EFAULT
  | Some r when write && not r.Types.reg_writable -> Error Types.EFAULT
  | Some r -> (
    let t0 = Sim.Engine.time () in
    let finish lid pf ~remote =
      add_mapping p ~vpage ~lid pf ~writable:write;
      if write then pf.Types.dirty <- true;
      note_dependency p
        (Flash.Addr.node_of_pfn sys.Types.mcfg pf.Types.pfn
        |> fun node -> (Types.cell_of_node sys node).Types.cell_id);
      (match pf.Types.imported_from with
      | Some home -> note_dependency p home
      | None -> ());
      let dt = Int64.sub (Sim.Engine.time ()) t0 in
      if remote then Sim.Stats.add_ns c.Types.remote_fault_ns dt
      else Sim.Stats.add_ns c.Types.fault_in_cache_ns dt;
      Ok ()
    in
    match r.Types.kind with
    | Types.File_region (vnode, base) -> (
      let page = base + (vpage - r.Types.start_page) in
      let fid = Types.vnode_fid vnode in
      let lid = { Types.tag = Types.File_obj fid; page } in
      let is_remote_miss =
        (match vnode with
        | Types.Local_vnode _ -> false
        | Types.Shadow_vnode _ -> true)
        && Pfdat.lookup c lid = None
      in
      (* Client-side locking and VM path costs beyond the FS work
         (Table 5.2). *)
      if is_remote_miss then begin
        Sim.Engine.delay par.Params.fault_client_lock_ns;
        Sim.Engine.delay par.Params.fault_client_vm_ns
      end;
      match
        Fs.get_page sys c vnode ~page ~writable:write
          ~opened_gen:r.Types.opened_gen ~usage:`Fault
      with
      | Ok pf -> finish lid pf ~remote:is_remote_miss
      | Error e -> Error e)
    | Types.Anon_region cref -> (
      let page = vpage - r.Types.start_page in
      (* Search up the copy-on-write tree from the process leaf. *)
      match Cow.lookup sys c cref ~page with
      | Cow.Defended reason ->
        Types.bump c "vm.cow_defended";
        (match sys.Types.on_hint with
        | Some f ->
          f c ~suspect:cref.Types.cow_cell
            ~reason:(Careful_ref.reason_to_string reason)
        | None -> ());
        Error Types.EFAULT
      | Cow.Not_present ->
        (* First touch: allocate at our leaf (zero-filled). *)
        Sim.Engine.delay par.Params.fault_local_hit_ns;
        let pf = anon_create sys c cref ~page in
        let node_id = Cow.node_id sys cref in
        let lid =
          { Types.tag = Types.Anon_obj { cow_home = c.Types.cell_id; node_id };
            page }
        in
        finish lid pf ~remote:false
      | Cow.Found owner_ref ->
        let owner_local = owner_ref.Types.cow_cell = c.Types.cell_id in
        if write && not (owner_local && owner_ref = cref) then begin
          (* Copy-on-write break: copy the ancestor's page into a fresh
             local frame recorded at our own leaf. *)
          Sim.Engine.delay par.Params.fault_local_hit_ns;
          match anon_get sys c owner_ref ~page ~writable:false with
          | Error e -> Error e
          | Ok src_pf ->
            let psize = page_size sys in
            let data =
              Flash.Memory.read sys.Types.eng (mem sys)
                ~by:(Types.boss_proc c)
                (frame_addr sys src_pf.Types.pfn)
                psize
            in
            let dst = anon_create sys c cref ~page in
            Flash.Memory.write sys.Types.eng (mem sys) ~by:(Types.boss_proc c)
              (frame_addr sys dst.Types.pfn)
              data;
            (* Drop our import binding to the source page if we made one
               (a local source may live in a borrowed frame, which stays). *)
            (if src_pf.Types.imported_from <> None then
               Share.release sys c src_pf);
            let node_id = Cow.node_id sys cref in
            let lid =
              { Types.tag =
                  Types.Anon_obj { cow_home = c.Types.cell_id; node_id };
                page }
            in
            finish lid dst ~remote:false
        end
        else begin
          (if owner_local then Sim.Engine.delay par.Params.fault_local_hit_ns
           else begin
             Sim.Engine.delay par.Params.fault_client_lock_ns;
             Sim.Engine.delay par.Params.fault_client_vm_ns
           end);
          match anon_get sys c owner_ref ~page ~writable:write with
          | Error e -> Error e
          | Ok pf ->
            let node_id =
              match pf.Types.lid with
              | Some l -> (
                match l.Types.tag with
                | Types.Anon_obj a -> a.node_id
                | _ -> 0)
              | None -> 0
            in
            let lid =
              { Types.tag =
                  Types.Anon_obj
                    { cow_home = owner_ref.Types.cow_cell; node_id };
                page }
            in
            finish lid pf ~remote:(not owner_local)
        end))

(* Touch a virtual page: fast no-op when mapped, fault otherwise. *)
let touch (sys : Types.system) (p : Types.process) ~vpage ~write =
  match Hashtbl.find_opt p.Types.mappings vpage with
  | Some m when (not write) || m.Types.map_writable ->
    Sim.Engine.delay sys.Types.mcfg.Flash.Config.l2_hit_ns;
    Ok ()
  | _ -> fault sys p ~vpage ~write

(* Read/write actual memory words through a virtual page, exercising the
   hardware firewall on the real frame. *)
let write_word (sys : Types.system) (p : Types.process) ~vpage ~offset v =
  let max_retries = sys.Types.params.Params.max_refault_retries in
  let rec go retries =
    match touch sys p ~vpage ~write:true with
    | Error e -> Error e
    | Ok () -> (
      let m = Hashtbl.find p.Types.mappings vpage in
      let addr = frame_addr sys m.Types.map_pf.Types.pfn + offset in
      let c = cell_of sys p in
      match Flash.Memory.write_i64 sys.Types.eng (mem sys) ~by:(Types.boss_proc c) addr v with
      | () -> Ok ()
      | exception Flash.Memory.Bus_error { cause = Flash.Memory.Firewall_denied; _ } ->
        (* Permission revoked since mapping (e.g. post-recovery): refault.
           Bounded, because the refault can hand back the same frame
           without restoring write permission (a home that revoked the
           grant but still serves the binding): unbounded recursion here
           is a livelock inside a syscall. *)
        Hashtbl.remove p.Types.mappings vpage;
        Types.bump c "vm.refault_retries";
        if retries >= max_retries then Error Types.EFAULT
        else go (retries + 1)
      | exception Flash.Memory.Bus_error _ -> Error Types.EFAULT)
  in
  go 0

let read_word (sys : Types.system) (p : Types.process) ~vpage ~offset =
  match touch sys p ~vpage ~write:false with
  | Error e -> Error e
  | Ok () -> (
    let m = Hashtbl.find p.Types.mappings vpage in
    let addr = frame_addr sys m.Types.map_pf.Types.pfn + offset in
    let c = cell_of sys p in
    match Flash.Memory.read_i64 sys.Types.eng (mem sys) ~by:(Types.boss_proc c) addr with
    | v -> Ok v
    | exception Flash.Memory.Bus_error _ -> Error Types.EFAULT)

(* ---------- Teardown and recovery support ---------- *)

let unmap_all (sys : Types.system) (p : Types.process) =
  let c = cell_of sys p in
  Hashtbl.iter
    (fun _ (m : Types.mapping) ->
      m.Types.map_pf.Types.refs <- max 0 (m.Types.map_pf.Types.refs - 1))
    p.Types.mappings;
  Hashtbl.reset p.Types.mappings;
  (* Release idle imported pages eagerly on exit. Teardown may run outside
     a thread context, so hand the releases (which RPC the data home) to
     the cell's reaper thread. *)
  Pfdat.iter_pages c (fun pf ->
      if
        pf.Types.extended
        && pf.Types.imported_from <> None
        && pf.Types.refs = 0
        && not pf.Types.cached (* parked bindings are already released *)
      then Sim.Mailbox.send sys.Types.eng c.Types.release_queue pf)

(* CXL-style memory salvage: when a failed cell's processors died but its
   memory banks still answer reads (Cpu_dead_mem_alive), a survivor may
   copy clean imported file pages into local frames instead of discarding
   the bindings and re-reading from disk after reintegration. Only pages
   that provably cannot have been corrupted qualify: the home's pfdat
   must still bind the same logical page at the same frame, clean on both
   sides, with write granted to nobody (so the firewall never let any
   processor scribble on it — the wild-write filter), and the home file's
   generation must not have advanced past the import's. The copy is
   served read-only and purged when the home reintegrates. *)
let try_salvage (sys : Types.system) (c : Types.cell) (pf : Types.pfdat)
    ~home =
  let par = sys.Types.params in
  let hc = sys.Types.cells.(home) in
  if not (par.Params.enable_salvage && hc.Types.mem_alive) then None
  else
    match pf.Types.lid with
    | Some ({ Types.tag = Types.File_obj fid; page = _ } as lid)
      when fid.Types.home = home
           && (not pf.Types.dirty)
           && pf.Types.borrowed_from = None
           && pf.Types.loaned_to = None -> (
      match Pfdat.lookup hc lid with
      | Some hpf
        when hpf.Types.pfn = pf.Types.pfn
             && (not hpf.Types.dirty)
             && hpf.Types.write_granted_to = []
             && Flash.Memory.node_accessible (mem sys)
                  (Flash.Addr.node_of_pfn sys.Types.mcfg hpf.Types.pfn)
             && (match
                   Hashtbl.find_opt hc.Types.files_by_ino fid.Types.ino
                 with
                | Some f -> f.Types.generation <= pf.Types.import_gen
                | None -> false) -> (
        (* Take a strictly local free frame; under memory pressure the
           salvage is skipped rather than evicting anything mid-recovery. *)
        let local_free =
          List.find_opt
            (fun pfn ->
              List.mem
                (Flash.Addr.node_of_pfn sys.Types.mcfg pfn)
                c.Types.cell_nodes)
            c.Types.free_frames
        in
        match local_free with
        | None ->
          Types.bump c "vm.salvage_skipped";
          None
        | Some pfn ->
          Types.remove_free c pfn;
          Sim.Engine.delay par.Params.salvage_copy_ns;
          let data =
            Flash.Memory.peek (mem sys)
              (frame_addr sys hpf.Types.pfn)
              (page_size sys)
          in
          let npf = Pfdat.of_frame c pfn in
          Flash.Memory.poke (mem sys) (frame_addr sys pfn) data;
          npf.Types.import_gen <- pf.Types.import_gen;
          Some (lid, npf))
      | _ ->
        Types.bump c "vm.salvage_skipped";
        None)
    | _ -> None

(* TLB flush + removal of all remote mappings and import bindings: the
   pre-barrier-1 step of recovery. A future access to any remote page will
   fault and send an RPC to the page's owner, where it can be checked.
   [dead] names the confirmed-dead cells of the round: clean imports from
   a dead home whose memory outlived its processors are salvaged into
   local frames (see [try_salvage]) instead of discarded. *)
let flush_remote_bindings ?(dead = []) (sys : Types.system) (c : Types.cell) =
  (* Invalidate locate replies still in flight: any fault thread that
     snapshotted the old epoch before its RPC must relocate, not bind a
     pre-recovery frame (see [Types.flush_epoch]). *)
  c.Types.flush_epoch <- c.Types.flush_epoch + 1;
  List.iter
    (fun (p : Types.process) ->
      let doomed = ref [] in
      Hashtbl.iter
        (fun vpage (m : Types.mapping) ->
          let node = Flash.Addr.node_of_pfn sys.Types.mcfg m.Types.map_pf.Types.pfn in
          let remote_frame = not (List.mem node c.Types.cell_nodes) in
          if remote_frame || m.Types.map_pf.Types.imported_from <> None then
            doomed := vpage :: !doomed)
        p.Types.mappings;
      List.iter
        (fun vpage ->
          (match Hashtbl.find_opt p.Types.mappings vpage with
          | Some m ->
            m.Types.map_pf.Types.refs <- max 0 (m.Types.map_pf.Types.refs - 1)
          | None -> ());
          Hashtbl.remove p.Types.mappings vpage)
        !doomed)
    c.Types.processes;
  (* Drop every import binding; re-faults go back through the data home.
     Imports from a dead-but-memory-alive home are copied out first when
     they pass the salvage filter. *)
  let imports = ref [] in
  Pfdat.iter_pages c (fun pf ->
      if pf.Types.extended && pf.Types.imported_from <> None then
        imports := pf :: !imports);
  List.iter
    (fun (pf : Types.pfdat) ->
      let salvaged =
        match pf.Types.imported_from with
        | Some home when List.mem home dead -> try_salvage sys c pf ~home
        | _ -> None
      in
      let home = pf.Types.imported_from in
      Share.drop_import c pf;
      match (salvaged, home) with
      | Some (lid, npf), Some h ->
        npf.Types.salvaged_from <- Some h;
        Pfdat.insert c lid npf;
        (* Index by home so reintegration can purge without a full sweep. *)
        Hashtbl.add c.Types.salvaged_by_home h npf;
        Types.bump c "vm.salvaged_pages"
      | _ -> ())
    !imports;
  (* No parked binding may survive recovery: a data home may be dead or
     about to bump generations, and the post-recovery world re-locates
     everything from scratch. drop_import already unparked each binding;
     this also resets the cache list and the read-ahead detectors. *)
  c.Types.import_cache <- [];
  Hashtbl.reset c.Types.readahead

(* Post-barrier-1 VM cleanup: revoke grants to dead cells, preemptively
   discard every local page writable by a failed cell, clear export
   records, reclaim loaned frames. Returns the number of discarded pages. *)
let preemptive_discard (sys : Types.system) (c : Types.cell) ~dead =
  let p = sys.Types.params in
  let fwall = Flash.Machine.firewall sys.Types.machine in
  let discarded = ref 0 in
  (* Find local frames writable by any dead cell's processors: one pass
     over this cell's own nodes' permission vectors with a combined mask
     of all dead processors, instead of one machine-wide scan per dead
     processor — the scan cost depends on the survivor's own memory size,
     not on (dead processors x machine size). *)
  let dead_mask =
    Flash.Firewall.proc_mask
      (List.concat_map (fun d -> sys.Types.cells.(d).Types.cell_nodes) dead)
  in
  let victim_pfns =
    List.concat_map
      (fun node ->
        Flash.Firewall.pages_writable_by_mask fwall ~node ~mask:dead_mask)
      c.Types.cell_nodes
  in
  List.iter
    (fun pfn ->
      Sim.Engine.delay p.Params.recovery_scan_page_ns;
      (* Revoke all remote permission on this page. *)
      let node = Flash.Addr.node_of_pfn sys.Types.mcfg pfn in
      Flash.Firewall.revoke_all_remote fwall ~by:node ~pfn;
      match Hashtbl.find_opt c.Types.frames pfn with
      | None -> ()
      | Some pf ->
        incr discarded;
        Types.bump c "vm.discarded_pages";
        (* Notify the file system if a dirty file page is being lost. *)
        (match pf.Types.lid with
        | Some { Types.tag = Types.File_obj fid; page } -> (
          match Hashtbl.find_opt c.Types.files_by_ino fid.Types.ino with
          | Some f -> Fs.note_discard sys c f ~page ~dirty:pf.Types.dirty
          | None -> ())
        | _ -> ());
        pf.Types.exported_to <- [];
        pf.Types.write_granted_to <- [];
        Page_alloc.free_frame sys c pf)
    victim_pfns;
  (* Clear export records (clients dropped their imports pre-barrier). *)
  Pfdat.iter_pages c (fun pf ->
      pf.Types.exported_to <- [];
      List.iter
        (fun client ->
          if List.mem client dead then
            Wild_write.revoke_client sys c pf ~client)
        pf.Types.write_granted_to);
  (* Reclaim frames loaned to dead cells. *)
  let reclaimed =
    List.filter
      (fun pfn ->
        match Hashtbl.find_opt c.Types.frames pfn with
        | Some pf -> (
          match pf.Types.loaned_to with
          | Some borrower when List.mem borrower dead ->
            pf.Types.loaned_to <- None;
            Pfdat.remove c pf;
            true
          | _ -> false)
        | None -> false)
      c.Types.reserved_loans
  in
  List.iter
    (fun pfn ->
      c.Types.reserved_loans <-
        List.filter (fun q -> q <> pfn) c.Types.reserved_loans;
      Types.push_free c pfn)
    reclaimed;
  (* Drop borrowed frames whose memory home died. *)
  let dead_borrows = ref [] in
  Hashtbl.iter
    (fun _ pf ->
      match pf.Types.borrowed_from with
      | Some home when List.mem home dead -> dead_borrows := pf :: !dead_borrows
      | _ -> ())
    c.Types.frames;
  List.iter
    (fun pf ->
      Types.remove_free c pf.Types.pfn;
      Pfdat.free_extended c pf)
    !dead_borrows;
  !discarded

let registered = ref false

let register_handlers () =
  if not !registered then begin
    registered := true;
    Rpc.register anon_locate_op (fun sys cell ~src arg ->
        match arg with
        | P_anon_locate { node_id; page; writable } -> (
          let lid =
            { Types.tag =
                Types.Anon_obj { cow_home = cell.Types.cell_id; node_id };
              page }
          in
          match Pfdat.lookup cell lid with
          | Some pf ->
            (* Export first: the record pins the pfdat, so the service
               delay below cannot race a reclaim sweep that would drop
               the still-unreferenced frame. *)
            Share.export sys cell pf ~client:src ~writable;
            Sim.Engine.delay sys.Types.params.Params.fault_home_vm_ns;
            Types.Immediate (Ok (P_anon_page { pfn = pf.Types.pfn }))
          | None -> Types.Immediate (Error Types.ENOENT))
        | _ -> Types.Immediate (Error Types.EFAULT))
  end
