(** The top-level Hive system: boot, fault injection entry points, and
   measurement helpers.

   [boot] partitions the machine's nodes evenly among [cells] independent
   kernels and starts them. With [cells = 1] and the firewall disabled the
   same kernel code runs as the SMP-OS baseline (the paper's IRIX 5.2
   comparison point): no remote paths are ever taken, no firewall checks
   are charged. *)

val register_all_handlers : unit -> unit
val boot_horizon_ns : int64
val boot :
  ?mcfg:Flash.Config.t ->
  ?params:Params.t ->
  ?ncells:int ->
  ?multicellular:bool ->
  ?oracle:bool -> ?wax:bool -> Sim.Engine.t -> Types.system
val inject_node_failure : Types.system -> int -> unit

(** CXL-style processor failure: halts the node's CPU (fail-stopping its
    cell) while its memory banks keep answering remote reads, enabling
    page salvage during the ensuing recovery. *)
val inject_cpu_failure : Types.system -> int -> unit
type corruption_mode =
    Random_address
  | Off_by_one_word
  | Self_pointer
  | Cross_cell of Types.cell_id
val corrupt_cow_parent :
  Types.system ->
  Types.cell ->
  Types.cow_ref -> corruption_mode -> Sim.Prng.t -> unit
val corrupt_address_map :
  Types.system ->
  Types.process -> corruption_mode -> Sim.Prng.t -> bool
val reintegrate : Types.system -> Types.cell_id -> unit
val now : Sim.Engine.t -> int64
val run_until :
  Types.system ->
  ?step:int64 -> deadline:Int64.t -> (unit -> bool) -> bool
val run_until_processes_done :
  Types.system ->
  ?step:int64 -> deadline:Int64.t -> Types.process list -> bool
val live_cells : Types.system -> Types.cell_id list
val detection_latency_ns : Types.system -> t_fault:int64 -> int64 option
val counters :
  Types.system ->
  (string * int) list * (Types.cell_id * (string * int) list) list
