test/test_ssi.ml: Alcotest Array Flash Hive Int64 List Printf Sim
